package sc

import (
	"context"
	"time"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/trace"
)

// Options configures the context-bounded checker.
type Options struct {
	// MaxContexts bounds the number of contexts (maximal blocks of steps
	// by one process); 0 or negative means unbounded. The paper's
	// reduction needs K+n contexts for a K-view-bounded RA run of an
	// n-process program.
	MaxContexts int
	// MaxStates aborts the search after visiting this many distinct
	// quiescent states (Exhausted=false); 0 means unlimited.
	MaxStates int
	// TargetLabels maps process names to labels; reached when all listed
	// processes are simultaneously at their labels.
	TargetLabels map[string]string
	// Deadline aborts the search when passed (checked periodically);
	// zero means none. An aborted search reports Exhausted=false and
	// TimedOut=true.
	Deadline time.Time
	// Ctx aborts the search when cancelled (nil = never): the parallel
	// harnesses (internal/sched callers) cancel losing portfolio runs
	// through it. A non-zero Deadline composes with it — whichever
	// expires first stops the search, with the same
	// Exhausted=false/TimedOut=true outcome.
	Ctx context.Context
	// ReverseProcs flips the process iteration order of the scheduler.
	// Searches biased towards different processes find bugs located in
	// different threads; the VBMC driver alternates both orders.
	ReverseProcs bool
	// ExactDedup makes the visited set retain full state keys instead of
	// 64-bit fingerprints. See ra.Options.ExactDedup and internal/fp.
	ExactDedup bool
	// CensusViolations makes the search continue past failing assertions
	// instead of stopping at the first (the zero value keeps the
	// stop-at-first behaviour): Result.Violations counts every violating
	// macro-step, Result.Trace witnesses the violation with the minimal
	// fingerprint (init-closure violations, scanned in their
	// deterministic order, take priority), and Exhausted reports full
	// coverage. Census results are schedule-invariant, which is what the
	// serial/parallel parity harness asserts.
	CensusViolations bool
	// Reduce enables partial-order reduction: at each state only a
	// persistent set of processes is scheduled, pruned further by sleep
	// sets (see reduce.go and DESIGN.md). Reduction requires an acyclic
	// macro-step graph, so it silently falls back to the unreduced
	// search for programs with loops (run lang.Unroll first) or more
	// than 64 processes, and it is disabled under TargetLabels
	// (reduction preserves violations and final states, not arbitrary
	// intermediate global label combinations). Because commuting
	// independent steps changes context-switch counts, a reduced search
	// always runs with an unbounded context bound: MaxContexts is
	// forced to 0, which only ever adds behaviours, so SAFE+Exhausted
	// remains conclusive for any bound and UNSAFE witnesses are real.
	// With Workers >= 1 a reduced serial search races the unreduced
	// parallel one (first conclusive result wins), trading the
	// deterministic-counts contract for wall-clock.
	Reduce bool
	// Workers selects intra-query parallel checking: 0 serial, n >= 1
	// that many work-stealing workers, negative all CPUs. See
	// ra.Options.Workers for the determinism contract.
	Workers int
	// StealSeed seeds the parallel checker's steal-order RNG; see
	// ra.Options.StealSeed.
	StealSeed int64
	// Obs, when non-nil, receives the search counters ("sc.states",
	// "sc.transitions", "sc.dedup_hits", "sc.dedup_misses",
	// "sc.macro_steps") and gauges ("sc.max_depth",
	// "sc.max_contexts_used"). Repeated Check calls against the same
	// recorder accumulate, so the VBMC restart ladder reports totals.
	Obs *obs.Recorder
}

// Result is the outcome of a bounded SC model-checking run.
type Result struct {
	Violation     bool
	TargetReached bool
	Trace         *trace.Trace
	States        int
	Transitions   int
	// Violations counts the violating macro-steps encountered: at most
	// 1 in the default stop-at-first mode, the full census under
	// CensusViolations.
	Violations int
	// Exhausted is true if every quiescent state reachable within the
	// context bound was covered, so "no violation" is conclusive for
	// that bound.
	Exhausted bool
	// TimedOut is true when the Deadline or a cancelled Ctx cut the
	// search short.
	TimedOut bool
}

// deadlineStride is how many DFS entries pass between cancellation
// polls: checking the context on every entry is measurable, so it is
// sampled. The step counter (unlike the visited-state count) advances
// on every entry including dedup hits, so the check fires even when
// the search stops discovering new states.
const deadlineStride = 1024

// Check explores the SC transition system of the program at macro-step
// granularity under the context bound. The DFS runs on an explicit
// heap-allocated stack, so restart-ladder rounds with deep macro-step
// paths cannot overflow the goroutine stack.
func (s *System) Check(opts Options) Result {
	span := opts.Obs.StartPhase("sc.check")
	span.SetAttrInt("max_contexts", int64(opts.MaxContexts))
	defer span.End()
	if opts.Reduce {
		if len(opts.TargetLabels) > 0 || !s.ReduceApplies() {
			opts.Reduce = false
		} else {
			opts.MaxContexts = 0
		}
	}
	if w := resolveWorkers(opts.Workers); w >= 1 {
		span.SetAttrInt("workers", int64(w))
		if opts.Reduce {
			return s.raceReduced(opts, w)
		}
		return s.checkParallel(opts, w)
	}
	e := &scChecker{sys: s, opts: opts, visited: fp.NewSet(opts.ExactDedup), bestVFP: ^uint64(0)}
	if opts.Reduce {
		if opts.ExactDedup {
			e.rmEx = make(map[string]uint64)
		} else {
			e.rm = make(map[uint64]uint64)
		}
	}
	e.cStates = opts.Obs.Counter("sc.states")
	e.cTransitions = opts.Obs.Counter("sc.transitions")
	e.cDedupHits = opts.Obs.Counter("sc.dedup_hits")
	e.cDedupMisses = opts.Obs.Counter("sc.dedup_misses")
	e.cMacroSteps = opts.Obs.Counter("sc.macro_steps")
	e.gMaxDepth = opts.Obs.Gauge("sc.max_depth")
	e.gMaxContexts = opts.Obs.Gauge("sc.max_contexts_used")
	e.stats = opts.Obs.Search()
	// The final flush lands the run's totals in the stats block, so the
	// last telemetry sample matches the Result exactly. Stats accumulate
	// across restart-ladder rounds like the counters do.
	defer e.flushStats(0)
	e.exhausted = true
	// Fold the wall-clock deadline into the cancellation context; the
	// search polls only ctx.Err() from here on.
	if !opts.Deadline.IsZero() {
		base := opts.Ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		e.ctx, cancel = context.WithDeadline(base, opts.Deadline)
		defer cancel()
	} else if opts.Ctx != nil {
		e.ctx = opts.Ctx
	}
	// A context that is already expired aborts before the first state:
	// restart-ladder rounds scheduled after an expired budget must not
	// burn a deadlineStride of search each.
	if e.ctx != nil && e.ctx.Err() != nil {
		e.result.TimedOut = true
		e.result.Exhausted = false
		return e.result
	}
	for _, oc := range s.initClosure(s.Init()) {
		if oc.violation {
			e.result.Violation = true
			e.result.Violations++
			// Init-closure violations are scanned in a deterministic
			// order, so "the first one" is a schedule-invariant witness;
			// it outranks any search violation under the census.
			if e.result.Trace == nil {
				e.result.Trace = &trace.Trace{Events: oc.events}
				e.initWitness = true
			}
			if !e.opts.CensusViolations {
				break
			}
			continue
		}
		e.path = append(e.path[:0], oc.events...)
		if e.search(oc.cfg) {
			break
		}
	}
	e.result.Exhausted = e.exhausted && !e.result.TargetReached &&
		!(e.result.Violation && !e.opts.CensusViolations)
	return e.result
}

type scChecker struct {
	sys       *System
	opts      Options
	ctx       context.Context // nil when the search has no deadline/cancel scope
	visited   *fp.Set         // state key -> min contexts used
	path      []trace.Event
	keyBuf    []byte
	deadBuf   []int // reused dead-register scratch for dedupKey
	steps     int   // DFS entries, for cancellation sampling
	dedupHits int   // visited-set hits, for telemetry flushes
	result    Result
	exhausted bool

	// bestVFP is the smallest violation fingerprint seen so far by the
	// census; initWitness pins the trace to an init-closure violation,
	// which outranks any search violation. directed/stopAtVFP turn the
	// census into the parallel checker's witness-regeneration replay
	// (see ra.regenWitness for the pattern).
	bestVFP     uint64
	initWitness bool
	directed    bool
	stopAtVFP   uint64

	// Reduced-search state (Options.Reduce): the visited maps store the
	// first-visit sleep mask per state (fingerprint or exact keyed),
	// psQueue/orderBuf/execFoot are reusable scratch. See reduce.go.
	rm         map[uint64]uint64
	rmEx       map[string]uint64
	rmKeyBytes int64
	psQueue    []int
	orderBuf   []int
	execFoot   locFoot

	cStates, cTransitions    *obs.Counter
	cDedupHits, cDedupMisses *obs.Counter
	cMacroSteps              *obs.Counter
	gMaxDepth, gMaxContexts  *obs.Gauge

	stats *obs.SearchStats // live telemetry; nil when Obs is nil
	mark  flushMark        // totals as of the last stats flush
}

// flushMark remembers the totals already pushed into the SearchStats
// block, so each flush adds only the delta since the previous one.
type flushMark struct {
	states, transitions, probes, hits, violations int
}

// flushStats pushes the since-last-flush deltas into the live telemetry
// block, plus the current frontier depth and visited-set occupancy. It
// runs on the deadline-poll cadence and once at search end, never per
// state.
func (e *scChecker) flushStats(depth int) {
	if e.stats == nil {
		return
	}
	violations := e.result.Violations
	e.stats.Add(
		int64(e.result.States-e.mark.states),
		int64(e.result.Transitions-e.mark.transitions),
		int64(e.steps-e.mark.probes),
		int64(e.dedupHits-e.mark.hits),
		int64(violations-e.mark.violations),
	)
	e.mark = flushMark{
		states:      e.result.States,
		transitions: e.result.Transitions,
		probes:      e.steps,
		hits:        e.dedupHits,
		violations:  violations,
	}
	e.stats.SetFrontier(int64(depth))
	if e.opts.Reduce {
		n, b := e.reducedVisited()
		e.stats.SetVisited(int64(n), b)
	} else {
		e.stats.SetVisited(int64(e.visited.Len()), e.visited.ApproxBytes())
	}
}

// scChild is one accepted macro-step out of an expanded state: the
// successor configuration, the events of the macro-step, and the
// context count it is entered with. Violating macro-steps stop the
// search during expansion and never become children.
type scChild struct {
	cfg      *Config
	events   []trace.Event
	contexts int
	// sleep is the child's inherited sleep mask (reduced search only).
	sleep uint64
}

// scFrame is one explicit-stack DFS frame.
type scFrame struct {
	kids    []scChild
	idx     int
	depth   int
	pathLen int
}

// search drives the DFS from one initial-closure state on an explicit
// stack; it returns true when the search should stop (violation/target
// found, state cap hit, or deadline expired).
func (e *scChecker) search(root *Config) bool {
	kids, done := e.expandAny(root, 0, 0, 0)
	if done {
		return true
	}
	if len(kids) == 0 {
		return false
	}
	stack := make([]scFrame, 0, 64)
	stack = append(stack, scFrame{kids: kids, pathLen: len(e.path)})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx == len(f.kids) {
			e.path = e.path[:f.pathLen]
			stack = stack[:len(stack)-1]
			continue
		}
		k := f.kids[f.idx]
		f.idx++
		base := len(e.path)
		e.path = append(e.path, k.events...)
		kids, done := e.expandAny(k.cfg, k.contexts, f.depth+1, k.sleep)
		if done {
			return true
		}
		if len(kids) == 0 {
			e.path = e.path[:base]
			continue
		}
		// f is invalid after this append (the stack may move).
		stack = append(stack, scFrame{kids: kids, depth: f.depth + 1, pathLen: base})
	}
	return false
}

// expandAny dispatches a node expansion to the reduced or unreduced
// path; sleep is only meaningful under Options.Reduce.
func (e *scChecker) expandAny(c *Config, contexts, depth int, sleep uint64) ([]scChild, bool) {
	if e.opts.Reduce {
		return e.expandReduced(c, depth, sleep)
	}
	return e.expand(c, contexts, depth)
}

// expand visits one state: dedup, counters, caps and target checks,
// then the scan over its macro-steps. It returns the accepted children
// (nil when the state is pruned or a leaf) and whether the search is
// done. contexts counts completed+current scheduling blocks; depth
// counts macro-steps on the current path.
func (e *scChecker) expand(c *Config, contexts, depth int) ([]scChild, bool) {
	e.steps++
	if e.steps%deadlineStride == 0 {
		e.flushStats(depth)
		if e.ctx != nil && e.ctx.Err() != nil {
			e.exhausted = false
			e.result.TimedOut = true
			return nil, true
		}
	}
	// Order-independent dedup (the serial/parallel parity discipline,
	// mirroring ra): under a context bound the contexts-used coordinate
	// is folded into the key and the Visit budget is constant, so
	// whether a node is explored depends only on the node itself, never
	// on discovery order. appendKey ends with the current-process value,
	// so one more appended value stays injective within a run.
	e.keyBuf, e.deadBuf = e.sys.dedupKey(c, e.keyBuf[:0], e.deadBuf)
	if e.opts.MaxContexts > 0 {
		e.keyBuf = appendVal(e.keyBuf, lang.Value(contexts))
	}
	h := fp.Hash64(e.keyBuf)
	if !e.visited.VisitHash(h, e.keyBuf, 0) {
		e.dedupHits++
		e.cDedupHits.Inc()
		return nil, false
	}
	e.result.States++
	e.cStates.Inc()
	e.cDedupMisses.Inc()
	e.gMaxDepth.SetMax(int64(depth))
	e.gMaxContexts.SetMax(int64(contexts))
	if e.opts.MaxStates > 0 && e.result.States >= e.opts.MaxStates {
		e.exhausted = false
		return nil, true
	}
	if e.targetReached(c) {
		e.result.TargetReached = true
		e.result.Trace = &trace.Trace{Events: append([]trace.Event(nil), e.path...)}
		return nil, true
	}
	// Try the process holding the context first: near-serial schedules
	// are explored before heavily preempted ones, so counterexamples
	// that deviate from a serial run in few, late places (the typical
	// shape of mutual-exclusion bugs) are found early.
	order := make([]int, 0, len(e.sys.Prog.Procs))
	if c.cur >= 0 {
		order = append(order, c.cur)
	}
	n := len(e.sys.Prog.Procs)
	for i := 0; i < n; i++ {
		p := i
		if e.opts.ReverseProcs {
			p = n - 1 - i
		}
		if p != c.cur {
			order = append(order, p)
		}
	}
	var kids []scChild
	ord := 0 // macro-step ordinal within this node, for MixOrdinal
	for _, p := range order {
		if e.sys.status(c, p) != statusReady {
			continue
		}
		nc := contexts
		if c.cur != p {
			nc++
			if e.opts.MaxContexts > 0 && nc > e.opts.MaxContexts {
				continue
			}
		}
		e.cMacroSteps.Inc()
		for _, oc := range e.sys.macroStep(c, p) {
			vord := ord
			ord++
			e.result.Transitions++
			e.cTransitions.Inc()
			if oc.violation {
				e.result.Violation = true
				e.result.Violations++
				vfp := fp.MixOrdinal(h, vord)
				switch {
				case e.directed:
					if vfp == e.stopAtVFP {
						evs := append(append([]trace.Event(nil), e.path...), oc.events...)
						e.result.Trace = &trace.Trace{Events: evs}
						return nil, true
					}
				case !e.opts.CensusViolations:
					evs := append(append([]trace.Event(nil), e.path...), oc.events...)
					e.result.Trace = &trace.Trace{Events: evs}
					return nil, true
				case !e.initWitness && (e.result.Trace == nil || vfp < e.bestVFP):
					// Census witness: minimal fingerprint wins, the
					// schedule-independent tie-break shared with the
					// parallel checker.
					e.bestVFP = vfp
					evs := append(append([]trace.Event(nil), e.path...), oc.events...)
					e.result.Trace = &trace.Trace{Events: evs}
				}
				continue
			}
			kids = append(kids, scChild{cfg: oc.cfg, events: oc.events, contexts: nc})
		}
	}
	return kids, false
}

func (e *scChecker) targetReached(c *Config) bool {
	return e.sys.targetAt(c, e.opts.TargetLabels)
}
