package sc

import (
	"strings"
	"testing"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/sched"
)

// sbParallel is a store-buffering shape with an SC-reachable assertion
// failure, wide enough that a pool expands nodes on several workers.
func sbParallel() *lang.Program {
	p := lang.NewProgram("sb_par", "x", "y")
	p.AddProc("p0", "a").Add(
		lang.WriteC("x", 1), lang.ReadS("a", "y"),
		// Fails on every interleaving where p0 reads y=1: gives the
		// census violations and a witness to compare.
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	return p
}

// TestParallelWorkerPanicSurfaces is the regression test for the
// worker-panic contract on the SC side: a panic inside a worker's
// macro-step expansion must re-surface as a *sched.PanicError panic on
// the Check caller, never a hang on the pool's termination barrier.
func TestParallelWorkerPanicSurfaces(t *testing.T) {
	testParallelExpandHook = func(worker, depth int) {
		if depth >= 1 {
			panic("injected worker failure")
		}
	}
	defer func() { testParallelExpandHook = nil }()

	sys := NewSystem(lang.MustCompile(sbParallel()))
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		sys.Check(Options{Workers: 2, CensusViolations: true})
		done <- nil
	}()
	select {
	case r := <-done:
		pe, ok := r.(*sched.PanicError)
		if !ok {
			t.Fatalf("Check returned %v (%T), want a *sched.PanicError panic", r, r)
		}
		if pe.Val != "injected worker failure" {
			t.Errorf("PanicError.Val = %v, want the injected value", pe.Val)
		}
		if !strings.Contains(string(pe.Stack), "parallel_test") {
			t.Errorf("PanicError.Stack does not point at the panicking expansion:\n%s", pe.Stack)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Check hung after a worker panic")
	}
}

// TestParallelCensusMatchesSerialInPackage is the package-local parity
// smoke test (the corpus sweep lives in internal/partest).
func TestParallelCensusMatchesSerialInPackage(t *testing.T) {
	sys := NewSystem(lang.MustCompile(sbParallel()))
	ser := sys.Check(Options{CensusViolations: true})
	for _, w := range []int{1, 2, 4} {
		par := sys.Check(Options{CensusViolations: true, Workers: w})
		if ser.Violation != par.Violation || ser.Violations != par.Violations ||
			ser.States != par.States || ser.Transitions != par.Transitions ||
			ser.Exhausted != par.Exhausted {
			t.Errorf("workers=%d: serial %+v vs parallel %+v", w, ser, par)
		}
		st, pt := "", ""
		if ser.Trace != nil {
			st = ser.Trace.String()
		}
		if par.Trace != nil {
			pt = par.Trace.String()
		}
		if st != pt {
			t.Errorf("workers=%d: witness differs\nserial:\n%s\nparallel:\n%s", w, st, pt)
		}
	}
}
