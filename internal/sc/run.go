package sc

import (
	"fmt"

	"ravbmc/internal/lang"
	"ravbmc/internal/trace"
)

// outcome is the result of one macro step: the configuration at the next
// quiescent point of the stepped process (or at a violation), plus the
// events performed.
type outcome struct {
	cfg       *Config
	events    []trace.Event
	violation bool
}

// maxLocalSteps bounds a single macro step, guarding against local-only
// infinite loops in non-unrolled programs.
const maxLocalSteps = 1 << 16

// macroStep executes one visible operation of process p followed by the
// maximal run of local operations, branching on nondeterminism. Branches
// that fail an assume inside an atomic section are discarded (the atomic
// transition does not exist for those guesses); a failed assume outside
// an atomic section leaves the process parked at the assume.
func (s *System) macroStep(c *Config, p int) []outcome {
	d := c.clone()
	d.cur = p
	var out []outcome
	s.run(d, p, 0, true, nil, &out, 0)
	return out
}

// initClosure runs the local prefix of every process (before the first
// visible operation), branching on nondeterminism. It returns the set of
// quiescent initial configurations.
func (s *System) initClosure(c *Config) []outcome {
	configs := []outcome{{cfg: c.clone()}}
	for p := range s.Prog.Procs {
		var next []outcome
		for _, oc := range configs {
			if oc.violation {
				next = append(next, oc)
				continue
			}
			var sub []outcome
			s.run(oc.cfg, p, 0, false, oc.events, &sub, 0)
			next = append(next, sub...)
		}
		configs = next
	}
	return configs
}

// run interprets process p on the owned configuration c until the next
// quiescent point. firstStep grants permission to execute one visible
// instruction; afterwards any visible instruction outside an atomic
// section is a quiescent point.
func (s *System) run(c *Config, p int, atomicDepth int, firstStep bool, events []trace.Event, out *[]outcome, steps int) {
	for ; steps < maxLocalSteps; steps++ {
		pr := s.Prog.Procs[p]
		in := &pr.Code[c.pcs[p]]
		// ev populates the structured event fields; the text rendering is
		// derived lazily (Event.Text), keeping the search loop free of
		// string formatting. Only events whose text cannot be derived
		// (violations) carry an explicit Detail.
		ev := func(kind trace.Kind, detail string) trace.Event {
			return trace.Event{Proc: pr.Name, Label: in.Label, Kind: kind, Detail: detail}
		}
		if !firstStep && atomicDepth == 0 && in.GloballyVisible() {
			*out = append(*out, outcome{cfg: c, events: events})
			return
		}
		env := s.env(c, p)
		switch in.Op {
		case lang.OpTermProc:
			*out = append(*out, outcome{cfg: c, events: events})
			return
		case lang.OpReadVar:
			v := c.mem[s.VarIdx[in.Var]]
			c.regs[s.reg(p, s.RegIdx[p][in.Reg])] = v
			events = append(events, trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindRead,
				Var: in.Var, Reg: in.Reg, Val: int64(v), HasVal: true})
			c.pcs[p] = in.Next
		case lang.OpWriteVar:
			v := in.Val.Eval(env)
			c.mem[s.VarIdx[in.Var]] = v
			events = append(events, trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindWrite,
				Var: in.Var, Val: int64(v), HasVal: true})
			c.pcs[p] = in.Next
		case lang.OpCASVar:
			old := in.Old.Eval(env)
			xi := s.VarIdx[in.Var]
			if c.mem[xi] != old {
				if atomicDepth > 0 || firstStep {
					return // transition does not exist under these guesses
				}
				// Park at the CAS; it may become enabled later.
				*out = append(*out, outcome{cfg: c, events: events})
				return
			}
			nv := in.Val.Eval(env)
			c.mem[xi] = nv
			events = append(events, trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindCAS,
				Var: in.Var, Old: int64(old), HasOld: true, Val: int64(nv), HasVal: true})
			c.pcs[p] = in.Next
		case lang.OpFenceOp:
			// A release-acquire fence is a no-op under SC.
			events = append(events, ev(trace.KindFence, "fence (no-op under SC)"))
			c.pcs[p] = in.Next
		case lang.OpLoadArrEl:
			ai := s.ArrIdx[in.Var]
			idx := in.Index.Eval(env)
			if idx < 0 || int(idx) >= s.Arrays[ai].Size {
				events = append(events, ev(trace.KindViolation, fmt.Sprintf("%s[%d] out of bounds", in.Var, idx)))
				*out = append(*out, outcome{cfg: c, events: events, violation: true})
				return
			}
			v := c.arr[s.arrOff[ai]+int(idx)]
			c.regs[s.reg(p, s.RegIdx[p][in.Reg])] = v
			events = append(events, trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindRead,
				Var: in.Var, Reg: in.Reg, Val: int64(v), HasVal: true, Idx: int(idx), HasIdx: true})
			c.pcs[p] = in.Next
		case lang.OpStoreArrEl:
			ai := s.ArrIdx[in.Var]
			idx := in.Index.Eval(env)
			if idx < 0 || int(idx) >= s.Arrays[ai].Size {
				events = append(events, ev(trace.KindViolation, fmt.Sprintf("%s[%d] out of bounds", in.Var, idx)))
				*out = append(*out, outcome{cfg: c, events: events, violation: true})
				return
			}
			v := in.Val.Eval(env)
			c.arr[s.arrOff[ai]+int(idx)] = v
			events = append(events, trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindWrite,
				Var: in.Var, Val: int64(v), HasVal: true, Idx: int(idx), HasIdx: true})
			c.pcs[p] = in.Next
		case lang.OpAtomicBegin:
			atomicDepth++
			c.pcs[p] = in.Next
		case lang.OpAtomicEnd:
			atomicDepth--
			c.pcs[p] = in.Next
		case lang.OpAssignReg:
			c.regs[s.reg(p, s.RegIdx[p][in.Reg])] = in.Val.Eval(env)
			c.pcs[p] = in.Next
		case lang.OpNondetReg:
			ri := s.reg(p, s.RegIdx[p][in.Reg])
			next := in.Next
			// High-to-low: in translated programs the "interesting"
			// guesses (view-altering read, tracked write, publish) are
			// the high values, and trying them first reaches weak
			// behaviours — and therefore bugs — much earlier in the DFS.
			for v := in.Hi; v >= in.Lo; v-- {
				d := c.clone()
				d.regs[ri] = v
				d.pcs[p] = next
				evs := append(append([]trace.Event(nil), events...),
					trace.Event{Proc: pr.Name, Label: in.Label, Kind: trace.KindLocal,
						Reg: in.Reg, Val: int64(v), HasVal: true, Choice: true})
				s.run(d, p, atomicDepth, false, evs, out, steps+1)
			}
			return
		case lang.OpAssumeCond:
			if in.Cond.Eval(env) == 0 {
				if atomicDepth > 0 {
					return // infeasible guess: discard the atomic branch
				}
				*out = append(*out, outcome{cfg: c, events: events})
				return
			}
			c.pcs[p] = in.Next
		case lang.OpAssertCond:
			if in.Cond.Eval(env) == 0 {
				events = append(events, ev(trace.KindViolation, "assert failed: "+in.Cond.String()))
				*out = append(*out, outcome{cfg: c, events: events, violation: true})
				return
			}
			c.pcs[p] = in.Next
		case lang.OpCJmp:
			if in.Cond.Eval(env) != 0 {
				c.pcs[p] = in.Next
			} else {
				c.pcs[p] = in.Else
			}
		case lang.OpJmp:
			c.pcs[p] = in.Next
		default:
			panic(fmt.Sprintf("sc: unknown opcode %s", in.Op))
		}
		firstStep = false
	}
	// Local divergence: treat as stuck (drop the branch) — only possible
	// for non-unrolled programs with local-only loops.
	*out = append(*out, outcome{cfg: c, events: events})
}
