// Package sc implements sequential-consistency semantics for the
// language and a context-bounded explicit-state model checker in the
// spirit of Qadeer–Rehof bounded-context model checking. It plays the
// role CBMC 5.10 + Lazy CSeq play for VBMC in the paper: a sound and
// complete decision procedure for assertion reachability of bounded
// (loop-unrolled) SC programs with nondeterminism, under a bound on the
// number of contexts.
//
// The checker explores at the granularity of "macro steps": one globally
// visible operation (shared read/write/CAS/array access, or a whole
// atomic block) followed by the maximal run of purely local operations.
// Local operations commute with every operation of other processes, so
// restricting preemption to visible points preserves reachability — this
// is the paper's optimisation that a process "does not context switch
// until it writes to a shared variable", generalised to all visible
// operations.
package sc

import (
	"encoding/binary"

	"ravbmc/internal/lang"
)

// System pre-computes indices for SC execution of a compiled program.
// Shared arrays and all register files are flattened into single slices:
// configurations are cloned constantly during search, and three
// contiguous copies beat dozens of small ones.
type System struct {
	Prog   *lang.CompiledProgram
	VarIdx map[string]int
	ArrIdx map[string]int
	Arrays []lang.ArrayDecl
	RegIdx []map[string]int
	// arrOff[i] is the offset of array i in Config.arr; arrTotal the
	// flattened length. regOff likewise for per-process register files.
	arrOff   []int
	arrTotal int
	regOff   []int
	regTotal int

	// Partial-order-reduction dependence tables, built lazily on first
	// reduced search (see reduce.go).
	reduceState
}

// NewSystem prepares a compiled program for SC execution.
func NewSystem(cp *lang.CompiledProgram) *System {
	s := &System{Prog: cp, VarIdx: map[string]int{}, ArrIdx: map[string]int{}}
	for i, v := range cp.Vars {
		s.VarIdx[v] = i
	}
	for i, a := range cp.Arrays {
		s.ArrIdx[a.Name] = i
		s.Arrays = append(s.Arrays, a)
		s.arrOff = append(s.arrOff, s.arrTotal)
		s.arrTotal += a.Size
	}
	for _, pr := range cp.Procs {
		m := make(map[string]int, len(pr.Regs))
		for i, r := range pr.Regs {
			m[r] = i
		}
		s.RegIdx = append(s.RegIdx, m)
		s.regOff = append(s.regOff, s.regTotal)
		s.regTotal += len(pr.Regs)
	}
	return s
}

// Config is an SC machine configuration: one shared store, per-process
// program counters and register files, and the identity of the process
// holding the current context.
type Config struct {
	mem  []lang.Value // shared scalars
	arr  []lang.Value // all shared arrays, flattened
	pcs  []int
	regs []lang.Value // all register files, flattened
	cur  int          // process holding the context; -1 before the first step
}

// Init returns the initial configuration: all variables, array cells and
// registers 0 (or the array's declared init value).
func (s *System) Init() *Config {
	c := &Config{
		mem:  make([]lang.Value, len(s.Prog.Vars)),
		arr:  make([]lang.Value, s.arrTotal),
		pcs:  make([]int, len(s.Prog.Procs)),
		regs: make([]lang.Value, s.regTotal),
		cur:  -1,
	}
	for i, a := range s.Arrays {
		if a.Init != 0 {
			cells := c.arr[s.arrOff[i] : s.arrOff[i]+a.Size]
			for j := range cells {
				cells[j] = a.Init
			}
		}
	}
	return c
}

func (c *Config) clone() *Config {
	return &Config{
		mem:  append([]lang.Value(nil), c.mem...),
		arr:  append([]lang.Value(nil), c.arr...),
		pcs:  append([]int(nil), c.pcs...),
		regs: append([]lang.Value(nil), c.regs...),
		cur:  c.cur,
	}
}

// reg returns the flattened index of register ri of process p.
func (s *System) reg(p, ri int) int { return s.regOff[p] + ri }

// Key returns a canonical binary encoding of the full configuration.
func (c *Config) Key() string { return string(c.appendKey(nil, nil)) }

// appendKey encodes the configuration into buf; when dead is non-nil it
// holds, per process, the flattened start offset of the process's
// registers or -1 when the process has terminated (its registers are
// dead and masked out), with a final total-length sentinel.
func (c *Config) appendKey(buf []byte, dead []int) []byte {
	for _, v := range c.mem {
		buf = appendVal(buf, v)
	}
	for _, v := range c.arr {
		buf = appendVal(buf, v)
	}
	for _, pc := range c.pcs {
		buf = appendVal(buf, lang.Value(pc))
	}
	if dead == nil {
		for _, v := range c.regs {
			buf = appendVal(buf, v)
		}
	} else {
		for p := 0; p < len(dead)-1; p++ {
			off := dead[p]
			if off < 0 {
				buf = append(buf, 0xFD)
				continue
			}
			end := dead[p+1]
			if end < 0 {
				// Find the next live offset or the sentinel.
				for q := p + 2; ; q++ {
					if dead[q] >= 0 {
						end = dead[q]
						break
					}
				}
			}
			for _, v := range c.regs[off:end] {
				buf = appendVal(buf, v)
			}
		}
	}
	buf = appendVal(buf, lang.Value(c.cur+1))
	return buf
}

// appendVal encodes one value: 0..250 as a single byte, anything else as
// 0xFE plus eight little-endian bytes.
func appendVal(buf []byte, v lang.Value) []byte {
	if v >= 0 && v <= 250 {
		return append(buf, byte(v))
	}
	var b [9]byte
	b[0] = 0xFE
	binary.LittleEndian.PutUint64(b[1:], uint64(v))
	return append(buf, b[:]...)
}

// DedupKey appends the search key to buf: terminated processes'
// registers are dead and therefore masked.
func (s *System) DedupKey(c *Config, buf []byte) []byte {
	out, _ := s.dedupKey(c, buf, nil)
	return out
}

// dedupKey is DedupKey with a caller-owned scratch slice for the
// per-process dead-register offsets; the (possibly grown) scratch is
// returned for reuse, so hot callers pay no allocation per state.
func (s *System) dedupKey(c *Config, buf []byte, scratch []int) ([]byte, []int) {
	dead := scratch[:0]
	for p := range s.Prog.Procs {
		if s.Prog.Procs[p].Terminated(c.pcs[p]) {
			dead = append(dead, -1)
		} else {
			dead = append(dead, s.regOff[p])
		}
	}
	dead = append(dead, s.regTotal)
	return c.appendKey(buf, dead), dead
}

// Mem returns the value of the named shared variable.
func (s *System) Mem(c *Config, name string) lang.Value { return c.mem[s.VarIdx[name]] }

// RegValue returns the value of the named register of the named process.
func (s *System) RegValue(c *Config, proc, reg string) lang.Value {
	pi := s.Prog.ProcIndex(proc)
	if pi < 0 {
		return 0
	}
	if i, ok := s.RegIdx[pi][reg]; ok {
		return c.regs[s.reg(pi, i)]
	}
	return 0
}

// Terminated reports whether every process has terminated.
func (s *System) Terminated(c *Config) bool {
	for p := range s.Prog.Procs {
		if !s.Prog.Procs[p].Terminated(c.pcs[p]) {
			return false
		}
	}
	return true
}

// procStatus classifies what process p can do next from c.
type procStatus int

const (
	statusReady      procStatus = iota // at a visible instruction
	statusTerminated                   // at the term sink
	statusStuck                        // at a false assume or a blocked CAS
)

// status inspects p without modifying c. It must be called only at
// quiescent points (pc at a visible instruction, term, or assume).
func (s *System) status(c *Config, p int) procStatus {
	in := &s.Prog.Procs[p].Code[c.pcs[p]]
	switch in.Op {
	case lang.OpTermProc:
		return statusTerminated
	case lang.OpAssumeCond:
		if in.Cond.Eval(s.env(c, p)) == 0 {
			return statusStuck
		}
		return statusReady
	case lang.OpCASVar:
		if c.mem[s.VarIdx[in.Var]] != in.Old.Eval(s.env(c, p)) {
			return statusStuck
		}
		return statusReady
	default:
		return statusReady
	}
}

func (s *System) env(c *Config, p int) func(string) lang.Value {
	return func(name string) lang.Value {
		if i, ok := s.RegIdx[p][name]; ok {
			return c.regs[s.reg(p, i)]
		}
		return 0
	}
}

// InitialConfigs returns the quiescent initial configurations: the
// initial state with every process's local prefix executed, one per
// combination of initial nondeterministic choices. Prefixes that fail
// an assertion are dropped.
func (s *System) InitialConfigs() []*Config {
	var out []*Config
	for _, oc := range s.initClosure(s.Init()) {
		if !oc.violation {
			out = append(out, oc.cfg)
		}
	}
	return out
}

// MacroSteps exposes the macro-step successors of process p, for
// outcome enumeration by other packages; violating branches are
// dropped.
func (s *System) MacroSteps(c *Config, p int) []*Config {
	if s.status(c, p) != statusReady {
		return nil
	}
	var out []*Config
	for _, oc := range s.macroStep(c, p) {
		if !oc.violation {
			out = append(out, oc.cfg)
		}
	}
	return out
}
