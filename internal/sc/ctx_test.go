package sc

import (
	"context"
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
)

// bigProg is a search too large to finish in test time: 4-thread
// unfenced Peterson, unrolled — only cancellation can end it promptly.
func bigProg(t *testing.T) *lang.Program {
	t.Helper()
	p, err := benchmarks.ByName("peterson_0(4)")
	if err != nil {
		t.Fatal(err)
	}
	return lang.Unroll(p, 3)
}

// TestCheckPreCancelledCtx: a context cancelled before Check starts must
// abort before the first state, mirroring the expired-deadline contract.
func TestCheckPreCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := check(t, mustSB(), Options{Ctx: ctx})
	if !res.TimedOut || res.Exhausted || res.States != 0 {
		t.Errorf("pre-cancelled ctx: TimedOut=%v Exhausted=%v States=%d",
			res.TimedOut, res.Exhausted, res.States)
	}
}

// TestCheckCtxCancelStopsPromptly: cancelling mid-search must stop the
// DFS within one sampling stride, not at the next wall-clock deadline.
func TestCheckCtxCancelStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	start := time.Now()
	res := check(t, bigProg(t), Options{Ctx: ctx})
	elapsed := time.Since(start)
	if !res.TimedOut {
		t.Errorf("cancelled search finished: %+v", res)
	}
	if res.Exhausted {
		t.Error("cancelled search claims exhaustion")
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want well under 5s", elapsed)
	}
}

// TestCheckCtxComposesWithDeadline: whichever of Ctx and Deadline
// expires first stops the search.
func TestCheckCtxComposesWithDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	res := check(t, bigProg(t), Options{Ctx: ctx, Deadline: time.Now().Add(100 * time.Millisecond)})
	if !res.TimedOut {
		t.Errorf("deadline under a live ctx did not stop the search: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline stop took %v", elapsed)
	}
}
