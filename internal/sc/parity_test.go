package sc

import (
	"testing"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
)

// TestCheckDedupModeParity runs the SC checker in fingerprint and
// exact-key modes over the mutual-exclusion protocols and requires
// identical verdicts and statistics, with and without a context bound.
func TestCheckDedupModeParity(t *testing.T) {
	progs := []*lang.Program{mustSB()}
	for _, name := range []string{"peterson_0", "peterson_4", "dekker"} {
		p, err := benchmarks.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, lang.Unroll(p, 2))
	}
	for _, p := range progs {
		for _, maxCtx := range []int{0, 4} {
			fpRes := check(t, p, Options{MaxContexts: maxCtx})
			exRes := check(t, p, Options{MaxContexts: maxCtx, ExactDedup: true})
			if fpRes.Violation != exRes.Violation ||
				fpRes.States != exRes.States ||
				fpRes.Transitions != exRes.Transitions ||
				fpRes.Exhausted != exRes.Exhausted {
				t.Errorf("%s (ctx<=%d): fingerprint/exact divergence:\n fp: %+v\n ex: %+v",
					p.Name, maxCtx, fpRes, exRes)
			}
		}
	}
}

// TestCheckDedupProbeZeroAllocs guards the checker's hot path: key
// encoding into the reused buffer plus a visited-set probe is
// allocation-free in both modes.
func TestCheckDedupProbeZeroAllocs(t *testing.T) {
	if fp.RaceEnabled {
		t.Skip("allocation guards are meaningless under -race")
	}
	sys := NewSystem(lang.MustCompile(mustSB()))
	c := sys.Init()
	for _, exact := range []bool{false, true} {
		set := fp.NewSet(exact)
		buf := make([]byte, 0, 256)
		var dead []int
		buf, dead = sys.dedupKey(c, buf[:0], dead)
		set.Visit(buf, 0)
		allocs := testing.AllocsPerRun(500, func() {
			buf, dead = sys.dedupKey(c, buf[:0], dead[:0])
			set.Visit(buf, 0)
		})
		if allocs != 0 {
			t.Errorf("exact=%v: %v allocs per encode+probe, want 0", exact, allocs)
		}
	}
}
