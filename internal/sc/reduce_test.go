package sc

import (
	"testing"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
)

// mustMP is a message-passing shape: safe under SC (the full litmus
// corpora are swept by the partest DPOR harness; the sc unit tests keep
// to hand-rolled shapes to avoid an import cycle through core).
func mustMP() *lang.Program {
	return &lang.Program{
		Name: "mp",
		Vars: []string{"x", "y"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{
				lang.Write{Var: "x", Val: lang.C(1)},
				lang.Write{Var: "y", Val: lang.C(1)},
			}},
			{Name: "P1", Regs: []string{"a", "b"}, Body: []lang.Stmt{
				lang.Read{Reg: "a", Var: "y"},
				lang.Read{Reg: "b", Var: "x"},
				lang.Assert{Cond: lang.Or(lang.Eq(lang.R("a"), lang.C(0)), lang.Eq(lang.R("b"), lang.C(1)))},
			}},
		},
	}
}

// mustDisjoint is two threads over disjoint variables — everything
// commutes, so the reduction should collapse the diamond.
func mustDisjoint() *lang.Program {
	return &lang.Program{
		Name: "disjoint",
		Vars: []string{"x", "y"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{
				lang.Write{Var: "x", Val: lang.C(1)},
				lang.Write{Var: "x", Val: lang.C(2)},
			}},
			{Name: "P1", Body: []lang.Stmt{
				lang.Write{Var: "y", Val: lang.C(1)},
				lang.Write{Var: "y", Val: lang.C(2)},
			}},
		},
	}
}

// reduceCorpus returns the programs the reduction unit tests sweep:
// hand-rolled litmus shapes plus small unrolled mutex benchmarks.
func reduceCorpus(t *testing.T) map[string]*lang.Program {
	t.Helper()
	progs := map[string]*lang.Program{
		"sb":       mustSB(),
		"mp":       mustMP(),
		"disjoint": mustDisjoint(),
	}
	for _, name := range []string{"peterson_0", "peterson_4", "dekker"} {
		p, err := benchmarks.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		progs["bench/"+name] = lang.Unroll(p, 2)
	}
	return progs
}

// TestReduceParity is the reduction's core contract: on every corpus
// program the reduced search agrees with the unreduced unbounded one on
// the verdict and exhaustiveness, produces a witness whenever the
// unreduced search does, and visits no more states — in both stop and
// census modes, in both dedup modes.
func TestReduceParity(t *testing.T) {
	reducedOnSomething := false
	for name, p := range reduceCorpus(t) {
		for _, census := range []bool{false, true} {
			for _, exact := range []bool{false, true} {
				base := Options{CensusViolations: census, ExactDedup: exact}
				full := check(t, p, base)
				red := base
				red.Reduce = true
				got := check(t, p, red)
				if got.Violation != full.Violation {
					t.Errorf("%s census=%v exact=%v: Violation %v (reduced) vs %v (unreduced)",
						name, census, exact, got.Violation, full.Violation)
				}
				if got.Exhausted != full.Exhausted {
					t.Errorf("%s census=%v exact=%v: Exhausted %v (reduced) vs %v (unreduced)",
						name, census, exact, got.Exhausted, full.Exhausted)
				}
				if got.Violation && got.Trace == nil {
					t.Errorf("%s census=%v exact=%v: reduced violation without witness", name, census, exact)
				}
				// Comparable only when both ran to completion: a stop-mode
				// violation ends each search at an order-dependent prefix.
				if got.Exhausted && full.Exhausted && got.States > full.States {
					t.Errorf("%s census=%v exact=%v: reduced visited more states (%d) than unreduced (%d)",
						name, census, exact, got.States, full.States)
				}
				if census && got.States < full.States {
					reducedOnSomething = true
				}
			}
		}
	}
	if !reducedOnSomething {
		t.Error("reduction never shrank a census state count on the corpus")
	}
}

// TestReduceDeterministic runs the reduced census twice and requires
// identical results: the persistent-set seeds, sleep propagation and
// wake-up bookkeeping are all functions of the state alone.
func TestReduceDeterministic(t *testing.T) {
	for name, p := range reduceCorpus(t) {
		opts := Options{Reduce: true, CensusViolations: true}
		a := check(t, p, opts)
		b := check(t, p, opts)
		if a.States != b.States || a.Transitions != b.Transitions ||
			a.Violations != b.Violations || a.Violation != b.Violation {
			t.Errorf("%s: reduced census not deterministic: %+v vs %+v", name, a, b)
		}
	}
}

// TestReduceStrictOnBenchmark pins the headline claim: on at least one
// mutex benchmark the reduced census explores strictly fewer states
// than the unreduced unbounded census.
func TestReduceStrictOnBenchmark(t *testing.T) {
	p, err := benchmarks.ByName("peterson_0")
	if err != nil {
		t.Fatal(err)
	}
	prog := lang.Unroll(p, 2)
	full := check(t, prog, Options{CensusViolations: true})
	red := check(t, prog, Options{CensusViolations: true, Reduce: true})
	if red.Violation != full.Violation || red.Exhausted != full.Exhausted {
		t.Fatalf("verdict divergence: reduced %+v vs unreduced %+v", red, full)
	}
	if red.States >= full.States {
		t.Errorf("no strict reduction on peterson_0: %d reduced vs %d unreduced states", red.States, full.States)
	}
	t.Logf("peterson_0(2): %d -> %d states (%.2fx)", full.States, red.States, float64(full.States)/float64(red.States))
}

// TestReduceFallsBackOnLoops: a program with a (non-unrolled) spinloop
// has a cyclic CFG, where the reduction is unsound; Check must silently
// run the unreduced search instead and still find the violation.
func TestReduceFallsBackOnLoops(t *testing.T) {
	p := &lang.Program{
		Name: "spin",
		Vars: []string{"x"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{lang.Write{Var: "x", Val: lang.C(1)}}},
			{Name: "P1", Regs: []string{"r"}, Body: []lang.Stmt{
				lang.While{Cond: lang.Eq(lang.R("r"), lang.C(0)), Body: []lang.Stmt{
					lang.Read{Reg: "r", Var: "x"},
				}},
				lang.Assert{Cond: lang.C(0)},
			}},
		},
	}
	sys := NewSystem(lang.MustCompile(p))
	if sys.ReduceApplies() {
		t.Fatal("reduction claimed to apply to a cyclic CFG")
	}
	res := sys.Check(Options{Reduce: true})
	if !res.Violation {
		t.Error("fallback unreduced search missed the violation")
	}
}

// TestReduceWorkersRace: Reduce composed with Workers races a reduced
// serial search against the unreduced parallel one; the verdict must
// match the serial unreduced baseline at every width.
func TestReduceWorkersRace(t *testing.T) {
	for name, p := range reduceCorpus(t) {
		base := check(t, p, Options{})
		for _, w := range []int{1, 4} {
			got := check(t, p, Options{Reduce: true, Workers: w})
			if got.Violation != base.Violation {
				t.Errorf("%s workers=%d: raced Violation %v vs %v", name, w, got.Violation, base.Violation)
			}
			if got.Violation && got.Trace == nil {
				t.Errorf("%s workers=%d: raced violation without witness", name, w)
			}
		}
	}
}
