package sc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/sched"
	"ravbmc/internal/trace"
)

// resolveWorkers maps Options.Workers to a pool width: 0 selects the
// serial checker, n >= 1 exactly n workers, negative all CPUs.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.NumCPU()
	}
	return w
}

// errStopSearch halts the pool on a terminal condition: first violation
// (stop mode), the target configuration, or the MaxStates cap.
var errStopSearch = errors.New("sc: search stopped")

// testParallelExpandHook mirrors ra's hook: the worker-panic regression
// test injects a crash at the top of a parallel expansion.
var testParallelExpandHook func(worker, depth int)

// scPathNode is one link of a worker's path to a state; each link holds
// the events of one macro-step (several trace events). Chains are
// immutable and shared structurally between siblings.
type scPathNode struct {
	parent *scPathNode
	events []trace.Event
}

// toTrace materialises the chain root-first, appending extra events
// (the violating macro-step's, which never becomes a frontier item).
func (n *scPathNode) toTrace(extra []trace.Event) *trace.Trace {
	total := len(extra)
	for m := n; m != nil; m = m.parent {
		total += len(m.events)
	}
	events := make([]trace.Event, total)
	i := total - len(extra)
	copy(events[i:], extra)
	for m := n; m != nil; m = m.parent {
		i -= len(m.events)
		copy(events[i:i+len(m.events)], m.events)
	}
	return &trace.Trace{Events: events}
}

// scItem is one frontier item of the parallel check.
type scItem struct {
	cfg      *Config
	path     *scPathNode
	depth    int
	contexts int
}

// scParallel is the shared state of one parallel check; see
// ra.pexplorer for the pattern.
type scParallel struct {
	sys     *System
	opts    Options
	visited *fp.ShardedSet

	states      atomic.Int64
	transitions atomic.Int64
	violations  atomic.Int64
	dedupHits   atomic.Int64
	steps       atomic.Int64
	incomplete  atomic.Bool
	bestVFP     atomic.Uint64

	stopMu        sync.Mutex
	stopTrace     *trace.Trace
	targetReached bool

	// Per-worker reusable encode buffers: the zero-alloc encode+probe
	// guarantee holds per worker.
	bufs  [][]byte
	deads [][]int

	cStates, cTransitions    *obs.Counter
	cDedupHits, cDedupMisses *obs.Counter
	cMacroSteps              *obs.Counter
	gMaxDepth, gMaxContexts  *obs.Gauge

	stats   *obs.SearchStats
	flushMu sync.Mutex
	mark    flushMark
}

// checkParallel partitions the macro-step DFS across a work-stealing
// pool. The dedup discipline makes the explored node set
// schedule-invariant, so under CensusViolations a full run reproduces
// the serial States/Transitions/Violations exactly and the witness —
// regenerated serially from the minimal violation fingerprint — is
// byte-identical. Stop-mode searches report whichever worker won.
func (s *System) checkParallel(opts Options, workers int) Result {
	p := &scParallel{
		sys:     s,
		opts:    opts,
		visited: fp.NewShardedSet(opts.ExactDedup),
		bufs:    make([][]byte, workers),
		deads:   make([][]int, workers),
	}
	p.bestVFP.Store(^uint64(0))
	p.cStates = opts.Obs.Counter("sc.states")
	p.cTransitions = opts.Obs.Counter("sc.transitions")
	p.cDedupHits = opts.Obs.Counter("sc.dedup_hits")
	p.cDedupMisses = opts.Obs.Counter("sc.dedup_misses")
	p.cMacroSteps = opts.Obs.Counter("sc.macro_steps")
	p.gMaxDepth = opts.Obs.Gauge("sc.max_depth")
	p.gMaxContexts = opts.Obs.Gauge("sc.max_contexts_used")
	p.stats = opts.Obs.Search()

	ctx := opts.Ctx
	if !opts.Deadline.IsZero() {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(base, opts.Deadline)
		defer cancel()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return Result{TimedOut: true}
	}

	// The initial closure is scanned serially in its deterministic
	// order, exactly like the serial checker: its violations are counted
	// (and, in stop mode, terminal) before any worker starts.
	var res Result
	var roots []scItem
	initWitness := false
	for _, oc := range s.initClosure(s.Init()) {
		if oc.violation {
			res.Violation = true
			res.Violations++
			if res.Trace == nil {
				res.Trace = &trace.Trace{Events: oc.events}
				initWitness = true
			}
			if !opts.CensusViolations {
				return res
			}
			continue
		}
		roots = append(roots, scItem{
			cfg:  oc.cfg,
			path: &scPathNode{events: oc.events},
		})
	}

	pool := sched.NewSteal[scItem](workers, opts.StealSeed)
	err := pool.Run(ctx, roots, p.expand)
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}

	res.States = int(p.states.Load())
	res.Transitions = int(p.transitions.Load())
	res.Violations += int(p.violations.Load())
	res.Violation = res.Violations > 0
	p.stopMu.Lock()
	res.TargetReached = p.targetReached
	if p.stopTrace != nil && res.Trace == nil {
		res.Trace = p.stopTrace
	}
	p.stopMu.Unlock()
	if err != nil && !errors.Is(err, errStopSearch) {
		res.TimedOut = true
	}
	res.Exhausted = !p.incomplete.Load() && !res.TimedOut &&
		!res.TargetReached && !(res.Violation && !opts.CensusViolations)
	if opts.CensusViolations && p.violations.Load() > 0 && !initWitness &&
		!res.TargetReached && !res.TimedOut {
		// Census witness from the search (no init-closure violation
		// outranks it): replay serially for the canonical path of the
		// minimal violation fingerprint.
		res.Trace = s.regenWitness(opts, p.bestVFP.Load())
	}
	p.finalFlush()
	return res
}

// expand visits one frontier item: the same dedup, counters, caps,
// target and macro-step scan as the serial checker's expand.
func (p *scParallel) expand(ctx context.Context, w int, it scItem, push func(scItem), f sched.Frontier) error {
	if hook := testParallelExpandHook; hook != nil {
		hook(w, it.depth)
	}
	if p.steps.Add(1)%deadlineStride == 0 {
		p.flush(f)
	}
	buf, dead := p.sys.dedupKey(it.cfg, p.bufs[w][:0], p.deads[w])
	if p.opts.MaxContexts > 0 {
		buf = appendVal(buf, lang.Value(it.contexts))
	}
	p.bufs[w], p.deads[w] = buf, dead
	h := fp.Hash64(buf)
	if !p.visited.VisitHash(h, buf, 0) {
		p.dedupHits.Add(1)
		p.cDedupHits.Inc()
		return nil
	}
	states := p.states.Add(1)
	p.cStates.Inc()
	p.cDedupMisses.Inc()
	p.gMaxDepth.SetMax(int64(it.depth))
	p.gMaxContexts.SetMax(int64(it.contexts))
	if p.opts.MaxStates > 0 && states >= int64(p.opts.MaxStates) {
		p.incomplete.Store(true)
		return errStopSearch
	}
	if p.sys.targetAt(it.cfg, p.opts.TargetLabels) {
		p.stopMu.Lock()
		if !p.targetReached {
			p.targetReached = true
			p.stopTrace = it.path.toTrace(nil)
		}
		p.stopMu.Unlock()
		return errStopSearch
	}
	c := it.cfg
	order := make([]int, 0, len(p.sys.Prog.Procs))
	if c.cur >= 0 {
		order = append(order, c.cur)
	}
	n := len(p.sys.Prog.Procs)
	for i := 0; i < n; i++ {
		proc := i
		if p.opts.ReverseProcs {
			proc = n - 1 - i
		}
		if proc != c.cur {
			order = append(order, proc)
		}
	}
	ord := 0
	for _, proc := range order {
		if p.sys.status(c, proc) != statusReady {
			continue
		}
		nc := it.contexts
		if c.cur != proc {
			nc++
			if p.opts.MaxContexts > 0 && nc > p.opts.MaxContexts {
				continue
			}
		}
		p.cMacroSteps.Inc()
		for _, oc := range p.sys.macroStep(c, proc) {
			vord := ord
			ord++
			p.transitions.Add(1)
			p.cTransitions.Inc()
			if oc.violation {
				p.violations.Add(1)
				if !p.opts.CensusViolations {
					p.stopMu.Lock()
					if p.stopTrace == nil {
						p.stopTrace = it.path.toTrace(oc.events)
					}
					p.stopMu.Unlock()
					return errStopSearch
				}
				storeMin(&p.bestVFP, fp.MixOrdinal(h, vord))
				continue
			}
			push(scItem{
				cfg:      oc.cfg,
				path:     &scPathNode{parent: it.path, events: oc.events},
				depth:    it.depth + 1,
				contexts: nc,
			})
		}
	}
	return nil
}

// flush pushes since-last-flush deltas into the live telemetry block;
// the mark lives under flushMu so concurrent flushes never double-count
// and the sampled totals only ever grow.
func (p *scParallel) flush(f sched.Frontier) {
	if p.stats == nil {
		return
	}
	p.flushMu.Lock()
	cur := flushMark{
		states:      int(p.states.Load()),
		transitions: int(p.transitions.Load()),
		probes:      int(p.steps.Load()),
		hits:        int(p.dedupHits.Load()),
		violations:  int(p.violations.Load()),
	}
	p.stats.Add(
		int64(cur.states-p.mark.states),
		int64(cur.transitions-p.mark.transitions),
		int64(cur.probes-p.mark.probes),
		int64(cur.hits-p.mark.hits),
		int64(cur.violations-p.mark.violations),
	)
	p.mark = cur
	p.flushMu.Unlock()
	if f != nil {
		p.stats.SetFrontier(f.Pending())
	}
	p.stats.SetVisited(int64(p.visited.Len()), p.visited.ApproxBytes())
}

// finalFlush lands the run's totals after the pool has drained.
func (p *scParallel) finalFlush() {
	if p.stats == nil {
		return
	}
	p.flush(nil)
	p.stats.SetFrontier(0)
}

// regenWitness reruns the census serially in directed mode, stopping at
// the violation whose fingerprint the parallel census selected; its
// path is the canonical witness the serial census records. Telemetry
// and budgets are stripped from the replay.
func (s *System) regenWitness(opts Options, vfp uint64) *trace.Trace {
	o := opts
	o.Workers = 0
	o.Obs = nil
	o.Ctx = nil
	o.Deadline = time.Time{}
	o.MaxStates = 0
	o.Reduce = false
	e := &scChecker{
		sys:       s,
		opts:      o,
		visited:   fp.NewSet(o.ExactDedup),
		bestVFP:   ^uint64(0),
		directed:  true,
		stopAtVFP: vfp,
	}
	e.cStates = o.Obs.Counter("sc.states")
	e.cTransitions = o.Obs.Counter("sc.transitions")
	e.cDedupHits = o.Obs.Counter("sc.dedup_hits")
	e.cDedupMisses = o.Obs.Counter("sc.dedup_misses")
	e.cMacroSteps = o.Obs.Counter("sc.macro_steps")
	e.gMaxDepth = o.Obs.Gauge("sc.max_depth")
	e.gMaxContexts = o.Obs.Gauge("sc.max_contexts_used")
	e.stats = o.Obs.Search()
	e.exhausted = true
	for _, oc := range s.initClosure(s.Init()) {
		if oc.violation {
			continue
		}
		e.path = append(e.path[:0], oc.events...)
		if e.search(oc.cfg) {
			break
		}
	}
	return e.result.Trace
}

// targetAt reports whether every process listed in targets is at its
// label in c; shared by the serial and parallel checkers.
func (s *System) targetAt(c *Config, targets map[string]string) bool {
	if len(targets) == 0 {
		return false
	}
	for name, label := range targets {
		pi := s.Prog.ProcIndex(name)
		if pi < 0 {
			return false
		}
		if s.Prog.Procs[pi].LabelAt(c.pcs[pi]) != label {
			return false
		}
	}
	return true
}

// storeMin lowers a to v if v is smaller (lock-free running minimum).
func storeMin(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
