package sc

import (
	"testing"
	"time"

	"ravbmc/internal/lang"
)

func TestInitClosureRunsLocalPrefixes(t *testing.T) {
	// Both processes start with local assignments and a nondet; the
	// initial closure must branch over all combinations.
	p := lang.NewProgram("ic", "x")
	p.AddProc("p0", "r").Add(lang.NondetS("r", 0, 1), lang.WriteS("x", lang.R("r")))
	p.AddProc("p1", "s").Add(lang.AssignS("s", lang.C(7)), lang.ReadS("s", "x"))
	sys := NewSystem(lang.MustCompile(p))
	ocs := sys.initClosure(sys.Init())
	if len(ocs) != 2 { // two nondet values for p0; p1 deterministic
		t.Fatalf("initial closure produced %d configs, want 2", len(ocs))
	}
	for _, oc := range ocs {
		if oc.violation {
			t.Fatal("no violations expected in prefixes")
		}
		if got := sys.RegValue(oc.cfg, "p1", "s"); got != 7 {
			t.Errorf("p1 local prefix not executed: s=%d", got)
		}
	}
}

func TestNestedAtomicSections(t *testing.T) {
	p := lang.NewProgram("nested", "x", "y")
	p.AddProc("p0", "r").Add(
		lang.AtomicS(
			lang.WriteC("x", 1),
			lang.AtomicS(lang.WriteC("y", 1)),
			lang.WriteC("x", 2),
		),
	)
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "x"),
		lang.ReadS("b", "y"),
		// p1 can never observe the intermediate state x=1, y=0 ... x=1
		// only exists inside the atomic section; outside it x is 0 or 2.
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	res := NewSystem(lang.MustCompile(p)).Check(Options{})
	if res.Violation {
		t.Fatalf("nested atomic leaked an intermediate state:\n%v", res.Trace)
	}
	if !res.Exhausted {
		t.Fatal("expected exhaustive search")
	}
}

func TestViolationInsideAtomicReported(t *testing.T) {
	p := lang.NewProgram("va", "x")
	p.AddProc("p0", "r").Add(
		lang.AtomicS(
			lang.WriteC("x", 1),
			lang.AssertS(lang.C(0)),
		),
	)
	res := NewSystem(lang.MustCompile(p)).Check(Options{})
	if !res.Violation {
		t.Fatal("assert inside atomic must be reported")
	}
}

func TestDeadlineStopsSearch(t *testing.T) {
	// A program with a big enough space that the (already expired)
	// deadline cuts it off immediately.
	p := lang.NewProgram("dl", "x", "y", "z")
	for _, name := range []string{"p0", "p1", "p2"} {
		pr := p.AddProc(name, "r")
		for i := 0; i < 4; i++ {
			pr.Add(lang.NondetS("r", 0, 3), lang.WriteS("x", lang.R("r")), lang.ReadS("r", "y"))
		}
	}
	res := NewSystem(lang.MustCompile(p)).Check(Options{
		Deadline: time.Now().Add(-time.Second),
	})
	if !res.TimedOut {
		// The deadline is sampled every 1024 states; tiny spaces may
		// finish first, but this one cannot.
		if res.Exhausted {
			t.Skip("space finished before the first deadline sample")
		}
		t.Fatal("expired deadline must report TimedOut")
	}
}

func TestTargetLabelsReached(t *testing.T) {
	p := lang.NewProgram("tl", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.LabelS("goal", lang.Term{}))
	sys := NewSystem(lang.MustCompile(p))
	res := sys.Check(Options{TargetLabels: map[string]string{"p0": "goal"}})
	if !res.TargetReached {
		t.Fatal("goal label must be reachable")
	}
	res2 := sys.Check(Options{TargetLabels: map[string]string{"p0": "nosuch"}})
	if res2.TargetReached {
		t.Fatal("nonexistent label reported reached")
	}
}

func TestStuckAssumeDoesNotBlockOthers(t *testing.T) {
	// p0 parks at a false assume after writing x=1; p1 must still be
	// able to observe the write and fail its assertion.
	p := lang.NewProgram("stuck", "x")
	p.AddProc("p0", "r").Add(
		lang.WriteC("x", 1),
		lang.AssignS("r", lang.C(0)),
		lang.AssumeS(lang.Eq(lang.R("r"), lang.C(1))), // never true
		lang.WriteC("x", 2),                           // unreachable
	)
	p.AddProc("p1", "a").Add(
		lang.ReadS("a", "x"),
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	res := NewSystem(lang.MustCompile(p)).Check(Options{})
	if !res.Violation {
		t.Fatal("p1 must observe x=1 although p0 is parked")
	}
	// And x=2 must never be observable.
	q := p.Clone()
	q.Procs[1].Body = []lang.Stmt{
		lang.ReadS("a", "x"),
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(2))),
	}
	res2 := NewSystem(lang.MustCompile(q)).Check(Options{})
	if res2.Violation {
		t.Fatal("code behind a permanently false assume executed")
	}
}

func TestReverseProcsCoversSameSpace(t *testing.T) {
	p := mustSB()
	fwd := NewSystem(lang.MustCompile(p)).Check(Options{})
	rev := NewSystem(lang.MustCompile(p)).Check(Options{ReverseProcs: true})
	// State counts may differ (dominance pruning is order-dependent) but
	// the verdict and exhaustiveness may not.
	if fwd.Violation != rev.Violation || fwd.Exhausted != rev.Exhausted {
		t.Errorf("orders disagree: fwd(viol=%v exh=%v) rev(viol=%v exh=%v)",
			fwd.Violation, fwd.Exhausted, rev.Violation, rev.Exhausted)
	}
}

func TestMaxStatesZeroMeansUnlimited(t *testing.T) {
	p := lang.NewProgram("s", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	res := NewSystem(lang.MustCompile(p)).Check(Options{MaxStates: 0})
	if !res.Exhausted {
		t.Fatal("tiny program must be exhausted with no cap")
	}
}
