package sc

// Partial-order reduction for the macro-step SC checker.
//
// The reduced search explores, at each state, only a persistent set of
// processes (a source-set-style closure computed from the action
// metadata of the compiled program) further pruned by sleep sets. Two
// macro steps of different processes are independent when their shared
// footprints do not conflict (no location accessed by both with a write
// on either side): executing them in either order from the same state
// reaches the same state, so one representative interleaving suffices.
// A macro step's shared footprint is exactly its one visible operation
// (plus the body of its atomic block) — the trailing local run touches
// no shared state by construction — which is what makes the macro-step
// granularity such a good fit for the reduction.
//
// Soundness requires an acyclic macro-step graph (loop-unrolled
// programs; Check falls back to the unreduced search otherwise, see
// reduceTables.ok) and, because commuting independent steps changes
// context-switch counts, the reduced search always runs with an
// unbounded context bound: its state graph is then a subgraph of the
// unreduced unbounded one, so verdicts agree and state counts can only
// shrink. The sleep-set interaction with state dedup follows the
// classical state-caching rule: the visited set stores the sleep mask
// of the first visit, a revisit whose mask is a superset is pruned, and
// a revisit needing more is woken up for exactly the difference.

import (
	"context"
	"sync"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
	"ravbmc/internal/trace"
)

// bitset is a fixed-width bit vector over shared locations (scalars
// first, then one bit per whole array — array accesses are tracked at
// whole-array granularity).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

// or unions c into b and reports whether b changed.
func (b bitset) or(c bitset) bool {
	changed := false
	for i, w := range c {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bitset) intersects(c bitset) bool {
	for i := range b {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// locFoot is a read/write footprint over shared locations.
type locFoot struct{ rd, wr bitset }

func newLocFoot(n int) locFoot { return locFoot{rd: newBitset(n), wr: newBitset(n)} }

// conflicts reports whether two footprints are dependent: a common
// location with a write on either side.
func (f locFoot) conflicts(g locFoot) bool {
	return f.wr.intersects(g.rd) || f.wr.intersects(g.wr) || f.rd.intersects(g.wr)
}

// reduceTables is the per-program static dependence metadata, computed
// once per System on first reduced search.
type reduceTables struct {
	// ok is false when the reduction does not apply: more than 64
	// processes (sleep masks are one word) or a cyclic control-flow
	// graph (non-unrolled loops make the macro-step graph cyclic, where
	// persistent sets with state dedup are unsound — the ignoring
	// problem). Check silently falls back to the unreduced search.
	ok bool
	// step[p][pc] over-approximates the shared footprint of the next
	// macro step of process p at pc: the first visible operation
	// reachable through local code, or the whole atomic block when that
	// operation opens one.
	step [][]locFoot
	// future[p][pc] over-approximates the shared footprint of every
	// instruction reachable from pc — the closure's "anything q may
	// ever do".
	future [][]locFoot
}

// nLocs returns the number of shared locations: scalars plus arrays.
func (s *System) nLocs() int { return len(s.Prog.Vars) + len(s.Prog.Arrays) }

// locOfVar maps a scalar variable to its location bit; locOfArr an array.
func (s *System) locOfVar(name string) int { return s.VarIdx[name] }
func (s *System) locOfArr(name string) int { return len(s.Prog.Vars) + s.ArrIdx[name] }

// reduction returns the lazily-built dependence tables. The sync.Once
// makes it safe to build while an unreduced parallel search shares the
// System (the Workers race in raceReduced).
func (s *System) reduction() *reduceTables {
	s.redOnce.Do(func() { s.red = s.buildReduction() })
	return s.red
}

// ReduceApplies reports whether the partial-order reduction applies to
// this program (acyclic control flow, at most 64 processes).
func (s *System) ReduceApplies() bool { return s.reduction().ok }

// ownFoot adds the shared accesses of one instruction to f.
func (s *System) ownFoot(f locFoot, in *lang.Instr) {
	switch in.Op {
	case lang.OpReadVar:
		f.rd.set(s.locOfVar(in.Var))
	case lang.OpWriteVar:
		f.wr.set(s.locOfVar(in.Var))
	case lang.OpCASVar:
		// A CAS reads and writes its variable; a parked CAS is also
		// re-enabled by writes to it, which the read bit captures.
		f.rd.set(s.locOfVar(in.Var))
		f.wr.set(s.locOfVar(in.Var))
	case lang.OpLoadArrEl:
		f.rd.set(s.locOfArr(in.Var))
	case lang.OpStoreArrEl:
		f.wr.set(s.locOfArr(in.Var))
	}
}

func (s *System) buildReduction() *reduceTables {
	r := &reduceTables{}
	if len(s.Prog.Procs) > 64 {
		return r
	}
	// The reduction requires forward-only control flow (acyclic
	// macro-step graph). Compiled programs only have backward edges for
	// while loops and the term self-loop sink.
	for _, pr := range s.Prog.Procs {
		for pc := range pr.Code {
			in := &pr.Code[pc]
			if in.Op == lang.OpTermProc {
				continue
			}
			if in.Next <= pc || (in.Op == lang.OpCJmp && in.Else <= pc) {
				return r
			}
		}
	}
	n := s.nLocs()
	for _, pr := range s.Prog.Procs {
		code := pr.Code
		fut := make([]locFoot, len(code))
		stp := make([]locFoot, len(code))
		// Forward-only edges: one reverse pass computes both fixpoints.
		for pc := len(code) - 1; pc >= 0; pc-- {
			in := &code[pc]
			f := newLocFoot(n)
			s.ownFoot(f, in)
			if in.Op != lang.OpTermProc {
				f.rd.or(fut[in.Next].rd)
				f.wr.or(fut[in.Next].wr)
				if in.Op == lang.OpCJmp {
					f.rd.or(fut[in.Else].rd)
					f.wr.or(fut[in.Else].wr)
				}
			}
			fut[pc] = f
			switch {
			case in.Op == lang.OpAtomicBegin:
				stp[pc] = s.atomicFoot(pr, pc)
			case in.GloballyVisible():
				g := newLocFoot(n)
				s.ownFoot(g, in)
				stp[pc] = g
			case in.Op == lang.OpTermProc:
				stp[pc] = newLocFoot(n)
			default:
				// Local instruction: the next macro step starts at
				// whatever visible operation follows.
				g := newLocFoot(n)
				g.rd.or(stp[in.Next].rd)
				g.wr.or(stp[in.Next].wr)
				if in.Op == lang.OpCJmp {
					g.rd.or(stp[in.Else].rd)
					g.wr.or(stp[in.Else].wr)
				}
				stp[pc] = g
			}
		}
		r.future = append(r.future, fut)
		r.step = append(r.step, stp)
	}
	r.ok = true
	return r
}

// atomicFoot over-approximates the shared footprint of the atomic block
// opening at pc0: every instruction reachable before the matching
// AtomicEnd. The local run after the block touches no shared state, so
// this covers the whole macro step.
func (s *System) atomicFoot(pr *lang.CompiledProc, pc0 int) locFoot {
	f := newLocFoot(s.nLocs())
	type node struct{ pc, depth int }
	seen := map[node]bool{}
	stack := []node{{pr.Code[pc0].Next, 1}}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[nd] {
			continue
		}
		seen[nd] = true
		in := &pr.Code[nd.pc]
		switch in.Op {
		case lang.OpTermProc:
			continue
		case lang.OpAtomicBegin:
			stack = append(stack, node{in.Next, nd.depth + 1})
		case lang.OpAtomicEnd:
			if nd.depth > 1 {
				stack = append(stack, node{in.Next, nd.depth - 1})
			}
		case lang.OpCJmp:
			stack = append(stack, node{in.Next, nd.depth}, node{in.Else, nd.depth})
		default:
			s.ownFoot(f, in)
			stack = append(stack, node{in.Next, nd.depth})
		}
	}
	return f
}

// procBit is the sleep/persistent mask bit of process p.
func procBit(p int) uint64 { return 1 << uint(p) }

// persistentSet computes the persistent set at c: a deterministic
// source-set-style closure seeded with the context holder (or the first
// ready process in scan order). Invariant after the closure: no process
// outside the set can ever perform a step conflicting with the *next*
// step of any member, so deferring outsiders until after a member moved
// loses no behaviour. The returned mask is restricted to ready
// processes (stuck-at-CAS members contribute constraints but no
// transitions; permanently-stuck and terminated processes neither).
func (e *scChecker) persistentSet(c *Config) uint64 {
	r := e.sys.reduction()
	n := len(e.sys.Prog.Procs)
	var ready, live uint64
	for p := 0; p < n; p++ {
		in := &e.sys.Prog.Procs[p].Code[c.pcs[p]]
		switch e.sys.status(c, p) {
		case statusTerminated:
		case statusStuck:
			// A failed assume reads only the process's own registers,
			// which nothing else can change: stuck forever. A parked
			// CAS can be re-enabled by another process's write.
			if in.Op != lang.OpAssumeCond {
				live |= procBit(p)
			}
		case statusReady:
			ready |= procBit(p)
			live |= procBit(p)
		}
	}
	if ready == 0 {
		return 0
	}
	seed := -1
	for _, p := range e.scanOrder(c) {
		if ready&procBit(p) != 0 {
			seed = p
			break
		}
	}
	var inP uint64
	queue := e.psQueue[:0]
	queue = append(queue, seed)
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if inP&procBit(p) != 0 {
			continue
		}
		inP |= procBit(p)
		pf := r.step[p][c.pcs[p]]
		for q := 0; q < n; q++ {
			if q == p || inP&procBit(q) != 0 || live&procBit(q) == 0 {
				continue
			}
			if r.future[q][c.pcs[q]].conflicts(pf) {
				queue = append(queue, q)
			}
		}
	}
	e.psQueue = queue[:0]
	return inP & ready
}

// scanOrder returns the canonical process scan order at c: the context
// holder first, then declaration (or reversed) order — identical to the
// unreduced checker's bias towards near-serial schedules.
func (e *scChecker) scanOrder(c *Config) []int {
	order := e.orderBuf[:0]
	if c.cur >= 0 {
		order = append(order, c.cur)
	}
	n := len(e.sys.Prog.Procs)
	for i := 0; i < n; i++ {
		p := i
		if e.opts.ReverseProcs {
			p = n - 1 - i
		}
		if p != c.cur {
			order = append(order, p)
		}
	}
	e.orderBuf = order
	return order
}

// stepEventsFoot fills e.execFoot with the dynamic shared footprint of
// one executed macro step, read off its trace events (precise per
// nondeterministic branch, unlike the static tables).
func (e *scChecker) stepEventsFoot(events []trace.Event) locFoot {
	if e.execFoot.rd == nil {
		e.execFoot = newLocFoot(e.sys.nLocs())
	}
	e.execFoot.rd.clear()
	e.execFoot.wr.clear()
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case trace.KindRead:
			if ev.HasIdx {
				e.execFoot.rd.set(e.sys.locOfArr(ev.Var))
			} else {
				e.execFoot.rd.set(e.sys.locOfVar(ev.Var))
			}
		case trace.KindWrite:
			if ev.HasIdx {
				e.execFoot.wr.set(e.sys.locOfArr(ev.Var))
			} else {
				e.execFoot.wr.set(e.sys.locOfVar(ev.Var))
			}
		case trace.KindCAS:
			e.execFoot.rd.set(e.sys.locOfVar(ev.Var))
			e.execFoot.wr.set(e.sys.locOfVar(ev.Var))
		}
	}
	return e.execFoot
}

// filterSleep keeps asleep only the processes whose next step is
// independent of the executed step: the classical sleep-set inheritance
// rule.
func (e *scChecker) filterSleep(mask uint64, stepFoot locFoot, c *Config) uint64 {
	if mask == 0 {
		return 0
	}
	r := e.sys.reduction()
	out := mask
	for q := 0; mask != 0; q, mask = q+1, mask>>1 {
		if mask&1 == 0 {
			continue
		}
		if r.step[q][c.pcs[q]].conflicts(stepFoot) {
			out &^= procBit(q)
		}
	}
	return out
}

// lookupMask returns the stored first-visit sleep mask of the state
// currently encoded in e.keyBuf (hash h), if any.
func (e *scChecker) lookupMask(h uint64) (uint64, bool) {
	if e.rmEx != nil {
		m, ok := e.rmEx[string(e.keyBuf)]
		return m, ok
	}
	m, ok := e.rm[h]
	return m, ok
}

func (e *scChecker) storeMask(h uint64, m uint64) {
	if e.rmEx != nil {
		e.rmEx[string(e.keyBuf)] = m
		return
	}
	e.rm[h] = m
}

// reducedVisited returns the visited-set occupancy of the reduced
// search, for telemetry.
func (e *scChecker) reducedVisited() (int, int64) {
	if e.rmEx != nil {
		n := len(e.rmEx)
		return n, e.rmKeyBytes + int64(n)*exactMaskEntryBytes
	}
	return len(e.rm), int64(len(e.rm)) * fpMaskEntryBytes
}

// Per-entry map overheads of the mask maps, mirroring fp.Set's.
const (
	fpMaskEntryBytes    = 24
	exactMaskEntryBytes = 56
)

// expandReduced is expand for the reduced search: persistent-set
// restricted scan, sleep-mask-aware dedup with wake-ups, sleep
// inheritance into children. The context bound is always unbounded here
// (Check forces it), so the dedup key carries no contexts coordinate.
func (e *scChecker) expandReduced(c *Config, depth int, sleep uint64) ([]scChild, bool) {
	e.steps++
	if e.steps%deadlineStride == 0 {
		e.flushStats(depth)
		if e.ctx != nil && e.ctx.Err() != nil {
			e.exhausted = false
			e.result.TimedOut = true
			return nil, true
		}
	}
	e.keyBuf, e.deadBuf = e.sys.dedupKey(c, e.keyBuf[:0], e.deadBuf)
	h := fp.Hash64(e.keyBuf)
	pset := e.persistentSet(c)
	var explore, exploredBefore uint64
	prev, revisit := e.lookupMask(h)
	if !revisit {
		if e.rmEx != nil {
			e.rmKeyBytes += int64(len(e.keyBuf))
		}
		e.storeMask(h, sleep)
		explore = pset &^ sleep
		e.result.States++
		e.cStates.Inc()
		e.cDedupMisses.Inc()
		e.gMaxDepth.SetMax(int64(depth))
		if e.opts.MaxStates > 0 && e.result.States >= e.opts.MaxStates {
			e.exhausted = false
			return nil, true
		}
	} else {
		if prev&^sleep == prev {
			// First visit explored at least everything this visit
			// needs: prune, exactly like a plain dedup hit.
			e.dedupHits++
			e.cDedupHits.Inc()
			return nil, false
		}
		// Wake-up: the state was first visited with a larger sleep
		// set. Explore exactly the newly-needed processes and lower
		// the stored mask to the intersection.
		exploredBefore = pset &^ prev
		explore = pset & prev &^ sleep
		e.storeMask(h, prev&sleep)
	}
	if explore == 0 {
		return nil, false
	}
	running := sleep | exploredBefore
	var kids []scChild
	ord := 0
	for _, p := range e.scanOrder(c) {
		if explore&procBit(p) == 0 {
			continue
		}
		e.cMacroSteps.Inc()
		for _, oc := range e.sys.macroStep(c, p) {
			vord := ord
			ord++
			e.result.Transitions++
			e.cTransitions.Inc()
			if oc.violation {
				e.result.Violation = true
				e.result.Violations++
				vfp := fp.MixOrdinal(h, vord)
				switch {
				case !e.opts.CensusViolations:
					evs := append(append([]trace.Event(nil), e.path...), oc.events...)
					e.result.Trace = &trace.Trace{Events: evs}
					return nil, true
				case !e.initWitness && (e.result.Trace == nil || vfp < e.bestVFP):
					e.bestVFP = vfp
					evs := append(append([]trace.Event(nil), e.path...), oc.events...)
					e.result.Trace = &trace.Trace{Events: evs}
				}
				continue
			}
			kids = append(kids, scChild{
				cfg:    oc.cfg,
				events: oc.events,
				sleep:  e.filterSleep(running, e.stepEventsFoot(oc.events), c),
			})
		}
		running |= procBit(p)
	}
	return kids, false
}

// raceReduced composes the reduction with Workers: a reduced serial
// search races the unreduced parallel one, first conclusive result
// wins and cancels the other. Verdicts agree by the parity invariant;
// the counters (and, in stop mode, the specific witness) are those of
// whichever arm won, so this mode trades the deterministic-counts
// contract for wall-clock. The shared Obs recorder stays on the
// parallel arm.
func (s *System) raceReduced(opts Options, workers int) Result {
	base := opts.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	ch := make(chan Result, 2)
	go func() {
		o := opts
		o.Workers = 0
		o.Ctx = ctx
		o.Obs = nil
		ch <- s.Check(o)
	}()
	go func() {
		o := opts
		o.Reduce = false
		o.Ctx = ctx
		ch <- s.Check(o)
	}()
	a := <-ch
	if !a.TimedOut {
		cancel()
		go func() { <-ch }()
		return a
	}
	b := <-ch
	if !b.TimedOut {
		return b
	}
	return a
}

// redOnce/red live on System so the tables are built once per program;
// declared here to keep all reduction state in one file.
type reduceState struct {
	redOnce sync.Once
	red     *reduceTables
}
