package sc

import (
	"testing"

	"ravbmc/internal/lang"
)

func check(t *testing.T, p *lang.Program, opts Options) Result {
	t.Helper()
	cp, err := lang.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return NewSystem(cp).Check(opts)
}

func TestStoreBufferingForbiddenUnderSC(t *testing.T) {
	// SB under SC forbids a==0 && b==0: the checker process observes the
	// published reads and asserts at least one of them is non-zero.
	res := NewSystem(lang.MustCompile(mustSB())).Check(Options{})
	if res.Violation {
		t.Fatalf("SC forbids the SB weak outcome, but checker found: %v", res.Trace)
	}
	if !res.Exhausted {
		t.Fatalf("search not exhausted")
	}
}

// mustSB builds SB where a dedicated checker process asserts the weak
// outcome never happens: each reader publishes its register, and a
// checker that has seen both published values asserts they are not both
// zero.
func mustSB() *lang.Program {
	p := lang.NewProgram("sb_checked", "x", "y", "outa", "outb", "flaga", "flagb")
	p.AddProc("p0", "a").Add(
		lang.WriteC("x", 1),
		lang.ReadS("a", "y"),
		lang.WriteS("outa", lang.R("a")),
		lang.WriteC("flaga", 1),
	)
	p.AddProc("p1", "b").Add(
		lang.WriteC("y", 1),
		lang.ReadS("b", "x"),
		lang.WriteS("outb", lang.R("b")),
		lang.WriteC("flagb", 1),
	)
	chk := p.AddProc("chk", "fa", "fb", "va", "vb")
	chk.Add(
		lang.ReadS("fa", "flaga"), lang.AssumeS(lang.Eq(lang.R("fa"), lang.C(1))),
		lang.ReadS("fb", "flagb"), lang.AssumeS(lang.Eq(lang.R("fb"), lang.C(1))),
		lang.ReadS("va", "outa"), lang.ReadS("vb", "outb"),
		lang.AssertS(lang.Or(lang.Ne(lang.R("va"), lang.C(0)), lang.Ne(lang.R("vb"), lang.C(0)))),
	)
	return p
}

func TestInterleavingBugFoundUnderSC(t *testing.T) {
	// Unsynchronised counter: both read 0 and both write 1; an assert
	// that the final value is 2 after both increments fails.
	p := lang.NewProgram("count", "c", "f0", "f1")
	for i, name := range []string{"p0", "p1"} {
		flag := []string{"f0", "f1"}[i]
		p.AddProc(name, "r").Add(
			lang.ReadS("r", "c"),
			lang.WriteS("c", lang.Add(lang.R("r"), lang.C(1))),
			lang.WriteC(flag, 1),
		)
	}
	chk := p.AddProc("chk", "a", "b", "v")
	chk.Add(
		lang.ReadS("a", "f0"), lang.AssumeS(lang.Eq(lang.R("a"), lang.C(1))),
		lang.ReadS("b", "f1"), lang.AssumeS(lang.Eq(lang.R("b"), lang.C(1))),
		lang.ReadS("v", "c"),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(2))),
	)
	res := check(t, p, Options{})
	if !res.Violation {
		t.Fatalf("lost-update bug must be found under SC")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatalf("violation must come with a trace")
	}
}

func TestContextBoundHidesAndRevealsBug(t *testing.T) {
	// The lost-update interleaving needs p0 and p1 to interleave at the
	// read/write boundary: schedule p0 (read), p1 (read+write), p0
	// (write), chk — at least 4 contexts. With MaxContexts 2 the bug is
	// unreachable (chk alone needs a context after a writer).
	p := lang.NewProgram("count2", "c", "f0", "f1")
	for i, name := range []string{"p0", "p1"} {
		flag := []string{"f0", "f1"}[i]
		p.AddProc(name, "r").Add(
			lang.ReadS("r", "c"),
			lang.WriteS("c", lang.Add(lang.R("r"), lang.C(1))),
			lang.WriteC(flag, 1),
		)
	}
	chk := p.AddProc("chk", "a", "b", "v")
	chk.Add(
		lang.ReadS("a", "f0"), lang.AssumeS(lang.Eq(lang.R("a"), lang.C(1))),
		lang.ReadS("b", "f1"), lang.AssumeS(lang.Eq(lang.R("b"), lang.C(1))),
		lang.ReadS("v", "c"),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(2))),
	)
	resLow := check(t, p, Options{MaxContexts: 2})
	if resLow.Violation {
		t.Fatalf("2 contexts cannot even complete both writers and the checker")
	}
	resHigh := check(t, p, Options{MaxContexts: 6})
	if !resHigh.Violation {
		t.Fatalf("6 contexts must reveal the lost-update bug")
	}
}

func TestAtomicBlockIsIndivisible(t *testing.T) {
	// Two processes atomically increment c; atomicity makes the final
	// value always 2, so the checker never fails.
	p := lang.NewProgram("atomic_count", "c", "f0", "f1")
	for i, name := range []string{"p0", "p1"} {
		flag := []string{"f0", "f1"}[i]
		p.AddProc(name, "r").Add(
			lang.AtomicS(
				lang.ReadS("r", "c"),
				lang.WriteS("c", lang.Add(lang.R("r"), lang.C(1))),
			),
			lang.WriteC(flag, 1),
		)
	}
	chk := p.AddProc("chk", "a", "b", "v")
	chk.Add(
		lang.ReadS("a", "f0"), lang.AssumeS(lang.Eq(lang.R("a"), lang.C(1))),
		lang.ReadS("b", "f1"), lang.AssumeS(lang.Eq(lang.R("b"), lang.C(1))),
		lang.ReadS("v", "c"),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(2))),
	)
	res := check(t, p, Options{})
	if res.Violation {
		t.Fatalf("atomic increments cannot lose updates: %v", res.Trace)
	}
	if !res.Exhausted {
		t.Fatalf("search must be exhaustive")
	}
}

func TestAssumeInsideAtomicDiscardsBranch(t *testing.T) {
	// The atomic block guesses v and assumes v==3; only that branch
	// survives, so the assert v==3 afterwards holds.
	p := lang.NewProgram("guess", "x")
	p.AddProc("p0", "v").Add(
		lang.AtomicS(
			lang.NondetS("v", 0, 5),
			lang.AssumeS(lang.Eq(lang.R("v"), lang.C(3))),
			lang.WriteS("x", lang.R("v")),
		),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(3))),
	)
	res := check(t, p, Options{})
	if res.Violation {
		t.Fatalf("assume inside atomic must filter guesses: %v", res.Trace)
	}
}

func TestBlockedCASUnblocks(t *testing.T) {
	// p1's CAS waits for x==1 which p0 provides; afterwards p1 asserts
	// success is observable.
	p := lang.NewProgram("caswait", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	p.AddProc("p1", "r").Add(
		lang.CASS("x", lang.C(1), lang.C(2)),
		lang.ReadS("r", "x"),
		lang.AssertS(lang.Eq(lang.R("r"), lang.C(2))),
	)
	res := check(t, p, Options{})
	if res.Violation {
		t.Fatalf("CAS must unblock and see its own write: %v", res.Trace)
	}
	// And the CAS does complete in some run: target its final label.
	cp := lang.MustCompile(p)
	sys := NewSystem(cp)
	res2 := sys.Check(Options{TargetLabels: map[string]string{"p1": "p1#3"}})
	if !res2.TargetReached {
		t.Fatalf("p1 must be able to run to completion")
	}
}

func TestArraysAndBoundsViolation(t *testing.T) {
	p := lang.NewProgram("arr")
	p.AddArray("a", 3, 7)
	p.AddProc("p0", "i", "v").Add(
		lang.LoadS("v", "a", lang.C(2)),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(7))),
		lang.StoreS("a", lang.C(1), lang.C(9)),
		lang.LoadS("v", "a", lang.C(1)),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(9))),
	)
	res := check(t, p, Options{})
	if res.Violation {
		t.Fatalf("array init/store/load mismatch: %v", res.Trace)
	}

	q := lang.NewProgram("arr_oob")
	q.AddArray("a", 3, 0)
	q.AddProc("p0", "i", "v").Add(
		lang.NondetS("i", 0, 4),
		lang.LoadS("v", "a", lang.R("i")),
	)
	res2 := check(t, q, Options{})
	if !res2.Violation {
		t.Fatalf("out-of-bounds access must be reported")
	}
}

func TestNondetBranchesAllExplored(t *testing.T) {
	// assert(v != k) must fail for every k in range; pick one.
	p := lang.NewProgram("nd", "x")
	p.AddProc("p0", "v").Add(
		lang.NondetS("v", 0, 9),
		lang.AssertS(lang.Ne(lang.R("v"), lang.C(7))),
	)
	res := check(t, p, Options{})
	if !res.Violation {
		t.Fatalf("nondet branch v=7 must be explored")
	}
}

func TestFenceIsNoOpUnderSC(t *testing.T) {
	p := lang.NewProgram("fence_sc", "x")
	p.AddProc("p0", "r").Add(
		lang.WriteC("x", 1),
		lang.FenceS(),
		lang.ReadS("r", "x"),
		lang.AssertS(lang.Eq(lang.R("r"), lang.C(1))),
	)
	res := check(t, p, Options{})
	if res.Violation {
		t.Fatalf("fence must not disturb SC execution: %v", res.Trace)
	}
}

func TestKeyEncodings(t *testing.T) {
	p := lang.NewProgram("k", "x")
	p.AddProc("p0", "r").Add(lang.AssignS("r", lang.C(1000000)), lang.WriteS("x", lang.R("r")))
	sys := NewSystem(lang.MustCompile(p))
	inits := sys.InitialConfigs() // local prefix (the big assign) executed
	if len(inits) != 1 {
		t.Fatalf("expected 1 initial config, got %d", len(inits))
	}
	c := inits[0]
	k1 := c.Key()
	for _, d := range sys.MacroSteps(c, 0) {
		if d.Key() == k1 {
			t.Error("distinct states share a key")
		}
		if sys.Mem(d, "x") != 1000000 {
			t.Errorf("large value lost: %d", sys.Mem(d, "x"))
		}
	}
}
