package sc

import (
	"testing"
	"time"

	"ravbmc/internal/obs"
)

// TestCheckExpiredDeadline: a deadline already in the past must abort
// the search before the first state — tiny probe time slices must not
// overshoot into a deadlineStride of free search.
func TestCheckExpiredDeadline(t *testing.T) {
	res := check(t, mustSB(), Options{Deadline: time.Now().Add(-time.Hour)})
	if !res.TimedOut {
		t.Error("expired deadline: TimedOut not set")
	}
	if res.Exhausted {
		t.Error("expired deadline: search claims exhaustion")
	}
	if res.States != 0 || res.Violation {
		t.Errorf("expired deadline explored: states=%d violation=%v", res.States, res.Violation)
	}
}

// TestCheckObsCounters: the obs instruments must agree with the Result
// statistics and the dedup split must account for every DFS visit.
func TestCheckObsCounters(t *testing.T) {
	rec := obs.New()
	res := check(t, mustSB(), Options{Obs: rec})
	rep := rec.Report()
	if got := rep.Counters["sc.states"]; got != int64(res.States) {
		t.Errorf("sc.states = %d, Result.States = %d", got, res.States)
	}
	if got := rep.Counters["sc.transitions"]; got != int64(res.Transitions) {
		t.Errorf("sc.transitions = %d, Result.Transitions = %d", got, res.Transitions)
	}
	if got := rep.Counters["sc.dedup_misses"]; got != int64(res.States) {
		t.Errorf("sc.dedup_misses = %d, want one per state %d", got, res.States)
	}
	if rep.Counters["sc.macro_steps"] == 0 {
		t.Error("sc.macro_steps not recorded")
	}
	if rep.Gauges["sc.max_depth"] == 0 {
		t.Error("sc.max_depth not recorded")
	}
	if rate, ok := rep.Derived["sc.dedup_hit_rate"]; !ok || rate < 0 || rate > 1 {
		t.Errorf("sc.dedup_hit_rate = %v (present=%v), want a ratio", rate, ok)
	}
}

// TestCheckAccumulatesAcrossRuns: repeated Check calls against one
// recorder must report totals (the VBMC restart ladder depends on it).
func TestCheckAccumulatesAcrossRuns(t *testing.T) {
	rec := obs.New()
	r1 := check(t, mustSB(), Options{Obs: rec})
	first := rec.Counter("sc.states").Value()
	if first != int64(r1.States) {
		t.Fatalf("first run: counter %d != states %d", first, r1.States)
	}
	r2 := check(t, mustSB(), Options{Obs: rec})
	if got := rec.Counter("sc.states").Value(); got != int64(r1.States+r2.States) {
		t.Errorf("after second run counter = %d, want accumulated %d", got, r1.States+r2.States)
	}
}
