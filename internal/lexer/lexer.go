// Package lexer tokenizes the concrete syntax of the concurrent language
// of internal/lang. The syntax is line-oriented in style but the token
// stream is newline-insensitive: statements are self-delimiting, and
// comments run from '#' or '//' to end of line.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Register // $name
	Int
	Punct // operators and punctuation, Text holds the exact spelling
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Register:
		return "register"
	case Int:
		return "integer"
	case Punct:
		return "punctuation"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Token is one lexical token. Line and Col are 1-based source positions.
type Token struct {
	Kind Kind
	Text string // identifier name, register name (without '$'), digits, or punct spelling
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case Register:
		return "$" + t.Text
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// puncts lists multi-character operators first so maximal munch applies.
var puncts = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "[", "]", "{", "}", ",", ":", ";",
	"+", "-", "*", "/", "%", "<", ">", "=", "!",
}

// Lex tokenizes src. It returns an error on the first malformed token.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
scan:
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '$':
			start, l0, c0 := i+1, line, col
			advance(1)
			for i < len(src) && isIdentByte(src[i]) {
				advance(1)
			}
			if i == start {
				return nil, fmt.Errorf("lexer: line %d col %d: '$' not followed by a register name", l0, c0)
			}
			toks = append(toks, Token{Kind: Register, Text: src[start:i], Line: l0, Col: c0})
		case isDigitByte(c):
			start, l0, c0 := i, line, col
			for i < len(src) && isDigitByte(src[i]) {
				advance(1)
			}
			toks = append(toks, Token{Kind: Int, Text: src[start:i], Line: l0, Col: c0})
		case isIdentStartByte(c):
			start, l0, c0 := i, line, col
			for i < len(src) && isIdentByte(src[i]) {
				advance(1)
			}
			toks = append(toks, Token{Kind: Ident, Text: src[start:i], Line: l0, Col: c0})
		default:
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: Punct, Text: p, Line: line, Col: col})
					advance(len(p))
					continue scan
				}
			}
			return nil, fmt.Errorf("lexer: line %d col %d: unexpected character %q", line, col, rune(c))
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStartByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigitByte(c)
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }
