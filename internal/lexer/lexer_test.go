package lexer

import (
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("proc p0 $r1 = x + 42")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, Ident, Register, Punct, Ident, Punct, Int, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: kind %v, want %v", i, got[i], want[i])
		}
	}
	if toks[2].Text != "r1" {
		t.Errorf("register text = %q", toks[2].Text)
	}
}

func TestLexMaximalMunch(t *testing.T) {
	toks, err := Lex("a==b != c <= d >= e && f || g < h > i = j ! k")
	if err != nil {
		t.Fatal(err)
	}
	var puncts []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			puncts = append(puncts, tok.Text)
		}
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||", "<", ">", "=", "!"}
	if len(puncts) != len(want) {
		t.Fatalf("puncts = %v, want %v", puncts, want)
	}
	for i := range want {
		if puncts[i] != want[i] {
			t.Errorf("punct %d = %q, want %q", i, puncts[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("x # whole line\ny // also\nz")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // x y z EOF
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("expected error for '@'")
	}
	if _, err := Lex("$ x"); err == nil {
		t.Error("expected error for bare '$'")
	}
}

func TestLexUnderscoreIdents(t *testing.T) {
	toks, err := Lex("_ms_var _avail_x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "_ms_var" || toks[1].Text != "_avail_x" {
		t.Errorf("underscored identifiers mis-lexed: %v", toks)
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Lex("$r x 5 +")
	if toks[0].String() != "$r" {
		t.Errorf("register prints %q", toks[0].String())
	}
	if toks[3].String() != `"+"` {
		t.Errorf("punct prints %q", toks[3].String())
	}
	if toks[4].String() != "end of input" {
		t.Errorf("eof prints %q", toks[4].String())
	}
}
