package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// testJobs is the pool width under test; the CI differential job forces
// it above 1 via RAVBMC_TEST_JOBS even on single-core runners.
func testJobs() int {
	if s := os.Getenv("RAVBMC_TEST_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// TestSchedDeterministicOrder: whatever the worker count and per-job
// latency, the result slice is in job order and carries each job's own
// value — the property the tables golden test builds on.
func TestSchedDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, 2, testJobs(), 16} {
		n := 1 + rng.Intn(40)
		jobs := make([]Job, n)
		for i := range jobs {
			i := i
			delay := time.Duration(rng.Intn(3)) * time.Millisecond
			jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (any, error) {
				time.Sleep(delay)
				return i, nil
			}}
		}
		res := New(workers).Run(context.Background(), jobs, nil)
		if len(res) != n {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Value != i || r.Err != nil {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

// TestSchedNoGoroutineLeak: repeated groups (including cancelled ones)
// must leave the goroutine count where it started.
func TestSchedNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := New(testJobs())
	for round := 0; round < 20; round++ {
		jobs := make([]Job, 8)
		for i := range jobs {
			jobs[i] = Job{Run: func(ctx context.Context) (any, error) {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(time.Duration(i) * 100 * time.Microsecond):
					return i, nil
				}
			}}
		}
		policy := Policy(nil)
		if round%2 == 1 {
			policy = func(Result) bool { return true } // cancel after the first completion
		}
		pool.Run(context.Background(), jobs, policy)
	}
	// Give timer goroutines of expired contexts a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestSchedCancellationIsPrompt: once the policy fires, running jobs see
// their context expire within one job granule and unstarted jobs are
// skipped without running.
func TestSchedCancellationIsPrompt(t *testing.T) {
	const n = 12
	var started atomic.Int32
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Run: func(ctx context.Context) (any, error) {
			started.Add(1)
			if i == 0 {
				return "winner", nil
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return "slow", nil
			}
		}}
	}
	start := time.Now()
	res := New(2).Run(context.Background(), jobs, func(r Result) bool {
		return r.Err == nil && r.Value == "winner"
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; want well under the 5s job sleep", elapsed)
	}
	if res[0].Value != "winner" {
		t.Fatalf("job 0 = %+v", res[0])
	}
	skipped := 0
	for _, r := range res[1:] {
		switch {
		case r.Skipped:
			skipped++
			if r.Err == nil {
				t.Errorf("skipped job %d has nil Err", r.Index)
			}
		case r.Err == nil:
			t.Errorf("job %d ran to completion after cancellation: %+v", r.Index, r)
		case !errors.Is(r.Err, context.Canceled):
			t.Errorf("job %d: err = %v, want context.Canceled", r.Index, r.Err)
		}
	}
	if int(started.Load())+skipped != n {
		t.Errorf("started=%d skipped=%d, want they partition %d jobs", started.Load(), skipped, n)
	}
}

// TestSchedPanicCapture: a panicking job becomes an error result with
// the panic value and stack; sibling jobs are unaffected.
func TestSchedPanicCapture(t *testing.T) {
	jobs := []Job{
		{Name: "ok", Run: func(context.Context) (any, error) { return 1, nil }},
		{Name: "boom", Run: func(context.Context) (any, error) { panic("kaboom") }},
		{Name: "ok2", Run: func(context.Context) (any, error) { return 2, nil }},
	}
	res := New(testJobs()).Run(context.Background(), jobs, nil)
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("sibling jobs affected by panic: %+v / %+v", res[0], res[2])
	}
	r := res[1]
	if !r.Panicked {
		t.Fatal("Panicked not set")
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", r.Err)
	}
	if pe.Val != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Val:%v Stack:%d bytes}", pe.Val, len(pe.Stack))
	}
}

// TestSchedPerJobDeadline: Job.Timeout expires that job's context alone.
func TestSchedPerJobDeadline(t *testing.T) {
	jobs := []Job{
		{Name: "bounded", Timeout: 20 * time.Millisecond, Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Name: "free", Run: func(ctx context.Context) (any, error) {
			return ctx.Err(), nil // must still be nil: sibling deadlines don't leak
		}},
	}
	res := New(2).Run(context.Background(), jobs, nil)
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Errorf("bounded job err = %v, want DeadlineExceeded", res[0].Err)
	}
	if res[1].Err != nil || res[1].Value != error(nil) {
		t.Errorf("free job saw a deadline: %+v", res[1])
	}
}

// TestSchedFirstErrorPolicy: the stock policy stops the group at the
// first failure.
func TestSchedFirstErrorPolicy(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{Run: func(ctx context.Context) (any, error) {
			if i == 0 {
				return nil, boom
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Second):
				return i, nil
			}
		}}
	}
	start := time.Now()
	res := New(2).Run(context.Background(), jobs, FirstError)
	if time.Since(start) > 3*time.Second {
		t.Fatal("FirstError did not cancel the group")
	}
	if !errors.Is(res[0].Err, boom) {
		t.Fatalf("res[0].Err = %v", res[0].Err)
	}
}

// TestSchedPropertyRandomGroups is the property sweep: random batches of
// jobs with random delays, failures, panics and policies must always
// yield a complete, ordered result slice whose entries are mutually
// exclusive in kind. Seeded, so failures replay.
func TestSchedPropertyRandomGroups(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(30)
			workers := 1 + rng.Intn(8)
			kinds := make([]int, n) // 0 ok, 1 error, 2 panic
			jobs := make([]Job, n)
			for i := range jobs {
				i := i
				kinds[i] = rng.Intn(3)
				delay := time.Duration(rng.Intn(2)) * time.Millisecond
				jobs[i] = Job{Run: func(ctx context.Context) (any, error) {
					time.Sleep(delay)
					switch kinds[i] {
					case 1:
						return nil, fmt.Errorf("err%d", i)
					case 2:
						panic(i)
					}
					return i, nil
				}}
			}
			var policy Policy
			if rng.Intn(2) == 1 {
				policy = FirstError
			}
			res := New(workers).Run(context.Background(), jobs, policy)
			if len(res) != n {
				t.Fatalf("%d results for %d jobs", len(res), n)
			}
			for i, r := range res {
				if r.Index != i {
					t.Fatalf("result %d has index %d", i, r.Index)
				}
				switch {
				case r.Skipped:
					if policy == nil {
						t.Errorf("job %d skipped without a policy", i)
					}
					if r.Value != nil || r.Err == nil {
						t.Errorf("skipped job %d = %+v", i, r)
					}
				case r.Panicked:
					if kinds[i] != 2 {
						t.Errorf("job %d panicked but kind=%d", i, kinds[i])
					}
				case r.Err == nil:
					if kinds[i] != 0 || r.Value != i {
						t.Errorf("job %d = %+v (kind=%d)", i, r, kinds[i])
					}
				}
			}
		})
	}
}

// FuzzSchedOrder fuzzes group shape and worker count: result ordering
// and completeness must hold for any configuration.
func FuzzSchedOrder(f *testing.F) {
	f.Add(uint8(3), uint8(1), int64(0))
	f.Add(uint8(17), uint8(4), int64(7))
	f.Add(uint8(1), uint8(16), int64(42))
	f.Fuzz(func(t *testing.T, nJobs, workers uint8, seed int64) {
		n := int(nJobs)%48 + 1
		w := int(workers)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]Job, n)
		for i := range jobs {
			i := i
			fail := rng.Intn(4) == 0
			jobs[i] = Job{Run: func(context.Context) (any, error) {
				if fail {
					return nil, fmt.Errorf("fail%d", i)
				}
				return i, nil
			}}
		}
		res := New(w).Run(context.Background(), jobs, nil)
		if len(res) != n {
			t.Fatalf("%d results for %d jobs", len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Skipped {
				t.Fatalf("result %d = %+v", i, r)
			}
			if r.Err == nil && r.Value != i {
				t.Fatalf("result %d carries value %v", i, r.Value)
			}
		}
	})
}
