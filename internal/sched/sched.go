// Package sched is the engine-wide parallel scheduler: a bounded,
// context-aware worker pool with deterministic result ordering, per-job
// deadlines, panic capture and group cancellation policies.
//
// The evaluation harness (internal/tables), the speculative minimal-K
// search (core.FindMinKParallel) and the differential portfolio
// (internal/diff) all fan independent engine runs — VBMC translations,
// SMC enumerations, RA explorations — through one Pool, so a table
// sweep saturates the machine instead of leaving all but one core idle.
//
// Determinism contract: Run returns results indexed by job position,
// regardless of completion order. Callers that assemble output from the
// returned slice (rather than from completion callbacks) therefore
// produce byte-identical artifacts for any worker count — the property
// the tables golden test pins down.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one unit of work: an independent engine run.
type Job struct {
	// Name identifies the job in results and logs ("dekker/VBMC",
	// "K=3", ...).
	Name string
	// Timeout bounds this job's run (0 = none): the job's context
	// expires Timeout after the job is picked up by a worker, not after
	// group submission — each job gets its own full budget, exactly as
	// a serial sweep would grant it.
	Timeout time.Duration
	// Run does the work. It must honour ctx: the engines' searches poll
	// ctx.Err() on a stride, so cancellation stops a run within one job
	// granule. The returned value is delivered verbatim in Result.Value.
	Run func(ctx context.Context) (any, error)
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the submitted slice; Run's returned
	// slice is ordered by it.
	Index int
	// Name echoes Job.Name.
	Name string
	// Value is what Job.Run returned (nil on error/skip/panic).
	Value any
	// Err is the job error: Run's own error, a *PanicError when the job
	// panicked, or the group context error when the job was skipped.
	Err error
	// Elapsed is the job's wall time (zero for skipped jobs).
	Elapsed time.Duration
	// Panicked is true when Run panicked; Err then holds a *PanicError.
	Panicked bool
	// Skipped is true when the group was cancelled before the job
	// started; Run was never called.
	Skipped bool
}

// PanicError converts a captured job panic into an error, preserving
// the panic value and the goroutine stack at the point of the panic.
type PanicError struct {
	Val   any
	Stack []byte
}

// Error renders the panic value; the stack is kept for logs.
func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Val) }

// Policy inspects one completed result and reports whether the rest of
// the group should be cancelled. It runs on the caller's goroutine, in
// completion order, so it may touch caller state without locking.
type Policy func(Result) bool

// FirstError is the cancellation policy that stops the group at the
// first job error (panics included, skips excluded).
func FirstError(r Result) bool { return r.Err != nil && !r.Skipped }

// Pool is a bounded worker pool. The zero value is not usable;
// construct with New. A Pool holds no goroutines between Run calls, so
// it can be shared and reused freely.
type Pool struct {
	workers int
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.NumCPU(), the "as fast as the hardware allows" default.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes the jobs on the pool and returns their results in job
// order (deterministic regardless of scheduling). It blocks until every
// job has finished or been skipped; it never leaks goroutines.
//
// cancelOn, when non-nil, is consulted after each completion (on the
// caller's goroutine, in completion order); returning true cancels the
// group: running jobs see their context expire, unstarted jobs are
// skipped. Cancelling the passed ctx has the same effect.
func (p *Pool) Run(ctx context.Context, jobs []Job, cancelOn Policy) []Result {
	if len(jobs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	results := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results <- exec(gctx, i, &jobs[i])
			}
		}()
	}
	go func() {
		// Workers drain every index even after cancellation (skipped
		// jobs return immediately), so this feeder cannot block forever.
		for i := range jobs {
			idx <- i
		}
		close(idx)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	out := make([]Result, len(jobs))
	for r := range results {
		out[r.Index] = r
		if cancelOn != nil && cancelOn(r) {
			cancel()
		}
	}
	return out
}

// exec runs one job with panic capture and its per-job deadline.
func exec(ctx context.Context, i int, j *Job) (res Result) {
	res = Result{Index: i, Name: j.Name}
	if err := ctx.Err(); err != nil {
		res.Err = err
		res.Skipped = true
		return res
	}
	jctx := ctx
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if v := recover(); v != nil {
			res.Panicked = true
			res.Value = nil
			res.Err = &PanicError{Val: v, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = j.Run(jctx)
	return res
}
