package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealPoolProcessesEveryItem explores a synthetic tree (each item
// below a depth cap pushes two children) at several widths and seeds:
// every node must be expanded exactly once and Run must return nil.
func TestStealPoolProcessesEveryItem(t *testing.T) {
	type node struct{ depth int }
	const depth = 12 // 2^13 - 1 nodes
	want := int64(1<<(depth+1) - 1)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, seed := range []int64{0, 1, 99} {
			var count atomic.Int64
			p := NewSteal[node](workers, seed)
			err := p.Run(context.Background(), []node{{0}},
				func(_ context.Context, _ int, it node, push func(node), _ Frontier) error {
					count.Add(1)
					if it.depth < depth {
						push(node{it.depth + 1})
						push(node{it.depth + 1})
					}
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if count.Load() != want {
				t.Errorf("workers=%d seed=%d: expanded %d nodes, want %d", workers, seed, count.Load(), want)
			}
		}
	}
}

// TestStealPoolWorkerIndexIsStable checks that the worker index passed
// to expand addresses per-worker scratch safely: concurrent increments
// of per-worker slots must sum to the item count without a single slot
// being shared (guarded by -race).
func TestStealPoolWorkerIndexIsStable(t *testing.T) {
	const workers = 4
	counts := make([]int, workers) // intentionally not atomic: per-worker only
	roots := make([]int, 1000)
	p := NewSteal[int](workers, 1)
	err := p.Run(context.Background(), roots,
		func(_ context.Context, w int, _ int, _ func(int), _ Frontier) error {
			counts[w]++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(roots) {
		t.Errorf("per-worker counts sum to %d, want %d", total, len(roots))
	}
}

// TestStealPoolPanicSurfacesAsError is the no-hang regression test: a
// panicking expand must cancel the group and Run must return a
// *PanicError promptly instead of deadlocking on the dead worker's
// abandoned items.
func TestStealPoolPanicSurfacesAsError(t *testing.T) {
	p := NewSteal[int](4, 0)
	done := make(chan error, 1)
	go func() {
		done <- p.Run(context.Background(), []int{0},
			func(_ context.Context, _ int, it int, push func(int), _ Frontier) error {
				if it == 500 {
					panic("worker died mid-exploration")
				}
				if it < 2000 {
					push(it + 1)
					push(it + 2)
				}
				return nil
			})
	}()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("Run returned %v, want *PanicError", err)
		}
		if pe.Val != "worker died mid-exploration" {
			t.Errorf("panic value %v not preserved", pe.Val)
		}
		if len(pe.Stack) == 0 {
			t.Error("panic stack not captured")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after a worker panic")
	}
}

// TestStealPoolExpandErrorCancels: an error return cancels the rest of
// the exploration and is returned by Run.
func TestStealPoolExpandErrorCancels(t *testing.T) {
	sentinel := errors.New("stop the world")
	var after atomic.Int64
	p := NewSteal[int](4, 0)
	err := p.Run(context.Background(), []int{0},
		func(ctx context.Context, _ int, it int, push func(int), _ Frontier) error {
			if it == 100 {
				return sentinel
			}
			if ctx.Err() != nil {
				after.Add(1)
				return nil
			}
			if it < 5000 {
				push(it + 1)
				push(it + 100)
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the expand error", err)
	}
}

// TestStealPoolContextCancellation cancels mid-run: Run must join all
// workers and report the context error, leaving the frontier abandoned.
func TestStealPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	p := NewSteal[int](4, 0)
	err := p.Run(ctx, []int{0},
		func(ctx context.Context, _ int, it int, push func(int), _ Frontier) error {
			if seen.Add(1) == 200 {
				cancel()
			}
			// Keep the frontier alive forever unless cancelled.
			push(it + 1)
			push(it + 2)
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestStealPoolFrontierPending samples the Frontier handle during a
// run: it must be positive while items are queued and zero after Run
// returns (every push matched by a completed expansion).
func TestStealPoolFrontierPending(t *testing.T) {
	var sawPending atomic.Bool
	var last atomic.Int64
	p := NewSteal[int](2, 0)
	err := p.Run(context.Background(), []int{0},
		func(_ context.Context, _ int, it int, push func(int), f Frontier) error {
			if f.Pending() > 1 {
				sawPending.Store(true)
			}
			// +1/+2 without dedup enumerates every path to the cap, so
			// keep the cap small: ~10k items, enough to see a frontier.
			if it < 20 {
				push(it + 1)
				push(it + 2)
			}
			last.Store(f.Pending())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPending.Load() {
		t.Error("Pending never exceeded 1 during a branching exploration")
	}
}

// TestStealPoolStealsAcrossWorkers pins the load-balancing property:
// with one root and a deep unbalanced expansion, more than one worker
// must end up expanding items (on any multi-worker pool the thieves
// must eventually acquire work).
func TestStealPoolStealsAcrossWorkers(t *testing.T) {
	const workers = 4
	var counts [workers]atomic.Int64
	p := NewSteal[int](workers, 3)
	err := p.Run(context.Background(), []int{0},
		func(_ context.Context, w int, it int, push func(int), _ Frontier) error {
			counts[w].Add(1)
			if it < 12 { // every +1/+2 path: a few hundred items
				push(it + 1)
				push(it + 2)
			}
			// Simulate real per-state work; on a single-core runner the
			// sleep also yields the P so thieves get scheduled while the
			// owner's deque is non-empty.
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for i := range counts {
		if counts[i].Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d workers expanded anything; stealing never happened", busy, workers)
	}
}
