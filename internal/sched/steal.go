package sched

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// StealPool is the intra-query counterpart of Pool: where Pool fans a
// fixed list of independent jobs across workers, StealPool runs one
// dynamically-growing exploration — each processed item may push new
// items — across per-worker deques with work stealing.
//
// Each worker owns a deque: it pushes and pops at the tail (LIFO, so a
// worker's traversal stays depth-first and cache-warm) and thieves
// steal half of a victim's items from the head (the oldest, shallowest
// entries, which tend to root the largest unexplored subtrees). The
// victim scan order is drawn from a per-worker seeded RNG, so a test
// harness can perturb steal schedules deterministically by varying the
// seed (the partest fuzz mode hunts order-dependence this way).
//
// Inflight work is bounded by the worker count — items wait in deques,
// not in goroutines — and termination is detected by a global pending
// counter covering queued and in-process items. A panic in the expand
// callback is captured as a *PanicError, the group is cancelled, and
// Run returns the error: a crashing worker surfaces as a failure, not
// a hang.
type StealPool[T any] struct {
	workers int
	seed    int64
}

// NewSteal returns a work-stealing pool of the given width; workers
// <= 0 selects runtime.NumCPU(). seed selects the steal-order RNG
// stream (any value; equal seeds give equal victim scan orders).
func NewSteal[T any](workers int, seed int64) *StealPool[T] {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &StealPool[T]{workers: workers, seed: seed}
}

// Workers returns the pool width.
func (p *StealPool[T]) Workers() int { return p.workers }

// stealRun is the shared state of one Run call.
type stealRun[T any] struct {
	deques  []stealDeque[T]
	pending atomic.Int64 // queued + in-process items
	done    chan struct{}
	doneOne sync.Once

	errMu sync.Mutex
	err   error // first expand error or captured panic
}

// stealDeque is one worker's deque. A mutex per deque (rather than a
// lock-free deque) keeps the code obviously correct; the lock is
// uncontended except while being stolen from, and one lock/unlock pair
// per state is noise against the cost of expanding a state.
type stealDeque[T any] struct {
	mu    sync.Mutex
	items []T
}

// Pending reports queued plus in-process items — the live frontier
// size, polled by the engines' telemetry flushes.
func (r *stealRun[T]) Pending() int64 { return r.pending.Load() }

// Frontier is the handle Run passes to the expand callback for
// telemetry: the live pending count of the exploration.
type Frontier interface {
	Pending() int64
}

// idleSleepMax caps the idle backoff of a worker that finds nothing to
// steal. Long enough to keep idle spinning cheap, short enough that
// wake-up latency is invisible next to per-state costs.
const idleSleepMax = time.Millisecond

// Run explores from the roots: each item is passed exactly once to
// expand, which may push follow-up items onto the calling worker's
// deque. Run blocks until every item has been processed (returns nil),
// the context is cancelled (returns ctx.Err()), expand returns an
// error, or a worker panics (returns the *PanicError) — in the latter
// three cases remaining items are abandoned and all workers join
// before Run returns. The worker index passed to expand identifies the
// executing worker (0-based), for worker-local scratch state.
func (p *StealPool[T]) Run(ctx context.Context, roots []T, expand func(ctx context.Context, worker int, item T, push func(T), f Frontier) error) error {
	if len(roots) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &stealRun[T]{
		deques: make([]stealDeque[T], p.workers),
		done:   make(chan struct{}),
	}
	r.pending.Store(int64(len(roots)))
	for i, root := range roots {
		d := &r.deques[i%p.workers]
		d.items = append(d.items, root)
	}

	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.worker(gctx, cancel, r, w, expand)
		}(w)
	}
	wg.Wait()

	r.errMu.Lock()
	err := r.err
	r.errMu.Unlock()
	if err != nil {
		return err
	}
	if r.pending.Load() > 0 {
		// Abandoned by cancellation before the frontier drained.
		return ctx.Err()
	}
	return nil
}

// fail records the first failure and cancels the group.
func (r *stealRun[T]) fail(cancel context.CancelFunc, err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	cancel()
}

// finish signals global completion exactly once.
func (r *stealRun[T]) finish() {
	r.doneOne.Do(func() { close(r.done) })
}

func (p *StealPool[T]) worker(ctx context.Context, cancel context.CancelFunc, r *stealRun[T], w int, expand func(ctx context.Context, worker int, item T, push func(T), f Frontier) error) {
	own := &r.deques[w]
	push := func(item T) {
		r.pending.Add(1)
		own.mu.Lock()
		own.items = append(own.items, item)
		own.mu.Unlock()
	}
	rng := rand.New(rand.NewSource(p.seed + int64(w)*0x9E3779B9))
	idle := time.Duration(0)

	// step runs expand on one item with panic capture; the deferred
	// pending decrement keeps termination detection exact even when the
	// callback panics or errors.
	step := func(item T) {
		defer func() {
			if r.pending.Add(-1) == 0 {
				r.finish()
			}
			if v := recover(); v != nil {
				r.fail(cancel, &PanicError{Val: v, Stack: debug.Stack()})
			}
		}()
		if err := expand(ctx, w, item, push, r); err != nil {
			r.fail(cancel, err)
		}
	}

	for {
		// Cancellation must be observed even while the own deque never
		// drains (a growing frontier): check before every pop, not just
		// when idle. One Err() load is noise against expanding a state.
		if ctx.Err() != nil {
			return
		}

		// Own deque first, newest item (LIFO: depth-first traversal).
		own.mu.Lock()
		if n := len(own.items); n > 0 {
			item := own.items[n-1]
			var zero T
			own.items[n-1] = zero
			own.items = own.items[:n-1]
			own.mu.Unlock()
			step(item)
			idle = 0
			continue
		}
		own.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		select {
		case <-r.done:
			return
		default:
		}

		// Steal half from a victim, scanning in seeded random order.
		stolen := false
		for _, v := range rng.Perm(p.workers) {
			if v == w {
				continue
			}
			victim := &r.deques[v]
			victim.mu.Lock()
			n := len(victim.items)
			if n == 0 {
				victim.mu.Unlock()
				continue
			}
			take := (n + 1) / 2
			own.mu.Lock()
			// Oldest first, preserving the victim's order at the thief.
			own.items = append(own.items, victim.items[:take]...)
			own.mu.Unlock()
			rest := copy(victim.items, victim.items[take:])
			for i := rest; i < n; i++ {
				var zero T
				victim.items[i] = zero
			}
			victim.items = victim.items[:rest]
			victim.mu.Unlock()
			stolen = true
			break
		}
		if stolen {
			idle = 0
			continue
		}

		// Nothing anywhere: back off, re-checking for completion,
		// cancellation and fresh work.
		if idle == 0 {
			runtime.Gosched()
			idle = 20 * time.Microsecond
			continue
		}
		select {
		case <-r.done:
			return
		case <-ctx.Done():
			return
		case <-time.After(idle):
		}
		if idle *= 2; idle > idleSleepMax {
			idle = idleSleepMax
		}
	}
}
