package parser

import (
	"math/rand"
	"testing"

	"ravbmc/internal/lang"
)

func TestParseFullProgram(t *testing.T) {
	src := `
program demo
var x y
array store[4] init 7

proc p0
  reg r1 r2
  start: $r1 = 1 + 2 * 3
  x = $r1
  $r2 = y
  cas(x, $r2, $r1 - 1)
  fence
  $r1 = nondet(0, 5)
  assume($r1 <= 5)
  assert($r1 >= 0)
  if $r1 == 3 then
    x = 3
  else
    while $r1 < 3 do
      $r1 = $r1 + 1
    done
  fi
  $r2 = store[1]
  store[$r1] = $r2 + 1
  atomic {
    x = 0
    y = 0
  }
  term
end

proc p1
  reg a
  $a = x
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || len(p.Vars) != 2 || len(p.Arrays) != 1 || len(p.Procs) != 2 {
		t.Fatalf("parsed shape wrong: %+v", p)
	}
	if p.Arrays[0].Size != 4 || p.Arrays[0].Init != 7 {
		t.Errorf("array decl wrong: %+v", p.Arrays[0])
	}
	first := p.Procs[0].Body[0]
	if first.StmtLabel() != "start" {
		t.Errorf("label lost: %q", first.StmtLabel())
	}
	asg, ok := first.(lang.Assign)
	if !ok {
		t.Fatalf("expected assign, got %T", first)
	}
	if got := asg.Val.Eval(func(string) lang.Value { return 0 }); got != 7 {
		t.Errorf("precedence broken: 1 + 2 * 3 = %d", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	src := `
var x y
proc p0
  reg r
  $r = x
  y = $r + 1
  if $r == 0 then
    $r = 1
  fi
  while $r > 0 do
    $r = $r - 1
  done
  cas(x, 0, 1)
  fence
  assert($r == 0)
  term
end
`
	p1 := MustParse(src)
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", p1.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"garbage", "blah blah"},
		{"missing end", "var x\nproc p\nx = 1\n"},
		{"shared in expr", "var x y\nproc p\nreg r\n$r = x + 1\nend"},
		{"undeclared var", "var x\nproc p\ny = 1\nend"},
		{"undeclared reg", "var x\nproc p\n$r = 1\nend"},
		{"bad cas", "var x\nproc p\ncas(x, 1)\nend"},
		{"if without fi", "var x\nproc p\nreg r\nif $r == 0 then\nx = 1\nend"},
		{"while without done", "var x\nproc p\nreg r\nwhile $r == 0 do\nx = 1\nend"},
		{"empty nondet range", "var x\nproc p\nreg r\n$r = nondet(5, 1)\nend"},
		{"var after keyword", "var\nproc p\nend"},
		{"lex error", "var x\nproc p\nx = 1 @ 2\nend"},
		{"assume missing paren", "var x\nproc p\nassume x == 1\nend"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseNegativeConstants(t *testing.T) {
	p := MustParse("var x\nproc p\nreg r\n$r = -5\nx = -$r\nend")
	asg := p.Procs[0].Body[0].(lang.Assign)
	if v := asg.Val.Eval(func(string) lang.Value { return 0 }); v != -5 {
		t.Errorf("negative literal = %d", v)
	}
}

func TestParseSemicolonsOptional(t *testing.T) {
	p := MustParse("var x\nproc p\nreg r\n$r = 1; x = $r; term\nend")
	if len(p.Procs[0].Body) != 3 {
		t.Errorf("expected 3 statements, got %d", len(p.Procs[0].Body))
	}
}

func TestParseComments(t *testing.T) {
	p := MustParse(`
var x  # shared counter
proc p // the only process
  reg r
  $r = 1  # load constant
  x = $r
end
`)
	if len(p.Procs[0].Body) != 2 {
		t.Errorf("comments mis-lexed: %d stmts", len(p.Procs[0].Body))
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want lang.Value
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 - 2 - 3", 5}, // left associative
		{"1 < 2 && 2 < 3", 1},
		{"0 || 1 && 0", 0},
		{"!0 && !0", 1},
		{"10 % 4 + 1", 3},
		{"-2 * 3", -6},
	}
	for _, c := range cases {
		p := MustParse("var x\nproc p\nreg r\n$r = " + c.src + "\nend")
		asg := p.Procs[0].Body[0].(lang.Assign)
		if got := asg.Val.Eval(func(string) lang.Value { return 0 }); got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

// TestRoundTripRandomPrograms (property): printing and reparsing a
// randomly built program is the identity up to printing.
func TestRoundTripRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomProgram(rng)
		src := p.String()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("generated program does not reparse: %v\n%s", err, src)
		}
		if q.String() != src {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", src, q.String())
		}
	}
}

func randomProgram(rng *rand.Rand) *lang.Program {
	vars := []string{"x", "y"}
	p := lang.NewProgram("rnd", vars...)
	for pi := 0; pi < 1+rng.Intn(2); pi++ {
		pr := p.AddProc([]string{"p0", "p1"}[pi], "r", "s")
		pr.Body = randomStmts(rng, vars, 3, 2)
	}
	return p
}

func randomStmts(rng *rand.Rand, vars []string, n, depth int) []lang.Stmt {
	regs := []string{"r", "s"}
	var out []lang.Stmt
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 2:
			out = append(out, lang.ReadS(regs[rng.Intn(2)], vars[rng.Intn(2)]))
		case k < 4:
			out = append(out, lang.WriteC(vars[rng.Intn(2)], lang.Value(rng.Intn(5))))
		case k < 5:
			out = append(out, lang.AssignS(regs[rng.Intn(2)], lang.Add(lang.R("r"), lang.C(1))))
		case k < 6:
			out = append(out, lang.CASS(vars[rng.Intn(2)], lang.C(0), lang.C(1)))
		case k < 7:
			out = append(out, lang.AssumeS(lang.Le(lang.R("r"), lang.C(3))))
		case k < 8 && depth > 0:
			out = append(out, lang.IfElseS(lang.Eq(lang.R("s"), lang.C(0)),
				randomStmts(rng, vars, 2, depth-1),
				randomStmts(rng, vars, 1, depth-1)))
		case k < 9 && depth > 0:
			out = append(out, lang.WhileS(lang.Lt(lang.R("r"), lang.C(2)),
				randomStmts(rng, vars, 2, depth-1)...))
		default:
			out = append(out, lang.FenceS())
		}
	}
	return out
}

func TestParseMoreErrorPaths(t *testing.T) {
	cases := []struct{ name, src string }{
		{"array missing bracket", "array a 4\nproc p\nend"},
		{"array bad size", "array a[x]\nproc p\nend"},
		{"array missing close", "array a[4\nproc p\nend"},
		{"program missing name", "program\nvar x\nproc p\nend"},
		{"proc missing name", "var x\nproc\nend"},
		{"reg empty", "var x\nproc p\nreg\nend"},
		{"nondet missing paren", "var x\nproc p\nreg r\n$r = nondet 1, 2\nend"},
		{"nondet missing comma", "var x\nproc p\nreg r\n$r = nondet(1 2)\nend"},
		{"nondet bad bounds", "var x\nproc p\nreg r\n$r = nondet(a, 2)\nend"},
		{"cas missing open", "var x\nproc p\ncas x, 0, 1)\nend"},
		{"cas missing close", "var x\nproc p\ncas(x, 0, 1\nend"},
		{"store missing eq", "array a[2]\nproc p\na[0] 5\nend"},
		{"load missing bracket", "array a[2]\nproc p\nreg r\n$r = a[0\nend"},
		{"atomic missing brace", "var x\nproc p\natomic x = 1 }\nend"},
		{"atomic missing close", "var x\nproc p\natomic { x = 1\nend"},
		{"if missing then", "var x\nproc p\nreg r\nif $r == 0\nx = 1\nfi\nend"},
		{"while missing do", "var x\nproc p\nreg r\nwhile $r == 0\nx = 1\ndone\nend"},
		{"dangling expr op", "var x\nproc p\nreg r\n$r = 1 +\nend"},
		{"keyword as expr", "var x\nproc p\nreg r\n$r = while\nend"},
		{"negative missing digits", "var x\nproc p\nreg r\n$r = nondet(-, 2)\nend"},
		{"unclosed paren expr", "var x\nproc p\nreg r\n$r = (1 + 2\nend"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected a parse error", c.name)
		}
	}
}

func TestParseRegStmtVariants(t *testing.T) {
	p := MustParse(`
var x
array tbl[4]
proc p
  reg r s
  $r = x
  $s = tbl[$r + 1]
  $r = nondet(-2, 2)
  $s = -$r + (3 * 2)
end
`)
	body := p.Procs[0].Body
	if _, ok := body[0].(lang.Read); !ok {
		t.Errorf("stmt 0 is %T, want Read", body[0])
	}
	if _, ok := body[1].(lang.LoadArr); !ok {
		t.Errorf("stmt 1 is %T, want LoadArr", body[1])
	}
	nd, ok := body[2].(lang.Nondet)
	if !ok || nd.Lo != -2 || nd.Hi != 2 {
		t.Errorf("stmt 2 = %#v, want nondet(-2,2)", body[2])
	}
	if _, ok := body[3].(lang.Assign); !ok {
		t.Errorf("stmt 3 is %T, want Assign", body[3])
	}
}

func TestParseEndifAlias(t *testing.T) {
	p := MustParse("var x\nproc p\nreg r\nif $r == 0 then\nx = 1\nendif\nend")
	if _, ok := p.Procs[0].Body[0].(lang.If); !ok {
		t.Error("endif alias not accepted")
	}
}
