package parser_test

import (
	"fmt"
	"strings"
	"testing"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/parser"
)

// roundTrip asserts the canonical-printer contract on one program:
// Canon output re-parses, and Canon is a fixed point of parse∘Canon —
// the property the content-addressed cache key relies on.
func roundTrip(t *testing.T, name string, p *lang.Program) {
	t.Helper()
	c := lang.Canon(p)
	q, err := parser.Parse(c)
	if err != nil {
		t.Fatalf("%s: canonical form does not re-parse: %v\n%s", name, err, c)
	}
	if c2 := lang.Canon(q); c2 != c {
		t.Fatalf("%s: Canon is not a fixed point:\n--- first\n%s\n--- second\n%s", name, c, c2)
	}
	// Display names ("MP-rev", "dekker (2)") need not be parseable
	// identifiers, so String() itself is not required to round-trip; the
	// canonical form, which drops the name, always must.
}

func TestCanonRoundTripClassicLitmus(t *testing.T) {
	for _, test := range litmus.Classic() {
		roundTrip(t, test.Name, test.Prog)
	}
}

func TestCanonRoundTripGeneratedLitmus(t *testing.T) {
	tests := litmus.Generated(2)
	stride := 7
	if testing.Short() {
		stride = 31
	}
	for i := 0; i < len(tests); i += stride {
		roundTrip(t, tests[i].Name, tests[i].Prog)
	}
}

func TestCanonRoundTripBenchmarks(t *testing.T) {
	names := []string{
		"dekker", "sim_dekker", "burns", "bakery", "lamport",
		"peterson_0", "peterson_1(3)", "peterson_2(3)", "peterson_4(2)",
		"szymanski_0", "szymanski_1(3)", "tbar_4",
	}
	for _, n := range names {
		prog, err := benchmarks.ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		roundTrip(t, n, prog)
		// The unrolled form is what the engines actually check; it must
		// canonicalise stably too (loops gone, labels injected by
		// EnsureLabels stripped again).
		roundTrip(t, n+"/unrolled", lang.EnsureLabels(lang.Unroll(prog, 2)))
	}
}

// TestCanonWhitespaceAndLabelInsensitive parses the same program in
// three different surface spellings and asserts one canonical form.
func TestCanonWhitespaceAndLabelInsensitive(t *testing.T) {
	variants := []string{
		"program mp\nvar x y\nproc p0\n  x = 1\n  y = 1\nend\nproc p1\n  reg a b\n  $a = y\n  $b = x\n  assert(!($a == 1 && $b == 0))\nend\n",
		"var y x\nproc writer\n    w1:   x = 1\n\n    w2: y = 1\nend\nproc reader\n\treg a b\n\tr1: $a = y\n\tr2: $b = x\n\tassert(!($a == 1 && $b == 0))\nend\n",
		"program renamed\nvar x y\nproc t1\nx = 1\ny = 1\nend\nproc t2\nreg a b\n$a = y\n$b = x\nassert(!($a == 1 && $b == 0))\nend\n",
	}
	var forms []string
	for i, src := range variants {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		forms = append(forms, lang.Canon(p))
	}
	for i := 1; i < len(forms); i++ {
		if forms[i] != forms[0] {
			t.Errorf("variant %d canonicalises differently:\n%s\nvs\n%s", i, forms[i], forms[0])
		}
	}
	if strings.Contains(forms[0], "w1") {
		t.Errorf("label leaked into canonical form:\n%s", forms[0])
	}
}

// TestCanonVerdictPreserved spot-checks that canonicalisation preserves
// the litmus oracle's verdict: the cache would otherwise serve wrong
// answers for canonically-equal sources.
func TestCanonVerdictPreserved(t *testing.T) {
	tests := litmus.Generated(2)
	stride := 97
	if testing.Short() {
		stride = 397
	}
	for i := 0; i < len(tests); i += stride {
		test := tests[i]
		q, err := parser.Parse(lang.Canon(test.Prog))
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		want := litmus.Oracle(test)
		got := litmus.Oracle(litmus.Test{Name: test.Name, Prog: q})
		if want != got {
			t.Errorf("%s: oracle verdict changed after canonicalisation: %v -> %v\n%s",
				test.Name, want, got, lang.Canon(test.Prog))
		}
	}
	_ = fmt.Sprint // keep fmt for debugging edits
}
