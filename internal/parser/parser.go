// Package parser builds lang.Program ASTs from the concrete syntax.
//
// Grammar (statements are self-delimiting; newlines are insignificant):
//
//	program  := ["program" IDENT] {"var" IDENT+} {"array" IDENT "[" INT "]" ["init" INT]} proc+
//	proc     := "proc" IDENT ["reg" IDENT+] stmt* "end"
//	stmt     := [IDENT ":"] core
//	core     := REG "=" "nondet" "(" int "," int ")"
//	          | REG "=" IDENT                    -- acquire read (IDENT a shared var)
//	          | REG "=" IDENT "[" expr "]"       -- array load (IDENT an array)
//	          | REG "=" expr                     -- assignment
//	          | IDENT "=" expr                   -- release write
//	          | IDENT "[" expr "]" "=" expr      -- array store
//	          | "cas" "(" IDENT "," expr "," expr ")"
//	          | "fence" | "term"
//	          | "assume" "(" expr ")" | "assert" "(" expr ")"
//	          | "if" expr "then" stmt* ["else" stmt*] ("fi"|"endif")
//	          | "while" expr "do" stmt* "done"
//	          | "atomic" "{" stmt* "}"
//	expr     := or; or := and {"||" and}; and := cmp {"&&" cmp}
//	cmp      := sum [("=="|"!="|"<"|"<="|">"|">=") sum]
//	sum      := prod {("+"|"-") prod}; prod := unary {("*"|"/"|"%") unary}
//	unary    := ("!"|"-") unary | INT | REG | "(" expr ")"
//
// Registers are written with a '$' prefix; bare identifiers in statement
// head position denote shared variables or arrays. Expressions cannot
// mention shared variables (paper Sec. 3).
package parser

import (
	"fmt"
	"strconv"

	"ravbmc/internal/lang"
	"ravbmc/internal/lexer"
)

var keywords = map[string]bool{
	"program": true, "var": true, "array": true, "init": true,
	"proc": true, "reg": true, "end": true,
	"if": true, "then": true, "else": true, "fi": true, "endif": true,
	"while": true, "do": true, "done": true,
	"cas": true, "fence": true, "assume": true, "assert": true,
	"nondet": true, "term": true, "atomic": true,
}

// Parse parses and validates a program.
func Parse(src string) (*lang.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *lang.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parser: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == lexer.Ident && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if t.Kind == lexer.Punct && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != lexer.Ident || keywords[t.Text] {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) intLit() (lang.Value, error) {
	neg := p.acceptPunct("-")
	t := p.cur()
	if t.Kind != lexer.Int {
		return 0, p.errf("expected integer, found %s", t)
	}
	p.pos++
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q: %v", t.Text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) program() (*lang.Program, error) {
	prog := &lang.Program{}
	if p.acceptKeyword("program") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		prog.Name = name
	}
	for {
		switch {
		case p.acceptKeyword("var"):
			// One or more variable names until the next keyword.
			n := 0
			for p.cur().Kind == lexer.Ident && !keywords[p.cur().Text] {
				name, _ := p.ident()
				prog.Vars = append(prog.Vars, name)
				n++
			}
			if n == 0 {
				return nil, p.errf("expected variable name after 'var'")
			}
		case p.acceptKeyword("array"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			size, err := p.intLit()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			var init lang.Value
			if p.acceptKeyword("init") {
				init, err = p.intLit()
				if err != nil {
					return nil, err
				}
			}
			prog.Arrays = append(prog.Arrays, lang.ArrayDecl{Name: name, Size: int(size), Init: init})
		case p.isKeyword("proc"):
			pr, err := p.proc()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, pr)
		case p.cur().Kind == lexer.EOF:
			return prog, nil
		default:
			return nil, p.errf("expected 'var', 'array' or 'proc', found %s", p.cur())
		}
	}
}

func (p *parser) proc() (*lang.Proc, error) {
	if err := p.expectKeyword("proc"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr := &lang.Proc{Name: name}
	if p.acceptKeyword("reg") {
		n := 0
		for p.cur().Kind == lexer.Ident && !keywords[p.cur().Text] {
			// Stop if this identifier is a label ("ident :") rather
			// than a register name.
			if p.peek().Kind == lexer.Punct && p.peek().Text == ":" {
				break
			}
			// Stop if this identifier begins a statement ("ident =" or
			// "ident [").
			if p.peek().Kind == lexer.Punct && (p.peek().Text == "=" || p.peek().Text == "[") {
				break
			}
			r, _ := p.ident()
			pr.Regs = append(pr.Regs, r)
			n++
		}
		if n == 0 {
			return nil, p.errf("expected register name after 'reg'")
		}
	}
	body, err := p.stmts(func() bool { return p.isKeyword("end") })
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	pr.Body = body
	return pr, nil
}

// stmts parses statements until stop() holds or EOF.
func (p *parser) stmts(stop func() bool) ([]lang.Stmt, error) {
	var out []lang.Stmt
	for !stop() {
		if p.cur().Kind == lexer.EOF {
			return nil, p.errf("unexpected end of input inside statement block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (lang.Stmt, error) {
	label := ""
	if t := p.cur(); t.Kind == lexer.Ident && !keywords[t.Text] &&
		p.peek().Kind == lexer.Punct && p.peek().Text == ":" {
		label = t.Text
		p.pos += 2
	}
	s, err := p.core()
	if err != nil {
		return nil, err
	}
	if label != "" {
		s = lang.LabelS(label, s)
	}
	p.acceptPunct(";")
	return s, nil
}

func (p *parser) core() (lang.Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == lexer.Register:
		return p.regStmt()
	case p.isKeyword("cas"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		x, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		old, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		newVal, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return lang.CAS{Var: x, Old: old, New: newVal}, nil
	case p.acceptKeyword("fence"):
		return lang.Fence{}, nil
	case p.acceptKeyword("term"):
		return lang.Term{}, nil
	case p.acceptKeyword("assume"):
		e, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return lang.Assume{Cond: e}, nil
	case p.acceptKeyword("assert"):
		e, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return lang.Assert{Cond: e}, nil
	case p.acceptKeyword("if"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		then, err := p.stmts(func() bool {
			return p.isKeyword("else") || p.isKeyword("fi") || p.isKeyword("endif")
		})
		if err != nil {
			return nil, err
		}
		var els []lang.Stmt
		if p.acceptKeyword("else") {
			els, err = p.stmts(func() bool { return p.isKeyword("fi") || p.isKeyword("endif") })
			if err != nil {
				return nil, err
			}
		}
		if !p.acceptKeyword("fi") && !p.acceptKeyword("endif") {
			return nil, p.errf("expected 'fi' or 'endif', found %s", p.cur())
		}
		return lang.If{Cond: cond, Then: then, Else: els}, nil
	case p.acceptKeyword("while"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("do"); err != nil {
			return nil, err
		}
		body, err := p.stmts(func() bool { return p.isKeyword("done") })
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("done"); err != nil {
			return nil, err
		}
		return lang.While{Cond: cond, Body: body}, nil
	case p.acceptKeyword("atomic"):
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		body, err := p.stmts(func() bool {
			return p.cur().Kind == lexer.Punct && p.cur().Text == "}"
		})
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return lang.Atomic{Body: body}, nil
	case t.Kind == lexer.Ident && !keywords[t.Text]:
		// Write or array store.
		name, _ := p.ident()
		if p.acceptPunct("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return lang.StoreArr{Arr: name, Index: idx, Val: val}, nil
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return lang.Write{Var: name, Val: val}, nil
	}
	return nil, p.errf("expected statement, found %s", t)
}

// regStmt parses statements starting with a register: read, load,
// nondet, or assignment.
func (p *parser) regStmt() (lang.Stmt, error) {
	reg := p.next().Text
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	t := p.cur()
	if p.acceptKeyword("nondet") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		lo, err := p.intLit()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		hi, err := p.intLit()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return lang.Nondet{Reg: reg, Lo: lo, Hi: hi}, nil
	}
	if t.Kind == lexer.Ident && !keywords[t.Text] {
		name, _ := p.ident()
		if p.acceptPunct("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return lang.LoadArr{Reg: reg, Arr: name, Index: idx}, nil
		}
		return lang.Read{Reg: reg, Var: name}, nil
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return lang.Assign{Reg: reg, Val: val}, nil
}

func (p *parser) parenExpr() (lang.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// Expression parsing with standard precedence.

func (p *parser) expr() (lang.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (lang.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = lang.Or(l, r)
	}
	return l, nil
}

func (p *parser) andExpr() (lang.Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = lang.And(l, r)
	}
	return l, nil
}

var cmpOps = map[string]lang.BinOp{
	"==": lang.OpEq, "!=": lang.OpNe,
	"<": lang.OpLt, "<=": lang.OpLe, ">": lang.OpGt, ">=": lang.OpGe,
}

func (p *parser) cmpExpr() (lang.Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == lexer.Punct {
		if op, ok := cmpOps[t.Text]; ok {
			p.pos++
			r, err := p.sumExpr()
			if err != nil {
				return nil, err
			}
			return lang.Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) sumExpr() (lang.Expr, error) {
	l, err := p.prodExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.prodExpr()
			if err != nil {
				return nil, err
			}
			l = lang.Add(l, r)
		case p.acceptPunct("-"):
			r, err := p.prodExpr()
			if err != nil {
				return nil, err
			}
			l = lang.Sub(l, r)
		default:
			return l, nil
		}
	}
}

var prodOps = map[string]lang.BinOp{
	"*": lang.OpMul, "/": lang.OpDiv, "%": lang.OpMod,
}

func (p *parser) prodExpr() (lang.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != lexer.Punct {
			return l, nil
		}
		op, ok := prodOps[t.Text]
		if !ok {
			return l, nil
		}
		p.pos++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = lang.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (lang.Expr, error) {
	switch {
	case p.acceptPunct("!"):
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return lang.Not(x), nil
	case p.acceptPunct("-"):
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return lang.Unary{Op: lang.OpNeg, X: x}, nil
	}
	t := p.cur()
	switch t.Kind {
	case lexer.Int:
		v, err := p.intLit()
		if err != nil {
			return nil, err
		}
		return lang.C(v), nil
	case lexer.Register:
		p.pos++
		return lang.R(t.Text), nil
	case lexer.Punct:
		if t.Text == "(" {
			return p.parenExpr()
		}
	case lexer.Ident:
		if !keywords[t.Text] {
			return nil, p.errf("shared variable %q cannot appear in an expression; read it into a register first", t.Text)
		}
	}
	return nil, p.errf("expected expression, found %s", t)
}
