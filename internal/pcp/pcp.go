// Package pcp implements Post's Correspondence Problem and the paper's
// Theorem 4.1 reduction (Fig. 3): a PCP instance is turned into a
// four-process RA program that can bring every process to its "term"
// label if and only if the instance has a solution. The construction
// demonstrates why reachability under RA is undecidable: processes p1
// and p2 guess a solution and stream it through shared variables, while
// p3 and p4 use CAS and the causality of message views to verify that no
// written symbol was skipped.
package pcp

import (
	"errors"
	"fmt"
	"strings"
)

// Instance is a PCP instance: two equal-length lists of non-empty words
// over a finite alphabet. A solution is a non-empty index sequence
// i1..ik with U[i1]+...+U[ik] == V[i1]+...+V[ik].
type Instance struct {
	U, V []string
}

// Validate checks the instance is well-formed.
func (ins Instance) Validate() error {
	if len(ins.U) == 0 || len(ins.U) != len(ins.V) {
		return errors.New("pcp: U and V must be non-empty lists of equal length")
	}
	for i := range ins.U {
		if ins.U[i] == "" || ins.V[i] == "" {
			return fmt.Errorf("pcp: pair %d has an empty word", i+1)
		}
	}
	return nil
}

// Alphabet returns the sorted distinct letters of the instance.
func (ins Instance) Alphabet() []byte {
	seen := map[byte]bool{}
	var out []byte
	for _, w := range append(append([]string{}, ins.U...), ins.V...) {
		for i := 0; i < len(w); i++ {
			if !seen[w[i]] {
				seen[w[i]] = true
				out = append(out, w[i])
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Solve searches for a solution of length at most maxLen by iterative
// deepening over index sequences, returning the 1-based index sequence.
// PCP is undecidable in general; the bound keeps this reference solver
// total. It is used to cross-check the reduction on small instances.
func (ins Instance) Solve(maxLen int) ([]int, bool) {
	if err := ins.Validate(); err != nil {
		return nil, false
	}
	type state struct {
		// surplus is the suffix by which one side leads; onU is true
		// when the U-concatenation is longer.
		surplus string
		onU     bool
	}
	var path []int
	var rec func(s state, depth int) bool
	rec = func(s state, depth int) bool {
		if s.surplus == "" && len(path) > 0 {
			return true
		}
		if depth == 0 {
			return false
		}
		for i := range ins.U {
			u, v := ins.U[i], ins.V[i]
			// Extend both sides and match the overlap.
			var us, vs string
			if s.surplus == "" {
				us, vs = u, v
			} else if s.onU {
				us, vs = s.surplus+u, v
			} else {
				us, vs = u, s.surplus+v
			}
			var ns state
			switch {
			case strings.HasPrefix(us, vs):
				ns = state{surplus: us[len(vs):], onU: true}
			case strings.HasPrefix(vs, us):
				ns = state{surplus: vs[len(us):], onU: false}
			default:
				continue
			}
			path = append(path, i+1)
			if rec(ns, depth-1) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	for d := 1; d <= maxLen; d++ {
		path = path[:0]
		if rec(state{}, d) {
			return append([]int(nil), path...), true
		}
	}
	return nil, false
}

// Concat returns the U- and V-concatenations of an index sequence.
func (ins Instance) Concat(indices []int) (string, string, error) {
	var u, v strings.Builder
	for _, i := range indices {
		if i < 1 || i > len(ins.U) {
			return "", "", fmt.Errorf("pcp: index %d out of range", i)
		}
		u.WriteString(ins.U[i-1])
		v.WriteString(ins.V[i-1])
	}
	return u.String(), v.String(), nil
}

// IsSolution reports whether the index sequence solves the instance.
func (ins Instance) IsSolution(indices []int) bool {
	if len(indices) == 0 {
		return false
	}
	u, v, err := ins.Concat(indices)
	return err == nil && u == v
}
