package pcp

import (
	"ravbmc/internal/lang"
)

// Value encoding of the paper's data domain D = Σ ⊎ {⊥, 0, 1..n}:
// 0 is the reset value written by the verifiers, 1 encodes ⊥, letters
// and indices are shifted up by 2.
const (
	resetVal = 0
	botVal   = 1
	base     = 2
)

func (ins Instance) letterVal(b byte) lang.Value {
	for i, c := range ins.Alphabet() {
		if c == b {
			return lang.Value(base + i)
		}
	}
	panic("pcp: letter not in alphabet")
}

func (ins Instance) indexVal(i int) lang.Value { return lang.Value(base + i - 1) }

// TermLabel is the label of the term instruction of every process of the
// reduction; reachability of all four simultaneously encodes PCP
// solvability.
const TermLabel = "term"

// Reduction builds the paper's Fig. 3 program: processes p1/p2 guess a
// solution and stream the words (resp. indices) through x1..x4 (resp.
// y1..y4) in strict alternation; p3 checks with CAS that the two symbol
// streams agree without skipping, p4 does the same for the index
// streams. All four processes can reach TermLabel iff the instance has
// a solution.
func (ins Instance) Reduction() (*lang.Program, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	p := lang.NewProgram("pcp_reduction",
		"x1", "x2", "x3", "x4", "y1", "y2", "y3", "y4")
	ins.guesser(p, 1)
	ins.guesser(p, 2)
	ins.verifier(p, 3)
	ins.verifier(p, 4)
	if err := p.ValidateRA(); err != nil {
		return nil, err
	}
	return p, nil
}

// guesser emits p1 (id=1, words U, streams x1/x2 and y1/y2) or p2
// (id=2, words V, streams x3/x4 and y3/y4).
func (ins Instance) guesser(p *lang.Program, id int) {
	words := ins.U
	xa, xb := "x1", "x2"
	ya, yb := "y1", "y2"
	if id == 2 {
		words = ins.V
		xa, xb = "x3", "x4"
		ya, yb = "y3", "y4"
	}
	n := len(words)
	pr := p.AddProc(procName(id), "aux", "turnx", "turny")
	pr.Add(
		lang.AssignS("turnx", lang.C(1)),
		lang.AssignS("turny", lang.C(1)),
		// The first guess is a real index: PCP solutions are non-empty.
		lang.NondetS("aux", base, lang.Value(base+n-1)),
	)

	// while (aux != ⊥) { if aux == i then Module_i fi ... ; re-guess }
	var body []lang.Stmt
	for i := 1; i <= n; i++ {
		body = append(body,
			lang.IfS(lang.Eq(lang.R("aux"), lang.C(ins.indexVal(i))),
				ins.module(words[i-1], ins.indexVal(i), xa, xb, ya, yb)...),
		)
	}
	body = append(body, lang.NondetS("aux", botVal, lang.Value(base+n-1)))
	pr.Add(lang.WhileS(lang.Ne(lang.R("aux"), lang.C(botVal)), body...))

	// Signal the end of the streams with ⊥ on the current turn variable.
	pr.Add(
		lang.IfElseS(lang.Eq(lang.R("turnx"), lang.C(1)),
			[]lang.Stmt{lang.WriteC(xa, botVal)},
			[]lang.Stmt{lang.WriteC(xb, botVal)},
		),
		lang.IfElseS(lang.Eq(lang.R("turny"), lang.C(1)),
			[]lang.Stmt{lang.WriteC(ya, botVal)},
			[]lang.Stmt{lang.WriteC(yb, botVal)},
		),
		lang.LabelS(TermLabel, lang.TermS()),
	)
}

// module emits Module_i of Fig. 3: write the word's letters to the two
// x-variables in alternation (in both possible phases), then the index
// to the y-variables in alternation.
func (ins Instance) module(word string, idx lang.Value, xa, xb, ya, yb string) []lang.Stmt {
	phase := func(first, second string) []lang.Stmt {
		var out []lang.Stmt
		vars := []string{first, second}
		for i := 0; i < len(word); i++ {
			out = append(out, lang.WriteC(vars[i%2], ins.letterVal(word[i])))
		}
		// Next turn: 1 if the last letter landed on the "second" slot
		// of the x1-phase, matching the paper's k_i / k_i'.
		next := lang.Value(1)
		if first == xa { // started on xa
			if len(word)%2 == 1 {
				next = 2
			}
		} else {
			if len(word)%2 == 0 {
				next = 2
			}
		}
		out = append(out, lang.AssignS("turnx", lang.C(next)))
		return out
	}
	out := []lang.Stmt{
		lang.IfElseS(lang.Eq(lang.R("turnx"), lang.C(1)),
			phase(xa, xb),
			phase(xb, xa),
		),
		lang.IfElseS(lang.Eq(lang.R("turny"), lang.C(1)),
			[]lang.Stmt{lang.WriteC(ya, idx), lang.AssignS("turny", lang.C(2))},
			[]lang.Stmt{lang.WriteC(yb, idx), lang.AssignS("turny", lang.C(1))},
		),
	}
	return out
}

// verifier emits p3 (id=3, checks the x streams with letter guesses) or
// p4 (id=4, checks the y streams with index guesses).
func (ins Instance) verifier(p *lang.Program, id int) {
	va, vb, vc, vd := "x1", "x2", "x3", "x4"
	lo, hi := lang.Value(base), lang.Value(base+len(ins.Alphabet())-1)
	if id == 4 {
		va, vb, vc, vd = "y1", "y2", "y3", "y4"
		lo, hi = lang.Value(base), lang.Value(base+len(ins.U)-1)
	}
	pr := p.AddProc(procName(id), "aux", "turn", "chk")

	// One verification round for the guessed value in $aux:
	// cas(first, aux, 0); assume(second == 0); cas(third, aux, 0);
	// assume(fourth == 0) — reading 0 next door certifies, through the
	// causality of views, that no write was skipped (paper Lemma 4.2).
	round := func(first, second, third, fourth string) []lang.Stmt {
		return []lang.Stmt{
			lang.CASS(first, lang.R("aux"), lang.C(resetVal)),
			lang.ReadS("chk", second),
			lang.AssumeS(lang.Eq(lang.R("chk"), lang.C(resetVal))),
			lang.CASS(third, lang.R("aux"), lang.C(resetVal)),
			lang.ReadS("chk", fourth),
			lang.AssumeS(lang.Eq(lang.R("chk"), lang.C(resetVal))),
		}
	}

	pr.Add(
		lang.AssignS("turn", lang.C(1)),
		// The first guess is a real symbol: PCP solutions are non-empty.
		lang.NondetS("aux", lo, hi),
	)
	body := []lang.Stmt{
		lang.IfElseS(lang.Eq(lang.R("turn"), lang.C(1)),
			append(round(va, vb, vc, vd), lang.AssignS("turn", lang.C(2))),
			append(round(vb, va, vd, vc), lang.AssignS("turn", lang.C(1))),
		),
		lang.NondetS("aux", botVal, hi),
	}
	pr.Add(lang.WhileS(lang.Ne(lang.R("aux"), lang.C(botVal)), body...))

	// Final round: consume the ⊥ end markers the guessers wrote.
	pr.Add(
		lang.AssignS("aux", lang.C(botVal)),
		lang.IfElseS(lang.Eq(lang.R("turn"), lang.C(1)),
			round(va, vb, vc, vd),
			round(vb, va, vd, vc),
		),
		lang.LabelS(TermLabel, lang.TermS()),
	)
}

func procName(id int) string {
	return [5]string{"", "p1", "p2", "p3", "p4"}[id]
}

// TargetLabels returns the reachability query of Theorem 4.1: every
// process simultaneously at its term instruction.
func TargetLabels() map[string]string {
	return map[string]string{"p1": TermLabel, "p2": TermLabel, "p3": TermLabel, "p4": TermLabel}
}
