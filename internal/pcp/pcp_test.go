package pcp

import (
	"testing"

	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
)

func TestSolveFindsKnownSolutions(t *testing.T) {
	cases := []struct {
		ins  Instance
		want []int
	}{
		{Instance{U: []string{"a"}, V: []string{"a"}}, []int{1}},
		{Instance{U: []string{"a", "ba"}, V: []string{"ab", "a"}}, []int{1, 2}},
		{Instance{U: []string{"ab", "b"}, V: []string{"a", "bb"}}, []int{1, 2}},
	}
	for _, c := range cases {
		got, ok := c.ins.Solve(6)
		if !ok {
			t.Errorf("%v: no solution found", c.ins)
			continue
		}
		if !c.ins.IsSolution(got) {
			t.Errorf("%v: Solve returned non-solution %v", c.ins, got)
		}
	}
}

func TestSolveRejectsUnsolvable(t *testing.T) {
	cases := []Instance{
		{U: []string{"a"}, V: []string{"b"}},
		{U: []string{"ab"}, V: []string{"ba"}},
		{U: []string{"a"}, V: []string{"aa"}}, // length always lags
	}
	for _, ins := range cases {
		if sol, ok := ins.Solve(8); ok {
			t.Errorf("%v: unexpected solution %v", ins, sol)
		}
	}
}

func TestIsSolution(t *testing.T) {
	ins := Instance{U: []string{"a", "ba"}, V: []string{"ab", "a"}}
	if ins.IsSolution(nil) {
		t.Error("empty sequence is not a solution")
	}
	if ins.IsSolution([]int{2, 1}) {
		t.Error("[2 1] is not a solution")
	}
	if !ins.IsSolution([]int{1, 2}) {
		t.Error("[1 2] must be a solution")
	}
	if ins.IsSolution([]int{3}) {
		t.Error("out-of-range index accepted")
	}
}

func TestAlphabet(t *testing.T) {
	ins := Instance{U: []string{"ba", "c"}, V: []string{"ab", "ca"}}
	got := ins.Alphabet()
	if string(got) != "abc" {
		t.Errorf("Alphabet = %q, want abc", string(got))
	}
}

func TestReductionValidates(t *testing.T) {
	ins := Instance{U: []string{"a", "ba"}, V: []string{"ab", "a"}}
	p, err := ins.Reduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Procs) != 4 {
		t.Fatalf("reduction must have 4 processes, got %d", len(p.Procs))
	}
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	// Every process must carry the term label.
	cp := lang.MustCompile(p)
	for _, pr := range cp.Procs {
		if pr.FindLabel(TermLabel) < 0 {
			t.Errorf("process %s has no %q label", pr.Name, TermLabel)
		}
	}
}

// TestReductionSolvableReachesTerm: for a solvable instance, the RA
// explorer finds a run in which all four processes reach term — the
// "if" direction of Theorem 4.1 on a concrete instance.
func TestReductionSolvableReachesTerm(t *testing.T) {
	ins := Instance{U: []string{"a"}, V: []string{"a"}}
	p, err := ins.Reduction()
	if err != nil {
		t.Fatal(err)
	}
	sys := ra.NewSystem(lang.MustCompile(p))
	res := sys.Explore(ra.Options{
		ViewBound:    -1,
		MaxSteps:     120,
		MaxStates:    5_000_000,
		TargetLabels: TargetLabels(),
	})
	if !res.TargetReached {
		t.Fatalf("solvable instance: term not reached (states=%d, exhausted=%v)",
			res.States, res.Exhausted)
	}
}

// TestReductionUnsolvableDoesNotReachTerm: for an unsolvable instance
// the bounded search never reaches term (unreachability in general is
// exactly the undecidable question, but within these bounds the search
// is exhaustive).
func TestReductionUnsolvableDoesNotReachTerm(t *testing.T) {
	ins := Instance{U: []string{"a"}, V: []string{"b"}}
	p, err := ins.Reduction()
	if err != nil {
		t.Fatal(err)
	}
	sys := ra.NewSystem(lang.MustCompile(p))
	// A state cap keeps this conclusive-within-bounds check fast; the
	// property asserted is the absence of false positives.
	res := sys.Explore(ra.Options{
		ViewBound:    -1,
		MaxSteps:     80,
		MaxStates:    150_000,
		TargetLabels: TargetLabels(),
	})
	if res.TargetReached {
		t.Fatalf("unsolvable instance reached term:\n%v", res.Trace)
	}
}

func TestReductionRejectsBadInstance(t *testing.T) {
	if _, err := (Instance{U: []string{"a"}, V: []string{}}).Reduction(); err == nil {
		t.Error("mismatched lists must be rejected")
	}
	if _, err := (Instance{U: []string{""}, V: []string{"a"}}).Reduction(); err == nil {
		t.Error("empty words must be rejected")
	}
}

// TestReductionWithinFourContexts checks the paper's remark after
// Theorem 4.1: the reduction reaches term even when executions are
// restricted to 4 contexts (one block per process — the guessers write
// everything, then the verifiers consume everything).
func TestReductionWithinFourContexts(t *testing.T) {
	ins := Instance{U: []string{"a"}, V: []string{"a"}}
	p, err := ins.Reduction()
	if err != nil {
		t.Fatal(err)
	}
	sys := ra.NewSystem(lang.MustCompile(p))
	res := sys.Explore(ra.Options{
		ViewBound:    -1,
		ContextBound: 4,
		MaxSteps:     120,
		MaxStates:    2_000_000,
		TargetLabels: TargetLabels(),
	})
	if !res.TargetReached {
		t.Fatalf("term not reachable within 4 contexts (states=%d)", res.States)
	}
}
