// Package diff is the differential-testing layer: it runs the repo's
// independently implemented checkers as a portfolio on one program and
// cross-checks their verdicts. The tools were built from different
// parts of the paper — VBMC's translate-and-check pipeline (Sec. 6),
// the RA operational-semantics explorer (Sec. 5), and the three
// stateless baselines of the evaluation — so any disagreement between
// comparable verdicts is a bug in one of them.
//
// Comparability rules (encoded in Report):
//
//   - vbmc decides exactly K-bounded reachability, as does the RA
//     explorer run with ViewBound=K: when both conclude, their verdicts
//     must match exactly.
//   - The full RA explorer and the stateless checkers are exact for
//     the unrolled program when they exhaust; their conclusive verdicts
//     must all agree with each other.
//   - A K-bounded UNSAFE (witness-validated for vbmc) implies real
//     unsafety, so it contradicts any exact SAFE. The converse does
//     not hold: a K-bounded SAFE against an exact UNSAFE just means
//     the bug needs more than K view switches — not a disagreement.
//   - tmai (thread-modular abstract interpretation) proves unbounded
//     safety or abstains with UNKNOWN: its SAFE covers every K and L,
//     so it is cross-checked as an exact tool; UNKNOWN is never
//     compared.
//   - Timeouts and cancelled runs are inconclusive and never compared;
//     tool errors are reported as disagreements (the corpus programs
//     are all inside every tool's supported fragment).
package diff

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
	"ravbmc/internal/sched"
	"ravbmc/internal/smc"
	"ravbmc/internal/tmai"
)

// Verdict is one tool's conclusion in the portfolio.
type Verdict string

const (
	Unsafe  Verdict = "UNSAFE"
	Safe    Verdict = "SAFE"
	Timeout Verdict = "T.O"
	Error   Verdict = "ERR"
	// Unknown is the thread-modular analyser's inconclusive verdict: the
	// abstraction could not prove safety. Unlike Timeout it is inherent
	// (no budget would change it); like Timeout it is never compared.
	Unknown Verdict = "UNKNOWN"
)

// Tool names, in report order. The bounded pair decides K-bounded
// reachability; tmai proves unbounded safety or abstains; the rest are
// exact for the unrolled program.
var Tools = []string{"vbmc", "ra[K]", "ra", "tracer", "cdsc", "rcmc", "tmai"}

// boundedTools decide the K-bounded problem only.
var boundedTools = map[string]bool{"vbmc": true, "ra[K]": true}

// Options configures a portfolio run.
type Options struct {
	// K is the view bound for vbmc and the ra[K] oracle.
	K int
	// Unroll is the loop bound L, required for programs with loops.
	Unroll int
	// Timeout is the per-tool budget; zero selects 30 s.
	Timeout time.Duration
	// Jobs is the pool width (<= 0 selects runtime.NumCPU).
	Jobs int
	// MaxStates caps the stateful searches (vbmc backend, ra); 0 = none.
	MaxStates int
	// MaxTransitions caps the stateless searches; 0 = none.
	MaxTransitions int64
	// FirstUnsafeCancels stops the rest of the portfolio as soon as one
	// tool reports a trustworthy UNSAFE (validated for vbmc): the racing
	// mode of cmd/vbmc -portfolio. Leave false when diffing — a
	// disagreement can only be observed if the slower tools finish.
	FirstUnsafeCancels bool
	// Ctx cancels the whole portfolio (nil = never).
	Ctx context.Context
	// Obs, when non-nil, supplies a recorder per tool run (nil entries
	// leave that run uninstrumented). Called from pool workers; must be
	// safe for concurrent use.
	Obs func(tool string) *obs.Recorder
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 30 * time.Second
	}
	return o.Timeout
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) recorder(tool string) *obs.Recorder {
	if o.Obs == nil {
		return nil
	}
	return o.Obs(tool)
}

// ToolResult is one tool's run in the portfolio.
type ToolResult struct {
	Tool    string
	Verdict Verdict
	Seconds float64
	// Bounded marks verdicts that cover only K-bounded behaviours.
	Bounded bool
	// Unbounded marks a SAFE that holds for every K and L (the
	// thread-modular proof): the top of the verdict lattice, dominating
	// both the exact SAFE for one unrolling and SAFE@K.
	Unbounded bool
	// Validated marks an UNSAFE whose witness replayed under RA
	// (always true for the non-vbmc tools: they execute the RA
	// semantics directly, so their violations are witnesses by
	// construction).
	Validated bool
	// Err carries the failure behind an ERR verdict.
	Err error
}

// Report is the cross-checked portfolio outcome.
type Report struct {
	Program string
	K, L    int
	Results []ToolResult
	// Disagreements lists every violated comparability rule; empty
	// means the tools are consistent on this program.
	Disagreements []string
}

// Run executes the portfolio on prog and cross-checks the verdicts.
// Each tool runs on its own clone of prog, so the portfolio is safe at
// any pool width.
func Run(prog *lang.Program, opts Options) Report {
	rep := Report{Program: prog.Name, K: opts.K, L: opts.Unroll}
	jobs := make([]sched.Job, len(Tools))
	for i, tool := range Tools {
		tool := tool
		p := prog.Clone()
		jobs[i] = sched.Job{
			Name: prog.Name + "/" + tool,
			Run: func(ctx context.Context) (any, error) {
				return runTool(ctx, tool, p, opts), nil
			},
		}
	}
	var policy sched.Policy
	if opts.FirstUnsafeCancels {
		policy = func(r sched.Result) bool {
			tr, ok := r.Value.(ToolResult)
			return ok && tr.Verdict == Unsafe && tr.Validated
		}
	}
	for i, r := range sched.New(opts.Jobs).Run(opts.ctx(), jobs, policy) {
		switch {
		case r.Skipped:
			rep.Results = append(rep.Results, ToolResult{
				Tool: Tools[i], Verdict: Timeout, Bounded: boundedTools[Tools[i]],
			})
		case r.Err != nil:
			rep.Results = append(rep.Results, ToolResult{
				Tool: Tools[i], Verdict: Error, Err: r.Err,
			})
		default:
			rep.Results = append(rep.Results, r.Value.(ToolResult))
		}
	}
	rep.crossCheck()
	return rep
}

func runTool(ctx context.Context, tool string, prog *lang.Program, opts Options) ToolResult {
	tr := ToolResult{Tool: tool, Bounded: boundedTools[tool]}
	start := time.Now()
	defer func() { tr.Seconds = time.Since(start).Seconds() }()
	switch tool {
	case "vbmc":
		res, err := core.Run(prog, core.Options{
			K: opts.K, Unroll: opts.Unroll, Timeout: opts.timeout(),
			MaxStates: opts.MaxStates, Ctx: ctx, Obs: opts.recorder(tool),
		})
		switch {
		case err != nil:
			tr.Verdict, tr.Err = Error, err
		case res.Verdict == core.Unsafe && !res.WitnessValidated:
			tr.Verdict = Error
			tr.Err = fmt.Errorf("unsafe verdict without validated witness: %s", res.WitnessErr)
		case res.Verdict == core.Unsafe:
			tr.Verdict, tr.Validated = Unsafe, true
		case res.Verdict == core.Safe:
			tr.Verdict, tr.Unbounded = Safe, res.Unbounded
		default:
			tr.Verdict = Timeout
		}
	case "tmai":
		// The thread-modular abstract interpretation proves unbounded
		// safety or abstains; it never reports UNSAFE, so its SAFE joins
		// the exact tools in the cross-check (a thread-modular proof
		// covers every unrolling, in particular the portfolio's L).
		res := tmai.Analyze(prog, tmai.Options{})
		if res.Verdict == tmai.Safe {
			tr.Verdict, tr.Unbounded = Safe, true
		} else {
			tr.Verdict = Unknown
		}
	case "ra[K]", "ra":
		bound := -1
		if tool == "ra[K]" {
			bound = opts.K
		}
		tr.fromRA(ctx, prog, bound, opts)
	default:
		alg, ok := map[string]smc.Algorithm{
			"tracer": smc.AlgorithmTracer, "cdsc": smc.AlgorithmCDS, "rcmc": smc.AlgorithmRCMC,
		}[tool]
		if !ok {
			tr.Verdict, tr.Err = Error, fmt.Errorf("unknown tool %q", tool)
			return tr
		}
		res, err := smc.Check(prog, smc.Options{
			Algorithm: alg, Unroll: opts.Unroll, Timeout: opts.timeout(),
			MaxTransitions: opts.MaxTransitions, Ctx: ctx, Obs: opts.recorder(tool),
		})
		switch {
		case err != nil:
			tr.Verdict, tr.Err = Error, err
		case res.Violation:
			tr.Verdict, tr.Validated = Unsafe, true
		case res.Exhausted:
			tr.Verdict = Safe
		default:
			tr.Verdict = Timeout
		}
	}
	return tr
}

// fromRA runs the RA explorer at the given view bound (-1 = full) on
// the same unrolling vbmc sees, so the verdicts are comparable.
func (tr *ToolResult) fromRA(ctx context.Context, prog *lang.Program, bound int, opts Options) {
	src := prog
	if opts.Unroll > 0 {
		src = lang.Unroll(prog, opts.Unroll)
	}
	cp, err := lang.Compile(src)
	if err != nil {
		tr.Verdict, tr.Err = Error, err
		return
	}
	res := ra.NewSystem(cp).Explore(ra.Options{
		ViewBound: bound, StopOnViolation: true, MaxStates: opts.MaxStates,
		Deadline: time.Now().Add(opts.timeout()), Ctx: ctx, Obs: opts.recorder(tr.Tool),
	})
	switch {
	case res.Violation:
		tr.Verdict, tr.Validated = Unsafe, true
	case res.Exhausted:
		tr.Verdict = Safe
	default:
		tr.Verdict = Timeout
	}
}

// crossCheck applies the comparability rules to the collected results.
func (r *Report) crossCheck() {
	by := map[string]ToolResult{}
	for _, tr := range r.Results {
		by[tr.Tool] = tr
		if tr.Verdict == Error {
			r.Disagreements = append(r.Disagreements,
				fmt.Sprintf("%s errored: %v", tr.Tool, tr.Err))
		}
	}
	// Exact tools must agree among themselves.
	var exact []ToolResult
	for _, tr := range r.Results {
		if !tr.Bounded && (tr.Verdict == Unsafe || tr.Verdict == Safe) {
			exact = append(exact, tr)
		}
	}
	for _, tr := range exact[min(1, len(exact)):] {
		if tr.Verdict != exact[0].Verdict {
			r.Disagreements = append(r.Disagreements,
				fmt.Sprintf("%s=%s vs %s=%s (both exact for L=%d)",
					exact[0].Tool, exact[0].Verdict, tr.Tool, tr.Verdict, r.L))
		}
	}
	// The bounded pair decides the same K-bounded problem.
	vb, rak := by["vbmc"], by["ra[K]"]
	if conclusive(vb) && conclusive(rak) && vb.Verdict != rak.Verdict {
		r.Disagreements = append(r.Disagreements,
			fmt.Sprintf("vbmc=%s vs ra[K]=%s (both decide K=%d exactly)",
				vb.Verdict, rak.Verdict, r.K))
	}
	// K-bounded unsafety implies real unsafety.
	for _, b := range []ToolResult{vb, rak} {
		if b.Verdict != Unsafe {
			continue
		}
		for _, e := range exact {
			if e.Verdict == Safe {
				r.Disagreements = append(r.Disagreements,
					fmt.Sprintf("%s=UNSAFE at K=%d but %s=SAFE", b.Tool, r.K, e.Tool))
			}
		}
	}
}

func conclusive(tr ToolResult) bool {
	return tr.Verdict == Unsafe || tr.Verdict == Safe
}

// Agree reports whether the portfolio is consistent on this program.
func (r Report) Agree() bool { return len(r.Disagreements) == 0 }

// Verdict is the portfolio's combined conclusion: an exact or
// validated-bounded UNSAFE wins, then an unbounded SAFE (the
// thread-modular proof, good for every K and L), then an exact SAFE
// for the given unrolling, then a bounded SAFE (conclusive only for
// K), else inconclusive (T.O).
func (r Report) Verdict() Verdict {
	for _, tr := range r.Results {
		if tr.Verdict == Unsafe && tr.Validated {
			return Unsafe
		}
	}
	for _, tr := range r.Results {
		if tr.Verdict == Safe && tr.Unbounded {
			return Safe
		}
	}
	for _, tr := range r.Results {
		if tr.Verdict == Safe && !tr.Bounded {
			return Safe
		}
	}
	for _, tr := range r.Results {
		if tr.Verdict == Safe {
			return Safe
		}
	}
	return Timeout
}

// Render prints the portfolio outcome, one tool per line, then any
// disagreements.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (K=%d, L=%d): %s\n", r.Program, r.K, r.L, r.Verdict())
	for _, tr := range r.Results {
		fmt.Fprintf(&b, "  %-8s %-8s %8.2fs", tr.Tool, tr.Verdict, tr.Seconds)
		if tr.Bounded {
			b.WriteString("  [K-bounded]")
		}
		if tr.Unbounded {
			b.WriteString("  [unbounded]")
		}
		if tr.Err != nil {
			fmt.Fprintf(&b, "  (%v)", tr.Err)
		}
		b.WriteByte('\n')
	}
	for _, d := range r.Disagreements {
		fmt.Fprintf(&b, "  DISAGREEMENT: %s\n", d)
	}
	return b.String()
}
