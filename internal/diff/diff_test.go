package diff

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/litmus"
)

// testJobs returns the pool width for tests: RAVBMC_TEST_JOBS if set
// (CI forces >1 so concurrency is exercised even on 1-CPU runners),
// else 4.
func testJobs() int {
	if s := os.Getenv("RAVBMC_TEST_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// mustConclude guards the sweep tests against vacuous agreement: on
// litmus-sized programs every tool must reach a verdict, so a T.O or
// ERR means the wiring (not the budget) is broken.
func mustConclude(t *testing.T, name string, rep Report) {
	t.Helper()
	for _, tr := range rep.Results {
		// tmai's UNKNOWN is an inherent abstention, not a budget problem.
		if tr.Tool == "tmai" && tr.Verdict == Unknown {
			continue
		}
		if !conclusive(tr) {
			t.Errorf("%s: %s did not conclude (%s)", name, tr.Tool, tr.Verdict)
		}
	}
}

// TestDiffLitmusClassic cross-checks all six tools on every classic
// litmus shape. K=3 is enough for every classic weak behaviour, so the
// portfolio verdict must also match the literature one.
func TestDiffLitmusClassic(t *testing.T) {
	for _, tc := range litmus.Classic() {
		rep := Run(tc.Prog, Options{K: 3, Jobs: testJobs(), Timeout: 30 * time.Second})
		if !rep.Agree() {
			t.Errorf("disagreement on %s:\n%s", tc.Name, rep.Render())
		}
		mustConclude(t, tc.Name, rep)
		if tc.HasExpectation {
			want := Safe
			if tc.Unsafe {
				want = Unsafe
			}
			if got := rep.Verdict(); got != want {
				t.Errorf("%s: portfolio verdict %s, literature says %s\n%s",
					tc.Name, got, want, rep.Render())
			}
		}
	}
}

// TestDiffLitmusGenerated cross-checks the generated 2-ops corpus (240
// programs, every store-buffer/message-passing-like shape over two
// variables). -short strides the corpus; the full sweep runs in CI.
func TestDiffLitmusGenerated(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 13
	}
	gen := litmus.Generated(2)
	for i := 0; i < len(gen); i += stride {
		tc := gen[i]
		rep := Run(tc.Prog, Options{K: 2, Jobs: testJobs(), Timeout: 30 * time.Second})
		if !rep.Agree() {
			t.Errorf("disagreement on %s:\n%s", tc.Name, rep.Render())
		}
		mustConclude(t, tc.Name, rep)
	}
}

// TestDiffLitmusGenerated3 cross-checks the 3-ops corpus (4032
// programs). The full sweep costs ~40 CPU-minutes, so by default every
// 67th program runs (about a minute); RAVBMC_DIFF_FULL=1 removes the
// stride for the exhaustive pass.
func TestDiffLitmusGenerated3(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six tools per program")
	}
	stride := 67
	if os.Getenv("RAVBMC_DIFF_FULL") != "" {
		stride = 1
	}
	gen := litmus.Generated(3)
	ran := 0
	for i := 0; i < len(gen); i += stride {
		tc := gen[i]
		rep := Run(tc.Prog, Options{K: 3, Jobs: testJobs(), Timeout: 30 * time.Second})
		if !rep.Agree() {
			t.Errorf("disagreement on %s:\n%s", tc.Name, rep.Render())
		}
		mustConclude(t, tc.Name, rep)
		ran++
	}
	if stride > 1 {
		t.Logf("strided: %d of %d programs (set RAVBMC_DIFF_FULL=1 for all)", ran, len(gen))
	}
}

// TestDiffBenchmarks cross-checks the paper's mutual-exclusion
// benchmarks: unfenced (UNSAFE at K=2) and fully fenced (SAFE) ones.
func TestDiffBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six tools per benchmark")
	}
	cases := []struct {
		name string
		k, l int
	}{
		{"dekker", 2, 2},
		{"peterson_0", 2, 2},
		{"sim_dekker", 2, 2},
		{"tbar_4", 2, 1},
		{"peterson_4(2)", 2, 2},
	}
	for _, tc := range cases {
		prog, err := benchmarks.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		rep := Run(prog, Options{
			K: tc.k, Unroll: tc.l, Jobs: testJobs(), Timeout: 20 * time.Second,
		})
		if !rep.Agree() {
			t.Errorf("disagreement on %s:\n%s", tc.name, rep.Render())
		}
	}
}

// TestCrossCheckRules exercises the comparability rules on synthetic
// results, including the asymmetric under-approximation cases.
func TestCrossCheckRules(t *testing.T) {
	mk := func(tool string, v Verdict) ToolResult {
		return ToolResult{Tool: tool, Verdict: v, Bounded: boundedTools[tool],
			Validated: v == Unsafe}
	}
	cases := []struct {
		name     string
		results  []ToolResult
		disagree bool
	}{
		{"all agree unsafe",
			[]ToolResult{mk("vbmc", Unsafe), mk("ra[K]", Unsafe), mk("ra", Unsafe), mk("cdsc", Unsafe)},
			false},
		{"bounded safe under exact unsafe is fine",
			[]ToolResult{mk("vbmc", Safe), mk("ra[K]", Safe), mk("ra", Unsafe), mk("cdsc", Unsafe)},
			false},
		{"bounded unsafe vs exact safe",
			[]ToolResult{mk("vbmc", Unsafe), mk("ra[K]", Unsafe), mk("ra", Safe)},
			true},
		{"bounded pair splits",
			[]ToolResult{mk("vbmc", Safe), mk("ra[K]", Unsafe)},
			true},
		{"exact tools split",
			[]ToolResult{mk("ra", Safe), mk("tracer", Unsafe)},
			true},
		{"timeouts are not compared",
			[]ToolResult{mk("vbmc", Timeout), mk("ra[K]", Safe), mk("ra", Timeout), mk("cdsc", Safe)},
			false},
		{"tmai unknown is not compared",
			[]ToolResult{mk("vbmc", Unsafe), mk("ra", Unsafe), mk("tmai", Unknown)},
			false},
		{"tmai safe vs exact unsafe",
			[]ToolResult{mk("ra", Unsafe), mk("tmai", Safe)},
			true},
		{"tmai safe vs bounded unsafe",
			[]ToolResult{mk("vbmc", Unsafe), mk("tmai", Safe)},
			true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Report{Program: "synthetic", K: 2, Results: tc.results}
			rep.crossCheck()
			if got := !rep.Agree(); got != tc.disagree {
				t.Errorf("disagree=%v, want %v: %v", got, tc.disagree, rep.Disagreements)
			}
		})
	}
}

// TestDiffFirstUnsafeCancels: in racing mode a validated UNSAFE may
// cancel the slower tools, but the combined verdict must still be
// UNSAFE and the skipped runs must read as inconclusive.
func TestDiffFirstUnsafeCancels(t *testing.T) {
	tests := litmus.Classic()
	var unsafe *litmus.Test
	for i := range tests {
		if tests[i].HasExpectation && tests[i].Unsafe {
			unsafe = &tests[i]
			break
		}
	}
	if unsafe == nil {
		t.Fatal("no known-unsafe classic litmus test")
	}
	rep := Run(unsafe.Prog, Options{
		K: 3, Jobs: testJobs(), Timeout: 30 * time.Second, FirstUnsafeCancels: true,
	})
	if got := rep.Verdict(); got != Unsafe {
		t.Errorf("portfolio verdict %s, want UNSAFE:\n%s", got, rep.Render())
	}
	if !rep.Agree() {
		t.Errorf("racing mode produced disagreements:\n%s", rep.Render())
	}
}

func TestRenderShape(t *testing.T) {
	tc := litmus.Classic()[0]
	rep := Run(tc.Prog, Options{K: 2, Jobs: testJobs(), Timeout: 30 * time.Second})
	out := rep.Render()
	for _, frag := range append([]string{tc.Prog.Name}, Tools...) {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}
