package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ravbmc/internal/cache"
)

// PeerState is a peer's health as this node sees it. States feed the
// forwarding decision in internal/serve: only an Up owner is forwarded
// to; a Draining owner still serves cache reads (peer fill) but no new
// verification work; a Down owner is not contacted at all.
type PeerState int32

const (
	// StateUp: the peer answers /readyz with 200. The optimistic
	// initial state — a freshly started cluster forwards immediately
	// and demotes on the first failed probe or forward.
	StateUp PeerState = iota
	// StateDraining: the peer answers /readyz with 503 — it received
	// SIGTERM and is finishing in-flight work. New verifications go
	// elsewhere; its cache remains readable until the process exits.
	StateDraining
	// StateDown: probes (or forwards) to the peer fail outright.
	StateDown
)

func (s PeerState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("PeerState(%d)", int32(s))
}

// Peer names one cluster member.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses a `-peers` flag value: a comma-separated list of
// id=url entries, e.g. "n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// peer is the live record of one remote member.
type peer struct {
	id, url string
	state   atomic.Int32
	// failures counts consecutive failed probes; reaching the down
	// threshold demotes the peer, any success resets it.
	failures atomic.Int32
}

// Stats is a point-in-time snapshot of the cluster counters; the
// serving layer increments them and /metrics renders them as the
// ravbmc_cluster_* families.
type Stats struct {
	// Forwards counts requests routed to their owner; ForwardRetries
	// the 429-backoff retries inside those; ForwardFallbacks the
	// requests that fell back to local execution because the owner was
	// down, draining or persistently busy.
	Forwards, ForwardRetries, ForwardFallbacks int64
	// PeerFillHits/Misses count owner-cache reads before a local cold
	// compute; PeerFillServed counts reads this node answered for
	// others.
	PeerFillHits, PeerFillMisses, PeerFillServed int64
	// Probes and ProbeFailures count health probes sent and failed.
	Probes, ProbeFailures int64
}

// PeerStatus is one row of Cluster.Peers: a peer and its current state.
type PeerStatus struct {
	ID    string    `json:"id"`
	URL   string    `json:"url"`
	State PeerState `json:"-"`
	// StateName mirrors State for JSON consumers (/healthz).
	StateName string `json:"state"`
	Self      bool   `json:"self,omitempty"`
}

// Config configures a Cluster.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, this node included. Every
	// node must be started with the same list (order irrelevant) or the
	// rings disagree and requests are forwarded in circles — the
	// forwarded-request marker stops actual loops, but ownership would
	// no longer be unique.
	Peers []Peer
	// Replicas is the virtual-node count per peer (<=0 selects 128).
	Replicas int
	// Probe configures the health prober; see those fields' docs.
	Probe ProbeConfig
}

// Cluster is this node's view of the cluster: the shared ring plus
// locally observed peer health and counters. Construct with New, start
// the prober with Start, stop it with Stop.
type Cluster struct {
	self  string
	ring  *Ring
	peers map[string]*peer
	order []string // peer IDs sorted, self included — stable iteration
	urls  map[string]string

	prober *prober

	forwards, forwardRetries, forwardFallbacks atomic.Int64
	fillHits, fillMisses, fillServed           atomic.Int64
	probes, probeFailures                      atomic.Int64
}

// New validates the membership and builds the ring. The prober is not
// started; call Start (and Stop on shutdown).
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, got %d", len(cfg.Peers))
	}
	c := &Cluster{
		self:  cfg.Self,
		peers: map[string]*peer{},
		urls:  map[string]string{},
	}
	nodes := make([]string, 0, len(cfg.Peers))
	selfFound := false
	for _, p := range cfg.Peers {
		nodes = append(nodes, p.ID)
		c.urls[p.ID] = p.URL
		if p.ID == cfg.Self {
			selfFound = true
			continue
		}
		c.peers[p.ID] = &peer{id: p.ID, url: p.URL}
	}
	if !selfFound {
		return nil, fmt.Errorf("cluster: self %q not in the peer list", cfg.Self)
	}
	sort.Strings(nodes)
	c.order = nodes
	c.ring = NewRing(nodes, cfg.Replicas)
	c.prober = newProber(c, cfg.Probe)
	return c, nil
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Owner maps a cache digest to its owning node; self reports whether
// that is this node.
func (c *Cluster) Owner(d cache.Digest) (id string, self bool) {
	id = c.ring.Owner(d)
	return id, id == c.self
}

// PeerURL returns the base URL of a member (self included); empty for
// unknown IDs.
func (c *Cluster) PeerURL(id string) string { return c.urls[id] }

// State returns a peer's health as this node sees it. Self is always
// Up; unknown IDs are Down.
func (c *Cluster) State(id string) PeerState {
	if id == c.self {
		return StateUp
	}
	p, ok := c.peers[id]
	if !ok {
		return StateDown
	}
	return PeerState(p.state.Load())
}

// setState transitions a peer; no-op for self/unknown.
func (c *Cluster) setState(id string, s PeerState) {
	if p, ok := c.peers[id]; ok {
		p.state.Store(int32(s))
	}
}

// MarkDown demotes a peer after a failed forward or fill — the passive
// half of health detection, so one dead connection sheds traffic
// immediately instead of waiting for the next probe cycle. The prober
// promotes the peer again on its next successful probe.
func (c *Cluster) MarkDown(id string) {
	if p, ok := c.peers[id]; ok {
		p.failures.Store(int32(c.prober.cfg.DownAfter))
		p.state.Store(int32(StateDown))
	}
}

// MarkDraining records a 503-draining reply from a peer.
func (c *Cluster) MarkDraining(id string) { c.setState(id, StateDraining) }

// Peers lists every member (self included) with its current state,
// sorted by ID — the /healthz cluster block and the per-peer metrics.
func (c *Cluster) Peers() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.order))
	for _, id := range c.order {
		st := c.State(id)
		out = append(out, PeerStatus{
			ID: id, URL: c.urls[id], State: st, StateName: st.String(), Self: id == c.self,
		})
	}
	return out
}

// Start launches the background health prober. Safe to call once.
func (c *Cluster) Start() { c.prober.start() }

// Stop halts the prober and waits for its goroutines.
func (c *Cluster) Stop() { c.prober.stop() }

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Forwards:         c.forwards.Load(),
		ForwardRetries:   c.forwardRetries.Load(),
		ForwardFallbacks: c.forwardFallbacks.Load(),
		PeerFillHits:     c.fillHits.Load(),
		PeerFillMisses:   c.fillMisses.Load(),
		PeerFillServed:   c.fillServed.Load(),
		Probes:           c.probes.Load(),
		ProbeFailures:    c.probeFailures.Load(),
	}
}

// The serving layer records its routing decisions through these; they
// surface in Stats and /metrics.

// CountForward records a request forwarded to its owner.
func (c *Cluster) CountForward() { c.forwards.Add(1) }

// CountForwardRetry records one backoff retry inside a forward.
func (c *Cluster) CountForwardRetry() { c.forwardRetries.Add(1) }

// CountForwardFallback records a forward abandoned for local execution.
func (c *Cluster) CountForwardFallback() { c.forwardFallbacks.Add(1) }

// CountFillHit records an owner-cache read that answered a local miss.
func (c *Cluster) CountFillHit() { c.fillHits.Add(1) }

// CountFillMiss records an owner-cache read that found nothing.
func (c *Cluster) CountFillMiss() { c.fillMisses.Add(1) }

// CountFillServed records a cache read this node served for a peer.
func (c *Cluster) CountFillServed() { c.fillServed.Add(1) }
