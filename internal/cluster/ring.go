// Package cluster turns a set of vbmcd daemons into one horizontally
// scaled verification service. Membership is static — every node is
// started with the same `-peers` list — and request ownership is
// decided by a consistent-hash ring over the content-addressed cache
// key (internal/cache.Digest): the SHA-256 of the canonicalized
// program, mode, bounds and toolchain version. Because every node runs
// the same binary and derivation, all nodes agree on each request's
// single owner without any coordination traffic.
//
// On top of the ring sits a lightweight health layer: each node
// periodically probes its peers' /readyz endpoint and keeps an
// up/draining/down state per peer, demoted passively too when a
// forward fails. The serving layer (internal/serve) consults both: a
// request whose owner is another live node is forwarded there; when
// the owner is draining or down the request is executed locally
// instead — and before computing a cold miss locally, the owner's
// cache is asked over GET /v1/cache/{key} so warm results replicate
// instead of recompute.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ravbmc/internal/cache"
	"ravbmc/internal/fp"
)

// defaultReplicas is the virtual-node count per peer: enough that a
// three-node ring splits the key space within a few percent of evenly,
// cheap enough that building the ring is instantaneous.
const defaultReplicas = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a static-membership consistent-hash ring. Every node builds
// it from the same peer list, so Owner is a pure function of the
// digest — all nodes agree on ownership without talking.
type Ring struct {
	points []ringPoint
}

// mix64 is murmur3's 64-bit finalizer. FNV-1a over the short, similar
// virtual-node keys ("n1#0", "n1#1", ...) leaves the high bits — the
// ones sort order and the ring position depend on — badly mixed, which
// skews ownership 5:1 on a three-node ring. The finalizer avalanches
// every input bit into every output bit, restoring balance.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds the ring with the given virtual-node count per peer
// (<=0 selects the default 128).
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	points := make([]ringPoint, 0, len(nodes)*replicas)
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			key := fmt.Sprintf("%s#%d", n, i)
			points = append(points, ringPoint{hash: mix64(fp.Hash64([]byte(key))), node: n})
		}
	}
	// Ties broken by node name so the ring is deterministic even under
	// a (vanishingly unlikely) 64-bit point collision.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	return &Ring{points: points}
}

// Owner maps a cache digest to the node owning it: the first ring
// point at or clockwise of the digest's position. The digest's leading
// bytes are already uniformly distributed (SHA-256), so they are used
// directly as the ring position.
func (r *Ring) Owner(d cache.Digest) string {
	if len(r.points) == 0 {
		return ""
	}
	h := binary.BigEndian.Uint64(d[:8])
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	return r.points[idx].node
}
