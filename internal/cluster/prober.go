package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// ProbeConfig tunes the background health prober.
type ProbeConfig struct {
	// Interval between probe rounds (<=0 selects 2s).
	Interval time.Duration
	// Timeout for a single probe request (<=0 selects 1s).
	Timeout time.Duration
	// DownAfter is how many consecutive failed probes demote a peer to
	// Down (<=0 selects 2 — one failure can be a blip; two in a row at
	// the default cadence means multiple seconds of silence).
	DownAfter int
	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with the probe timeout.
	Client *http.Client
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	return c
}

// prober periodically GETs every peer's /readyz and drives the peer
// state machine: 200 → Up, 503 → Draining, anything else (including
// connection errors) counts toward the Down threshold. Probing is
// active recovery as much as detection — a peer passively marked Down
// after a failed forward is promoted again by its next good probe.
type prober struct {
	cluster *Cluster
	cfg     ProbeConfig
	client  *http.Client

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

func newProber(c *Cluster, cfg ProbeConfig) *prober {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	return &prober{cluster: c, cfg: cfg, client: client, done: make(chan struct{})}
}

func (p *prober) start() {
	p.startOnce.Do(func() {
		p.wg.Add(1)
		go p.loop()
	})
}

func (p *prober) stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.wg.Wait()
}

func (p *prober) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	p.round() // probe immediately so a dead peer is noticed at startup
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.round()
		}
	}
}

// round probes all peers concurrently and waits for the stragglers, so
// one slow peer cannot delay detection of the others.
func (p *prober) round() {
	var wg sync.WaitGroup
	for _, pr := range p.cluster.peers {
		wg.Add(1)
		go func(pr *peer) {
			defer wg.Done()
			p.probe(pr)
		}(pr)
	}
	wg.Wait()
}

func (p *prober) probe(pr *peer) {
	p.cluster.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pr.url+"/readyz", nil)
	if err != nil {
		p.fail(pr)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.fail(pr)
		return
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		pr.failures.Store(0)
		pr.state.Store(int32(StateUp))
	case resp.StatusCode == http.StatusServiceUnavailable:
		pr.failures.Store(0)
		pr.state.Store(int32(StateDraining))
	default:
		p.fail(pr)
	}
}

func (p *prober) fail(pr *peer) {
	p.cluster.probeFailures.Add(1)
	if int(pr.failures.Add(1)) >= p.cfg.DownAfter {
		pr.state.Store(int32(StateDown))
	}
}
