package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=http://a:1/, n2=http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{{ID: "n1", URL: "http://a:1"}, {ID: "n2", URL: "http://b:2"}}
	if len(peers) != 2 || peers[0] != want[0] || peers[1] != want[1] {
		t.Errorf("ParsePeers = %+v", peers)
	}
	for _, bad := range []string{"", "n1", "=http://a", "n1=", "n1=http://a,n1=http://b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidatesMembership(t *testing.T) {
	peers := []Peer{{ID: "n1", URL: "http://a"}, {ID: "n2", URL: "http://b"}}
	if _, err := New(Config{Self: "nx", Peers: peers}); err == nil {
		t.Error("New accepted a self outside the peer list")
	}
	if _, err := New(Config{Self: "n1", Peers: peers[:1]}); err == nil {
		t.Error("New accepted a single-node cluster")
	}
	c, err := New(Config{Self: "n1", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "n1" || c.PeerURL("n2") != "http://b" || c.PeerURL("nx") != "" {
		t.Error("basic accessors wrong")
	}
	if c.State("n1") != StateUp || c.State("n2") != StateUp || c.State("nx") != StateDown {
		t.Error("initial states wrong")
	}
}

func TestOwnerAgreesAcrossNodes(t *testing.T) {
	peers := []Peer{{ID: "n1", URL: "u1"}, {ID: "n2", URL: "u2"}, {ID: "n3", URL: "u3"}}
	c1, _ := New(Config{Self: "n1", Peers: peers})
	c2, _ := New(Config{Self: "n2", Peers: []Peer{peers[2], peers[0], peers[1]}})
	selfSeen := false
	for i := 0; i < 300; i++ {
		d := testDigest(i)
		id1, self1 := c1.Owner(d)
		id2, _ := c2.Owner(d)
		if id1 != id2 {
			t.Fatalf("nodes disagree on owner of key %d: %s vs %s", i, id1, id2)
		}
		if self1 != (id1 == "n1") {
			t.Fatalf("self flag wrong for key %d", i)
		}
		if self1 {
			selfSeen = true
		}
	}
	if !selfSeen {
		t.Error("n1 owns none of 300 keys")
	}
}

func TestMarkDownAndDraining(t *testing.T) {
	peers := []Peer{{ID: "n1", URL: "u1"}, {ID: "n2", URL: "u2"}}
	c, _ := New(Config{Self: "n1", Peers: peers})
	c.MarkDraining("n2")
	if c.State("n2") != StateDraining {
		t.Error("MarkDraining did not stick")
	}
	c.MarkDown("n2")
	if c.State("n2") != StateDown {
		t.Error("MarkDown did not stick")
	}
	c.MarkDown("n1") // self: no-op
	if c.State("n1") != StateUp {
		t.Error("self state mutated")
	}
	st := c.Peers()
	if len(st) != 2 || st[0].ID != "n1" || !st[0].Self || st[1].StateName != "down" {
		t.Errorf("Peers = %+v", st)
	}
}

func TestProberStateMachine(t *testing.T) {
	// status holds the HTTP code the fake peer answers with; 0 means
	// refuse the connection (server closed).
	var status atomic.Int32
	status.Store(http.StatusOK)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		w.WriteHeader(int(status.Load()))
	}))
	defer srv.Close()

	peers := []Peer{{ID: "self", URL: "http://invalid.invalid"}, {ID: "p", URL: srv.URL}}
	c, err := New(Config{Self: "self", Peers: peers, Probe: ProbeConfig{
		Interval: 10 * time.Millisecond, Timeout: 200 * time.Millisecond, DownAfter: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitState := func(want PeerState) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if c.State("p") == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never reached %v (now %v)", want, c.State("p"))
	}

	waitState(StateUp)
	status.Store(http.StatusServiceUnavailable)
	waitState(StateDraining)
	status.Store(http.StatusOK)
	waitState(StateUp)
	// Passive demotion, then active recovery by the next probe.
	c.MarkDown("p")
	waitState(StateUp)
	// Errors demote only after DownAfter consecutive failures.
	status.Store(http.StatusTeapot)
	waitState(StateDown)
	s := c.Stats()
	if s.Probes == 0 || s.ProbeFailures == 0 {
		t.Errorf("probe counters not advancing: %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	peers := []Peer{{ID: "n1", URL: "u1"}, {ID: "n2", URL: "u2"}}
	c, _ := New(Config{Self: "n1", Peers: peers})
	c.CountForward()
	c.CountForward()
	c.CountForwardRetry()
	c.CountForwardFallback()
	c.CountFillHit()
	c.CountFillMiss()
	c.CountFillServed()
	s := c.Stats()
	if s.Forwards != 2 || s.ForwardRetries != 1 || s.ForwardFallbacks != 1 ||
		s.PeerFillHits != 1 || s.PeerFillMisses != 1 || s.PeerFillServed != 1 {
		t.Errorf("Stats = %+v", s)
	}
}
