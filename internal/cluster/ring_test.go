package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"ravbmc/internal/cache"
)

func testDigest(i int) cache.Digest {
	return cache.Digest(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for i := 0; i < 500; i++ {
		d := testDigest(i)
		if a.Owner(d) != b.Owner(d) {
			t.Fatalf("ownership depends on peer-list order for key %d", i)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(testDigest(i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for node, c := range counts {
		// Perfectly even would be n/3; accept a generous ±50% band —
		// the test guards against gross skew, not statistical drift.
		if c < n/6 || c > n/2 {
			t.Errorf("node %s owns %d of %d keys — ring badly skewed: %v", node, c, n, counts)
		}
	}
}

func TestRingStableUnderMembershipChange(t *testing.T) {
	// Consistent hashing's point: removing one node of three must only
	// move the keys that node owned.
	full := NewRing([]string{"n1", "n2", "n3"}, 0)
	reduced := NewRing([]string{"n1", "n2"}, 0)
	moved := 0
	const n = 3000
	for i := 0; i < n; i++ {
		d := testDigest(i)
		was, now := full.Owner(d), reduced.Owner(d)
		if was != "n3" && was != now {
			t.Fatalf("key %d moved from surviving node %s to %s", i, was, now)
		}
		if was == "n3" {
			moved++
		}
	}
	if moved == 0 || moved == n {
		t.Fatalf("implausible reassignment count %d of %d", moved, n)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := (&Ring{}).Owner(testDigest(0)); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	one := NewRing([]string{"solo"}, 4)
	for i := 0; i < 50; i++ {
		if got := one.Owner(testDigest(i)); got != "solo" {
			t.Fatalf("single-node ring owner = %q", got)
		}
	}
}
