// Package cache is the content-addressed verification-result cache
// behind the vbmcd daemon (internal/serve), the warm-sweep mode of the
// tables harness (internal/tables) and the -remote thin client: ask
// once, memoize the verdict.
//
// A result is addressed by the SHA-256 of (canonicalized program, mode,
// bounds, toolchain version) — see key.go — so semantically identical
// sources with different whitespace, labels or names hit the same
// entry, while any change to the engine build (internal/version)
// invalidates everything at once.
//
// Three layers answer a query:
//
//   - an in-memory, byte-budgeted LRU of entries;
//   - monotone-bound subsumption for the K-bounded modes: a cached
//     SAFE at K'≥k answers a query at k (fewer view switches can only
//     remove behaviours), and a cached validated-UNSAFE at K'≤k
//     answers a query at k (the witness still uses at most k
//     switches). The directions are deliberately asymmetric and are
//     property-tested against direct engine runs;
//   - a singleflight layer that collapses concurrent identical
//     requests into one exploration.
//
// An optional JSONL disk store (disk.go) persists entries across
// restarts; corrupt or stale lines load as misses, never as wrong
// verdicts.
//
// Only trustworthy conclusions are stored: SAFE (the engine exhausted
// the bounded space) and UNSAFE with a validated witness. Inconclusive
// results — timeouts, state caps, cancelled runs — are returned to the
// caller but never memoized: they depend on the run's resources, not
// on the query.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/version"
)

// Verdict strings of an Outcome; the engine verdicts plus the
// portfolio's disagreement marker.
const (
	VerdictSafe         = "SAFE"
	VerdictUnsafe       = "UNSAFE"
	VerdictInconclusive = "INCONCLUSIVE"
	VerdictDisagree     = "DISAGREE"
)

// Outcome is one verification result, the unit the cache stores.
type Outcome struct {
	// Verdict is SAFE, UNSAFE, INCONCLUSIVE or DISAGREE.
	Verdict string `json:"verdict"`
	// States and Transitions are search statistics (whichever the
	// engine reports).
	States      int   `json:"states,omitempty"`
	Transitions int64 `json:"transitions,omitempty"`
	// TranslatedStmts and ContextBound carry the vbmc pipeline's
	// translation size and effective context bound.
	TranslatedStmts int `json:"translated_stmts,omitempty"`
	ContextBound    int `json:"context_bound,omitempty"`
	// WitnessJSONL is the exported witness trace (ravbmc.witness/v1
	// JSONL) for UNSAFE outcomes; stored alongside the entry and
	// returned to clients.
	WitnessJSONL []byte `json:"-"`
	// WitnessValidated reports that the witness replayed under the RA
	// operational semantics (true by construction for the engines that
	// execute RA directly).
	WitnessValidated bool `json:"witness_validated,omitempty"`
	// Unbounded marks a SAFE that holds for every K and L (the
	// thread-modular proof): top of the verdict lattice. An unbounded
	// entry answers a query at any K through subsumption.
	Unbounded bool `json:"unbounded,omitempty"`
	// Detail carries free-form engine output (the portfolio's rendered
	// report, an engine error message).
	Detail string `json:"detail,omitempty"`
	// Seconds is the wall time of the run that produced the outcome
	// (the original run for cached answers — telling a client how much
	// time the cache saved it).
	Seconds float64 `json:"seconds"`

	// Cached, Subsumed, SubsumedFromK and Collapsed describe how this
	// answer was obtained; set on the returned copy, never persisted.
	Cached        bool `json:"cached"`
	Subsumed      bool `json:"subsumed,omitempty"`
	SubsumedFromK int  `json:"subsumed_from_k,omitempty"`
	Collapsed     bool `json:"collapsed,omitempty"`
}

// cacheable reports whether the outcome is a trustworthy conclusion
// worth memoizing: SAFE, or UNSAFE backed by a validated witness.
func cacheable(o Outcome) bool {
	return o.Verdict == VerdictSafe || (o.Verdict == VerdictUnsafe && o.WitnessValidated)
}

// RunFunc executes a request on a miss. It receives the normalized
// request; the outcome it returns is delivered to every collapsed
// waiter and, if cacheable, stored.
type RunFunc func(ctx context.Context, req Request) (Outcome, error)

// Config configures a Cache.
type Config struct {
	// MaxBytes budgets the in-memory layer (entry payloads plus a
	// fixed per-entry overhead); 0 selects 64 MiB, negative is
	// unlimited. The budget is enforced by LRU eviction.
	MaxBytes int64
	// DiskPath, when non-empty, opens the JSONL disk store at that
	// path: existing entries are loaded (corrupt/stale lines skipped)
	// and new stores appended.
	DiskPath string
	// Version overrides the toolchain version embedded in every key;
	// empty selects internal/version.String(). Tests use it to model
	// binary upgrades.
	Version string
	// Obs, when non-nil, mirrors the cache counters ("cache.hits",
	// "cache.misses", "cache.subsumed_hits", "cache.evictions",
	// "cache.inflight_collapsed", "cache.stores") and gauges
	// ("cache.bytes", "cache.entries") onto the recorder, so run
	// reports and /metrics agree.
	Obs *obs.Recorder
}

// defaultMaxBytes is the in-memory budget when Config.MaxBytes is 0.
const defaultMaxBytes = 64 << 20

// entryOverhead approximates the fixed in-memory cost of one entry
// (map slot, list element, struct) on top of its payload bytes.
const entryOverhead = 512

// entry is one memoized outcome.
type entry struct {
	digest Digest
	group  Digest
	mode   string
	k      int
	out    Outcome // identity fields (Cached etc.) cleared
	bytes  int64
	elem   *list.Element
}

// group indexes a subsumption family's entries by K and verdict, plus
// the unbounded-SAFE tier: one entry proved for every K, dominating
// the whole safe map.
type group struct {
	safe   map[int]Digest // K -> digest of a SAFE entry
	unsafe map[int]Digest // K -> digest of a validated-UNSAFE entry
	// unbounded is the digest of an unbounded-SAFE entry (valid only
	// when hasUnbounded); it answers a query at any K.
	unbounded    Digest
	hasUnbounded bool
}

// index registers a stored entry in the subsumption tiers. The
// unbounded tier is keyed off Outcome.Unbounded, never off K: a SAFE@K
// must not be promoted to a proof for all K.
func (gr *group) index(k int, d Digest, out Outcome) {
	switch {
	case out.Verdict == VerdictSafe && out.Unbounded:
		gr.unbounded, gr.hasUnbounded = d, true
	case out.Verdict == VerdictSafe:
		gr.safe[k] = d
	case out.Verdict == VerdictUnsafe:
		gr.unsafe[k] = d
	}
}

// flight is one in-progress execution; concurrent identical requests
// wait on done instead of re-exploring.
type flight struct {
	done chan struct{}
	out  Outcome
	err  error
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits are exact-key answers; SubsumedHits answers via monotone-K
	// subsumption; Misses are lookups that started an execution.
	Hits, SubsumedHits, Misses int64
	// InflightCollapsed counts requests that waited on another's
	// execution instead of starting their own.
	InflightCollapsed int64
	// Stores and Evictions count entry insertions and LRU evictions.
	Stores, Evictions int64
	// DiskLoaded, DiskCorrupt and DiskStale count disk-store lines
	// installed, skipped as unreadable, and skipped for a version
	// mismatch.
	DiskLoaded, DiskCorrupt, DiskStale int64
	// Entries and BytesUsed describe the in-memory layer; BytesBudget
	// echoes the configured budget (<0 = unlimited).
	Entries     int
	BytesUsed   int64
	BytesBudget int64
}

// Cache is the content-addressed result cache. Construct with New; a
// nil *Cache is the disabled cache — Do degenerates to calling the
// runner directly, so callers can thread an optional cache without
// branching.
type Cache struct {
	version string
	budget  int64
	disk    *diskStore

	mu      sync.Mutex
	entries map[Digest]*entry
	lru     *list.List // front = most recently used
	used    int64
	groups  map[Digest]*group
	flights map[Digest]*flight

	hits, subsumedHits, misses atomic.Int64
	collapsed                  atomic.Int64
	stores, evictions          atomic.Int64
	diskLoaded                 atomic.Int64
	diskCorrupt, diskStale     atomic.Int64

	obsHits, obsSubsumed, obsMisses  *obs.Counter
	obsCollapsed, obsStores, obsEvic *obs.Counter
	obsBytes, obsEntries             *obs.Gauge
	// lookup distributes lookup latency (lock wait + map/subsumption
	// probe); standalone so the family exists regardless of Config.Obs.
	lookup *obs.Histogram
}

// New opens a cache. The returned error is only ever a disk-store
// failure (unreadable path); an in-memory cache cannot fail.
func New(cfg Config) (*Cache, error) {
	ver := cfg.Version
	if ver == "" {
		ver = version.String()
	}
	budget := cfg.MaxBytes
	if budget == 0 {
		budget = defaultMaxBytes
	}
	c := &Cache{
		version: ver,
		budget:  budget,
		entries: map[Digest]*entry{},
		lru:     list.New(),
		groups:  map[Digest]*group{},
		flights: map[Digest]*flight{},

		obsHits:      cfg.Obs.Counter("cache.hits"),
		obsSubsumed:  cfg.Obs.Counter("cache.subsumed_hits"),
		obsMisses:    cfg.Obs.Counter("cache.misses"),
		obsCollapsed: cfg.Obs.Counter("cache.inflight_collapsed"),
		obsStores:    cfg.Obs.Counter("cache.stores"),
		obsEvic:      cfg.Obs.Counter("cache.evictions"),
		obsBytes:     cfg.Obs.Gauge("cache.bytes"),
		obsEntries:   cfg.Obs.Gauge("cache.entries"),
		lookup:       obs.NewHistogram("cache.lookup_seconds", obs.DurationBuckets),
	}
	if cfg.DiskPath != "" {
		disk, err := openDisk(cfg.DiskPath)
		if err != nil {
			return nil, err
		}
		c.disk = disk
		c.loadDisk()
	}
	return c, nil
}

// Close flushes and closes the disk store (a no-op without one).
func (c *Cache) Close() error {
	if c == nil || c.disk == nil {
		return nil
	}
	return c.disk.close()
}

// Version returns the toolchain version embedded in every key.
func (c *Cache) Version() string {
	if c == nil {
		return version.String()
	}
	return c.version
}

// LookupSeconds snapshots the lookup-latency distribution (empty for
// the nil cache, so /metrics renders the family either way).
func (c *Cache) LookupSeconds() obs.HistogramSnapshot {
	if c == nil {
		return obs.NewHistogram("cache.lookup_seconds", obs.DurationBuckets).Snapshot()
	}
	return c.lookup.Snapshot()
}

// Stats snapshots the counters. Safe concurrently with Do.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, used := len(c.entries), c.used
	c.mu.Unlock()
	return Stats{
		Hits:              c.hits.Load(),
		SubsumedHits:      c.subsumedHits.Load(),
		Misses:            c.misses.Load(),
		InflightCollapsed: c.collapsed.Load(),
		Stores:            c.stores.Load(),
		Evictions:         c.evictions.Load(),
		DiskLoaded:        c.diskLoaded.Load(),
		DiskCorrupt:       c.diskCorrupt.Load(),
		DiskStale:         c.diskStale.Load(),
		Entries:           entries,
		BytesUsed:         used,
		BytesBudget:       c.budget,
	}
}

// Do answers the request from the cache, or executes run once (however
// many callers ask concurrently) and memoizes a cacheable outcome. On
// the nil cache it simply calls run. The context cancels this caller's
// wait and its own execution, but never an execution it merely
// collapsed onto — the leader's run continues for the other waiters.
func (c *Cache) Do(ctx context.Context, req Request, run RunFunc) (Outcome, error) {
	if req.Prog == nil {
		return Outcome{}, errors.New("cache: request has no program")
	}
	if !ValidMode(req.Mode) {
		return Outcome{}, errors.New("cache: unknown mode " + req.Mode)
	}
	nr := req.normalized()
	if c == nil {
		return run(ctx, nr)
	}
	canon := lang.Canon(nr.Prog)
	d := digest(canon, nr, c.version, false)
	g := digest(canon, nr, c.version, true)

	retried := false
	for {
		t0 := time.Now()
		c.mu.Lock()
		out, ok := c.lookupLocked(d, g, nr)
		c.lookup.ObserveSince(t0)
		if ok {
			c.mu.Unlock()
			return out, nil
		}
		if f, ok := c.flights[d]; ok {
			c.mu.Unlock()
			c.collapsed.Add(1)
			c.obsCollapsed.Inc()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Outcome{Verdict: VerdictInconclusive}, ctx.Err()
			}
			if f.err != nil {
				return f.out, f.err
			}
			if cacheable(f.out) || retried || ctx.Err() != nil {
				out := f.out
				out.Collapsed = true
				return out, nil
			}
			// The leader concluded nothing (it was cancelled or timed
			// out under its own budget); our context is still live, so
			// take one fresh attempt rather than inheriting its fate.
			retried = true
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[d] = f
		c.mu.Unlock()

		c.misses.Add(1)
		c.obsMisses.Inc()
		out, err := run(ctx, nr)
		out.Cached, out.Subsumed, out.SubsumedFromK, out.Collapsed = false, false, 0, false
		c.mu.Lock()
		delete(c.flights, d)
		if err == nil && cacheable(out) {
			c.storeLocked(d, g, nr, out)
		}
		c.mu.Unlock()
		f.out, f.err = out, err
		close(f.done)
		return out, err
	}
}

// GetByDigest returns the exact entry stored under d, if any — the
// read the peer cache-fill endpoint serves: no subsumption, no
// execution, just the memoized outcome (witness included). It
// refreshes the entry's LRU position but does not count toward the
// hit/miss statistics — a peer's read is not this node's workload.
func (c *Cache) GetByDigest(d Digest) (Outcome, bool) {
	if c == nil {
		return Outcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[d]
	if !ok {
		return Outcome{}, false
	}
	c.lru.MoveToFront(e.elem)
	out := e.out
	out.Cached = true
	return out, true
}

// lookupLocked answers from the exact entry or by subsumption. Callers
// hold c.mu.
func (c *Cache) lookupLocked(d, g Digest, r Request) (Outcome, bool) {
	if e, ok := c.entries[d]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits.Add(1)
		c.obsHits.Inc()
		out := e.out
		out.Cached = true
		return out, true
	}
	if !subsumable(r.Mode) {
		return Outcome{}, false
	}
	gr, ok := c.groups[g]
	if !ok {
		return Outcome{}, false
	}
	// The unbounded tier first: a thread-modular proof answers every K.
	if gr.hasUnbounded {
		if e, ok := c.entries[gr.unbounded]; ok {
			return c.subsumedLocked(e.digest, e.k)
		}
	}
	// A SAFE at the smallest K' ≥ k answers k: no behaviour within k
	// view switches fails, because none within K' does.
	bestK, found := 0, false
	for k2 := range gr.safe {
		if k2 >= r.K && (!found || k2 < bestK) {
			bestK, found = k2, true
		}
	}
	if !found {
		// A validated UNSAFE at the largest K' ≤ k answers k: its
		// witness uses at most K' ≤ k view switches.
		for k2 := range gr.unsafe {
			if k2 <= r.K && (!found || k2 > bestK) {
				bestK, found = k2, true
			}
		}
		if !found {
			return Outcome{}, false
		}
		return c.subsumedLocked(gr.unsafe[bestK], bestK)
	}
	return c.subsumedLocked(gr.safe[bestK], bestK)
}

// subsumedLocked materialises a subsumption answer from the source
// entry. Callers hold c.mu.
func (c *Cache) subsumedLocked(d Digest, fromK int) (Outcome, bool) {
	e, ok := c.entries[d]
	if !ok {
		// The group index is pruned on eviction, so this is a bug
		// guard, not an expected path.
		return Outcome{}, false
	}
	c.lru.MoveToFront(e.elem)
	c.subsumedHits.Add(1)
	c.obsSubsumed.Inc()
	out := e.out
	out.Cached = true
	out.Subsumed = true
	out.SubsumedFromK = fromK
	return out, true
}

// entryBytes approximates the in-memory cost of an outcome.
func entryBytes(o Outcome) int64 {
	return entryOverhead + int64(len(o.WitnessJSONL)) + int64(len(o.Detail))
}

// storeLocked inserts an entry, indexes it for subsumption, enforces
// the byte budget and appends to the disk store. Callers hold c.mu.
func (c *Cache) storeLocked(d, g Digest, r Request, out Outcome) {
	if e, ok := c.entries[d]; ok {
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{digest: d, group: g, mode: r.Mode, k: r.K, out: out, bytes: entryBytes(out)}
	e.elem = c.lru.PushFront(e)
	c.entries[d] = e
	c.used += e.bytes
	if subsumable(r.Mode) {
		gr := c.groups[g]
		if gr == nil {
			gr = &group{safe: map[int]Digest{}, unsafe: map[int]Digest{}}
			c.groups[g] = gr
		}
		gr.index(r.K, d, out)
	}
	c.stores.Add(1)
	c.obsStores.Inc()
	c.evictLocked()
	c.obsBytes.Set(c.used)
	c.obsEntries.Set(int64(len(c.entries)))
	if c.disk != nil {
		c.disk.append(diskRecord(e, c.version))
	}
}

// evictLocked drops least-recently-used entries until the budget is
// met. A single entry larger than the whole budget is kept — evicting
// it would just thrash. Callers hold c.mu.
func (c *Cache) evictLocked() {
	if c.budget < 0 {
		return
	}
	for c.used > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.digest)
		c.used -= e.bytes
		if gr, ok := c.groups[e.group]; ok {
			if gr.safe[e.k] == e.digest {
				delete(gr.safe, e.k)
			}
			if gr.unsafe[e.k] == e.digest {
				delete(gr.unsafe, e.k)
			}
			if gr.hasUnbounded && gr.unbounded == e.digest {
				gr.hasUnbounded = false
			}
			if len(gr.safe) == 0 && len(gr.unsafe) == 0 && !gr.hasUnbounded {
				delete(c.groups, e.group)
			}
		}
		c.evictions.Add(1)
		c.obsEvic.Inc()
	}
}
