package cache

import (
	"context"
	"strings"
	"testing"

	"ravbmc/internal/lang"
)

// fakeRun returns a RunFunc delivering out and counting invocations.
func fakeRun(out Outcome, calls *int) RunFunc {
	return func(ctx context.Context, r Request) (Outcome, error) {
		*calls++
		return out, nil
	}
}

func newTestCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Version == "" {
		cfg.Version = "v-test"
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	calls := 0
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	for i := 0; i < 2; i++ {
		out, err := c.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictSafe}, &calls))
		if err != nil || out.Verdict != VerdictSafe || out.Cached {
			t.Fatalf("nil cache: out=%+v err=%v", out, err)
		}
	}
	if calls != 2 {
		t.Errorf("nil cache memoized: %d calls", calls)
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Errorf("nil cache stats = %+v", got)
	}
}

func TestDoRejectsBadRequests(t *testing.T) {
	c := newTestCache(t, Config{})
	if _, err := c.Do(context.Background(), Request{Mode: ModeVBMC}, nil); err == nil {
		t.Error("no error for missing program")
	}
	if _, err := c.Do(context.Background(), Request{Prog: keyProg("p", 1), Mode: "bogus"}, nil); err == nil {
		t.Error("no error for unknown mode")
	}
}

func TestExactHit(t *testing.T) {
	c := newTestCache(t, Config{})
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	calls := 0
	run := fakeRun(Outcome{Verdict: VerdictSafe, States: 42}, &calls)

	first, err := c.Do(context.Background(), req, run)
	if err != nil || first.Cached {
		t.Fatalf("first: out=%+v err=%v", first, err)
	}
	// Same query under a renamed program: canonicalisation must land on
	// the same entry.
	req2 := Request{Prog: keyProg("other", 1), Mode: ModeVBMC, K: 2}
	second, err := c.Do(context.Background(), req2, run)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Subsumed || second.States != 42 {
		t.Errorf("second: %+v", second)
	}
	if calls != 1 {
		t.Errorf("runner ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUncacheableOutcomesNotStored(t *testing.T) {
	c := newTestCache(t, Config{})
	for _, out := range []Outcome{
		{Verdict: VerdictInconclusive},
		{Verdict: VerdictUnsafe, WitnessValidated: false},
		{Verdict: VerdictDisagree},
	} {
		calls := 0
		req := Request{Prog: keyProg("mp", int(out.Verdict[0])), Mode: ModeVBMC, K: 2}
		for i := 0; i < 2; i++ {
			got, err := c.Do(context.Background(), req, fakeRun(out, &calls))
			if err != nil || got.Cached {
				t.Fatalf("%s: out=%+v err=%v", out.Verdict, got, err)
			}
		}
		if calls != 2 {
			t.Errorf("%s: memoized (%d calls)", out.Verdict, calls)
		}
	}
	if st := c.Stats(); st.Stores != 0 || st.Entries != 0 {
		t.Errorf("uncacheable outcomes were stored: %+v", st)
	}
}

// TestSubsumptionDirections pins the two sound directions and the two
// unsound ones: SAFE answers downward in K, validated UNSAFE answers
// upward, and never the other way around.
func TestSubsumptionDirections(t *testing.T) {
	for _, mode := range []string{ModeVBMC, ModeRAK} {
		t.Run(mode, func(t *testing.T) {
			c := newTestCache(t, Config{})
			// Distinct programs per direction: a real program is either
			// safe or unsafe at a given bound, and mixing both verdicts
			// in one subsumption family would test an impossible state.
			safeProg, unsafeProg := keyProg("s", 1), keyProg("u", 2)
			seed := func(prog *lang.Program, k int, out Outcome) {
				calls := 0
				if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: mode, K: k}, fakeRun(out, &calls)); err != nil {
					t.Fatal(err)
				}
			}
			query := func(prog *lang.Program, k int) (Outcome, bool) {
				missed := false
				out, err := c.Do(context.Background(), Request{Prog: prog, Mode: mode, K: k},
					func(ctx context.Context, r Request) (Outcome, error) {
						missed = true
						return Outcome{Verdict: VerdictInconclusive}, nil
					})
				if err != nil {
					t.Fatal(err)
				}
				return out, !missed
			}

			seed(safeProg, 5, Outcome{Verdict: VerdictSafe})
			if out, hit := query(safeProg, 3); !hit || !out.Subsumed || out.SubsumedFromK != 5 || out.Verdict != VerdictSafe {
				t.Errorf("SAFE@5 did not answer K=3: hit=%v out=%+v", hit, out)
			}
			if _, hit := query(safeProg, 7); hit {
				t.Error("SAFE@5 unsoundly answered K=7")
			}

			seed(unsafeProg, 2, Outcome{Verdict: VerdictUnsafe, WitnessValidated: true, WitnessJSONL: []byte("{}\n")})
			out, hit := query(unsafeProg, 4)
			if !hit || !out.Subsumed || out.SubsumedFromK != 2 || out.Verdict != VerdictUnsafe {
				t.Errorf("UNSAFE@2 did not answer K=4: hit=%v out=%+v", hit, out)
			}
			if len(out.WitnessJSONL) == 0 {
				t.Error("subsumed UNSAFE answer lost its witness")
			}
			if _, hit := query(unsafeProg, 1); hit {
				t.Error("UNSAFE@2 unsoundly answered K=1")
			}
		})
	}
}

func TestSubsumptionPrefersTightestBound(t *testing.T) {
	c := newTestCache(t, Config{})
	safeProg, unsafeProg := keyProg("s", 1), keyProg("u", 2)
	seed := func(prog *lang.Program, k int, out Outcome) {
		calls := 0
		if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: k}, fakeRun(out, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	// Seed tight-to-loose: a looser bound seeded second is a genuine
	// fresh run (a SAFE@9 query is not answered by SAFE@5), so both
	// entries land in the family.
	seed(safeProg, 5, Outcome{Verdict: VerdictSafe})
	seed(safeProg, 9, Outcome{Verdict: VerdictSafe})
	out, err := c.Do(context.Background(), Request{Prog: safeProg, Mode: ModeVBMC, K: 3},
		func(ctx context.Context, r Request) (Outcome, error) {
			t.Fatal("missed despite two applicable SAFE entries")
			return Outcome{}, nil
		})
	if err != nil || out.SubsumedFromK != 5 {
		t.Errorf("picked K'=%d, want the smallest applicable 5 (err=%v)", out.SubsumedFromK, err)
	}

	seed(unsafeProg, 4, Outcome{Verdict: VerdictUnsafe, WitnessValidated: true})
	seed(unsafeProg, 1, Outcome{Verdict: VerdictUnsafe, WitnessValidated: true})
	out, err = c.Do(context.Background(), Request{Prog: unsafeProg, Mode: ModeVBMC, K: 6},
		func(ctx context.Context, r Request) (Outcome, error) {
			t.Fatal("missed despite two applicable UNSAFE entries")
			return Outcome{}, nil
		})
	if err != nil || out.SubsumedFromK != 4 {
		t.Errorf("picked K'=%d, want the largest applicable 4 (err=%v)", out.SubsumedFromK, err)
	}
}

func TestNoSubsumptionAcrossGroups(t *testing.T) {
	c := newTestCache(t, Config{})
	prog := keyProg("mp", 1)
	calls := 0
	// SAFE at K=5 under a state cap...
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 5, MaxStates: 100},
		fakeRun(Outcome{Verdict: VerdictSafe}, &calls)); err != nil {
		t.Fatal(err)
	}
	// ...must not answer an uncapped query at K=3 (different ground
	// rules), nor one on a different program.
	for _, req := range []Request{
		{Prog: prog, Mode: ModeVBMC, K: 3},
		{Prog: keyProg("mp", 2), Mode: ModeVBMC, K: 3, MaxStates: 100},
	} {
		if _, err := c.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictInconclusive}, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Errorf("runner ran %d times, want 3 (no cross-group subsumption)", calls)
	}
	// Non-subsumable modes never answer across K even within a family.
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModePortfolio, K: 5},
		fakeRun(Outcome{Verdict: VerdictSafe}, &calls)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModePortfolio, K: 3},
		fakeRun(Outcome{Verdict: VerdictInconclusive}, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("portfolio subsumed across K (%d calls, want 5)", calls)
	}
}

func TestLRUEvictionAtByteBudget(t *testing.T) {
	// Budget for roughly three entries: each costs entryOverhead plus a
	// 1 KiB detail payload.
	payload := strings.Repeat("w", 1024)
	per := entryOverhead + int64(len(payload))
	c := newTestCache(t, Config{MaxBytes: 3 * per})

	do := func(v int, wantCached bool) {
		calls := 0
		out, err := c.Do(context.Background(), Request{Prog: keyProg("p", v), Mode: ModeVBMC, K: 2},
			fakeRun(Outcome{Verdict: VerdictSafe, Detail: payload}, &calls))
		if err != nil {
			t.Fatal(err)
		}
		if out.Cached != wantCached {
			t.Errorf("prog %d: cached=%v, want %v", v, out.Cached, wantCached)
		}
	}
	for v := 1; v <= 4; v++ {
		do(v, false) // 4 stores into a 3-entry budget evict prog 1
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	if st.BytesUsed > st.BytesBudget {
		t.Errorf("used %d exceeds budget %d", st.BytesUsed, st.BytesBudget)
	}
	do(2, true)  // prog 2 survived; the hit also refreshes its recency
	do(1, false) // prog 1 was the LRU victim and re-runs, evicting prog 3
	do(3, false) // ...which therefore re-runs too
	if st := c.Stats(); st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

func TestEvictionPrunesSubsumptionIndex(t *testing.T) {
	payload := strings.Repeat("w", 1024)
	per := entryOverhead + int64(len(payload))
	c := newTestCache(t, Config{MaxBytes: 2 * per})
	prog := keyProg("mp", 1)
	calls := 0
	// SAFE@9 for the family, then two entries on other programs to evict it.
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 9},
		fakeRun(Outcome{Verdict: VerdictSafe, Detail: payload}, &calls)); err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 3; v++ {
		if _, err := c.Do(context.Background(), Request{Prog: keyProg("p", v), Mode: ModeVBMC, K: 2},
			fakeRun(Outcome{Verdict: VerdictSafe, Detail: payload}, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	// The evicted SAFE@9 must not answer K=3 via a dangling index slot.
	out, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 3},
		fakeRun(Outcome{Verdict: VerdictInconclusive}, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Errorf("evicted entry still answered: %+v", out)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: -1})
	calls := 0
	for v := 1; v <= 50; v++ {
		if _, err := c.Do(context.Background(), Request{Prog: keyProg("p", v), Mode: ModeVBMC, K: 2},
			fakeRun(Outcome{Verdict: VerdictSafe, Detail: strings.Repeat("x", 4096)}, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 50 {
		t.Errorf("unlimited budget evicted: %+v", st)
	}
}
