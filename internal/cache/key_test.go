package cache

import (
	"context"
	"testing"

	"ravbmc/internal/lang"
)

// keyProg builds a tiny two-proc program whose first write stores v,
// so different v yield genuinely different programs.
func keyProg(name string, v int) *lang.Program {
	p := &lang.Program{Name: name, Vars: []string{"y", "x"}}
	p.Procs = []*lang.Proc{
		{Name: "a", Body: []lang.Stmt{
			lang.Write{Var: "x", Val: lang.C(lang.Value(v))},
			lang.Write{Var: "y", Val: lang.C(1)},
		}},
		{Name: "b", Regs: []string{"r"}, Body: []lang.Stmt{
			lang.Read{Reg: "r", Var: "y"},
			lang.Assert{Cond: lang.Not(lang.Eq(lang.R("r"), lang.C(2)))},
		}},
	}
	return p
}

func reqDigest(r Request, group bool) Digest {
	nr := r.normalized()
	return digest(lang.Canon(nr.Prog), nr, "v-test", group)
}

func TestDigestSurfaceInsensitive(t *testing.T) {
	a := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	b := Request{Prog: keyProg("renamed", 1), Mode: ModeVBMC, K: 2}
	if reqDigest(a, false) != reqDigest(b, false) {
		t.Error("digest differs for programs differing only in name")
	}
	c := Request{Prog: keyProg("mp", 3), Mode: ModeVBMC, K: 2}
	if reqDigest(a, false) == reqDigest(c, false) {
		t.Error("digest conflates semantically different programs")
	}
}

func TestDigestSeparatesModesAndBounds(t *testing.T) {
	base := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	variants := []Request{
		{Prog: base.Prog, Mode: ModeRAK, K: 2},
		{Prog: base.Prog, Mode: ModeVBMC, K: 3},
		{Prog: base.Prog, Mode: ModeVBMC, K: 2, Unroll: 4},
		{Prog: base.Prog, Mode: ModeVBMC, K: 2, MaxStates: 100},
		{Prog: base.Prog, Mode: ModeVBMC, K: 2, ExactDedup: true},
	}
	d0 := reqDigest(base, false)
	for i, v := range variants {
		if reqDigest(v, false) == d0 {
			t.Errorf("variant %d shares the base digest", i)
		}
	}
}

func TestDigestVersionInvalidates(t *testing.T) {
	r := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}.normalized()
	canon := lang.Canon(r.Prog)
	if digest(canon, r, "v1", false) == digest(canon, r, "v2", false) {
		t.Error("digest ignores the toolchain version")
	}
}

func TestGroupDigestSharedAcrossK(t *testing.T) {
	a := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 1}
	b := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 9}
	if reqDigest(a, true) != reqDigest(b, true) {
		t.Error("group digest differs across K")
	}
	if reqDigest(a, false) == reqDigest(b, false) {
		t.Error("exact digest conflates different K")
	}
	c := Request{Prog: keyProg("mp", 1), Mode: ModeRAK, K: 1}
	if reqDigest(a, true) == reqDigest(c, true) {
		t.Error("group digest conflates vbmc and rak families")
	}
}

func TestNormalizationDropsIrrelevantDims(t *testing.T) {
	// The exhaustive and stateless modes ignore K and MaxContexts.
	a := Request{Prog: keyProg("mp", 1), Mode: ModeRA, K: 3, MaxContexts: 7}
	b := Request{Prog: keyProg("mp", 1), Mode: ModeRA}
	if reqDigest(a, false) != reqDigest(b, false) {
		t.Error("ra digest depends on K/MaxContexts, which the mode ignores")
	}
	c := Request{Prog: keyProg("mp", 1), Mode: ModeTracer, ExactDedup: true}
	d := Request{Prog: keyProg("mp", 1), Mode: ModeTracer}
	if reqDigest(c, false) != reqDigest(d, false) {
		t.Error("tracer digest depends on ExactDedup, which the mode ignores")
	}
}

// TestKeyMatchesStorageDigest pins the routing contract the cluster
// depends on: Cache.Key equals the digest entries are stored under, is
// insensitive to request surface variation, and GetByDigest finds the
// entry a Do stored — witness bytes included.
func TestKeyMatchesStorageDigest(t *testing.T) {
	c, err := New(Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	if c.Key(req) != reqDigest(req, false) {
		t.Error("Key disagrees with the storage digest derivation")
	}
	renamed := Request{Prog: keyProg("other", 1), Mode: ModeVBMC, K: 2}
	if c.Key(req) != c.Key(renamed) {
		t.Error("Key differs for programs differing only in name")
	}

	want := Outcome{Verdict: VerdictUnsafe, WitnessValidated: true,
		States: 7, WitnessJSONL: []byte("{\"w\":1}\n")}
	if _, err := c.Do(context.Background(), req, func(context.Context, Request) (Outcome, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetByDigest(c.Key(req))
	if !ok {
		t.Fatal("GetByDigest missed the entry Do just stored")
	}
	if got.Verdict != want.Verdict || got.States != want.States || !got.Cached {
		t.Errorf("GetByDigest = %+v", got)
	}
	if string(got.WitnessJSONL) != string(want.WitnessJSONL) {
		t.Errorf("GetByDigest witness = %q", got.WitnessJSONL)
	}
	if _, ok := c.GetByDigest(Digest{1, 2, 3}); ok {
		t.Error("GetByDigest invented an entry for an unknown digest")
	}
	var nilc *Cache
	if _, ok := nilc.GetByDigest(c.Key(req)); ok {
		t.Error("nil cache GetByDigest returned an entry")
	}
	if nilc.Key(req) == (Digest{}) {
		t.Error("nil cache Key returned the zero digest")
	}
}

func TestValidMode(t *testing.T) {
	for _, m := range Modes() {
		if !ValidMode(m) {
			t.Errorf("Modes() lists invalid mode %q", m)
		}
	}
	for _, m := range []string{"", "VBMC", "bogus"} {
		if ValidMode(m) {
			t.Errorf("ValidMode(%q) = true", m)
		}
	}
}
