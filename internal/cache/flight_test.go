package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightCollapse fires 100 identical concurrent requests at a
// slow runner and requires exactly one execution; everyone else waits
// and receives the leader's outcome. Run under -race this also checks
// the flight handoff for data races.
func TestSingleflightCollapse(t *testing.T) {
	c := newTestCache(t, Config{})
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}

	var runs atomic.Int64
	release := make(chan struct{})
	run := func(ctx context.Context, r Request) (Outcome, error) {
		runs.Add(1)
		<-release
		return Outcome{Verdict: VerdictSafe, States: 7}, nil
	}

	const n = 100
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			outs[i], errs[i] = c.Do(context.Background(), req, run)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the stragglers a moment to reach the flight wait, then let
	// the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want 1", got)
	}
	var collapsed, fresh int
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if outs[i].Verdict != VerdictSafe || outs[i].States != 7 {
			t.Fatalf("request %d got %+v", i, outs[i])
		}
		switch {
		case outs[i].Collapsed:
			collapsed++
		case !outs[i].Cached:
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh executions, want 1", fresh)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	// Everyone who didn't lead either collapsed onto the flight or (if
	// scheduled after the store) hit the fresh entry.
	if int(st.InflightCollapsed)+int(st.Hits) != n-1 {
		t.Errorf("collapsed %d + hits %d != %d", st.InflightCollapsed, st.Hits, n-1)
	}
	_ = collapsed
}

// TestFlightFollowerRetriesAfterCancelledLeader cancels the leader
// mid-run; the follower, whose context is still live, must take one
// fresh attempt rather than inherit the leader's inconclusive outcome.
func TestFlightFollowerRetriesAfterCancelledLeader(t *testing.T) {
	c := newTestCache(t, Config{})
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var runs atomic.Int64
	run := func(ctx context.Context, r Request) (Outcome, error) {
		if runs.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done()
			return Outcome{Verdict: VerdictInconclusive}, nil
		}
		return Outcome{Verdict: VerdictSafe}, nil
	}

	leaderDone := make(chan Outcome, 1)
	go func() {
		out, _ := c.Do(leaderCtx, req, run)
		leaderDone <- out
	}()
	<-leaderIn

	followerDone := make(chan Outcome, 1)
	go func() {
		out, err := c.Do(context.Background(), req, run)
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerDone <- out
	}()
	// The follower has no way to signal "I am waiting on the flight"
	// from outside, so give it a moment to get there before cancelling.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if out := <-leaderDone; out.Verdict != VerdictInconclusive {
		t.Errorf("leader outcome = %+v", out)
	}
	select {
	case out := <-followerDone:
		if out.Verdict != VerdictSafe || out.Collapsed {
			t.Errorf("follower outcome = %+v, want a fresh SAFE", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner executed %d times, want 2 (leader + follower retry)", got)
	}
}

// TestFlightWaiterHonorsOwnContext cancels a waiter while the leader is
// still running: the waiter must return promptly with its context error
// and the leader must be unaffected.
func TestFlightWaiterHonorsOwnContext(t *testing.T) {
	c := newTestCache(t, Config{})
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, r Request) (Outcome, error) {
		close(leaderIn)
		<-release
		return Outcome{Verdict: VerdictSafe}, nil
	}
	go c.Do(context.Background(), req, run)
	<-leaderIn

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Do(waiterCtx, req, run)
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelWaiter()
	select {
	case err := <-waiterDone:
		if err != context.Canceled {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	close(release)
}
