package cache

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiskStoreSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	safeReq := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}
	unsafeReq := Request{Prog: keyProg("mp", 2), Mode: ModeVBMC, K: 3}

	c1 := newTestCache(t, Config{DiskPath: path})
	calls := 0
	if _, err := c1.Do(context.Background(), safeReq, fakeRun(Outcome{Verdict: VerdictSafe, States: 11}, &calls)); err != nil {
		t.Fatal(err)
	}
	witness := "{\"schema\":\"ravbmc.witness/v1\"}\n{\"step\":1}\n"
	if _, err := c1.Do(context.Background(), unsafeReq,
		fakeRun(Outcome{Verdict: VerdictUnsafe, WitnessValidated: true, WitnessJSONL: []byte(witness)}, &calls)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCache(t, Config{DiskPath: path})
	if st := c2.Stats(); st.DiskLoaded != 2 || st.DiskCorrupt != 0 {
		t.Fatalf("reload stats = %+v", st)
	}
	out, err := c2.Do(context.Background(), safeReq, fakeRun(Outcome{}, &calls))
	if err != nil || !out.Cached || out.Verdict != VerdictSafe || out.States != 11 {
		t.Errorf("safe entry did not survive: out=%+v err=%v", out, err)
	}
	out, err = c2.Do(context.Background(), unsafeReq, fakeRun(Outcome{}, &calls))
	if err != nil || !out.Cached || out.Verdict != VerdictUnsafe || string(out.WitnessJSONL) != witness {
		t.Errorf("unsafe entry or witness did not survive: out=%+v err=%v", out, err)
	}
	// Subsumption works from reloaded entries too: SAFE@2 answers K=1.
	out, err = c2.Do(context.Background(), Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 1},
		fakeRun(Outcome{Verdict: VerdictInconclusive}, &calls))
	if err != nil || !out.Subsumed || out.SubsumedFromK != 2 {
		t.Errorf("reloaded entry not indexed for subsumption: %+v", out)
	}
	if calls != 2 {
		t.Errorf("runner executed %d times across both lives, want 2", calls)
	}
}

// TestDiskCorruptionIsMissNeverVerdict mangles the store in several
// ways; every mangled line must load as a skip (counted), and queries
// must fall through to the runner with the correct verdict.
func TestDiskCorruptionIsMissNeverVerdict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}

	c1 := newTestCache(t, Config{DiskPath: path})
	calls := 0
	if _, err := c1.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictSafe}, &calls)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Mangle: flip the stored verdict to UNSAFE (no witness — must be
	// rejected as uncacheable), append garbage, a bad-digest record, a
	// record with an unknown mode, and a torn final line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(raw), `"verdict":"SAFE"`, `"verdict":"UNSAFE"`, 1)
	mangled += "not json at all\n"
	mangled += `{"digest":"zz","group":"zz","mode":"vbmc","k":1,"version":"v-test","verdict":"SAFE"}` + "\n"
	mangled += `{"digest":"` + strings.Repeat("ab", 32) + `","group":"` + strings.Repeat("cd", 32) + `","mode":"warp","k":1,"version":"v-test","verdict":"SAFE"}` + "\n"
	mangled += `{"digest":"` + strings.Repeat("ab", 32) + `","gro` // torn tail
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCache(t, Config{DiskPath: path})
	st := c2.Stats()
	if st.DiskLoaded != 0 {
		t.Fatalf("mangled store still installed %d entries: %+v", st.DiskLoaded, st)
	}
	if st.DiskCorrupt == 0 {
		t.Errorf("no corruption counted: %+v", st)
	}
	// The query misses and recomputes the true verdict — corruption can
	// cost time, never correctness.
	out, err := c2.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictSafe, States: 5}, &calls))
	if err != nil || out.Cached || out.Verdict != VerdictSafe {
		t.Errorf("after corruption: out=%+v err=%v", out, err)
	}
	if calls != 2 {
		t.Errorf("runner executed %d times, want 2", calls)
	}
}

// TestDiskStaleVersionSkipped reopens a store under a different
// toolchain version: every entry is stale and must not answer.
func TestDiskStaleVersionSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	req := Request{Prog: keyProg("mp", 1), Mode: ModeVBMC, K: 2}

	c1 := newTestCache(t, Config{DiskPath: path, Version: "build-1"})
	calls := 0
	if _, err := c1.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictSafe}, &calls)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCache(t, Config{DiskPath: path, Version: "build-2"})
	st := c2.Stats()
	if st.DiskLoaded != 0 || st.DiskStale != 1 {
		t.Fatalf("stale-version reload stats = %+v", st)
	}
	out, err := c2.Do(context.Background(), req, fakeRun(Outcome{Verdict: VerdictSafe}, &calls))
	if err != nil || out.Cached {
		t.Errorf("stale entry answered: out=%+v err=%v", out, err)
	}
	if calls != 2 {
		t.Errorf("runner executed %d times, want 2", calls)
	}
}

// TestDiskHeaderWrittenOnce checks a fresh store gets exactly one
// header line and reopening does not add another.
func TestDiskHeaderWrittenOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for i := 0; i < 2; i++ {
		c := newTestCache(t, Config{DiskPath: path})
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(raw), diskSchema); got != 1 {
		t.Errorf("store has %d header lines, want 1:\n%s", got, raw)
	}
}
