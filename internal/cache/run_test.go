package cache

import (
	"context"
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
	"ravbmc/internal/litmus"
)

// TestExecuteParityClassic runs every classic litmus shape through the
// dispatcher in vbmc, rak and ra mode and requires all three to agree
// with the direct oracle — the zero-verdict-difference guarantee the
// daemon inherits from Execute.
func TestExecuteParityClassic(t *testing.T) {
	for _, tc := range litmus.Classic() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			want := VerdictSafe
			if litmus.Oracle(tc) {
				want = VerdictUnsafe
			}
			for _, mode := range []string{ModeVBMC, ModeRAK, ModeRA} {
				k := 5 // K=5 decides the whole litmus corpus (paper Sec. 7)
				if mode == ModeRA {
					k = 0
				}
				out, err := Execute(context.Background(), Request{Prog: tc.Prog, Mode: mode, K: k}, ExecConfig{})
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if out.Verdict != want {
					t.Errorf("%s: verdict %s, oracle %s", mode, out.Verdict, want)
				}
				if out.Verdict == VerdictUnsafe {
					if !out.WitnessValidated {
						t.Errorf("%s: UNSAFE without a validated witness", mode)
					}
					if len(out.WitnessJSONL) == 0 {
						t.Errorf("%s: UNSAFE without an exported witness", mode)
					}
				}
				if out.Seconds < 0 {
					t.Errorf("%s: negative Seconds", mode)
				}
			}
		})
	}
}

// TestVerifySubsumptionSoundOnCorpus is the directionality property
// test against the real engine: seed the cache at one bound, query at
// another, and require every answer — cached, subsumed or fresh — to
// equal a direct core.Run at the queried bound.
func TestVerifySubsumptionSoundOnCorpus(t *testing.T) {
	stride := 41
	if testing.Short() {
		stride = 199
	}
	c := newTestCache(t, Config{})
	corpus := litmus.Generated(2)
	for i := 0; i < len(corpus); i += stride {
		tc := corpus[i]
		// Seed at K=3, then query K=1 (SAFE may subsume downward) and
		// K=5 (UNSAFE may subsume upward).
		if _, err := c.Verify(context.Background(), Request{Prog: tc.Prog, Mode: ModeVBMC, K: 3}, ExecConfig{}); err != nil {
			t.Fatalf("%s: seed: %v", tc.Name, err)
		}
		for _, k := range []int{1, 5} {
			out, err := c.Verify(context.Background(), Request{Prog: tc.Prog, Mode: ModeVBMC, K: k}, ExecConfig{})
			if err != nil {
				t.Fatalf("%s K=%d: %v", tc.Name, k, err)
			}
			res, err := core.Run(tc.Prog, core.Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d direct: %v", tc.Name, k, err)
			}
			if out.Verdict != res.Verdict.String() {
				t.Errorf("%s K=%d: cache says %s (subsumed=%v fromK=%d), direct run says %s",
					tc.Name, k, out.Verdict, out.Subsumed, out.SubsumedFromK, res.Verdict)
			}
		}
	}
	st := c.Stats()
	if st.SubsumedHits == 0 {
		t.Error("property test exercised no subsumption paths")
	}
	t.Logf("stats: %+v", st)
}

// TestExecuteStatelessAndPortfolio smoke-checks the remaining modes on
// one unsafe and one safe shape.
func TestExecuteStatelessAndPortfolio(t *testing.T) {
	var unsafe, safe *litmus.Test
	for i, tc := range litmus.Classic() {
		if tc.HasExpectation && tc.Unsafe && unsafe == nil {
			unsafe = &litmus.Classic()[i]
		}
		if tc.HasExpectation && !tc.Unsafe && safe == nil {
			safe = &litmus.Classic()[i]
		}
	}
	if unsafe == nil || safe == nil {
		t.Fatal("classic corpus lacks an expected-safe or expected-unsafe test")
	}
	for _, mode := range []string{ModeTracer, ModeCDSC, ModeRCMC, ModePortfolio} {
		out, err := Execute(context.Background(), Request{Prog: unsafe.Prog, Mode: mode, K: 5}, ExecConfig{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("%s unsafe: %v", mode, err)
		}
		if out.Verdict != VerdictUnsafe {
			t.Errorf("%s on %s: verdict %s, want UNSAFE", mode, unsafe.Name, out.Verdict)
		}
		out, err = Execute(context.Background(), Request{Prog: safe.Prog, Mode: mode, K: 5}, ExecConfig{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("%s safe: %v", mode, err)
		}
		if out.Verdict != VerdictSafe {
			t.Errorf("%s on %s: verdict %s, want SAFE", mode, safe.Name, out.Verdict)
		}
	}
}

// TestExecuteBenchmarkWithLoops checks the unroll plumbing on a real
// mutual-exclusion benchmark: both bounded modes must agree with a
// direct core.Run at the same bounds (peterson is in fact unsafe under
// RA without SC fences, so this also exercises the witness path).
func TestExecuteBenchmarkWithLoops(t *testing.T) {
	prog, err := benchmarks.ByName("peterson")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog.Clone(), core.Options{K: 2, Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Verdict.String()
	for _, mode := range []string{ModeVBMC, ModeRAK} {
		out, err := Execute(context.Background(), Request{Prog: prog, Mode: mode, K: 2, Unroll: 2}, ExecConfig{Timeout: 60 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if out.Verdict != want {
			t.Errorf("%s: peterson verdict %s, direct run says %s", mode, out.Verdict, want)
		}
	}
	// A loopy program without an unroll bound is a request error in the
	// RA modes, not a hang.
	if _, err := Execute(context.Background(), Request{Prog: prog, Mode: ModeRAK, K: 2}, ExecConfig{}); err == nil {
		t.Error("rak accepted a loopy program without an unroll bound")
	}
}

// TestExecuteHonorsContext cancels mid-run: the dispatcher must return
// promptly with an inconclusive outcome, not block.
func TestExecuteHonorsContext(t *testing.T) {
	prog, err := benchmarks.ByName("peterson")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan Outcome, 1)
	go func() {
		out, _ := Execute(ctx, Request{Prog: prog, Mode: ModeVBMC, K: 4, Unroll: 4}, ExecConfig{})
		done <- out
	}()
	select {
	case out := <-done:
		if out.Verdict == VerdictSafe || out.Verdict == VerdictUnsafe {
			t.Errorf("cancelled run still concluded: %+v", out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute ignored a cancelled context")
	}
}

func TestExecuteUnknownMode(t *testing.T) {
	if _, err := Execute(context.Background(), Request{Prog: keyProg("p", 1), Mode: "bogus"}, ExecConfig{}); err == nil {
		t.Error("no error for unknown mode")
	}
}
