package cache

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"ravbmc/internal/core"
	"ravbmc/internal/diff"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
	"ravbmc/internal/smc"
	"ravbmc/internal/trace"
)

// ExecConfig carries the resource parameters of one execution — the
// knobs that shape how a run spends time, never what it decides, and
// that therefore stay out of the cache key.
type ExecConfig struct {
	// Timeout caps the run's wall clock (0 = none); the surrounding
	// context's deadline applies as well.
	Timeout time.Duration
	// Jobs is the portfolio's pool width (<= 0 selects runtime.NumCPU);
	// the single-engine modes run serially inside their worker slot.
	Jobs int
	// SearchWorkers is the work-stealing pool width inside a single
	// search (core.Options.Workers / ra.Options.Workers): 0 keeps the
	// searches serial, n >= 1 runs each on an n-worker pool, negative
	// selects runtime.NumCPU. Verdict-neutral, so it stays out of the
	// cache key like every other ExecConfig knob.
	SearchWorkers int
	// Reduce turns on source-DPOR in the vbmc mode's SC backend
	// (core.Options.Reduce). Verdict-neutral — only representative
	// interleavings are pruned — so it stays out of the cache key.
	Reduce bool
	// TMAI enables the thread-modular pre-pass in the vbmc mode
	// (core.Options.TMAI). Any verdict it produces is correct for the
	// requested K (an unbounded proof answers every bound), so it too
	// stays out of the key; an unbounded SAFE it proves is stored with
	// Outcome.Unbounded and subsumes every later K.
	TMAI bool
	// Obs, when non-nil, instruments the run.
	Obs *obs.Recorder
}

// Verify answers the request through the cache, executing the engines
// on a miss: the memoizing entry point the daemon, the tables harness
// and the thin client share. On the nil cache it just executes.
func (c *Cache) Verify(ctx context.Context, req Request, x ExecConfig) (Outcome, error) {
	return c.Do(ctx, req, func(ctx context.Context, r Request) (Outcome, error) {
		return Execute(ctx, r, x)
	})
}

// Execute runs the engine the request's mode selects and converts its
// result to an Outcome. It does not consult any cache; use Verify for
// the memoized path. The program is cloned first: the engines label
// and unroll in place, and the caller's copy must stay pristine for
// key canonicalisation and reuse.
func Execute(ctx context.Context, req Request, x ExecConfig) (Outcome, error) {
	start := time.Now()
	span := x.Obs.StartPhase("engine")
	span.SetAttr("mode", req.Mode)
	span.SetAttrInt("k", int64(req.K))
	out, err := execute(ctx, req, x)
	span.End()
	out.Seconds = time.Since(start).Seconds()
	return out, err
}

func execute(ctx context.Context, req Request, x ExecConfig) (Outcome, error) {
	prog := req.Prog.Clone()
	switch req.Mode {
	case ModeVBMC:
		res, err := core.Run(prog, core.Options{
			K: req.K, Unroll: req.Unroll, MaxContexts: req.MaxContexts,
			MaxStates: req.MaxStates, Timeout: x.Timeout, Ctx: ctx,
			ExactDedup: req.ExactDedup, Workers: x.SearchWorkers,
			Reduce: x.Reduce, TMAI: x.TMAI, Obs: x.Obs,
		})
		if err != nil {
			return Outcome{}, err
		}
		out := Outcome{
			Verdict:          res.Verdict.String(),
			States:           res.States,
			Transitions:      int64(res.Transitions),
			TranslatedStmts:  res.TranslatedStmts,
			ContextBound:     res.ContextBound,
			WitnessValidated: res.WitnessValidated,
			Unbounded:        res.Unbounded,
		}
		if res.Verdict == core.Unsafe {
			engine, w := "replay", res.Witness
			if w == nil {
				engine, w = "sc", res.Trace
			}
			out.WitnessJSONL = encodeWitness(w, trace.Meta{
				Program: req.Prog.Name, Engine: engine, K: req.K,
				Validated: &res.WitnessValidated,
			})
			out.Detail = res.WitnessErr
		}
		return out, nil

	case ModeRAK, ModeRA:
		bound := -1
		if req.Mode == ModeRAK {
			bound = req.K
		}
		src := prog
		if lang.MaxLoopDepth(prog) > 0 {
			if req.Unroll <= 0 {
				return Outcome{}, fmt.Errorf("cache: program %q has loops; an unroll bound is required", req.Prog.Name)
			}
			src = lang.Unroll(prog, req.Unroll)
		}
		if err := src.ValidateRA(); err != nil {
			return Outcome{}, err
		}
		cp, err := lang.Compile(src)
		if err != nil {
			return Outcome{}, err
		}
		// Stamp the run's bounds into the live search telemetry (core.Run
		// does the same for VBMC, smc.Check for the stateless modes).
		unrollProbe := int64(-1)
		if req.Unroll > 0 {
			unrollProbe = int64(req.Unroll)
		}
		x.Obs.Search().SetProbe(int64(bound), unrollProbe)
		opts := ra.Options{
			ViewBound: bound, StopOnViolation: true, MaxStates: req.MaxStates,
			ExactDedup: req.ExactDedup, Workers: x.SearchWorkers, Ctx: ctx, Obs: x.Obs,
		}
		if x.Timeout > 0 {
			opts.Deadline = time.Now().Add(x.Timeout)
		}
		res := ra.NewSystem(cp).Explore(opts)
		out := Outcome{States: res.States, Transitions: int64(res.Transitions)}
		switch {
		case res.Violation:
			out.Verdict = VerdictUnsafe
			out.WitnessValidated = true // the RA explorer executes the semantics directly
			out.WitnessJSONL = encodeWitness(res.Trace, trace.Meta{
				Program: req.Prog.Name, Engine: "ra", K: bound,
				Validated: &out.WitnessValidated,
			})
		case res.Exhausted:
			out.Verdict = VerdictSafe
		default:
			out.Verdict = VerdictInconclusive
		}
		return out, nil

	case ModeTracer, ModeCDSC, ModeRCMC:
		alg := map[string]smc.Algorithm{
			ModeTracer: smc.AlgorithmTracer, ModeCDSC: smc.AlgorithmCDS, ModeRCMC: smc.AlgorithmRCMC,
		}[req.Mode]
		res, err := smc.Check(prog, smc.Options{
			Algorithm: alg, Unroll: req.Unroll,
			MaxTransitions: int64(req.MaxStates), // the stateless budget dimension
			Timeout:        x.Timeout, Ctx: ctx, Obs: x.Obs,
		})
		if err != nil {
			return Outcome{}, err
		}
		out := Outcome{Transitions: res.Transitions}
		switch {
		case res.Violation:
			out.Verdict = VerdictUnsafe
			out.WitnessValidated = true // stateless checkers execute RA directly
			out.WitnessJSONL = encodeWitness(res.Trace, trace.Meta{
				Program: req.Prog.Name, Engine: "smc",
				Validated: &out.WitnessValidated,
			})
		case res.Exhausted:
			out.Verdict = VerdictSafe
		default:
			out.Verdict = VerdictInconclusive
		}
		return out, nil

	case ModePortfolio:
		rep := diff.Run(prog, diff.Options{
			K: req.K, Unroll: req.Unroll, Timeout: x.Timeout,
			Jobs: x.Jobs, MaxStates: req.MaxStates, Ctx: ctx,
		})
		out := Outcome{Detail: rep.Render()}
		switch {
		case !rep.Agree():
			out.Verdict = VerdictDisagree
		case rep.Verdict() == diff.Unsafe:
			out.Verdict = VerdictUnsafe
			out.WitnessValidated = true // portfolio UNSAFE is validated by construction
		case rep.Verdict() == diff.Safe:
			out.Verdict = VerdictSafe
		default:
			out.Verdict = VerdictInconclusive
		}
		return out, nil
	}
	return Outcome{}, fmt.Errorf("cache: unknown mode %q", req.Mode)
}

// encodeWitness renders a witness trace as ravbmc.witness/v1 JSONL; a
// nil trace encodes to nil.
func encodeWitness(t *trace.Trace, meta trace.Meta) []byte {
	if t == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := t.WriteJSONL(&buf, meta); err != nil {
		// The JSONL encoder writes to a bytes.Buffer; it cannot fail.
		return nil
	}
	return buf.Bytes()
}
