package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"ravbmc/internal/lang"
)

// keySchema versions the key derivation itself; bump on any change to
// the byte layout below or to the canonical printer's contract, so
// entries written under an older derivation can never alias.
const keySchema = "ravbmc.cache/v1"

// Verification modes a cached entry can hold. The bounded pair (vbmc,
// rak) decides K-bounded reachability and participates in monotone-K
// subsumption; the rest are exact for the unrolled program (or, for
// portfolio, a cross-checked combination) and are only ever answered
// by exact key hits.
const (
	ModeVBMC      = "vbmc"      // translate-and-check pipeline (core.Run)
	ModeRAK       = "rak"       // RA explorer with ViewBound=K
	ModeRA        = "ra"        // exhaustive RA explorer
	ModeTracer    = "tracer"    // stateless baseline
	ModeCDSC      = "cdsc"      // stateless baseline
	ModeRCMC      = "rcmc"      // stateless baseline
	ModePortfolio = "portfolio" // differential portfolio (internal/diff)
)

// Modes lists every valid mode, in display order.
func Modes() []string {
	return []string{ModeVBMC, ModeRAK, ModeRA, ModeTracer, ModeCDSC, ModeRCMC, ModePortfolio}
}

// ValidMode reports whether m names a verification mode.
func ValidMode(m string) bool {
	switch m {
	case ModeVBMC, ModeRAK, ModeRA, ModeTracer, ModeCDSC, ModeRCMC, ModePortfolio:
		return true
	}
	return false
}

// subsumable reports whether the mode's verdicts are monotone in K:
// every behaviour with at most k view switches also has at most k+1,
// so SAFE at K'≥k answers k and a (validated) UNSAFE at K'≤k answers
// k. Only the two K-bounded deciders qualify.
func subsumable(mode string) bool { return mode == ModeVBMC || mode == ModeRAK }

// Request identifies one verification query: the program plus every
// parameter that can change the verdict. Parameters that only affect
// resource usage, not the decided problem (deadlines, pool widths,
// observability), are deliberately absent — they must not fragment the
// cache.
type Request struct {
	// Prog is the parsed source program. The cache keys on its
	// canonical form (lang.Canon), so surface variation — whitespace,
	// labels, names — does not fragment entries.
	Prog *lang.Program
	// Mode selects the engine (Mode* constants).
	Mode string
	// K is the view-switch budget (vbmc, rak, portfolio).
	K int
	// Unroll is the loop bound L; required for programs with loops.
	Unroll int
	// MaxContexts overrides the SC backend's context bound (vbmc only;
	// 0 = the paper's K+n default).
	MaxContexts int
	// MaxStates caps the stateful searches; for the stateless baselines
	// it caps transitions instead. A capped run that concludes anyway
	// is still exact, but the cap is part of the key: a SAFE under a
	// cap and a SAFE without one are the same verdict reached under
	// different ground rules, and subsumption must not mix them.
	MaxStates int
	// ExactDedup selects exact visited-set keys over fingerprints in
	// the stateful engines. Part of the key: fingerprint collisions are
	// the one (astronomically unlikely) way a stateful verdict can be
	// wrong, so collision-paranoid runs must not be answered from
	// fingerprinted entries.
	ExactDedup bool
}

// normalized zeroes the fields the mode ignores, so requests differing
// only in irrelevant parameters share an entry.
func (r Request) normalized() Request {
	switch r.Mode {
	case ModeRA, ModeTracer, ModeCDSC, ModeRCMC:
		r.K = 0
		r.MaxContexts = 0
	case ModeRAK:
		r.MaxContexts = 0
	case ModePortfolio:
		r.MaxContexts = 0
		r.ExactDedup = false
	}
	if r.Mode == ModeTracer || r.Mode == ModeCDSC || r.Mode == ModeRCMC {
		r.ExactDedup = false
	}
	return r
}

// Digest is a SHA-256 content address.
type Digest [sha256.Size]byte

// Hex returns the lowercase hex encoding.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// ParseDigest decodes a hex digest (disk-store records, the peer
// cache-fill endpoint's URL key).
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, err
	}
	if len(b) != len(d) {
		return d, fmt.Errorf("cache: digest is %d bytes, want %d", len(b), len(d))
	}
	copy(d[:], b)
	return d, nil
}

// Key returns the content address the request's entry is (or would
// be) stored under: SHA-256 over the canonicalized program, mode,
// mode-relevant bounds and toolchain version. Every node running the
// same binary derives the same digest for the same query, which makes
// it the cluster's routing key — consistent hashing over it gives each
// request exactly one owner shard. Works on the nil cache too (the
// disabled cache still has a well-defined key).
func (c *Cache) Key(r Request) Digest {
	nr := r.normalized()
	return digest(lang.Canon(nr.Prog), nr, c.Version(), false)
}

// groupK is the K placeholder in group keys: the group digest
// identifies the family {same program, mode, bounds, version} across
// all K, the domain over which monotone-K subsumption is sound.
const groupK = -1 << 20

// digest derives the content address of a (normalized) request under
// the given toolchain version. When group is true, K is replaced by
// the placeholder, yielding the subsumption-group address.
func digest(canon string, r Request, version string, group bool) Digest {
	h := sha256.New()
	var num [8]byte
	field := func(s string) {
		binary.LittleEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	n := func(v int64) {
		binary.LittleEndian.PutUint64(num[:], uint64(v))
		h.Write(num[:])
	}
	field(keySchema)
	field(version)
	field(r.Mode)
	k := int64(r.K)
	if group {
		k = groupK
	}
	n(k)
	n(int64(r.Unroll))
	n(int64(r.MaxContexts))
	n(int64(r.MaxStates))
	if r.ExactDedup {
		n(1)
	} else {
		n(0)
	}
	field(canon)
	var d Digest
	h.Sum(d[:0])
	return d
}
