package cache

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// The disk store is an append-only JSONL file: a header line
// identifying the schema, then one record per stored entry. Appends
// are atomic enough for the daemon's single-writer use (one process
// per store); loads are defensive against everything else — torn final
// lines after a kill, hand-edited garbage, records from an older
// binary — all of which are skipped and counted, so corruption can
// cost a recomputation but never produce a wrong verdict.

// diskSchema identifies the store encoding; bump on incompatible
// record changes.
const diskSchema = "ravbmc.cachestore/v1"

// record is the JSONL encoding of one entry (or, with Schema set, the
// header line).
type record struct {
	Schema           string  `json:"schema,omitempty"`
	Digest           string  `json:"digest,omitempty"`
	Group            string  `json:"group,omitempty"`
	Mode             string  `json:"mode,omitempty"`
	K                int     `json:"k,omitempty"`
	Version          string  `json:"version,omitempty"`
	Verdict          string  `json:"verdict,omitempty"`
	States           int     `json:"states,omitempty"`
	Transitions      int64   `json:"transitions,omitempty"`
	TranslatedStmts  int     `json:"translated_stmts,omitempty"`
	ContextBound     int     `json:"context_bound,omitempty"`
	Witness          string  `json:"witness_jsonl,omitempty"`
	WitnessValidated bool    `json:"witness_validated,omitempty"`
	Unbounded        bool    `json:"unbounded,omitempty"`
	Detail           string  `json:"detail,omitempty"`
	Seconds          float64 `json:"seconds,omitempty"`
	CreatedUnix      int64   `json:"created_unix,omitempty"`
}

// diskRecord encodes an entry for appending.
func diskRecord(e *entry, version string) record {
	return record{
		Digest:           e.digest.Hex(),
		Group:            e.group.Hex(),
		Mode:             e.mode,
		K:                e.k,
		Version:          version,
		Verdict:          e.out.Verdict,
		States:           e.out.States,
		Transitions:      e.out.Transitions,
		TranslatedStmts:  e.out.TranslatedStmts,
		ContextBound:     e.out.ContextBound,
		Witness:          string(e.out.WitnessJSONL),
		WitnessValidated: e.out.WitnessValidated,
		Unbounded:        e.out.Unbounded,
		Detail:           e.out.Detail,
		Seconds:          e.out.Seconds,
		CreatedUnix:      time.Now().Unix(),
	}
}

// diskStore is the append-only file handle.
type diskStore struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	path string
}

// openDisk opens (creating if absent) the store for load + append.
func openDisk(path string) (*diskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskStore{f: f, enc: json.NewEncoder(f), path: path}, nil
}

// maxRecordLine bounds one store line; witnesses are a few KB, so 32
// MiB is generous while still refusing to buffer a corrupt
// multi-gigabyte "line".
const maxRecordLine = 32 << 20

// loadDisk replays the store into the in-memory layer. Called from New
// before the cache is shared, so it may take c.mu freely per record.
func (c *Cache) loadDisk() {
	sc := bufio.NewScanner(c.disk.f)
	sc.Buffer(make([]byte, 64<<10), maxRecordLine)
	fresh := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		fresh = false
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			c.diskCorrupt.Add(1)
			continue
		}
		if rec.Schema != "" {
			if rec.Schema != diskSchema {
				c.diskCorrupt.Add(1)
			}
			continue // header line
		}
		c.installRecord(rec)
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (oversized line, I/O error) loses the
		// remainder of the store, not the cache's correctness.
		c.diskCorrupt.Add(1)
	}
	// Position at the end for appends; write the header on a brand-new
	// store.
	c.disk.f.Seek(0, io.SeekEnd)
	if fresh {
		c.disk.append(record{Schema: diskSchema, Version: c.version})
	}
}

// installRecord validates one loaded record and installs it in memory.
// Every rejection is a miss later, never a verdict.
func (c *Cache) installRecord(rec record) {
	if rec.Version != c.version {
		c.diskStale.Add(1)
		return
	}
	if !ValidMode(rec.Mode) {
		c.diskCorrupt.Add(1)
		return
	}
	// Only the two trustworthy conclusions are ever valid on disk; an
	// UNSAFE without a validated witness (or any other verdict) in the
	// file is corruption, not data.
	out := Outcome{
		Verdict:          rec.Verdict,
		States:           rec.States,
		Transitions:      rec.Transitions,
		TranslatedStmts:  rec.TranslatedStmts,
		ContextBound:     rec.ContextBound,
		WitnessJSONL:     []byte(rec.Witness),
		WitnessValidated: rec.WitnessValidated,
		Unbounded:        rec.Unbounded,
		Detail:           rec.Detail,
		Seconds:          rec.Seconds,
	}
	if !cacheable(out) {
		c.diskCorrupt.Add(1)
		return
	}
	d, err := ParseDigest(rec.Digest)
	if err != nil {
		c.diskCorrupt.Add(1)
		return
	}
	g, err := ParseDigest(rec.Group)
	if err != nil {
		c.diskCorrupt.Add(1)
		return
	}
	c.mu.Lock()
	if _, ok := c.entries[d]; !ok {
		// Install without re-appending: storeLocked would write the
		// record back to the file it just came from.
		e := &entry{digest: d, group: g, mode: rec.Mode, k: rec.K, out: out, bytes: entryBytes(out)}
		e.elem = c.lru.PushFront(e)
		c.entries[d] = e
		c.used += e.bytes
		if subsumable(rec.Mode) {
			gr := c.groups[g]
			if gr == nil {
				gr = &group{safe: map[int]Digest{}, unsafe: map[int]Digest{}}
				c.groups[g] = gr
			}
			gr.index(rec.K, d, out)
		}
		c.evictLocked()
		c.diskLoaded.Add(1)
	}
	c.mu.Unlock()
}

// append writes one record; errors are swallowed (a full disk degrades
// the store to memory-only, it does not fail verifications).
func (d *diskStore) append(rec record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = d.enc.Encode(rec)
}

// close syncs and closes the file.
func (d *diskStore) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
