package cache

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
)

// tmaiProg is a shape the thread-modular analyser proves: the assert
// is purely value-based, so interference abstraction suffices.
func tmaiProg() *lang.Program {
	return &lang.Program{
		Name: "coherence-values",
		Vars: []string{"x"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{lang.Write{Var: "x", Val: lang.C(1)}}},
			{Name: "P1", Body: []lang.Stmt{lang.Write{Var: "x", Val: lang.C(2)}}},
			{Name: "P2", Regs: []string{"r"}, Body: []lang.Stmt{
				lang.Read{Reg: "r", Var: "x"},
				lang.Assert{Cond: lang.Le(lang.R("r"), lang.C(2))},
			}},
		},
	}
}

// TestUnboundedSafeAnswersEveryK: an unbounded-SAFE entry answers a
// query at any K — smaller, larger, or far beyond anything computed —
// where a plain SAFE@K' only answers K ≤ K'.
func TestUnboundedSafeAnswersEveryK(t *testing.T) {
	c := newTestCache(t, Config{})
	prog := keyProg("u", 1)
	calls := 0
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 3},
		fakeRun(Outcome{Verdict: VerdictSafe, Unbounded: true}, &calls)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7, 100} {
		out, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: k},
			func(ctx context.Context, r Request) (Outcome, error) {
				t.Fatalf("K=%d missed despite an unbounded entry", k)
				return Outcome{}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict != VerdictSafe || !out.Unbounded || !out.Cached {
			t.Errorf("K=%d: %+v", k, out)
		}
		if k != 3 && (!out.Subsumed || out.SubsumedFromK != 3) {
			t.Errorf("K=%d: expected subsumption from K=3, got %+v", k, out)
		}
	}
}

// TestUnboundedFlagOnUnsafeIsNeverATier: only a SAFE enters the
// unbounded tier. A (hypothetically corrupt) UNSAFE outcome carrying
// the flag must stay in the K-indexed tier and keep the asymmetric
// rule: validated UNSAFE@K' never answers a smaller K.
func TestUnboundedFlagOnUnsafeIsNeverATier(t *testing.T) {
	c := newTestCache(t, Config{})
	prog := keyProg("u", 2)
	calls := 0
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 3},
		fakeRun(Outcome{Verdict: VerdictUnsafe, WitnessValidated: true, Unbounded: true}, &calls)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 1},
		fakeRun(Outcome{Verdict: VerdictInconclusive}, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("UNSAFE@3 answered K=1 (%d calls, want 2)", calls)
	}
}

// TestUnboundedEvictionPrunesTier: evicting the unbounded entry must
// clear the tier, not leave a dangling digest that later reads as a
// phantom hit.
func TestUnboundedEvictionPrunesTier(t *testing.T) {
	payload := strings.Repeat("w", 1024)
	c := newTestCache(t, Config{MaxBytes: 3 * (entryOverhead + 1024)})
	prog := keyProg("u", 3)
	calls := 0
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 2},
		fakeRun(Outcome{Verdict: VerdictSafe, Unbounded: true, Detail: payload}, &calls)); err != nil {
		t.Fatal(err)
	}
	// Flood with other groups until the unbounded entry is evicted.
	for i := 10; i < 16; i++ {
		if _, err := c.Do(context.Background(), Request{Prog: keyProg("f", i), Mode: ModeVBMC, K: 2},
			fakeRun(Outcome{Verdict: VerdictSafe, Detail: payload}, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("flood did not evict anything; budget miscalibrated")
	}
	missed := false
	if _, err := c.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 9},
		func(ctx context.Context, r Request) (Outcome, error) {
			missed = true
			return Outcome{Verdict: VerdictInconclusive}, nil
		}); err != nil {
		t.Fatal(err)
	}
	if !missed {
		t.Error("evicted unbounded entry still answered a query")
	}
}

// TestUnboundedDiskRoundTrip: the tier survives a restart under the
// same toolchain version, and a version bump makes the persisted entry
// stale — it must not be resurrected into the new build's tier.
func TestUnboundedDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	prog := keyProg("u", 4)
	calls := 0

	c1 := newTestCache(t, Config{DiskPath: path, Version: "vA"})
	if _, err := c1.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 2},
		fakeRun(Outcome{Verdict: VerdictSafe, Unbounded: true}, &calls)); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Same version: a K never computed is answered from the tier.
	c2 := newTestCache(t, Config{DiskPath: path, Version: "vA"})
	out, err := c2.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 11},
		func(ctx context.Context, r Request) (Outcome, error) {
			t.Fatal("reloaded unbounded entry did not answer")
			return Outcome{}, nil
		})
	if err != nil || !out.Unbounded || !out.Subsumed {
		t.Fatalf("reloaded answer: %+v err=%v", out, err)
	}
	c2.Close()

	// New version: the old proof is about the old engine; it must load
	// as stale, and the query must re-execute.
	c3 := newTestCache(t, Config{DiskPath: path, Version: "vB"})
	missed := false
	if _, err := c3.Do(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 11},
		func(ctx context.Context, r Request) (Outcome, error) {
			missed = true
			return Outcome{Verdict: VerdictInconclusive}, nil
		}); err != nil {
		t.Fatal(err)
	}
	if !missed {
		t.Error("stale-version unbounded entry was resurrected")
	}
	if c3.Stats().DiskStale == 0 {
		t.Error("old-version record not counted as stale")
	}
}

// TestVerifyUnboundedEndToEnd runs the real pipeline: the TMAI
// pre-pass proves the program once, and the cache then answers a K it
// never directly computed — cross-checked against a direct core.Run at
// that K, the same discipline as the subsumption property test.
func TestVerifyUnboundedEndToEnd(t *testing.T) {
	c := newTestCache(t, Config{})
	prog := tmaiProg()
	x := ExecConfig{TMAI: true}
	first, err := c.Verify(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 2}, x)
	if err != nil {
		t.Fatal(err)
	}
	if first.Verdict != VerdictSafe || !first.Unbounded || first.Cached {
		t.Fatalf("seed run: %+v", first)
	}
	out, err := c.Verify(context.Background(), Request{Prog: prog, Mode: ModeVBMC, K: 9}, x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached || !out.Subsumed || !out.Unbounded || out.Verdict != VerdictSafe {
		t.Fatalf("K=9 not answered by the unbounded tier: %+v", out)
	}
	res, err := core.Run(prog.Clone(), core.Options{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.String() != out.Verdict {
		t.Errorf("cache says %s at K=9, direct run says %s", out.Verdict, res.Verdict)
	}
	if st := c.Stats(); st.Misses != 1 || st.SubsumedHits != 1 {
		t.Errorf("stats: %+v", st)
	}
}
