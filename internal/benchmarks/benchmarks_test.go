package benchmarks

import (
	"strings"
	"testing"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/sc"
)

// scVerdict checks the program directly under SC (fences are no-ops).
func scVerdict(t *testing.T, p *lang.Program, unroll int) bool {
	t.Helper()
	src := p
	if lang.MaxLoopDepth(p) > 0 {
		src = lang.Unroll(p, unroll)
	}
	res := sc.NewSystem(lang.MustCompile(src)).Check(sc.Options{})
	if !res.Violation && !res.Exhausted {
		t.Fatalf("%s: SC check not exhaustive", p.Name)
	}
	return res.Violation
}

// vbmcVerdict runs the full VBMC pipeline.
func vbmcVerdict(t *testing.T, p *lang.Program, k, l int) core.Verdict {
	t.Helper()
	res, err := core.Run(p, core.Options{K: k, Unroll: l})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	if res.Verdict == core.Inconclusive {
		t.Fatalf("%s: inconclusive", p.Name)
	}
	return res.Verdict
}

func TestAllGeneratorsValidate(t *testing.T) {
	names := []string{
		"peterson_0", "peterson_0(3)", "peterson_1(4)", "peterson_2(3)",
		"peterson_3(3)", "peterson_4(2)",
		"szymanski_0", "szymanski_1(3)", "szymanski_2(3)", "szymanski_4(2)",
		"dekker", "dekker_4", "sim_dekker", "sim_dekker_4",
		"burns", "burns_2(3)", "burns_3(3)", "burns_4(3)",
		"bakery", "bakery_4(3)",
		"lamport", "lamport_2(3)", "lamport_4(2)",
		"tbar", "tbar(3)", "tbar_4(3)",
	}
	for _, name := range names {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.ValidateRA(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !strings.Contains(p.Name, "(") {
			t.Errorf("%s: program name %q should carry the thread count", name, p.Name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, name := range []string{"nosuch", "peterson_9", "dekker(3)", "sim_dekker(4)", "peterson(1)", ""} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) should fail", name)
		}
	}
}

// TestUnfencedSafeUnderSC: the _0 versions are correct under SC — their
// bugs are pure weak-memory bugs.
func TestUnfencedSafeUnderSC(t *testing.T) {
	for _, name := range []string{"peterson_0", "sim_dekker", "dekker", "burns", "szymanski_0"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if scVerdict(t, p, 2) {
			t.Errorf("%s must be safe under SC", name)
		}
	}
}

// TestUnfencedUnsafeUnderRA: VBMC finds the weak-memory bug in every
// unfenced protocol with K=2, L=2 (paper Table 1). The slower protocols
// run only without -short.
func TestUnfencedUnsafeUnderRA(t *testing.T) {
	names := []string{"peterson_0", "sim_dekker", "dekker"}
	if !testing.Short() {
		names = append(names, "burns", "szymanski_0")
	}
	for _, name := range names {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if v := vbmcVerdict(t, p, 2, 2); v != core.Unsafe {
			t.Errorf("%s must be UNSAFE under RA with K=2, got %v", name, v)
		}
	}
}

// TestBuggyFencedUnsafeUnderSC: the _2/_3 one-line bugs break the
// protocols even under SC.
func TestBuggyFencedUnsafeUnderSC(t *testing.T) {
	for _, name := range []string{
		"peterson_2", "peterson_3", "szymanski_2", "szymanski_3",
		"burns_2", "burns_3", "bakery_2", "bakery_3", "lamport_2", "lamport_3",
		"tbar_2", "tbar_3",
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !scVerdict(t, p, 2) {
			t.Errorf("%s must be unsafe under SC (logic bug)", name)
		}
	}
}

// TestBuggyFencedUnsafeUnderVBMC: VBMC with K=2, L=2 finds the bugs in
// the fenced+bug versions (paper Tables 3-5).
func TestBuggyFencedUnsafeUnderVBMC(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full VBMC runs")
	}
	for _, name := range []string{"peterson_2", "peterson_3", "szymanski_2", "szymanski_3"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if v := vbmcVerdict(t, p, 2, 2); v != core.Unsafe {
			t.Errorf("%s must be UNSAFE under VBMC K=2, got %v", name, v)
		}
	}
}

// TestFencedSafeUnderVBMC: the fully fenced versions are SAFE for K=2,
// L=1 (paper Table 6). Only the protocols whose bounded state space the
// explicit backend exhausts in seconds are asserted here; the larger
// fenced programs (bakery_4, lamport_4) appear in the tables with T.O,
// as recorded in EXPERIMENTS.md.
func TestFencedSafeUnderVBMC(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full VBMC runs")
	}
	for _, name := range []string{"peterson_4", "sim_dekker_4", "tbar_4"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if v := vbmcVerdict(t, p, 2, 1); v != core.Safe {
			t.Errorf("%s must be SAFE under VBMC K=2 L=1, got %v", name, v)
		}
	}
}

func TestTBarSafeUnderSC(t *testing.T) {
	for _, name := range []string{"tbar", "tbar(3)"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if scVerdict(t, p, 2) {
			t.Errorf("%s must be safe under SC", name)
		}
	}
}
