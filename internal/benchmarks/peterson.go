package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Peterson builds the N-thread Peterson protocol as a tournament of
// classic two-thread Peterson locks: threads are leaves of a binary
// tree (padded to a power of two with phantom opponents that never
// compete), and a thread acquires the locks on the path from its leaf
// to the root before entering the critical section, releasing them in
// reverse order on exit. For n=2 this is exactly the classic two-thread
// Peterson algorithm.
//
// Each tree node v carries flag_v_0, flag_v_1 and turn_v. The entry
// protocol on node v from side s is
//
//	flag_v_s = 1; turn_v = 1-s
//	wait until flag_v_(1-s) == 0 || turn_v == s
//
// In the fenced versions a thread's turn update is strengthened to an
// atomic exchange (a CAS with a guessed expected value): RMWs on turn
// are totally ordered and merge views both ways, which is the placement
// known to restore Peterson's correctness under RA (Lahav et al.,
// "Taming release-acquire consistency"). It also keeps the fenced-bug
// counterexamples within a small view-switch budget, since only the two
// finalists need to synchronise.
//
// The one-line bug (versions _2/_3) makes the buggy thread skip the
// wait at its root-node lock. Under the bounded analyses this keeps the
// counterexample local to the two finalists: the other threads can
// simply stay parked, so the view-switch budget needed to expose the
// bug does not grow with N.
func Peterson(n int, ver Version) *lang.Program {
	g := newGen("peterson", n, ver)
	depth := 0
	for 1<<depth < n {
		depth++
	}
	// Declare variables for every node with at least one real thread on
	// each side-path; phantom-only nodes are never touched but a simple
	// over-approximation (declare all nodes) keeps the code direct.
	for d := 1; d <= depth; d++ {
		for v := 0; v < 1<<(depth-d); v++ {
			g.prog.AddVar(nodeVar("flag", d, v, 0))
			g.prog.AddVar(nodeVar("flag", d, v, 1))
			g.prog.AddVar(nodeVar("turn", d, v))
		}
	}
	for i := 0; i < n; i++ {
		g.petersonThread(i, depth)
	}
	return g.prog
}

// nodeVar names a tournament variable: d is the round (1 = leaf level),
// v the node index within the round.
func nodeVar(kind string, d, v int, side ...int) string {
	if len(side) > 0 {
		return fmt.Sprintf("%s_%d_%d_%d", kind, d, v, side[0])
	}
	return fmt.Sprintf("%s_%d_%d", kind, d, v)
}

func (g *gen) petersonThread(i, depth int) {
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "fo", "tn", "tg")
	// Acquire from leaf to root.
	for d := 1; d <= depth; d++ {
		node := i >> d
		side := (i >> (d - 1)) & 1
		myFlag := nodeVar("flag", d, node, side)
		otherFlag := nodeVar("flag", d, node, 1-side)
		turn := nodeVar("turn", d, node)

		pr.Add(lang.WriteC(myFlag, 1))
		if g.fenced(i) {
			// Atomic exchange: guess the current value, CAS it to 1-s.
			pr.Add(
				lang.NondetS("tg", 0, 1),
				lang.CASS(turn, lang.R("tg"), lang.C(lang.Value(1-side))),
			)
		} else {
			pr.Add(lang.WriteC(turn, lang.Value(1-side)))
		}
		// wait until otherFlag == 0 || turn == side. The buggy thread
		// skips the wait at the root.
		skip := g.buggy(i) && d == depth
		round := []lang.Stmt{
			lang.ReadS("fo", otherFlag),
			lang.ReadS("tn", turn),
		}
		exit := lang.Or(
			lang.Eq(lang.R("fo"), lang.C(0)),
			lang.Eq(lang.R("tn"), lang.C(lang.Value(side))),
		)
		g.spinPlain(pr, skip, round, exit)
	}
	g.critical(pr, i)
	// Release from root to leaf.
	for d := depth; d >= 1; d-- {
		node := i >> d
		side := (i >> (d - 1)) & 1
		pr.Add(lang.WriteC(nodeVar("flag", d, node, side), 0))
	}
	pr.Add(lang.TermS())
}
