package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Lamport builds Lamport's fast mutual-exclusion algorithm (the
// "splitter"-based fast mutex) for n threads with ids 1..n. Shared
// variables: x, y and a flag b_i per thread.
func Lamport(n int, ver Version) *lang.Program {
	g := newGen("lamport", n, ver)
	g.prog.AddVar("x")
	g.prog.AddVar("y")
	for i := 0; i < n; i++ {
		g.prog.AddVar(fmt.Sprintf("b%d", i))
	}
	for i := 0; i < n; i++ {
		g.lamportThread(i)
	}
	return g.prog
}

func (g *gen) lamportThread(i int) {
	id := lang.Value(i + 1)
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "ry", "rx", "bv", "done")
	b := func(k int) string { return fmt.Sprintf("b%d", k) }

	// Retry loop implementing the goto-based original:
	//
	//	start: b_i = 1; x = id
	//	       if y != 0 { b_i = 0; await y == 0; retry }
	//	       y = id
	//	       if x != id {
	//	           b_i = 0; for all j: await b_j == 0
	//	           if y != id { await y == 0; retry }
	//	       }
	//	       CS
	//	       y = 0; b_i = 0
	var attempt []lang.Stmt
	attempt = append(attempt, lang.WriteC(b(i), 1))
	if g.fenced(i) {
		attempt = append(attempt, lang.FenceS())
	}
	attempt = append(attempt, lang.WriteS("x", lang.C(id)))
	if g.fenced(i) {
		attempt = append(attempt, lang.FenceS())
	}
	attempt = append(attempt, lang.ReadS("ry", "y"))

	// Fast-path failure: y busy.
	busy := []lang.Stmt{lang.WriteC(b(i), 0)}
	if g.fenced(i) {
		busy = append(busy, lang.FenceS())
	}
	awaitY0 := []lang.Stmt{lang.ReadS("ry", "y")}
	if g.fenced(i) {
		awaitY0 = append([]lang.Stmt{lang.FenceS()}, awaitY0...)
	}
	busy = append(busy, lang.WhileS(lang.Ne(lang.R("ry"), lang.C(0)), awaitY0...))

	// Slow path when the splitter was contended.
	slow := []lang.Stmt{lang.WriteC(b(i), 0)}
	if g.fenced(i) {
		slow = append(slow, lang.FenceS())
	}
	for j := 0; j < g.n; j++ {
		if j == i {
			continue
		}
		awaitB := []lang.Stmt{lang.ReadS("bv", b(j))}
		if g.fenced(i) {
			awaitB = append([]lang.Stmt{lang.FenceS()}, awaitB...)
		}
		slow = append(slow,
			lang.ReadS("bv", b(j)),
			lang.WhileS(lang.Eq(lang.R("bv"), lang.C(1)), awaitB...),
		)
	}
	slow = append(slow, lang.ReadS("ry", "y"))
	slowRetry := append([]lang.Stmt{}, lang.WhileS(lang.Ne(lang.R("ry"), lang.C(0)), awaitY0...))
	slow = append(slow,
		lang.IfElseS(lang.Ne(lang.R("ry"), lang.C(id)),
			slowRetry, // y stolen: wait and retry
			[]lang.Stmt{lang.AssignS("done", lang.C(1))},
		),
	)

	enter := []lang.Stmt{lang.WriteS("y", lang.C(id))}
	if g.fenced(i) {
		enter = append(enter, lang.FenceS())
	}
	enter = append(enter, lang.ReadS("rx", "x"))
	if g.buggy(i) {
		// One-line change: pretend the splitter is uncontended.
		enter = append(enter, lang.AssignS("rx", lang.C(id)))
	}
	enter = append(enter,
		lang.IfElseS(lang.Ne(lang.R("rx"), lang.C(id)),
			slow,
			[]lang.Stmt{lang.AssignS("done", lang.C(1))},
		),
	)

	attempt = append(attempt,
		lang.IfElseS(lang.Ne(lang.R("ry"), lang.C(0)), busy, enter),
	)

	pr.Add(
		lang.AssignS("done", lang.C(0)),
		lang.WhileS(lang.Eq(lang.R("done"), lang.C(0)), attempt...),
	)

	g.critical(pr, i)
	g.write(pr, i, "y", 0)
	g.write(pr, i, b(i), 0)
	pr.Add(lang.TermS())
}
