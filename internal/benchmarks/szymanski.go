package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Szymanski builds Szymanski's N-thread mutual-exclusion algorithm.
// Each thread publishes a phase in flag_i ∈ {0..4}:
//
//	0 idle, 1 intent, 2 waiting for the door, 3 in the doorway,
//	4 through the door.
func Szymanski(n int, ver Version) *lang.Program {
	g := newGen("szymanski", n, ver)
	for i := 0; i < n; i++ {
		g.prog.AddVar(fmt.Sprintf("flag%d", i))
	}
	for i := 0; i < n; i++ {
		g.szymanskiThread(i)
	}
	return g.prog
}

func (g *gen) szymanskiThread(i int) {
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "ok", "fv", "any")
	flag := func(k int) string { return fmt.Sprintf("flag%d", k) }

	// flag_i = 1: declare intent.
	g.write(pr, i, flag(i), 1)

	// Wait until all other flags < 3.
	g.spinUntil(pr, i, false, g.allFlagsRound(i, func(k int) lang.Expr {
		return lang.Ge(lang.R("fv"), lang.C(3))
	}), lang.Eq(lang.R("ok"), lang.C(1)))

	// flag_i = 3: enter the doorway.
	g.write(pr, i, flag(i), 3)

	// If another thread still shows intent (flag == 1), step back to 2
	// and wait for somebody through the door (flag == 4).
	round := []lang.Stmt{lang.AssignS("any", lang.C(0))}
	for k := 0; k < g.n; k++ {
		if k == i {
			continue
		}
		round = append(round,
			lang.ReadS("fv", flag(k)),
			lang.IfS(lang.Eq(lang.R("fv"), lang.C(1)), lang.AssignS("any", lang.C(1))),
		)
	}
	pr.Add(round...)
	waitFor4 := []lang.Stmt{lang.AssignS("any", lang.C(0))}
	for k := 0; k < g.n; k++ {
		if k == i {
			continue
		}
		waitFor4 = append(waitFor4,
			lang.ReadS("fv", flag(k)),
			lang.IfS(lang.Eq(lang.R("fv"), lang.C(4)), lang.AssignS("any", lang.C(1))),
		)
	}
	stepBack := []lang.Stmt{lang.WriteC(flag(i), 2)}
	if g.fenced(i) {
		stepBack = append(stepBack, lang.FenceS())
	}
	// spin until any == 1 (somebody reached 4)
	stepBack = append(stepBack,
		lang.AssignS("spin", lang.C(1)),
		lang.WhileS(lang.Eq(lang.R("spin"), lang.C(1)),
			append(append([]lang.Stmt{}, waitFor4...),
				lang.IfS(lang.Eq(lang.R("any"), lang.C(1)), lang.AssignS("spin", lang.C(0))))...),
	)
	pr.AddReg("spin")
	pr.Add(lang.IfS(lang.Eq(lang.R("any"), lang.C(1)), stepBack...))

	// flag_i = 4: through the door. The buggy thread's one-line change
	// writes 0 instead, hiding it from every other thread's gates (the
	// skip-a-gate bug would be vacuous for thread 0, whose own gate
	// ranges over lower ids only).
	doorVal := lang.Value(4)
	if g.buggy(i) {
		doorVal = 0
	}
	g.write(pr, i, flag(i), doorVal)

	// Wait until all lower-id threads are out of the doorway (flag < 2).
	gate := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
	for k := 0; k < i; k++ {
		gate = append(gate,
			lang.ReadS("fv", flag(k)),
			lang.IfS(lang.Ge(lang.R("fv"), lang.C(2)), lang.AssignS("ok", lang.C(0))),
		)
	}
	g.spinUntil(pr, i, false, gate, lang.Eq(lang.R("ok"), lang.C(1)))

	g.critical(pr, i)

	// Exit: wait until all higher-id threads are not in {2,3}, then
	// reset the flag.
	exitGate := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
	for k := i + 1; k < g.n; k++ {
		exitGate = append(exitGate,
			lang.ReadS("fv", flag(k)),
			lang.IfS(lang.And(lang.Ge(lang.R("fv"), lang.C(2)), lang.Le(lang.R("fv"), lang.C(3))),
				lang.AssignS("ok", lang.C(0))),
		)
	}
	g.spinUntil(pr, i, false, exitGate, lang.Eq(lang.R("ok"), lang.C(1)))
	g.write(pr, i, flag(i), 0)
	pr.Add(lang.TermS())
}

// allFlagsRound builds one read round over all other threads' flags,
// clearing $ok when bad(k) holds for the freshly read value in $fv.
func (g *gen) allFlagsRound(i int, bad func(k int) lang.Expr) []lang.Stmt {
	round := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
	for k := 0; k < g.n; k++ {
		if k == i {
			continue
		}
		round = append(round,
			lang.ReadS("fv", fmt.Sprintf("flag%d", k)),
			lang.IfS(bad(k), lang.AssignS("ok", lang.C(0))),
		)
	}
	return round
}
