package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Burns builds Burns' n-thread mutual-exclusion algorithm: a thread
// raises its flag, restarts if any lower-id thread also shows a flag,
// then waits for every higher-id flag to drop.
func Burns(n int, ver Version) *lang.Program {
	g := newGen("burns", n, ver)
	for i := 0; i < n; i++ {
		g.prog.AddVar(fmt.Sprintf("flag%d", i))
	}
	for i := 0; i < n; i++ {
		g.burnsThread(i)
	}
	return g.prog
}

func (g *gen) burnsThread(i int) {
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "ok", "fv", "again")
	flag := func(k int) string { return fmt.Sprintf("flag%d", k) }

	// Restart loop: flag_i = 0; if no lower flag is up, flag_i = 1 and
	// re-check; leave once both checks pass.
	lowCheck := func() []lang.Stmt {
		out := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
		for k := 0; k < i; k++ {
			out = append(out,
				lang.ReadS("fv", flag(k)),
				lang.IfS(lang.Eq(lang.R("fv"), lang.C(1)), lang.AssignS("ok", lang.C(0))),
			)
		}
		return out
	}

	var body []lang.Stmt
	body = append(body, lang.WriteC(flag(i), 0))
	if g.fenced(i) {
		body = append(body, lang.FenceS())
	}
	body = append(body, lowCheck()...)
	raise := []lang.Stmt{lang.WriteC(flag(i), 1)}
	if g.fenced(i) {
		raise = append(raise, lang.FenceS())
	}
	raise = append(raise, lowCheck()...)
	raise = append(raise,
		lang.IfS(lang.Eq(lang.R("ok"), lang.C(1)), lang.AssignS("again", lang.C(0))),
	)
	body = append(body, lang.IfS(lang.Eq(lang.R("ok"), lang.C(1)), raise...))

	// The buggy thread's one-line change skips the whole restart loop
	// when it is the last thread (whose higher-id gate below is empty);
	// otherwise it skips the higher-id gate.
	againInit := lang.Value(1)
	if g.buggy(i) && i == g.n-1 {
		againInit = 0
	}
	pr.Add(
		lang.AssignS("again", lang.C(againInit)),
		lang.WhileS(lang.Eq(lang.R("again"), lang.C(1)), body...),
	)

	// Wait for all higher-id flags to drop.
	skip := g.buggy(i) && i < g.n-1
	gate := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
	for k := i + 1; k < g.n; k++ {
		gate = append(gate,
			lang.ReadS("fv", flag(k)),
			lang.IfS(lang.Eq(lang.R("fv"), lang.C(1)), lang.AssignS("ok", lang.C(0))),
		)
	}
	g.spinUntil(pr, i, skip, gate, lang.Eq(lang.R("ok"), lang.C(1)))

	g.critical(pr, i)
	g.write(pr, i, flag(i), 0)
	pr.Add(lang.TermS())
}
