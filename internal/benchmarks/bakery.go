package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Bakery builds Lamport's bakery algorithm for n threads, each entering
// the critical section once (ticket values are therefore bounded).
// Shared variables: entering_i and number_i per thread.
func Bakery(n int, ver Version) *lang.Program {
	g := newGen("bakery", n, ver)
	for i := 0; i < n; i++ {
		g.prog.AddVar(fmt.Sprintf("entering%d", i))
		g.prog.AddVar(fmt.Sprintf("number%d", i))
	}
	for i := 0; i < n; i++ {
		g.bakeryThread(i)
	}
	return g.prog
}

func (g *gen) bakeryThread(i int) {
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "max", "t", "nj", "ej", "mine")
	num := func(k int) string { return fmt.Sprintf("number%d", k) }
	ent := func(k int) string { return fmt.Sprintf("entering%d", k) }

	// Doorway: entering_i = 1; number_i = 1 + max(number_*);
	// entering_i = 0.
	g.write(pr, i, ent(i), 1)
	pr.Add(lang.AssignS("max", lang.C(0)))
	for k := 0; k < g.n; k++ {
		pr.Add(
			lang.ReadS("t", num(k)),
			lang.IfS(lang.Gt(lang.R("t"), lang.R("max")), lang.AssignS("max", lang.R("t"))),
		)
	}
	pr.Add(lang.AssignS("mine", lang.Add(lang.R("max"), lang.C(1))))
	pr.Add(lang.WriteS(num(i), lang.R("mine")))
	g.f(pr, i)
	g.write(pr, i, ent(i), 0)

	// For each other thread: wait until it is not choosing and its
	// ticket does not precede ours. The buggy thread skips the last
	// ticket gate.
	for k := 0; k < g.n; k++ {
		if k == i {
			continue
		}
		// await entering_k == 0
		g.spinUntil(pr, i, false,
			[]lang.Stmt{lang.ReadS("ej", ent(k))},
			lang.Eq(lang.R("ej"), lang.C(0)))
		// await number_k == 0 || (number_k, k) > (number_i, i)
		skip := g.buggy(i) && k == lastOther(i, g.n)
		cond := lang.Or(
			lang.Eq(lang.R("nj"), lang.C(0)),
			lang.Or(
				lang.Gt(lang.R("nj"), lang.R("mine")),
				lang.And(lang.Eq(lang.R("nj"), lang.R("mine")), lang.C(truthVal(k > i))),
			),
		)
		g.spinUntil(pr, i, skip,
			[]lang.Stmt{lang.ReadS("nj", num(k))},
			cond)
	}

	g.critical(pr, i)
	g.write(pr, i, num(i), 0)
	pr.Add(lang.TermS())
}

// lastOther returns the largest thread id different from i.
func lastOther(i, n int) int {
	if i == n-1 {
		return n - 2
	}
	return n - 1
}

func truthVal(b bool) lang.Value {
	if b {
		return 1
	}
	return 0
}
