package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// TBar builds the thread-barrier benchmark: every thread atomically
// increments a shared counter with CAS and then spins until the counter
// reaches n; after the barrier each thread asserts the counter equals n.
// The property holds under RA (the counter never exceeds n and, once a
// thread has observed n, coherence pins every later read of the counter
// to n), so tbar appears only in the SAFE tables of the paper.
//
// The buggy versions (one-line change) skip the barrier wait in one
// thread, which makes the assertion fail even under SC.
func TBar(n int, ver Version) *lang.Program {
	g := newGen("tbar", n, ver)
	g.prog.AddVar("count")
	for i := 0; i < n; i++ {
		pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "c", "v")
		// CAS-increment, exactly once per thread: read the counter and
		// swing it up by one. The blocking CAS waits until a message
		// with the read value and a free successor slot is available;
		// executions where another thread claimed the slot first park
		// here, and the serialised executions go through.
		pr.Add(
			lang.ReadS("c", "count"),
			lang.CASS("count", lang.R("c"), lang.Add(lang.R("c"), lang.C(1))),
		)
		if g.fenced(i) {
			pr.Add(lang.FenceS())
		}
		// Barrier: wait until count == n.
		g.spinUntil(pr, i, g.buggy(i),
			[]lang.Stmt{lang.ReadS("v", "count")},
			lang.Eq(lang.R("v"), lang.C(lang.Value(n))))
		// After the barrier the counter must read n.
		pr.Add(
			lang.ReadS("v", "count"),
			lang.AssertS(lang.Eq(lang.R("v"), lang.C(lang.Value(n)))),
			lang.TermS(),
		)
	}
	return g.prog
}
