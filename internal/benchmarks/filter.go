package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Filter builds the N-thread filter lock — the textbook level-based
// generalisation of Peterson's algorithm — as an additional benchmark
// family beyond the paper's set. Thread i climbs levels 1..n-1; at each
// level it publishes its level, yields the victim slot, and waits until
// no other thread is at its level or above, or it is no longer the
// victim.
//
// Compared to the tournament Peterson, the filter lock's fenced-bug
// counterexamples need view-switch budgets that grow with N (every
// level races against every other thread), which makes it a useful
// stress benchmark for the bounded analyses: ByName accepts
// "filter_0(4)" etc. with the same version scheme as the other
// protocols.
func Filter(n int, ver Version) *lang.Program {
	g := newGen("filter", n, ver)
	for i := 0; i < n; i++ {
		g.prog.AddVar(fmt.Sprintf("flevel%d", i))
	}
	for l := 1; l < n; l++ {
		g.prog.AddVar(fmt.Sprintf("fvictim%d", l))
	}
	for i := 0; i < n; i++ {
		g.filterThread(i)
	}
	return g.prog
}

func (g *gen) filterThread(i int) {
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "ok", "lv", "vt")
	for l := 1; l < g.n; l++ {
		victim := fmt.Sprintf("fvictim%d", l)
		g.write(pr, i, fmt.Sprintf("flevel%d", i), lang.Value(l))
		g.write(pr, i, victim, lang.Value(i+1))
		// Wait while (∃k≠i: level_k >= l) && victim_l == i+1; the buggy
		// thread skips its last gate.
		skip := g.buggy(i) && l == g.n-1
		round := []lang.Stmt{lang.AssignS("ok", lang.C(1))}
		for k := 0; k < g.n; k++ {
			if k == i {
				continue
			}
			round = append(round,
				lang.ReadS("lv", fmt.Sprintf("flevel%d", k)),
				lang.IfS(lang.Ge(lang.R("lv"), lang.C(lang.Value(l))), lang.AssignS("ok", lang.C(0))),
			)
		}
		round = append(round, lang.ReadS("vt", victim))
		exit := lang.Or(lang.Eq(lang.R("ok"), lang.C(1)), lang.Ne(lang.R("vt"), lang.C(lang.Value(i+1))))
		g.spinUntil(pr, i, skip, round, exit)
	}
	g.critical(pr, i)
	g.write(pr, i, fmt.Sprintf("flevel%d", i), 0)
	pr.Add(lang.TermS())
}
