package benchmarks

import (
	"testing"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/sc"
)

func TestFilterGenerators(t *testing.T) {
	for _, name := range []string{"filter_0", "filter_0(3)", "filter_2(3)", "filter_3(3)", "filter_4(3)"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ValidateRA(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFilterSCBehaviour(t *testing.T) {
	// Correct under SC; the one-line bug breaks it under SC too.
	for _, c := range []struct {
		name   string
		unsafe bool
	}{
		{"filter_0(3)", false},
		{"filter_2(3)", true},
		{"filter_3(3)", true},
	} {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		res := sc.NewSystem(lang.MustCompile(lang.Unroll(p, 2))).Check(sc.Options{})
		if res.Violation != c.unsafe {
			t.Errorf("%s under SC: violation=%v want %v", c.name, res.Violation, c.unsafe)
		}
	}
}

func TestFilterUnfencedUnsafeUnderRA(t *testing.T) {
	p, err := ByName("filter_0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, core.Options{K: 2, Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Unsafe {
		t.Errorf("filter_0 must be UNSAFE under RA at K=2, got %v", res.Verdict)
	}
}
