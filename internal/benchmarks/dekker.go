package benchmarks

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Dekker builds the classic two-thread Dekker algorithm with flags and a
// turn variable.
func Dekker(ver Version) *lang.Program {
	g := newGen("dekker", 2, ver)
	g.prog.AddVar("flag0")
	g.prog.AddVar("flag1")
	g.prog.AddVar("turn")
	for i := 0; i < 2; i++ {
		g.dekkerThread(i)
	}
	return g.prog
}

func (g *gen) dekkerThread(i int) {
	j := 1 - i
	pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "fj", "tr")
	myFlag := fmt.Sprintf("flag%d", i)
	otherFlag := fmt.Sprintf("flag%d", j)

	g.write(pr, i, myFlag, 1)

	// while flag_j == 1: if turn != i { flag_i = 0; await turn == i;
	// flag_i = 1 }. The buggy thread skips the contention loop.
	backOff := []lang.Stmt{lang.WriteC(myFlag, 0)}
	if g.fenced(i) {
		backOff = append(backOff, lang.FenceS())
	}
	// await turn == i
	awaitBody := []lang.Stmt{lang.ReadS("tr", "turn")}
	if g.fenced(i) {
		awaitBody = append([]lang.Stmt{lang.FenceS()}, awaitBody...)
	}
	backOff = append(backOff,
		lang.WhileS(lang.Ne(lang.R("tr"), lang.C(lang.Value(i))), awaitBody...),
		lang.WriteC(myFlag, 1),
	)
	if g.fenced(i) {
		backOff = append(backOff, lang.FenceS())
	}

	contention := []lang.Stmt{}
	if g.fenced(i) {
		contention = append(contention, lang.FenceS())
	}
	contention = append(contention,
		lang.ReadS("tr", "turn"),
		lang.IfS(lang.Ne(lang.R("tr"), lang.C(lang.Value(i))), backOff...),
		lang.ReadS("fj", otherFlag),
	)

	if g.fenced(i) {
		pr.Add(lang.FenceS())
	}
	pr.Add(lang.ReadS("fj", otherFlag))
	if g.buggy(i) {
		// One-line change: pretend the other flag is down.
		pr.Add(lang.AssignS("fj", lang.C(0)))
	}
	pr.Add(lang.WhileS(lang.Eq(lang.R("fj"), lang.C(1)), contention...))

	g.critical(pr, i)

	g.write(pr, i, "turn", lang.Value(j))
	g.write(pr, i, myFlag, 0)
	pr.Add(lang.TermS())
}

// SimDekker builds the simplified (try-lock) Dekker: flags only, one
// attempt. It is correct under SC (the store-buffering argument: at
// least one thread sees the other's flag) but buggy under RA, where both
// threads may read the stale 0.
func SimDekker(ver Version) *lang.Program {
	g := newGen("sim_dekker", 2, ver)
	g.prog.AddVar("flag0")
	g.prog.AddVar("flag1")
	for i := 0; i < 2; i++ {
		j := 1 - i
		pr := g.prog.AddProc(fmt.Sprintf("t%d", i), "fj")
		g.write(pr, i, fmt.Sprintf("flag%d", i), 1)
		pr.Add(lang.ReadS("fj", fmt.Sprintf("flag%d", j)))
		if g.buggy(i) {
			pr.Add(lang.AssignS("fj", lang.C(0)))
		}
		cs := []lang.Stmt{
			lang.WriteC("cs", lang.Value(i+1)),
			lang.ReadS("csr", "cs"),
			lang.AssertS(lang.Eq(lang.R("csr"), lang.C(lang.Value(i+1)))),
			lang.WriteC("cs", 0),
		}
		pr.AddReg("csr")
		pr.Add(lang.IfS(lang.Eq(lang.R("fj"), lang.C(0)), cs...))
		g.write(pr, i, fmt.Sprintf("flag%d", i), 0)
		pr.Add(lang.TermS())
	}
	return g.prog
}
