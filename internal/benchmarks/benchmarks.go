// Package benchmarks generates the mutual-exclusion protocol programs
// the paper evaluates on (Sec. 7): Peterson (generalised to N threads as
// the filter lock), Szymanski, Dekker, simplified Dekker, Burns, Lamport
// bakery, Lamport's fast mutex, and the tbar barrier benchmark — each in
// the paper's versions:
//
//	_0  unfenced: correct under SC, buggy under RA (weak-memory bug)
//	_1  all threads fenced except thread 0 (Table 2)
//	_2  all threads fenced, one-line bug in the first thread (Table 3/5)
//	_3  all threads fenced, one-line bug in the last thread (Table 4)
//	_4  all threads fenced: SAFE (Tables 6-8)
//
// The one-line bug is the same in every protocol: the buggy thread skips
// its final entry gate (its spin flag is initialised to 0 instead of 1),
// which breaks mutual exclusion even under SC.
//
// # Critical-section assertion
//
// Mutual exclusion is encoded as in the SV-COMP benchmarks the paper
// uses: inside the critical section, thread i writes i+1 to the shared
// variable cs, reads cs back and asserts it still holds i+1, then clears
// it. Under RA a thread can read, above its own write, only writes
// modification-order-later — which exist exactly when another thread is
// in the critical section concurrently.
package benchmarks

import (
	"fmt"
	"regexp"
	"strconv"

	"ravbmc/internal/lang"
)

// Version selects the fencing/bug variant of a protocol.
type Version int

// Protocol versions (the paper's _0 .. _4 suffixes).
const (
	Unfenced       Version = iota // _0
	FencedButFirst                // _1
	BugFirstThread                // _2
	BugLastThread                 // _3
	Fenced                        // _4
)

// Suffix returns the paper's version suffix.
func (v Version) Suffix() string { return fmt.Sprintf("_%d", int(v)) }

// gen carries per-protocol generation context.
type gen struct {
	prog *lang.Program
	n    int
	ver  Version
}

func newGen(name string, n int, ver Version) *gen {
	g := &gen{n: n, ver: ver}
	g.prog = lang.NewProgram(fmt.Sprintf("%s%s(%d)", name, ver.Suffix(), n), "cs")
	return g
}

// fenced reports whether thread i carries fences in this version.
func (g *gen) fenced(i int) bool {
	switch g.ver {
	case Unfenced:
		return false
	case FencedButFirst:
		return i != 0
	default:
		return true
	}
}

// buggy reports whether thread i carries the one-line bug.
func (g *gen) buggy(i int) bool {
	switch g.ver {
	case BugFirstThread:
		return i == 0
	case BugLastThread:
		return i == g.n-1
	default:
		return false
	}
}

// f emits a fence when thread i is fenced.
func (g *gen) f(pr *lang.Proc, i int) {
	if g.fenced(i) {
		pr.Add(lang.FenceS())
	}
}

// write emits x = c followed by a fence for fenced threads.
func (g *gen) write(pr *lang.Proc, i int, x string, c lang.Value) {
	pr.Add(lang.WriteC(x, c))
	g.f(pr, i)
}

// critical emits the critical section with the mutual-exclusion
// assertion for thread i.
func (g *gen) critical(pr *lang.Proc, i int) {
	pr.AddReg("csr")
	pr.Add(
		lang.WriteC("cs", lang.Value(i+1)),
		lang.ReadS("csr", "cs"),
		lang.AssertS(lang.Eq(lang.R("csr"), lang.C(lang.Value(i+1)))),
		lang.WriteC("cs", 0),
	)
}

// spinUntil emits a spin loop for thread i:
//
//	$spin = init
//	while $spin == 1 do <round>; if <exitCond> then $spin = 0 fi done
//
// round must load whatever exitCond mentions; init is 0 for the buggy
// gate (the loop is skipped entirely — the paper's one-line change).
func (g *gen) spinUntil(pr *lang.Proc, i int, skip bool, round []lang.Stmt, exitCond lang.Expr) {
	pr.AddReg("spin")
	init := lang.Value(1)
	if skip {
		init = 0
	}
	body := make([]lang.Stmt, 0, len(round)+2)
	if g.fenced(i) {
		body = append(body, lang.FenceS())
	}
	body = append(body, round...)
	body = append(body, lang.IfS(exitCond, lang.AssignS("spin", lang.C(0))))
	pr.Add(
		lang.AssignS("spin", lang.C(init)),
		lang.WhileS(lang.Eq(lang.R("spin"), lang.C(1)), body...),
	)
}

// spinPlain is spinUntil without the per-iteration fence, for protocols
// whose fenced versions synchronise through RMWs on protocol variables
// instead of explicit fences.
func (g *gen) spinPlain(pr *lang.Proc, skip bool, round []lang.Stmt, exitCond lang.Expr) {
	pr.AddReg("spin")
	init := lang.Value(1)
	if skip {
		init = 0
	}
	body := append(append([]lang.Stmt{}, round...),
		lang.IfS(exitCond, lang.AssignS("spin", lang.C(0))))
	pr.Add(
		lang.AssignS("spin", lang.C(init)),
		lang.WhileS(lang.Eq(lang.R("spin"), lang.C(1)), body...),
	)
}

// namePattern parses table names like "peterson_1(6)", "szymanski_0",
// "tbar(3)", "bakery".
var namePattern = regexp.MustCompile(`^([a-z_]+?)(?:_(\d))?(?:\((\d+)\))?$`)

// ByName builds the benchmark program for a paper-style name. The
// version suffix defaults to _0 and the thread count to 2, matching the
// paper's conventions.
func ByName(name string) (*lang.Program, error) {
	m := namePattern.FindStringSubmatch(name)
	if m == nil {
		return nil, fmt.Errorf("benchmarks: cannot parse benchmark name %q", name)
	}
	proto := m[1]
	ver := Unfenced
	if m[2] != "" {
		v, _ := strconv.Atoi(m[2])
		if v < 0 || v > int(Fenced) {
			return nil, fmt.Errorf("benchmarks: unknown version _%d in %q", v, name)
		}
		ver = Version(v)
	}
	n := 2
	if m[3] != "" {
		n, _ = strconv.Atoi(m[3])
	}
	if n < 2 {
		return nil, fmt.Errorf("benchmarks: %q needs at least 2 threads", name)
	}
	switch proto {
	case "peterson":
		return Peterson(n, ver), nil
	case "filter":
		return Filter(n, ver), nil
	case "szymanski":
		return Szymanski(n, ver), nil
	case "dekker":
		if n != 2 {
			return nil, fmt.Errorf("benchmarks: dekker is a 2-thread protocol")
		}
		return Dekker(ver), nil
	case "sim_dekker":
		if n != 2 {
			return nil, fmt.Errorf("benchmarks: sim_dekker is a 2-thread protocol")
		}
		return SimDekker(ver), nil
	case "burns":
		return Burns(n, ver), nil
	case "bakery":
		return Bakery(n, ver), nil
	case "lamport":
		return Lamport(n, ver), nil
	case "tbar":
		return TBar(n, ver), nil
	}
	return nil, fmt.Errorf("benchmarks: unknown protocol %q", proto)
}
