package tables

import (
	"strings"
	"testing"
	"time"
)

func tinyCfg() Config {
	return Config{Quick: true, Timeout: 5 * time.Second}
}

func TestTable1QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four tools")
	}
	tab := Table1(tinyCfg())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if len(row.Cells) != 4 {
			t.Fatalf("row %s has %d cells", row.Bench, len(row.Cells))
		}
		// Table 1 benches are UNSAFE under RA; every tool that finishes
		// within the budget must agree.
		for _, c := range row.Cells {
			if c.Verdict != "UNSAFE" && c.Verdict != "T.O" {
				t.Errorf("%s/%s: verdict %s", row.Bench, c.Tool, c.Verdict)
			}
		}
	}
	out := tab.Render()
	for _, frag := range []string{"Table 1", "VBMC", "Tracer", "Cdsc", "Rcmc"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	gens := All()
	for _, key := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		if gens[key] == nil {
			t.Errorf("table %s missing from registry", key)
		}
	}
}

func TestRunAllUnknownBenchmark(t *testing.T) {
	row := runAll(tinyCfg(), "definitely_not_a_benchmark", 2, 2)
	for _, c := range row.Cells {
		if c.Verdict != "ERR" {
			t.Errorf("unknown benchmark: verdict %s", c.Verdict)
		}
	}
}

func TestLitmusSweepAgreesOnSample(t *testing.T) {
	if testing.Short() {
		t.Skip("runs VBMC on dozens of programs")
	}
	sum := LitmusSweep(2, 29, 5)
	if sum.Total == 0 {
		t.Fatal("empty sweep")
	}
	if sum.Agree != sum.Total {
		t.Fatalf("disagreement: %s", sum.Render())
	}
	if !strings.Contains(sum.Render(), "agree with the RA oracle") {
		t.Error("render format changed")
	}
}

func TestRenderCellFormats(t *testing.T) {
	cases := map[string]Cell{
		"T.O": {Verdict: "T.O"},
		"ERR": {Verdict: "ERR"},
	}
	for want, c := range cases {
		if got := renderCell(c); !strings.Contains(got, want) {
			t.Errorf("renderCell(%v) = %q", c, got)
		}
	}
	safe := renderCell(Cell{Verdict: "SAFE", Seconds: 1.5})
	if !strings.Contains(safe, "1.50s*") {
		t.Errorf("safe cell = %q", safe)
	}
	unsafe := renderCell(Cell{Verdict: "UNSAFE", Seconds: 2.25})
	if !strings.Contains(unsafe, "2.25s") || strings.Contains(unsafe, "*") {
		t.Errorf("unsafe cell = %q", unsafe)
	}
}
