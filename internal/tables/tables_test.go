package tables

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func tinyCfg() Config {
	return Config{Quick: true, Timeout: 5 * time.Second, Jobs: testJobs()}
}

// testJobs returns the pool width for tests: RAVBMC_TEST_JOBS if set
// (CI forces >1 so concurrency is exercised even on 1-CPU runners),
// else 4.
func testJobs() int {
	if s := os.Getenv("RAVBMC_TEST_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

func TestTable1QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four tools")
	}
	tab := Table1(tinyCfg())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if len(row.Cells) != 4 {
			t.Fatalf("row %s has %d cells", row.Bench, len(row.Cells))
		}
		// Table 1 benches are UNSAFE under RA; every tool that finishes
		// within the budget must agree.
		for _, c := range row.Cells {
			if c.Verdict != "UNSAFE" && c.Verdict != "T.O" {
				t.Errorf("%s/%s: verdict %s", row.Bench, c.Tool, c.Verdict)
			}
		}
	}
	out := tab.Render()
	for _, frag := range []string{"Table 1", "VBMC", "Tracer", "Cdsc", "Rcmc"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	gens := All()
	for _, key := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		if gens[key] == nil {
			t.Errorf("table %s missing from registry", key)
		}
	}
}

func TestBuildTableUnknownBenchmark(t *testing.T) {
	tab := buildTable(tinyCfg(), "Table X", "unknown bench",
		[]rowSpec{{bench: "definitely_not_a_benchmark", k: 2, l: 2}})
	if len(tab.Rows) != 1 || len(tab.Rows[0].Cells) != len(toolColumns) {
		t.Fatalf("bad shape: %+v", tab.Rows)
	}
	for _, c := range tab.Rows[0].Cells {
		if c.Verdict != "ERR" {
			t.Errorf("unknown benchmark: verdict %s", c.Verdict)
		}
	}
}

// secondsRe blanks out wall-clock cells so renders can be compared
// across runs and pool widths.
var secondsRe = regexp.MustCompile(`[0-9]+\.[0-9]{2}s`)

func normalizeRender(s string) string {
	return secondsRe.ReplaceAllString(s, "0.00s")
}

// TestTableDeterministicAcrossJobs: the rendered table must be
// byte-identical (timings normalised) whatever the pool width — cells
// are assembled by index, not completion order.
func TestTableDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates quick Table 1 three times")
	}
	cfg := tinyCfg()
	var renders []string
	for _, jobs := range []int{1, 2, 4} {
		cfg.Jobs = jobs
		renders = append(renders, normalizeRender(Table1(cfg).Render()))
	}
	for i, r := range renders[1:] {
		if r != renders[0] {
			t.Errorf("jobs=%d render differs from jobs=1:\n%s\nvs\n%s",
				[]int{2, 4}[i], r, renders[0])
		}
	}
	golden, err := os.ReadFile("testdata/table1_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	if renders[0] != string(golden) {
		t.Errorf("render drifted from testdata/table1_quick.golden:\n%s\nwant:\n%s",
			renders[0], golden)
	}
}

func TestLitmusSweepAgreesOnSample(t *testing.T) {
	if testing.Short() {
		t.Skip("runs VBMC on dozens of programs")
	}
	sum := LitmusSweep(2, 29, 5, testJobs())
	if sum.Total == 0 {
		t.Fatal("empty sweep")
	}
	if sum.Agree != sum.Total {
		t.Fatalf("disagreement: %s", sum.Render())
	}
	if !strings.Contains(sum.Render(), "agree with the RA oracle") {
		t.Error("render format changed")
	}
}

func TestRenderCellFormats(t *testing.T) {
	cases := map[string]Cell{
		"T.O": {Verdict: "T.O"},
		"ERR": {Verdict: "ERR"},
	}
	for want, c := range cases {
		if got := renderCell(c); !strings.Contains(got, want) {
			t.Errorf("renderCell(%v) = %q", c, got)
		}
	}
	safe := renderCell(Cell{Verdict: "SAFE", Seconds: 1.5})
	if !strings.Contains(safe, "1.50s*") {
		t.Errorf("safe cell = %q", safe)
	}
	unsafe := renderCell(Cell{Verdict: "UNSAFE", Seconds: 2.25})
	if !strings.Contains(unsafe, "2.25s") || strings.Contains(unsafe, "*") {
		t.Errorf("unsafe cell = %q", unsafe)
	}
}
