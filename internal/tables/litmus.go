package tables

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ravbmc/internal/litmus"
	"ravbmc/internal/sched"
)

// LitmusSummary reports the litmus experiment of Sec. 7: VBMC agreement
// with the RA oracle (the herd substitute) across the corpus.
type LitmusSummary struct {
	Total, Agree int
	K            int
	Seconds      float64
	Mismatches   []string
}

// LitmusSweep runs the classic shapes plus every stride-th generated
// program (stride 1 = the full corpus) at view bound k, comparing VBMC
// against the exhaustive RA oracle. jobs tests run concurrently (<= 0
// selects runtime.NumCPU); mismatches are reported in corpus order
// whatever the width.
func LitmusSweep(opsPerThread, stride, k, jobs int) LitmusSummary {
	if stride < 1 {
		stride = 1
	}
	start := time.Now()
	sum := LitmusSummary{K: k}
	tests := litmus.Classic()
	gen := litmus.Generated(opsPerThread)
	for i := 0; i < len(gen); i += stride {
		tests = append(tests, gen[i])
	}
	specs := make([]sched.Job, len(tests))
	for i, tc := range tests {
		tc := tc
		specs[i] = sched.Job{
			Name: tc.Name,
			Run: func(context.Context) (any, error) {
				want := litmus.Oracle(tc)
				got, err := litmus.VBMC(tc, k)
				return err == nil && got == want, nil
			},
		}
	}
	for i, r := range sched.New(jobs).Run(context.Background(), specs, nil) {
		sum.Total++
		if ok, _ := r.Value.(bool); ok {
			sum.Agree++
		} else {
			sum.Mismatches = append(sum.Mismatches, tests[i].Name)
		}
	}
	sum.Seconds = time.Since(start).Seconds()
	return sum
}

// Render prints the summary in one line plus any mismatches.
func (s LitmusSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Litmus sweep: %d/%d agree with the RA oracle at K=%d (%.1fs)\n",
		s.Agree, s.Total, s.K, s.Seconds)
	for _, m := range s.Mismatches {
		fmt.Fprintf(&b, "  MISMATCH: %s\n", m)
	}
	return b.String()
}
