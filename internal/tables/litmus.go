package tables

import (
	"fmt"
	"strings"
	"time"

	"ravbmc/internal/litmus"
)

// LitmusSummary reports the litmus experiment of Sec. 7: VBMC agreement
// with the RA oracle (the herd substitute) across the corpus.
type LitmusSummary struct {
	Total, Agree int
	K            int
	Seconds      float64
	Mismatches   []string
}

// LitmusSweep runs the classic shapes plus every stride-th generated
// program (stride 1 = the full corpus) at view bound k, comparing VBMC
// against the exhaustive RA oracle.
func LitmusSweep(opsPerThread, stride, k int) LitmusSummary {
	if stride < 1 {
		stride = 1
	}
	start := time.Now()
	sum := LitmusSummary{K: k}
	tests := litmus.Classic()
	gen := litmus.Generated(opsPerThread)
	for i := 0; i < len(gen); i += stride {
		tests = append(tests, gen[i])
	}
	for _, tc := range tests {
		want := litmus.Oracle(tc)
		got, err := litmus.VBMC(tc, k)
		sum.Total++
		if err == nil && got == want {
			sum.Agree++
		} else {
			sum.Mismatches = append(sum.Mismatches, tc.Name)
		}
	}
	sum.Seconds = time.Since(start).Seconds()
	return sum
}

// Render prints the summary in one line plus any mismatches.
func (s LitmusSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Litmus sweep: %d/%d agree with the RA oracle at K=%d (%.1fs)\n",
		s.Agree, s.Total, s.K, s.Seconds)
	for _, m := range s.Mismatches {
		fmt.Fprintf(&b, "  MISMATCH: %s\n", m)
	}
	return b.String()
}
