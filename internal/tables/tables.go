// Package tables regenerates the paper's evaluation (Sec. 7, Tables
// 1-8 plus the litmus experiment): for each table it runs VBMC and the
// three stateless-model-checking baselines on the same benchmark
// programs and reports wall-clock seconds or T.O, in the same row format
// as the paper. Absolute numbers differ from the paper (the backends
// are explicit-state Go, not SAT/C), but the comparison shape — which
// tool wins where, and how each scales in N and L — is the
// reproduction target (see EXPERIMENTS.md).
package tables

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/cache"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/sched"
	"ravbmc/internal/smc"
)

// Config controls a table run.
type Config struct {
	// Timeout per tool invocation; the paper uses 3600 s. Zero selects
	// 60 s, a scale suited to the explicit-state backends.
	Timeout time.Duration
	// Quick shrinks the thread-count sweeps so a full table regeneration
	// fits in a benchmark run; the full sweeps match the paper's.
	Quick bool
	// Jobs is the number of (benchmark, tool) cells run concurrently.
	// Zero or negative selects runtime.NumCPU. Rows are assembled in
	// spec order regardless of completion order, so the rendered table
	// is identical for every width (cell seconds excepted).
	Jobs int
	// Ctx cancels the whole table run; cells not yet started render as
	// T.O. Nil never cancels.
	Ctx context.Context
	// Obs, when non-nil, is invoked before every tool invocation with
	// the benchmark and tool name and returns the recorder to instrument
	// that run with (nil to leave the run uninstrumented). The run's
	// obs.Report is attached to its Cell, so table rows carry the engine
	// counters; cmd/ratables uses the hook to drive its -progress
	// printer. With Jobs > 1 the hook is called from pool workers and
	// must be safe for concurrent use.
	Obs func(bench, tool string) *obs.Recorder
	// Cache, when non-nil, answers cells from the content-addressed
	// result cache (internal/cache) and memoizes fresh conclusions, so
	// a repeated sweep — same binary, same bounds — costs lookups
	// instead of explorations. Inconclusive cells (T.O, ERR) are never
	// memoized and re-run every sweep.
	Cache *cache.Cache
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 60 * time.Second
	}
	return c.Timeout
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Cell is one tool's result on one benchmark.
type Cell struct {
	Tool    string
	Seconds float64
	Verdict string // UNSAFE, SAFE, T.O, ERR
	// Report carries the run's engine counters and phase timings when
	// the Config.Obs hook supplied a recorder; nil otherwise.
	Report *obs.Report
}

// Row is one benchmark line of a table.
type Row struct {
	Bench string
	K, L  int
	Cells []Cell
}

// Table is a rendered paper table.
type Table struct {
	Name    string
	Caption string
	Tools   []string
	Rows    []Row
}

// Tools compared in every table, in the paper's column order.
var toolColumns = []string{"VBMC", "Tracer", "Cdsc", "Rcmc"}

var smcAlgorithms = map[string]smc.Algorithm{
	"Tracer": smc.AlgorithmTracer, "Cdsc": smc.AlgorithmCDS, "Rcmc": smc.AlgorithmRCMC,
}

// rowSpec names one benchmark line of a table before it is run.
type rowSpec struct {
	bench string
	k, l  int
}

// buildTable fans every (benchmark, tool) cell through a sched pool and
// assembles rows in spec order, so the table layout is independent of
// worker count and completion order. Each cell builds its own program
// from the benchmark name: *lang.Program is mutated during checking
// (unrolling, labels) and must not be shared across concurrent runs.
func buildTable(cfg Config, name, caption string, specs []rowSpec) Table {
	t := Table{Name: name, Caption: caption, Tools: toolColumns}
	jobs := make([]sched.Job, 0, len(specs)*len(toolColumns))
	for _, s := range specs {
		for _, tool := range toolColumns {
			s, tool := s, tool
			jobs = append(jobs, sched.Job{
				Name: s.bench + "/" + tool,
				Run: func(ctx context.Context) (any, error) {
					return runCell(ctx, cfg, s, tool), nil
				},
			})
		}
	}
	results := sched.New(cfg.Jobs).Run(cfg.ctx(), jobs, nil)
	for i, s := range specs {
		row := Row{Bench: s.bench, K: s.k, L: s.l}
		for j, tool := range toolColumns {
			r := results[i*len(toolColumns)+j]
			switch {
			case r.Skipped:
				row.Cells = append(row.Cells, Cell{Tool: tool, Verdict: "T.O"})
			case r.Err != nil:
				row.Cells = append(row.Cells, Cell{Tool: tool, Verdict: "ERR"})
			default:
				row.Cells = append(row.Cells, r.Value.(Cell))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// runCell runs one tool on one benchmark, building a fresh program.
func runCell(ctx context.Context, cfg Config, s rowSpec, tool string) Cell {
	prog, err := benchmarks.ByName(s.bench)
	if err != nil {
		return Cell{Tool: tool, Verdict: "ERR"}
	}
	if tool == "VBMC" {
		return runVBMC(ctx, cfg, prog, s.k, s.l)
	}
	return runSMC(ctx, cfg, prog, tool, s.l)
}

// recorder consults the Obs hook for one tool invocation.
func (c Config) recorder(bench, tool string) *obs.Recorder {
	if c.Obs == nil {
		return nil
	}
	return c.Obs(bench, tool)
}

// attach finalises cell with the run's report, identity and verdict.
func attach(cell *Cell, rec *obs.Recorder, bench string, k, l int) {
	if rec == nil {
		return
	}
	rep := rec.Report()
	rep.Tool = cell.Tool
	rep.Bench = bench
	rep.Verdict = cell.Verdict
	rep.K, rep.L = k, l
	cell.Report = rep
}

func runVBMC(ctx context.Context, cfg Config, prog *lang.Program, k, l int) Cell {
	rec := cfg.recorder(prog.Name, "VBMC")
	if cfg.Cache != nil {
		cell := runCached(ctx, cfg, prog, cache.ModeVBMC, "VBMC", k, l, rec)
		attach(&cell, rec, prog.Name, k, l)
		return cell
	}
	start := time.Now()
	res, err := core.Run(prog, core.Options{K: k, Unroll: l, Timeout: cfg.timeout(), Ctx: ctx, Obs: rec})
	cell := Cell{Tool: "VBMC", Seconds: time.Since(start).Seconds()}
	switch {
	case err != nil:
		cell.Verdict = "ERR"
	case res.TimedOut:
		cell.Verdict = "T.O"
	default:
		cell.Verdict = res.Verdict.String()
	}
	attach(&cell, rec, prog.Name, k, l)
	return cell
}

// cacheModes maps tool columns onto cache modes.
var cacheModes = map[string]string{
	"VBMC": cache.ModeVBMC, "Tracer": cache.ModeTracer,
	"Cdsc": cache.ModeCDSC, "Rcmc": cache.ModeRCMC,
}

// runCached answers one cell through the result cache. A cached SAFE
// or UNSAFE is reused (including across K by subsumption for VBMC);
// anything non-conclusive renders T.O and is re-run next sweep.
func runCached(ctx context.Context, cfg Config, prog *lang.Program, mode, tool string, k, l int, rec *obs.Recorder) Cell {
	start := time.Now()
	out, err := cfg.Cache.Verify(ctx, cache.Request{Prog: prog, Mode: mode, K: k, Unroll: l},
		cache.ExecConfig{Timeout: cfg.timeout(), Obs: rec})
	cell := Cell{Tool: tool, Seconds: time.Since(start).Seconds()}
	switch {
	case err != nil:
		cell.Verdict = "ERR"
	case out.Verdict == cache.VerdictSafe || out.Verdict == cache.VerdictUnsafe:
		cell.Verdict = out.Verdict
	default:
		cell.Verdict = "T.O" // inconclusive: timeout or cap, never memoized
	}
	return cell
}

func runSMC(ctx context.Context, cfg Config, prog *lang.Program, tool string, l int) Cell {
	rec := cfg.recorder(prog.Name, tool)
	if cfg.Cache != nil {
		cell := runCached(ctx, cfg, prog, cacheModes[tool], tool, 0, l, rec)
		attach(&cell, rec, prog.Name, 0, l)
		return cell
	}
	start := time.Now()
	res, err := smc.Check(prog, smc.Options{Algorithm: smcAlgorithms[tool], Unroll: l, Timeout: cfg.timeout(), Ctx: ctx, Obs: rec})
	cell := Cell{Tool: tool, Seconds: time.Since(start).Seconds()}
	switch {
	case err != nil:
		cell.Verdict = "ERR"
	case res.TimedOut:
		cell.Verdict = "T.O"
	case res.Violation:
		cell.Verdict = "UNSAFE"
	case res.Exhausted:
		cell.Verdict = "SAFE"
	default:
		cell.Verdict = "T.O" // capped without conclusion
	}
	attach(&cell, rec, prog.Name, 0, l)
	return cell
}

// Table1 is the paper's Table 1: the original unfenced mutual-exclusion
// protocols (UNSAFE under RA), K=2, L=2.
func Table1(cfg Config) Table {
	names := []string{
		"bakery", "burns", "dekker", "lamport",
		"peterson_0", "peterson_0(3)", "sim_dekker", "szymanski_0",
	}
	if cfg.Quick {
		names = []string{"dekker", "peterson_0", "sim_dekker"}
	}
	specs := make([]rowSpec, 0, len(names))
	for _, n := range names {
		specs = append(specs, rowSpec{bench: n, k: 2, l: 2})
	}
	return buildTable(cfg, "Table 1",
		"Unfenced mutual exclusion protocols (UNSAFE), K=2, L=2", specs)
}

// Table2 is the paper's Table 2: all threads but one fenced,
// peterson_1(i) with K=4 and szymanski_1(i) with K=2, L=2.
func Table2(cfg Config) Table {
	sizes := []int{4, 6, 8, 10}
	if cfg.Quick {
		sizes = []int{3, 4}
	}
	specs := make([]rowSpec, 0, 2*len(sizes))
	for _, n := range sizes {
		specs = append(specs, rowSpec{bench: fmt.Sprintf("peterson_1(%d)", n), k: 4, l: 2})
	}
	for _, n := range sizes {
		specs = append(specs, rowSpec{bench: fmt.Sprintf("szymanski_1(%d)", n), k: 2, l: 2})
	}
	return buildTable(cfg, "Table 2",
		"All-but-one-fenced Peterson (K=4) and Szymanski (K=2), L=2", specs)
}

// Table3 is the paper's Table 3: fenced Peterson with a one-line bug in
// a fixed (first) thread, K=2, L=2.
func Table3(cfg Config) Table { return bugTable(cfg, "Table 3", "peterson_2") }

// Table4 is the paper's Table 4: the same bug moved to the last thread.
func Table4(cfg Config) Table { return bugTable(cfg, "Table 4", "peterson_3") }

// Table5 is the paper's Table 5: fenced Szymanski with the bug in a
// fixed thread.
func Table5(cfg Config) Table { return bugTable(cfg, "Table 5", "szymanski_2") }

func bugTable(cfg Config, name, proto string) Table {
	sizes := []int{3, 4, 5, 6, 7}
	if cfg.Quick {
		sizes = []int{3, 4}
	}
	specs := make([]rowSpec, 0, len(sizes))
	for _, n := range sizes {
		specs = append(specs, rowSpec{bench: fmt.Sprintf("%s(%d)", proto, n), k: 2, l: 2})
	}
	return buildTable(cfg, name,
		fmt.Sprintf("Fenced %s with a one-line bug, K=2, L=2", proto), specs)
}

// Table6 is the paper's Table 6 (SAFE fenced protocols, K=2, L=1);
// Table7 and Table8 raise L to 2 and 4.
func Table6(cfg Config) Table { return safeTable(cfg, "Table 6", 1) }

// Table7 is the L=2 SAFE table.
func Table7(cfg Config) Table { return safeTable(cfg, "Table 7", 2) }

// Table8 is the L=4 SAFE table.
func Table8(cfg Config) Table { return safeTable(cfg, "Table 8", 4) }

func safeTable(cfg Config, name string, l int) Table {
	names := []string{
		"bakery_4", "lamport_4", "tbar_4", "tbar_4(3)",
		"peterson_4(2)", "peterson_4(3)",
	}
	if cfg.Quick {
		names = []string{"tbar_4", "peterson_4(2)"}
	}
	specs := make([]rowSpec, 0, len(names))
	for _, n := range names {
		specs = append(specs, rowSpec{bench: n, k: 2, l: l})
	}
	return buildTable(cfg, name,
		fmt.Sprintf("Fenced (SAFE) protocols, K=2, L=%d", l), specs)
}

// All returns every table generator keyed by the paper's numbering.
func All() map[string]func(Config) Table {
	return map[string]func(Config) Table{
		"1": Table1, "2": Table2, "3": Table3, "4": Table4,
		"5": Table5, "6": Table6, "7": Table7, "8": Table8,
	}
}

// Render prints the table in the paper's layout.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", t.Name, t.Caption)
	fmt.Fprintf(&b, "%-18s", "Program")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %12s", tool)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s", r.Bench)
		for _, c := range r.Cells {
			b.WriteString(" " + renderCell(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderCell(c Cell) string {
	switch c.Verdict {
	case "T.O":
		return fmt.Sprintf("%12s", "T.O")
	case "ERR":
		return fmt.Sprintf("%12s", "ERR")
	case "SAFE":
		return fmt.Sprintf("%10.2fs*", c.Seconds)
	default:
		return fmt.Sprintf("%11.2fs", c.Seconds)
	}
}
