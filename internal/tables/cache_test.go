package tables

import (
	"testing"
	"time"

	"ravbmc/internal/cache"
)

// TestTableWarmSweepIdenticalVerdicts runs the same table twice over
// one cache: the warm sweep must render identical verdicts and answer
// (at least the conclusive cells) from the cache.
func TestTableWarmSweepIdenticalVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four tools twice")
	}
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := Config{Quick: true, Timeout: 10 * time.Second, Jobs: testJobs(), Cache: c}

	cold := Table1(cfg)
	coldStats := c.Stats()
	warm := Table1(cfg)
	warmStats := c.Stats()

	if len(cold.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, row := range cold.Rows {
		for j, cell := range row.Cells {
			wc := warm.Rows[i].Cells[j]
			if cell.Verdict != wc.Verdict {
				t.Errorf("%s/%s: cold %s vs warm %s", row.Bench, cell.Tool, cell.Verdict, wc.Verdict)
			}
		}
	}
	if coldStats.Stores == 0 {
		t.Error("cold sweep stored nothing")
	}
	hits := (warmStats.Hits + warmStats.SubsumedHits) - (coldStats.Hits + coldStats.SubsumedHits)
	if hits < coldStats.Stores {
		t.Errorf("warm sweep hit %d times, want at least the %d stored conclusions", hits, coldStats.Stores)
	}
}

// TestTableCacheVerdictsMatchDirect pins the cached path to the direct
// path on one quick table.
func TestTableCacheVerdictsMatchDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four tools twice")
	}
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	direct := Table1(Config{Quick: true, Timeout: 10 * time.Second, Jobs: testJobs()})
	cached := Table1(Config{Quick: true, Timeout: 10 * time.Second, Jobs: testJobs(), Cache: c})
	for i, row := range direct.Rows {
		for j, cell := range row.Cells {
			cc := cached.Rows[i].Cells[j]
			// T.O cells depend on machine speed; only conclusive cells
			// are required to match exactly.
			if cell.Verdict == "SAFE" || cell.Verdict == "UNSAFE" {
				if cc.Verdict != cell.Verdict && cc.Verdict != "T.O" {
					t.Errorf("%s/%s: direct %s vs cached %s", row.Bench, cell.Tool, cell.Verdict, cc.Verdict)
				}
			}
		}
	}
}
