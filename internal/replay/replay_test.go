package replay

import (
	"strings"
	"testing"

	"ravbmc/internal/lang"
	"ravbmc/internal/trace"
)

// storeBuffer is the smallest program whose violation needs a
// view-altering read: p1 only sees p0's write by adopting the published
// message.
func storeBuffer() *lang.Program {
	p := lang.NewProgram("sb", "x")
	p.AddProc("p0").Add(lang.LabelS("w", lang.WriteC("x", 1)))
	p.AddProc("p1", "a").Add(
		lang.LabelS("r", lang.ReadS("a", "x")),
		lang.LabelS("chk", lang.AssertS(lang.Ne(lang.R("a"), lang.C(1)))),
	)
	return p
}

// witness returns the hand-written witness of the violation: a tracked
// write claiming stamp 1 and publishing to slot 0, a view-altering read
// adopting that message, then the failed assertion.
func witness() []Action {
	return []Action{
		{Kind: ActWrite, Proc: "p0", Label: "w", Var: "x", Tracked: true, Stamp: 1, PublishIdx: 0},
		{Kind: ActRead, Proc: "p1", Label: "r", Var: "x", Reg: "a", ViewAltering: true, ReadIdx: 0},
		{Kind: ActViolation, Proc: "p1", Label: "chk"},
	}
}

func TestReplayHandWrittenWitness(t *testing.T) {
	w, err := Run(storeBuffer(), witness(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 || w.Events[w.Len()-1].Kind != trace.KindViolation {
		t.Fatalf("witness trace does not end in a violation:\n%s", w)
	}
	var read *trace.Event
	for i := range w.Events {
		if w.Events[i].Kind == trace.KindRead {
			read = &w.Events[i]
		}
	}
	if read == nil || !read.ViewSwitch || read.Val != 1 {
		t.Errorf("replayed read not a view switch of value 1: %+v", read)
	}
	if len(read.ViewBefore) == 0 || len(read.ViewAfter) == 0 {
		t.Error("replay did not capture view snapshots")
	}
}

func TestReplayRejectsNonAlteringRead(t *testing.T) {
	bad := witness()
	bad[1].ViewAltering = false
	if _, err := Run(storeBuffer(), bad, Options{}); err == nil {
		t.Fatal("witness with the read's source swapped replayed successfully")
	}
}

func TestReplayRejectsTruncatedWitness(t *testing.T) {
	if _, err := Run(storeBuffer(), witness()[:2], Options{}); err == nil ||
		!strings.Contains(err.Error(), "violation") {
		t.Fatalf("truncated witness accepted or wrong error: %v", err)
	}
}
