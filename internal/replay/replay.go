// Package replay validates lifted witnesses: it deterministically
// re-executes a sequence of source-level actions against the RA
// operational semantics of internal/ra and confirms that the claimed
// violation is reached.
//
// A lifted witness (see core.Lift) fixes, per visible source statement,
// the choices the translated program made: whether a read was
// view-altering and which published message it consumed, whether a
// write was tracked and which time-stamp it claimed, and which message
// store slot a publish filled. Replay drives ra.Successors with exactly
// those choices. The only freedom the witness does not pin down is the
// modification-order position of writes (the translation encodes it
// through time-stamps, which constrain rather than determine positions
// of untracked writes), so replay is a small backtracking search: write
// positions are branched over, pruned by the invariant that the claimed
// time-stamps must appear strictly increasing along every modification
// order. Everything else is deterministic.
//
// A successful replay returns the full RA trace of the source program —
// the final human-readable witness — and proves that the translation
// and the lifting agree with the operational semantics on this
// execution: a bug in either becomes a loud validation failure instead
// of a bogus counterexample.
package replay

import (
	"fmt"

	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
	"ravbmc/internal/trace"
)

// ActionKind classifies a lifted witness action.
type ActionKind int

// Action kinds: the visible statements of the RA fragment plus the
// violation terminator.
const (
	ActRead ActionKind = iota
	ActWrite
	ActCAS
	ActFence
	ActNondet
	ActViolation
)

// String returns a short tag for the kind.
func (k ActionKind) String() string {
	switch k {
	case ActRead:
		return "read"
	case ActWrite:
		return "write"
	case ActCAS:
		return "cas"
	case ActFence:
		return "fence"
	case ActNondet:
		return "nondet"
	case ActViolation:
		return "violation"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Action is one visible step of a lifted witness, attributed to a
// source statement by (Proc, Label).
type Action struct {
	Proc  string
	Label string
	Kind  ActionKind
	// Var is the shared variable of read/write/CAS actions (empty for
	// fences, which act on the distinguished fence variable).
	Var string
	// Reg is the destination register of read and nondet actions.
	Reg string
	// Val is the chosen value of a nondet action.
	Val lang.Value
	// ViewAltering marks reads/CAS/fences that consumed a published
	// message (the translation's view-altering guess); ReadIdx is the
	// message-store slot of that message.
	ViewAltering bool
	ReadIdx      int
	// Tracked marks writes that claimed a time-stamp; Stamp is the
	// claimed stamp (also set on CAS/fence actions, whose write part
	// always claims the adjacent stamp).
	Tracked bool
	Stamp   int
	// PublishIdx is the message-store slot this action's write part
	// published into, or -1 when it did not publish.
	PublishIdx int
}

func (a Action) String() string {
	return fmt.Sprintf("%s/%s %s %s", a.Proc, a.Label, a.Kind, a.Var)
}

// Options configures a replay run.
type Options struct {
	// MaxNodes caps the backtracking search (successor trials); 0 means
	// a generous default. Hitting the cap is a validation error, not a
	// pass.
	MaxNodes int
	// Obs, when non-nil, receives the replay counters
	// ("replay.actions", "replay.silent_steps", "replay.branch_points",
	// "replay.backtracks", "replay.nodes").
	Obs *obs.Recorder
}

// defaultMaxNodes bounds the write-position search. Real witnesses
// replay in a handful of nodes per action; the cap only guards against
// pathological corrupted inputs.
const defaultMaxNodes = 1 << 20

// Run re-executes the actions against the RA semantics of prog and
// returns the full RA trace of the matched execution. The last action
// must be the violation; an error describes the first action that could
// not be matched (with the deepest progress the search made).
func Run(prog *lang.Program, actions []Action, opts Options) (*trace.Trace, error) {
	if err := prog.ValidateRA(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	cp, err := lang.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if len(actions) == 0 {
		return nil, fmt.Errorf("replay: empty witness")
	}
	if last := actions[len(actions)-1]; last.Kind != ActViolation {
		return nil, fmt.Errorf("replay: witness does not end in a violation (last action %s)", last)
	}
	sys := ra.NewSystem(cp)
	sys.CaptureViews = true
	r := &replayer{
		sys:      sys,
		acts:     actions,
		maxNodes: opts.MaxNodes,
		procIdx:  map[string]int{},
		pubs:     map[int]*ra.Msg{},
		stampOf:  map[int]int{},
	}
	if r.maxNodes <= 0 {
		r.maxNodes = defaultMaxNodes
	}
	for i, pr := range cp.Procs {
		r.procIdx[pr.Name] = i
	}
	rec := opts.Obs
	r.cActions = rec.Counter("replay.actions")
	r.cSilent = rec.Counter("replay.silent_steps")
	r.cBranchPoints = rec.Counter("replay.branch_points")
	r.cBacktracks = rec.Counter("replay.backtracks")
	r.cNodes = rec.Counter("replay.nodes")

	init := sys.Init()
	// The initial message of every variable sits at time-stamp 0; seeding
	// it lets the stamp-consistency pruning anchor claimed stamps (all
	// >= 1) above the initial messages.
	for v := 0; v < len(sys.Vars); v++ {
		r.stampOf[init.MO(v)[0].Seq] = 0
	}
	if r.match(init, 0) {
		return &trace.Trace{Events: r.out}, nil
	}
	if r.capped {
		return nil, fmt.Errorf("replay: search cap of %d nodes exhausted at action %d of %d (%s)",
			r.maxNodes, r.deepest+1, len(r.acts), r.acts[min(r.deepest, len(r.acts)-1)])
	}
	return nil, fmt.Errorf("replay: no RA execution matches the witness: stuck at action %d of %d (%s): %s",
		r.deepest+1, len(r.acts), r.acts[min(r.deepest, len(r.acts)-1)], r.stuck)
}

type replayer struct {
	sys      *ra.System
	acts     []Action
	procIdx  map[string]int
	maxNodes int
	nodes    int
	capped   bool
	// pubs maps a message-store slot to the RA message the corresponding
	// publish created; stampOf maps a message Seq to its claimed stamp.
	// Both are mutated along the search path and undone on backtrack.
	pubs    map[int]*ra.Msg
	stampOf map[int]int
	// out accumulates the RA events of the current path; on success it
	// is the witness trace.
	out []trace.Event
	// deepest / stuck record the furthest action reached and why it
	// failed, for the error message.
	deepest int
	stuck   string

	cActions, cSilent, cBranchPoints, cBacktracks, cNodes *obs.Counter
}

func (r *replayer) fail(i int, format string, args ...any) bool {
	if i >= r.deepest {
		r.deepest = i
		r.stuck = fmt.Sprintf(format, args...)
	}
	return false
}

// match tries to execute action i and the rest of the witness from c.
func (r *replayer) match(c *ra.Config, i int) bool {
	if i >= len(r.acts) {
		return true
	}
	r.nodes++
	r.cNodes.Inc()
	if r.nodes > r.maxNodes {
		r.capped = true
		return false
	}
	a := r.acts[i]
	p, ok := r.procIdx[a.Proc]
	if !ok {
		return r.fail(i, "unknown process %q", a.Proc)
	}
	c, pre, assertFailed := r.advance(c, p)
	mark := len(r.out)
	r.out = append(r.out, pre...)
	r.cSilent.Add(int64(len(pre)))
	ok = r.matchAction(c, i, p, assertFailed)
	if !ok {
		r.out = r.out[:mark]
	}
	return ok
}

// advance steps process p through its silent local operations (assigns,
// jumps, passed assumes and asserts) up to the next visible operation,
// nondet, termination, parked assume, or failing assert (reported via
// assertFailed without stepping it).
func (r *replayer) advance(c *ra.Config, p int) (_ *ra.Config, events []trace.Event, assertFailed bool) {
	// A loop-free process can revisit no instruction, so the local run is
	// bounded by the code length; the guard only stops local-only loops
	// of non-unrolled inputs.
	for steps := 0; steps <= len(r.sys.Prog.Procs[p].Code); steps++ {
		in := &r.sys.Prog.Procs[p].Code[c.PC(p)]
		switch in.Op {
		case lang.OpAssignReg, lang.OpJmp, lang.OpCJmp:
			succ := r.sys.Successors(c, p)[0]
			events = append(events, succ.Event)
			c = succ.Config
		case lang.OpAssumeCond:
			succs := r.sys.Successors(c, p)
			if len(succs) == 0 {
				return c, events, false // parked at a false assume
			}
			events = append(events, succs[0].Event)
			c = succs[0].Config
		case lang.OpAssertCond:
			succs := r.sys.Successors(c, p)
			if succs[0].Violation {
				return c, events, true
			}
			events = append(events, succs[0].Event)
			c = succs[0].Config
		default:
			return c, events, false
		}
	}
	return c, events, false
}

// matchAction executes action i (whose process p has been advanced to
// its next non-silent instruction) and recurses.
func (r *replayer) matchAction(c *ra.Config, i, p int, assertFailed bool) bool {
	a := r.acts[i]
	in := &r.sys.Prog.Procs[p].Code[c.PC(p)]
	r.cActions.Inc()

	if a.Kind == ActViolation {
		if !assertFailed {
			return r.fail(i, "process %s is at %s %q, not at a failing assert", a.Proc, in.Op, in.Label)
		}
		if in.Label != a.Label {
			return r.fail(i, "violation at label %q, witness claims %q", in.Label, a.Label)
		}
		if i != len(r.acts)-1 {
			return r.fail(i, "violation before the end of the witness")
		}
		succ := r.sys.Successors(c, p)[0]
		r.out = append(r.out, succ.Event)
		return true
	}
	if assertFailed {
		return r.fail(i, "process %s fails an assert at %q before action %s", a.Proc, in.Label, a)
	}
	if in.Label != a.Label {
		return r.fail(i, "process %s is at label %q, witness expects %q", a.Proc, in.Label, a.Label)
	}

	switch a.Kind {
	case ActNondet:
		if in.Op != lang.OpNondetReg {
			return r.fail(i, "label %q is %s, witness expects a nondet", a.Label, in.Op)
		}
		for _, succ := range r.sys.Successors(c, p) {
			if succ.Event.Val == int64(a.Val) {
				return r.take(succ, i)
			}
		}
		return r.fail(i, "nondet value %d outside [%d, %d]", a.Val, in.Lo, in.Hi)

	case ActRead:
		if in.Op != lang.OpReadVar || in.Var != a.Var {
			return r.fail(i, "label %q is %s %s, witness expects read %s", a.Label, in.Op, in.Var, a.Var)
		}
		return r.matchReadLike(c, i, p, a)

	case ActCAS:
		if in.Op != lang.OpCASVar || in.Var != a.Var {
			return r.fail(i, "label %q is %s %s, witness expects cas %s", a.Label, in.Op, in.Var, a.Var)
		}
		return r.matchReadLike(c, i, p, a)

	case ActFence:
		if in.Op != lang.OpFenceOp {
			return r.fail(i, "label %q is %s, witness expects fence", a.Label, in.Op)
		}
		return r.matchReadLike(c, i, p, a)

	case ActWrite:
		if in.Op != lang.OpWriteVar || in.Var != a.Var {
			return r.fail(i, "label %q is %s %s, witness expects write %s", a.Label, in.Op, in.Var, a.Var)
		}
		succs := r.sys.Successors(c, p)
		if len(succs) > 1 {
			r.cBranchPoints.Inc()
		}
		matched := false
		for _, succ := range succs {
			if !r.stampOK(succ, a) {
				continue
			}
			if r.take(succ, i) {
				return true
			}
			matched = true
			r.cBacktracks.Inc()
		}
		if !matched {
			return r.fail(i, "no modification-order position for write %s respects the claimed stamps", a.Var)
		}
		return false
	}
	return r.fail(i, "unknown action kind %v", a.Kind)
}

// matchReadLike handles the read part shared by reads, CAS and fences:
// a view-altering action must consume exactly the published message its
// store slot designates; a non-altering one reads the process's own
// view message (the unique successor without a view switch).
func (r *replayer) matchReadLike(c *ra.Config, i, p int, a Action) bool {
	succs := r.sys.Successors(c, p)
	if len(succs) == 0 {
		return r.fail(i, "%s has no enabled RA transition (CAS value mismatch or occupied slot?)", a)
	}
	var want *ra.Msg
	if a.ViewAltering {
		m, ok := r.pubs[a.ReadIdx]
		if !ok {
			return r.fail(i, "%s reads message-store slot %d, but no publish filled it", a, a.ReadIdx)
		}
		want = m
	}
	for _, succ := range succs {
		if a.ViewAltering {
			if succ.Event.ReadMsg == nil || succ.Event.ReadMsg.Seq != want.Seq {
				continue
			}
		} else if succ.ViewSwitch {
			continue
		}
		if !r.stampOK(succ, a) {
			return r.fail(i, "%s: claimed stamp %d breaks stamp order", a, a.Stamp)
		}
		return r.take(succ, i)
	}
	if a.ViewAltering {
		return r.fail(i, "%s cannot read published message #%d (below view or slot occupied)", a, want.Seq)
	}
	return r.fail(i, "%s has no non-view-altering transition", a)
}

// stampOK checks, for actions whose write part claimed a time-stamp,
// that inserting the new message at the successor's position keeps the
// claimed stamps strictly increasing along the variable's modification
// order — the invariant linking the translation's explicit time-stamps
// to the list-based RA semantics. Untracked writes carry no stamp and
// pass vacuously (any position is consistent with "time-stamp not
// tracked").
func (r *replayer) stampOK(succ ra.Succ, a Action) bool {
	if a.Kind == ActWrite && !a.Tracked {
		return true
	}
	wrote := succ.Event.WroteMsg
	if wrote == nil {
		return true
	}
	x := r.sys.VarIdx[succ.Event.WroteMsg.Var]
	if succ.Event.WroteMsg.Var == "_fence" {
		x = r.sys.FenceVar
	}
	last := -1
	for _, m := range succ.Config.MO(x) {
		s, ok := r.stampOf[m.Seq]
		if !ok {
			if m.Seq == wrote.Seq {
				s = a.Stamp
			} else {
				continue
			}
		}
		if s <= last {
			return false
		}
		last = s
	}
	return true
}

// take commits successor succ for action i, records its published
// message and stamp, recurses, and undoes the bookkeeping on backtrack.
func (r *replayer) take(succ ra.Succ, i int) bool {
	a := r.acts[i]
	r.out = append(r.out, succ.Event)
	var created *ra.Msg
	if w := succ.Event.WroteMsg; w != nil {
		x := r.sys.VarIdx[w.Var]
		if w.Var == "_fence" {
			x = r.sys.FenceVar
		}
		for _, m := range succ.Config.MO(x) {
			if m.Seq == w.Seq {
				created = m
				break
			}
		}
	}
	stamped := false
	if created != nil && (a.Kind != ActWrite || a.Tracked) {
		if _, dup := r.stampOf[created.Seq]; !dup {
			r.stampOf[created.Seq] = a.Stamp
			stamped = true
		}
	}
	published := false
	if created != nil && a.PublishIdx >= 0 {
		if _, dup := r.pubs[a.PublishIdx]; !dup {
			r.pubs[a.PublishIdx] = created
			published = true
		}
	}
	if r.match(succ.Config, i+1) {
		return true
	}
	if published {
		delete(r.pubs, a.PublishIdx)
	}
	if stamped {
		delete(r.stampOf, created.Seq)
	}
	r.out = r.out[:len(r.out)-1]
	return false
}
