package tmai_test

import (
	"testing"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/tmai"
)

// TestProvesValueBoundedAssert: a coherence-style shape whose assertion
// is purely value-based is exactly what the interference abstraction
// proves — for every K, unroll bound, and interleaving.
func TestProvesValueBoundedAssert(t *testing.T) {
	p := &lang.Program{
		Name: "coherence-values",
		Vars: []string{"x"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{lang.Write{Var: "x", Val: lang.C(1)}}},
			{Name: "P1", Body: []lang.Stmt{lang.Write{Var: "x", Val: lang.C(2)}}},
			{Name: "P2", Regs: []string{"r"}, Body: []lang.Stmt{
				lang.Read{Reg: "r", Var: "x"},
				lang.Assert{Cond: lang.Le(lang.R("r"), lang.C(2))},
			}},
		},
	}
	res := tmai.Analyze(p, tmai.Options{})
	if res.Verdict != tmai.Safe {
		t.Fatalf("expected unbounded SAFE, got %v (%s)", res.Verdict, res.Detail)
	}
}

// TestProvesLoopingProgram: the analysis needs no unroll bound — a
// spinloop program is proved as-is, which no bounded engine can do.
func TestProvesLoopingProgram(t *testing.T) {
	p := &lang.Program{
		Name: "spin-safe",
		Vars: []string{"flag", "data"},
		Procs: []*lang.Proc{
			{Name: "P0", Body: []lang.Stmt{
				lang.Write{Var: "data", Val: lang.C(7)},
				lang.Write{Var: "flag", Val: lang.C(1)},
			}},
			{Name: "P1", Regs: []string{"f", "d"}, Body: []lang.Stmt{
				lang.While{Cond: lang.Eq(lang.R("f"), lang.C(0)), Body: []lang.Stmt{
					lang.Read{Reg: "f", Var: "flag"},
				}},
				lang.Read{Reg: "d", Var: "data"},
				lang.Assert{Cond: lang.Or(lang.Eq(lang.R("d"), lang.C(0)), lang.Eq(lang.R("d"), lang.C(7)))},
			}},
		},
	}
	res := tmai.Analyze(p, tmai.Options{})
	if res.Verdict != tmai.Safe {
		t.Fatalf("expected unbounded SAFE on looping program, got %v (%s)", res.Verdict, res.Detail)
	}
}

// TestFlowSensitiveShapeIsUnknown: message passing's assertion needs
// order, which the interference abstraction deliberately forgets; the
// verdict must be Unknown, never a false SAFE and never an UNSAFE.
func TestFlowSensitiveShapeIsUnknown(t *testing.T) {
	for _, lt := range litmus.Classic() {
		if lt.Name != "MP" {
			continue
		}
		res := tmai.Analyze(lt.Prog, tmai.Options{})
		if res.Verdict != tmai.Unknown {
			t.Fatalf("MP: expected Unknown, got %v", res.Verdict)
		}
	}
}

// TestSoundOnCorpus is the property test: over every classic litmus
// shape and a slice of the generated corpus, a tmai SAFE must agree
// with the exhaustive RA oracle (no false SAFE on any unsafe program),
// and at least one corpus program must be proved — the unbounded tier
// has to actually fire.
func TestSoundOnCorpus(t *testing.T) {
	tests := litmus.Classic()
	gen := litmus.Generated(3)
	if testing.Short() {
		gen = gen[:min(200, len(gen))]
	}
	tests = append(tests, gen...)
	proved := 0
	for _, lt := range tests {
		res := tmai.Analyze(lt.Prog, tmai.Options{})
		if res.Verdict != tmai.Safe {
			continue
		}
		proved++
		if litmus.Oracle(lt) {
			t.Fatalf("%s: tmai claimed unbounded SAFE but the RA oracle finds a violation", lt.Name)
		}
	}
	if proved == 0 {
		t.Error("tmai proved nothing on the litmus corpus; the unbounded tier would never fire")
	}
	t.Logf("tmai proved %d/%d corpus programs", proved, len(tests))
}

// TestAgreesWithVBMC cross-checks a proved program against the full
// pipeline at a concrete K, the same direct-vs-cached discipline the
// cache property test uses.
func TestAgreesWithVBMC(t *testing.T) {
	tests := append(litmus.Classic(), litmus.Generated(3)[:50]...)
	for _, lt := range tests {
		res := tmai.Analyze(lt.Prog, tmai.Options{})
		if res.Verdict != tmai.Safe {
			continue
		}
		got, err := core.Run(lt.Prog, core.Options{K: 2})
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		if got.Verdict != core.Safe {
			t.Fatalf("%s: tmai SAFE but core.Run(K=2) says %v", lt.Name, got.Verdict)
		}
		t.Logf("%s: tmai SAFE agrees with core.Run(K=2)", lt.Name)
		return
	}
	t.Skip("no corpus shape proved by tmai")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
