// Package tmai is a thread-modular abstract interpretation pass over
// the language: the portfolio's only member whose SAFE verdict is not
// bounded by a view budget K, an unroll bound L, or a context bound.
//
// The analysis follows the interference style of thread-modular
// analyses of release-acquire programs ("Thread-modular Analysis of
// Release-Acquire Concurrency", PAPERS.md): each process is analysed
// alone over its own control-flow graph, every read of a shared
// location returns the location's *interference set* — its initial
// value joined with every value any process may ever write to it — and
// every write contributes to that set. The per-process analyses and the
// interference map are iterated to a joint fixpoint.
//
// The abstract domain is the value-set domain: a register or location
// holds a small finite set of concrete values, widened to Top beyond
// Options.MaxVals. Reads are flow-insensitive in the interference set,
// which over-approximates *any* memory model in which a read returns
// some value written (or initial) for its location — sequential
// consistency, release-acquire, and every K-view-bounded restriction
// alike. A SAFE verdict therefore holds unconditionally: no assertion
// can fail and no array access can go out of bounds in any interleaving
// under RA, for every K. An Unknown verdict means nothing (the
// abstraction lost too much); tmai never reports UNSAFE.
package tmai

import (
	"fmt"
	"sort"

	"ravbmc/internal/lang"
)

// Verdict is the outcome of the analysis.
type Verdict int

// Verdicts: Safe is unbounded (holds for every K/L/context budget);
// Unknown is the abstraction giving up, never a bug report.
const (
	Safe Verdict = iota
	Unknown
)

// String renders the verdict as the tools print it.
func (v Verdict) String() string {
	if v == Safe {
		return "SAFE"
	}
	return "UNKNOWN"
}

// Options configures the analysis.
type Options struct {
	// MaxVals caps a value set's cardinality before it widens to Top;
	// 0 selects the default (16).
	MaxVals int
	// MaxCombos caps the register-combination enumeration of one
	// abstract expression evaluation; 0 selects the default (256).
	MaxCombos int
}

const (
	defaultMaxVals   = 16
	defaultMaxCombos = 256
)

// Result reports the verdict with fixpoint statistics.
type Result struct {
	Verdict Verdict
	// Rounds is the number of interference fixpoint rounds.
	Rounds int
	// Detail names the first assertion (or array access) the
	// abstraction could not prove, for Unknown verdicts.
	Detail string
}

// vset is a value set: a small sorted set of concrete values, or Top.
type vset struct {
	top  bool
	vals []lang.Value // sorted, unique; nil+!top = bottom (unreachable)
}

func topSet() vset { return vset{top: true} }

func single(v lang.Value) vset { return vset{vals: []lang.Value{v}} }

func (s vset) isBottom() bool { return !s.top && len(s.vals) == 0 }

// join unions two sets, widening to Top past max.
func join(a, b vset, max int) vset {
	if a.top || b.top {
		return topSet()
	}
	if len(a.vals) == 0 {
		return b
	}
	if len(b.vals) == 0 {
		return a
	}
	merged := make([]lang.Value, 0, len(a.vals)+len(b.vals))
	merged = append(merged, a.vals...)
	merged = append(merged, b.vals...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	out := merged[:1]
	for _, v := range merged[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	if len(out) > max {
		return topSet()
	}
	return vset{vals: out}
}

func (s vset) equal(t vset) bool {
	if s.top != t.top || len(s.vals) != len(t.vals) {
		return false
	}
	for i := range s.vals {
		if s.vals[i] != t.vals[i] {
			return false
		}
	}
	return true
}

// env is the abstract register file of one process at one pc.
type env []vset

func (e env) clone() env {
	out := make(env, len(e))
	copy(out, e)
	return out
}

func (e env) equal(f env) bool {
	for i := range e {
		if !e[i].equal(f[i]) {
			return false
		}
	}
	return true
}

// analyzer is one fixpoint computation over a compiled program.
type analyzer struct {
	cp        *lang.CompiledProgram
	maxVals   int
	maxCombos int
	// interference: per shared scalar (by name), the set of values it
	// may ever hold: its initial value joined with every abstract
	// write. Arrays are smashed to one set per array.
	vars map[string]vset
	arrs map[string]vset
	// arrSizes for bounds proofs.
	arrSizes map[string]int
	changed  bool // an interference set grew this round
	unknown  string
}

// Analyze runs the thread-modular abstract interpretation on prog.
// Programs that fail RA validation are Unknown (the caller's pipeline
// will surface the validation error through its own path).
func Analyze(prog *lang.Program, opts Options) Result {
	cp, err := lang.Compile(prog)
	if err != nil {
		return Result{Verdict: Unknown, Detail: "compile: " + err.Error()}
	}
	maxVals := opts.MaxVals
	if maxVals <= 0 {
		maxVals = defaultMaxVals
	}
	maxCombos := opts.MaxCombos
	if maxCombos <= 0 {
		maxCombos = defaultMaxCombos
	}
	a := &analyzer{
		cp:        cp,
		maxVals:   maxVals,
		maxCombos: maxCombos,
		vars:      map[string]vset{},
		arrs:      map[string]vset{},
		arrSizes:  map[string]int{},
	}
	for _, v := range cp.Vars {
		a.vars[v] = single(0)
	}
	for _, arr := range cp.Arrays {
		a.arrs[arr.Name] = single(arr.Init)
		a.arrSizes[arr.Name] = arr.Size
	}
	// Interference fixpoint: every round re-analyses each process
	// against the current interference map; writes grow the map
	// monotonically, so the rounds terminate (each set grows at most
	// maxVals times before widening to Top).
	rounds := 0
	for {
		rounds++
		a.changed = false
		for _, pr := range cp.Procs {
			a.analyzeProc(pr, false)
		}
		if !a.changed {
			break
		}
	}
	// Verdict pass against the stable interference map: only now are
	// the per-assert checks meaningful.
	a.unknown = ""
	for _, pr := range cp.Procs {
		a.analyzeProc(pr, true)
		if a.unknown != "" {
			return Result{Verdict: Unknown, Rounds: rounds, Detail: a.unknown}
		}
	}
	return Result{Verdict: Safe, Rounds: rounds}
}

// analyzeProc runs one per-process abstract reachability fixpoint.
// When verdict is set, unprovable asserts and array accesses are
// recorded in a.unknown.
func (a *analyzer) analyzeProc(pr *lang.CompiledProc, verdict bool) {
	regIdx := make(map[string]int, len(pr.Regs))
	for i, r := range pr.Regs {
		regIdx[r] = i
	}
	states := make([]env, len(pr.Code))
	init := make(env, len(pr.Regs))
	for i := range init {
		init[i] = single(0)
	}
	states[0] = init
	work := []int{0}
	inWork := make([]bool, len(pr.Code))
	inWork[0] = true
	// push joins e into states[pc] and enqueues pc on growth.
	push := func(pc int, e env) {
		if states[pc] == nil {
			states[pc] = e.clone()
		} else {
			joined := states[pc].clone()
			for i := range joined {
				joined[i] = join(joined[i], e[i], a.maxVals)
			}
			if joined.equal(states[pc]) {
				return
			}
			states[pc] = joined
		}
		if !inWork[pc] {
			inWork[pc] = true
			work = append(work, pc)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		e := states[pc]
		if e == nil {
			continue
		}
		in := &pr.Code[pc]
		switch in.Op {
		case lang.OpTermProc:
			// Sink.
		case lang.OpReadVar:
			ne := e.clone()
			ne[regIdx[in.Reg]] = a.vars[in.Var]
			push(in.Next, ne)
		case lang.OpWriteVar:
			w := a.evalExpr(in.Val, e, regIdx)
			a.addInterference(a.vars, in.Var, w)
			push(in.Next, e)
		case lang.OpCASVar:
			// The CAS can succeed whenever its expected value is
			// possible for the variable; its new value then joins the
			// interference set. Whether it ever actually succeeds is
			// an enabledness question the over-approximation skips.
			old := a.evalExpr(in.Old, e, regIdx)
			cur := a.vars[in.Var]
			if old.top || cur.top || intersects(old, cur) {
				w := a.evalExpr(in.Val, e, regIdx)
				a.addInterference(a.vars, in.Var, w)
			}
			push(in.Next, e)
		case lang.OpFenceOp, lang.OpAtomicBegin, lang.OpAtomicEnd:
			push(in.Next, e)
		case lang.OpAssignReg:
			ne := e.clone()
			ne[regIdx[in.Reg]] = a.evalExpr(in.Val, e, regIdx)
			push(in.Next, ne)
		case lang.OpNondetReg:
			ne := e.clone()
			n := int(in.Hi - in.Lo + 1)
			if n <= 0 || n > a.maxVals {
				ne[regIdx[in.Reg]] = topSet()
			} else {
				vals := make([]lang.Value, 0, n)
				for v := in.Lo; v <= in.Hi; v++ {
					vals = append(vals, v)
				}
				ne[regIdx[in.Reg]] = vset{vals: vals}
			}
			push(in.Next, ne)
		case lang.OpAssumeCond:
			if ne, live := a.refine(in.Cond, e, regIdx, true); live {
				push(in.Next, ne)
			}
		case lang.OpAssertCond:
			if verdict && a.unknown == "" && a.mayBeZero(in.Cond, e, regIdx) {
				a.unknown = fmt.Sprintf("%s/%s: cannot prove assert %s", pr.Name, in.Label, in.Cond.String())
			}
			// Executions past a failed assert do not exist; continue
			// with the refined env like an assume.
			if ne, live := a.refine(in.Cond, e, regIdx, true); live {
				push(in.Next, ne)
			}
		case lang.OpCJmp:
			if ne, live := a.refine(in.Cond, e, regIdx, true); live {
				push(in.Next, ne)
			}
			if ne, live := a.refine(in.Cond, e, regIdx, false); live {
				push(in.Else, ne)
			}
		case lang.OpLoadArrEl:
			if verdict && a.unknown == "" {
				a.checkBounds(pr, in, e, regIdx)
			}
			ne := e.clone()
			ne[regIdx[in.Reg]] = a.arrs[in.Var]
			push(in.Next, ne)
		case lang.OpStoreArrEl:
			if verdict && a.unknown == "" {
				a.checkBounds(pr, in, e, regIdx)
			}
			w := a.evalExpr(in.Val, e, regIdx)
			a.addInterference(a.arrs, in.Var, w)
			push(in.Next, e)
		case lang.OpJmp:
			push(in.Next, e)
		default:
			if a.unknown == "" {
				a.unknown = fmt.Sprintf("%s: unsupported opcode %s", pr.Name, in.Op)
			}
		}
	}
}

// addInterference joins w into the named location's set, flagging
// growth for the outer fixpoint.
func (a *analyzer) addInterference(m map[string]vset, name string, w vset) {
	joined := join(m[name], w, a.maxVals)
	if !joined.equal(m[name]) {
		m[name] = joined
		a.changed = true
	}
}

// checkBounds proves an array index in range, or records Unknown.
func (a *analyzer) checkBounds(pr *lang.CompiledProc, in *lang.Instr, e env, regIdx map[string]int) {
	idx := a.evalExpr(in.Index, e, regIdx)
	size := lang.Value(a.arrSizes[in.Var])
	if idx.top {
		a.unknown = fmt.Sprintf("%s/%s: cannot bound index of %s", pr.Name, in.Label, in.Var)
		return
	}
	for _, v := range idx.vals {
		if v < 0 || v >= size {
			a.unknown = fmt.Sprintf("%s/%s: cannot prove %s[%d] in bounds", pr.Name, in.Label, in.Var, v)
			return
		}
	}
}

func intersects(a, b vset) bool {
	i, j := 0, 0
	for i < len(a.vals) && j < len(b.vals) {
		switch {
		case a.vals[i] == b.vals[j]:
			return true
		case a.vals[i] < b.vals[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// evalExpr evaluates an expression abstractly by enumerating the
// concrete combinations of the registers it mentions, capped at
// maxCombos (Top beyond the cap or when any mentioned register is Top).
func (a *analyzer) evalExpr(ex lang.Expr, e env, regIdx map[string]int) vset {
	regs := dedupRegs(lang.Regs(ex, nil))
	combos := 1
	sets := make([]vset, len(regs))
	for i, r := range regs {
		ri, ok := regIdx[r]
		if !ok {
			sets[i] = single(0) // unknown registers read as 0
			continue
		}
		s := e[ri]
		if s.top {
			return topSet()
		}
		if s.isBottom() {
			return vset{}
		}
		sets[i] = s
		combos *= len(s.vals)
		if combos > a.maxCombos {
			return topSet()
		}
	}
	out := vset{}
	val := make(map[string]lang.Value, len(regs))
	lookup := func(name string) lang.Value { return val[name] }
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(regs) {
			out = join(out, single(ex.Eval(lookup)), a.maxVals)
			return !out.top
		}
		for _, v := range sets[i].vals {
			val[regs[i]] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// refine filters e through a condition: registers keep only the values
// that appear in some register combination where the condition is true
// (want=true) or false (want=false). Correlations between registers are
// lost in the projection, which is sound. When the combination space is
// too large or any mentioned register is Top, e is returned unrefined.
// The second return is false when no combination matches: the branch is
// dead.
func (a *analyzer) refine(cond lang.Expr, e env, regIdx map[string]int, want bool) (env, bool) {
	regs := dedupRegs(lang.Regs(cond, nil))
	if len(regs) == 0 {
		v := cond.Eval(func(string) lang.Value { return 0 })
		return e, (v != 0) == want
	}
	combos := 1
	sets := make([]vset, len(regs))
	for i, r := range regs {
		ri, ok := regIdx[r]
		if !ok {
			sets[i] = single(0)
			continue
		}
		s := e[ri]
		if s.top || s.isBottom() || combos*len(s.vals) > a.maxCombos {
			return e, true // unrefinable: keep everything, stay sound
		}
		sets[i] = s
		combos *= len(s.vals)
	}
	kept := make([]vset, len(regs))
	val := make(map[string]lang.Value, len(regs))
	lookup := func(name string) lang.Value { return val[name] }
	any := false
	var rec func(i int)
	rec = func(i int) {
		if i == len(regs) {
			if (cond.Eval(lookup) != 0) == want {
				any = true
				for j, r := range regs {
					kept[j] = join(kept[j], single(val[r]), a.maxVals)
				}
			}
			return
		}
		for _, v := range sets[i].vals {
			val[regs[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	if !any {
		return nil, false
	}
	ne := e.clone()
	for j, r := range regs {
		if ri, ok := regIdx[r]; ok {
			ne[ri] = kept[j]
		}
	}
	return ne, true
}

// mayBeZero reports whether the condition can evaluate to 0 under some
// combination of the abstract register values (or the abstraction lost
// enough that it cannot tell).
func (a *analyzer) mayBeZero(cond lang.Expr, e env, regIdx map[string]int) bool {
	_, live := a.refine(cond, e, regIdx, false)
	if !live {
		return false
	}
	// refine returning "live" can also mean "unrefinable": distinguish
	// a genuine falsifying combination from a Top fallback.
	regs := dedupRegs(lang.Regs(cond, nil))
	combos := 1
	for _, r := range regs {
		ri, ok := regIdx[r]
		if !ok {
			continue
		}
		s := e[ri]
		if s.top {
			return true
		}
		combos *= len(s.vals)
		if combos > a.maxCombos {
			return true
		}
	}
	return live
}

func dedupRegs(rs []string) []string {
	seen := map[string]bool{}
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
