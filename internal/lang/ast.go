package lang

// Program is a concurrent program: a set of shared variables followed by
// the code of a set of processes (paper Fig. 1). Shared arrays and the
// distinguished fence variable are extensions used by the SC target of the
// code-to-code translation and by the fence encoding respectively.
type Program struct {
	Name   string      // human-readable identifier, e.g. "peterson_0(3)"
	Vars   []string    // shared scalar variables, initialised to 0
	Arrays []ArrayDecl // shared arrays (SC target only)
	Procs  []*Proc
}

// ArrayDecl declares a fixed-size shared array, all cells initialised to
// the given value (0 unless stated otherwise).
type ArrayDecl struct {
	Name string
	Size int
	Init Value
}

// Proc is one process: a declaration of local registers followed by a
// sequence of statements. Register sets of distinct processes are
// disjoint by convention; the engines enforce per-process scoping, so
// reusing a register name across processes is harmless.
type Proc struct {
	Name string
	Regs []string
	Body []Stmt
}

// Stmt is a statement of the language. The Lbl field of each statement is
// the instruction label λ of the paper; empty labels are auto-generated
// during compilation.
type Stmt interface {
	stmt()
	// StmtLabel returns the user-supplied label, possibly empty.
	StmtLabel() string
}

// Read is the acquire read $r = x.
type Read struct {
	Lbl string
	Reg string // destination register
	Var string // shared variable
}

// Write is the release write x = e where e is an expression over
// registers. The paper restricts the right-hand side to a single
// register; allowing an expression is equivalent (the paper itself uses
// "x = c" as sugar) and keeps generated programs readable.
type Write struct {
	Lbl string
	Var string
	Val Expr
}

// CAS is the atomic compare-and-swap cas(x, old, new): if the chosen
// readable message of x holds value old, atomically replace the process's
// view of x with a fresh write of new glued immediately after it
// (timestamp t+1 in the paper). Old and New are expressions over
// registers (the paper uses registers $r1, $r2).
type CAS struct {
	Lbl string
	Var string
	Old Expr
	New Expr
}

// Fence is a release-acquire fence. Operationally it behaves as an RMW
// on a distinguished variable (paper Sec. 6): it reads the current tail
// of that variable's modification order, merges views, and appends a new
// glued write. Under SC it is a no-op.
type Fence struct {
	Lbl string
}

// Assign is the internal assignment $r = e.
type Assign struct {
	Lbl string
	Reg string
	Val Expr
}

// Nondet assigns to a register a nondeterministically chosen value in
// the inclusive range [Lo, Hi]. It corresponds to nondet_int of the
// paper's Algorithms 2 and 4 and to the "$r = v ∈ D" statement of the
// PCP reduction.
type Nondet struct {
	Lbl string
	Reg string
	Lo  Value
	Hi  Value
}

// Assume blocks the process forever if the condition is false
// (paper Sec. 3: "the process remains at λ thereafter"). Exploration
// engines prune the branch instead of spinning.
type Assume struct {
	Lbl  string
	Cond Expr
}

// Assert reports a violation if the condition is false. Reachability
// queries are encoded as assertion failures, as in VBMC.
type Assert struct {
	Lbl  string
	Cond Expr
}

// If is the conditional statement. An absent else branch is an empty
// slice.
type If struct {
	Lbl  string
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While is the iterative statement.
type While struct {
	Lbl  string
	Cond Expr
	Body []Stmt
}

// Term terminates the process. Reaching it is observable: the PCP
// reduction asks whether all processes reach term.
type Term struct {
	Lbl string
}

// LoadArr is the shared-array read $r = A[idx] (SC target only).
type LoadArr struct {
	Lbl   string
	Reg   string
	Arr   string
	Index Expr
}

// StoreArr is the shared-array write A[idx] = e (SC target only).
type StoreArr struct {
	Lbl   string
	Arr   string
	Index Expr
	Val   Expr
}

// Atomic executes its body without preemption (SC target only). The
// translation wraps the simulation of each source statement in an atomic
// block, mirroring Lazy CSeq's statement-granularity scheduling.
type Atomic struct {
	Lbl  string
	Body []Stmt
}

func (Read) stmt()     {}
func (Write) stmt()    {}
func (CAS) stmt()      {}
func (Fence) stmt()    {}
func (Assign) stmt()   {}
func (Nondet) stmt()   {}
func (Assume) stmt()   {}
func (Assert) stmt()   {}
func (If) stmt()       {}
func (While) stmt()    {}
func (Term) stmt()     {}
func (LoadArr) stmt()  {}
func (StoreArr) stmt() {}
func (Atomic) stmt()   {}

// StmtLabel implements Stmt.
func (s Read) StmtLabel() string     { return s.Lbl }
func (s Write) StmtLabel() string    { return s.Lbl }
func (s CAS) StmtLabel() string      { return s.Lbl }
func (s Fence) StmtLabel() string    { return s.Lbl }
func (s Assign) StmtLabel() string   { return s.Lbl }
func (s Nondet) StmtLabel() string   { return s.Lbl }
func (s Assume) StmtLabel() string   { return s.Lbl }
func (s Assert) StmtLabel() string   { return s.Lbl }
func (s If) StmtLabel() string       { return s.Lbl }
func (s While) StmtLabel() string    { return s.Lbl }
func (s Term) StmtLabel() string     { return s.Lbl }
func (s LoadArr) StmtLabel() string  { return s.Lbl }
func (s StoreArr) StmtLabel() string { return s.Lbl }
func (s Atomic) StmtLabel() string   { return s.Lbl }

// Proc lookup and common accessors.

// ProcNames returns the names of all processes in declaration order.
func (p *Program) ProcNames() []string {
	names := make([]string, len(p.Procs))
	for i, pr := range p.Procs {
		names[i] = pr.Name
	}
	return names
}

// ProcByName returns the process with the given name, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// HasVar reports whether name is a declared shared scalar variable.
func (p *Program) HasVar(name string) bool {
	for _, v := range p.Vars {
		if v == name {
			return true
		}
	}
	return false
}

// HasArray reports whether name is a declared shared array.
func (p *Program) HasArray(name string) bool {
	for _, a := range p.Arrays {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the program. Statements are immutable
// values, so sharing them across clones is safe; only the slices and
// process structs are copied.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:   p.Name,
		Vars:   append([]string(nil), p.Vars...),
		Arrays: append([]ArrayDecl(nil), p.Arrays...),
	}
	for _, pr := range p.Procs {
		q.Procs = append(q.Procs, &Proc{
			Name: pr.Name,
			Regs: append([]string(nil), pr.Regs...),
			Body: cloneStmts(pr.Body),
		})
	}
	return q
}

func cloneStmts(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		switch t := s.(type) {
		case If:
			t.Then = cloneStmts(t.Then)
			t.Else = cloneStmts(t.Else)
			out[i] = t
		case While:
			t.Body = cloneStmts(t.Body)
			out[i] = t
		case Atomic:
			t.Body = cloneStmts(t.Body)
			out[i] = t
		default:
			out[i] = s
		}
	}
	return out
}

// CountStmts returns the number of statements in the program, counting
// the bodies of structured statements recursively. Used to check the
// polynomial size bound of the translation.
func (p *Program) CountStmts() int {
	n := 0
	for _, pr := range p.Procs {
		n += countStmts(pr.Body)
	}
	return n
}

func countStmts(body []Stmt) int {
	n := 0
	for _, s := range body {
		n++
		switch t := s.(type) {
		case If:
			n += countStmts(t.Then) + countStmts(t.Else)
		case While:
			n += countStmts(t.Body)
		case Atomic:
			n += countStmts(t.Body)
		}
	}
	return n
}
