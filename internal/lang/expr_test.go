package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func evalWith(e Expr, regs map[string]Value) Value {
	return e.Eval(func(n string) Value { return regs[n] })
}

func TestEvalArithmetic(t *testing.T) {
	regs := map[string]Value{"a": 7, "b": -3}
	cases := []struct {
		e    Expr
		want Value
	}{
		{C(42), 42},
		{R("a"), 7},
		{R("missing"), 0},
		{Add(R("a"), R("b")), 4},
		{Sub(R("a"), C(10)), -3},
		{Binary{Op: OpMul, L: R("a"), R: R("b")}, -21},
		{Binary{Op: OpDiv, L: R("a"), R: C(2)}, 3},
		{Binary{Op: OpDiv, L: R("a"), R: C(0)}, 0}, // total semantics
		{Binary{Op: OpMod, L: R("a"), R: C(4)}, 3},
		{Binary{Op: OpMod, L: R("a"), R: C(0)}, 0},
		{Unary{Op: OpNeg, X: R("a")}, -7},
	}
	for _, c := range cases {
		if got := evalWith(c.e, regs); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	regs := map[string]Value{"x": 5, "y": 5, "z": 0}
	cases := []struct {
		e    Expr
		want Value
	}{
		{Eq(R("x"), R("y")), 1},
		{Ne(R("x"), R("y")), 0},
		{Lt(R("x"), C(6)), 1},
		{Le(R("x"), C(5)), 1},
		{Gt(R("x"), C(5)), 0},
		{Ge(R("x"), C(5)), 1},
		{And(C(1), C(2)), 1}, // non-zero is truthy, result normalised
		{And(C(0), C(1)), 0},
		{Or(C(0), C(0)), 0},
		{Or(C(0), C(7)), 1},
		{Not(R("z")), 1},
		{Not(R("x")), 0},
		{ConjoinAll(), 1},
		{ConjoinAll(C(1), C(1), C(0)), 0},
	}
	for _, c := range cases {
		if got := evalWith(c.e, regs); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not be reached when the
	// left is false — there are no side effects, but the operators must
	// still normalise to 0/1.
	if got := evalWith(And(C(0), C(99)), nil); got != 0 {
		t.Errorf("0 && 99 = %d", got)
	}
	if got := evalWith(Or(C(99), C(0)), nil); got != 1 {
		t.Errorf("99 || 0 = %d", got)
	}
}

func TestRegsCollection(t *testing.T) {
	e := And(Eq(R("a"), C(1)), Or(Lt(R("b"), R("c")), Not(R("a"))))
	got := Regs(e, nil)
	want := map[string]int{"a": 2, "b": 1, "c": 1}
	counts := map[string]int{}
	for _, r := range got {
		counts[r]++
	}
	for r, n := range want {
		if counts[r] != n {
			t.Errorf("register %s appears %d times, want %d", r, counts[r], n)
		}
	}
}

// randomExpr builds a random expression over the given registers.
func randomExpr(rng *rand.Rand, regs []string, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return C(Value(rng.Intn(21) - 10))
		}
		return R(regs[rng.Intn(len(regs))])
	}
	if rng.Intn(5) == 0 {
		return Unary{Op: UnOp(rng.Intn(2)), X: randomExpr(rng, regs, depth-1)}
	}
	return Binary{
		Op: BinOp(rng.Intn(13)),
		L:  randomExpr(rng, regs, depth-1),
		R:  randomExpr(rng, regs, depth-1),
	}
}

// TestExprEqualReflexive: structural equality is reflexive on random
// expressions and detects any single-node mutation at the root.
func TestExprEqualReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e := randomExpr(rng, []string{"a", "b"}, 4)
		if !ExprEqual(e, e) {
			t.Fatalf("expression not equal to itself: %s", e)
		}
		if ExprEqual(e, Add(e, C(1))) {
			t.Fatalf("distinct expressions reported equal: %s", e)
		}
	}
}

// TestEvalDeterministic (property): evaluation is a pure function of the
// register valuation.
func TestEvalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(a, b Value) bool {
		e := randomExpr(rng, []string{"a", "b"}, 5)
		regs := map[string]Value{"a": a, "b": b}
		return evalWith(e, regs) == evalWith(e, regs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestComparisonsAreBoolean (property): comparison and logic operators
// always yield 0 or 1.
func TestComparisonsAreBoolean(t *testing.T) {
	f := func(a, b Value) bool {
		regs := map[string]Value{"a": a, "b": b}
		for _, op := range []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr} {
			v := evalWith(Binary{Op: op, L: R("a"), R: R("b")}, regs)
			if v != 0 && v != 1 {
				return false
			}
		}
		n := evalWith(Not(R("a")), regs)
		return n == 0 || n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinOpString(t *testing.T) {
	for op, want := range map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "&&", OpOr: "||",
	} {
		if op.String() != want {
			t.Errorf("op %d prints %q, want %q", int(op), op.String(), want)
		}
	}
}
