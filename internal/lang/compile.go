package lang

import "fmt"

// Op identifies the kind of a flat instruction.
type Op int

// Flat instruction opcodes. Structured control flow (if/while) compiles
// to OpCJmp/OpJmp; everything else maps one-to-one from the AST.
const (
	OpReadVar     Op = iota // Reg = Var (acquire read)
	OpWriteVar              // Var = Val (release write)
	OpCASVar                // cas(Var, Old, Val)
	OpFenceOp               // fence
	OpAssignReg             // Reg = Val
	OpNondetReg             // Reg = nondet(Lo, Hi)
	OpAssumeCond            // assume(Cond)
	OpAssertCond            // assert(Cond)
	OpJmp                   // goto Next
	OpCJmp                  // if Cond goto Next else goto Else
	OpTermProc              // terminate process (self-loop sink)
	OpLoadArrEl             // Reg = Var[Index]
	OpStoreArrEl            // Var[Index] = Val
	OpAtomicBegin           // begin non-preemptible section
	OpAtomicEnd             // end non-preemptible section
)

// String returns a short mnemonic for the opcode.
func (op Op) String() string {
	switch op {
	case OpReadVar:
		return "read"
	case OpWriteVar:
		return "write"
	case OpCASVar:
		return "cas"
	case OpFenceOp:
		return "fence"
	case OpAssignReg:
		return "assign"
	case OpNondetReg:
		return "nondet"
	case OpAssumeCond:
		return "assume"
	case OpAssertCond:
		return "assert"
	case OpJmp:
		return "jmp"
	case OpCJmp:
		return "cjmp"
	case OpTermProc:
		return "term"
	case OpLoadArrEl:
		return "load"
	case OpStoreArrEl:
		return "store"
	case OpAtomicBegin:
		return "atomic{"
	case OpAtomicEnd:
		return "}atomic"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Instr is one flat instruction. Fields are used per-opcode; unused
// fields are zero. Next is the fallthrough / jump / true target; Else is
// the false target of OpCJmp.
type Instr struct {
	Op    Op
	Label string // source label, or generated "<proc>#<idx>"
	Reg   string // destination register
	Var   string // shared variable or array name
	Val   Expr   // value written / assigned / CAS new value
	Old   Expr   // CAS expected value
	Index Expr   // array index
	Cond  Expr   // assume/assert/cjmp condition
	Lo    Value  // nondet lower bound (inclusive)
	Hi    Value  // nondet upper bound (inclusive)
	Next  int
	Else  int
}

// CompiledProc is a process lowered to flat code. Entry is always 0 and
// Code always ends in at least one OpTermProc so every pc has a successor.
type CompiledProc struct {
	Name string
	Regs []string
	Code []Instr
}

// CompiledProgram is a program lowered to flat code, the form the RA and
// SC engines execute.
type CompiledProgram struct {
	Source *Program
	Name   string
	Vars   []string
	Arrays []ArrayDecl
	Procs  []*CompiledProc
}

// Compile validates p and lowers every process to flat code.
func Compile(p *Program) (*CompiledProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := &CompiledProgram{
		Source: p,
		Name:   p.Name,
		Vars:   p.Vars,
		Arrays: p.Arrays,
	}
	for _, pr := range p.Procs {
		c := &compiler{proc: pr.Name}
		c.stmts(pr.Body)
		// Implicit termination when the body falls off the end.
		c.emit(Instr{Op: OpTermProc})
		// Make every OpTermProc a self-loop sink and fill in labels.
		for i := range c.code {
			if c.code[i].Op == OpTermProc {
				c.code[i].Next = i
				c.code[i].Else = i
			}
			if c.code[i].Label == "" {
				c.code[i].Label = fmt.Sprintf("%s#%d", pr.Name, i)
			}
		}
		cp.Procs = append(cp.Procs, &CompiledProc{
			Name: pr.Name,
			Regs: append([]string(nil), pr.Regs...),
			Code: c.code,
		})
	}
	return cp, nil
}

// MustCompile is Compile that panics on error; for use with generated
// programs whose well-formedness is guaranteed by construction.
func MustCompile(p *Program) *CompiledProgram {
	cp, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return cp
}

type compiler struct {
	proc string
	code []Instr
	// atomic is the label of the innermost enclosing atomic section:
	// unlabelled instructions inside it inherit the section's label, so
	// every event of a translated block carries the block's (source)
	// label and witness lifting can attribute it.
	atomic string
}

func (c *compiler) emit(in Instr) int {
	if in.Label == "" {
		in.Label = c.atomic
	}
	in.Next = len(c.code) + 1 // default fallthrough; patched for jumps
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) stmts(body []Stmt) {
	for _, s := range body {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s Stmt) {
	switch t := s.(type) {
	case Read:
		c.emit(Instr{Op: OpReadVar, Label: t.Lbl, Reg: t.Reg, Var: t.Var})
	case Write:
		c.emit(Instr{Op: OpWriteVar, Label: t.Lbl, Var: t.Var, Val: t.Val})
	case CAS:
		c.emit(Instr{Op: OpCASVar, Label: t.Lbl, Var: t.Var, Old: t.Old, Val: t.New})
	case Fence:
		c.emit(Instr{Op: OpFenceOp, Label: t.Lbl})
	case Assign:
		c.emit(Instr{Op: OpAssignReg, Label: t.Lbl, Reg: t.Reg, Val: t.Val})
	case Nondet:
		c.emit(Instr{Op: OpNondetReg, Label: t.Lbl, Reg: t.Reg, Lo: t.Lo, Hi: t.Hi})
	case Assume:
		c.emit(Instr{Op: OpAssumeCond, Label: t.Lbl, Cond: t.Cond})
	case Assert:
		c.emit(Instr{Op: OpAssertCond, Label: t.Lbl, Cond: t.Cond})
	case If:
		br := c.emit(Instr{Op: OpCJmp, Label: t.Lbl, Cond: t.Cond})
		c.code[br].Next = len(c.code)
		c.stmts(t.Then)
		if len(t.Else) == 0 {
			c.code[br].Else = len(c.code)
			return
		}
		j := c.emit(Instr{Op: OpJmp})
		c.code[br].Else = len(c.code)
		c.stmts(t.Else)
		c.code[j].Next = len(c.code)
	case While:
		head := c.emit(Instr{Op: OpCJmp, Label: t.Lbl, Cond: t.Cond})
		c.code[head].Next = len(c.code)
		c.stmts(t.Body)
		back := c.emit(Instr{Op: OpJmp})
		c.code[back].Next = head
		c.code[head].Else = len(c.code)
	case Term:
		c.emit(Instr{Op: OpTermProc, Label: t.Lbl})
	case LoadArr:
		c.emit(Instr{Op: OpLoadArrEl, Label: t.Lbl, Reg: t.Reg, Var: t.Arr, Index: t.Index})
	case StoreArr:
		c.emit(Instr{Op: OpStoreArrEl, Label: t.Lbl, Var: t.Arr, Index: t.Index, Val: t.Val})
	case Atomic:
		c.emit(Instr{Op: OpAtomicBegin, Label: t.Lbl})
		outer := c.atomic
		if t.Lbl != "" {
			c.atomic = t.Lbl
		}
		c.stmts(t.Body)
		c.atomic = outer
		c.emit(Instr{Op: OpAtomicEnd})
	default:
		panic(fmt.Sprintf("lang: compile: unknown statement %T in process %s", s, c.proc))
	}
}

// GloballyVisible reports whether the instruction reads or writes shared
// state. Scheduling engines only consider preemptions at visible
// instructions (and at atomic-section boundaries); this implements the
// paper's optimisation that a process need not context-switch at purely
// local steps.
func (in *Instr) GloballyVisible() bool {
	switch in.Op {
	case OpReadVar, OpWriteVar, OpCASVar, OpFenceOp, OpLoadArrEl, OpStoreArrEl, OpAtomicBegin:
		return true
	}
	return false
}

// Terminated reports whether pc designates the termination sink.
func (cp *CompiledProc) Terminated(pc int) bool {
	return cp.Code[pc].Op == OpTermProc
}

// LabelAt returns the source-or-generated label of the instruction at pc.
func (cp *CompiledProc) LabelAt(pc int) string { return cp.Code[pc].Label }

// FindLabel returns the pc of the instruction with the given label, or -1.
func (cp *CompiledProc) FindLabel(label string) int {
	for i := range cp.Code {
		if cp.Code[i].Label == label {
			return i
		}
	}
	return -1
}

// ProcIndex returns the index of the named process, or -1.
func (cp *CompiledProgram) ProcIndex(name string) int {
	for i, pr := range cp.Procs {
		if pr.Name == name {
			return i
		}
	}
	return -1
}
