package lang

import (
	"strings"
	"testing"
)

func twoProcProgram() *Program {
	p := NewProgram("t", "x", "y")
	p.AddProc("p0", "r").Add(
		WriteC("x", 1),
		ReadS("r", "y"),
		IfS(Eq(R("r"), C(1)), WriteC("x", 2)),
	)
	p.AddProc("p1", "s").Add(
		WhileS(Eq(R("s"), C(0)),
			ReadS("s", "x"),
		),
		WriteC("y", 1),
	)
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := twoProcProgram().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := twoProcProgram().ValidateRA(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog func() *Program
	}{
		{"no processes", func() *Program { return NewProgram("e", "x") }},
		{"dup var", func() *Program {
			p := NewProgram("d", "x", "x")
			p.AddProc("p")
			return p
		}},
		{"dup proc", func() *Program {
			p := NewProgram("d", "x")
			p.AddProc("p")
			p.Procs = append(p.Procs, &Proc{Name: "p"})
			return p
		}},
		{"undeclared register", func() *Program {
			p := NewProgram("d", "x")
			p.AddProc("p").Add(ReadS("r", "x"))
			return p
		}},
		{"undeclared variable", func() *Program {
			p := NewProgram("d", "x")
			p.AddProc("p", "r").Add(ReadS("r", "nope"))
			return p
		}},
		{"register in nondet range empty", func() *Program {
			p := NewProgram("d", "x")
			p.AddProc("p", "r").Add(NondetS("r", 5, 2))
			return p
		}},
		{"array out of bounds constant", func() *Program {
			p := NewProgram("d")
			p.AddArray("a", 2, 0)
			p.AddProc("p", "r").Add(LoadS("r", "a", C(5)))
			return p
		}},
		{"zero-size array", func() *Program {
			p := NewProgram("d")
			p.AddArray("a", 0, 0)
			p.AddProc("p")
			return p
		}},
		{"dup register", func() *Program {
			p := NewProgram("d", "x")
			p.AddProc("p", "r", "r")
			return p
		}},
		{"nil statement", func() *Program {
			p := NewProgram("d", "x")
			pr := p.AddProc("p")
			pr.Body = append(pr.Body, nil)
			return p
		}},
	}
	for _, c := range cases {
		if err := c.prog().Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateRARejectsExtensions(t *testing.T) {
	p := NewProgram("d")
	p.AddArray("a", 2, 0)
	p.AddProc("p", "r").Add(LoadS("r", "a", C(0)))
	if err := p.ValidateRA(); err == nil {
		t.Error("arrays must be outside the RA fragment")
	}
	q := NewProgram("d", "x")
	q.AddProc("p").Add(AtomicS(WriteC("x", 1)))
	if err := q.ValidateRA(); err == nil {
		t.Error("atomic must be outside the RA fragment")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := twoProcProgram()
	q := p.Clone()
	q.Procs[0].Body[0] = WriteC("x", 99)
	q.Vars[0] = "zzz"
	if w := p.Procs[0].Body[0].(Write); w.Val.(Const).V != 1 {
		t.Error("clone shares statement slices with the original")
	}
	if p.Vars[0] != "x" {
		t.Error("clone shares the vars slice")
	}
}

func TestCountStmts(t *testing.T) {
	p := twoProcProgram()
	// p0: write, read, if, write-inside-if = 4; p1: while, read, write = 3.
	if n := p.CountStmts(); n != 7 {
		t.Errorf("CountStmts = %d, want 7", n)
	}
}

func TestCompileShape(t *testing.T) {
	cp := MustCompile(twoProcProgram())
	if len(cp.Procs) != 2 {
		t.Fatalf("expected 2 compiled procs")
	}
	for _, pr := range cp.Procs {
		last := pr.Code[len(pr.Code)-1]
		if last.Op != OpTermProc {
			t.Errorf("proc %s does not end in term", pr.Name)
		}
		for i, in := range pr.Code {
			if in.Op == OpTermProc && (in.Next != i || in.Else != i) {
				t.Errorf("proc %s: term at %d is not a self-loop", pr.Name, i)
			}
			if in.Next < 0 || in.Next >= len(pr.Code) {
				t.Errorf("proc %s: instr %d jumps out of range (%d)", pr.Name, i, in.Next)
			}
			if in.Op == OpCJmp && (in.Else < 0 || in.Else >= len(pr.Code)) {
				t.Errorf("proc %s: cjmp %d else out of range (%d)", pr.Name, i, in.Else)
			}
			if in.Label == "" {
				t.Errorf("proc %s: instr %d has no label", pr.Name, i)
			}
		}
	}
}

func TestCompileIfElseTargets(t *testing.T) {
	p := NewProgram("br", "x")
	p.AddProc("p", "r").Add(
		IfElseS(Eq(R("r"), C(0)),
			[]Stmt{WriteC("x", 1)},
			[]Stmt{WriteC("x", 2)},
		),
		WriteC("x", 3),
	)
	cp := MustCompile(p)
	code := cp.Procs[0].Code
	br := code[0]
	if br.Op != OpCJmp {
		t.Fatalf("expected cjmp first, got %s", br.Op)
	}
	// Then branch: write 1 then jump over else.
	then := code[br.Next]
	if then.Op != OpWriteVar || then.Val.(Const).V != 1 {
		t.Errorf("then target wrong: %v", then)
	}
	els := code[br.Else]
	if els.Op != OpWriteVar || els.Val.(Const).V != 2 {
		t.Errorf("else target wrong: %v", els)
	}
}

func TestFindLabelAndHelpers(t *testing.T) {
	p := NewProgram("lbl", "x")
	p.AddProc("p").Add(LabelS("start", WriteC("x", 1)), LabelS("fin", TermS()))
	cp := MustCompile(p)
	pr := cp.Procs[0]
	if pc := pr.FindLabel("start"); pc != 0 {
		t.Errorf("FindLabel(start) = %d", pc)
	}
	if pc := pr.FindLabel("fin"); pc != 1 || !pr.Terminated(pc) {
		t.Errorf("FindLabel(fin) = %d", pc)
	}
	if pr.FindLabel("nosuch") != -1 {
		t.Error("missing label must be -1")
	}
	if cp.ProcIndex("p") != 0 || cp.ProcIndex("q") != -1 {
		t.Error("ProcIndex wrong")
	}
}

func TestGloballyVisible(t *testing.T) {
	p := NewProgram("v", "x")
	p.AddArray("a", 2, 0)
	p.AddProc("p", "r").Add(
		ReadS("r", "x"),
		WriteC("x", 1),
		CASS("x", C(0), C(1)),
		FenceS(),
		LoadS("r", "a", C(0)),
		StoreS("a", C(0), C(1)),
		AssignS("r", C(1)),
		AssumeS(C(1)),
		AssertS(C(1)),
	)
	cp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	wantVisible := []bool{true, true, true, true, true, true, false, false, false}
	for i, want := range wantVisible {
		if got := cp.Procs[0].Code[i].GloballyVisible(); got != want {
			t.Errorf("instr %d (%s): visible=%v want %v", i, cp.Procs[0].Code[i].Op, got, want)
		}
	}
}

func TestUnrollBasic(t *testing.T) {
	p := NewProgram("u", "x")
	p.AddProc("p", "r").Add(
		WhileS(Eq(R("r"), C(0)), ReadS("r", "x")),
	)
	u2 := Unroll(p, 2)
	if MaxLoopDepth(u2) != 0 {
		t.Error("unrolled program must be loop-free")
	}
	if err := u2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shape: if cond { body; if cond { body; assume(!cond) } }.
	outer, ok := u2.Procs[0].Body[0].(If)
	if !ok {
		t.Fatalf("expected if, got %T", u2.Procs[0].Body[0])
	}
	if len(outer.Then) != 2 {
		t.Fatalf("outer then has %d stmts", len(outer.Then))
	}
	inner, ok := outer.Then[1].(If)
	if !ok {
		t.Fatalf("expected nested if, got %T", outer.Then[1])
	}
	if _, ok := inner.Then[1].(Assume); !ok {
		t.Fatalf("expected unwinding assumption, got %T", inner.Then[1])
	}
}

func TestUnrollZeroBound(t *testing.T) {
	p := NewProgram("u0", "x")
	p.AddProc("p", "r").Add(WhileS(Eq(R("r"), C(0)), ReadS("r", "x")))
	u := Unroll(p, 0)
	if _, ok := u.Procs[0].Body[0].(Assume); !ok {
		t.Fatalf("bound 0 must leave only the unwinding assumption, got %T", u.Procs[0].Body[0])
	}
}

func TestUnrollNested(t *testing.T) {
	p := NewProgram("un", "x")
	p.AddProc("p", "r", "s").Add(
		WhileS(Eq(R("r"), C(0)),
			WhileS(Eq(R("s"), C(0)), ReadS("s", "x")),
			ReadS("r", "x"),
		),
	)
	if d := MaxLoopDepth(p); d != 2 {
		t.Fatalf("MaxLoopDepth = %d, want 2", d)
	}
	u := Unroll(p, 3)
	if MaxLoopDepth(u) != 0 {
		t.Error("nested unroll left loops behind")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLoopDepthThroughBranches(t *testing.T) {
	p := NewProgram("ml", "x")
	p.AddProc("p", "r").Add(
		IfS(Eq(R("r"), C(0)),
			WhileS(Eq(R("r"), C(0)), ReadS("r", "x")),
		),
	)
	if d := MaxLoopDepth(p); d != 1 {
		t.Errorf("MaxLoopDepth = %d, want 1", d)
	}
}

func TestPrintContainsSyntax(t *testing.T) {
	p := twoProcProgram()
	s := p.String()
	for _, frag := range []string{"program t", "var x y", "proc p0", "reg r", "while", "done", "if", "fi", "end"} {
		if !strings.Contains(s, frag) {
			t.Errorf("printed program missing %q:\n%s", frag, s)
		}
	}
}
