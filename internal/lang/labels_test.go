package lang

import "testing"

// TestEnsureLabelsCoversEveryStatement: after EnsureLabels every
// statement — including those nested in if/while bodies — has a
// non-empty label, pre-existing labels survive untouched, and the
// original program is not mutated.
func TestEnsureLabelsCoversEveryStatement(t *testing.T) {
	p := NewProgram("t", "x", "y")
	pr := p.AddProc("p0", "a")
	pr.Add(
		WriteC("x", 1),
		LabelS("mine", ReadS("a", "y")),
		IfS(Eq(R("a"), C(1)),
			WriteC("y", 2),
		),
		WhileS(Lt(R("a"), C(3)),
			ReadS("a", "x"),
		),
	)

	q := EnsureLabels(p)

	var empty, mine int
	seen := map[string]int{}
	walkLabels(q.Procs[0].Body, func(lbl string) {
		if lbl == "" {
			empty++
		}
		if lbl == "mine" {
			mine++
		}
		seen[lbl]++
	})
	if empty != 0 {
		t.Errorf("%d statements left unlabelled", empty)
	}
	if mine != 1 {
		t.Errorf("pre-existing label occurs %d times, want 1", mine)
	}
	for lbl, n := range seen {
		if n > 1 {
			t.Errorf("label %q assigned %d times", lbl, n)
		}
	}

	origEmpty := 0
	walkLabels(p.Procs[0].Body, func(lbl string) {
		if lbl == "" {
			origEmpty++
		}
	})
	if origEmpty == 0 {
		t.Error("EnsureLabels mutated its input")
	}
}

// TestEnsureLabelsSkipsCollisions: generated names never collide with
// labels the process already uses.
func TestEnsureLabelsSkipsCollisions(t *testing.T) {
	p := NewProgram("t", "x")
	pr := p.AddProc("p0")
	pr.Add(
		LabelS("p0.0", WriteC("x", 1)),
		WriteC("x", 2),
	)
	q := EnsureLabels(p)
	var labels []string
	walkLabels(q.Procs[0].Body, func(lbl string) { labels = append(labels, lbl) })
	if labels[0] != "p0.0" {
		t.Errorf("explicit label rewritten to %q", labels[0])
	}
	if labels[1] == "p0.0" || labels[1] == "" {
		t.Errorf("generated label %q collides or is empty", labels[1])
	}
}

// TestCompileAtomicLabelInheritance: instructions compiled from a
// labelled atomic block inherit the block's label unless they carry
// their own — the property witness lifting relies on to attribute every
// instrumentation event of a translated block to its source statement.
func TestCompileAtomicLabelInheritance(t *testing.T) {
	p := NewProgram("t", "x")
	pr := p.AddProc("p0", "r")
	pr.Add(
		LabelS("blk", Atomic{Body: []Stmt{
			NondetS("r", 0, 1),
			WriteS("x", R("r")),
		}}),
		WriteC("x", 9),
	)
	cp := MustCompile(p)

	var blk, other int
	for _, in := range cp.Procs[0].Code {
		switch in.Label {
		case "blk":
			blk++
		case "":
			t.Errorf("instruction %s has no label", in.Op)
		default:
			other++
		}
	}
	// At least the nondet and the write inside the block inherit "blk";
	// the trailing write outside the block must not.
	if blk < 2 {
		t.Errorf("%d instructions carry the block label, want >= 2", blk)
	}
	if other == 0 {
		t.Error("no instruction outside the block kept its own label")
	}
}
