package lang

import "sort"

// Canon renders the program in a canonical concrete syntax, the stable
// form the verification daemon's content-addressed cache keys on
// (internal/cache). Two sources that differ only in ways that cannot
// change any verdict — whitespace and formatting, statement label
// names, the program name, the declaration order of shared variables
// and arrays, process and register names — canonicalise to the same
// string, so they hit the same cache entry.
//
// The transformations and why each is verdict-preserving:
//
//   - the program name is dropped: it is display metadata;
//   - statement labels are stripped: labels only name statements for
//     witness rendering (compilation auto-generates missing ones) and
//     are never referenced by the semantics;
//   - shared variable and array declarations are sorted by name: every
//     shared location initialises to its declared value regardless of
//     declaration order, and no engine is order-sensitive;
//   - processes are renamed positionally (p0, p1, ...): process names
//     are never referenced by statements, only displayed. Declaration
//     order is kept — it biases exploration order but not the
//     reachable outcome set;
//   - registers are alpha-renamed positionally per process (r0, r1,
//     ... in declaration order), rewriting every expression: register
//     scope is per-process and names are semantically arbitrary. This
//     also keeps the output inside the parser's grammar when a source
//     register shadows a keyword (benchmarks use a register named
//     "done").
//
// The output is in the parser's concrete syntax: Parse(Canon(p))
// succeeds and canonicalises to the same string (Canon is a fixed
// point; the parser round-trip test pins this over the litmus corpus
// and the benchmark suite).
func Canon(p *Program) string {
	return canonicalize(p).String()
}

// canonicalize returns the canonical clone Canon prints.
func canonicalize(p *Program) *Program {
	q := p.Clone()
	q.Name = ""
	sort.Strings(q.Vars)
	sort.Slice(q.Arrays, func(i, j int) bool { return q.Arrays[i].Name < q.Arrays[j].Name })
	for i, pr := range q.Procs {
		pr.Name = canonName("p", i)
		rn := make(map[string]string, len(pr.Regs))
		for j, r := range pr.Regs {
			rn[r] = canonName("r", j)
		}
		regs := make([]string, len(pr.Regs))
		for j := range pr.Regs {
			regs[j] = canonName("r", j)
		}
		pr.Regs = regs
		pr.Body = canonStmts(pr.Body, rn)
	}
	return q
}

// canonName is the canonical positional name: prefix + decimal index.
func canonName(prefix string, i int) string {
	if i == 0 {
		return prefix + "0"
	}
	var digits []byte
	for n := i; n > 0; n /= 10 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
	}
	return prefix + string(digits)
}

// reg maps a register reference through the rename map; references to
// undeclared registers (rejected by Validate, but Canon must not
// panic) keep their names.
func renameReg(rn map[string]string, name string) string {
	if n, ok := rn[name]; ok {
		return n
	}
	return name
}

// canonStmts strips labels and alpha-renames registers, recursively.
func canonStmts(body []Stmt, rn map[string]string) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		switch t := s.(type) {
		case Read:
			t.Lbl = ""
			t.Reg = renameReg(rn, t.Reg)
			out[i] = t
		case Write:
			t.Lbl = ""
			t.Val = renameExpr(rn, t.Val)
			out[i] = t
		case CAS:
			t.Lbl = ""
			t.Old = renameExpr(rn, t.Old)
			t.New = renameExpr(rn, t.New)
			out[i] = t
		case Fence:
			t.Lbl = ""
			out[i] = t
		case Assign:
			t.Lbl = ""
			t.Reg = renameReg(rn, t.Reg)
			t.Val = renameExpr(rn, t.Val)
			out[i] = t
		case Nondet:
			t.Lbl = ""
			t.Reg = renameReg(rn, t.Reg)
			out[i] = t
		case Assume:
			t.Lbl = ""
			t.Cond = renameExpr(rn, t.Cond)
			out[i] = t
		case Assert:
			t.Lbl = ""
			t.Cond = renameExpr(rn, t.Cond)
			out[i] = t
		case If:
			t.Lbl = ""
			t.Cond = renameExpr(rn, t.Cond)
			t.Then = canonStmts(t.Then, rn)
			t.Else = canonStmts(t.Else, rn)
			out[i] = t
		case While:
			t.Lbl = ""
			t.Cond = renameExpr(rn, t.Cond)
			t.Body = canonStmts(t.Body, rn)
			out[i] = t
		case Term:
			t.Lbl = ""
			out[i] = t
		case LoadArr:
			t.Lbl = ""
			t.Reg = renameReg(rn, t.Reg)
			t.Index = renameExpr(rn, t.Index)
			out[i] = t
		case StoreArr:
			t.Lbl = ""
			t.Index = renameExpr(rn, t.Index)
			t.Val = renameExpr(rn, t.Val)
			out[i] = t
		case Atomic:
			t.Lbl = ""
			t.Body = canonStmts(t.Body, rn)
			out[i] = t
		default:
			out[i] = s
		}
	}
	return out
}

// renameExpr rewrites register references in an expression.
func renameExpr(rn map[string]string, e Expr) Expr {
	switch t := e.(type) {
	case Reg:
		t.Name = renameReg(rn, t.Name)
		return t
	case Unary:
		t.X = renameExpr(rn, t.X)
		return t
	case Binary:
		t.L = renameExpr(rn, t.L)
		t.R = renameExpr(rn, t.R)
		return t
	default:
		return e
	}
}
