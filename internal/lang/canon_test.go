package lang

import (
	"strings"
	"testing"
)

// canonProg builds a small two-proc program with labels, an unsorted
// var list and custom proc names, via the builder API.
func canonProg(name, procA, procB string, labelled bool) *Program {
	lbl := func(s string) string {
		if labelled {
			return s
		}
		return ""
	}
	p := &Program{Name: name, Vars: []string{"y", "x"}}
	p.Procs = []*Proc{
		{Name: procA, Body: []Stmt{
			Write{Lbl: lbl("w1"), Var: "x", Val: C(1)},
			Write{Lbl: lbl("w2"), Var: "y", Val: C(1)},
		}},
		{Name: procB, Regs: []string{"a", "b"}, Body: []Stmt{
			Read{Lbl: lbl("r1"), Reg: "a", Var: "y"},
			Read{Lbl: lbl("r2"), Reg: "b", Var: "x"},
			Assert{Lbl: lbl("chk"), Cond: Not(And(Eq(R("a"), C(1)), Eq(R("b"), C(0))))},
		}},
	}
	return p
}

func TestCanonInvariance(t *testing.T) {
	a := Canon(canonProg("mp", "writer", "reader", true))
	b := Canon(canonProg("other_name", "t0", "t1", false))
	if a != b {
		t.Errorf("canonical forms differ for name/label/proc-name variants:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(a, "writer") || strings.Contains(a, "w1:") {
		t.Errorf("canonical form leaks source names/labels:\n%s", a)
	}
	// Vars must come out sorted regardless of declaration order.
	if strings.Contains(a, "var y x") {
		t.Errorf("canonical form kept unsorted var order:\n%s", a)
	}
}

func TestCanonDistinguishesPrograms(t *testing.T) {
	a := canonProg("mp", "p0", "p1", false)
	b := canonProg("mp", "p0", "p1", false)
	// Flip one constant: a genuinely different program must canonicalise
	// differently.
	w := b.Procs[0].Body[0].(Write)
	w.Val = C(2)
	b.Procs[0].Body[0] = w
	if Canon(a) == Canon(b) {
		t.Error("canonical form conflates programs differing in a constant")
	}
}

func TestCanonDoesNotMutate(t *testing.T) {
	p := canonProg("mp", "writer", "reader", true)
	before := p.String()
	_ = Canon(p)
	if p.String() != before {
		t.Error("Canon mutated its input")
	}
	if p.Name != "mp" || p.Procs[0].Name != "writer" {
		t.Error("Canon mutated program metadata")
	}
}

func TestCanonStructuredStmts(t *testing.T) {
	p := &Program{Vars: []string{"x"}}
	p.Procs = []*Proc{{Name: "q", Regs: []string{"r"}, Body: []Stmt{
		If{Lbl: "br", Cond: Eq(R("r"), C(0)),
			Then: []Stmt{Write{Lbl: "t", Var: "x", Val: C(1)}},
			Else: []Stmt{While{Lbl: "lp", Cond: Eq(R("r"), C(1)),
				Body: []Stmt{Read{Lbl: "rd", Reg: "r", Var: "x"}}}}},
	}}}
	c := Canon(p)
	for _, lbl := range []string{"br:", "t:", "lp:", "rd:"} {
		if strings.Contains(c, lbl) {
			t.Errorf("nested label %q survived canonicalisation:\n%s", lbl, c)
		}
	}
	p2 := &Program{Vars: []string{"x"}}
	p2.Procs = []*Proc{{Name: "z", Regs: []string{"r"}, Body: canonStmts(p.Procs[0].Body, nil)}}
	if Canon(p2) != c {
		t.Error("label-free clone canonicalises differently")
	}
}
