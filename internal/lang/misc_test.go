package lang

import (
	"strings"
	"testing"
)

func TestStmtMarkerMethods(t *testing.T) {
	// The statement marker methods exist to seal the interface; touch
	// each statement kind through the interface to keep them honest.
	stmts := []Stmt{
		Read{}, Write{}, CAS{}, Fence{}, Assign{}, Nondet{}, Assume{},
		Assert{}, If{}, While{}, Term{}, LoadArr{}, StoreArr{}, Atomic{},
	}
	for _, s := range stmts {
		s.stmt()
		_ = s.StmtLabel()
	}
}

func TestHasArray(t *testing.T) {
	p := NewProgram("h")
	p.AddArray("a", 1, 0)
	if !p.HasArray("a") || p.HasArray("b") {
		t.Error("HasArray lookup wrong")
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpReadVar: "read", OpWriteVar: "write", OpCASVar: "cas",
		OpFenceOp: "fence", OpAssignReg: "assign", OpNondetReg: "nondet",
		OpAssumeCond: "assume", OpAssertCond: "assert", OpJmp: "jmp",
		OpCJmp: "cjmp", OpTermProc: "term", OpLoadArrEl: "load",
		OpStoreArrEl: "store", OpAtomicBegin: "atomic{", OpAtomicEnd: "}atomic",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown op should print its number")
	}
}

func TestUnaryString(t *testing.T) {
	if got := Not(R("a")).(Unary).String(); got != "!$a" {
		t.Errorf("!$a prints %q", got)
	}
	if got := (Unary{Op: OpNeg, X: C(3)}).String(); got != "-3" {
		t.Errorf("-3 prints %q", got)
	}
	if got := (Unary{Op: OpNot, X: Add(R("a"), C(1))}).String(); got != "!($a + 1)" {
		t.Errorf("nested unary prints %q", got)
	}
}

func TestLabelAt(t *testing.T) {
	p := NewProgram("l", "x")
	p.AddProc("p").Add(LabelS("here", WriteC("x", 1)))
	cp := MustCompile(p)
	if got := cp.Procs[0].LabelAt(0); got != "here" {
		t.Errorf("LabelAt(0) = %q", got)
	}
}

func TestMustCompilePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on invalid programs")
		}
	}()
	MustCompile(NewProgram("empty"))
}

func TestPrintFenceAndNondetAndCAS(t *testing.T) {
	p := NewProgram("pr", "x")
	p.AddProc("p", "r").Add(
		FenceS(),
		NondetS("r", 1, 5),
		CASS("x", R("r"), Add(R("r"), C(1))),
		AssumeS(Eq(R("r"), C(1))),
		AssertS(Ne(R("r"), C(9))),
	)
	s := p.String()
	for _, frag := range []string{"fence", "nondet(1, 5)", "cas(x, $r, $r + 1)", "assume($r == 1)", "assert($r != 9)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("printed program missing %q:\n%s", frag, s)
		}
	}
}
