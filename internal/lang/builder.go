package lang

// Builder helpers: terse constructors so program generators (benchmarks,
// litmus tests, PCP reduction, code-to-code translation) read close to
// the paper's pseudo-code.

// NewProgram returns an empty program with the given name and shared
// variables.
func NewProgram(name string, vars ...string) *Program {
	return &Program{Name: name, Vars: vars}
}

// AddProc appends a process and returns it for body construction.
func (p *Program) AddProc(name string, regs ...string) *Proc {
	pr := &Proc{Name: name, Regs: regs}
	p.Procs = append(p.Procs, pr)
	return pr
}

// AddVar declares an additional shared variable (idempotent).
func (p *Program) AddVar(name string) {
	if !p.HasVar(name) {
		p.Vars = append(p.Vars, name)
	}
}

// AddArray declares a shared array.
func (p *Program) AddArray(name string, size int, init Value) {
	p.Arrays = append(p.Arrays, ArrayDecl{Name: name, Size: size, Init: init})
}

// AddReg declares an additional register on the process (idempotent).
func (pr *Proc) AddReg(name string) {
	for _, r := range pr.Regs {
		if r == name {
			return
		}
	}
	pr.Regs = append(pr.Regs, name)
}

// Add appends statements to the process body.
func (pr *Proc) Add(stmts ...Stmt) *Proc {
	pr.Body = append(pr.Body, stmts...)
	return pr
}

// Statement constructors.

// ReadS is $reg = x.
func ReadS(reg, x string) Stmt { return Read{Reg: reg, Var: x} }

// WriteS is x = e.
func WriteS(x string, e Expr) Stmt { return Write{Var: x, Val: e} }

// WriteC is x = c for a constant c (the paper's "x = c" sugar).
func WriteC(x string, c Value) Stmt { return Write{Var: x, Val: C(c)} }

// CASS is cas(x, old, new).
func CASS(x string, old, new Expr) Stmt { return CAS{Var: x, Old: old, New: new} }

// FenceS is a release-acquire fence.
func FenceS() Stmt { return Fence{} }

// AssignS is $reg = e.
func AssignS(reg string, e Expr) Stmt { return Assign{Reg: reg, Val: e} }

// NondetS is $reg = nondet(lo, hi).
func NondetS(reg string, lo, hi Value) Stmt { return Nondet{Reg: reg, Lo: lo, Hi: hi} }

// AssumeS is assume(e).
func AssumeS(e Expr) Stmt { return Assume{Cond: e} }

// AssertS is assert(e).
func AssertS(e Expr) Stmt { return Assert{Cond: e} }

// IfS is if c then ... fi.
func IfS(c Expr, then ...Stmt) Stmt { return If{Cond: c, Then: then} }

// IfElseS is if c then ... else ... fi.
func IfElseS(c Expr, then, els []Stmt) Stmt { return If{Cond: c, Then: then, Else: els} }

// WhileS is while c do ... done.
func WhileS(c Expr, body ...Stmt) Stmt { return While{Cond: c, Body: body} }

// TermS terminates the process.
func TermS() Stmt { return Term{} }

// LoadS is $reg = arr[idx].
func LoadS(reg, arr string, idx Expr) Stmt { return LoadArr{Reg: reg, Arr: arr, Index: idx} }

// StoreS is arr[idx] = e.
func StoreS(arr string, idx, e Expr) Stmt { return StoreArr{Arr: arr, Index: idx, Val: e} }

// AtomicS wraps statements in an atomic section.
func AtomicS(body ...Stmt) Stmt { return Atomic{Body: body} }

// LabelS attaches a label to a statement.
func LabelS(label string, s Stmt) Stmt {
	switch t := s.(type) {
	case Read:
		t.Lbl = label
		return t
	case Write:
		t.Lbl = label
		return t
	case CAS:
		t.Lbl = label
		return t
	case Fence:
		t.Lbl = label
		return t
	case Assign:
		t.Lbl = label
		return t
	case Nondet:
		t.Lbl = label
		return t
	case Assume:
		t.Lbl = label
		return t
	case Assert:
		t.Lbl = label
		return t
	case If:
		t.Lbl = label
		return t
	case While:
		t.Lbl = label
		return t
	case Term:
		t.Lbl = label
		return t
	case LoadArr:
		t.Lbl = label
		return t
	case StoreArr:
		t.Lbl = label
		return t
	case Atomic:
		t.Lbl = label
		return t
	}
	return s
}
