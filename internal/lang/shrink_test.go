package lang

import "testing"

func countWrites(p *Program, v string) int {
	n := 0
	var rec func(body []Stmt)
	rec = func(body []Stmt) {
		for _, s := range body {
			switch t := s.(type) {
			case Write:
				if t.Var == v {
					n++
				}
			case If:
				rec(t.Then)
				rec(t.Else)
			case While:
				rec(t.Body)
			case Atomic:
				rec(t.Body)
			}
		}
	}
	for _, pr := range p.Procs {
		rec(pr.Body)
	}
	return n
}

func TestShrinkToMinimalWitness(t *testing.T) {
	p := NewProgram("s", "x", "y")
	p.AddProc("p0", "r").Add(
		WriteC("y", 5),
		WriteC("x", 1),
		ReadS("r", "y"),
		AssignS("r", C(2)),
	)
	p.AddProc("p1", "q").Add(
		ReadS("q", "x"),
		WriteC("y", 7),
	)
	// Property: the program still writes x at least once.
	holds := func(q *Program) bool { return countWrites(q, "x") >= 1 }
	min := Shrink(p, holds)
	if !holds(min) {
		t.Fatal("shrinking broke the property")
	}
	if got := min.CountStmts(); got != 1 {
		t.Errorf("minimal witness has %d statements, want exactly the x write:\n%s", got, min)
	}
	if len(min.Procs) != 1 {
		t.Errorf("expected the second process to be dropped, got %d procs", len(min.Procs))
	}
	// The input is untouched.
	if p.CountStmts() != 6 {
		t.Error("Shrink mutated its input")
	}
}

func TestShrinkInsideBranches(t *testing.T) {
	p := NewProgram("sb", "x")
	p.AddProc("p0", "r").Add(
		IfElseS(Eq(R("r"), C(0)),
			[]Stmt{WriteC("x", 1), WriteC("x", 2)},
			[]Stmt{WriteC("x", 3)},
		),
		WhileS(Lt(R("r"), C(2)),
			AssignS("r", Add(R("r"), C(1))),
			WriteC("x", 4),
		),
	)
	holds := func(q *Program) bool { return countWrites(q, "x") >= 2 }
	min := Shrink(p, holds)
	if !holds(min) {
		t.Fatal("shrinking broke the property")
	}
	if got := countWrites(min, "x"); got != 2 {
		t.Errorf("minimal witness keeps %d writes, want 2:\n%s", got, min)
	}
}
