package lang

import (
	"fmt"
	"strings"
)

// Value is the data domain D of the paper. All shared variables and
// registers range over Value; booleans are encoded as 0 (false) and
// 1 (true), and any non-zero value is truthy in conditions.
type Value = int64

// Expr is an expression over registers and constants. Expressions never
// mention shared variables (paper Sec. 3): shared state is accessed only
// through read, write and cas statements.
type Expr interface {
	// Eval evaluates the expression in the given register valuation.
	// Unknown registers evaluate to 0, matching the paper's convention
	// that all registers are initialised to the special value 0.
	Eval(regs func(string) Value) Value
	// String renders the expression in the concrete syntax accepted by
	// the parser.
	String() string
}

// Const is an integer literal.
type Const struct{ V Value }

// Reg is a register reference. Names carry no "$" prefix internally;
// the printer and parser add/strip it.
type Reg struct{ Name string }

// UnOp is the operator of a Not/Neg expression.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota // logical negation
	OpNeg             // arithmetic negation
)

// Unary applies a unary operator to an operand.
type Unary struct {
	Op UnOp
	X  Expr
}

// BinOp is a binary operator.
type BinOp int

// Binary operators. Comparison and logical operators yield 0 or 1.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// Binary applies a binary operator to two operands.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (c Const) Eval(func(string) Value) Value { return c.V }

// Eval implements Expr.
func (r Reg) Eval(regs func(string) Value) Value { return regs(r.Name) }

// Eval implements Expr.
func (u Unary) Eval(regs func(string) Value) Value {
	x := u.X.Eval(regs)
	switch u.Op {
	case OpNot:
		if x == 0 {
			return 1
		}
		return 0
	case OpNeg:
		return -x
	}
	panic(fmt.Sprintf("lang: bad unary op %d", u.Op))
}

// Eval implements Expr.
func (b Binary) Eval(regs func(string) Value) Value {
	l := b.L.Eval(regs)
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd:
		if l == 0 {
			return 0
		}
		return truth(b.R.Eval(regs) != 0)
	case OpOr:
		if l != 0 {
			return 1
		}
		return truth(b.R.Eval(regs) != 0)
	}
	r := b.R.Eval(regs)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0 // total semantics: division by zero yields 0
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		return l % r
	case OpEq:
		return truth(l == r)
	case OpNe:
		return truth(l != r)
	case OpLt:
		return truth(l < r)
	case OpLe:
		return truth(l <= r)
	case OpGt:
		return truth(l > r)
	case OpGe:
		return truth(l >= r)
	}
	panic(fmt.Sprintf("lang: bad binary op %d", b.Op))
}

func truth(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("%d", c.V) }

// String implements Expr.
func (r Reg) String() string { return "$" + r.Name }

// String implements Expr.
func (u Unary) String() string {
	op := "!"
	if u.Op == OpNeg {
		op = "-"
	}
	return op + parenthesize(u.X)
}

// String implements Expr.
func (b Binary) String() string {
	return parenthesize(b.L) + " " + b.Op.String() + " " + parenthesize(b.R)
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case Const, Reg:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// String returns the concrete-syntax spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// Regs appends to dst the names of all registers mentioned in e and
// returns the extended slice.
func Regs(e Expr, dst []string) []string {
	switch x := e.(type) {
	case Const:
	case Reg:
		dst = append(dst, x.Name)
	case Unary:
		dst = Regs(x.X, dst)
	case Binary:
		dst = Regs(x.L, dst)
		dst = Regs(x.R, dst)
	}
	return dst
}

// Convenience constructors used heavily by the benchmark generators and
// the code-to-code translation.

// C returns a constant expression.
func C(v Value) Expr { return Const{V: v} }

// R returns a register reference expression.
func R(name string) Expr { return Reg{Name: name} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return Binary{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return Binary{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return Binary{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return Binary{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return Binary{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return Binary{Op: OpGe, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) Expr { return Binary{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Binary{Op: OpSub, L: l, R: r} }

// And returns l && r.
func And(l, r Expr) Expr { return Binary{Op: OpAnd, L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) Expr { return Binary{Op: OpOr, L: l, R: r} }

// Not returns !x.
func Not(x Expr) Expr { return Unary{Op: OpNot, X: x} }

// ConjoinAll returns the conjunction of all given expressions, or
// the constant 1 when the list is empty.
func ConjoinAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return C(1)
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = And(out, e)
	}
	return out
}

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case Const:
		y, ok := b.(Const)
		return ok && x.V == y.V
	case Reg:
		y, ok := b.(Reg)
		return ok && x.Name == y.Name
	case Unary:
		y, ok := b.(Unary)
		return ok && x.Op == y.Op && ExprEqual(x.X, y.X)
	case Binary:
		y, ok := b.(Binary)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	}
	return false
}

// joinStrings is a tiny helper shared by the printers.
func joinStrings(xs []string, sep string) string { return strings.Join(xs, sep) }
