// Package lang defines the concurrent programming language of the paper
// "Verification of Programs under the Release-Acquire Semantics"
// (PLDI 2019), Figure 1, together with the extensions needed by the
// view-bounded translation and the benchmark suite:
//
//   - assert(exp): encodes the reachability query as an assertion failure,
//     as VBMC does for C programs.
//   - fence: a release-acquire fence, modelled as an RMW on a distinguished
//     variable (paper Sec. 6, following Lahav et al. POPL'16).
//   - $r = nondet(lo, hi): nondeterministic integer choice, used by the
//     translated SC programs (Algorithms 2 and 4 of the paper) and by the
//     PCP reduction's "$r = v ∈ D" statements.
//   - shared arrays and atomic blocks: the target features of the
//     code-to-code translation (message_store, avail_x, atomic init).
//
// A Program is a tree-shaped AST. Analysis engines do not interpret the
// tree directly; they run the flat instruction form produced by Compile,
// which turns structured control flow into conditional jumps so that a
// process state is a single program counter (cheap to hash and compare
// during state-space exploration).
//
// The subset of the language accepted by the RA semantics (scalars only,
// no arrays, no atomic blocks) is checked by ValidateRA.
package lang
