package lang

// Unroll returns a copy of the program in which every while loop is
// unrolled at most bound times, in the style of bounded model checkers
// (paper Sec. 6: CBMC "requires that all loops have a finite upper
// run-time bound ... handled by unrolling each loop L times").
//
//	while c do B done
//
// becomes bound nested copies of
//
//	if c then B ... fi
//
// followed by assume(!c): executions that would need more than bound
// iterations are pruned, exactly as CBMC's unwinding assumptions do.
// Nested loops are unrolled recursively with the same bound, so the
// blow-up is bound^depth, matching the tools compared in the paper.
func Unroll(p *Program, bound int) *Program {
	if bound < 0 {
		bound = 0
	}
	q := &Program{
		Name:   p.Name,
		Vars:   append([]string(nil), p.Vars...),
		Arrays: append([]ArrayDecl(nil), p.Arrays...),
	}
	for _, pr := range p.Procs {
		q.Procs = append(q.Procs, &Proc{
			Name: pr.Name,
			Regs: append([]string(nil), pr.Regs...),
			Body: unrollStmts(pr.Body, bound),
		})
	}
	return q
}

func unrollStmts(body []Stmt, bound int) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch t := s.(type) {
		case While:
			out = append(out, unrollWhile(t, bound))
		case If:
			t.Then = unrollStmts(t.Then, bound)
			t.Else = unrollStmts(t.Else, bound)
			out = append(out, t)
		case Atomic:
			t.Body = unrollStmts(t.Body, bound)
			out = append(out, t)
		default:
			out = append(out, s)
		}
	}
	return out
}

func unrollWhile(w While, bound int) Stmt {
	if bound == 0 {
		return Assume{Lbl: w.Lbl, Cond: Not(w.Cond)}
	}
	body := unrollStmts(w.Body, bound)
	// Innermost: the unwinding assumption.
	var acc []Stmt = []Stmt{Assume{Cond: Not(w.Cond)}}
	for i := 0; i < bound; i++ {
		iter := make([]Stmt, 0, len(body)+1)
		iter = append(iter, cloneStmts(body)...)
		iter = append(iter, acc...)
		acc = []Stmt{If{Cond: w.Cond, Then: iter}}
	}
	first := acc[0].(If)
	first.Lbl = w.Lbl
	return first
}

// MaxLoopDepth returns the maximal nesting depth of while loops in the
// program (0 when loop-free). Loop-free programs can be explored
// exhaustively without unrolling.
func MaxLoopDepth(p *Program) int {
	max := 0
	for _, pr := range p.Procs {
		if d := loopDepth(pr.Body); d > max {
			max = d
		}
	}
	return max
}

func loopDepth(body []Stmt) int {
	max := 0
	for _, s := range body {
		d := 0
		switch t := s.(type) {
		case While:
			d = 1 + loopDepth(t.Body)
		case If:
			d = loopDepth(t.Then)
			if e := loopDepth(t.Else); e > d {
				d = e
			}
		case Atomic:
			d = loopDepth(t.Body)
		}
		if d > max {
			max = d
		}
	}
	return max
}

// StripAsserts returns a copy of the program with every assert removed.
// Outcome-set analyses (robustness, oracle differentials) use it so that
// assertion-violating executions run to completion and their outcomes
// are counted rather than cut short.
func StripAsserts(p *Program) *Program {
	q := p.Clone()
	for _, pr := range q.Procs {
		pr.Body = stripAsserts(pr.Body)
	}
	return q
}

func stripAsserts(body []Stmt) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch t := s.(type) {
		case Assert:
			// drop
		case If:
			t.Then = stripAsserts(t.Then)
			t.Else = stripAsserts(t.Else)
			out = append(out, t)
		case While:
			t.Body = stripAsserts(t.Body)
			out = append(out, t)
		case Atomic:
			t.Body = stripAsserts(t.Body)
			out = append(out, t)
		default:
			out = append(out, s)
		}
	}
	return out
}
