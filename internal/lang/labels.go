package lang

import "fmt"

// EnsureLabels returns a copy of p in which every statement carries a
// non-empty label, generating "<proc>.<n>" names for unlabelled ones
// (skipping names the process already uses). Witness lifting needs
// this: the translation names each emitted block after its source
// statement's label, so labelling the source before translating makes
// every event of the translated program attributable to a unique source
// statement.
func EnsureLabels(p *Program) *Program {
	q := p.Clone()
	for _, pr := range q.Procs {
		used := map[string]bool{}
		walkLabels(pr.Body, func(lbl string) {
			if lbl != "" {
				used[lbl] = true
			}
		})
		n := 0
		fresh := func() string {
			for {
				lbl := fmt.Sprintf("%s.%d", pr.Name, n)
				n++
				if !used[lbl] {
					used[lbl] = true
					return lbl
				}
			}
		}
		ensureLabels(pr.Body, fresh)
	}
	return q
}

func walkLabels(body []Stmt, f func(string)) {
	for _, s := range body {
		f(s.StmtLabel())
		switch t := s.(type) {
		case If:
			walkLabels(t.Then, f)
			walkLabels(t.Else, f)
		case While:
			walkLabels(t.Body, f)
		case Atomic:
			walkLabels(t.Body, f)
		}
	}
}

// ensureLabels labels the statements of body in place (the slice is
// owned by the clone).
func ensureLabels(body []Stmt, fresh func() string) {
	for i, s := range body {
		if s.StmtLabel() == "" {
			s = LabelS(fresh(), s)
			body[i] = s
		}
		switch t := s.(type) {
		case If:
			ensureLabels(t.Then, fresh)
			ensureLabels(t.Else, fresh)
		case While:
			ensureLabels(t.Body, fresh)
		case Atomic:
			ensureLabels(t.Body, fresh)
		}
	}
}
