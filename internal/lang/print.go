package lang

import (
	"fmt"
	"strings"
)

// String renders the program in the concrete syntax accepted by the
// parser, so that Parse(p.String()) reproduces p (modulo formatting).
func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	if len(p.Vars) > 0 {
		fmt.Fprintf(&b, "var %s\n", joinStrings(p.Vars, " "))
	}
	for _, a := range p.Arrays {
		if a.Init != 0 {
			fmt.Fprintf(&b, "array %s[%d] init %d\n", a.Name, a.Size, a.Init)
		} else {
			fmt.Fprintf(&b, "array %s[%d]\n", a.Name, a.Size)
		}
	}
	for _, pr := range p.Procs {
		b.WriteString("\n")
		fmt.Fprintf(&b, "proc %s\n", pr.Name)
		if len(pr.Regs) > 0 {
			fmt.Fprintf(&b, "  reg %s\n", joinStrings(pr.Regs, " "))
		}
		writeStmts(&b, pr.Body, 1)
		b.WriteString("end\n")
	}
	return b.String()
}

func writeStmts(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		prefix := ind
		if l := s.StmtLabel(); l != "" {
			prefix = ind + l + ": "
		}
		switch t := s.(type) {
		case Read:
			fmt.Fprintf(b, "%s$%s = %s\n", prefix, t.Reg, t.Var)
		case Write:
			fmt.Fprintf(b, "%s%s = %s\n", prefix, t.Var, t.Val)
		case CAS:
			fmt.Fprintf(b, "%scas(%s, %s, %s)\n", prefix, t.Var, t.Old, t.New)
		case Fence:
			fmt.Fprintf(b, "%sfence\n", prefix)
		case Assign:
			fmt.Fprintf(b, "%s$%s = %s\n", prefix, t.Reg, t.Val)
		case Nondet:
			fmt.Fprintf(b, "%s$%s = nondet(%d, %d)\n", prefix, t.Reg, t.Lo, t.Hi)
		case Assume:
			fmt.Fprintf(b, "%sassume(%s)\n", prefix, t.Cond)
		case Assert:
			fmt.Fprintf(b, "%sassert(%s)\n", prefix, t.Cond)
		case If:
			fmt.Fprintf(b, "%sif %s then\n", prefix, t.Cond)
			writeStmts(b, t.Then, depth+1)
			if len(t.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				writeStmts(b, t.Else, depth+1)
			}
			fmt.Fprintf(b, "%sfi\n", ind)
		case While:
			fmt.Fprintf(b, "%swhile %s do\n", prefix, t.Cond)
			writeStmts(b, t.Body, depth+1)
			fmt.Fprintf(b, "%sdone\n", ind)
		case Term:
			fmt.Fprintf(b, "%sterm\n", prefix)
		case LoadArr:
			fmt.Fprintf(b, "%s$%s = %s[%s]\n", prefix, t.Reg, t.Arr, t.Index)
		case StoreArr:
			fmt.Fprintf(b, "%s%s[%s] = %s\n", prefix, t.Arr, t.Index, t.Val)
		case Atomic:
			fmt.Fprintf(b, "%satomic {\n", prefix)
			writeStmts(b, t.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		default:
			fmt.Fprintf(b, "%s<unknown stmt %T>\n", prefix, s)
		}
	}
}
