package lang

// Shrink greedily minimises a program while the given property holds,
// in the style of delta debugging: it repeatedly tries to drop whole
// processes, then individual statements (innermost first), re-testing
// the property after each removal, until a fixed point. The property is
// assumed to hold on the input; the result is 1-minimal in the sense
// that removing any single remaining statement breaks the property.
//
// Shrink never mutates its input. It is used by the differential fuzzer
// to present small witnesses when two semantics implementations
// disagree.
func Shrink(p *Program, holds func(*Program) bool) *Program {
	cur := p.Clone()
	for changed := true; changed; {
		changed = false
		// Try dropping whole processes (keep at least one).
		for i := 0; i < len(cur.Procs) && len(cur.Procs) > 1; i++ {
			cand := cur.Clone()
			cand.Procs = append(cand.Procs[:i], cand.Procs[i+1:]...)
			if cand.Validate() == nil && holds(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Try dropping single statements at every position.
		for pi := range cur.Procs {
			paths := statementPaths(cur.Procs[pi].Body, nil)
			for _, path := range paths {
				cand := cur.Clone()
				cand.Procs[pi].Body = removeAt(cand.Procs[pi].Body, path)
				if cand.Validate() == nil && holds(cand) {
					cur = cand
					changed = true
					break // paths are stale after a removal
				}
			}
		}
	}
	return cur
}

// statementPaths lists every statement position as an index path into
// the (possibly nested) body, deepest-first so inner statements are
// tried before their containers.
func statementPaths(body []Stmt, prefix []int) [][]int {
	var out [][]int
	for i, s := range body {
		path := append(append([]int(nil), prefix...), i)
		switch t := s.(type) {
		case If:
			out = append(out, statementPaths(t.Then, append(path, 0))...)
			out = append(out, statementPaths(t.Else, append(path, 1))...)
		case While:
			out = append(out, statementPaths(t.Body, append(path, 0))...)
		case Atomic:
			out = append(out, statementPaths(t.Body, append(path, 0))...)
		}
		out = append(out, path)
	}
	return out
}

// removeAt removes the statement at the index path. Paths into branch
// bodies interleave an arm selector: [i, arm, j, ...] descends into
// statement i's arm (0 = then/body, 1 = else) at position j.
func removeAt(body []Stmt, path []int) []Stmt {
	i := path[0]
	if i >= len(body) {
		return body // stale path; no-op
	}
	if len(path) == 1 {
		out := make([]Stmt, 0, len(body)-1)
		out = append(out, body[:i]...)
		out = append(out, body[i+1:]...)
		return out
	}
	arm, rest := path[1], path[2:]
	out := append([]Stmt(nil), body...)
	switch t := out[i].(type) {
	case If:
		if arm == 0 {
			t.Then = removeAt(t.Then, rest)
		} else {
			t.Else = removeAt(t.Else, rest)
		}
		out[i] = t
	case While:
		t.Body = removeAt(t.Body, rest)
		out[i] = t
	case Atomic:
		t.Body = removeAt(t.Body, rest)
		out[i] = t
	}
	return out
}
