package lang

import (
	"strings"
	"testing"
)

func TestLabelSAllStatementKinds(t *testing.T) {
	stmts := []Stmt{
		ReadS("r", "x"), WriteC("x", 1), CASS("x", C(0), C(1)), FenceS(),
		AssignS("r", C(1)), NondetS("r", 0, 1), AssumeS(C(1)), AssertS(C(1)),
		IfS(C(1)), WhileS(C(0)), TermS(),
		LoadS("r", "a", C(0)), StoreS("a", C(0), C(1)), AtomicS(),
	}
	for i, s := range stmts {
		labelled := LabelS("L", s)
		if labelled.StmtLabel() != "L" {
			t.Errorf("statement %d (%T): label not attached", i, s)
		}
	}
}

func TestBuilderIdempotence(t *testing.T) {
	p := NewProgram("b", "x")
	p.AddVar("x")
	p.AddVar("y")
	p.AddVar("y")
	if len(p.Vars) != 2 {
		t.Errorf("AddVar not idempotent: %v", p.Vars)
	}
	pr := p.AddProc("p", "r")
	pr.AddReg("r")
	pr.AddReg("s")
	pr.AddReg("s")
	if len(pr.Regs) != 2 {
		t.Errorf("AddReg not idempotent: %v", pr.Regs)
	}
}

func TestProcNamesAndLookup(t *testing.T) {
	p := NewProgram("b", "x")
	p.AddProc("alpha")
	p.AddProc("beta")
	names := p.ProcNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("ProcNames = %v", names)
	}
	if p.ProcByName("beta") == nil || p.ProcByName("gamma") != nil {
		t.Error("ProcByName lookup wrong")
	}
}

func TestPrintArraysAndAtomic(t *testing.T) {
	p := NewProgram("pa")
	p.AddArray("a", 3, 0)
	p.AddArray("b", 2, 9)
	p.AddProc("p0", "r").Add(
		AtomicS(LoadS("r", "a", C(1)), StoreS("b", C(0), R("r"))),
		LabelS("end", TermS()),
	)
	s := p.String()
	for _, frag := range []string{"array a[3]", "array b[2] init 9", "atomic {", "$r = a[1]", "b[0] = $r", "end: term"} {
		if !strings.Contains(s, frag) {
			t.Errorf("printed program missing %q:\n%s", frag, s)
		}
	}
}

func TestWriteSAndHelpers(t *testing.T) {
	w := WriteS("x", Add(R("r"), C(1))).(Write)
	if w.Var != "x" {
		t.Errorf("WriteS target %q", w.Var)
	}
	ie := IfElseS(C(1), []Stmt{TermS()}, []Stmt{FenceS()}).(If)
	if len(ie.Then) != 1 || len(ie.Else) != 1 {
		t.Error("IfElseS branches wrong")
	}
}

func TestCloneCopiesArrays(t *testing.T) {
	p := NewProgram("c")
	p.AddArray("a", 2, 0)
	p.AddProc("p0")
	q := p.Clone()
	q.Arrays[0].Size = 99
	if p.Arrays[0].Size != 2 {
		t.Error("Clone shares the arrays slice")
	}
}
