package lang

import (
	"errors"
	"fmt"
)

// Validate checks static well-formedness of a program: distinct
// variable/array/process names, registers declared before use, shared
// names resolved, expressions free of shared variables (they are register
// expressions by construction of the AST, so only register scoping is
// checked), and array indices in declared bounds when constant.
func (p *Program) Validate() error {
	if len(p.Procs) == 0 {
		return errors.New("lang: program has no processes")
	}
	seen := map[string]string{}
	for _, v := range p.Vars {
		if v == "" {
			return errors.New("lang: empty shared variable name")
		}
		if prev, ok := seen[v]; ok {
			return fmt.Errorf("lang: name %q declared twice (%s and shared var)", v, prev)
		}
		seen[v] = "shared var"
	}
	for _, a := range p.Arrays {
		if a.Name == "" {
			return errors.New("lang: empty array name")
		}
		if a.Size <= 0 {
			return fmt.Errorf("lang: array %q has non-positive size %d", a.Name, a.Size)
		}
		if prev, ok := seen[a.Name]; ok {
			return fmt.Errorf("lang: name %q declared twice (%s and array)", a.Name, prev)
		}
		seen[a.Name] = "array"
	}
	procSeen := map[string]bool{}
	for _, pr := range p.Procs {
		if pr.Name == "" {
			return errors.New("lang: empty process name")
		}
		if procSeen[pr.Name] {
			return fmt.Errorf("lang: process %q declared twice", pr.Name)
		}
		procSeen[pr.Name] = true
		regs := map[string]bool{}
		for _, r := range pr.Regs {
			if r == "" {
				return fmt.Errorf("lang: process %q declares an empty register name", pr.Name)
			}
			if regs[r] {
				return fmt.Errorf("lang: process %q declares register %q twice", pr.Name, r)
			}
			regs[r] = true
		}
		v := &validator{prog: p, proc: pr, regs: regs}
		if err := v.stmts(pr.Body); err != nil {
			return err
		}
	}
	return nil
}

// ValidateRA additionally checks that the program stays in the fragment
// the RA semantics is defined on (paper Fig. 1 plus fence/nondet/assert):
// no shared arrays, no array accesses, no atomic blocks.
func (p *Program) ValidateRA() error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(p.Arrays) > 0 {
		return fmt.Errorf("lang: program %q declares arrays; not in the RA fragment", p.Name)
	}
	for _, pr := range p.Procs {
		if err := checkRAFragment(pr.Name, pr.Body); err != nil {
			return err
		}
	}
	return nil
}

func checkRAFragment(proc string, body []Stmt) error {
	for _, s := range body {
		switch t := s.(type) {
		case LoadArr, StoreArr, Atomic:
			return fmt.Errorf("lang: process %q uses %T; not in the RA fragment", proc, s)
		case If:
			if err := checkRAFragment(proc, t.Then); err != nil {
				return err
			}
			if err := checkRAFragment(proc, t.Else); err != nil {
				return err
			}
		case While:
			if err := checkRAFragment(proc, t.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

type validator struct {
	prog *Program
	proc *Proc
	regs map[string]bool
}

func (v *validator) stmts(body []Stmt) error {
	for _, s := range body {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt) error {
	switch t := s.(type) {
	case Read:
		if err := v.reg(t.Reg); err != nil {
			return err
		}
		return v.sharedVar(t.Var)
	case Write:
		if err := v.sharedVar(t.Var); err != nil {
			return err
		}
		return v.expr(t.Val)
	case CAS:
		if err := v.sharedVar(t.Var); err != nil {
			return err
		}
		if err := v.expr(t.Old); err != nil {
			return err
		}
		return v.expr(t.New)
	case Fence:
		return nil
	case Assign:
		if err := v.reg(t.Reg); err != nil {
			return err
		}
		return v.expr(t.Val)
	case Nondet:
		if err := v.reg(t.Reg); err != nil {
			return err
		}
		if t.Lo > t.Hi {
			return fmt.Errorf("lang: process %q: nondet range [%d,%d] is empty", v.proc.Name, t.Lo, t.Hi)
		}
		return nil
	case Assume:
		return v.expr(t.Cond)
	case Assert:
		return v.expr(t.Cond)
	case If:
		if err := v.expr(t.Cond); err != nil {
			return err
		}
		if err := v.stmts(t.Then); err != nil {
			return err
		}
		return v.stmts(t.Else)
	case While:
		if err := v.expr(t.Cond); err != nil {
			return err
		}
		return v.stmts(t.Body)
	case Term:
		return nil
	case LoadArr:
		if err := v.reg(t.Reg); err != nil {
			return err
		}
		if err := v.array(t.Arr, t.Index); err != nil {
			return err
		}
		return v.expr(t.Index)
	case StoreArr:
		if err := v.array(t.Arr, t.Index); err != nil {
			return err
		}
		if err := v.expr(t.Index); err != nil {
			return err
		}
		return v.expr(t.Val)
	case Atomic:
		return v.stmts(t.Body)
	case nil:
		return fmt.Errorf("lang: process %q contains a nil statement", v.proc.Name)
	}
	return fmt.Errorf("lang: process %q: unknown statement type %T", v.proc.Name, s)
}

func (v *validator) reg(name string) error {
	if !v.regs[name] {
		return fmt.Errorf("lang: process %q uses undeclared register $%s", v.proc.Name, name)
	}
	return nil
}

func (v *validator) sharedVar(name string) error {
	if !v.prog.HasVar(name) {
		return fmt.Errorf("lang: process %q accesses undeclared shared variable %q", v.proc.Name, name)
	}
	return nil
}

func (v *validator) array(name string, index Expr) error {
	var decl *ArrayDecl
	for i := range v.prog.Arrays {
		if v.prog.Arrays[i].Name == name {
			decl = &v.prog.Arrays[i]
			break
		}
	}
	if decl == nil {
		return fmt.Errorf("lang: process %q accesses undeclared array %q", v.proc.Name, name)
	}
	if c, ok := index.(Const); ok {
		if c.V < 0 || c.V >= Value(decl.Size) {
			return fmt.Errorf("lang: process %q indexes %s[%d] out of bounds (size %d)",
				v.proc.Name, name, c.V, decl.Size)
		}
	}
	return nil
}

func (v *validator) expr(e Expr) error {
	if e == nil {
		return fmt.Errorf("lang: process %q contains a nil expression", v.proc.Name)
	}
	for _, r := range Regs(e, nil) {
		if err := v.reg(r); err != nil {
			return err
		}
	}
	return nil
}
