package fp

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

// randKeys returns n random keys of varying length from a seeded
// source, with deliberate duplicates (every fourth key repeats an
// earlier one) so budget-subsumption paths are exercised.
func randKeys(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 && i > 0 {
			keys = append(keys, keys[rng.Intn(i)])
			continue
		}
		k := make([]byte, 8+rng.Intn(40))
		rng.Read(k)
		keys = append(keys, k)
	}
	return keys
}

// TestShardedSetSerialParity drives the same random (key, budget)
// sequence through Set and ShardedSet in both modes: every Visit
// answer, the final Len and the final ApproxBytes must agree — the
// sharding is pure partitioning, never a semantic change.
func TestShardedSetSerialParity(t *testing.T) {
	for _, exact := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		serial := NewSet(exact)
		sharded := NewShardedSet(exact)
		for _, k := range randKeys(42, 5000) {
			b := rng.Intn(4)
			sv := serial.Visit(k, b)
			pv := sharded.Visit(k, b)
			if sv != pv {
				t.Fatalf("exact=%v: Visit(%x, %d) = %v (sharded) vs %v (serial)", exact, k, b, pv, sv)
			}
		}
		if serial.Len() != sharded.Len() {
			t.Errorf("exact=%v: Len %d (sharded) vs %d (serial)", exact, sharded.Len(), serial.Len())
		}
		if serial.ApproxBytes() != sharded.ApproxBytes() {
			t.Errorf("exact=%v: ApproxBytes %d (sharded) vs %d (serial)",
				exact, sharded.ApproxBytes(), serial.ApproxBytes())
		}
	}
}

// TestShardedSetConcurrentInserts has many goroutines hammer one set
// with overlapping key ranges at constant budget and checks the
// linearizable contract of first-wins visiting: every key is claimed
// by exactly one goroutine (the sum of true answers equals the number
// of distinct keys), and the final occupancy matches a serial replay.
func TestShardedSetConcurrentInserts(t *testing.T) {
	for _, exact := range []bool{false, true} {
		const (
			workers = 8
			keys    = 4096
		)
		set := NewShardedSet(exact)
		wins := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker visits every key, in a worker-specific order.
				var buf [8]byte
				for i := 0; i < keys; i++ {
					k := (i*(2*w+1) + w) % keys
					binary.LittleEndian.PutUint64(buf[:], uint64(k))
					if set.Visit(buf[:], 0) {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Errorf("exact=%v: %d wins across workers, want exactly %d (one per key)", exact, total, keys)
		}
		if set.Len() != keys {
			t.Errorf("exact=%v: Len = %d, want %d", exact, set.Len(), keys)
		}
	}
}

// TestShardedSetBudgetSubsumptionConcurrent checks the budget
// dimension under concurrency: after workers race visits of one key
// at different budgets, a revisit at the minimum budget is pruned and
// one below it re-explores — the recorded minimum is the global one.
func TestShardedSetBudgetSubsumptionConcurrent(t *testing.T) {
	set := NewShardedSet(false)
	key := []byte("the-key")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 10; b >= 2+w%3; b-- {
				set.Visit(key, b)
			}
		}(w)
	}
	wg.Wait()
	if set.Visit(key, 2) {
		t.Error("revisit at the recorded minimum budget must be pruned")
	}
	if !set.Visit(key, 1) {
		t.Error("revisit below the recorded minimum must re-explore")
	}
}

// TestShardedSetProbeZeroAllocs guards the concurrent probe path like
// the serial set's test: encoding is the caller's business, but a
// probe of an existing key must not allocate in either mode.
func TestShardedSetProbeZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation guards are meaningless under -race")
	}
	for _, exact := range []bool{false, true} {
		set := NewShardedSet(exact)
		key := []byte("zero-alloc-probe-key")
		set.Visit(key, 0)
		h := Hash64(key)
		allocs := testing.AllocsPerRun(500, func() {
			set.Visit(key, 0)
			set.VisitHash(h, key, 0)
		})
		if allocs != 0 {
			t.Errorf("exact=%v: %v allocs per probe, want 0", exact, allocs)
		}
	}
}

// TestShardedSetApproxBytesMonotone checks that ApproxBytes never
// decreases as keys are inserted (entries are only added), in both
// modes, including across duplicate visits which must not change the
// footprint.
func TestShardedSetApproxBytesMonotone(t *testing.T) {
	for _, exact := range []bool{false, true} {
		set := NewShardedSet(exact)
		prev := set.ApproxBytes()
		if prev != 0 {
			t.Fatalf("exact=%v: empty set ApproxBytes = %d, want 0", exact, prev)
		}
		for i, k := range randKeys(11, 2000) {
			set.Visit(k, i%3)
			if b := set.ApproxBytes(); b < prev {
				t.Fatalf("exact=%v: ApproxBytes decreased %d -> %d at key %d", exact, prev, b, i)
			} else {
				prev = b
			}
		}
		// Re-visiting everything at the same budgets adds no entries.
		before := set.ApproxBytes()
		for i, k := range randKeys(11, 2000) {
			set.Visit(k, i%3)
		}
		if after := set.ApproxBytes(); after != before {
			t.Errorf("exact=%v: duplicate visits changed ApproxBytes %d -> %d", exact, before, after)
		}
	}
}

// TestShardedSetHashAgreement pins VisitHash to Visit: both must use
// Hash64 of the key, or fingerprint-mode probes through the two entry
// points would see different sets.
func TestShardedSetHashAgreement(t *testing.T) {
	set := NewShardedSet(false)
	key := []byte("agreement")
	if !set.VisitHash(Hash64(key), key, 0) {
		t.Fatal("first VisitHash must explore")
	}
	if set.Visit(key, 0) {
		t.Fatal("Visit after VisitHash of the same key must be pruned")
	}
}
