package fp

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// TestHash64MatchesStdlib: Hash64 is FNV-1a 64 exactly, checked against
// hash/fnv on fixed vectors and random byte strings.
func TestHash64MatchesStdlib(t *testing.T) {
	vectors := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("foobar"),
		{0x00},
		{0xFF, 0xFE, 0xFD},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		vectors = append(vectors, b)
	}
	for _, v := range vectors {
		ref := fnv.New64a()
		ref.Write(v)
		if got, want := Hash64(v), ref.Sum64(); got != want {
			t.Errorf("Hash64(%q) = %#x, want %#x", v, got, want)
		}
	}
	if Hash64(nil) != offset64 {
		t.Errorf("empty hash must be the offset basis")
	}
}

// TestSetBudgetSemantics: a state is re-explored exactly when reached
// with strictly less budget used, in both modes.
func TestSetBudgetSemantics(t *testing.T) {
	for _, exact := range []bool{false, true} {
		s := NewSet(exact)
		if s.Exact() != exact {
			t.Fatalf("Exact() = %v, want %v", s.Exact(), exact)
		}
		key := []byte("state-a")
		if !s.Visit(key, 3) {
			t.Fatalf("exact=%v: first visit must explore", exact)
		}
		if s.Visit(key, 3) {
			t.Errorf("exact=%v: same budget must be pruned", exact)
		}
		if s.Visit(key, 5) {
			t.Errorf("exact=%v: larger budget must be pruned", exact)
		}
		if !s.Visit(key, 1) {
			t.Errorf("exact=%v: smaller budget must re-explore", exact)
		}
		if s.Visit(key, 2) {
			t.Errorf("exact=%v: minimum must have been updated to 1", exact)
		}
		if !s.Visit([]byte("state-b"), 9) {
			t.Errorf("exact=%v: distinct key must explore", exact)
		}
		if s.Len() != 2 {
			t.Errorf("exact=%v: Len = %d, want 2", exact, s.Len())
		}
	}
}

// TestSetKeyBufferReuse: Visit must not retain the caller's buffer —
// mutating it afterwards must not corrupt the set (the exact mode's
// map conversion copies).
func TestSetKeyBufferReuse(t *testing.T) {
	for _, exact := range []bool{false, true} {
		s := NewSet(exact)
		buf := []byte("first")
		s.Visit(buf, 0)
		copy(buf, "xxxxx")
		if s.Visit([]byte("first"), 0) {
			t.Errorf("exact=%v: recorded key was corrupted by buffer reuse", exact)
		}
	}
}

// TestSetModeParity: both modes agree on explore/prune decisions over a
// random probe sequence (no fingerprint collisions expected at this
// scale).
func TestSetModeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	exactSet, fpSet := NewSet(true), NewSet(false)
	keys := make([][]byte, 200)
	for i := range keys {
		keys[i] = make([]byte, 8+rng.Intn(24))
		rng.Read(keys[i])
	}
	for probe := 0; probe < 5000; probe++ {
		k := keys[rng.Intn(len(keys))]
		budget := rng.Intn(6)
		a, b := exactSet.Visit(k, budget), fpSet.Visit(k, budget)
		if a != b {
			t.Fatalf("probe %d: exact=%v fingerprint=%v", probe, a, b)
		}
	}
	if exactSet.Len() != fpSet.Len() {
		t.Errorf("Len: exact=%d fingerprint=%d", exactSet.Len(), fpSet.Len())
	}
}

// TestVisitZeroAllocs: a re-probe of a visited state allocates nothing,
// in either mode (the exact mode's lookup uses the compiler's
// non-allocating map[string(bytes)] form).
func TestVisitZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation guards are meaningless under -race")
	}
	for _, exact := range []bool{false, true} {
		s := NewSet(exact)
		key := make([]byte, 64)
		for i := range key {
			key[i] = byte(i)
		}
		s.Visit(key, 1)
		allocs := testing.AllocsPerRun(200, func() {
			s.Visit(key, 1)
		})
		if allocs != 0 {
			t.Errorf("exact=%v: %v allocs per visited-state probe, want 0", exact, allocs)
		}
	}
}
