//go:build race

package fp

// RaceEnabled reports whether the race detector is compiled in. The
// zero-allocation guards skip under -race: the detector instruments
// map accesses with its own allocations, which would fail the guards
// for reasons unrelated to the code under test.
const RaceEnabled = true
