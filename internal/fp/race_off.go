//go:build !race

package fp

// RaceEnabled reports whether the race detector is compiled in. See
// race_on.go.
const RaceEnabled = false
