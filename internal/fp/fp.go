// Package fp provides 64-bit state fingerprinting and budget-aware
// visited sets for the explicit-state search engines (internal/sc,
// internal/ra, internal/smc).
//
// The engines' hot loop is "serialise the configuration, look it up in
// the visited map, maybe insert it". Retaining the full serialised key
// per state costs tens to hundreds of bytes each and an allocation per
// insertion; at the state counts of the paper's Table 1-8 sweeps the
// visited map dominates both the heap and the allocator. A Set in its
// default fingerprint mode stores only a 64-bit FNV-1a hash of the key
// bytes per state: lookups and re-probes are allocation-free and the
// per-state footprint shrinks to the map entry itself.
//
// The price is a collision risk: two distinct states hashing to the
// same 64 bits are conflated, which can prune reachable states and (in
// the worst case) mask a violation. By the birthday bound the
// probability of any collision among N states is about N^2 / 2^65 —
// roughly 5e-9 at a million states and 5e-5 at a hundred thousand
// million-state runs; see DESIGN.md for the argument. Exact mode
// (NewSet(true)) retains the full key bytes and is used by the
// correctness oracles, the parity tests, and collision-paranoid runs
// via the engines' Options.ExactDedup.
package fp

// FNV-1a 64-bit parameters (FNV-0 offset basis and prime).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash64 returns the 64-bit FNV-1a hash of b. It is equivalent to
// hash/fnv's New64a but inlineable and allocation-free.
func Hash64(b []byte) uint64 {
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Set is a visited set for budget-bounded searches: it maps a state key
// to the minimum "budget used" (context switches, view switches, path
// depth, ...) at which the state has been reached. A state reached
// again having used at least as much budget has a subset of the futures
// of the recorded visit and is pruned; reached with strictly less
// budget used, it must be re-explored.
//
// In fingerprint mode (the default) only the 64-bit hash of the key is
// retained; in exact mode the full key bytes are. Searches without a
// budget dimension pass a constant budget.
type Set struct {
	exact    map[string]int
	fp       map[uint64]int
	keyBytes int64 // exact mode: total bytes of retained keys
}

// NewSet returns an empty visited set. exact selects exact mode (full
// key retention) over the default 64-bit fingerprint mode.
func NewSet(exact bool) *Set {
	if exact {
		return &Set{exact: make(map[string]int)}
	}
	return &Set{fp: make(map[uint64]int)}
}

// Exact reports whether the set retains full keys.
func (s *Set) Exact() bool { return s.exact != nil }

// Visit records that the state serialised as key has been reached with
// the given budget used, and reports whether it must be explored: true
// when the state is new or was previously only reached with more budget
// used (the recorded minimum is updated), false when this visit is
// subsumed by an earlier one. key is not retained in fingerprint mode
// and copied (via the map's string conversion) in exact mode, so
// callers may reuse the backing buffer.
func (s *Set) Visit(key []byte, budget int) bool {
	if s.exact != nil {
		// The map index with an inline []byte->string conversion does
		// not allocate; only the insert of a genuinely new state does.
		prev, ok := s.exact[string(key)]
		if ok && prev <= budget {
			return false
		}
		if !ok {
			s.keyBytes += int64(len(key))
		}
		s.exact[string(key)] = budget
		return true
	}
	h := Hash64(key)
	if prev, ok := s.fp[h]; ok && prev <= budget {
		return false
	}
	s.fp[h] = budget
	return true
}

// VisitHash is Visit for callers that already computed Hash64(key): the
// engines hash each state key once and reuse the fingerprint for both
// the probe and violation tie-breaking (MixOrdinal). In exact mode the
// hash is ignored and the full key decides.
func (s *Set) VisitHash(h uint64, key []byte, budget int) bool {
	if s.exact != nil {
		return s.Visit(key, budget)
	}
	if prev, ok := s.fp[h]; ok && prev <= budget {
		return false
	}
	s.fp[h] = budget
	return true
}

// MixOrdinal derives the fingerprint of the ord-th transition scanned
// out of a state whose key fingerprint is h. The engines' census mode
// keeps the violation with the smallest mixed fingerprint as its
// witness — a tie-break any worker can apply locally, making the chosen
// witness independent of discovery order (see DESIGN.md). One FNV step
// disperses both the ordinal and the state bits.
func MixOrdinal(h uint64, ord int) uint64 {
	return (h ^ uint64(ord+1)) * prime64
}

// Len returns the number of distinct states recorded.
func (s *Set) Len() int {
	if s.exact != nil {
		return len(s.exact)
	}
	return len(s.fp)
}

// Per-entry map overheads for ApproxBytes: a fingerprint entry is a
// uint64 key plus an int value; an exact entry additionally carries a
// string header and bucket bookkeeping on top of its key bytes.
const (
	fpEntryBytes    = 16
	exactEntryBytes = 48
)

// ApproxBytes estimates the heap footprint of the visited set: retained
// key bytes plus a constant per map entry. It is an O(1) occupancy
// figure for live telemetry (internal/obs SearchStats), not an exact
// accounting — Go map buckets over-allocate by up to ~2x.
func (s *Set) ApproxBytes() int64 {
	if s.exact != nil {
		return s.keyBytes + int64(len(s.exact))*exactEntryBytes
	}
	return int64(len(s.fp)) * fpEntryBytes
}
