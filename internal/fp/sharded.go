package fp

import "sync"

// shardCount is the number of shards of a ShardedSet. 256 shards keep
// the probability of two of even 32 workers colliding on one shard
// lock below 2% per probe pair, while the per-shard maps stay large
// enough to amortise map overhead. Must be a power of two: shards are
// selected by the high bits of the 64-bit fingerprint, so the
// selection reuses the hash the probe needs anyway and every shard
// receives a uniform slice of the key space.
const shardCount = 256

// shardShift extracts the shard index from the top bits of a
// fingerprint. The low bits keep their full entropy for the in-shard
// map, so sharding never degrades map bucket distribution.
const shardShift = 64 - 8

// ShardedSet is the concurrent counterpart of Set: a visited set for
// budget-bounded searches that many workers probe and update at once.
// The key space is partitioned into shardCount independent shards by
// the high bits of the key's 64-bit fingerprint, each shard guarded by
// its own mutex, so concurrent probes contend only when their states
// land in the same 1/256th of the fingerprint space.
//
// Semantics are identical to Set.Visit: first visit wins, a revisit
// with at least as much budget used is pruned, a revisit with strictly
// less budget re-explores. Because the outcome of Visit depends only
// on the key and the budget history of that key — never on which
// worker asks — the set of "explore" answers over any concurrent
// schedule equals the serial set's answers when the engines pass a
// constant budget (the order-independent discipline of the parallel
// explorers; see DESIGN.md).
type ShardedSet struct {
	exact  bool
	shards [shardCount]shard
}

// shard is one lock-striped slice of the set. The maps mirror Set's
// fingerprint/exact modes.
type shard struct {
	mu       sync.Mutex
	fp       map[uint64]int
	exact    map[string]int
	keyBytes int64 // exact mode: retained key bytes of this shard
}

// NewShardedSet returns an empty concurrent visited set; exact selects
// full-key retention over the default 64-bit fingerprint mode (same
// trade-off as NewSet).
func NewShardedSet(exact bool) *ShardedSet {
	s := &ShardedSet{exact: exact}
	for i := range s.shards {
		if exact {
			s.shards[i].exact = make(map[string]int)
		} else {
			s.shards[i].fp = make(map[uint64]int)
		}
	}
	return s
}

// Exact reports whether the set retains full keys.
func (s *ShardedSet) Exact() bool { return s.exact }

// Visit records that the state serialised as key has been reached with
// the given budget used and reports whether it must be explored (see
// Set.Visit). Safe for concurrent use; key may reuse a caller-owned
// buffer (it is copied only on a new exact-mode insert). The probe
// path is allocation-free in both modes.
func (s *ShardedSet) Visit(key []byte, budget int) bool {
	h := Hash64(key)
	sh := &s.shards[h>>shardShift]
	sh.mu.Lock()
	ok := sh.visitLocked(s.exact, h, key, budget)
	sh.mu.Unlock()
	return ok
}

// VisitHash is Visit for callers that already computed Hash64(key) —
// the parallel explorers hash once and reuse the fingerprint for both
// shard selection and violation tie-breaking.
func (s *ShardedSet) VisitHash(h uint64, key []byte, budget int) bool {
	sh := &s.shards[h>>shardShift]
	sh.mu.Lock()
	ok := sh.visitLocked(s.exact, h, key, budget)
	sh.mu.Unlock()
	return ok
}

func (sh *shard) visitLocked(exact bool, h uint64, key []byte, budget int) bool {
	if exact {
		prev, ok := sh.exact[string(key)]
		if ok && prev <= budget {
			return false
		}
		if !ok {
			sh.keyBytes += int64(len(key))
		}
		sh.exact[string(key)] = budget
		return true
	}
	if prev, ok := sh.fp[h]; ok && prev <= budget {
		return false
	}
	sh.fp[h] = budget
	return true
}

// Len returns the number of distinct states recorded, summed across
// shards. It locks each shard in turn, so concurrent Visits may land
// between shard reads; engines call it on their flush cadence, where a
// momentarily stale occupancy is fine.
func (s *ShardedSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if s.exact {
			n += len(sh.exact)
		} else {
			n += len(sh.fp)
		}
		sh.mu.Unlock()
	}
	return n
}

// ApproxBytes estimates the heap footprint across all shards, using
// the same per-entry constants as Set.ApproxBytes. Like Len it is a
// flush-cadence figure, not a linearizable one, but it is monotone
// over any quiescent sequence of snapshots: entries are only ever
// added.
func (s *ShardedSet) ApproxBytes() int64 {
	var b int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if s.exact {
			b += sh.keyBytes + int64(len(sh.exact))*exactEntryBytes
		} else {
			b += int64(len(sh.fp)) * fpEntryBytes
		}
		sh.mu.Unlock()
	}
	return b
}
