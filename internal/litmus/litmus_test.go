package litmus

import (
	"testing"
)

// TestClassicExpectations: the oracle (exhaustive RA explorer) must
// reproduce the literature verdict of every classic shape.
func TestClassicExpectations(t *testing.T) {
	for _, tc := range Classic() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			if got := Oracle(tc); got != tc.Unsafe {
				t.Errorf("oracle says unsafe=%v, literature says %v", got, tc.Unsafe)
			}
		})
	}
}

// TestClassicVBMCAgreesWithOracle is the paper's litmus experiment in
// miniature: VBMC at K=5 matches the oracle on every classic shape.
func TestClassicVBMCAgreesWithOracle(t *testing.T) {
	for _, tc := range Classic() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			want := Oracle(tc)
			got, err := VBMC(tc, 5)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("VBMC(K=5) says unsafe=%v, oracle says %v", got, want)
			}
		})
	}
}

// TestGeneratedCorpusSize: the systematic corpus has the expected scale.
func TestGeneratedCorpusSize(t *testing.T) {
	g2 := Generated(2)
	// 4^4 = 256 candidates; the 2^4 = 16 write-only ones are dropped.
	if len(g2) != 256-16 {
		t.Errorf("Generated(2) = %d tests, want 240", len(g2))
	}
	g3 := Generated(3)
	// 4^6 = 4096 candidates minus 2^6 = 64 write-only ones.
	if len(g3) != 4096-64 {
		t.Errorf("Generated(3) = %d tests, want 4032", len(g3))
	}
	for _, tc := range g3[:32] {
		if err := tc.Prog.ValidateRA(); err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
	}
}

// TestGeneratedSampleAgreement runs a sample of the generated corpus
// through oracle and VBMC; the full sweep is the litmus benchmark.
func TestGeneratedSampleAgreement(t *testing.T) {
	stride := 37
	if testing.Short() {
		stride = 331
	}
	corpus := Generated(2)
	checked := 0
	for i := 0; i < len(corpus); i += stride {
		tc := corpus[i]
		want := Oracle(tc)
		got, err := VBMC(tc, 5)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if got != want {
			t.Errorf("%s: VBMC(5)=%v oracle=%v\n%s", tc.Name, got, want, tc.Prog)
		}
		checked++
	}
	t.Logf("checked %d/%d corpus programs", checked, len(corpus))
}

func TestGeneratedThreeThreadCorpus(t *testing.T) {
	g := GeneratedThreads(3, 2)
	// 4^6 = 4096 candidates minus the 2^6 = 64 write-only ones.
	if len(g) != 4096-64 {
		t.Errorf("GeneratedThreads(3,2) = %d tests, want 4032", len(g))
	}
	stride := 211
	if testing.Short() {
		stride = 997
	}
	for i := 0; i < len(g); i += stride {
		tc := g[i]
		if err := tc.Prog.ValidateRA(); err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		want := Oracle(tc)
		got, err := VBMC(tc, 5)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if got != want {
			t.Errorf("%s: VBMC=%v oracle=%v\n%s", tc.Name, got, want, tc.Prog)
		}
	}
}
