// Package litmus provides litmus tests for the RA semantics: the
// classic named shapes from the weak-memory literature with their known
// RA verdicts, and a systematically generated corpus standing in for the
// 4004 herd litmus files of the paper's evaluation (Sec. 7). Every test
// is a loop-free program with one assertion; the exhaustive RA explorer
// plays the role of herd + RA axioms as the oracle, and agreement of
// VBMC with the oracle for K ≤ 5 reproduces the paper's litmus result.
package litmus

import (
	"fmt"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
)

// Test is a litmus test: a loop-free RA program with one assertion.
// Unsafe records the expected RA verdict for classic tests (true when
// the weak outcome is observable, i.e. the assertion can fail); for
// generated tests it is left unset and the oracle decides.
type Test struct {
	Name   string
	Prog   *lang.Program
	Unsafe bool
	// HasExpectation is true for classic tests with a literature verdict.
	HasExpectation bool
}

// Oracle decides the test with the exhaustive RA explorer (unbounded
// view switches), returning true when the assertion can fail.
func Oracle(t Test) bool {
	sys := ra.NewSystem(lang.MustCompile(t.Prog))
	res := sys.Explore(ra.Options{ViewBound: -1, StopOnViolation: true})
	return res.Violation
}

// VBMC decides the test with the translation pipeline at view bound k.
func VBMC(t Test, k int) (bool, error) {
	res, err := core.Run(t.Prog, core.Options{K: k})
	if err != nil {
		return false, err
	}
	if res.Verdict == core.Inconclusive {
		return false, fmt.Errorf("litmus %s: inconclusive at K=%d", t.Name, k)
	}
	// Every UNSAFE verdict must come with a replay-validated source-level
	// witness; treating a validation failure as an error makes the whole
	// litmus corpus double as a fuzz of the lift + replay pipeline.
	if res.Verdict == core.Unsafe && !res.WitnessValidated {
		return false, fmt.Errorf("litmus %s: witness validation failed at K=%d: %s", t.Name, k, res.WitnessErr)
	}
	return res.Verdict == core.Unsafe, nil
}

// Classic returns the named litmus shapes with their known RA verdicts.
func Classic() []Test {
	var tests []Test
	add := func(name string, unsafe bool, p *lang.Program) {
		p.Name = name
		tests = append(tests, Test{Name: name, Prog: p, Unsafe: unsafe, HasExpectation: true})
	}

	// MP: message passing. RA forbids observing y=1 but stale x=0.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
		p.AddProc("p1", "a", "b").Add(
			lang.ReadS("a", "y"),
			lang.ReadS("b", "x"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
		)
		add("MP", false, p)
	}
	// MP+na (reversed reads): reading x first loses the guarantee.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
		p.AddProc("p1", "a", "b").Add(
			lang.ReadS("b", "x"),
			lang.ReadS("a", "y"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("b"), lang.C(0)), lang.Eq(lang.R("a"), lang.C(1))))),
		)
		add("MP-rev", true, p)
	}
	// SB: store buffering. RA allows both stale reads.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"),
			lang.AssertS(lang.Eq(lang.R("a"), lang.C(1))))
		p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
		add("SB-half", true, p)
	}
	// SB with fences: forbidden.
	{
		p := lang.NewProgram("", "x", "y", "outa", "outb", "fa", "fb")
		mk := func(w, r, out, flag, reg string) *lang.Proc {
			pr := p.AddProc("p"+w, reg)
			pr.Add(lang.WriteC(w, 1), lang.FenceS(), lang.ReadS(reg, r),
				lang.WriteS(out, lang.R(reg)), lang.WriteC(flag, 1))
			return pr
		}
		mk("x", "y", "outa", "fa", "a")
		mk("y", "x", "outb", "fb", "b")
		chk := p.AddProc("chk", "u", "v", "s", "t")
		chk.Add(
			lang.ReadS("u", "fa"), lang.AssumeS(lang.Eq(lang.R("u"), lang.C(1))),
			lang.ReadS("v", "fb"), lang.AssumeS(lang.Eq(lang.R("v"), lang.C(1))),
			lang.ReadS("s", "outa"), lang.ReadS("t", "outb"),
			lang.AssertS(lang.Or(lang.Eq(lang.R("s"), lang.C(1)), lang.Eq(lang.R("t"), lang.C(1)))),
		)
		add("SB+fences", false, p)
	}
	// LB: load buffering. RA has no promises, so a=1 && b=1 is forbidden.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0", "a").Add(lang.ReadS("a", "x"), lang.WriteC("y", 1))
		p.AddProc("p1", "b").Add(
			lang.ReadS("b", "y"), lang.WriteC("x", 1),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("b"), lang.C(1)), lang.C(1)))),
		)
		add("LB-half", true, p) // b=1 alone is observable (p0 runs first)
	}
	// LB full: a=1 && b=1 forbidden. Needs cross-thread observation:
	// each thread writes only after reading 1, so both-read-1 is a cycle.
	{
		p := lang.NewProgram("", "x", "y", "oa", "fa")
		p.AddProc("p0", "a").Add(
			lang.ReadS("a", "x"),
			lang.WriteS("oa", lang.R("a")), lang.WriteC("fa", 1),
			lang.WriteC("y", 1),
		)
		p.AddProc("p1", "b", "u", "v").Add(
			lang.ReadS("b", "y"),
			lang.WriteC("x", 1),
			lang.ReadS("u", "fa"),
			lang.ReadS("v", "oa"),
			lang.AssertS(lang.Not(lang.ConjoinAll(
				lang.Eq(lang.R("b"), lang.C(1)),
				lang.Eq(lang.R("u"), lang.C(1)),
				lang.Eq(lang.R("v"), lang.C(1)),
			))),
		)
		add("LB", false, p)
	}
	// CoRR: coherence of read-read.
	{
		p := lang.NewProgram("", "x")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("x", 2))
		p.AddProc("p1", "a", "b").Add(
			lang.ReadS("a", "x"), lang.ReadS("b", "x"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(2)), lang.Eq(lang.R("b"), lang.C(1))))),
		)
		add("CoRR", false, p)
	}
	// WRC: write-to-read causality, forbidden under RA.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1))
		p.AddProc("p1", "a").Add(
			lang.ReadS("a", "x"),
			lang.IfS(lang.Eq(lang.R("a"), lang.C(1)), lang.WriteC("y", 1)),
		)
		p.AddProc("p2", "b", "c").Add(
			lang.ReadS("b", "y"), lang.ReadS("c", "x"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("b"), lang.C(1)), lang.Eq(lang.R("c"), lang.C(0))))),
		)
		add("WRC", false, p)
	}
	// RWC: read-to-write causality, allowed under RA (needs SC fences).
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1))
		p.AddProc("p1", "a", "b").Add(
			lang.ReadS("a", "x"), lang.ReadS("b", "y"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
		)
		p.AddProc("p2", "c").Add(
			lang.WriteC("y", 1), lang.ReadS("c", "x"),
			lang.AssumeS(lang.Eq(lang.R("c"), lang.C(0))),
		)
		add("RWC", true, p)
	}
	// IRIW: independent reads of independent writes, allowed under RA.
	{
		p := lang.NewProgram("", "x", "y", "o1", "o2", "f1")
		p.AddProc("w0").Add(lang.WriteC("x", 1))
		p.AddProc("w1").Add(lang.WriteC("y", 1))
		p.AddProc("r0", "a", "b").Add(
			lang.ReadS("a", "x"), lang.ReadS("b", "y"),
			lang.AssumeS(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0)))),
			lang.WriteC("f1", 1),
		)
		p.AddProc("r1", "c", "d", "e").Add(
			lang.ReadS("c", "y"), lang.ReadS("d", "x"),
			lang.ReadS("e", "f1"),
			lang.AssertS(lang.Not(lang.ConjoinAll(
				lang.Eq(lang.R("c"), lang.C(1)),
				lang.Eq(lang.R("d"), lang.C(0)),
				lang.Eq(lang.R("e"), lang.C(1)),
			))),
		)
		add("IRIW", true, p)
	}
	// CAS-exclusivity: two CAS on the same message cannot both succeed.
	{
		p := lang.NewProgram("", "x", "w0", "w1")
		p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.WriteC("w0", 1))
		p.AddProc("p1").Add(lang.CASS("x", lang.C(0), lang.C(2)), lang.WriteC("w1", 1))
		p.AddProc("chk", "a", "b").Add(
			lang.ReadS("a", "w0"), lang.ReadS("b", "w1"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(1))))),
		)
		add("CAS-excl", false, p)
	}
	// 2+2W: opposing write pairs. The cross outcome a=1 && b=1 needs
	// both modification orders inverted against program order — an SC
	// cycle, but RA allows it (writes may be inserted mid-mo).
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0", "a").Add(
			lang.WriteC("x", 1), lang.WriteC("y", 2), lang.ReadS("a", "y"),
			lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
		)
		p.AddProc("p1", "b").Add(
			lang.WriteC("y", 1), lang.WriteC("x", 2), lang.ReadS("b", "x"),
			lang.AssumeS(lang.Eq(lang.R("b"), lang.C(1))),
		)
		add("2+2W", true, p)
	}
	// S: the write x=1 is hb-after x=2 through the rf on y, so WW
	// coherence pins mo(x) to 2 before 1 and no observer can read 1
	// then 2.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 2), lang.WriteC("y", 1))
		p.AddProc("p1", "a").Add(
			lang.ReadS("a", "y"),
			lang.IfS(lang.Eq(lang.R("a"), lang.C(1)), lang.WriteC("x", 1)),
		)
		p.AddProc("obs", "b", "c").Add(
			lang.ReadS("b", "x"), lang.ReadS("c", "x"),
			lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("b"), lang.C(1)), lang.Eq(lang.R("c"), lang.C(2))))),
		)
		add("S-coh", false, p)
	}
	// MP with a CAS flag: the RMW releases like a plain write, so the
	// causality guarantee is preserved.
	{
		p := lang.NewProgram("", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.CASS("y", lang.C(0), lang.C(1)))
		p.AddProc("p1", "a", "b").Add(
			lang.ReadS("a", "y"),
			lang.IfS(lang.Eq(lang.R("a"), lang.C(1)),
				lang.ReadS("b", "x"),
				lang.AssertS(lang.Eq(lang.R("b"), lang.C(1))),
			),
		)
		add("MP+cas", false, p)
	}
	// A CAS chain 0->1->2 is observable end to end.
	{
		p := lang.NewProgram("", "x")
		p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)))
		p.AddProc("p1").Add(lang.CASS("x", lang.C(1), lang.C(2)))
		p.AddProc("obs", "a").Add(
			lang.ReadS("a", "x"),
			lang.AssertS(lang.Ne(lang.R("a"), lang.C(2))),
		)
		add("CAS-chain", true, p)
	}
	// SB with only one side fenced stays weak: both fences are needed.
	{
		p := lang.NewProgram("", "x", "y", "oa", "ob", "fa", "fb")
		p.AddProc("p0", "a").Add(
			lang.WriteC("x", 1), lang.FenceS(), lang.ReadS("a", "y"),
			lang.WriteS("oa", lang.R("a")), lang.WriteC("fa", 1))
		p.AddProc("p1", "b").Add(
			lang.WriteC("y", 1), lang.ReadS("b", "x"),
			lang.WriteS("ob", lang.R("b")), lang.WriteC("fb", 1))
		p.AddProc("chk", "u", "v", "s", "w").Add(
			lang.ReadS("u", "fa"), lang.AssumeS(lang.Eq(lang.R("u"), lang.C(1))),
			lang.ReadS("v", "fb"), lang.AssumeS(lang.Eq(lang.R("v"), lang.C(1))),
			lang.ReadS("s", "oa"), lang.ReadS("w", "ob"),
			lang.AssertS(lang.Or(lang.Eq(lang.R("s"), lang.C(1)), lang.Eq(lang.R("w"), lang.C(1)))),
		)
		add("SB+1fence", true, p)
	}
	// CoWR: a process that wrote x cannot read a write that is
	// mo-before its own.
	{
		p := lang.NewProgram("", "x")
		p.AddProc("p0", "a").Add(
			lang.WriteC("x", 1),
			lang.ReadS("a", "x"),
			lang.AssertS(lang.Ne(lang.R("a"), lang.C(0))),
		)
		p.AddProc("p1").Add(lang.WriteC("x", 2))
		add("CoWR", false, p)
	}
	// Fence totality: two fenced writers cannot both miss each other.
	{
		p := lang.NewProgram("", "x", "y", "oa", "ob", "fa", "fb")
		p.AddProc("p0", "a").Add(
			lang.WriteC("x", 1), lang.FenceS(), lang.ReadS("a", "y"),
			lang.WriteS("oa", lang.R("a")), lang.WriteC("fa", 1))
		p.AddProc("p1", "b").Add(
			lang.WriteC("y", 1), lang.FenceS(), lang.ReadS("b", "x"),
			lang.WriteS("ob", lang.R("b")), lang.WriteC("fb", 1))
		p.AddProc("chk", "u", "v", "s", "w").Add(
			lang.ReadS("u", "fa"), lang.AssumeS(lang.Eq(lang.R("u"), lang.C(1))),
			lang.ReadS("v", "fb"), lang.AssumeS(lang.Eq(lang.R("v"), lang.C(1))),
			lang.ReadS("s", "oa"), lang.ReadS("w", "ob"),
			lang.AssertS(lang.Or(lang.Eq(lang.R("s"), lang.C(1)), lang.Eq(lang.R("w"), lang.C(1)))),
		)
		add("2F-SB", false, p)
	}
	return tests
}
