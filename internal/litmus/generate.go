package litmus

import (
	"fmt"

	"ravbmc/internal/lang"
)

// opKind is one symbol of the generation alphabet: a write of 1 to x or
// y, or a read of x or y.
type opKind int

const (
	opWx opKind = iota
	opWy
	opRx
	opRy
	numOps
)

// Generated systematically enumerates every two-thread program with
// opsPerThread statements per thread drawn from {x=1, y=1, $r=x, $r=y},
// the loop-free core of the herd litmus corpus. With opsPerThread=3 this
// yields 4^6 = 4096 candidate programs, on the order of the paper's 4004
// litmus tests; candidates without any read are dropped (their outcome
// space is trivial), as the paper drops tests with address calculation.
//
// Each program asserts about the first thread that reads: if it has two
// or more reads, the assertion is "not both of the first two reads
// returned 1"; with a single read it is "the read did not return 1".
// The oracle decides the ground truth for each program.
func Generated(opsPerThread int) []Test {
	return GeneratedThreads(2, opsPerThread)
}

// GeneratedThreads enumerates every program with the given number of
// threads (2 or 3) and opsPerThread statements per thread drawn from
// the same alphabet. GeneratedThreads(3, 2) gives the 4^6 = 4096
// three-thread shapes (IRIW-like and WRC-like patterns appear here).
func GeneratedThreads(threads, opsPerThread int) []Test {
	total := 1
	for i := 0; i < threads*opsPerThread; i++ {
		total *= int(numOps)
	}
	var tests []Test
	for code := 0; code < total; code++ {
		ops := decode(code, threads*opsPerThread)
		perThread := make([][]opKind, threads)
		for ti := 0; ti < threads; ti++ {
			perThread[ti] = ops[ti*opsPerThread : (ti+1)*opsPerThread]
		}
		p, ok := buildGeneratedN(code, perThread)
		if !ok {
			continue
		}
		tests = append(tests, Test{Name: p.Name, Prog: p})
	}
	return tests
}

func decode(code, n int) []opKind {
	out := make([]opKind, n)
	for i := 0; i < n; i++ {
		out[i] = opKind(code % int(numOps))
		code /= int(numOps)
	}
	return out
}

func buildGeneratedN(code int, perThread [][]opKind) (*lang.Program, bool) {
	p := lang.NewProgram(fmt.Sprintf("lit%05d", code), "x", "y")
	reads := make([][]string, len(perThread))
	for ti, ops := range perThread {
		pr := p.AddProc(fmt.Sprintf("p%d", ti))
		for oi, op := range ops {
			reg := fmt.Sprintf("r%d", oi)
			switch op {
			case opWx:
				pr.Add(lang.WriteC("x", 1))
			case opWy:
				pr.Add(lang.WriteC("y", 1))
			case opRx:
				pr.AddReg(reg)
				pr.Add(lang.ReadS(reg, "x"))
				reads[ti] = append(reads[ti], reg)
			case opRy:
				pr.AddReg(reg)
				pr.Add(lang.ReadS(reg, "y"))
				reads[ti] = append(reads[ti], reg)
			}
		}
	}
	// Attach the assertion to the first thread that reads.
	for ti := range reads {
		rs := reads[ti]
		if len(rs) == 0 {
			continue
		}
		var cond lang.Expr
		if len(rs) >= 2 {
			cond = lang.Not(lang.And(
				lang.Eq(lang.R(rs[0]), lang.C(1)),
				lang.Eq(lang.R(rs[1]), lang.C(1)),
			))
		} else {
			cond = lang.Ne(lang.R(rs[0]), lang.C(1))
		}
		p.Procs[ti].Add(lang.AssertS(cond))
		return p, true
	}
	return nil, false // no reads anywhere: trivial outcome space
}
