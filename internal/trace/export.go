package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ravbmc/internal/version"
)

// Format selects a trace export encoding.
type Format int

// Export formats.
const (
	// FormatJSONL is the canonical machine-readable encoding: one JSON
	// header line (the Meta), then one JSON object per event.
	FormatJSONL Format = iota
	// FormatChrome is the Chrome trace-event JSON array consumed by
	// chrome://tracing and Perfetto timeline viewers.
	FormatChrome
	// FormatText is the human-readable rendering of Trace.String.
	FormatText
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatChrome:
		return "chrome"
	case FormatText:
		return "text"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat parses a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl", "":
		return FormatJSONL, nil
	case "chrome":
		return FormatChrome, nil
	case "text":
		return FormatText, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want jsonl, chrome or text)", s)
}

// Schema identifies the JSONL witness encoding; bump on incompatible
// changes.
const Schema = "ravbmc.witness/v1"

// Meta is the header record of an exported trace.
type Meta struct {
	Schema string `json:"schema"`
	// Toolchain is the build identity of the binary that produced the
	// trace (internal/version); filled automatically on export when the
	// caller leaves it empty. Consumers that memoize witnesses (the
	// verification daemon's cache) key on it so a trace from an older
	// engine build is never replayed against a newer one.
	Toolchain string `json:"toolchain,omitempty"`
	Program   string `json:"program,omitempty"`
	// Engine names the semantics the events were recorded under: "ra"
	// (operational RA), "sc" (the translated program under SC), or
	// "replay" (the validated lifted witness).
	Engine       string `json:"engine,omitempty"`
	K            int    `json:"k,omitempty"`
	Events       int    `json:"events"`
	ViewSwitches int    `json:"view_switches"`
	// Validated reports the replay-validation verdict when one ran.
	Validated *bool `json:"validated,omitempty"`
}

// jsonEvent is the stable JSONL encoding of an Event. Optional scalars
// are pointers so that unset fields are omitted while genuine zeroes
// survive.
type jsonEvent struct {
	Step       int     `json:"step"`
	Proc       string  `json:"proc"`
	Label      string  `json:"label,omitempty"`
	Kind       string  `json:"kind"`
	Detail     string  `json:"detail"`
	ViewSwitch bool    `json:"view_switch,omitempty"`
	Var        string  `json:"var,omitempty"`
	Reg        string  `json:"reg,omitempty"`
	Val        *int64  `json:"val,omitempty"`
	Idx        *int    `json:"idx,omitempty"`
	Old        *int64  `json:"old,omitempty"`
	Choice     bool    `json:"choice,omitempty"`
	ReadMsg    *MsgRef `json:"read_msg,omitempty"`
	WroteMsg   *MsgRef `json:"wrote_msg,omitempty"`
	ViewBefore View    `json:"view_before,omitempty"`
	ViewAfter  View    `json:"view_after,omitempty"`
}

func (e *Event) toJSON(step int) jsonEvent {
	je := jsonEvent{
		Step:       step,
		Proc:       e.Proc,
		Label:      e.Label,
		Kind:       e.Kind.String(),
		Detail:     e.Text(),
		ViewSwitch: e.ViewSwitch,
		Var:        e.Var,
		Reg:        e.Reg,
		Choice:     e.Choice,
		ReadMsg:    e.ReadMsg,
		WroteMsg:   e.WroteMsg,
		ViewBefore: e.ViewBefore,
		ViewAfter:  e.ViewAfter,
	}
	if e.HasVal {
		v := e.Val
		je.Val = &v
	}
	if e.HasIdx {
		v := e.Idx
		je.Idx = &v
	}
	if e.HasOld {
		v := e.Old
		je.Old = &v
	}
	return je
}

// WriteJSONL writes the trace as a JSONL event log: the Meta header
// (with Schema and the event counts filled in) followed by one event
// object per line.
func (t *Trace) WriteJSONL(w io.Writer, meta Meta) error {
	meta.Schema = Schema
	if meta.Toolchain == "" {
		meta.Toolchain = version.String()
	}
	meta.Events = t.Len()
	meta.ViewSwitches = t.ViewSwitches()
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := range t.Events {
		if err := enc.Encode(t.Events[i].toJSON(i + 1)); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one record of the Chrome trace-event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace in the Chrome trace-event JSON format:
// each event is a complete slice on its process's timeline row, with
// logical time (one tick per trace step) standing in for wall time, and
// view switches additionally marked as global instants.
func (t *Trace) WriteChrome(w io.Writer, meta Meta) error {
	meta.Schema = Schema
	if meta.Toolchain == "" {
		meta.Toolchain = version.String()
	}
	meta.Events = t.Len()
	meta.ViewSwitches = t.ViewSwitches()
	const tick = 1000 // microseconds per logical step
	procTID := map[string]int{}
	var events []chromeEvent
	for i := range t.Events {
		e := &t.Events[i]
		tid, ok := procTID[e.Proc]
		if !ok {
			tid = len(procTID)
			procTID[e.Proc] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 0, TID: tid,
				Args: map[string]any{"name": e.Proc},
			})
		}
		name := e.Kind.String()
		if e.Var != "" {
			name += " " + e.Var
		}
		args := map[string]any{"label": e.Label, "detail": e.Text()}
		if e.ReadMsg != nil {
			args["read_msg"] = e.ReadMsg
		}
		if e.WroteMsg != nil {
			args["wrote_msg"] = e.WroteMsg
		}
		events = append(events, chromeEvent{
			Name: name, Cat: e.Kind.String(), Phase: "X",
			TS: int64(i) * tick, Dur: tick * 4 / 5, PID: 0, TID: tid,
			Args: args,
		})
		if e.ViewSwitch {
			events = append(events, chromeEvent{
				Name: "view-switch", Cat: "view-switch", Phase: "i",
				TS: int64(i) * tick, PID: 0, TID: tid, Scope: "g",
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Meta        Meta          `json:"ravbmcMeta"`
	}{TraceEvents: events, Meta: meta}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Write renders the trace to w in the given format.
func (t *Trace) Write(w io.Writer, f Format, meta Meta) error {
	switch f {
	case FormatJSONL:
		return t.WriteJSONL(w, meta)
	case FormatChrome:
		return t.WriteChrome(w, meta)
	case FormatText:
		_, err := io.WriteString(w, t.String())
		return err
	}
	return fmt.Errorf("trace: unknown format %v", f)
}

// WriteFile writes the trace to the named file in the given format,
// creating or truncating it.
func (t *Trace) WriteFile(path string, f Format, meta Meta) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(file, f, meta); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
