// Package trace represents counterexample executions produced by the
// analysis engines: a sequence of events, each attributed to a process
// and an instruction label, carrying the RA-level structure of the step
// (the message read or written, the process view before and after) plus
// a human-readable rendering derived from it.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindRead Kind = iota
	KindWrite
	KindCAS
	KindFence
	KindLocal     // assignment, nondet, jumps
	KindAssume    // a passed assume
	KindAssertOK  // a passed assert
	KindViolation // a failed assert
	KindSwitch    // a context switch (SC) or view switch (RA) marker
)

// String returns a short tag for the kind.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindCAS:
		return "cas"
	case KindFence:
		return "fence"
	case KindLocal:
		return "local"
	case KindAssume:
		return "assume"
	case KindAssertOK:
		return "assert"
	case KindViolation:
		return "VIOLATION"
	case KindSwitch:
		return "switch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MsgRef identifies one message (x, v, t, V) of the RA memory: the
// global creation sequence number, the variable, the value, and the
// message's timestamp T — its modification-order position at the time
// the event was recorded.
type MsgRef struct {
	Seq int    `json:"seq"`
	Var string `json:"var"`
	Val int64  `json:"val"`
	T   int    `json:"t"`
}

// View is a process view: per shared variable, the message the process
// has most recently observed.
type View []MsgRef

// Event is one step of a counterexample execution. Proc, Label and Kind
// are always set; Detail is an explicit rendering for events whose text
// cannot be derived from the structured fields (conditions, violations)
// and is otherwise empty — use Text for the rendering either way. The
// remaining fields carry the RA-level structure of the step and are
// populated at the emission site.
type Event struct {
	Proc   string
	Label  string
	Kind   Kind
	Detail string
	// ViewSwitch marks RA events whose read altered the process view via
	// another process's write (the bounded resource of the paper).
	ViewSwitch bool

	// Var is the shared variable or array accessed; Reg the destination
	// register of reads, assignments and nondets.
	Var string
	Reg string
	// Val is the value read, written, assigned or chosen (HasVal marks it
	// meaningful, distinguishing a genuine 0 from an unset field).
	Val    int64
	HasVal bool
	// Idx is the array index of load/store events.
	Idx    int
	HasIdx bool
	// Old is the expected value of a CAS.
	Old    int64
	HasOld bool
	// Choice marks a nondeterministic assignment ($r = nondet -> v).
	Choice bool

	// ReadMsg is the message a read/CAS/fence consumed; WroteMsg the
	// message a write/CAS/fence created. Nil for SC-level events.
	ReadMsg  *MsgRef
	WroteMsg *MsgRef
	// ViewBefore/ViewAfter snapshot the acting process's view around the
	// step; populated only when the emitting engine captures views.
	ViewBefore View
	ViewAfter  View
}

// Text returns the human-readable rendering of the event: the explicit
// Detail when present, otherwise a rendering derived from the
// structured fields. Deriving lazily keeps the hot search paths free of
// string formatting.
func (e *Event) Text() string {
	if e.Detail != "" {
		return e.Detail
	}
	switch e.Kind {
	case KindRead:
		if e.HasIdx {
			return fmt.Sprintf("$%s = %s[%d] reads %d", e.Reg, e.Var, e.Idx, e.Val)
		}
		if e.ReadMsg != nil {
			return fmt.Sprintf("$%s = %s reads %d (msg #%d, pos %d)", e.Reg, e.Var, e.Val, e.ReadMsg.Seq, e.ReadMsg.T)
		}
		return fmt.Sprintf("$%s = %s reads %d", e.Reg, e.Var, e.Val)
	case KindWrite:
		if e.HasIdx {
			return fmt.Sprintf("%s[%d] = %d", e.Var, e.Idx, e.Val)
		}
		if e.WroteMsg != nil {
			return fmt.Sprintf("%s = %d (msg #%d at pos %d)", e.Var, e.Val, e.WroteMsg.Seq, e.WroteMsg.T)
		}
		return fmt.Sprintf("%s = %d", e.Var, e.Val)
	case KindCAS:
		if e.ReadMsg != nil {
			return fmt.Sprintf("cas(%s, %d, %d) on msg #%d (pos %d)", e.Var, e.Old, e.Val, e.ReadMsg.Seq, e.ReadMsg.T)
		}
		return fmt.Sprintf("cas(%s, %d, %d)", e.Var, e.Old, e.Val)
	case KindFence:
		if e.ReadMsg != nil {
			return fmt.Sprintf("fence (rmw #%d -> %d)", e.ReadMsg.Seq, e.Val)
		}
		return "fence"
	case KindLocal:
		if e.Choice {
			return fmt.Sprintf("$%s = nondet -> %d", e.Reg, e.Val)
		}
		if e.Reg != "" {
			return fmt.Sprintf("$%s = %d", e.Reg, e.Val)
		}
	}
	return ""
}

// Trace is an execution fragment witnessing a verdict.
type Trace struct {
	Events []Event
}

// Append adds an event and returns the trace for chaining.
func (t *Trace) Append(e Event) *Trace {
	t.Events = append(t.Events, e)
	return t
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// ViewSwitches counts the view-switching events in the trace.
func (t *Trace) ViewSwitches() int {
	n := 0
	for _, e := range t.Events {
		if e.ViewSwitch {
			n++
		}
	}
	return n
}

// String renders the trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for i := range t.Events {
		e := &t.Events[i]
		mark := ""
		if e.ViewSwitch {
			mark = " [view-switch]"
		}
		fmt.Fprintf(&b, "%3d. %-8s %-10s %-8s %s%s\n", i+1, e.Proc, e.Label, e.Kind, e.Text(), mark)
	}
	return b.String()
}

// Clone returns an independent copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Events: append([]Event(nil), t.Events...)}
}
