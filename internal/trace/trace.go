// Package trace represents counterexample executions produced by the
// analysis engines: a sequence of events, each attributed to a process
// and an instruction label, with a human-readable detail string.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindRead Kind = iota
	KindWrite
	KindCAS
	KindFence
	KindLocal     // assignment, nondet, jumps
	KindAssume    // a passed assume
	KindAssertOK  // a passed assert
	KindViolation // a failed assert
	KindSwitch    // a context switch (SC) or view switch (RA) marker
)

// String returns a short tag for the kind.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindCAS:
		return "cas"
	case KindFence:
		return "fence"
	case KindLocal:
		return "local"
	case KindAssume:
		return "assume"
	case KindAssertOK:
		return "assert"
	case KindViolation:
		return "VIOLATION"
	case KindSwitch:
		return "switch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one step of a counterexample execution.
type Event struct {
	Proc   string
	Label  string
	Kind   Kind
	Detail string
	// ViewSwitch marks RA events whose read altered the process view via
	// another process's write (the bounded resource of the paper).
	ViewSwitch bool
}

// Trace is an execution fragment witnessing a verdict.
type Trace struct {
	Events []Event
}

// Append adds an event and returns the trace for chaining.
func (t *Trace) Append(e Event) *Trace {
	t.Events = append(t.Events, e)
	return t
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// ViewSwitches counts the view-switching events in the trace.
func (t *Trace) ViewSwitches() int {
	n := 0
	for _, e := range t.Events {
		if e.ViewSwitch {
			n++
		}
	}
	return n
}

// String renders the trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for i, e := range t.Events {
		mark := ""
		if e.ViewSwitch {
			mark = " [view-switch]"
		}
		fmt.Fprintf(&b, "%3d. %-8s %-10s %-8s %s%s\n", i+1, e.Proc, e.Label, e.Kind, e.Detail, mark)
	}
	return b.String()
}

// Clone returns an independent copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Events: append([]Event(nil), t.Events...)}
}
