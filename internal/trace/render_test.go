package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden rendering files")

// sampleTrace exercises every derived rendering path of Event.Text: the
// message-annotated and plain variants of each kind, array accesses,
// nondet choices, and the eagerly-rendered Detail events.
func sampleTrace() *Trace {
	msg := func(seq int, v string, val int64, t int) *MsgRef {
		return &MsgRef{Seq: seq, Var: v, Val: val, T: t}
	}
	tr := &Trace{}
	tr.Append(Event{Proc: "p0", Label: "p0.0", Kind: KindWrite, Var: "x", Val: 1, HasVal: true,
		WroteMsg: msg(4, "x", 1, 1)})
	tr.Append(Event{Proc: "p0", Label: "p0.1", Kind: KindWrite, Var: "y", Val: 2, HasVal: true})
	tr.Append(Event{Proc: "p1", Label: "p1.0", Kind: KindRead, Var: "y", Reg: "a", Val: 2, HasVal: true,
		ReadMsg: msg(5, "y", 2, 1), ViewSwitch: true})
	tr.Append(Event{Proc: "p1", Label: "p1.1", Kind: KindRead, Var: "x", Reg: "b", Val: 0, HasVal: true})
	tr.Append(Event{Proc: "p1", Label: "p1.2", Kind: KindRead, Var: "tab", Reg: "c", Idx: 3, HasIdx: true,
		Val: 7, HasVal: true})
	tr.Append(Event{Proc: "p1", Label: "p1.3", Kind: KindWrite, Var: "tab", Idx: 3, HasIdx: true,
		Val: 8, HasVal: true})
	tr.Append(Event{Proc: "p0", Label: "p0.2", Kind: KindCAS, Var: "l", Old: 0, HasOld: true,
		Val: 1, HasVal: true, ReadMsg: msg(2, "l", 0, 0)})
	tr.Append(Event{Proc: "p0", Label: "p0.3", Kind: KindCAS, Var: "l", Old: 1, HasOld: true,
		Val: 2, HasVal: true})
	tr.Append(Event{Proc: "p1", Label: "p1.4", Kind: KindFence, Var: "_fence", Val: 1, HasVal: true,
		ReadMsg: msg(3, "_fence", 0, 0)})
	tr.Append(Event{Proc: "p1", Label: "p1.5", Kind: KindFence})
	tr.Append(Event{Proc: "p0", Label: "p0.4", Kind: KindLocal, Reg: "r", Val: 3, HasVal: true, Choice: true})
	tr.Append(Event{Proc: "p0", Label: "p0.5", Kind: KindLocal, Reg: "r", Val: 4, HasVal: true})
	tr.Append(Event{Proc: "p0", Label: "p0.6", Kind: KindAssume, Detail: "assume: $r == 4"})
	tr.Append(Event{Proc: "p1", Label: "p1.6", Kind: KindViolation, Detail: "assert failed: $a != 2"})
	return tr
}

// TestGoldenTextRendering pins the human-readable trace rendering: the
// derived Text of every event shape, byte for byte, against
// testdata/sample_trace.txt. Refresh with -update-golden after an
// intentional format change.
func TestGoldenTextRendering(t *testing.T) {
	got := sampleTrace().String()
	golden := filepath.Join("testdata", "sample_trace.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if got != string(want) {
		t.Errorf("rendering drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	validated := true
	meta := Meta{Program: "sample", Engine: "replay", K: 2, Validated: &validated}
	if err := tr.WriteJSONL(&buf, meta); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var gotMeta Meta
	if err := json.Unmarshal(sc.Bytes(), &gotMeta); err != nil {
		t.Fatalf("header: %v", err)
	}
	if gotMeta.Schema != Schema {
		t.Errorf("schema %q, want %q", gotMeta.Schema, Schema)
	}
	if gotMeta.Events != tr.Len() || gotMeta.ViewSwitches != tr.ViewSwitches() {
		t.Errorf("meta counts %d/%d, want %d/%d", gotMeta.Events, gotMeta.ViewSwitches, tr.Len(), tr.ViewSwitches())
	}
	if gotMeta.Validated == nil || !*gotMeta.Validated {
		t.Error("validated flag lost in export")
	}

	n := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d: %v", n+1, err)
		}
		if ev["step"] != float64(n+1) {
			t.Errorf("line %d: step %v", n+1, ev["step"])
		}
		if _, ok := ev["detail"]; !ok {
			t.Errorf("line %d: no detail", n+1)
		}
		n++
	}
	if n != tr.Len() {
		t.Errorf("%d event lines, want %d", n, tr.Len())
	}

	// Spot-check optional-field hygiene: the read of x yields value 0,
	// which must survive as an explicit 0, while events without a value
	// must omit the key entirely.
	var buf2 bytes.Buffer
	if err := tr.WriteJSONL(&buf2, meta); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(buf2.Bytes(), []byte("\n"))
	var readX, fencePlain map[string]any
	if err := json.Unmarshal(lines[4], &readX); err != nil { // step 4: $b = x reads 0
		t.Fatal(err)
	}
	if v, ok := readX["val"]; !ok || v != float64(0) {
		t.Errorf("genuine zero value lost: %v", readX)
	}
	if err := json.Unmarshal(lines[10], &fencePlain); err != nil { // step 10: plain fence
		t.Fatal(err)
	}
	if _, ok := fencePlain["val"]; ok {
		t.Errorf("unset value serialised: %v", fencePlain)
	}
}

func TestChromeExport(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, Meta{Program: "sample"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Meta        Meta             `json:"ravbmcMeta"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Meta.Schema != Schema || doc.Meta.Events != tr.Len() {
		t.Errorf("meta: %+v", doc.Meta)
	}
	var names, slices, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			names++
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if names != 2 { // two processes
		t.Errorf("%d thread_name records, want 2", names)
	}
	if slices != tr.Len() {
		t.Errorf("%d slices, want %d", slices, tr.Len())
	}
	if instants != tr.ViewSwitches() {
		t.Errorf("%d view-switch instants, want %d", instants, tr.ViewSwitches())
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		err  bool
	}{
		{"jsonl", FormatJSONL, false},
		{"", FormatJSONL, false},
		{"chrome", FormatChrome, false},
		{"text", FormatText, false},
		{"xml", 0, true},
	} {
		got, err := ParseFormat(tc.in)
		if (err != nil) != tc.err || (err == nil && got != tc.want) {
			t.Errorf("ParseFormat(%q) = %v, %v", tc.in, got, err)
		}
	}
}
