package trace

import (
	"strings"
	"testing"
)

func sample() *Trace {
	t := &Trace{}
	t.Append(Event{Proc: "p0", Label: "l1", Kind: KindWrite, Detail: "x = 1"})
	t.Append(Event{Proc: "p1", Label: "l2", Kind: KindRead, Detail: "$r = x reads 1", ViewSwitch: true})
	t.Append(Event{Proc: "p1", Label: "l3", Kind: KindViolation, Detail: "assert failed"})
	return t
}

func TestAppendAndLen(t *testing.T) {
	tr := sample()
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestViewSwitchCount(t *testing.T) {
	if n := sample().ViewSwitches(); n != 1 {
		t.Errorf("ViewSwitches = %d", n)
	}
}

func TestStringRendering(t *testing.T) {
	s := sample().String()
	for _, frag := range []string{"p0", "p1", "write", "read", "VIOLATION", "[view-switch]", "x = 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered trace missing %q:\n%s", frag, s)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := sample()
	cp := tr.Clone()
	cp.Events[0].Proc = "zzz"
	if tr.Events[0].Proc != "p0" {
		t.Error("Clone shares the event slice")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRead: "read", KindWrite: "write", KindCAS: "cas", KindFence: "fence",
		KindLocal: "local", KindAssume: "assume", KindAssertOK: "assert",
		KindViolation: "VIOLATION", KindSwitch: "switch",
	} {
		if k.String() != want {
			t.Errorf("kind %d prints %q, want %q", int(k), k.String(), want)
		}
	}
}
