package core

import (
	"fmt"
	"strings"

	"ravbmc/internal/lang"
	"ravbmc/internal/replay"
	"ravbmc/internal/trace"
)

// Lift maps an SC trace of [[src]]_K back to the source program: a
// sequence of source-level witness actions, one per executed visible
// source statement, carrying the choices the translated program made
// (view-altering or not, which published message was read, which
// time-stamp a tracked write claimed, which message-store slot a
// publish filled). src must be the program that was translated — after
// unrolling and lang.EnsureLabels — so that every event label resolves
// to a source statement.
//
// The lifting walks the trace once. Every translated statement is one
// atomic block whose events all carry the source statement's label
// (blocks are named after their statement and inner instructions
// inherit the block label), and every block opens with a "_ch" or "_ns"
// scratch nondet, so block boundaries are recognisable even when
// unrolled loop iterations duplicate a label. Scratch events inside a
// block are folded into the block's action; source-level nondets and
// the violation pass through as actions of their own.
func Lift(src *lang.Program, t *trace.Trace) ([]replay.Action, error) {
	if t == nil || len(t.Events) == 0 {
		return nil, fmt.Errorf("lift: empty trace")
	}
	idx := liftIndex(src)
	scratch := map[string]bool{}
	for _, r := range tempRegs {
		scratch[r] = true
	}
	var acts []replay.Action
	var open *liftBlock
	closeBlock := func() error {
		if open == nil {
			return nil
		}
		a, err := open.action()
		if err != nil {
			return err
		}
		acts = append(acts, a)
		open = nil
		return nil
	}
	newBlock := func(e *trace.Event) error {
		info, ok := idx[e.Proc][e.Label]
		if !ok {
			return fmt.Errorf("lift: event label %q of process %s names no source statement", e.Label, e.Proc)
		}
		open = &liftBlock{proc: e.Proc, label: e.Label, info: info, ch: -1, mn: -1, stamp: -1, pub: -1}
		return nil
	}

	for i := range t.Events {
		e := &t.Events[i]
		switch {
		case e.Kind == trace.KindViolation:
			if err := closeBlock(); err != nil {
				return nil, err
			}
			acts = append(acts, replay.Action{Kind: replay.ActViolation, Proc: e.Proc, Label: e.Label})

		case e.Kind == trace.KindLocal && e.Choice && scratch[e.Reg]:
			switch e.Reg {
			case "_ch":
				if err := closeBlock(); err != nil {
					return nil, err
				}
				if err := newBlock(e); err != nil {
					return nil, err
				}
				open.ch = int(e.Val)
			case "_ns":
				// Inside a full-translation write block the stamp guess
				// follows the tracked-branch choice; otherwise (probe
				// variants force-track every write) it opens the block.
				if open != nil && open.proc == e.Proc && open.label == e.Label &&
					open.info.kind == replay.ActWrite && open.ch == 1 && !open.nsSeen {
					open.nsSeen = true
					break
				}
				if err := closeBlock(); err != nil {
					return nil, err
				}
				if err := newBlock(e); err != nil {
					return nil, err
				}
				open.nsSeen = true
			case "_mn":
				if open == nil || open.proc != e.Proc {
					return nil, fmt.Errorf("lift: stray _mn guess at %s/%s", e.Proc, e.Label)
				}
				open.mn = int(e.Val)
			default:
				// _pub and the remaining scratch guesses carry no
				// information the block events below do not repeat.
			}

		case e.Kind == trace.KindLocal && e.Choice:
			// A source-level nondet: its register is not scratch.
			if err := closeBlock(); err != nil {
				return nil, err
			}
			acts = append(acts, replay.Action{
				Kind: replay.ActNondet, Proc: e.Proc, Label: e.Label,
				Reg: e.Reg, Val: lang.Value(e.Val),
			})

		case strings.HasPrefix(e.Var, "_"):
			if open == nil || open.proc != e.Proc || open.label != e.Label {
				return nil, fmt.Errorf("lift: instrumentation event %s %s outside its block at %s/%s",
					e.Kind, e.Var, e.Proc, e.Label)
			}
			switch {
			case e.Kind == trace.KindWrite && e.HasIdx && strings.HasPrefix(e.Var, "_avail_"):
				open.stamp = e.Idx
			case e.Kind == trace.KindWrite && e.HasIdx && e.Var == msVarArr:
				open.pub = e.Idx
			}

		default:
			return nil, fmt.Errorf("lift: unexpected event %s %s at %s/%s", e.Kind, e.Var, e.Proc, e.Label)
		}
	}
	if err := closeBlock(); err != nil {
		return nil, err
	}
	return acts, nil
}

// stmtInfo is the lifting-relevant shape of one source statement.
type stmtInfo struct {
	kind replay.ActionKind
	v    string // shared variable (read/write/cas)
	reg  string // destination register (read)
}

// liftBlock accumulates the scratch events of one translated block.
type liftBlock struct {
	proc, label string
	info        stmtInfo
	ch          int  // _ch guess, or -1 (probe blocks have none)
	nsSeen      bool // a _ns stamp guess was consumed
	mn          int  // designated message-store slot, or -1
	stamp       int  // claimed time-stamp (_avail_x store index), or -1
	pub         int  // published message-store slot (_ms_var store index), or -1
}

// action folds the block into a witness action.
func (b *liftBlock) action() (replay.Action, error) {
	a := replay.Action{
		Kind: b.info.kind, Proc: b.proc, Label: b.label,
		Var: b.info.v, Reg: b.info.reg,
		ReadIdx: b.mn, Stamp: b.stamp, PublishIdx: b.pub,
	}
	switch b.info.kind {
	case replay.ActRead, replay.ActCAS, replay.ActFence:
		a.ViewAltering = b.ch == 1
		if a.ViewAltering && b.mn < 0 {
			return a, fmt.Errorf("lift: view-altering %s at %s/%s designates no message", b.info.kind, b.proc, b.label)
		}
		if b.info.kind != replay.ActRead && b.stamp < 0 {
			return a, fmt.Errorf("lift: %s at %s/%s claims no time-stamp", b.info.kind, b.proc, b.label)
		}
	case replay.ActWrite:
		a.Tracked = b.stamp >= 0
	default:
		return a, fmt.Errorf("lift: block at %s/%s lifted from non-visible statement %v", b.proc, b.label, b.info.kind)
	}
	return a, nil
}

// liftIndex maps (process, label) to the shape of the source statement,
// for every statement a translated block can be named after. Unrolled
// loop iterations duplicate labels; the copies are identical statements,
// so overwriting is harmless.
func liftIndex(src *lang.Program) map[string]map[string]stmtInfo {
	out := map[string]map[string]stmtInfo{}
	for _, pr := range src.Procs {
		m := map[string]stmtInfo{}
		var rec func(body []lang.Stmt)
		rec = func(body []lang.Stmt) {
			for _, s := range body {
				switch t := s.(type) {
				case lang.Read:
					m[t.Lbl] = stmtInfo{kind: replay.ActRead, v: t.Var, reg: t.Reg}
				case lang.Write:
					m[t.Lbl] = stmtInfo{kind: replay.ActWrite, v: t.Var}
				case lang.CAS:
					m[t.Lbl] = stmtInfo{kind: replay.ActCAS, v: t.Var}
				case lang.Fence:
					m[t.Lbl] = stmtInfo{kind: replay.ActFence}
				case lang.If:
					rec(t.Then)
					rec(t.Else)
				case lang.While:
					rec(t.Body)
				}
			}
		}
		rec(pr.Body)
		out[pr.Name] = m
	}
	return out
}
