package core

import (
	"context"
	"testing"

	"ravbmc/internal/lang"
)

// TestFindMinKParallelMatchesSerial: the speculative sweep must return
// exactly the serial sweep's (k, verdict) — smaller bounds always run
// to completion, so cancelling losers cannot change the answer.
func TestFindMinKParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		prog *lang.Program
		maxK int
	}{
		{"chain2", chain2(), 4},
		{"mp_safe", mpSafe(), 2},
		{"sb_checked", sbChecked(false), 3},
		{"fenced_sb", sbChecked(true), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sk, sres, serr := FindMinK(tc.prog, tc.maxK, Options{})
			for _, jobs := range []int{1, 2, 4} {
				pk, pres, perr := FindMinKParallel(context.Background(), tc.prog, tc.maxK, Options{}, jobs)
				if (serr == nil) != (perr == nil) {
					t.Fatalf("jobs=%d: err=%v, serial err=%v", jobs, perr, serr)
				}
				if pk != sk || pres.Verdict != sres.Verdict {
					t.Errorf("jobs=%d: got K=%d %v, serial K=%d %v",
						jobs, pk, pres.Verdict, sk, sres.Verdict)
				}
			}
		})
	}
}

// TestFindMinKParallelErrorPropagates: a per-bound error surfaces just
// as it does from the serial sweep.
func TestFindMinKParallelErrorPropagates(t *testing.T) {
	p := lang.NewProgram("loopy", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, _, err := FindMinKParallel(context.Background(), p, 2, Options{}, 4); err == nil {
		t.Error("loops without an unroll bound must error in parallel mode too")
	}
}

// TestFindMinKParallelPreCancelled: a dead group context yields an
// inconclusive, timed-out result without running any bound.
func TestFindMinKParallelPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k, res, err := FindMinKParallel(ctx, sbChecked(false), 3, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inconclusive || !res.TimedOut {
		t.Errorf("got K=%d %v (TimedOut=%v), want Inconclusive/TimedOut", k, res.Verdict, res.TimedOut)
	}
}
