package core

import (
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// TestRunTimedOutInconclusive: an expired deadline must yield
// Verdict=Inconclusive with TimedOut=true — never a spurious SAFE —
// whether the program is actually safe or buggy.
func TestRunTimedOutInconclusive(t *testing.T) {
	for _, p := range []*lang.Program{mpSafe(), sbChecked(false)} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := Run(p, Options{K: 2, Timeout: time.Nanosecond})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Inconclusive || !res.TimedOut {
				t.Errorf("expired deadline: got verdict=%v timedOut=%v, want INCONCLUSIVE with TimedOut",
					res.Verdict, res.TimedOut)
			}
		})
	}
}

// hasPhase reports whether the report timed the named phase.
func hasPhase(rep *obs.Report, name string) bool {
	for _, ph := range rep.Phases {
		if ph.Name == name {
			return true
		}
	}
	return false
}

// TestObsCountersMatchResult: the recorder's backend counters must
// agree with the hand-threaded Result statistics, and the report must
// carry the run identity.
func TestObsCountersMatchResult(t *testing.T) {
	rec := obs.New()
	res, err := Run(sbChecked(false), Options{K: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("instrumented run returned no report")
	}
	if rep.Verdict != res.Verdict.String() {
		t.Errorf("report verdict %q != result verdict %q", rep.Verdict, res.Verdict)
	}
	if got := rep.Counters["sc.states"]; got != int64(res.States) {
		t.Errorf("sc.states counter = %d, Result.States = %d", got, res.States)
	}
	if got := rep.Counters["sc.transitions"]; got != int64(res.Transitions) {
		t.Errorf("sc.transitions counter = %d, Result.Transitions = %d", got, res.Transitions)
	}
	if hits, misses := rep.Counters["sc.dedup_hits"], rep.Counters["sc.dedup_misses"]; misses != int64(res.States) {
		t.Errorf("dedup misses = %d (hits %d), want one miss per visited state %d", misses, hits, res.States)
	}
	if !hasPhase(rep, "validate") || !hasPhase(rep, "translate") {
		t.Errorf("report phases missing driver phases: %+v", rep.Phases)
	}
}

// TestUninstrumentedRunHasNoReport: without a recorder the result stays
// lean.
func TestUninstrumentedRunHasNoReport(t *testing.T) {
	res, err := Run(mpObservable(), Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Errorf("uninstrumented run carries a report: %+v", res.Report)
	}
}

// TestObsProbeTierOutcomes: a probe-tier hit is recorded iff a probe
// found the bug — on a SAFE program both probes miss and no hit or tier
// is recorded; on a probe-caught bug exactly one hit is recorded with
// its tier and the driver never reaches the final full-bound search.
func TestObsProbeTierOutcomes(t *testing.T) {
	rec := obs.New()
	res, err := Run(mpSafe(), Options{K: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("mp_safe: got %v", res.Verdict)
	}
	c := res.Report.Counters
	if c["core.probes_run"] != 2 || c["core.probe_misses"] != 2 || c["core.probe_hits"] != 0 {
		t.Errorf("safe run probe counters = run:%d hit:%d miss:%d, want 2/0/2",
			c["core.probes_run"], c["core.probe_hits"], c["core.probe_misses"])
	}
	if tier := res.Report.Gauges["core.probe_hit_tier"]; tier != 0 {
		t.Errorf("safe run recorded probe hit tier %d", tier)
	}
	if !hasPhase(res.Report, "final.search") {
		t.Errorf("safe verdict requires the final full-bound search; phases = %+v", res.Report.Phases)
	}

	prog, err := benchmarks.ByName("peterson_0")
	if err != nil {
		t.Fatal(err)
	}
	rec = obs.New()
	res, err = Run(prog, Options{K: 2, Unroll: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("peterson_0: got %v", res.Verdict)
	}
	c = res.Report.Counters
	if c["core.probe_hits"]+c["core.probe_misses"] != c["core.probes_run"] {
		t.Errorf("probe outcomes don't partition runs: hit:%d miss:%d run:%d",
			c["core.probe_hits"], c["core.probe_misses"], c["core.probes_run"])
	}
	tier := res.Report.Gauges["core.probe_hit_tier"]
	if (c["core.probe_hits"] == 1) != (tier >= 1 && tier <= 2) {
		t.Errorf("hit tier gauge %d inconsistent with probe_hits %d", tier, c["core.probe_hits"])
	}
	if c["core.probe_hits"] == 1 && hasPhase(res.Report, "final.compile") {
		t.Error("probe hit recorded, but the driver still ran the final pass")
	}
	if c["core.probe_hits"] == 0 && !hasPhase(res.Report, "final.compile") {
		t.Error("no probe hit recorded, but the final pass never ran")
	}
	if c["core.probe_hits"] != 1 {
		t.Errorf("peterson_0 bug is probe-reachable, want exactly one probe hit, got %d", c["core.probe_hits"])
	}
}
