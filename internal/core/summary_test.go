package core

import (
	"strings"
	"testing"
)

func TestSummarizeTraceCompresses(t *testing.T) {
	res, err := Run(mpObservable(), Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe || res.Trace == nil {
		t.Fatalf("expected UNSAFE with trace, got %v", res.Verdict)
	}
	sum := SummarizeTrace(res.Trace)
	if sum.Len() == 0 {
		t.Fatal("summary empty")
	}
	if sum.Len() >= res.Trace.Len() {
		t.Errorf("summary (%d events) not smaller than raw trace (%d)", sum.Len(), res.Trace.Len())
	}
	// The violation and at least one view-switch marker survive.
	s := sum.String()
	if !strings.Contains(s, "VIOLATION") {
		t.Error("summary lost the violation")
	}
	if sum.ViewSwitches() == 0 {
		t.Error("summary lost the view-switch accounting")
	}
}

func TestSummarizeTraceNil(t *testing.T) {
	if SummarizeTrace(nil) != nil {
		t.Error("nil trace must summarise to nil")
	}
}
