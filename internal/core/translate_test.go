package core

import (
	"strings"
	"testing"

	"ravbmc/internal/lang"
)

func mpProgram() *lang.Program {
	p := lang.NewProgram("mp", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "y"), lang.ReadS("b", "x"))
	return p
}

func TestTranslateDeclaresDataStructures(t *testing.T) {
	out, err := Translate(mpProgram(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Globals: counters plus per-variable stores.
	for _, v := range []string{msgsUsedVar, sRAVar} {
		if !out.HasVar(v) {
			t.Errorf("missing global %s", v)
		}
	}
	for _, a := range []string{"_ms_var", "_ms_t_x", "_ms_v_x", "_ms_t_y", "_ms_v_y", "_avail_x", "_avail_y"} {
		if !out.HasArray(a) {
			t.Errorf("missing array %s", a)
		}
	}
	// message_store has K slots.
	for _, a := range out.Arrays {
		if a.Name == "_ms_var" && a.Size != 3 {
			t.Errorf("_ms_var size %d, want K=3", a.Size)
		}
	}
	// The source shared variables are gone: all accesses are simulated.
	if out.HasVar("x") || out.HasVar("y") {
		t.Error("translated program must not keep the source shared variables")
	}
}

func TestTranslateStampBudgets(t *testing.T) {
	// x written once per process (2 total), K=3 would allow 6; the
	// loop-free budget caps at the write count.
	out, err := Translate(mpProgram(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Arrays {
		switch a.Name {
		case "_avail_x", "_avail_y":
			// one write each => budget 1, array size budget+1.
			if a.Size != 2 {
				t.Errorf("%s size %d, want 2", a.Name, a.Size)
			}
		}
	}

	// With a CAS on x the pool gains one adjacent stamp.
	p := mpProgram()
	p.Procs[1].Body = append(p.Procs[1].Body, lang.CASS("x", lang.C(1), lang.C(2)))
	p.Procs[1].AddReg("c")
	out2, err := Translate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out2.Arrays {
		if a.Name == "_avail_x" && a.Size != 3 {
			t.Errorf("_avail_x with CAS: size %d, want 3", a.Size)
		}
	}
}

func TestTranslateAddsViewRegisters(t *testing.T) {
	out, err := Translate(mpProgram(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pr := out.ProcByName("p1")
	if pr == nil {
		t.Fatal("p1 missing")
	}
	want := []string{"a", "b", "_vt_x", "_vv_x", "_vl_x", "_vt_y", "_vv_y", "_vl_y", "_ch", "_ns", "_sra"}
	have := map[string]bool{}
	for _, r := range pr.Regs {
		have[r] = true
	}
	for _, r := range want {
		if !have[r] {
			t.Errorf("p1 missing register %s", r)
		}
	}
}

func TestTranslateFenceAddsFenceVariable(t *testing.T) {
	p := lang.NewProgram("f", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.FenceS())
	out, err := Translate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasArray("_avail__fence") {
		t.Error("fence variable pool missing")
	}
	s := out.String()
	if !strings.Contains(s, "_vv__fence") {
		t.Error("fence view registers missing from translated code")
	}
}

func TestTranslateKeepsControlFlowAndLocals(t *testing.T) {
	p := lang.NewProgram("cf", "x")
	p.AddProc("p0", "r").Add(
		lang.NondetS("r", 0, 3),
		lang.IfS(lang.Eq(lang.R("r"), lang.C(1)), lang.WriteC("x", 1)),
		lang.AssumeS(lang.Le(lang.R("r"), lang.C(2))),
		lang.AssertS(lang.Ge(lang.R("r"), lang.C(0))),
		lang.Term{},
	)
	out, err := Translate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"nondet(0, 3)", "if", "assume", "assert", "term"} {
		if !strings.Contains(s, frag) {
			t.Errorf("translated program lost %q", frag)
		}
	}
}

func TestTranslateLoopsStructurally(t *testing.T) {
	// Loops without RMWs translate structurally (paper Fig. 4).
	p := lang.NewProgram("loop", "x")
	p.AddProc("p0", "r").Add(
		lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")),
	)
	out, err := Translate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "while") {
		t.Error("structural loop translation lost the loop")
	}
	// But CAS inside a loop requires unrolling first.
	q := lang.NewProgram("loopcas", "x")
	q.AddProc("p0", "r").Add(
		lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.CASS("x", lang.C(0), lang.C(1))),
	)
	if _, err := Translate(q, 2); err == nil {
		t.Error("CAS inside a loop must be rejected")
	}
}

func TestTranslateProbeIsSmaller(t *testing.T) {
	full, err := Translate(mpProgram(), 2)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := TranslateProbe(mpProgram(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if probe.CountStmts() >= full.CountStmts() {
		t.Errorf("probe (%d stmts) should be smaller than full (%d)",
			probe.CountStmts(), full.CountStmts())
	}
	// The probe has no untracked-write branch, hence no view_l := 0.
	if strings.Contains(probe.String(), "$_vl_x = 0") {
		t.Error("probe must not contain untracked writes")
	}
}

func TestTranslateRejectsNegativeK(t *testing.T) {
	if _, err := Translate(mpProgram(), -1); err == nil {
		t.Error("negative K must be rejected")
	}
}

func TestTranslatedProgramRunsUnderSCOnly(t *testing.T) {
	out, err := Translate(mpProgram(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.ValidateRA(); err == nil {
		t.Error("translated program uses arrays/atomic and must be outside the RA fragment")
	}
	if err := out.Validate(); err != nil {
		t.Errorf("translated program must be well-formed: %v", err)
	}
}

// TestProbeSoundness: any bug the probe variants find is found by the
// full translation too (the probe explores a subset of guesses).
func TestProbeSoundness(t *testing.T) {
	progs := []*lang.Program{mpObservable(), chain2(), casExclusive()}
	for _, p := range progs {
		for k := 0; k <= 2; k++ {
			full, err := Run(p, Options{K: k, NoProbes: true})
			if err != nil {
				t.Fatal(err)
			}
			probed, err := Run(p, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			if full.Verdict != probed.Verdict {
				t.Errorf("%s K=%d: NoProbes=%v with-probes=%v", p.Name, k, full.Verdict, probed.Verdict)
			}
		}
	}
}
