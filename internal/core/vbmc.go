package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/replay"
	"ravbmc/internal/sc"
	"ravbmc/internal/sched"
	"ravbmc/internal/tmai"
	"ravbmc/internal/trace"
)

// Verdict is the outcome of a VBMC run.
type Verdict int

// Verdicts. Safe means: no assertion fails in any execution with at
// most K view switches and at most L loop iterations — an
// under-approximate guarantee, exactly as in the paper (Sec. 6). Unsafe
// comes with a witness trace.
const (
	Safe Verdict = iota
	Unsafe
	// Inconclusive is reported when the search hit a state cap before
	// covering the bounded space.
	Inconclusive
)

// String returns SAFE/UNSAFE/INCONCLUSIVE as the tool prints it.
func (v Verdict) String() string {
	switch v {
	case Safe:
		return "SAFE"
	case Unsafe:
		return "UNSAFE"
	case Inconclusive:
		return "INCONCLUSIVE"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Options configures a VBMC run.
type Options struct {
	// K is the view-switch budget.
	K int
	// Unroll is the loop unrolling bound L. It is required (positive)
	// when the program has loops, mirroring the CBMC requirement that
	// all loops be bounded.
	Unroll int
	// MaxContexts overrides the SC backend's context bound: 0 selects
	// the paper's K+n (n = number of processes), a negative value runs
	// the backend without a context bound (still sound and complete for
	// the K-bounded problem, used by the ablation benchmarks).
	MaxContexts int
	// MaxStates caps the backend search; 0 means unlimited.
	MaxStates int
	// Timeout caps wall-clock time (0 = none). The paper's evaluation
	// uses 3600 s.
	Timeout time.Duration
	// Ctx cancels the whole run early (nil = never): the backend
	// searches poll it on a stride, so a parallel harness stops a
	// losing run within one granule. Composes with Timeout. A cancelled
	// run reports Inconclusive with TimedOut=true.
	Ctx context.Context
	// NoProbes disables the under-approximate probe ladder (the cheap
	// forced-tracked / small-stamp-window pass run before the full
	// translation); used by the ablation benchmarks.
	NoProbes bool
	// ExactDedup makes the SC backend's visited set retain full state
	// keys instead of 64-bit fingerprints (see sc.Options.ExactDedup and
	// internal/fp); for collision-paranoid runs and parity testing.
	ExactDedup bool
	// Workers selects intra-query parallel exploration in the SC
	// backend: 0 keeps every search serial, n >= 1 runs each backend
	// search on an n-worker work-stealing pool, negative selects
	// runtime.NumCPU. The verdict is identical either way (see
	// internal/partest); only wall clock changes.
	Workers int
	// StealSeed seeds the backend pools' steal-order randomization;
	// exposed for the differential fuzz harness.
	StealSeed int64
	// Reduce turns on the SC backend's source-DPOR partial-order
	// reduction (sc.Options.Reduce): only representative interleavings
	// of commuting independent steps are explored. The backend forces
	// an unbounded context bound when reducing (bounded contexts do not
	// commute), so the iterative context-deepening ladder is skipped;
	// verdicts are unchanged, state counts shrink. Falls back to the
	// unreduced search on programs where the reduction does not apply.
	Reduce bool
	// TMAI runs the thread-modular abstract-interpretation pre-pass
	// (internal/tmai) before any bounded search: if it proves the
	// program safe, the Result is Safe with Unbounded=true — a proof
	// for every K and L, not just the requested bounds. The pre-pass
	// handles loops by widening, so it runs before the unroll
	// requirement check. On Unknown the bounded pipeline proceeds
	// normally.
	TMAI bool
	// Obs, when non-nil, instruments the run: the driver records
	// per-phase spans (validate, unroll, per-probe translate / compile /
	// deepen / search, the full translate, and the final compile /
	// deepen / search), per-probe outcome counters ("core.probes_run",
	// "core.probe_hits", "core.probe_misses", gauge
	// "core.probe_hit_tier"), and the SC backend adds its own search
	// counters against the same recorder. The Result then carries
	// Obs.Report(). A nil recorder disables all of it at the cost of a
	// nil-check per instrument event.
	Obs *obs.Recorder
}

// Result reports a VBMC verdict with search statistics.
type Result struct {
	Verdict Verdict
	Trace   *trace.Trace
	// States and Transitions are backend search statistics.
	States, Transitions int
	// TranslatedStmts is the statement count of [[prog]]_K, recorded to
	// exhibit the polynomial size of the translation.
	TranslatedStmts int
	// ContextBound is the bound the backend actually used (0 =
	// unbounded).
	ContextBound int
	// Witness is the source-level RA witness: the backend's trace of
	// [[prog]]_K lifted back to the source program and re-executed under
	// the RA operational semantics. Nil unless the verdict is Unsafe and
	// the replay validation succeeded.
	Witness *trace.Trace
	// WitnessValidated reports whether the lifted witness replayed
	// successfully against internal/ra, reaching the claimed violation.
	// Always false for Safe/Inconclusive verdicts.
	WitnessValidated bool
	// WitnessErr carries the lift or replay failure when an Unsafe
	// verdict's witness could not be validated.
	WitnessErr string
	// TimedOut is true when the Timeout cut the backend search short
	// (the verdict is then Inconclusive).
	TimedOut bool
	// Unbounded reports that a Safe verdict holds for every view-switch
	// budget K and unroll bound L — the thread-modular abstract-
	// interpretation pre-pass proved the program outright, so the
	// under-approximate SAFE@K caveat does not apply. Always false for
	// Unsafe/Inconclusive verdicts.
	Unbounded bool
	// Report is the structured observability report (per-phase wall
	// times, engine counters, derived rates); nil unless Options.Obs
	// was set.
	Report *obs.Report
}

// Run checks the program under RA with at most K view switches by
// translating it to SC and model-checking the translation: the paper's
// VBMC pipeline with the explicit-state backend substituted for
// Lazy CSeq + CBMC.
//
// Because the backend is an explicit-state search rather than a SAT
// solver, the driver layers two goal-directed devices on top of the
// paper's reduction, neither of which changes the decided problem:
//
//   - an under-approximate probe: the translation restricted to tracked
//     writes with stamps at most 2 above the view is checked first (its
//     guesses are a subset of the full translation's, so a bug it finds
//     is genuine);
//   - iterative context deepening: within each pass, small context
//     bounds are searched before the full K+n bound.
func Run(prog *lang.Program, opts Options) (Result, error) {
	rec := opts.Obs
	span := rec.StartPhase("validate")
	err := prog.ValidateRA()
	span.End()
	if err != nil {
		return Result{}, err
	}
	// Thread-modular pre-pass: runs before the unroll requirement check
	// because the abstract interpretation handles loops by widening — a
	// loopy program can be proved safe with no L at all.
	if opts.TMAI {
		span = rec.StartPhase("tmai")
		ar := tmai.Analyze(prog, tmai.Options{})
		span.End()
		if ar.Verdict == tmai.Safe {
			rec.Counter("core.tmai_proofs").Inc()
			out := Result{Verdict: Safe, Unbounded: true}
			if rec != nil {
				rep := rec.Report()
				rep.Verdict = out.Verdict.String()
				rep.K = opts.K
				rep.L = opts.Unroll
				out.Report = rep
			}
			return out, nil
		}
		rec.Counter("core.tmai_unknown").Inc()
	}
	src := prog
	if lang.MaxLoopDepth(prog) > 0 {
		if opts.Unroll <= 0 {
			return Result{}, fmt.Errorf("core: program %q has loops; an unroll bound L is required", prog.Name)
		}
		span = rec.StartPhase("unroll")
		src = lang.Unroll(prog, opts.Unroll)
		span.End()
	}
	// Label every statement so the translated blocks are named after
	// their source statements; witness lifting resolves event labels back
	// through exactly these names.
	src = lang.EnsureLabels(src)
	bound := opts.MaxContexts
	if bound == 0 {
		bound = opts.K + len(prog.Procs)
	}
	if bound < 0 {
		bound = 0 // backend: unbounded
	}
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	// Stamp the run's bounds into the live search telemetry, so watchers
	// see which K/L probe is being searched (L stays -1 for loop-free
	// programs, where no unrolling applies).
	unrollProbe := int64(-1)
	if opts.Unroll > 0 {
		unrollProbe = int64(opts.Unroll)
	}
	rec.Search().SetProbe(int64(opts.K), unrollProbe)
	out := Result{ContextBound: bound}
	// finish validates the witness of an Unsafe result and stamps the
	// observability report onto it. Lifting maps the backend's trace of
	// [[src]]_K to source-level actions; replay re-executes them under
	// the RA operational semantics and must reach the claimed violation.
	finish := func(out Result) Result {
		if out.Verdict == Unsafe && out.Trace != nil {
			span := rec.StartPhase("lift")
			acts, lerr := Lift(src, out.Trace)
			span.End()
			if lerr != nil {
				out.WitnessErr = lerr.Error()
			} else {
				span = rec.StartPhase("replay")
				w, rerr := replay.Run(src, acts, replay.Options{Obs: rec})
				span.End()
				if rerr != nil {
					out.WitnessErr = rerr.Error()
				} else {
					out.Witness = w
					out.WitnessValidated = true
				}
			}
		}
		if rec != nil {
			rep := rec.Report()
			rep.Verdict = out.Verdict.String()
			rep.K = opts.K
			rep.L = opts.Unroll
			if out.Verdict == Unsafe {
				v := out.WitnessValidated
				rep.WitnessValidated = &v
			}
			out.Report = rep
		}
		return out
	}

	if !opts.NoProbes {
		tiers := []struct {
			v         variant
			maxStates int
			slice     time.Duration
		}{
			// Window 1 is a cheap lottery ticket: it catches bugs whose
			// modification orders follow the merge order, and costs
			// little when it does not.
			{variant{stampWindow: 1, forceTracked: true}, 150_000, opts.Timeout / 8},
			{variant{stampWindow: 2, forceTracked: true}, 600_000, opts.Timeout / 3},
		}
		for i, tier := range tiers {
			phase := fmt.Sprintf("probe%d", i+1)
			rec.Counter("core.probes_run").Inc()
			span = rec.StartPhase(phase + ".translate")
			probeProg, err := translateVariant(src, opts.K, tier.v)
			span.End()
			if err != nil {
				return Result{}, err
			}
			probeOpts := sc.Options{MaxContexts: bound, MaxStates: tier.maxStates, Ctx: opts.Ctx, ExactDedup: opts.ExactDedup, Reduce: opts.Reduce, Workers: opts.Workers, StealSeed: opts.StealSeed, Obs: rec}
			if opts.MaxStates > 0 && opts.MaxStates < probeOpts.MaxStates {
				probeOpts.MaxStates = opts.MaxStates
			}
			if opts.Timeout > 0 {
				probeOpts.Deadline = time.Now().Add(tier.slice)
			}
			probeStart := time.Now()
			res := checkDeepening(probeProg, bound, probeOpts, rec, phase)
			probeSecs := time.Since(probeStart).Seconds()
			rec.Histogram("core.probe_seconds", obs.DurationBuckets).Observe(probeSecs)
			if probeSecs > 0 && res.States > 0 {
				rec.Histogram("core.probe_states_per_sec", obs.RateBuckets).
					Observe(float64(res.States) / probeSecs)
			}
			out.States += res.States
			out.Transitions += res.Transitions
			if res.Violation {
				rec.Counter("core.probe_hits").Inc()
				rec.Gauge("core.probe_hit_tier").Set(int64(i + 1))
				out.Verdict = Unsafe
				out.Trace = res.Trace
				span = rec.StartPhase("translate")
				translated, terr := Translate(src, opts.K)
				span.End()
				if terr == nil {
					out.TranslatedStmts = translated.CountStmts()
					rec.Gauge("translate.stmts").Set(int64(out.TranslatedStmts))
				}
				return finish(out), nil
			}
			rec.Counter("core.probe_misses").Inc()
		}
	}

	span = rec.StartPhase("translate")
	translated, err := Translate(src, opts.K)
	span.End()
	if err != nil {
		return Result{}, err
	}
	out.TranslatedStmts = translated.CountStmts()
	rec.Gauge("translate.stmts").Set(int64(out.TranslatedStmts))
	scOpts := sc.Options{MaxContexts: bound, MaxStates: opts.MaxStates, Deadline: deadline, Ctx: opts.Ctx, ExactDedup: opts.ExactDedup, Reduce: opts.Reduce, Workers: opts.Workers, StealSeed: opts.StealSeed, Obs: rec}
	finalStart := time.Now()
	res := checkDeepening(translated, bound, scOpts, rec, "final")
	finalSecs := time.Since(finalStart).Seconds()
	rec.Histogram("core.final_search_seconds", obs.DurationBuckets).Observe(finalSecs)
	if finalSecs > 0 && res.States > 0 {
		rec.Histogram("core.final_states_per_sec", obs.RateBuckets).
			Observe(float64(res.States) / finalSecs)
	}
	out.States += res.States
	out.Transitions += res.Transitions
	out.TimedOut = res.TimedOut
	switch {
	case res.Violation:
		out.Verdict = Unsafe
		out.Trace = res.Trace
	case res.Exhausted:
		out.Verdict = Safe
	default:
		out.Verdict = Inconclusive
	}
	return finish(out), nil
}

// ladderCap is the per-round state budget of the restart ladder: no
// single scheduling bias may starve the others, and the final uncapped
// full-bound run still decides SAFE exactly.
const ladderCap = 150_000

// checkDeepening compiles the translated program and model-checks it
// with iterative context deepening: counterexamples typically need very
// few contexts, and the k-context state space is far smaller than the
// full one, so small bounds are searched first; the final full-bound
// run still decides SAFE exactly. Phase timings are recorded against
// rec under the given phase prefix (phase+".compile", one
// phase+".deepen" span per ladder round, phase+".search" for the final
// full-bound run).
func checkDeepening(translated *lang.Program, bound int, scOpts sc.Options, rec *obs.Recorder, phase string) sc.Result {
	span := rec.StartPhase(phase + ".compile")
	cp, err := lang.Compile(translated)
	span.End()
	if err != nil {
		// The translation always emits well-formed programs; a failure
		// here is a bug in the translator itself.
		panic(fmt.Sprintf("core: compiling translation: %v", err))
	}
	sys := sc.NewSystem(cp)
	// Publish how many ladder rounds this call will run (the deepening
	// pairs plus the final full-bound search) into the cumulative
	// "core.deepen_total" gauge: progress of "core.deepen_rounds" against
	// it drives the -watch ETA heuristic.
	planned := int64(1)
	if bound > 2 && !scOpts.Reduce {
		planned += 2 * int64(bound-2)
	}
	gTotal := rec.Gauge("core.deepen_total")
	gTotal.Set(gTotal.Value() + planned)
	var res sc.Result
	var totalStates, totalTransitions int
	// Restart ladder: each round pairs a small context bound (2 up to
	// one below the full bound) with one of the two process orders —
	// bugs located in different threads are reached by differently
	// biased searches, cf. the position sensitivity of RCMC in the
	// paper's Tables 3 and 4. Each round carries the ladderCap state
	// budget so that no single bias can starve the others; the final
	// uncapped full-bound run decides SAFE exactly.
	budget := ladderCap
	if scOpts.MaxStates > 0 && budget > scOpts.MaxStates {
		budget = scOpts.MaxStates
	}
	// The restart ladder pairs small context bounds with process-order
	// biases; under the reduction the backend forces unbounded contexts,
	// so every ladder rung would re-run the same full search — skip
	// straight to the final run instead.
	for cb := 2; !scOpts.Reduce && bound > 0 && cb < bound; cb++ {
		for _, rev := range []bool{false, true} {
			rec.Counter("core.deepen_rounds").Inc()
			round := scOpts
			round.MaxContexts = cb
			round.ReverseProcs = rev
			round.MaxStates = budget
			span := rec.StartPhase(phase + ".deepen")
			res = sys.Check(round)
			span.End()
			totalStates += res.States
			totalTransitions += res.Transitions
			if res.Violation || res.TimedOut {
				res.States, res.Transitions = totalStates, totalTransitions
				return res
			}
		}
	}
	if !res.Violation && !res.TimedOut {
		// The final full-bound run is the ladder's last rung: counting it
		// in deepen_rounds lets the round counter reach deepen_total.
		rec.Counter("core.deepen_rounds").Inc()
		span := rec.StartPhase(phase + ".search")
		res = sys.Check(scOpts)
		span.End()
		totalStates += res.States
		totalTransitions += res.Transitions
	}
	res.States, res.Transitions = totalStates, totalTransitions
	return res
}

// FindMinK runs VBMC with K = 0, 1, ..., maxK and returns the first
// UNSAFE result together with the K that exposed the bug — the paper's
// iterative usage ("this subset can be increased iteratively, by
// increasing K, to find bugs in real world programs"). If every bound
// up to maxK is SAFE, the result of the final run is returned with
// k == maxK; opts.K is ignored. The per-run Timeout applies to each
// bound separately. When opts.Obs is set, phase timings and counters
// accumulate across the whole K sweep and the returned Result's Report
// reflects the totals.
func FindMinK(prog *lang.Program, maxK int, opts Options) (int, Result, error) {
	var last Result
	for k := 0; k <= maxK; k++ {
		opts.K = k
		res, err := Run(prog, opts)
		if err != nil {
			return k, Result{}, err
		}
		opts.Obs.Gauge("core.mink_last_k").Set(int64(k))
		if res.Verdict == Unsafe {
			return k, res, nil
		}
		last = res
		// A cancelled sweep context stops the ladder here rather than
		// burning one aborted run per remaining bound.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return k, last, nil
		}
	}
	return maxK, last, nil
}

// FindMinKParallel is FindMinK's speculative mode: it probes several K
// values concurrently on a sched pool of the given width and cancels
// losers as soon as they cannot improve the answer. K-bounded
// reachability is monotone in K (every behaviour with at most k view
// switches also has at most k+1), so the minimal bug bound is the
// smallest K whose run reports Unsafe — once some K is Unsafe, every
// larger bound is cancelled, while all smaller bounds run to completion
// to keep the answer minimal. The returned (k, Result) therefore equals
// the serial FindMinK's, at a fraction of the wall clock when cores are
// available. jobs == 1 falls back to the serial sweep, jobs <= 0
// selects runtime.NumCPU; ctx cancels the whole search (nil = never).
func FindMinKParallel(ctx context.Context, prog *lang.Program, maxK int, opts Options, jobs int) (int, Result, error) {
	if jobs == 1 {
		if opts.Ctx == nil {
			opts.Ctx = ctx
		}
		return FindMinK(prog, maxK, opts)
	}
	var (
		mu      sync.Mutex
		cancels = make([]context.CancelFunc, maxK+1)
		cutoff  = maxK + 1 // smallest K known Unsafe; larger bounds are moot
	)
	specJobs := make([]sched.Job, maxK+1)
	for k := 0; k <= maxK; k++ {
		k := k
		specJobs[k] = sched.Job{
			Name: fmt.Sprintf("K=%d", k),
			Run: func(jctx context.Context) (any, error) {
				kctx, kcancel := context.WithCancel(jctx)
				defer kcancel()
				mu.Lock()
				if k > cutoff {
					mu.Unlock()
					return Result{Verdict: Inconclusive, TimedOut: true}, nil
				}
				cancels[k] = kcancel
				mu.Unlock()
				o := opts
				o.K = k
				o.Ctx = kctx
				return Run(prog, o)
			},
		}
	}
	onResult := func(r sched.Result) bool {
		if r.Err != nil || r.Skipped {
			return false
		}
		res := r.Value.(Result)
		opts.Obs.Gauge("core.mink_last_k").Set(int64(r.Index))
		if res.Verdict != Unsafe {
			return false
		}
		mu.Lock()
		if r.Index < cutoff {
			cutoff = r.Index
		}
		for j := r.Index + 1; j <= maxK; j++ {
			if cancels[j] != nil {
				cancels[j]()
				cancels[j] = nil
			}
		}
		mu.Unlock()
		return false
	}
	results := sched.New(jobs).Run(ctx, specJobs, onResult)
	// Scan ascending, exactly as the serial sweep would have decided:
	// the first error or Unsafe bound is the answer. Bounds above an
	// Unsafe one were cancelled and are never reached by the scan.
	var last Result
	for k, r := range results {
		if r.Skipped {
			// Group cancelled from outside: report the bound as
			// inconclusive, like a serial sweep whose context died here.
			return k, Result{Verdict: Inconclusive, TimedOut: true, ContextBound: last.ContextBound}, nil
		}
		if r.Err != nil {
			return k, Result{}, r.Err
		}
		res := r.Value.(Result)
		if res.Verdict == Unsafe {
			return k, res, nil
		}
		last = res
	}
	return maxK, last, nil
}
