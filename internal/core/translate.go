// Package core implements the paper's primary contribution: the
// polynomial code-to-code translation [[.]]_K (Sec. 5, Fig. 4,
// Algorithms 1–5) from a program under RA with a budget of K view
// switches to a program under SC, together with the VBMC driver that
// feeds the translated program to the bounded SC model checker.
//
// # Data structures (paper "Data Structures" paragraph)
//
// For each shared variable x the translated program carries, per
// process, a local View record (registers _vt_x, _vv_x, _vl_x — the
// paper's view_x_t, view_x_v, view_x_l). Globally it carries:
//
//   - _ms_var[K], _ms_t_x[K], _ms_v_x[K]: the array message_store of K
//     Message records, flattened per field. The l component of stored
//     views is omitted: publish requires all view_y_l to be true
//     (Algorithm 3 line 3), so it would always store true.
//   - _avail_x[1+S_x]: the paper's avail_x time-stamp pool. The paper
//     uses S_x = 2K for read/write programs; we extend the budget to
//     S_x = 2K + (#CAS/fence statements on x) because every successful
//     RMW permanently consumes the time-stamp adjacent to the message it
//     reads, even when it causes no view switch (the paper omits the
//     CAS translation "for ease of presentation").
//   - _messages_used, _s_RA: the paper's counters.
//
// Initialisation (Algorithm 1's Main) is folded into declarations:
// _avail_x cells start at 1 (true); cell 0 (the initial time-stamp) is
// never requested because new stamps are drawn from [1+view_x_t, S_x]
// with view_x_t ≥ 0, so an explicit Main process would be inert and is
// not emitted.
//
// # Statement translation
//
// Each source read/write/CAS/fence becomes one atomic block (the
// statement granularity at which Lazy CSeq schedules); cai statements,
// assignments, assert and term are kept unchanged (Fig. 4). Fences are
// translated as CAS operations on the distinguished variable "_fence"
// that read any current value and write its successor (paper Sec. 6).
package core

import (
	"fmt"

	"ravbmc/internal/lang"
)

// Reserved names used by the translation.
const (
	msVarArr    = "_ms_var"
	msgsUsedVar = "_messages_used"
	sRAVar      = "_s_RA"
	fenceVar    = "_fence"
)

// temp registers added to every process.
var tempRegs = []string{"_ch", "_ns", "_av", "_pub", "_mu", "_mn", "_mv", "_mt", "_sra"}

// translator carries the per-program translation state.
type translator struct {
	k      int
	vars   []string       // source shared variables, plus _fence if used
	varID  map[string]int // variable -> id stored in _ms_var
	stamps map[string]int // variable -> S_x (highest usable time-stamp)
	opts   variant
}

// variant selects an under-approximate restriction of the translation,
// used by the VBMC driver's probe ladder: a probe explores a subset of
// the full translation's guesses, so any counterexample it finds is a
// genuine one, while "no bug" falls through to the full translation.
type variant struct {
	// stampWindow restricts a tracked write's stamp to
	// [view_x_t+1, view_x_t+stampWindow] instead of the full pool
	// (0 = unrestricted). Near-serial counterexamples live at window 2.
	stampWindow int
	// forceTracked drops the untracked-write branch: every write claims
	// a stamp. Counterexample paths need tracked writes anyway (both
	// publishing and view merging require exact views).
	forceTracked bool
}

// Translate applies [[.]]_K to an RA-fragment program, returning the SC
// program whose (K+n)-context-bounded reachability coincides with the
// K-view-bounded RA reachability of prog. The output size is linear in
// |prog| and polynomial in K and |X|.
func Translate(prog *lang.Program, k int) (*lang.Program, error) {
	return translateVariant(prog, k, variant{})
}

// TranslateProbe returns the under-approximate probe translation used
// by the driver's first pass (tracked writes, stamp window 2), exposed
// for diagnostics and ablation benchmarks.
func TranslateProbe(prog *lang.Program, k int) (*lang.Program, error) {
	return translateVariant(prog, k, variant{stampWindow: 2, forceTracked: true})
}

func translateVariant(prog *lang.Program, k int, v variant) (*lang.Program, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative view bound %d", k)
	}
	if err := prog.ValidateRA(); err != nil {
		return nil, err
	}
	tr := &translator{k: k, varID: map[string]int{}, stamps: map[string]int{}, opts: v}
	tr.vars = append(tr.vars, prog.Vars...)
	if programUsesFence(prog) {
		tr.vars = append(tr.vars, fenceVar)
	}
	for i, x := range tr.vars {
		tr.varID[x] = i
	}
	loopFree := lang.MaxLoopDepth(prog) == 0
	for _, x := range tr.vars {
		rmw := countRMW(prog, x)
		if rmw > 0 && !loopFree {
			// Every executed CAS/fence permanently consumes a stamp, so
			// a static stamp pool is only sound when each statement runs
			// at most once. lang.Unroll establishes that.
			return nil, fmt.Errorf("core: program %q uses CAS/fence inside loops; unroll it first", prog.Name)
		}
		budget := 2 * k
		if loopFree {
			// In a loop-free program each write statement executes at
			// most once, so at most countWrites(x) stamps of x can ever
			// be claimed; any reachable modification order is realisable
			// by giving each tracked write its final mo-rank as stamp.
			if w := countWrites(prog, x); w < budget {
				budget = w
			}
		}
		tr.stamps[x] = budget + rmw
	}

	out := &lang.Program{Name: prog.Name + "_vbmc"}
	out.AddVar(msgsUsedVar)
	out.AddVar(sRAVar)
	storeSize := max(k, 1)
	out.AddArray(msVarArr, storeSize, 0)
	for _, x := range tr.vars {
		out.AddArray("_ms_t_"+x, storeSize, 0)
		out.AddArray("_ms_v_"+x, storeSize, 0)
		out.AddArray("_avail_"+x, tr.stamps[x]+1, 1)
	}

	for _, pr := range prog.Procs {
		np := &lang.Proc{Name: pr.Name, Regs: append([]string(nil), pr.Regs...)}
		for _, x := range tr.vars {
			np.Regs = append(np.Regs, "_vt_"+x, "_vv_"+x, "_vl_"+x)
		}
		np.Regs = append(np.Regs, tempRegs...)
		// init_proc(): view_x_l = true; view_x_t and view_x_v start 0,
		// which registers already are.
		for _, x := range tr.vars {
			np.Add(lang.AssignS("_vl_"+x, lang.C(1)))
		}
		body, err := tr.stmts(pr.Body)
		if err != nil {
			return nil, fmt.Errorf("core: process %s: %w", pr.Name, err)
		}
		np.Body = append(np.Body, body...)
		out.Procs = append(out.Procs, np)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: translated program invalid: %w", err)
	}
	return out, nil
}

func programUsesFence(p *lang.Program) bool {
	found := false
	walkStmts(p, func(s lang.Stmt) {
		if _, ok := s.(lang.Fence); ok {
			found = true
		}
	})
	return found
}

// countRMW counts CAS statements on x (or fences when x is _fence):
// each consumes one time-stamp when it executes.
func countRMW(p *lang.Program, x string) int {
	n := 0
	walkStmts(p, func(s lang.Stmt) {
		switch t := s.(type) {
		case lang.CAS:
			if t.Var == x {
				n++
			}
		case lang.Fence:
			if x == fenceVar {
				n++
			}
		}
	})
	return n
}

// countWrites counts write statements on x.
func countWrites(p *lang.Program, x string) int {
	n := 0
	walkStmts(p, func(s lang.Stmt) {
		if w, ok := s.(lang.Write); ok && w.Var == x {
			n++
		}
	})
	return n
}

func walkStmts(p *lang.Program, f func(lang.Stmt)) {
	var rec func(body []lang.Stmt)
	rec = func(body []lang.Stmt) {
		for _, s := range body {
			f(s)
			switch t := s.(type) {
			case lang.If:
				rec(t.Then)
				rec(t.Else)
			case lang.While:
				rec(t.Body)
			case lang.Atomic:
				rec(t.Body)
			}
		}
	}
	for _, pr := range p.Procs {
		rec(pr.Body)
	}
}

// stmts translates a statement sequence (the map [[i]]_K of Fig. 4).
func (tr *translator) stmts(body []lang.Stmt) ([]lang.Stmt, error) {
	var out []lang.Stmt
	for _, s := range body {
		ts, err := tr.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// block wraps a translated statement body in an atomic section and
// clears the scratch registers on the way out: scratch values are dead
// after the block, and resetting them lets the explicit-state backend
// merge states that differ only in leftover scratch contents.
func (tr *translator) block(label string, body []lang.Stmt) lang.Stmt {
	for _, r := range tempRegs {
		body = append(body, lang.AssignS(r, lang.C(0)))
	}
	return lang.LabelS(label, lang.Atomic{Body: body})
}

func (tr *translator) stmt(s lang.Stmt) ([]lang.Stmt, error) {
	switch t := s.(type) {
	case lang.Read:
		return []lang.Stmt{tr.block(t.Lbl, tr.readBody(t.Var, t.Reg))}, nil
	case lang.Write:
		return []lang.Stmt{tr.block(t.Lbl, tr.writeBody(t.Var, t.Val))}, nil
	case lang.CAS:
		return []lang.Stmt{tr.block(t.Lbl, tr.casBody(t.Var, t.Old, t.New))}, nil
	case lang.Fence:
		return []lang.Stmt{tr.block(t.Lbl, tr.casBody(fenceVar, nil, nil))}, nil
	case lang.Assign, lang.Nondet, lang.Assume, lang.Assert, lang.Term:
		return []lang.Stmt{s}, nil
	case lang.If:
		then, err := tr.stmts(t.Then)
		if err != nil {
			return nil, err
		}
		els, err := tr.stmts(t.Else)
		if err != nil {
			return nil, err
		}
		return []lang.Stmt{lang.If{Lbl: t.Lbl, Cond: t.Cond, Then: then, Else: els}}, nil
	case lang.While:
		body, err := tr.stmts(t.Body)
		if err != nil {
			return nil, err
		}
		return []lang.Stmt{lang.While{Lbl: t.Lbl, Cond: t.Cond, Body: body}}, nil
	default:
		return nil, fmt.Errorf("statement %T not in the RA fragment", s)
	}
}

// readBody is Algorithm 4 + Algorithm 5 (Update_View): guess whether the
// read is view-altering; if so pick a published message of x at or above
// the current view time-stamp, merge time-stamps and values component-
// wise, and count the view switch; either way the register receives the
// (possibly updated) local copy view_x_v.
func (tr *translator) readBody(x, reg string) []lang.Stmt {
	alter := []lang.Stmt{
		// assume(s_RA < K)
		lang.ReadS("_sra", sRAVar),
		lang.AssumeS(lang.Lt(lang.R("_sra"), lang.C(lang.Value(tr.k)))),
	}
	alter = append(alter, tr.updateView(x)...)
	alter = append(alter,
		lang.WriteS(sRAVar, lang.Add(lang.R("_sra"), lang.C(1))),
	)
	return []lang.Stmt{
		lang.NondetS("_ch", 0, 1),
		lang.IfS(lang.Eq(lang.R("_ch"), lang.C(1)), alter...),
		lang.AssignS(reg, lang.R("_vv_"+x)),
	}
}

// updateView is Algorithm 5: choose message_num, check it is a message
// of x whose time-stamp dominates the current view of x, require all
// local time-stamps to be exact (view_y_l), and merge.
func (tr *translator) updateView(x string) []lang.Stmt {
	out := []lang.Stmt{
		// message_num <- nondet(0, messages_used-1)
		lang.NondetS("_mn", 0, lang.Value(max(tr.k, 1)-1)),
		lang.ReadS("_mu", msgsUsedVar),
		lang.AssumeS(lang.Lt(lang.R("_mn"), lang.R("_mu"))),
		// assume(m_var == &x)
		lang.LoadS("_mv", msVarArr, lang.R("_mn")),
		lang.AssumeS(lang.Eq(lang.R("_mv"), lang.C(lang.Value(tr.varID[x])))),
		// assume(view_x_l); assume(view_x_t <= m_view_x_t)
		lang.AssumeS(lang.Eq(lang.R("_vl_"+x), lang.C(1))),
		lang.LoadS("_mt", "_ms_t_"+x, lang.R("_mn")),
		lang.AssumeS(lang.Le(lang.R("_vt_"+x), lang.R("_mt"))),
	}
	for _, y := range tr.vars {
		out = append(out,
			lang.AssumeS(lang.Eq(lang.R("_vl_"+y), lang.C(1))),
			lang.LoadS("_mt", "_ms_t_"+y, lang.R("_mn")),
			lang.IfS(lang.Le(lang.R("_vt_"+y), lang.R("_mt")),
				lang.LoadS("_mv", "_ms_v_"+y, lang.R("_mn")),
				lang.AssignS("_vv_"+y, lang.R("_mv")),
				lang.AssignS("_vt_"+y, lang.R("_mt")),
			),
		)
	}
	return out
}

// writeBody is Algorithm 2: either guess that this write's time-stamp is
// one of the S_x tracked stamps (claim a fresh stamp above the view,
// optionally publishing the new view to the message store), or record
// only the value and mark the time-stamp stale.
func (tr *translator) writeBody(x string, val lang.Expr) []lang.Stmt {
	sx := lang.Value(tr.stamps[x])
	var stampChoice []lang.Stmt
	if w := tr.opts.stampWindow; w > 0 {
		// Probe variant: stamp within a small window above the view.
		stampChoice = []lang.Stmt{
			lang.NondetS("_ns", 1, lang.Value(w)),
			lang.AssignS("_ns", lang.Add(lang.R("_vt_"+x), lang.R("_ns"))),
			lang.AssumeS(lang.Le(lang.R("_ns"), lang.C(sx))),
		}
	} else {
		// new_stamp <- nondet(1+view_x_t, S_x); assume(avail_x[new_stamp]).
		// The value is flipped (S_x+1-_ns) so that the backend's
		// high-first branch order tries LOW stamps first: on the
		// near-serial counterexample paths the modification order
		// follows the temporal order, and low stamps are the ones that
		// keep later comparisons satisfiable.
		stampChoice = []lang.Stmt{
			lang.NondetS("_ns", 1, sx),
			lang.AssignS("_ns", lang.Sub(lang.C(sx+1), lang.R("_ns"))),
			lang.AssumeS(lang.Ge(lang.R("_ns"), lang.Add(lang.R("_vt_"+x), lang.C(1)))),
		}
	}
	tracked := append(stampChoice,
		lang.LoadS("_av", "_avail_"+x, lang.R("_ns")),
		lang.AssumeS(lang.Eq(lang.R("_av"), lang.C(1))),
		lang.StoreS("_avail_"+x, lang.R("_ns"), lang.C(0)),
		lang.AssignS("_vt_"+x, lang.R("_ns")),
		lang.AssignS("_vl_"+x, lang.C(1)),
		lang.AssignS("_vv_"+x, val),
		// if (*) publish(x, view). The flip (1-_pub) makes the backend's
		// high-first branch order try NOT publishing first: counter-
		// example paths publish only one or two late writes, so the
		// search reaches them by flipping the latest publish decisions
		// during backtracking instead of wading through maximally
		// published prefixes.
		lang.NondetS("_pub", 0, 1),
		lang.AssignS("_pub", lang.Sub(lang.C(1), lang.R("_pub"))),
		lang.IfS(lang.Eq(lang.R("_pub"), lang.C(1)), tr.publish(x)...),
	)
	untracked := []lang.Stmt{
		lang.AssignS("_vv_"+x, val),
		lang.AssignS("_vl_"+x, lang.C(0)),
	}
	if tr.stamps[x] == 0 {
		// No tracked stamps exist (K == 0 and no RMW on x): only the
		// untracked branch is feasible. The degenerate nondet is the
		// block's only visible operation (assignments emit no events) and
		// exists solely so witness lifting sees the write happen.
		return append([]lang.Stmt{lang.NondetS("_ch", 0, 0)}, untracked...)
	}
	if tr.opts.forceTracked {
		return tracked
	}
	return []lang.Stmt{
		lang.NondetS("_ch", 0, 1),
		lang.IfElseS(lang.Eq(lang.R("_ch"), lang.C(1)), tracked, untracked),
	}
}

// publish is Algorithm 3: require every component of the local view to
// be exact, require space in the message store, and append the view.
func (tr *translator) publish(x string) []lang.Stmt {
	var out []lang.Stmt
	for _, y := range tr.vars {
		out = append(out, lang.AssumeS(lang.Eq(lang.R("_vl_"+y), lang.C(1))))
	}
	out = append(out,
		lang.ReadS("_mu", msgsUsedVar),
		lang.AssumeS(lang.Lt(lang.R("_mu"), lang.C(lang.Value(tr.k)))),
		lang.StoreS(msVarArr, lang.R("_mu"), lang.C(lang.Value(tr.varID[x]))),
	)
	for _, y := range tr.vars {
		out = append(out,
			lang.StoreS("_ms_t_"+y, lang.R("_mu"), lang.R("_vt_"+y)),
			lang.StoreS("_ms_v_"+y, lang.R("_mu"), lang.R("_vv_"+y)),
		)
	}
	out = append(out, lang.WriteS(msgsUsedVar, lang.Add(lang.R("_mu"), lang.C(1))))
	return out
}

// casBody extends the paper's translation to CAS (omitted there "for
// ease of presentation") and implements fences as value-agnostic CAS on
// the _fence variable. The read part mirrors readBody (possibly
// view-altering, constrained to the expected value); the write part is
// forced to claim exactly time-stamp view_x_t+1, which models the RA
// rule's adjacency requirement (no message at t+1). old==nil and
// val==nil select the fence variant: any value matches and the written
// value is the read value plus one.
func (tr *translator) casBody(x string, old, val lang.Expr) []lang.Stmt {
	out := []lang.Stmt{
		lang.NondetS("_ch", 0, 1),
	}
	alter := []lang.Stmt{
		lang.ReadS("_sra", sRAVar),
		lang.AssumeS(lang.Lt(lang.R("_sra"), lang.C(lang.Value(tr.k)))),
	}
	alter = append(alter, tr.updateView(x)...)
	alter = append(alter, lang.WriteS(sRAVar, lang.Add(lang.R("_sra"), lang.C(1))))
	out = append(out, lang.IfS(lang.Eq(lang.R("_ch"), lang.C(1)), alter...))
	if old != nil {
		out = append(out, lang.AssumeS(lang.Eq(lang.R("_vv_"+x), old)))
	}
	newVal := val
	if newVal == nil {
		newVal = lang.Add(lang.R("_vv_"+x), lang.C(1))
	}
	out = append(out,
		// The write part: exactly the adjacent stamp view_x_t + 1.
		lang.AssumeS(lang.Eq(lang.R("_vl_"+x), lang.C(1))),
		lang.AssignS("_ns", lang.Add(lang.R("_vt_"+x), lang.C(1))),
		lang.AssumeS(lang.Le(lang.R("_ns"), lang.C(lang.Value(tr.stamps[x])))),
		lang.LoadS("_av", "_avail_"+x, lang.R("_ns")),
		lang.AssumeS(lang.Eq(lang.R("_av"), lang.C(1))),
		lang.StoreS("_avail_"+x, lang.R("_ns"), lang.C(0)),
		lang.AssignS("_vt_"+x, lang.R("_ns")),
		lang.AssignS("_vl_"+x, lang.C(1)),
		lang.AssignS("_vv_"+x, newVal),
		lang.NondetS("_pub", 0, 1),
		lang.AssignS("_pub", lang.Sub(lang.C(1), lang.R("_pub"))),
		lang.IfS(lang.Eq(lang.R("_pub"), lang.C(1)), tr.publish(x)...),
	)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
