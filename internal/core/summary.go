package core

import (
	"strings"

	"ravbmc/internal/trace"
)

// SummarizeTrace compresses a counterexample trace of the translated
// program to the events that correspond to RA-level actions: message
// publications (_ms_* and _messages_used writes), view-switch
// accounting (_s_RA), CAS stamps claimed on behalf of RMWs, passed
// assumes on user conditions, and the violation itself. The scratch
// bookkeeping of the translation (nondet guesses, _avail probing, local
// view updates) is dropped, which typically shrinks the trace by an
// order of magnitude while keeping everything a user needs to follow
// the bug.
func SummarizeTrace(t *trace.Trace) *trace.Trace {
	if t == nil {
		return nil
	}
	out := &trace.Trace{}
	for _, e := range t.Events {
		switch {
		case e.Kind == trace.KindViolation:
			out.Append(e)
		case e.Kind == trace.KindWrite && strings.HasPrefix(e.Var, "_ms_"):
			out.Append(e)
		case e.Kind == trace.KindWrite && e.Var == msgsUsedVar:
			out.Append(e)
		case e.Kind == trace.KindWrite && e.Var == sRAVar:
			ev := e
			ev.ViewSwitch = true
			out.Append(ev)
		case e.Kind == trace.KindAssertOK:
			out.Append(e)
		case e.Kind == trace.KindRead && strings.HasPrefix(e.Var, "_ms_v_"):
			out.Append(e)
		}
	}
	return out
}
