package core

import (
	"testing"

	"ravbmc/internal/benchmarks"
)

// TestRunExactDedupParity checks Options.ExactDedup reaches the SC
// backend through every tier (probe ladder and final run) without
// changing the pipeline's verdicts or search sizes.
func TestRunExactDedupParity(t *testing.T) {
	for _, tc := range []struct {
		bench string
		want  Verdict
	}{
		{"peterson_0", Unsafe},
		{"sim_dekker_4", Safe}, // safe: exercises the final uncapped run
	} {
		p, err := benchmarks.ByName(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		fpRes, err := Run(p, Options{K: 2, Unroll: 2})
		if err != nil {
			t.Fatal(err)
		}
		exRes, err := Run(p, Options{K: 2, Unroll: 2, ExactDedup: true})
		if err != nil {
			t.Fatal(err)
		}
		if fpRes.Verdict != tc.want || exRes.Verdict != tc.want {
			t.Errorf("%s: verdicts fp=%v ex=%v, want %v", tc.bench, fpRes.Verdict, exRes.Verdict, tc.want)
		}
		if fpRes.States != exRes.States || fpRes.Transitions != exRes.Transitions {
			t.Errorf("%s: stats diverge: fp %d/%d vs ex %d/%d", tc.bench,
				fpRes.States, fpRes.Transitions, exRes.States, exRes.Transitions)
		}
	}
}
