package core

import (
	"strings"
	"testing"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
	"ravbmc/internal/replay"
	"ravbmc/internal/trace"
)

// assertSourceLevel checks that a witness trace speaks the source
// program's vocabulary: no [[.]]_K instrumentation labels, registers or
// variables. The only translation-era name allowed through is the
// distinguished _fence variable, which the RA semantics itself uses to
// model fences as RMWs.
func assertSourceLevel(t *testing.T, w *trace.Trace) {
	t.Helper()
	for i, e := range w.Events {
		if strings.HasPrefix(e.Label, "_") {
			t.Errorf("event %d: instrumentation label %q", i, e.Label)
		}
		if strings.HasPrefix(e.Reg, "_") {
			t.Errorf("event %d: instrumentation register %q", i, e.Reg)
		}
		if strings.HasPrefix(e.Var, "_") && e.Var != "_fence" {
			t.Errorf("event %d: instrumentation variable %q", i, e.Var)
		}
	}
	if last := w.Events[len(w.Events)-1]; last.Kind != trace.KindViolation {
		t.Errorf("witness does not end in a violation (last: %s)", last.Kind)
	}
}

// TestBenchmarkWitnessesValidate reproduces the acceptance sweep: every
// Table-1 protocol that is UNSAFE at K=2, L=2 must yield a lifted
// source-level witness that replays successfully against the RA
// operational semantics.
func TestBenchmarkWitnessesValidate(t *testing.T) {
	names := []string{
		"bakery", "burns", "dekker", "lamport",
		"peterson_0", "peterson_0(3)", "sim_dekker", "szymanski_0",
	}
	if testing.Short() {
		names = []string{"dekker", "peterson_0"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := benchmarks.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(prog, Options{K: 2, Unroll: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Unsafe {
				t.Fatalf("verdict %v, want UNSAFE", res.Verdict)
			}
			if !res.WitnessValidated {
				t.Fatalf("witness not validated: %s", res.WitnessErr)
			}
			if res.Witness == nil || res.Witness.Len() == 0 {
				t.Fatal("validated but no witness trace")
			}
			assertSourceLevel(t, res.Witness)
		})
	}
}

// mpRev is the MP-rev litmus shape (reads reversed, so the weak outcome
// b=0 && a=1 is observable): the smallest program whose witness needs a
// view-altering read.
func mpRev() *lang.Program {
	p := lang.NewProgram("mp-rev", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("b", "x"),
		lang.ReadS("a", "y"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("b"), lang.C(0)), lang.Eq(lang.R("a"), lang.C(1))))),
	)
	return p
}

// TestCorruptedWitnessFailsReplay: replay validation is only worth its
// name if it rejects wrong witnesses. Lift a genuine counterexample,
// then corrupt single actions — swapping the read's source so it yields
// a different value, or pointing it at a bogus message — and require
// replay to fail each time.
func TestCorruptedWitnessFailsReplay(t *testing.T) {
	prog := mpRev()
	res, err := Run(prog, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe || !res.WitnessValidated {
		t.Fatalf("MP-rev: verdict %v validated=%v (%s)", res.Verdict, res.WitnessValidated, res.WitnessErr)
	}

	// Re-derive the lifted actions the driver validated: EnsureLabels is
	// deterministic, so this is the same labelling Run used internally.
	src := lang.EnsureLabels(prog)
	acts, err := Lift(src, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Run(src, acts, replay.Options{}); err != nil {
		t.Fatalf("uncorrupted actions do not replay: %v", err)
	}

	altering := -1
	for i, a := range acts {
		if a.Kind == replay.ActRead && a.ViewAltering {
			altering = i
			break
		}
	}
	if altering < 0 {
		t.Fatal("no view-altering read in the MP-rev witness")
	}

	corrupt := func(name string, mutate func(a *replay.Action)) {
		t.Run(name, func(t *testing.T) {
			bad := append([]replay.Action(nil), acts...)
			mutate(&bad[altering])
			if _, err := replay.Run(src, bad, replay.Options{}); err == nil {
				t.Fatal("corrupted witness replayed successfully")
			} else {
				t.Logf("rejected as expected: %v", err)
			}
		})
	}
	// Swap the read's source: non-altering, it reads the stale initial
	// value instead of the published one, and the assertion holds.
	corrupt("swapped-read-value", func(a *replay.Action) { a.ViewAltering = false })
	// Point the read at a message slot the witness never published.
	corrupt("bogus-message-index", func(a *replay.Action) { a.ReadIdx = 17 })
}

// TestWitnessViewSwitchBudget: the lifted witness must respect the K
// bound it was found under — replay re-executes under the operational
// semantics, so counting its view switches checks the bound end to end.
func TestWitnessViewSwitchBudget(t *testing.T) {
	res, err := Run(mpRev(), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WitnessValidated {
		t.Fatalf("witness not validated: %s", res.WitnessErr)
	}
	if vs := res.Witness.ViewSwitches(); vs > 2 {
		t.Errorf("witness uses %d view switches, budget was 2", vs)
	}
	assertSourceLevel(t, res.Witness)
}
