package core

import (
	"fmt"
	"testing"

	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
)

// agree checks the paper's main theorem on a concrete program: for each
// K, the K-bounded view-switching RA reachability verdict (computed by
// the exhaustive RA explorer) must coincide with the VBMC verdict
// (translation + bounded SC model checking).
func agree(t *testing.T, p *lang.Program, maxK int) {
	t.Helper()
	raSys := ra.NewSystem(lang.MustCompile(p))
	for k := 0; k <= maxK; k++ {
		raRes := raSys.Explore(ra.Options{ViewBound: k, StopOnViolation: true})
		vb, err := Run(p, Options{K: k})
		if err != nil {
			t.Fatalf("%s K=%d: VBMC error: %v", p.Name, k, err)
		}
		if vb.Verdict == Inconclusive {
			t.Fatalf("%s K=%d: VBMC inconclusive", p.Name, k)
		}
		raUnsafe := raRes.Violation
		vbUnsafe := vb.Verdict == Unsafe
		if raUnsafe != vbUnsafe {
			t.Errorf("%s K=%d: RA explorer says unsafe=%v but VBMC says %v (states=%d)",
				p.Name, k, raUnsafe, vb.Verdict, vb.States)
		}
		if vbUnsafe && vb.Trace == nil {
			t.Errorf("%s K=%d: UNSAFE without trace", p.Name, k)
		}
	}
}

// mpSafe asserts the causality MP guarantees under RA.
func mpSafe() *lang.Program {
	p := lang.NewProgram("mp_safe", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "y"),
		lang.IfS(lang.Eq(lang.R("a"), lang.C(1)),
			lang.ReadS("b", "x"),
			lang.AssertS(lang.Eq(lang.R("b"), lang.C(1))),
		),
	)
	return p
}

// mpObservable fails as soon as p1 can observe y=1 (needs 1 switch).
func mpObservable() *lang.Program {
	p := lang.NewProgram("mp_obs", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a").Add(
		lang.ReadS("a", "y"),
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	return p
}

// chain2 needs two view switches: p1 forwards x to y, p2 observes y.
func chain2() *lang.Program {
	p := lang.NewProgram("chain2", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	p.AddProc("p1", "a").Add(
		lang.ReadS("a", "x"),
		lang.IfS(lang.Eq(lang.R("a"), lang.C(1)), lang.WriteC("y", 1)),
	)
	p.AddProc("p2", "b").Add(
		lang.ReadS("b", "y"),
		lang.AssertS(lang.Ne(lang.R("b"), lang.C(1))),
	)
	return p
}

// sbChecked reports the SB weak outcome through a checker process.
func sbChecked(fenced bool) *lang.Program {
	name := "sb_checked"
	if fenced {
		name = "sb_checked_fenced"
	}
	p := lang.NewProgram(name, "x", "y", "outa", "outb", "flaga", "flagb")
	add := func(proc *lang.Proc, w, r, out, flag string, reg string) {
		proc.Add(lang.WriteC(w, 1))
		if fenced {
			proc.Add(lang.FenceS())
		}
		proc.Add(
			lang.ReadS(reg, r),
			lang.WriteS(out, lang.R(reg)),
			lang.WriteC(flag, 1),
		)
	}
	add(p.AddProc("p0", "a"), "x", "y", "outa", "flaga", "a")
	add(p.AddProc("p1", "b"), "y", "x", "outb", "flagb", "b")
	chk := p.AddProc("chk", "fa", "fb", "va", "vb")
	chk.Add(
		lang.ReadS("fa", "flaga"), lang.AssumeS(lang.Eq(lang.R("fa"), lang.C(1))),
		lang.ReadS("fb", "flagb"), lang.AssumeS(lang.Eq(lang.R("fb"), lang.C(1))),
		lang.ReadS("va", "outa"), lang.ReadS("vb", "outb"),
		lang.AssertS(lang.Or(lang.Ne(lang.R("va"), lang.C(0)), lang.Ne(lang.R("vb"), lang.C(0)))),
	)
	return p
}

// casExclusive checks CAS atomicity end to end.
func casExclusive() *lang.Program {
	p := lang.NewProgram("cas_excl", "x", "w0", "w1")
	p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.WriteC("w0", 1))
	p.AddProc("p1").Add(lang.CASS("x", lang.C(0), lang.C(2)), lang.WriteC("w1", 1))
	chk := p.AddProc("chk", "a", "b")
	chk.Add(
		lang.ReadS("a", "w0"),
		lang.ReadS("b", "w1"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(1))))),
	)
	return p
}

// coherence: a reader may never observe x=2 then x=1.
func coherence() *lang.Program {
	p := lang.NewProgram("coherence", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("x", 2))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "x"),
		lang.ReadS("b", "x"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(2)), lang.Eq(lang.R("b"), lang.C(1))))),
	)
	return p
}

func TestVBMCMatchesRAExplorer(t *testing.T) {
	progs := []*lang.Program{
		mpSafe(),
		mpObservable(),
		chain2(),
		casExclusive(),
		coherence(),
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) { agree(t, p, 3) })
	}
}

func TestVBMCMatchesRAExplorerSB(t *testing.T) {
	// SB with checker has a larger space; limit K to keep the RA side fast.
	agree(t, sbChecked(false), 3)
}

func TestVBMCFencedSBSafe(t *testing.T) {
	// The fenced SB checker program is safe under RA at any bound.
	for k := 0; k <= 3; k++ {
		vb, err := Run(sbChecked(true), Options{K: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if vb.Verdict != Safe {
			t.Errorf("K=%d: fenced SB must be SAFE, got %v", k, vb.Verdict)
		}
	}
}

func TestKThresholds(t *testing.T) {
	// mpObservable becomes unsafe exactly at K=1; chain2 exactly at K=2.
	cases := []struct {
		prog      *lang.Program
		threshold int
	}{
		{mpObservable(), 1},
		{chain2(), 2},
	}
	for _, c := range cases {
		for k := 0; k <= c.threshold+1; k++ {
			vb, err := Run(c.prog, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", c.prog.Name, k, err)
			}
			want := Safe
			if k >= c.threshold {
				want = Unsafe
			}
			if vb.Verdict != want {
				t.Errorf("%s K=%d: got %v, want %v", c.prog.Name, k, vb.Verdict, want)
			}
		}
	}
}

func TestTranslationSizePolynomial(t *testing.T) {
	p := mpSafe()
	base, err := Translate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Translate(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The translated statement count is independent of K (only array
	// sizes and constants grow), so growth must be zero here.
	if base.CountStmts() != big.CountStmts() {
		t.Errorf("statement count changed with K: %d vs %d", base.CountStmts(), big.CountStmts())
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("translated program invalid: %v", err)
	}
}

func TestTranslationRejectsNonRAFragment(t *testing.T) {
	p := lang.NewProgram("bad")
	p.AddArray("a", 2, 0)
	p.AddProc("p0", "r").Add(lang.LoadS("r", "a", lang.C(0)))
	if _, err := Translate(p, 1); err == nil {
		t.Fatal("translation must reject programs outside the RA fragment")
	}
}

func TestRunRequiresUnrollForLoops(t *testing.T) {
	p := lang.NewProgram("loopy", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, err := Run(p, Options{K: 1}); err == nil {
		t.Fatal("Run must require an unroll bound for loopy programs")
	}
	if _, err := Run(p, Options{K: 1, Unroll: 2}); err != nil {
		t.Fatalf("Run with unroll bound failed: %v", err)
	}
}

func TestUnboundedContextsAgree(t *testing.T) {
	// Ablation sanity: with the context bound removed the verdicts do
	// not change (the bound is an optimisation, not a soundness device).
	for _, p := range []*lang.Program{mpObservable(), chain2(), casExclusive()} {
		for k := 0; k <= 2; k++ {
			a, err := Run(p, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(p, Options{K: k, MaxContexts: -1})
			if err != nil {
				t.Fatal(err)
			}
			if a.Verdict != b.Verdict {
				t.Errorf("%s K=%d: bounded=%v unbounded=%v", p.Name, k, a.Verdict, b.Verdict)
			}
		}
	}
}

func TestVerdictString(t *testing.T) {
	for v, s := range map[Verdict]string{Safe: "SAFE", Unsafe: "UNSAFE", Inconclusive: "INCONCLUSIVE"} {
		if v.String() != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if got := Verdict(42).String(); got != fmt.Sprintf("verdict(%d)", 42) {
		t.Errorf("unknown verdict prints %q", got)
	}
}

func TestFindMinK(t *testing.T) {
	k, res, err := FindMinK(chain2(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || res.Verdict != Unsafe {
		t.Errorf("chain2 minimal K = %d (%v), want 2 (UNSAFE)", k, res.Verdict)
	}
	k2, res2, err := FindMinK(mpSafe(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k2 != 2 || res2.Verdict != Safe {
		t.Errorf("mpSafe: got K=%d %v, want SAFE at maxK", k2, res2.Verdict)
	}
}

// fencedMP: MP where the flag handoff happens through fences.
func fencedMP() *lang.Program {
	p := lang.NewProgram("fenced_mp", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.FenceS(), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "y"),
		lang.FenceS(),
		lang.ReadS("b", "x"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
	)
	return p
}

// casHandoff: a CAS-built lock handoff; the second CAS can only follow
// the first, and the reader behind it must see the data.
func casHandoff() *lang.Program {
	p := lang.NewProgram("cas_handoff", "l", "d")
	p.AddProc("p0").Add(lang.WriteC("d", 7), lang.CASS("l", lang.C(0), lang.C(1)))
	p.AddProc("p1", "v").Add(
		lang.CASS("l", lang.C(1), lang.C(2)),
		lang.ReadS("v", "d"),
		lang.AssertS(lang.Eq(lang.R("v"), lang.C(7))),
	)
	return p
}

func TestVBMCMatchesRAExplorerSyncShapes(t *testing.T) {
	for _, p := range []*lang.Program{fencedMP(), casHandoff()} {
		p := p
		t.Run(p.Name, func(t *testing.T) { agree(t, p, 3) })
	}
}

func TestRunInconclusiveOnTinyCap(t *testing.T) {
	res, err := Run(sbChecked(false), Options{K: 2, MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Inconclusive {
		// A 50-state cap cannot cover the bounded space; it might still
		// stumble on the bug, in which case UNSAFE is acceptable.
		if res.Verdict != Unsafe {
			t.Errorf("tiny cap: got %v", res.Verdict)
		}
	}
}

func TestFindMinKErrorPropagates(t *testing.T) {
	p := lang.NewProgram("loopy", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, _, err := FindMinK(p, 2, Options{}); err == nil {
		t.Error("loops without an unroll bound must error")
	}
}
