package smc

import (
	"testing"

	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// sbProg is store buffering without assertions: four executions at
// macro-step granularity, with genuine read-choice branch points.
func sbProg() *lang.Program {
	p := lang.NewProgram("sb", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	return p
}

// TestCheckObsCounters: the obs instruments must agree with the Result
// statistics for every baseline.
func TestCheckObsCounters(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC, AlgorithmRandom} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rec := obs.New()
			res, err := Check(sbProg(), Options{Algorithm: alg, Obs: rec, Walks: 5})
			if err != nil {
				t.Fatal(err)
			}
			rep := rec.Report()
			if got := rep.Counters["smc.executions"]; got != int64(res.Executions) {
				t.Errorf("smc.executions = %d, Result.Executions = %d", got, res.Executions)
			}
			if got := rep.Counters["smc.transitions"]; got != res.Transitions {
				t.Errorf("smc.transitions = %d, Result.Transitions = %d", got, res.Transitions)
			}
			if res.Executions > 0 && rep.Gauges["smc.max_depth"] == 0 {
				t.Error("smc.max_depth not recorded")
			}
			if alg == AlgorithmRandom && rep.Counters["smc.walks"] != 5 {
				t.Errorf("smc.walks = %d, want 5", rep.Counters["smc.walks"])
			}
			if alg != AlgorithmRandom && rep.Counters["smc.branch_points"] == 0 {
				t.Errorf("read-choice branching not recorded: %+v", rep.Counters)
			}
		})
	}
}
