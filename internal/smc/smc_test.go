package smc

import (
	"testing"
	"time"

	"ravbmc/internal/lang"
)

// mpBug: simple observable weak behaviour every algorithm must find.
func mpBug() *lang.Program {
	p := lang.NewProgram("mp_bug", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "y"),
		lang.ReadS("b", "x"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
	)
	// Make it failable: swap the reads so the weak outcome is allowed.
	q := lang.NewProgram("mp_bug", "x", "y")
	q.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	q.AddProc("p1", "a", "b").Add(
		lang.ReadS("b", "x"),
		lang.ReadS("a", "y"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
	)
	return q
}

// mpSafe: the RA-guaranteed message-passing property.
func mpSafe() *lang.Program {
	p := lang.NewProgram("mp_safe", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "y"),
		lang.ReadS("b", "x"),
		lang.AssertS(lang.Not(lang.And(lang.Eq(lang.R("a"), lang.C(1)), lang.Eq(lang.R("b"), lang.C(0))))),
	)
	return p
}

func allAlgorithms() []Algorithm {
	return []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC, AlgorithmRandom}
}

func TestAllAlgorithmsFindBug(t *testing.T) {
	for _, alg := range allAlgorithms() {
		res, err := Check(mpBug(), Options{Algorithm: alg, Walks: 5000})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Violation {
			t.Errorf("%v: must find the MP-rev weak outcome", alg)
		}
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Errorf("%v: violation without trace", alg)
		}
	}
}

func TestExhaustiveAlgorithmsProveSafe(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC} {
		res, err := Check(mpSafe(), Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Violation {
			t.Errorf("%v: MP is safe under RA, got violation:\n%v", alg, res.Trace)
		}
		if !res.Exhausted {
			t.Errorf("%v: search must be exhaustive on this tiny program", alg)
		}
		if res.Executions == 0 {
			t.Errorf("%v: expected at least one complete execution", alg)
		}
	}
}

func TestRandomIsNeverExhaustive(t *testing.T) {
	res, err := Check(mpSafe(), Options{Algorithm: AlgorithmRandom, Walks: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Error("random walks cannot prove exhaustion")
	}
	if res.Executions == 0 {
		t.Error("random walks should complete executions")
	}
}

func TestMacroGranularityReducesWork(t *testing.T) {
	// Tracer (macro steps) must explore fewer transitions than CDS
	// (instruction granularity) on the same safe program.
	cds, err := Check(mpSafe(), Options{Algorithm: AlgorithmCDS})
	if err != nil {
		t.Fatal(err)
	}
	tracer, err := Check(mpSafe(), Options{Algorithm: AlgorithmTracer})
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Transitions >= cds.Transitions {
		t.Errorf("macro-step search (%d transitions) should beat instruction-level (%d)",
			tracer.Transitions, cds.Transitions)
	}
}

func TestLoopsRequireUnrollBound(t *testing.T) {
	p := lang.NewProgram("loopy", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, err := Check(p, Options{Algorithm: AlgorithmTracer}); err == nil {
		t.Error("loopy program without unroll bound must be rejected")
	}
	if _, err := Check(p, Options{Algorithm: AlgorithmTracer, Unroll: 2}); err != nil {
		t.Errorf("with unroll bound: %v", err)
	}
}

func TestTransitionCapTruncates(t *testing.T) {
	res, err := Check(mpSafe(), Options{Algorithm: AlgorithmCDS, MaxTransitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Error("capped run must not claim exhaustion")
	}
}

func TestTimeoutRespected(t *testing.T) {
	// A big safe program with a tiny timeout must stop quickly.
	p := lang.NewProgram("big", "x", "y", "z")
	for _, name := range []string{"p0", "p1", "p2"} {
		pr := p.AddProc(name, "r")
		for i := 0; i < 4; i++ {
			pr.Add(lang.WriteC("x", lang.Value(i)), lang.ReadS("r", "y"), lang.WriteC("z", lang.Value(i)))
		}
	}
	start := time.Now()
	res, err := Check(p, Options{Algorithm: AlgorithmCDS, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && res.Exhausted {
		// Either it finished genuinely fast, or it must report timeout.
		if time.Since(start) > 2*time.Second {
			t.Error("run neither finished promptly nor reported timeout")
		}
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("timeout not respected: ran %v", time.Since(start))
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		AlgorithmCDS: "cdsc", AlgorithmTracer: "tracer",
		AlgorithmRCMC: "rcmc", AlgorithmRandom: "random",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q want %q", int(a), a.String(), s)
		}
	}
}

func TestSchedulingOrders(t *testing.T) {
	rr := orderRoundRobin(3, 1)
	if len(rr) != 3 || rr[0] != 2 || rr[1] != 0 || rr[2] != 1 {
		t.Errorf("round robin after 1 over 3 procs = %v", rr)
	}
	rtc := orderRunToCompletion(3, 1)
	if len(rtc) != 3 || rtc[0] != 1 {
		t.Errorf("run-to-completion must retry the last process first: %v", rtc)
	}
	first := orderRunToCompletion(3, -1)
	if len(first) != 3 || first[0] != 0 {
		t.Errorf("initial order = %v", first)
	}
}

func TestSCLikeExecutionsExploredFirst(t *testing.T) {
	// The baselines enumerate the most SC-like execution first: on a
	// program whose only bug is a stale (weak) read, the first complete
	// execution is bug-free, so the violation is found only after
	// backtracking — more transitions than the program has instructions.
	p := mpBug()
	res, err := Check(p, Options{Algorithm: AlgorithmTracer})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatal("bug must be found eventually")
	}
	// One complete execution of mpBug is 5 macro steps; the violation
	// may only appear after backtracking past the first (SC-like) one.
	if res.Transitions <= 5 {
		t.Errorf("weak bug found on the first execution (%d transitions): SC-first ordering broken?", res.Transitions)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The exhaustive baselines are deterministic: identical statistics
	// across runs.
	for _, alg := range []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC} {
		a, err := Check(mpSafe(), Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Check(mpSafe(), Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if a.Transitions != b.Transitions || a.Executions != b.Executions {
			t.Errorf("%v: nondeterministic statistics", alg)
		}
	}
}

func TestRandomSeedReproducible(t *testing.T) {
	a, err := Check(mpBug(), Options{Algorithm: AlgorithmRandom, Seed: 42, Walks: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(mpBug(), Options{Algorithm: AlgorithmRandom, Seed: 42, Walks: 200})
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation != b.Violation || a.Transitions != b.Transitions {
		t.Error("same seed must reproduce the same walk")
	}
}
