// Package smc implements stateless-model-checking baselines over the RA
// semantics, standing in for the three tools the paper compares VBMC
// against (Sec. 7): Tracer (Abdulla et al. OOPSLA'18), CDSChecker
// (Norris & Demsky) and RCMC (Kokologiannakis et al.). All three
// enumerate executions of the program directly under RA and stop at the
// first assertion failure; they differ in granularity and search order,
// which reproduces the qualitative behaviour observed in the paper:
//
//   - AlgorithmCDS explores at instruction granularity with no
//     reduction — the most executions, the steepest blow-up in the loop
//     bound L and thread count N.
//   - AlgorithmTracer explores at macro-step granularity (one visible
//     operation plus the following local run), a partial-order-style
//     reduction, with a round-robin bias — fast on bug-dense programs,
//     still exponential on SAFE instances.
//   - AlgorithmRCMC explores at macro-step granularity with a
//     run-to-completion bias (it keeps scheduling the process that moved
//     last): it commits to one execution before backtracking, which
//     makes it very fast when the bug lies along the committed path
//     (paper Table 3) and poor when the bug is moved to the last thread
//     (paper Table 4).
//   - AlgorithmRandom is the stochastic simulation the paper mentions:
//     repeated random walks, effective exactly when the ratio of buggy
//     to total executions is high (paper's discussion of Table 1).
//
// Unlike VBMC these searches are exact for the unrolled program (no view
// bounding): if they terminate without a violation, the program is safe
// for that unrolling.
package smc

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
	"ravbmc/internal/trace"
)

// Algorithm selects a baseline search strategy.
type Algorithm int

// Baseline algorithms.
const (
	AlgorithmCDS Algorithm = iota
	AlgorithmTracer
	AlgorithmRCMC
	AlgorithmRandom
)

// String returns the tool-style name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmCDS:
		return "cdsc"
	case AlgorithmTracer:
		return "tracer"
	case AlgorithmRCMC:
		return "rcmc"
	case AlgorithmRandom:
		return "random"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Options configures a baseline run.
type Options struct {
	Algorithm Algorithm
	// Unroll is the loop bound L; required when the program has loops.
	Unroll int
	// MaxTransitions caps the total explored transitions (0 = none).
	MaxTransitions int64
	// Timeout caps wall-clock time (0 = none). The paper uses 3600s.
	Timeout time.Duration
	// Ctx aborts the search when cancelled (nil = never); the parallel
	// harnesses cancel losing portfolio runs through it. Composes with
	// Timeout — whichever expires first stops the search with
	// TimedOut=true.
	Ctx context.Context
	// Seed and Walks configure AlgorithmRandom: number of random walks
	// and the PRNG seed.
	Seed  int64
	Walks int
	// Obs, when non-nil, receives the search counters
	// ("smc.executions", "smc.transitions", "smc.walks", and the
	// read-choice branching instruments "smc.branch_points" /
	// "smc.branch_choices") and the "smc.max_depth" gauge. The
	// stateless searches keep no visited set, so unlike the RA oracle
	// they report no revisit count — re-exploration is exactly what
	// their execution count exposes.
	Obs *obs.Recorder
	// CaptureViews makes the emitted trace events carry per-step view
	// snapshots (see ra.System.CaptureViews); enable it when the trace
	// is exported for offline inspection.
	CaptureViews bool
	// StateDedup equips the DFS baselines (cdsc, tracer, rcmc) with a
	// fingerprinted visited set over full RA configurations (see
	// internal/fp), pruning subtrees already explored from an identical
	// state — the "stateful DFS with state hashing" variant. Off by
	// default: the baselines model stateless tools, whose execution
	// counts are the quantity the paper's tables compare. Verdicts and
	// Exhausted are unaffected (a revisited state's subtree was already
	// searched violation-free), but Executions no longer counts
	// re-converging interleavings separately. Ignored by
	// AlgorithmRandom.
	StateDedup bool
}

// Result reports the outcome of a baseline run.
type Result struct {
	Violation   bool
	Trace       *trace.Trace
	Executions  int   // completed (maximal) executions enumerated
	Transitions int64 // explored transitions
	// TimedOut is true when the Timeout or a cancelled Ctx cut the
	// search short.
	TimedOut bool
	// Exhausted is true when the full execution space was covered, so
	// "no violation" is conclusive for the given unrolling.
	Exhausted bool
}

// Check runs the selected baseline on the program.
func Check(prog *lang.Program, opts Options) (Result, error) {
	span := opts.Obs.StartPhase("smc.check")
	span.SetAttr("algorithm", opts.Algorithm.String())
	defer span.End()
	if err := prog.ValidateRA(); err != nil {
		return Result{}, err
	}
	src := prog
	if lang.MaxLoopDepth(prog) > 0 {
		if opts.Unroll <= 0 {
			return Result{}, fmt.Errorf("smc: program %q has loops; an unroll bound is required", prog.Name)
		}
		src = lang.Unroll(prog, opts.Unroll)
	}
	sys := ra.NewSystem(lang.MustCompile(src))
	sys.CaptureViews = opts.CaptureViews
	r := &runner{sys: sys, opts: opts}
	if opts.StateDedup {
		r.visited = fp.NewSet(false)
	}
	r.cExecutions = opts.Obs.Counter("smc.executions")
	r.cTransitions = opts.Obs.Counter("smc.transitions")
	r.cWalks = opts.Obs.Counter("smc.walks")
	r.cBranchPoints = opts.Obs.Counter("smc.branch_points")
	r.cBranchChoices = opts.Obs.Counter("smc.branch_choices")
	r.cDedupHits = opts.Obs.Counter("smc.dedup_hits")
	r.gMaxDepth = opts.Obs.Gauge("smc.max_depth")
	r.stats = opts.Obs.Search()
	if r.stats != nil {
		// Stateless searches have no view bound; L is the telemetry probe.
		unroll := int64(-1)
		if opts.Unroll > 0 {
			unroll = int64(opts.Unroll)
		}
		r.stats.SetProbe(-1, unroll)
	}
	// The final flush lands the run's totals in the stats block, so the
	// last telemetry sample matches the Result exactly.
	defer r.flushStats()
	// Fold the wall-clock budget into the cancellation context; the
	// search polls only ctx.Err() from here on.
	if opts.Timeout > 0 {
		base := opts.Ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		r.ctx, cancel = context.WithTimeout(base, opts.Timeout)
		defer cancel()
	} else if opts.Ctx != nil {
		r.ctx = opts.Ctx
	}
	// An already-expired context aborts before the first transition,
	// mirroring the sc/ra backends' contract.
	if r.ctx != nil && r.ctx.Err() != nil {
		r.result.TimedOut = true
		return r.result, nil
	}
	switch opts.Algorithm {
	case AlgorithmCDS:
		r.exhausted = true
		r.dfsInstr(sys.Init())
	case AlgorithmTracer:
		r.exhausted = true
		r.dfsMacro(sys.Init(), 0, orderRoundRobin)
	case AlgorithmRCMC:
		r.exhausted = true
		r.dfsMacro(sys.Init(), 0, orderRunToCompletion)
	case AlgorithmRandom:
		r.randomWalks()
	default:
		return Result{}, fmt.Errorf("smc: unknown algorithm %v", opts.Algorithm)
	}
	r.result.Exhausted = r.exhausted && !r.result.Violation
	return r.result, nil
}

type runner struct {
	sys       *ra.System
	opts      Options
	ctx       context.Context // nil when the search has no deadline/cancel scope
	visited   *fp.Set         // nil unless Options.StateDedup
	keyBuf    []byte          // reused dedup-key buffer
	path      []trace.Event
	steps     int // stop() calls, for cancellation sampling
	dedupHits int // visited-set hits, for telemetry flushes
	result    Result
	exhausted bool

	cExecutions, cTransitions, cWalks *obs.Counter
	cBranchPoints, cBranchChoices     *obs.Counter
	cDedupHits                        *obs.Counter
	gMaxDepth                         *obs.Gauge

	stats *obs.SearchStats // live telemetry; nil when Obs is nil
	mark  flushMark        // totals as of the last stats flush
}

// flushMark remembers the totals already pushed into the SearchStats
// block, so each flush adds only the delta since the previous one.
type flushMark struct {
	transitions int64
	executions  int
	probes      int
	hits        int
	violations  int
}

// flushStats pushes the since-last-flush deltas into the live telemetry
// block. The stateless searches visit no states, so the transition count
// carries the rate; the frontier is the current path length. Runs on
// the cancellation-poll cadence and once at search end.
func (r *runner) flushStats() {
	if r.stats == nil {
		return
	}
	violations := 0
	if r.result.Violation {
		violations = 1
	}
	r.stats.Add(
		0,
		r.result.Transitions-r.mark.transitions,
		int64(r.steps-r.mark.probes),
		int64(r.dedupHits-r.mark.hits),
		int64(violations-r.mark.violations),
	)
	r.stats.AddExecutions(int64(r.result.Executions - r.mark.executions))
	r.mark = flushMark{
		transitions: r.result.Transitions,
		executions:  r.result.Executions,
		probes:      r.steps,
		hits:        r.dedupHits,
		violations:  violations,
	}
	r.stats.SetFrontier(int64(len(r.path)))
	if r.visited != nil {
		r.stats.SetVisited(int64(r.visited.Len()), r.visited.ApproxBytes())
	}
}

// seen reports (and records) whether the state was already fully
// explored, when StateDedup is on. last distinguishes scheduling
// contexts at macro granularity (-1 at instruction granularity, where
// the search order is schedule-independent). A pruned state's subtree
// was searched violation-free before, so skipping it cannot change the
// verdict or Exhausted — only Executions.
func (r *runner) seen(c *ra.Config, last int) bool {
	if r.visited == nil {
		return false
	}
	r.keyBuf = c.AppendKey(r.keyBuf[:0])
	if last >= 0 {
		// Full-width encoding: a single truncated byte would alias
		// contexts last and last+256 on wide programs, merging scheduling
		// contexts the key is meant to distinguish.
		r.keyBuf = append(r.keyBuf, 0xFA,
			byte(last), byte(last>>8), byte(last>>16), byte(last>>24))
	}
	if r.visited.Visit(r.keyBuf, 0) {
		return false
	}
	r.dedupHits++
	r.cDedupHits.Inc()
	return true
}

// stop reports whether a resource cap was hit, and records it.
func (r *runner) stop() bool {
	if r.opts.MaxTransitions > 0 && r.result.Transitions >= r.opts.MaxTransitions {
		r.exhausted = false
		return true
	}
	// Polling the context on every scheduling point is measurable;
	// sample it. The dedicated step counter advances by exactly one per
	// call, so the check fires regardless of how Transitions moves.
	r.steps++
	if r.steps%1024 == 0 {
		r.flushStats()
		if r.ctx != nil && r.ctx.Err() != nil {
			r.result.TimedOut = true
			r.exhausted = false
			return true
		}
	}
	return false
}

func (r *runner) found(extra trace.Event) {
	r.result.Violation = true
	r.result.Trace = &trace.Trace{Events: append(append([]trace.Event(nil), r.path...), extra)}
}

// execution records one completed (maximal) execution.
func (r *runner) execution() {
	r.result.Executions++
	r.cExecutions.Inc()
	r.gMaxDepth.SetMax(int64(len(r.path)))
}

// dfsInstr is the CDSChecker-style search: stateless DFS at instruction
// granularity over every process interleaving and read choice.
func (r *runner) dfsInstr(c *ra.Config) bool {
	if r.stop() {
		return true
	}
	if r.seen(c, -1) {
		return false
	}
	progressed := false
	for p := 0; p < r.sys.NumProcs(); p++ {
		succs := r.sys.Successors(c, p)
		reverse(succs) // newest-first: SC-like executions come first
		if len(succs) > 1 {
			r.cBranchPoints.Inc()
			r.cBranchChoices.Add(int64(len(succs)))
		}
		for _, succ := range succs {
			r.result.Transitions++
			r.cTransitions.Inc()
			if succ.Violation {
				r.found(succ.Event)
				return true
			}
			progressed = true
			r.path = append(r.path, succ.Event)
			done := r.dfsInstr(succ.Config)
			r.path = r.path[:len(r.path)-1]
			if done {
				return true
			}
		}
	}
	if !progressed {
		r.execution()
	}
	return false
}

// scheduleOrder produces the order in which processes are tried from a
// scheduling point; last is the process that moved last (-1 initially).
type scheduleOrder func(n, last int) []int

func orderRoundRobin(n, last int) []int {
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, (last+i)%n)
	}
	return out
}

func orderRunToCompletion(n, last int) []int {
	out := make([]int, 0, n)
	if last >= 0 {
		out = append(out, last)
	}
	for i := 0; i < n; i++ {
		if i != last {
			out = append(out, i)
		}
	}
	return out
}

// dfsMacro explores at macro-step granularity: each scheduling decision
// runs one visible RA operation of a process followed by its maximal
// local run.
func (r *runner) dfsMacro(c *ra.Config, last int, order scheduleOrder) bool {
	if r.stop() {
		return true
	}
	if last >= 0 && r.seen(c, last) {
		return false
	}
	progressed := false
	for _, p := range order(r.sys.NumProcs(), last) {
		succs := r.macroSuccs(c, p)
		if len(succs) > 1 {
			r.cBranchPoints.Inc()
			r.cBranchChoices.Add(int64(len(succs)))
		}
		for _, succ := range succs {
			r.result.Transitions++
			r.cTransitions.Inc()
			if succ.Violation {
				r.found(succ.Event)
				return true
			}
			progressed = true
			n := len(r.path)
			r.path = append(r.path, succ.Event)
			done := r.dfsMacro(succ.Config, p, order)
			r.path = r.path[:n]
			if done {
				return true
			}
		}
	}
	if !progressed {
		r.execution()
	}
	return false
}

// macroSuccs runs process p for one visible operation plus the following
// local operations (branching on nondeterminism). A violation inside the
// local run is reported as a violating successor. The Event of each
// returned successor is the event of its visible operation.
//
// Successors are explored newest-message-first (reversed), so the most
// SC-like execution is enumerated first and weak behaviours come later —
// matching the real SMC tools, for which the ratio of buggy to explored
// executions drives detection time (paper Sec. 7).
func (r *runner) macroSuccs(c *ra.Config, p int) []ra.Succ {
	firsts := r.sys.Successors(c, p)
	reverse(firsts)
	var out []ra.Succ
	for _, s := range firsts {
		r.extendLocal(s, p, &out)
	}
	return out
}

func reverse(s []ra.Succ) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// extendLocal advances s through local instructions of p until the next
// visible instruction (or termination/blocking), appending the reached
// quiescent successors to out.
func (r *runner) extendLocal(s ra.Succ, p int, out *[]ra.Succ) {
	for {
		if s.Violation {
			*out = append(*out, s)
			return
		}
		in := &r.sys.Prog.Procs[p].Code[s.Config.PC(p)]
		if in.GloballyVisible() || in.Op == lang.OpTermProc {
			*out = append(*out, s)
			return
		}
		nexts := r.sys.Successors(s.Config, p)
		if len(nexts) == 0 { // stuck at a false assume
			*out = append(*out, s)
			return
		}
		if len(nexts) == 1 {
			n := nexts[0]
			if !n.Violation {
				n.Event = s.Event // keep the visible event as the step label
			}
			n.ViewSwitch = n.ViewSwitch || s.ViewSwitch
			s = n
			continue
		}
		// Nondeterministic local step (nondet): branch.
		for _, n := range nexts {
			if !n.Violation {
				n.Event = s.Event
			}
			n.ViewSwitch = n.ViewSwitch || s.ViewSwitch
			r.extendLocal(n, p, out)
		}
		return
	}
}

// randomWalks performs repeated random executions (macro-step
// granularity) until a violation, the walk budget, or the deadline.
func (r *runner) randomWalks() {
	walks := r.opts.Walks
	if walks <= 0 {
		walks = 1000
	}
	rng := rand.New(rand.NewSource(r.opts.Seed))
	for w := 0; w < walks; w++ {
		if r.stop() {
			return
		}
		r.cWalks.Inc()
		c := r.sys.Init()
		r.path = r.path[:0]
		for {
			var all []ra.Succ
			for p := 0; p < r.sys.NumProcs(); p++ {
				all = append(all, r.macroSuccs(c, p)...)
			}
			if len(all) == 0 {
				break
			}
			if len(all) > 1 {
				r.cBranchPoints.Inc()
				r.cBranchChoices.Add(int64(len(all)))
			}
			succ := all[rng.Intn(len(all))]
			r.result.Transitions++
			r.cTransitions.Inc()
			if succ.Violation {
				r.found(succ.Event)
				return
			}
			r.path = append(r.path, succ.Event)
			c = succ.Config
		}
		r.execution()
	}
	// Random walking is never exhaustive.
	r.exhausted = false
}
