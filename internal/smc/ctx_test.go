package smc

import (
	"context"
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
)

// TestCheckPreCancelledCtx: a context cancelled before Check starts
// must abort before the first transition.
func TestCheckPreCancelledCtx(t *testing.T) {
	p, err := benchmarks.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Check(p, Options{Algorithm: AlgorithmCDS, Unroll: 2, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Exhausted || res.Transitions != 0 {
		t.Errorf("pre-cancelled ctx: TimedOut=%v Exhausted=%v Transitions=%d",
			res.TimedOut, res.Exhausted, res.Transitions)
	}
}

// TestCheckCtxCancelStopsPromptly: cancellation mid-enumeration stops a
// stateless search within one sampling stride. Fenced Peterson at N=4
// is far beyond test-time exhaustion for the instruction-granularity
// search, so only the cancel can end it.
func TestCheckCtxCancelStopsPromptly(t *testing.T) {
	p, err := benchmarks.ByName("peterson_4(4)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	start := time.Now()
	res, err := Check(p, Options{Algorithm: AlgorithmCDS, Unroll: 2, Ctx: ctx})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Errorf("cancelled enumeration finished: %+v", res)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want well under 5s", elapsed)
	}
}
