package smc

import (
	"testing"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
)

// TestSeenDistinguishesWideSchedulingContexts is the regression test
// for the dedup-key audit: the scheduling context used to be encoded
// as a single truncated byte, so contexts last and last+256 aliased to
// one key on programs with more than 256 processes — merging subtrees
// the key is documented to distinguish.
func TestSeenDistinguishesWideSchedulingContexts(t *testing.T) {
	p := lang.NewProgram("w", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	r := &runner{
		sys:        ra.NewSystem(lang.MustCompile(p)),
		visited:    fp.NewSet(true),
		cDedupHits: (*obs.Recorder)(nil).Counter("smc.dedup_hits"),
	}
	c := r.sys.Init()
	if r.seen(c, 1) {
		t.Fatal("first visit of context 1 reported as seen")
	}
	if r.seen(c, 257) {
		t.Fatal("context 257 aliased with context 1")
	}
	if r.seen(c, 1<<20) {
		t.Fatal("context 1<<20 aliased with a low context")
	}
	if !r.seen(c, 1) {
		t.Fatal("revisit of context 1 not recognised")
	}
	if !r.seen(c, 257) {
		t.Fatal("revisit of context 257 not recognised")
	}
}

// TestDedupVerdictParity is the outcome-masking guard for the bug
// class the paper-repo history calls "depth-truncated first visit":
// smc's searches have no per-path budget (their only truncations —
// transition cap, deadline — abort the whole search), so a constant-
// budget visited set must never change Violation or Exhausted relative
// to the stateless baseline, on safe and unsafe shapes alike. If a
// budget dimension is ever added to these searches without moving it
// into the dedup key (or the fp.Set budget argument), this sweep is
// what fails.
func TestDedupVerdictParity(t *testing.T) {
	progs := map[string]*lang.Program{"mp_safe": mpSafe(), "mp_bug": mpBug()}
	for _, lt := range litmus.Classic() {
		progs[lt.Name] = lt.Prog
	}
	for _, alg := range []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC} {
		for name, p := range progs {
			base, err := Check(p, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%v/%s: %v", alg, name, err)
			}
			dedup, err := Check(p, Options{Algorithm: alg, StateDedup: true})
			if err != nil {
				t.Fatalf("%v/%s: %v", alg, name, err)
			}
			if dedup.Violation != base.Violation || dedup.Exhausted != base.Exhausted {
				t.Errorf("%v/%s: dedup Violation=%v Exhausted=%v, baseline Violation=%v Exhausted=%v",
					alg, name, dedup.Violation, dedup.Exhausted, base.Violation, base.Exhausted)
			}
			if dedup.Violation && dedup.Trace == nil {
				t.Errorf("%v/%s: dedup violation without trace", alg, name)
			}
		}
	}
}

// TestDedupTruncationNeverClaimsExhaustion: a transition-capped dedup
// run has visited-marked states whose subtrees were cut short; the
// abort must take the whole search down with Exhausted=false, never
// convert the partial coverage into a SAFE claim.
func TestDedupTruncationNeverClaimsExhaustion(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmCDS, AlgorithmTracer, AlgorithmRCMC} {
		res, err := Check(mpSafe(), Options{Algorithm: alg, StateDedup: true, MaxTransitions: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exhausted {
			t.Errorf("%v: capped dedup run claimed exhaustion", alg)
		}
		if res.Violation {
			t.Errorf("%v: capped dedup run fabricated a violation", alg)
		}
	}
}
