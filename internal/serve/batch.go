package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"ravbmc/internal/lang"
)

// BatchRequest is the body of POST /v1/batch: a whole corpus verified
// in one call. Each item is a complete VerifyRequest; the cluster fans
// items out by cache-key ownership, so a corpus sweep engages every
// node at once.
type BatchRequest struct {
	Items []VerifyRequest `json:"items"`
	// MinK runs every item through the minimal-K search (/v1/mink
	// semantics) instead of a single verification.
	MinK bool `json:"mink,omitempty"`
	// Stream selects SSE: one "item" frame per completed item (in
	// completion order), then one terminal "batch" frame carrying the
	// same aggregate a non-streaming call returns.
	Stream bool `json:"stream,omitempty"`
}

// BatchItemResult is one item's outcome. Fields are chosen so the
// aggregate is deterministic across topologies: witnesses are
// represented by their SHA-256, so a single node and a three-node
// cluster produce byte-identical rows (timing fields excepted).
type BatchItemResult struct {
	Index   int    `json:"index"`
	Program string `json:"program,omitempty"`
	RunID   string `json:"run_id,omitempty"`
	// Node is the node that served the item ("" solo).
	Node    string `json:"node,omitempty"`
	Status  int    `json:"status"`
	Verdict string `json:"verdict,omitempty"`
	MinK    *int   `json:"min_k,omitempty"`
	States  int    `json:"states,omitempty"`
	// WitnessSHA is the SHA-256 (hex) of the witness JSONL document, set
	// for UNSAFE verdicts; fetch the full witness via a direct
	// /v1/verify of the same item.
	WitnessSHA     string  `json:"witness_sha256,omitempty"`
	Error          string  `json:"error,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// BatchResponse is the batch aggregate. Items are ordered by index
// regardless of completion order.
type BatchResponse struct {
	BatchID string `json:"batch_id"`
	// Node is the coordinating node ("" solo).
	Node  string `json:"node,omitempty"`
	Total int    `json:"total"`
	// OK is true iff every item succeeded; a single failed item (engine
	// error, timeout, rejection) marks the whole batch.
	OK        bool              `json:"ok"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
	Verdicts  map[string]int    `json:"verdicts,omitempty"`
	Items     []BatchItemResult `json:"items"`
	// ElapsedSeconds is the batch's wall time on the coordinator.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// maxBatchItems bounds one batch; the full litmus corpus is two orders
// of magnitude smaller.
const maxBatchItems = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.batches.Inc()
	if s.Draining() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var breq BatchRequest
	// A batch is many requests in one body; scale the single-request cap
	// rather than inventing a second knob.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16*s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(breq.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(breq.Items) > maxBatchItems {
		writeError(w, http.StatusUnprocessableEntity,
			"batch has %d items; the cap is %d", len(breq.Items), maxBatchItems)
		return
	}
	batchID := s.ledger.NewBatchID()
	s.log.Info("batch start", "batch_id", batchID, "items", len(breq.Items), "mink", breq.MinK)

	// The batch lives until the client disconnects or the server
	// hard-stops; items carry their own compute deadlines.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()

	// Streaming setup before the fan-out: headers must be written before
	// the first item completes.
	var emit func(BatchItemResult)
	var fl http.Flusher
	streaming := breq.Stream
	if streaming {
		var ok bool
		if fl, ok = w.(http.Flusher); !ok {
			streaming = false
		} else {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.Header().Set("X-Accel-Buffering", "no")
			w.WriteHeader(http.StatusOK)
			var mu sync.Mutex
			emit = func(res BatchItemResult) {
				mu.Lock()
				defer mu.Unlock()
				sseWrite(w, fl, "item", res)
			}
		}
	}

	// Fan out under the batch semaphore. Items forwarded to peers only
	// hold a semaphore slot (they wait on the network); local items
	// additionally queue through blocking admission, so a batch wider
	// than the worker pool exerts backpressure by waiting, never by
	// tripping its own items into 429s.
	results := make([]BatchItemResult, len(breq.Items))
	var wg sync.WaitGroup
	for i, item := range breq.Items {
		wg.Add(1)
		go func(i int, item VerifyRequest) {
			defer wg.Done()
			select {
			case s.batchSem <- struct{}{}:
			case <-ctx.Done():
				results[i] = BatchItemResult{
					Index: i, Status: http.StatusServiceUnavailable,
					Error: "batch cancelled: " + ctx.Err().Error(),
				}
				if emit != nil {
					emit(results[i])
				}
				return
			}
			defer func() { <-s.batchSem }()
			results[i] = s.runBatchItem(ctx, batchID, i, item, breq.MinK)
			if emit != nil {
				emit(results[i])
			}
		}(i, item)
	}
	wg.Wait()

	agg := BatchResponse{
		BatchID: batchID, Node: s.nodeID(), Total: len(results),
		Verdicts: map[string]int{}, Items: results,
		ElapsedSeconds: time.Since(started).Seconds(),
	}
	for i := range results {
		s.batchItems.Inc()
		if results[i].Status == http.StatusOK {
			agg.Succeeded++
			if results[i].Verdict != "" {
				agg.Verdicts[results[i].Verdict]++
			}
		} else {
			agg.Failed++
			s.batchItemFails.Inc()
		}
	}
	agg.OK = agg.Failed == 0
	s.log.Info("batch done", "batch_id", batchID, "total", agg.Total,
		"failed", agg.Failed, "seconds", agg.ElapsedSeconds)
	if streaming {
		sseWrite(w, fl, "batch", agg)
		return
	}
	writeJSON(w, http.StatusOK, agg)
}

// runBatchItem runs one batch item through the same routed execution
// path as a direct request: its own run ID and ledger entry (stamped
// with the batch ID), forwarding to the item's owner when that node is
// up, local execution with blocking admission otherwise.
func (s *Server) runBatchItem(ctx context.Context, batchID string, idx int, item VerifyRequest, mink bool) BatchItemResult {
	itemStart := time.Now()
	s.reqs.Inc()
	rc := s.newRun(endpointName(mink), batchID)
	res := BatchItemResult{Index: idx, RunID: rc.id}
	// Aliases are a per-connection convenience; inside a batch every
	// item is addressed by its minted run ID.
	item.ClientRef = ""
	err := item.validate()
	var prog *lang.Program
	if err == nil {
		prog, err = item.program()
	}
	if err != nil {
		fr := rc.fail(http.StatusUnprocessableEntity, "", "%v", err)
		res.Status, res.Error = fr.status, fr.errMsg
		res.ElapsedSeconds = time.Since(itemStart).Seconds()
		return res
	}
	rc.setRequest(item, prog)
	res.Program = prog.Name

	deadline := s.deadline(item)
	ctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var rr runResult
	done := false
	if owner, ok := s.forwardTarget(item, prog, false); ok {
		rr, _, done = s.forwardRun(ctx, rc, owner, endpointPath(mink), item)
	}
	if !done {
		rr = s.runLocal(ctx, rc, item, prog, mink, deadline, true)
	}
	res.Status = rr.status
	res.Error = rr.errMsg
	if rr.status == http.StatusOK {
		res.Verdict = rr.resp.Verdict
		res.MinK = rr.resp.MinK
		res.States = rr.resp.States
		res.Node = rr.resp.Node
		if len(rr.resp.WitnessJSONL) > 0 {
			sum := sha256.Sum256(rr.resp.WitnessJSONL)
			res.WitnessSHA = hex.EncodeToString(sum[:])
		}
	}
	res.ElapsedSeconds = time.Since(itemStart).Seconds()
	return res
}

// endpointPath maps the mink flag onto the API path, for forwarding.
func endpointPath(mink bool) string {
	if mink {
		return "/v1/mink"
	}
	return "/v1/verify"
}
