package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"ravbmc/internal/version"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"draining":       s.Draining(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version": s.cfg.Cache.Version(),
		"binary":  version.String(),
	})
}

// handleMetrics renders Prometheus-style text: the cache's own stats
// under ravbmc_cache_*, the server's admission state under
// ravbmc_serve_*, and — when a recorder is attached — every obs
// counter and gauge under ravbmc_obs_*.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	emit := func(name, typ string, v any) {
		fmt.Fprintf(&b, "# TYPE %s %s\n%s %v\n", name, typ, name, v)
	}

	st := s.cfg.Cache.Stats()
	emit("ravbmc_cache_hits_total", "counter", st.Hits)
	emit("ravbmc_cache_subsumed_hits_total", "counter", st.SubsumedHits)
	emit("ravbmc_cache_misses_total", "counter", st.Misses)
	emit("ravbmc_cache_inflight_collapsed_total", "counter", st.InflightCollapsed)
	emit("ravbmc_cache_stores_total", "counter", st.Stores)
	emit("ravbmc_cache_evictions_total", "counter", st.Evictions)
	emit("ravbmc_cache_disk_loaded_total", "counter", st.DiskLoaded)
	emit("ravbmc_cache_disk_corrupt_total", "counter", st.DiskCorrupt)
	emit("ravbmc_cache_disk_stale_total", "counter", st.DiskStale)
	emit("ravbmc_cache_entries", "gauge", st.Entries)
	emit("ravbmc_cache_bytes_used", "gauge", st.BytesUsed)
	emit("ravbmc_cache_bytes_budget", "gauge", st.BytesBudget)

	emit("ravbmc_serve_requests_total", "counter", s.reqs.Value())
	emit("ravbmc_serve_rejected_total", "counter", s.rejected.Value())
	emit("ravbmc_serve_errors_total", "counter", s.failed.Value())
	emit("ravbmc_serve_active", "gauge", len(s.work))
	emit("ravbmc_serve_queued", "gauge", len(s.admit)-len(s.work))
	emit("ravbmc_serve_workers", "gauge", s.cfg.Workers)
	emit("ravbmc_serve_queue_capacity", "gauge", s.cfg.Queue)
	drain := 0
	if s.Draining() {
		drain = 1
	}
	emit("ravbmc_serve_draining", "gauge", drain)
	emit("ravbmc_serve_uptime_seconds", "gauge", time.Since(s.start).Seconds())

	if s.obs != nil {
		snap := s.obs.Snapshot()
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			emit("ravbmc_obs_"+sanitizeMetric(name)+"_total", "counter", snap.Counters[name])
		}
		names = names[:0]
		for name := range snap.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			emit("ravbmc_obs_"+sanitizeMetric(name), "gauge", snap.Gauges[name])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// sanitizeMetric maps an obs instrument name onto the Prometheus
// charset ([a-zA-Z0-9_]).
func sanitizeMetric(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}
