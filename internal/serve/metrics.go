package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ravbmc/internal/obs"
	"ravbmc/internal/version"
)

// handleHealthz is liveness: 200 as long as the process serves HTTP,
// draining included — use /readyz to learn whether it accepts work.
// The combined body (ok + draining) predates the split and stays for
// existing probes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ok":             true,
		"draining":       s.Draining(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if cl := s.cfg.Cluster; cl != nil {
		body["node"] = cl.Self()
		body["peers"] = cl.Peers()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version": s.cfg.Cache.Version(),
		"binary":  version.String(),
	})
}

// metricsWriter accumulates Prometheus exposition text, one family at a
// time: HELP, then TYPE, then the samples — the ordering promlint
// demands. Families render in the order the handler emits them, which
// is fixed, so successive scrapes diff cleanly.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) family(name, typ, help string) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) scalar(name, typ, help string, v any) {
	m.family(name, typ, help)
	fmt.Fprintf(&m.b, "%s %v\n", name, v)
}

// histogram renders one obs.HistogramSnapshot as a Prometheus histogram
// family. The snapshot's per-bucket counts are non-cumulative; the
// exposition format wants cumulative counts per le bound plus the
// implicit +Inf bucket equal to _count.
func (m *metricsWriter) histogram(name, help string, h obs.HistogramSnapshot) {
	m.family(name, "histogram", help)
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(&m.b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	fmt.Fprintf(&m.b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(&m.b, "%s_sum %v\n", name, h.Sum)
	fmt.Fprintf(&m.b, "%s_count %d\n", name, h.Count)
}

// handleMetrics renders Prometheus exposition text: the cache's stats
// under ravbmc_cache_*, the server's admission and ledger state plus
// its latency histograms under ravbmc_serve_*, and — when a recorder
// is attached — every obs instrument under ravbmc_obs_*. Every family
// carries HELP and TYPE lines and the family order is fixed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m metricsWriter

	st := s.cfg.Cache.Stats()
	m.scalar("ravbmc_cache_hits_total", "counter", "Exact-key cache answers.", st.Hits)
	m.scalar("ravbmc_cache_subsumed_hits_total", "counter", "Cache answers via monotone-K subsumption.", st.SubsumedHits)
	m.scalar("ravbmc_cache_misses_total", "counter", "Lookups that started an engine execution.", st.Misses)
	m.scalar("ravbmc_cache_inflight_collapsed_total", "counter", "Requests that waited on an identical in-flight execution.", st.InflightCollapsed)
	m.scalar("ravbmc_cache_stores_total", "counter", "Entries inserted into the cache.", st.Stores)
	m.scalar("ravbmc_cache_evictions_total", "counter", "Entries evicted to meet the byte budget.", st.Evictions)
	m.scalar("ravbmc_cache_disk_loaded_total", "counter", "Disk-store lines installed at startup.", st.DiskLoaded)
	m.scalar("ravbmc_cache_disk_corrupt_total", "counter", "Disk-store lines skipped as unreadable.", st.DiskCorrupt)
	m.scalar("ravbmc_cache_disk_stale_total", "counter", "Disk-store lines skipped for a version mismatch.", st.DiskStale)
	m.scalar("ravbmc_cache_entries", "gauge", "Entries currently in the in-memory layer.", st.Entries)
	m.scalar("ravbmc_cache_bytes_used", "gauge", "Bytes used by the in-memory layer.", st.BytesUsed)
	m.scalar("ravbmc_cache_bytes_budget", "gauge", "Configured in-memory byte budget (negative = unlimited).", st.BytesBudget)
	m.histogram("ravbmc_cache_lookup_seconds", "Cache lookup latency (lock wait plus key and subsumption probe).", s.cfg.Cache.LookupSeconds())

	m.scalar("ravbmc_serve_requests_total", "counter", "Verification requests received.", s.reqs.Value())
	m.scalar("ravbmc_serve_rejected_total", "counter", "Requests rejected by admission (queue full).", s.rejected.Value())
	m.scalar("ravbmc_serve_errors_total", "counter", "Requests that failed or expired.", s.failed.Value())
	m.scalar("ravbmc_serve_slow_dumps_total", "counter", "Flight-recorder dumps taken for slow runs.", s.slowDumps.Value())
	m.scalar("ravbmc_serve_active", "gauge", "Requests currently executing.", len(s.work))
	m.scalar("ravbmc_serve_queued", "gauge", "Requests admitted and waiting for a worker.", len(s.admit)-len(s.work))
	m.scalar("ravbmc_serve_workers", "gauge", "Configured worker slots.", s.cfg.Workers)
	m.scalar("ravbmc_serve_queue_capacity", "gauge", "Configured queue capacity beyond the workers.", s.cfg.Queue)
	m.scalar("ravbmc_serve_ledger_runs", "gauge", "Run records currently retained in the ledger.", s.ledger.Len())
	m.scalar("ravbmc_serve_ledger_entries", "gauge", "Run records currently retained in the ledger.", s.ledger.Len())
	m.scalar("ravbmc_serve_ledger_evictions_total", "counter", "Run records evicted from the ledger ring.", s.ledger.Evictions())
	drain := 0
	if s.Draining() {
		drain = 1
	}
	m.scalar("ravbmc_serve_draining", "gauge", "1 while the server is draining, else 0.", drain)
	m.scalar("ravbmc_serve_uptime_seconds", "gauge", "Seconds since the server started.", time.Since(s.start).Seconds())
	m.scalar("ravbmc_serve_batches_total", "counter", "Batch requests received.", s.batches.Value())
	m.scalar("ravbmc_serve_batch_items_total", "counter", "Batch items executed.", s.batchItems.Value())
	m.scalar("ravbmc_serve_batch_item_failures_total", "counter", "Batch items that failed.", s.batchItemFails.Value())
	m.histogram("ravbmc_serve_request_seconds", "End-to-end request latency, decode to response.", s.hRequest.Snapshot())
	m.histogram("ravbmc_serve_queue_wait_seconds", "Time from arrival to admission.", s.hQueueWait.Snapshot())

	// Cluster families render only when this node is part of a cluster;
	// a solo daemon's exposition is unchanged.
	if cl := s.cfg.Cluster; cl != nil {
		cs := cl.Stats()
		m.scalar("ravbmc_cluster_forwards_total", "counter", "Requests forwarded to their owner shard.", cs.Forwards)
		m.scalar("ravbmc_cluster_forward_retries_total", "counter", "Backoff retries inside forwards (owner 429).", cs.ForwardRetries)
		m.scalar("ravbmc_cluster_forward_fallbacks_total", "counter", "Requests run locally because their owner was unavailable.", cs.ForwardFallbacks)
		m.scalar("ravbmc_cluster_peer_fill_hits_total", "counter", "Local misses answered from the owner's cache.", cs.PeerFillHits)
		m.scalar("ravbmc_cluster_peer_fill_misses_total", "counter", "Owner-cache reads that found nothing.", cs.PeerFillMisses)
		m.scalar("ravbmc_cluster_peer_fill_served_total", "counter", "Cache reads this node served for peers.", cs.PeerFillServed)
		m.scalar("ravbmc_cluster_probes_total", "counter", "Health probes sent to peers.", cs.Probes)
		m.scalar("ravbmc_cluster_probe_failures_total", "counter", "Health probes that failed.", cs.ProbeFailures)
		peers := cl.Peers()
		m.scalar("ravbmc_cluster_peers", "gauge", "Cluster membership size, this node included.", len(peers))
		m.family("ravbmc_cluster_peer_state", "gauge", "Peer state as this node sees it (0 up, 1 draining, 2 down).")
		for _, p := range peers {
			fmt.Fprintf(&m.b, "ravbmc_cluster_peer_state{peer=%q} %d\n", p.ID, p.State)
		}
	}

	// Live search telemetry, aggregated over every in-flight run's
	// SearchStats snapshot.
	var agg obs.SearchPoint
	var rate float64
	s.watchMu.Lock()
	active := len(s.watches)
	samplers := make([]*obs.Sampler, 0, active)
	for _, smp := range s.watches {
		samplers = append(samplers, smp)
	}
	s.watchMu.Unlock()
	for _, smp := range samplers {
		p := smp.Snapshot()
		agg.States += p.States
		agg.Transitions += p.Transitions
		agg.Frontier += p.Frontier
		agg.DedupProbes += p.DedupProbes
		agg.DedupHits += p.DedupHits
		agg.VisitedBytes += p.VisitedBytes
		rate += p.StatesPerSec
	}
	m.scalar("ravbmc_search_active_runs", "gauge", "Runs currently exposing live search telemetry.", active)
	m.scalar("ravbmc_search_states", "gauge", "States visited across in-flight searches.", agg.States)
	m.scalar("ravbmc_search_transitions", "gauge", "Transitions explored across in-flight searches.", agg.Transitions)
	m.scalar("ravbmc_search_frontier_depth", "gauge", "Summed DFS frontier depth of in-flight searches.", agg.Frontier)
	m.scalar("ravbmc_search_dedup_probes", "gauge", "Visited-set probes across in-flight searches.", agg.DedupProbes)
	m.scalar("ravbmc_search_dedup_hits", "gauge", "Visited-set hits across in-flight searches.", agg.DedupHits)
	m.scalar("ravbmc_search_visited_bytes", "gauge", "Approximate visited-set bytes across in-flight searches.", agg.VisitedBytes)
	m.scalar("ravbmc_search_states_per_sec", "gauge", "Summed EWMA search rate of in-flight searches.", rate)

	if s.obs != nil {
		snap := s.obs.Snapshot()
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m.scalar("ravbmc_obs_"+sanitizeMetric(name)+"_total", "counter",
				"Engine counter "+name+".", snap.Counters[name])
		}
		names = names[:0]
		for name := range snap.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m.scalar("ravbmc_obs_"+sanitizeMetric(name), "gauge",
				"Engine gauge "+name+".", snap.Gauges[name])
		}
		names = names[:0]
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m.histogram("ravbmc_obs_"+sanitizeMetric(name),
				"Engine distribution "+name+".", snap.Histograms[name])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(m.b.String()))
}

// sanitizeMetric maps an obs instrument name onto the Prometheus
// charset ([a-zA-Z0-9_]).
func sanitizeMetric(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}
