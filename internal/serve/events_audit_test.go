package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ravbmc/internal/cache"
)

// startLongRun posts a verification that stays in flight for the whole
// test (Close cancels it at cleanup) and waits for its sampler to
// register, returning the run ID. ref, when non-empty, is sent as the
// request's client_ref.
func startLongRun(t *testing.T, s *Server, baseURL, ref string) string {
	t.Helper()
	go func() {
		req := VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5, Unroll: 6, TimeoutSeconds: 120, ClientRef: ref}
		b, _ := json.Marshal(req)
		resp, err := http.Post(baseURL+"/v1/verify", "application/json", strings.NewReader(string(b)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.watchMu.Lock()
		for id := range s.watches {
			s.watchMu.Unlock()
			return id
		}
		s.watchMu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("run never registered a sampler")
	return ""
}

// collectStream consumes one event stream on its own goroutine,
// signalling the first search frame and delivering every done frame.
func collectStream(ctx context.Context, client *Client, id string) (gotSearch <-chan struct{}, dones <-chan doneEvent, errc <-chan error) {
	search := make(chan struct{})
	doneCh := make(chan doneEvent, 4)
	ec := make(chan error, 1)
	go func() {
		var once sync.Once
		ec <- client.StreamEvents(ctx, id, func(event string, data []byte) error {
			switch event {
			case "search":
				once.Do(func() { close(search) })
			case "done":
				var d doneEvent
				if err := json.Unmarshal(data, &d); err != nil {
					return err
				}
				doneCh <- d
			}
			return nil
		})
		close(doneCh)
	}()
	return search, doneCh, ec
}

// TestEventsEvictionMidStreamEmitsDoneFrame is the regression test for
// the ring evicting a run while its event stream is live: the stream's
// record disappears mid-flight, and the terminal frame must say so —
// status "evicted", the pinned run ID — rather than arriving with an
// empty status (the old zero-RunRecord bug) or not at all.
func TestEventsEvictionMidStreamEmitsDoneFrame(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 2, LedgerSize: 2, SampleInterval: 2 * time.Millisecond})
	runID := startLongRun(t, s, client.base, "")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gotSearch, dones, errc := collectStream(ctx, client, runID)
	select {
	case <-gotSearch:
	case <-time.After(10 * time.Second):
		t.Fatal("no live search frame arrived")
	}

	// Flood the ring until the live run's record is gone, stream intact.
	for i := 0; i < 2; i++ {
		s.Ledger().Add(&RunRecord{ID: fmt.Sprintf("r-pad-%06d", i), Start: time.Now(), Status: "done"})
	}
	if _, ok := s.Ledger().Get(runID); ok {
		t.Fatal("flood did not evict the live run's record")
	}

	// End the run: the sampler stops, the subscriber channel closes, and
	// the handler goes looking for a record that no longer exists.
	s.Close()
	var got []doneEvent
	for d := range dones {
		got = append(got, d)
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("done frames = %d (%+v), want exactly 1", len(got), got)
	}
	if got[0].Status != "evicted" || got[0].RunID != runID {
		t.Errorf("terminal frame = %+v, want status evicted for %s", got[0], runID)
	}
}

// TestAliasRebindMidStreamStaysPinned: a stream opened through a
// client_ref resolves the alias exactly once. Rebinding the ref to a
// newer run must hand new streams to the new run, clear the superseded
// record's claim on the ref, and leave the established stream pinned —
// its done frame carries the original run's ID.
func TestAliasRebindMidStreamStaysPinned(t *testing.T) {
	const ref = "shared-ref"
	s, client := newTestServer(t, Config{Workers: 2, SampleInterval: 2 * time.Millisecond})
	runA := startLongRun(t, s, client.base, ref)

	// The alias binds after decode; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if id, ok := s.Ledger().Resolve(ref); ok && id == runA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alias %s never bound to %s", ref, runA)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gotSearch, dones, errc := collectStream(ctx, client, ref)
	select {
	case <-gotSearch:
	case <-time.After(10 * time.Second):
		t.Fatal("no live search frame arrived")
	}

	// A second request re-mints the ref; it completes immediately.
	respB, err := client.Verify(context.Background(), VerifyRequest{
		Program: "program ok\nvar x\nproc p0\n  x = 1\nend\n",
		Mode:    cache.ModeRA, ClientRef: ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := s.Ledger().Resolve(ref); !ok || id != respB.RunID {
		t.Errorf("after rebind, %s resolves to %q (ok=%v), want %s", ref, id, ok, respB.RunID)
	}
	if rec, ok := s.Ledger().Get(runA); !ok || rec.ClientRef != "" {
		t.Errorf("superseded record still claims the ref: ClientRef=%q ok=%v", rec.ClientRef, ok)
	}

	// End run A: the established stream must report run A, not run B.
	s.Close()
	var got []doneEvent
	for d := range dones {
		got = append(got, d)
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(got) != 1 || got[0].RunID != runA {
		t.Fatalf("pinned stream done frames = %+v, want one frame for %s", got, runA)
	}

	// A stream opened after the rebind replays run B.
	var d doneEvent
	if err := client.StreamEvents(context.Background(), ref, func(event string, data []byte) error {
		if event == "done" {
			return json.Unmarshal(data, &d)
		}
		return nil
	}); err != nil {
		t.Fatalf("post-rebind stream: %v", err)
	}
	if d.RunID != respB.RunID {
		t.Errorf("post-rebind stream done = %+v, want run %s", d, respB.RunID)
	}
}

// TestAliasRebindNewestRunWins pins the Alias tie-break down at the
// ledger: concurrent requests sharing a ref deliver their Alias calls
// in arbitrary order, so the binding must go to the newest run by start
// time, not the latest caller; superseded and abandoned refs are
// cleaned out of both the record and the alias table.
func TestAliasRebindNewestRunWins(t *testing.T) {
	l := NewLedger(4, nil)
	t0 := time.Now()
	a := &RunRecord{ID: "r-t-000001", Start: t0, Status: "done"}
	b := &RunRecord{ID: "r-t-000002", Start: t0.Add(time.Second), Status: "done"}
	l.Add(a)
	l.Add(b)

	// In-order rebind: the newer run takes the ref, the older record's
	// claim is cleared.
	l.Alias("x", a.ID)
	l.Alias("x", b.ID)
	if id, ok := l.Resolve("x"); !ok || id != b.ID {
		t.Errorf("x resolves to %q (ok=%v), want %s", id, ok, b.ID)
	}
	if rec, _ := l.Get(a.ID); rec.ClientRef != "" {
		t.Errorf("superseded record kept ClientRef %q", rec.ClientRef)
	}

	// The record abandons its old ref on re-alias: x must not dangle.
	l.Alias("y", b.ID)
	if _, ok := l.Resolve("x"); ok {
		t.Error("abandoned ref x still resolves")
	}

	// Out-of-order: the older run's late Alias call must not steal the
	// ref back.
	l.Alias("y", a.ID)
	if id, ok := l.Resolve("y"); !ok || id != b.ID {
		t.Errorf("after late rebind, y resolves to %q (ok=%v), want %s", id, ok, b.ID)
	}
	if rec, _ := l.Get(a.ID); rec.ClientRef != "" {
		t.Errorf("refused Alias still stamped ClientRef %q", rec.ClientRef)
	}

	// Eviction of both records leaves no alias behind.
	for i := 0; i < 4; i++ {
		l.Add(&RunRecord{ID: fmt.Sprintf("r-t-1%05d", i), Start: time.Now(), Status: "done"})
	}
	if _, ok := l.Resolve("y"); ok {
		t.Error("evicted run's alias still resolves")
	}
	l.mu.Lock()
	leaked := len(l.aliases)
	l.mu.Unlock()
	if leaked != 0 {
		t.Errorf("alias table leaked %d entries", leaked)
	}
}

// TestLedgerAliasConcurrent hammers Alias/Resolve/Add/Get over a small
// ring under the race detector, then checks the alias invariants at
// quiescence: every alias entry names a retained record whose
// ClientRef agrees, and no record claims a ref the table has forgotten.
func TestLedgerAliasConcurrent(t *testing.T) {
	l := NewLedger(8, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ref := fmt.Sprintf("ref-%d", w%3)
			for i := 0; i < 100; i++ {
				id := l.NewID()
				l.Add(&RunRecord{ID: id, Start: time.Now(), Status: "running"})
				l.Alias(ref, id)
				l.Resolve(ref)
				l.Get(id)
				l.Update(id, func(r *RunRecord) { r.Status = "done" })
			}
		}(w)
	}
	wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	for ref, id := range l.aliases {
		rec, ok := l.byID[id]
		if !ok {
			t.Errorf("alias %s dangles: %s evicted", ref, id)
			continue
		}
		if rec.ClientRef != ref {
			t.Errorf("alias %s -> %s but record claims %q", ref, id, rec.ClientRef)
		}
	}
	for _, rec := range l.byID {
		if rec.ClientRef != "" && l.aliases[rec.ClientRef] != rec.ID {
			t.Errorf("record %s claims %q but the table maps it to %q", rec.ID, rec.ClientRef, l.aliases[rec.ClientRef])
		}
	}
}
