package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ravbmc/internal/obs"
)

// The SSE stream of GET /v1/runs/{id}/events carries three event types:
//
//	event: search — one ravbmc.search/v1 SearchPoint (JSON), per sample
//	event: phase  — emitted when the sampled phase changes
//	event: done   — terminal frame: run status, verdict and state count
//
// For an in-flight run the handler replays the samples captured so far
// and then streams live ones; for a completed run it replays the stored
// series. Either way the stream ends with exactly one done frame. {id}
// accepts the minted run ID or the request's client_ref alias; unknown
// and evicted runs 404. A run the ring evicts after the stream opened
// can no longer 404 — its stream ends with a done frame whose status is
// "evicted". An alias is resolved once, at open: rebinding the ref to a
// newer run leaves established streams pinned to their original run.

// phaseEvent is the payload of an SSE phase frame.
type phaseEvent struct {
	TMS   int64  `json:"t_ms"`
	Phase string `json:"phase"`
}

// doneEvent is the payload of the terminal SSE frame.
type doneEvent struct {
	RunID   string `json:"run_id"`
	Status  string `json:"status"`
	Verdict string `json:"verdict,omitempty"`
	States  int    `json:"states,omitempty"`
}

// sseWrite emits one SSE frame and flushes it to the client.
func sseWrite(w io.Writer, fl http.Flusher, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// subscribeBuffer is the per-subscriber channel depth: enough to ride
// out scheduling hiccups, small enough that a stalled client is simply
// dropped (the sampler never blocks on it).
const subscribeBuffer = 64

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	runID, ok := s.ledger.Resolve(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "run %s not found (evicted or never existed)", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	s.watchMu.Lock()
	smp := s.watches[runID]
	s.watchMu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if smp == nil {
		// Completed run: replay the stored series, then the terminal
		// frame.
		rr, ok := s.ledger.Get(runID)
		if !ok {
			// Evicted between Resolve and Get. The SSE headers are already
			// written, so a 404 is no longer possible; honour the
			// exactly-one-done-frame contract with a terminal frame naming
			// the eviction instead of a silent EOF.
			sseWrite(w, fl, "done", doneEvent{RunID: runID, Status: "evicted"})
			return
		}
		emit := newEventEmitter(w, fl)
		if rr.Search != nil {
			for _, p := range rr.Search.Samples {
				if emit.point(p) != nil {
					return
				}
			}
		}
		sseWrite(w, fl, "done", doneEvent{RunID: runID, Status: rr.Status, Verdict: rr.Verdict, States: rr.States})
		return
	}

	// In-flight run: subscribe first, then replay what the sampler has
	// already captured — a sample that lands in both is deduplicated by
	// its timestamp.
	ch, unsubscribe := smp.Subscribe(subscribeBuffer)
	defer unsubscribe()
	emit := newEventEmitter(w, fl)
	if series := smp.Series(); series != nil {
		for _, p := range series.Samples {
			if emit.point(p) != nil {
				return
			}
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case p, open := <-ch:
			if !open {
				// Sampler stopped: the run is ending. Its ledger status
				// flips moments after the channels close, so wait
				// briefly for the sealed record before the done frame.
				sseWrite(w, fl, "done", s.awaitSealed(runID, 2*time.Second))
				return
			}
			if p.TMS <= emit.lastTMS {
				continue // already sent during the replay
			}
			if emit.point(p) != nil {
				return
			}
		}
	}
}

// awaitSealed polls the ledger until the run's status leaves "running"
// (or the timeout passes) and returns the terminal frame — bridging the
// gap between the sampler's shutdown and the handler's ledger update. A
// run whose record the ring evicted while its stream was live has no
// verdict left to report, only the fact of eviction.
func (s *Server) awaitSealed(runID string, timeout time.Duration) doneEvent {
	deadline := time.Now().Add(timeout)
	for {
		rr, ok := s.ledger.Get(runID)
		if !ok {
			return doneEvent{RunID: runID, Status: "evicted"}
		}
		if rr.Status != "running" || time.Now().After(deadline) {
			return doneEvent{RunID: runID, Status: rr.Status, Verdict: rr.Verdict, States: rr.States}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// eventEmitter writes search frames plus a phase frame whenever the
// sampled phase changes, tracking the last timestamp sent for replay
// deduplication.
type eventEmitter struct {
	w       io.Writer
	fl      http.Flusher
	phase   string
	lastTMS int64
}

func newEventEmitter(w io.Writer, fl http.Flusher) *eventEmitter {
	return &eventEmitter{w: w, fl: fl, lastTMS: -1}
}

func (e *eventEmitter) point(p obs.SearchPoint) error {
	if p.Phase != e.phase {
		e.phase = p.Phase
		if err := sseWrite(e.w, e.fl, "phase", phaseEvent{TMS: p.TMS, Phase: p.Phase}); err != nil {
			return err
		}
	}
	e.lastTMS = p.TMS
	return sseWrite(e.w, e.fl, "search", p)
}
