package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// drainRetryAfter is the Retry-After stamped on 503 drain rejections:
// long enough for the draining process to exit and its replacement (or
// a peer) to take over, short enough that clients and forwarding nodes
// re-try promptly.
const drainRetryAfter = "2"

// runCtx bundles one run's plumbing — ledger record, tracing recorder,
// telemetry sampler — shared by the verify/mink handlers and the batch
// fan-out, so a batch item is accounted exactly like a direct request.
type runCtx struct {
	s        *Server
	id       string
	endpoint string
	started  time.Time
	rec      *obs.Recorder
	root     *obs.Span
	smp      *obs.Sampler
}

// newRun mints a run: ledger entry (Status "running"), private child
// recorder, root span and registered sampler. Every path out of the run
// must call finish (usually via fail or runLocal) exactly once.
func (s *Server) newRun(endpoint, batchID string) *runCtx {
	started := time.Now()
	runID := s.ledger.NewID()
	rec := s.obs.Child()
	root := rec.StartPhase("request")
	record := &RunRecord{
		ID: runID, Start: started, Endpoint: endpoint, Status: "running",
		Node: s.nodeID(), Batch: batchID,
	}
	s.ledger.Add(record)
	s.log.Debug("request start", "run_id", runID, "endpoint", endpoint)

	// Every run gets a search-telemetry sampler, registered so the SSE
	// endpoint can subscribe to it while the run is in flight.
	smp := obs.NewSampler(rec, s.cfg.SampleInterval)
	s.watchMu.Lock()
	s.watches[runID] = smp
	s.watchMu.Unlock()
	return &runCtx{
		s: s, id: runID, endpoint: endpoint, started: started,
		rec: rec, root: root, smp: smp,
	}
}

// setRequest stamps the decoded request's identity onto the ledger
// record and the root span.
func (rc *runCtx) setRequest(req VerifyRequest, prog *lang.Program) {
	progSHA := sha256.Sum256([]byte(lang.Canon(prog)))
	rc.s.ledger.Update(rc.id, func(rr *RunRecord) {
		rr.Mode = req.Mode
		rr.Program = prog.Name
		rr.ProgramSHA = hex.EncodeToString(progSHA[:])
		rr.K, rr.MaxK, rr.Unroll = req.K, req.MaxK, req.Unroll
	})
	rc.root.SetAttr("run_id", rc.id)
	rc.root.SetAttr("mode", req.Mode)
	rc.root.SetAttr("program", prog.Name)
	rc.root.SetAttrInt("k", int64(req.K))
}

// finish seals the span tree, the telemetry series and the ledger entry
// and logs the request, whatever path ended it.
func (rc *runCtx) finish(status int, verdict, cacheDisp string, states int, errMsg string) {
	s := rc.s
	rc.root.End()
	// Stop the sampler before sealing: its final sample carries the
	// engine's closing totals, and stopping closes every SSE
	// subscription so streams see the run end.
	rc.smp.Stop()
	series := rc.smp.Series()
	s.watchMu.Lock()
	delete(s.watches, rc.id)
	s.watchMu.Unlock()
	spans := rc.rec.Spans()
	total := time.Since(rc.started).Seconds()
	s.hRequest.Observe(total)
	queueWait := obs.SpanSeconds(spans, "queue_wait")
	cacheSecs := obs.SpanSeconds(spans, "cache")
	engine := obs.SpanSeconds(spans, "engine")
	replay := obs.SpanSeconds(spans, "replay")
	lookup := cacheSecs - engine
	if lookup < 0 {
		lookup = 0
	}
	// The replay span runs inside the engine span (witness validation
	// happens within core.Run), so subtract it to keep the four ledger
	// phases disjoint — their sum must never exceed the total.
	engine -= replay
	if engine < 0 {
		engine = 0
	}
	state := "done"
	switch {
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		state = "rejected"
	case status != http.StatusOK:
		state = "error"
	}
	s.ledger.Update(rc.id, func(rr *RunRecord) {
		rr.Status = state
		rr.HTTPStatus = status
		rr.Verdict = verdict
		rr.Cache = cacheDisp
		rr.States = states
		rr.Error = errMsg
		rr.QueueWaitSeconds = queueWait
		rr.CacheLookupSeconds = lookup
		rr.EngineSeconds = engine
		rr.ReplaySeconds = replay
		rr.TotalSeconds = total
		rr.Spans = spans
		rr.Search = series
	})
	s.ledger.auditLine("run", rc.id)
	s.log.Info("request done",
		"run_id", rc.id, "endpoint", rc.endpoint, "status", status,
		"verdict", verdict, "cache", cacheDisp, "seconds", total,
		"queue_wait_s", queueWait, "engine_s", engine, "err", errMsg)
}

// runResult is one run's conclusion, HTTP-free so the verify handler
// (which writes it to the wire) and the batch fan-out (which folds it
// into an aggregate) share every execution path.
type runResult struct {
	status int
	// resp is valid when status == http.StatusOK.
	resp       VerifyResponse
	errMsg     string
	retryAfter string
}

// fail seals the run as failed and returns the matching result.
func (rc *runCtx) fail(status int, retryAfter, format string, args ...any) runResult {
	msg := fmt.Sprintf(format, args...)
	rc.finish(status, "", "", 0, msg)
	return runResult{status: status, errMsg: msg, retryAfter: retryAfter}
}

// writeRunResult renders a runResult onto the wire.
func writeRunResult(w http.ResponseWriter, res runResult) {
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	if res.status == http.StatusOK {
		writeJSON(w, http.StatusOK, res.resp)
		return
	}
	writeError(w, res.status, "%s", res.errMsg)
}

// deadline computes the request's compute deadline from its
// TimeoutSeconds under the server default and cap.
func (s *Server) deadline(req VerifyRequest) time.Time {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return time.Now().Add(timeout)
}

// runLocal executes the request on this node: admission, drain
// re-check, flight recorder, peer cache fill and the engines. wait
// selects blocking admission (batch items queue for a slot) over the
// direct handlers' fail-fast 429.
func (s *Server) runLocal(ctx context.Context, rc *runCtx, req VerifyRequest, prog *lang.Program, mink bool, deadline time.Time, wait bool) runResult {
	span := rc.rec.StartPhase("queue_wait")
	release, err := s.admitRequest(ctx, wait)
	span.End()
	s.hQueueWait.ObserveSince(rc.started)
	if err == errBusy {
		s.rejected.Inc()
		return rc.fail(http.StatusTooManyRequests, "1", "verification queue is full")
	}
	if err != nil {
		s.failed.Inc()
		return rc.fail(http.StatusServiceUnavailable, drainRetryAfter, "request expired while queued: %v", err)
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	if s.Draining() {
		// Drain may have begun while this request queued; refuse rather
		// than start a run the process is about to abandon.
		return rc.fail(http.StatusServiceUnavailable, drainRetryAfter, "server is draining")
	}

	// Flight recorder: if the run is still going past the threshold,
	// capture its live span tree and counters into the ledger — the
	// would-be post-mortem of a timeout, taken pre-mortem.
	if thr := s.cfg.SlowRunThreshold; thr > 0 {
		timer := time.AfterFunc(thr, func() { s.dumpSlowRun(rc.id, rc.rec, thr) })
		defer timer.Stop()
	}

	xc := cache.ExecConfig{
		Timeout: time.Until(deadline), Jobs: s.cfg.Jobs, SearchWorkers: s.cfg.SearchWorkers,
		Reduce: s.cfg.Reduce, TMAI: s.cfg.TMAI, Obs: rc.rec,
	}
	var (
		out    cache.Outcome
		minK   *int
		filled bool
	)
	span = rc.rec.StartPhase("cache")
	if mink {
		out, minK, filled, err = s.runMinK(ctx, req, prog, deadline, xc)
	} else {
		out, filled, err = s.verifyFill(ctx, req.cacheRequest(prog), xc)
	}
	span.End()
	if err != nil {
		s.failed.Inc()
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone or the deadline passed; 504 for the log's
			// benefit (the client may never see it).
			status = http.StatusGatewayTimeout
		}
		return rc.fail(status, "", "%v", err)
	}
	disp := cacheDisposition(out)
	if filled {
		disp = "peer"
	}
	resp := VerifyResponse{
		Outcome:        out,
		Witness:        string(out.WitnessJSONL),
		MinK:           minK,
		RunID:          rc.id,
		Node:           s.nodeID(),
		Version:        s.cfg.Cache.Version(),
		ElapsedSeconds: time.Since(rc.started).Seconds(),
	}
	rc.finish(http.StatusOK, out.Verdict, disp, out.States, "")
	return runResult{status: http.StatusOK, resp: resp}
}
