package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Cache answers and memoizes requests; nil runs every request
	// directly (still correct, never warm).
	Cache *cache.Cache
	// Workers bounds concurrently executing verifications (<=0 selects
	// GOMAXPROCS). Queue bounds requests waiting for a worker beyond
	// that (<=0 selects 64); a request arriving with the queue full is
	// rejected with 429 immediately — backpressure, not buffering.
	Workers int
	Queue   int
	// DefaultTimeout applies when a request names none; MaxTimeout caps
	// what a request may ask for. Zero select 60s and 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps a request body (<=0 selects 1 MiB).
	MaxBodyBytes int64
	// Jobs is the portfolio pool width passed through to executions
	// (<=0 selects the engine default).
	Jobs int
	// SearchWorkers is the work-stealing pool width inside each single
	// search (0 = serial). It trades intra-query latency against the
	// admission Workers above: n admission slots each running w search
	// workers occupy n*w CPUs at saturation, so size the product to the
	// machine.
	SearchWorkers int
	// Reduce turns on source-DPOR in every vbmc-mode request's SC
	// backend; TMAI enables the thread-modular pre-pass, whose unbounded
	// SAFE proofs land in the cache's unbounded tier and answer every
	// later K. Both are verdict-neutral execution knobs
	// (cache.ExecConfig), not request parameters.
	Reduce bool
	TMAI   bool
	// Obs, when non-nil, is mirrored onto /metrics alongside the
	// server's own instruments; per-request recorders mirror their
	// engine counters into it.
	Obs *obs.Recorder
	// Log receives structured request logs, one line per completed
	// request carrying the run ID (nil discards them).
	Log *slog.Logger
	// LedgerSize bounds the in-memory run ledger behind /v1/runs (<=0
	// selects 256).
	LedgerSize int
	// RunLog, when non-nil, receives one JSON line per completed run
	// and per flight-recorder dump — the persistent audit trail.
	RunLog io.Writer
	// SlowRunThreshold arms the flight recorder: a request still in
	// flight past this duration has its live span tree and progress
	// snapshot dumped (once) into its ledger entry, the audit log and
	// the request log. Zero disables it.
	SlowRunThreshold time.Duration
	// SampleInterval is the search-telemetry sampling cadence of every
	// request (<=0 selects 500ms): each run's sampler feeds the SSE
	// event stream live and lands a ravbmc.search/v1 series in its
	// ledger entry.
	SampleInterval time.Duration
}

// Server handles the verification API. Construct with New, expose
// with Handler, stop with Drain (graceful) and Close (hard).
type Server struct {
	cfg   Config
	obs   *obs.Recorder
	start time.Time

	// admit holds one token per admissible request (workers + queue);
	// work holds one token per executing request.
	admit chan struct{}
	work  chan struct{}

	// base is cancelled by Close: the hard stop that tears down every
	// in-flight engine run.
	base   context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	ledger *Ledger
	log    *slog.Logger

	// watches maps in-flight run IDs to their live samplers; the SSE
	// handler subscribes through it, /metrics aggregates over it.
	watchMu sync.Mutex
	watches map[string]*obs.Sampler

	reqs, rejected, failed *obs.Counter
	slowDumps              *obs.Counter
	gQueued, gActive       *obs.Gauge
	// hRequest and hQueueWait are standalone (recorder-independent)
	// histograms so their /metrics families exist on every server.
	hRequest, hQueueWait *obs.Histogram
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		obs:        cfg.Obs,
		start:      time.Now(),
		admit:      make(chan struct{}, cfg.Workers+cfg.Queue),
		work:       make(chan struct{}, cfg.Workers),
		base:       base,
		cancel:     cancel,
		ledger:     NewLedger(cfg.LedgerSize, cfg.RunLog),
		log:        log,
		watches:    map[string]*obs.Sampler{},
		reqs:       cfg.Obs.Counter("serve.requests"),
		rejected:   cfg.Obs.Counter("serve.rejected"),
		failed:     cfg.Obs.Counter("serve.errors"),
		slowDumps:  cfg.Obs.Counter("serve.slow_dumps"),
		gQueued:    cfg.Obs.Gauge("serve.queued"),
		gActive:    cfg.Obs.Gauge("serve.active"),
		hRequest:   obs.NewHistogram("serve.request_seconds", obs.DurationBuckets),
		hQueueWait: obs.NewHistogram("serve.queue_wait_seconds", obs.DurationBuckets),
	}
	return s
}

// Handler returns the API mux:
//
//	POST /v1/verify    — one verification at the request's bounds
//	POST /v1/mink      — smallest K in [K, MaxK] with an UNSAFE verdict
//	GET  /v1/runs      — recent run-ledger entries, newest first
//	GET  /v1/runs/{id} — one run in full detail (span tree included)
//	GET  /v1/runs/{id}/events — SSE search-telemetry stream (live or replay)
//	GET  /healthz      — liveness + drain state
//	GET  /v1/version   — toolchain version
//	GET  /metrics      — Prometheus text metrics (HELP/TYPE, histograms)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		s.handleVerify(w, r, false)
	})
	mux.HandleFunc("POST /v1/mink", func(w http.ResponseWriter, r *http.Request) {
		s.handleVerify(w, r, true)
	})
	mux.HandleFunc("GET /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunDetail)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Ledger exposes the run ledger (tests and embedding callers).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Drain stops admitting verification work (healthz flips to draining,
// verify returns 503) and waits for in-flight requests to finish or
// ctx to expire, whichever first. It does not cancel running work —
// pair with Close for a hard stop after the grace period.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close hard-stops the server: every in-flight engine run's context is
// cancelled. Safe after (or instead of) Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.inflight.Wait()
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// admitRequest performs the two-stage admission: an immediate token
// (429 when the queue is full) and then a worker slot (waiting counts
// as queued). The returned release function gives both back.
func (s *Server) admitRequest(ctx context.Context) (release func(), err error) {
	select {
	case s.admit <- struct{}{}:
	default:
		return nil, errBusy
	}
	s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	select {
	case s.work <- struct{}{}:
	case <-ctx.Done():
		<-s.admit
		s.gQueued.Set(int64(len(s.admit) - len(s.work)))
		return nil, ctx.Err()
	}
	s.gActive.Set(int64(len(s.work)))
	s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	return func() {
		<-s.work
		<-s.admit
		s.gActive.Set(int64(len(s.work)))
		s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	}, nil
}

var errBusy = errors.New("serve: queue full")

// endpointName maps the mink flag onto the ledger's endpoint label.
func endpointName(mink bool) string {
	if mink {
		return "mink"
	}
	return "verify"
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request, mink bool) {
	started := time.Now()
	s.reqs.Inc()

	// Every request gets a run ID and a private tracing recorder whose
	// counters mirror into the process-wide one: the span tree is this
	// request's alone, /metrics keeps aggregating.
	runID := s.ledger.NewID()
	rec := s.obs.Child()
	root := rec.StartPhase("request")
	record := &RunRecord{
		ID: runID, Start: started, Endpoint: endpointName(mink), Status: "running",
	}
	s.ledger.Add(record)
	s.log.Debug("request start", "run_id", runID, "endpoint", record.Endpoint)

	// Every run gets a search-telemetry sampler, registered so the SSE
	// endpoint can subscribe to it while the run is in flight.
	smp := obs.NewSampler(rec, s.cfg.SampleInterval)
	s.watchMu.Lock()
	s.watches[runID] = smp
	s.watchMu.Unlock()

	// finish seals the span tree, the telemetry series and the ledger
	// entry and logs the request, whatever path ended it.
	finish := func(status int, verdict, cacheDisp string, states int, errMsg string) {
		root.End()
		// Stop the sampler before sealing: its final sample carries the
		// engine's closing totals, and stopping closes every SSE
		// subscription so streams see the run end.
		smp.Stop()
		series := smp.Series()
		s.watchMu.Lock()
		delete(s.watches, runID)
		s.watchMu.Unlock()
		spans := rec.Spans()
		total := time.Since(started).Seconds()
		s.hRequest.Observe(total)
		queueWait := obs.SpanSeconds(spans, "queue_wait")
		cacheSecs := obs.SpanSeconds(spans, "cache")
		engine := obs.SpanSeconds(spans, "engine")
		replay := obs.SpanSeconds(spans, "replay")
		lookup := cacheSecs - engine
		if lookup < 0 {
			lookup = 0
		}
		state := "done"
		switch {
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			state = "rejected"
		case status != http.StatusOK:
			state = "error"
		}
		s.ledger.Update(runID, func(rr *RunRecord) {
			rr.Status = state
			rr.HTTPStatus = status
			rr.Verdict = verdict
			rr.Cache = cacheDisp
			rr.States = states
			rr.Error = errMsg
			rr.QueueWaitSeconds = queueWait
			rr.CacheLookupSeconds = lookup
			rr.EngineSeconds = engine
			rr.ReplaySeconds = replay
			rr.TotalSeconds = total
			rr.Spans = spans
			rr.Search = series
		})
		s.ledger.auditLine("run", runID)
		s.log.Info("request done",
			"run_id", runID, "endpoint", record.Endpoint, "status", status,
			"verdict", verdict, "cache", cacheDisp, "seconds", total,
			"queue_wait_s", queueWait, "engine_s", engine, "err", errMsg)
	}
	fail := func(status int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeError(w, status, "%s", msg)
		finish(status, "", "", 0, msg)
	}

	if s.Draining() {
		fail(http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req VerifyRequest
	span := rec.StartPhase("decode")
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	if err == nil {
		err = req.validate()
	}
	var prog *lang.Program
	if err == nil {
		prog, err = req.program()
	}
	span.End()
	if err != nil {
		status := http.StatusUnprocessableEntity
		if prog == nil && req.Mode == "" {
			status = http.StatusBadRequest
		}
		fail(status, "%v", err)
		return
	}
	progSHA := sha256.Sum256([]byte(lang.Canon(prog)))
	s.ledger.Update(runID, func(rr *RunRecord) {
		rr.Mode = req.Mode
		rr.Program = prog.Name
		rr.ProgramSHA = hex.EncodeToString(progSHA[:])
		rr.K, rr.MaxK, rr.Unroll = req.K, req.MaxK, req.Unroll
	})
	// Bind the caller's alias as soon as the request is readable: a
	// client that minted a ref can open the SSE stream now, before the
	// verify response delivers the run ID.
	s.ledger.Alias(req.ClientRef, runID)
	root.SetAttr("run_id", runID)
	root.SetAttr("mode", req.Mode)
	root.SetAttr("program", prog.Name)
	root.SetAttrInt("k", int64(req.K))

	// The request context ends when the client disconnects; the server
	// hard-stop (Close) ends it too. The compute deadline applies on
	// top.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	deadline := time.Now().Add(timeout)
	ctx, cancelDeadline := context.WithDeadline(ctx, deadline)
	defer cancelDeadline()

	span = rec.StartPhase("queue_wait")
	release, err := s.admitRequest(ctx)
	span.End()
	s.hQueueWait.ObserveSince(started)
	if err == errBusy {
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, "verification queue is full")
		return
	}
	if err != nil {
		s.failed.Inc()
		fail(http.StatusServiceUnavailable, "request expired while queued: %v", err)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	if s.Draining() {
		// Drain may have begun while this request queued; refuse rather
		// than start a run the process is about to abandon.
		fail(http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Flight recorder: if the run is still going past the threshold,
	// capture its live span tree and counters into the ledger — the
	// would-be post-mortem of a timeout, taken pre-mortem.
	if thr := s.cfg.SlowRunThreshold; thr > 0 {
		timer := time.AfterFunc(thr, func() { s.dumpSlowRun(runID, rec, thr) })
		defer timer.Stop()
	}

	xc := cache.ExecConfig{
		Timeout: time.Until(deadline), Jobs: s.cfg.Jobs, SearchWorkers: s.cfg.SearchWorkers,
		Reduce: s.cfg.Reduce, TMAI: s.cfg.TMAI, Obs: rec,
	}
	var (
		out  cache.Outcome
		minK *int
	)
	span = rec.StartPhase("cache")
	if mink {
		out, minK, err = s.runMinK(ctx, req, prog, deadline, xc)
	} else {
		out, err = s.cfg.Cache.Verify(ctx, req.cacheRequest(prog), xc)
	}
	span.End()
	if err != nil {
		s.failed.Inc()
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone or the deadline passed; 504 for the log's
			// benefit (the client may never see it).
			status = http.StatusGatewayTimeout
		}
		fail(status, "%v", err)
		return
	}
	resp := VerifyResponse{
		Outcome:        out,
		Witness:        string(out.WitnessJSONL),
		MinK:           minK,
		RunID:          runID,
		Version:        s.cfg.Cache.Version(),
		ElapsedSeconds: time.Since(started).Seconds(),
	}
	writeJSON(w, http.StatusOK, resp)
	finish(http.StatusOK, out.Verdict, cacheDisposition(out), out.States, "")
}

// cacheDisposition names how the outcome was obtained, for the ledger
// and request log.
func cacheDisposition(out cache.Outcome) string {
	switch {
	case out.Subsumed:
		return "subsumed"
	case out.Cached:
		return "hit"
	case out.Collapsed:
		return "collapsed"
	default:
		return "miss"
	}
}

// dumpSlowRun is the flight recorder: invoked once per run by the
// slow-run timer while the request is still in flight.
func (s *Server) dumpSlowRun(runID string, rec *obs.Recorder, thr time.Duration) {
	snap := rec.Snapshot()
	dump := &SlowDump{
		AfterSeconds: thr.Seconds(),
		Phase:        snap.Phase,
		Counters:     snap.Counters,
		Spans:        rec.Spans(),
	}
	if !s.ledger.SetSlowDump(runID, dump) {
		return
	}
	s.slowDumps.Inc()
	s.ledger.auditLine("slow_run", runID)
	s.log.Warn("slow run: flight recorder dump",
		"run_id", runID, "after_s", thr.Seconds(), "phase", snap.Phase,
		"spans", obs.CountSpans(dump.Spans))
}

// defaultMaxK bounds /v1/mink when the request names no MaxK; the
// litmus result (paper Sec. 7) makes small bounds the interesting
// range, so 8 is generous.
const defaultMaxK = 8

// runMinK is the cache-aware minimal-K search: try each bound from
// req.K to req.MaxK, answering each probe from the cache — an UNSAFE
// cached at a smaller bound or a SAFE cached at a larger one short-
// circuits whole prefixes of the search. Returns the first UNSAFE
// outcome with its K, the final SAFE outcome with minK = -1, or the
// first non-conclusive outcome as-is.
func (s *Server) runMinK(ctx context.Context, req VerifyRequest, prog *lang.Program, deadline time.Time, xc cache.ExecConfig) (cache.Outcome, *int, error) {
	maxK := req.MaxK
	if maxK == 0 {
		maxK = defaultMaxK
	}
	if maxK < req.K {
		return cache.Outcome{}, nil, fmt.Errorf("max_k %d below starting k %d", maxK, req.K)
	}
	var out cache.Outcome
	for k := req.K; k <= maxK; k++ {
		cr := req.cacheRequest(prog)
		cr.K = k
		xc.Timeout = time.Until(deadline)
		var err error
		out, err = s.cfg.Cache.Verify(ctx, cr, xc)
		if err != nil {
			return cache.Outcome{}, nil, err
		}
		if out.Verdict == cache.VerdictUnsafe {
			return out, &k, nil
		}
		if out.Verdict != cache.VerdictSafe {
			// Inconclusive or disagreement: report it at this bound
			// rather than pretending larger bounds would be sound.
			return out, nil, nil
		}
	}
	minK := -1
	return out, &minK, nil
}
