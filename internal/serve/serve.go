package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/cluster"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Cache answers and memoizes requests; nil runs every request
	// directly (still correct, never warm).
	Cache *cache.Cache
	// Workers bounds concurrently executing verifications (<=0 selects
	// GOMAXPROCS). Queue bounds requests waiting for a worker beyond
	// that (<=0 selects 64); a request arriving with the queue full is
	// rejected with 429 immediately — backpressure, not buffering.
	Workers int
	Queue   int
	// DefaultTimeout applies when a request names none; MaxTimeout caps
	// what a request may ask for. Zero select 60s and 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps a request body (<=0 selects 1 MiB).
	MaxBodyBytes int64
	// Jobs is the portfolio pool width passed through to executions
	// (<=0 selects the engine default).
	Jobs int
	// SearchWorkers is the work-stealing pool width inside each single
	// search (0 = serial). It trades intra-query latency against the
	// admission Workers above: n admission slots each running w search
	// workers occupy n*w CPUs at saturation, so size the product to the
	// machine.
	SearchWorkers int
	// Reduce turns on source-DPOR in every vbmc-mode request's SC
	// backend; TMAI enables the thread-modular pre-pass, whose unbounded
	// SAFE proofs land in the cache's unbounded tier and answer every
	// later K. Both are verdict-neutral execution knobs
	// (cache.ExecConfig), not request parameters.
	Reduce bool
	TMAI   bool
	// Obs, when non-nil, is mirrored onto /metrics alongside the
	// server's own instruments; per-request recorders mirror their
	// engine counters into it.
	Obs *obs.Recorder
	// Log receives structured request logs, one line per completed
	// request carrying the run ID (nil discards them).
	Log *slog.Logger
	// LedgerSize bounds the in-memory run ledger behind /v1/runs (<=0
	// selects 256).
	LedgerSize int
	// RunLog, when non-nil, receives one JSON line per completed run
	// and per flight-recorder dump — the persistent audit trail.
	RunLog io.Writer
	// SlowRunThreshold arms the flight recorder: a request still in
	// flight past this duration has its live span tree and progress
	// snapshot dumped (once) into its ledger entry, the audit log and
	// the request log. Zero disables it.
	SlowRunThreshold time.Duration
	// SampleInterval is the search-telemetry sampling cadence of every
	// request (<=0 selects 500ms): each run's sampler feeds the SSE
	// event stream live and lands a ravbmc.search/v1 series in its
	// ledger entry.
	SampleInterval time.Duration
	// Cluster, when non-nil, makes this node one shard of a
	// horizontally scaled service: requests owned by other live nodes
	// are forwarded there, local cold misses consult the owner's cache
	// first, and /metrics grows the ravbmc_cluster_* families. Nil runs
	// the classic single-node daemon.
	Cluster *cluster.Cluster
	// BatchWorkers bounds how many /v1/batch items are in flight at
	// once on this coordinator (<=0 selects 4*Workers: forwarded items
	// spend their life waiting on peers, so the fan-out runs wider than
	// the local worker pool).
	BatchWorkers int
}

// Server handles the verification API. Construct with New, expose
// with Handler, stop with Drain (graceful) and Close (hard).
type Server struct {
	cfg   Config
	obs   *obs.Recorder
	start time.Time

	// admit holds one token per admissible request (workers + queue);
	// work holds one token per executing request.
	admit chan struct{}
	work  chan struct{}

	// base is cancelled by Close: the hard stop that tears down every
	// in-flight engine run.
	base   context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	ledger *Ledger
	log    *slog.Logger

	// watches maps in-flight run IDs to their live samplers; the SSE
	// handler subscribes through it, /metrics aggregates over it.
	watchMu sync.Mutex
	watches map[string]*obs.Sampler

	reqs, rejected, failed *obs.Counter
	slowDumps              *obs.Counter
	gQueued, gActive       *obs.Gauge
	// hRequest and hQueueWait are standalone (recorder-independent)
	// histograms so their /metrics families exist on every server.
	hRequest, hQueueWait *obs.Histogram

	// peerHTTP carries cluster traffic (forwards, cache fills); no
	// client timeout — the per-call context governs.
	peerHTTP *http.Client
	// batchSem bounds concurrent /v1/batch items on this coordinator.
	batchSem                            chan struct{}
	batches, batchItems, batchItemFails *obs.Counter
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = 4 * cfg.Workers
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		obs:        cfg.Obs,
		start:      time.Now(),
		admit:      make(chan struct{}, cfg.Workers+cfg.Queue),
		work:       make(chan struct{}, cfg.Workers),
		base:       base,
		cancel:     cancel,
		ledger:     NewLedger(cfg.LedgerSize, cfg.RunLog),
		log:        log,
		watches:    map[string]*obs.Sampler{},
		reqs:       cfg.Obs.Counter("serve.requests"),
		rejected:   cfg.Obs.Counter("serve.rejected"),
		failed:     cfg.Obs.Counter("serve.errors"),
		slowDumps:  cfg.Obs.Counter("serve.slow_dumps"),
		gQueued:    cfg.Obs.Gauge("serve.queued"),
		gActive:    cfg.Obs.Gauge("serve.active"),
		hRequest:   obs.NewHistogram("serve.request_seconds", obs.DurationBuckets),
		hQueueWait: obs.NewHistogram("serve.queue_wait_seconds", obs.DurationBuckets),

		peerHTTP:       &http.Client{},
		batchSem:       make(chan struct{}, cfg.BatchWorkers),
		batches:        cfg.Obs.Counter("serve.batches"),
		batchItems:     cfg.Obs.Counter("serve.batch_items"),
		batchItemFails: cfg.Obs.Counter("serve.batch_item_failures"),
	}
	return s
}

// Handler returns the API mux:
//
//	POST /v1/verify    — one verification at the request's bounds
//	POST /v1/mink      — smallest K in [K, MaxK] with an UNSAFE verdict
//	POST /v1/batch     — a whole corpus in one call (SSE or JSON reply)
//	GET  /v1/runs      — recent run-ledger entries, newest first
//	GET  /v1/runs/{id} — one run in full detail (span tree included)
//	GET  /v1/runs/{id}/events — SSE search-telemetry stream (live or replay)
//	GET  /v1/cache/{key} — internal: peer cache-fill read by digest
//	GET  /healthz      — liveness (always 200 while the process runs)
//	GET  /readyz       — readiness (503 while draining)
//	GET  /v1/version   — toolchain version
//	GET  /metrics      — Prometheus text metrics (HELP/TYPE, histograms)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		s.handleVerify(w, r, false)
	})
	mux.HandleFunc("POST /v1/mink", func(w http.ResponseWriter, r *http.Request) {
		s.handleVerify(w, r, true)
	})
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunDetail)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Ledger exposes the run ledger (tests and embedding callers).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Drain stops admitting verification work (healthz flips to draining,
// verify returns 503) and waits for in-flight requests to finish or
// ctx to expire, whichever first. It does not cancel running work —
// pair with Close for a hard stop after the grace period.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close hard-stops the server: every in-flight engine run's context is
// cancelled. Safe after (or instead of) Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.inflight.Wait()
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// admitRequest performs the two-stage admission: an admission token
// and then a worker slot (waiting counts as queued). With wait false a
// full queue rejects immediately (errBusy → 429, backpressure not
// buffering); with wait true the caller blocks for a token too — batch
// items, whose backpressure is the batch taking longer. The returned
// release function gives both back.
func (s *Server) admitRequest(ctx context.Context, wait bool) (release func(), err error) {
	if wait {
		select {
		case s.admit <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else {
		select {
		case s.admit <- struct{}{}:
		default:
			return nil, errBusy
		}
	}
	s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	select {
	case s.work <- struct{}{}:
	case <-ctx.Done():
		<-s.admit
		s.gQueued.Set(int64(len(s.admit) - len(s.work)))
		return nil, ctx.Err()
	}
	s.gActive.Set(int64(len(s.work)))
	s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	return func() {
		<-s.work
		<-s.admit
		s.gActive.Set(int64(len(s.work)))
		s.gQueued.Set(int64(len(s.admit) - len(s.work)))
	}, nil
}

var errBusy = errors.New("serve: queue full")

// endpointName maps the mink flag onto the ledger's endpoint label.
func endpointName(mink bool) string {
	if mink {
		return "mink"
	}
	return "verify"
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request, mink bool) {
	s.reqs.Inc()

	// Every request gets a run ID and a private tracing recorder whose
	// counters mirror into the process-wide one: the span tree is this
	// request's alone, /metrics keeps aggregating.
	rc := s.newRun(endpointName(mink), "")

	if s.Draining() {
		writeRunResult(w, rc.fail(http.StatusServiceUnavailable, drainRetryAfter, "server is draining"))
		return
	}

	var req VerifyRequest
	span := rc.rec.StartPhase("decode")
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	if err == nil {
		err = req.validate()
	}
	var prog *lang.Program
	if err == nil {
		prog, err = req.program()
	}
	span.End()
	if err != nil {
		status := http.StatusUnprocessableEntity
		if prog == nil && req.Mode == "" {
			status = http.StatusBadRequest
		}
		writeRunResult(w, rc.fail(status, "", "%v", err))
		return
	}
	rc.setRequest(req, prog)
	// Bind the caller's alias as soon as the request is readable: a
	// client that minted a ref can open the SSE stream now, before the
	// verify response delivers the run ID.
	s.ledger.Alias(req.ClientRef, rc.id)

	// The request context ends when the client disconnects; the server
	// hard-stop (Close) ends it too. The compute deadline applies on
	// top.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()
	deadline := s.deadline(req)
	ctx, cancelDeadline := context.WithDeadline(ctx, deadline)
	defer cancelDeadline()

	// Cluster routing: a request another live node owns is forwarded
	// there and its reply relayed byte-for-byte; a failed forward falls
	// back to local execution below.
	forwarded := r.Header.Get(forwardedHeader) != ""
	if owner, ok := s.forwardTarget(req, prog, forwarded); ok {
		if res, body, done := s.forwardRun(ctx, rc, owner, endpointPath(mink), req); done {
			if res.retryAfter != "" {
				w.Header().Set("Retry-After", res.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			w.Write(body)
			return
		}
	}

	writeRunResult(w, s.runLocal(ctx, rc, req, prog, mink, deadline, false))
}

// cacheDisposition names how the outcome was obtained, for the ledger
// and request log.
func cacheDisposition(out cache.Outcome) string {
	switch {
	case out.Subsumed:
		return "subsumed"
	case out.Cached:
		return "hit"
	case out.Collapsed:
		return "collapsed"
	default:
		return "miss"
	}
}

// dumpSlowRun is the flight recorder: invoked once per run by the
// slow-run timer while the request is still in flight.
func (s *Server) dumpSlowRun(runID string, rec *obs.Recorder, thr time.Duration) {
	snap := rec.Snapshot()
	dump := &SlowDump{
		AfterSeconds: thr.Seconds(),
		Phase:        snap.Phase,
		Counters:     snap.Counters,
		Spans:        rec.Spans(),
	}
	if !s.ledger.SetSlowDump(runID, dump) {
		return
	}
	s.slowDumps.Inc()
	s.ledger.auditLine("slow_run", runID)
	s.log.Warn("slow run: flight recorder dump",
		"run_id", runID, "after_s", thr.Seconds(), "phase", snap.Phase,
		"spans", obs.CountSpans(dump.Spans))
}

// defaultMaxK bounds /v1/mink when the request names no MaxK; the
// litmus result (paper Sec. 7) makes small bounds the interesting
// range, so 8 is generous.
const defaultMaxK = 8

// runMinK is the cache-aware minimal-K search: try each bound from
// req.K to req.MaxK, answering each probe from the cache — an UNSAFE
// cached at a smaller bound or a SAFE cached at a larger one short-
// circuits whole prefixes of the search. Returns the first UNSAFE
// outcome with its K, the final SAFE outcome with minK = -1, or the
// first non-conclusive outcome as-is. filled reports that at least one
// probe was answered by a peer's cache.
func (s *Server) runMinK(ctx context.Context, req VerifyRequest, prog *lang.Program, deadline time.Time, xc cache.ExecConfig) (cache.Outcome, *int, bool, error) {
	maxK := req.MaxK
	if maxK == 0 {
		maxK = defaultMaxK
	}
	if maxK < req.K {
		return cache.Outcome{}, nil, false, fmt.Errorf("max_k %d below starting k %d", maxK, req.K)
	}
	var out cache.Outcome
	filled := false
	for k := req.K; k <= maxK; k++ {
		cr := req.cacheRequest(prog)
		cr.K = k
		xc.Timeout = time.Until(deadline)
		var err error
		var f bool
		out, f, err = s.verifyFill(ctx, cr, xc)
		filled = filled || f
		if err != nil {
			return cache.Outcome{}, nil, filled, err
		}
		if out.Verdict == cache.VerdictUnsafe {
			return out, &k, filled, nil
		}
		if out.Verdict != cache.VerdictSafe {
			// Inconclusive or disagreement: report it at this bound
			// rather than pretending larger bounds would be sound.
			return out, nil, filled, nil
		}
	}
	minK := -1
	return out, &minK, filled, nil
}
