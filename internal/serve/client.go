package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the vbmcd API; the zero value is unusable, construct
// with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a vbmcd base URL ("http://host:port"). The HTTP
// client carries no timeout of its own: the per-call context (and the
// server's compute deadline) governs.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// Verify runs POST /v1/verify.
func (c *Client) Verify(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/verify", req)
}

// MinK runs POST /v1/mink.
func (c *Client) MinK(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/mink", req)
}

// Version fetches the server's toolchain version.
func (c *Client) Version(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/version", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return "", err
	}
	return body.Version, nil
}

// ErrRunNotFound reports that the server does not (or no longer) knows
// the run ID or client_ref handed to StreamEvents. Callers racing a
// just-submitted request's alias should retry briefly on it.
var ErrRunNotFound = errors.New("serve: run not found")

// StreamEvents consumes GET /v1/runs/{id}/events, invoking fn once per
// SSE frame with the event name ("search", "phase", "done") and its
// data payload. id may be a run ID or a client_ref alias. It returns
// nil when the stream ends (normally right after the "done" frame),
// ErrRunNotFound on a 404, ctx's error on cancellation, and fn's error
// if fn aborts the stream.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(event string, data []byte) error) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return ErrRunNotFound
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	// Minimal SSE parse: accumulate event/data lines, dispatch on the
	// blank separator line. Comment and id fields are ignored.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(data) > 0 {
				if err := fn(event, data); err != nil {
					return err
				}
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// maxResponseBytes caps a reply; witnesses are the only large payload
// and stay far below this.
const maxResponseBytes = 64 << 20

func (c *Client) post(ctx context.Context, path string, req VerifyRequest) (VerifyResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return VerifyResponse{}, err
	}
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return VerifyResponse{}, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			return VerifyResponse{}, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if err != nil {
			return VerifyResponse{}, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				return VerifyResponse{}, fmt.Errorf("decode response: %w", err)
			}
			vr.WitnessJSONL = []byte(vr.Witness)
			return vr, nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 4:
			// Honour the server's backpressure with a short bounded
			// retry; give up past that and surface the rejection.
			select {
			case <-time.After(time.Duration(attempt+1) * 250 * time.Millisecond):
				continue
			case <-ctx.Done():
				return VerifyResponse{}, ctx.Err()
			}
		default:
			var er ErrorResponse
			if json.Unmarshal(body, &er) == nil && er.Error != "" {
				return VerifyResponse{}, fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
			}
			return VerifyResponse{}, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
	}
}
