package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client speaks the vbmcd API; the zero value is unusable, construct
// with NewClient.
type Client struct {
	// base is the primary endpoint (GETs and streams go here); bases is
	// the full failover list, base first.
	base  string
	bases []string
	http  *http.Client
}

// NewClient targets one vbmcd base URL ("http://host:port") or a
// comma-separated list of them ("http://n1:8080,http://n2:8080"). With
// a list, verification POSTs fail over to the next endpoint when one
// is unreachable or draining — any cluster node can serve any request,
// so the client needs no ownership knowledge. GETs (version, event
// streams) use the first endpoint. The HTTP client carries no timeout
// of its own: the per-call context (and the server's compute deadline)
// governs.
func NewClient(base string) *Client {
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, strings.TrimRight(b, "/"))
		}
	}
	if len(bases) == 0 {
		bases = []string{""}
	}
	return &Client{base: bases[0], bases: bases, http: &http.Client{}}
}

// Verify runs POST /v1/verify.
func (c *Client) Verify(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/verify", req)
}

// MinK runs POST /v1/mink.
func (c *Client) MinK(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/mink", req)
}

// Version fetches the server's toolchain version.
func (c *Client) Version(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/version", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return "", err
	}
	return body.Version, nil
}

// ErrRunNotFound reports that the server does not (or no longer) knows
// the run ID or client_ref handed to StreamEvents. Callers racing a
// just-submitted request's alias should retry briefly on it.
var ErrRunNotFound = errors.New("serve: run not found")

// StreamEvents consumes GET /v1/runs/{id}/events, invoking fn once per
// SSE frame with the event name ("search", "phase", "done") and its
// data payload. id may be a run ID or a client_ref alias. It returns
// nil when the stream ends (normally right after the "done" frame),
// ErrRunNotFound on a 404, ctx's error on cancellation, and fn's error
// if fn aborts the stream.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(event string, data []byte) error) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return ErrRunNotFound
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	// Minimal SSE parse: accumulate event/data lines, dispatch on the
	// blank separator line. Comment and id fields are ignored.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(data) > 0 {
				if err := fn(event, data); err != nil {
					return err
				}
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// maxResponseBytes caps a reply; witnesses are the only large payload
// and stay far below this.
const maxResponseBytes = 64 << 20

// postAttempts bounds the retry loop: enough patience to ride out a
// drain grace period or a busy burst, finite so a dead cluster
// surfaces as an error rather than a hang.
const postAttempts = 6

func (c *Client) post(ctx context.Context, path string, req VerifyRequest) (VerifyResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return VerifyResponse{}, err
	}
	// ep rotates through the endpoint list on failover; retries that
	// expect the same endpoint to recover (429 backoff) stay put.
	ep := 0
	var lastErr error
	for attempt := 0; attempt < postAttempts+len(c.bases); attempt++ {
		base := c.bases[ep%len(c.bases)]
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
		if err != nil {
			return VerifyResponse{}, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return VerifyResponse{}, ctx.Err()
			}
			// Unreachable: fail over when there is somewhere to go.
			lastErr = err
			if len(c.bases) > 1 {
				ep++
				continue
			}
			return VerifyResponse{}, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if err != nil {
			return VerifyResponse{}, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				return VerifyResponse{}, fmt.Errorf("decode response: %w", err)
			}
			vr.WitnessJSONL = []byte(vr.Witness)
			return vr, nil
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			// 429 is backpressure, 503 is a draining (or restarting)
			// server; both are transient. With other endpoints to try, a
			// 503 fails over immediately — a peer can serve right now;
			// otherwise wait out the server's Retry-After (fallback: a
			// growing backoff) and try again.
			lastErr = statusError(body, resp.StatusCode)
			if resp.StatusCode == http.StatusServiceUnavailable && len(c.bases) > 1 {
				ep++
				continue
			}
			wait := time.Duration(attempt+1) * 250 * time.Millisecond
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return VerifyResponse{}, ctx.Err()
			}
		default:
			return VerifyResponse{}, statusError(body, resp.StatusCode)
		}
	}
	return VerifyResponse{}, fmt.Errorf("serve: request failed after %d attempts: %w", postAttempts+len(c.bases), lastErr)
}

// statusError shapes a non-2xx reply into an error, surfacing the
// server's own message when the body carries one.
func statusError(body []byte, status int) error {
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", er.Error, status)
	}
	return fmt.Errorf("server: HTTP %d", status)
}
