package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the vbmcd API; the zero value is unusable, construct
// with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a vbmcd base URL ("http://host:port"). The HTTP
// client carries no timeout of its own: the per-call context (and the
// server's compute deadline) governs.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// Verify runs POST /v1/verify.
func (c *Client) Verify(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/verify", req)
}

// MinK runs POST /v1/mink.
func (c *Client) MinK(ctx context.Context, req VerifyRequest) (VerifyResponse, error) {
	return c.post(ctx, "/v1/mink", req)
}

// Version fetches the server's toolchain version.
func (c *Client) Version(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/version", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return "", err
	}
	return body.Version, nil
}

// maxResponseBytes caps a reply; witnesses are the only large payload
// and stay far below this.
const maxResponseBytes = 64 << 20

func (c *Client) post(ctx context.Context, path string, req VerifyRequest) (VerifyResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return VerifyResponse{}, err
	}
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return VerifyResponse{}, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			return VerifyResponse{}, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if err != nil {
			return VerifyResponse{}, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				return VerifyResponse{}, fmt.Errorf("decode response: %w", err)
			}
			vr.WitnessJSONL = []byte(vr.Witness)
			return vr, nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 4:
			// Honour the server's backpressure with a short bounded
			// retry; give up past that and surface the rejection.
			select {
			case <-time.After(time.Duration(attempt+1) * 250 * time.Millisecond):
				continue
			case <-ctx.Done():
				return VerifyResponse{}, ctx.Err()
			}
		default:
			var er ErrorResponse
			if json.Unmarshal(body, &er) == nil && er.Error != "" {
				return VerifyResponse{}, fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
			}
			return VerifyResponse{}, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
	}
}
