package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"ravbmc/internal/obs"
)

// RunRecord is one ledger entry: the full account of a vbmcd request —
// identity, cache disposition, per-phase timings and (in detail views)
// the span tree. The run ID on the record is the same one stamped on
// the response body, every slog line and any exported span tree, so one
// grep correlates all four.
type RunRecord struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	// Endpoint is "verify" or "mink"; Mode is the cache mode requested.
	Endpoint string `json:"endpoint"`
	Mode     string `json:"mode,omitempty"`
	// Node is the cluster node that served the run: this node's own ID
	// for local executions, the owner's ID when the run was forwarded,
	// "" on a solo daemon.
	Node string `json:"node,omitempty"`
	// Batch is the batch ID when this run was one item of a /v1/batch
	// fan-out, "" for direct requests.
	Batch string `json:"batch,omitempty"`
	// Program is the bench name or parsed program name; ProgramSHA is
	// the SHA-256 of its canonical form — the content part of the cache
	// key, so identical sources share a hash across runs.
	Program    string `json:"program,omitempty"`
	ProgramSHA string `json:"program_sha,omitempty"`
	K          int    `json:"k,omitempty"`
	MaxK       int    `json:"max_k,omitempty"`
	Unroll     int    `json:"l,omitempty"`
	// Status is "running" until the request finishes, then "done",
	// "rejected" (429/503) or "error". HTTPStatus is the code written.
	Status     string `json:"status"`
	HTTPStatus int    `json:"http_status,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	// Cache is the disposition: "hit", "subsumed", "collapsed" or
	// "miss" ("" when the request never reached the cache).
	Cache  string `json:"cache,omitempty"`
	States int    `json:"states,omitempty"`
	Error  string `json:"error,omitempty"`
	// Per-phase timings, derived from the request's span tree: queue
	// wait, cache lookup (cache span minus the engine run inside it),
	// engine execution and witness replay. Their sum tracks
	// TotalSeconds to within the handler's own overhead.
	QueueWaitSeconds   float64 `json:"queue_wait_seconds"`
	CacheLookupSeconds float64 `json:"cache_lookup_seconds"`
	EngineSeconds      float64 `json:"engine_seconds"`
	ReplaySeconds      float64 `json:"replay_seconds"`
	TotalSeconds       float64 `json:"total_seconds"`
	// SlowDump is the flight recorder's capture, present only when the
	// run crossed the slow-run threshold while still in flight.
	SlowDump *SlowDump `json:"slow_dump,omitempty"`
	// Spans is the request's span tree; populated in /v1/runs/{id}
	// detail responses and omitted from /v1/runs summaries.
	Spans []*obs.SpanNode `json:"spans,omitempty"`
	// ClientRef is the caller-chosen alias of this run (the request's
	// client_ref), resolvable by /v1/runs/{id}/events before the caller
	// learns the server-minted run ID.
	ClientRef string `json:"client_ref,omitempty"`
	// Search is the sampled ravbmc.search/v1 telemetry series of the
	// run's engine execution; populated in detail responses and SSE
	// replays, omitted from /v1/runs summaries.
	Search *obs.SearchSeries `json:"search,omitempty"`
}

// SlowDump is what the flight recorder captures when a run exceeds the
// slow-run threshold: the live span tree and a progress snapshot, taken
// while the run is still going — the record of "what was it doing" that
// a timeout would otherwise destroy.
type SlowDump struct {
	// AfterSeconds is the threshold that tripped the dump.
	AfterSeconds float64 `json:"after_seconds"`
	// Phase is the innermost open phase at capture time.
	Phase string `json:"phase,omitempty"`
	// Counters are the run's engine counters at capture time.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Spans is the live span tree (open spans marked, durations
	// elapsed-so-far).
	Spans []*obs.SpanNode `json:"spans,omitempty"`
}

// Ledger is the daemon's bounded run history: a ring of the most
// recent RunRecords, indexed by run ID, with an optional JSONL audit
// stream. All methods are safe for concurrent use; the ring never
// exceeds its capacity — the oldest record is evicted (and its ID
// forgotten, so /v1/runs/{id} 404s) when a new one arrives full.
type Ledger struct {
	mu     sync.Mutex
	cap    int
	seq    int64
	prefix string
	ring   []*RunRecord // ring buffer; ring[head] is the next slot
	head   int
	count  int
	byID   map[string]*RunRecord
	// aliases maps caller-chosen client_ref strings to run IDs (latest
	// binding wins); entries die with their record's eviction.
	aliases   map[string]string
	evictions int64
	audit     io.Writer
}

// defaultLedgerSize is the ring capacity when the config names none.
const defaultLedgerSize = 256

// NewLedger builds a ledger holding at most capacity runs (<=0 selects
// 256). audit, when non-nil, receives one JSON line per completed run
// and per flight-recorder dump.
func NewLedger(capacity int, audit io.Writer) *Ledger {
	if capacity <= 0 {
		capacity = defaultLedgerSize
	}
	var b [4]byte
	rand.Read(b[:])
	return &Ledger{
		cap:     capacity,
		prefix:  hex.EncodeToString(b[:]),
		ring:    make([]*RunRecord, capacity),
		byID:    map[string]*RunRecord{},
		aliases: map[string]string{},
		audit:   audit,
	}
}

// NewID mints the next run ID: a per-process random prefix (so IDs
// from different daemon incarnations never collide in logs) plus a
// monotone sequence number.
func (l *Ledger) NewID() string {
	l.mu.Lock()
	l.seq++
	id := fmt.Sprintf("r-%s-%06d", l.prefix, l.seq)
	l.mu.Unlock()
	return id
}

// NewBatchID mints a batch ID from the same prefix and sequence space
// as run IDs, "b-"-marked so a grep tells the two apart; every item of
// the batch carries it in its RunRecord.Batch.
func (l *Ledger) NewBatchID() string {
	l.mu.Lock()
	l.seq++
	id := fmt.Sprintf("b-%s-%06d", l.prefix, l.seq)
	l.mu.Unlock()
	return id
}

// Add inserts a record, evicting the oldest when full.
func (l *Ledger) Add(rec *RunRecord) {
	l.mu.Lock()
	if old := l.ring[l.head]; old != nil {
		delete(l.byID, old.ID)
		if old.ClientRef != "" && l.aliases[old.ClientRef] == old.ID {
			delete(l.aliases, old.ClientRef)
		}
		l.evictions++
	}
	l.ring[l.head] = rec
	l.byID[rec.ID] = rec
	l.head = (l.head + 1) % l.cap
	if l.count < l.cap {
		l.count++
	}
	l.mu.Unlock()
}

// Alias binds a caller-chosen reference to a run ID, so a client can
// address the run — e.g. subscribe to its event stream — before the
// verify response delivers the minted ID. The newest run wins the
// binding: concurrent requests sharing a ref can deliver their Alias
// calls out of run order, so the decision is made on the records'
// start times, not call arrival. The superseded record's ClientRef is
// cleared — exactly one retained record claims a ref at a time, and a
// stream already resolved through the old binding stays pinned to its
// run ID. No-op for evicted or unknown IDs.
func (l *Ledger) Alias(ref, id string) {
	if ref == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.byID[id]
	if !ok {
		return
	}
	if prevID, bound := l.aliases[ref]; bound && prevID != id {
		if prev, live := l.byID[prevID]; live {
			if prev.Start.After(rec.Start) {
				return // a newer run already holds the ref
			}
			prev.ClientRef = ""
		}
	}
	if rec.ClientRef != "" && rec.ClientRef != ref && l.aliases[rec.ClientRef] == id {
		// The record abandons its previous ref; without this the old
		// alias entry dangles past the record's eviction and Resolve
		// hands out a dead run ID.
		delete(l.aliases, rec.ClientRef)
	}
	rec.ClientRef = ref
	l.aliases[ref] = id
}

// Resolve maps a run ID or client_ref alias to the canonical run ID;
// ok is false when neither names a retained record.
func (l *Ledger) Resolve(idOrRef string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byID[idOrRef]; ok {
		return idOrRef, true
	}
	if id, ok := l.aliases[idOrRef]; ok {
		return id, true
	}
	return "", false
}

// Evictions returns how many records the ring has discarded.
func (l *Ledger) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

// Update applies f to the record under the ledger lock (records are
// shared with concurrent readers, so every mutation goes through
// here). It reports whether the ID was still present.
func (l *Ledger) Update(id string, f func(*RunRecord)) bool {
	l.mu.Lock()
	rec, ok := l.byID[id]
	if ok {
		f(rec)
	}
	l.mu.Unlock()
	return ok
}

// SetSlowDump installs the flight recorder's capture, exactly once per
// run: the first call wins and returns true, later calls (and calls
// for evicted IDs) return false without touching the record.
func (l *Ledger) SetSlowDump(id string, d *SlowDump) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.byID[id]
	if !ok || rec.SlowDump != nil {
		return false
	}
	rec.SlowDump = d
	return true
}

// Get returns a copy of the record (detail view, span tree included).
func (l *Ledger) Get(id string) (RunRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.byID[id]
	if !ok {
		return RunRecord{}, false
	}
	return *rec, true
}

// Recent returns copies of the newest n records (all of them when
// n <= 0), newest first, with the span trees and slow dumps elided —
// the /v1/runs summary view.
func (l *Ledger) Recent(n int) []RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.count {
		n = l.count
	}
	out := make([]RunRecord, 0, n)
	for i := 1; i <= n; i++ {
		rec := l.ring[(l.head-i+l.cap*2)%l.cap]
		sum := *rec
		sum.Spans = nil
		sum.SlowDump = nil
		sum.Search = nil
		out = append(out, sum)
	}
	return out
}

// Len returns the number of records currently held.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// auditLine writes one JSON object line to the audit stream (a no-op
// without one). The record is serialised under the ledger lock so a
// concurrent Update cannot tear it.
func (l *Ledger) auditLine(kind, id string) {
	if l.audit == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.byID[id]
	if !ok {
		return
	}
	line := struct {
		Kind string `json:"kind"`
		RunRecord
	}{Kind: kind, RunRecord: *rec}
	line.Spans = nil // audit lines are summaries; slow dumps carry their own tree
	line.Search = nil
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	l.audit.Write(append(b, '\n'))
}
