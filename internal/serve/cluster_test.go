package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/cluster"
	"ravbmc/internal/litmus"
)

// clusterNode is one in-process vbmcd node of a test cluster: its own
// cache, cluster view and HTTP listener on a real loopback port.
type clusterNode struct {
	id   string
	url  string
	s    *Server
	cl   *cluster.Cluster
	kill func() // closes the node's HTTP server (simulated death)
}

// newTestClusterNodes builds n nodes sharing one static peer list. The
// prober is started only when probe > 0, so most tests drive peer state
// deterministically with MarkDown/MarkDraining.
func newTestClusterNodes(t *testing.T, n int, probe time.Duration) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		c, err := cache.New(cache.Config{Version: "v-test"})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self: peers[i].ID, Peers: peers,
			Probe: cluster.ProbeConfig{Interval: probe},
		})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Cache: c, Workers: 2, Cluster: cl})
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(lns[i])
		if probe > 0 {
			cl.Start()
		}
		var killed atomic.Bool
		kill := func() {
			if killed.CompareAndSwap(false, true) {
				srv.Close()
			}
		}
		nodes[i] = &clusterNode{id: peers[i].ID, url: peers[i].URL, s: s, cl: cl, kill: kill}
		t.Cleanup(func() {
			cl.Stop()
			kill()
			s.Close()
			c.Close()
		})
	}
	return nodes
}

// requestOwnedBy scans the litmus corpus for a request whose cache key
// the given node owns, as computed by from's ring (every ring agrees).
// unsafeOnly restricts the scan to oracle-UNSAFE programs, for tests
// that must observe a witness document.
func requestOwnedBy(t *testing.T, from *clusterNode, owner string, unsafeOnly bool) VerifyRequest {
	t.Helper()
	for _, tc := range litmus.Classic() {
		if unsafeOnly && !litmus.Oracle(tc) {
			continue
		}
		for k := 3; k <= 6; k++ {
			req := VerifyRequest{Program: progSrc(tc.Prog), Mode: cache.ModeVBMC, K: k}
			prog, err := req.program()
			if err != nil {
				t.Fatal(err)
			}
			got, _ := from.cl.Owner(from.s.cfg.Cache.Key(req.cacheRequest(prog)))
			if got == owner {
				return req
			}
		}
	}
	t.Fatalf("no litmus request owned by %s", owner)
	return VerifyRequest{}
}

// TestClusterForwardToOwner: a request whose key another node owns is
// forwarded there; the response and both ledgers carry the owner's ID.
func TestClusterForwardToOwner(t *testing.T) {
	nodes := newTestClusterNodes(t, 3, 0)
	n1 := nodes[0]
	req := requestOwnedBy(t, n1, "n2", false)

	resp, err := NewClient(n1.url).Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n2" {
		t.Errorf("response node = %q, want n2", resp.Node)
	}
	if st := n1.cl.Stats(); st.Forwards == 0 {
		t.Errorf("n1 forwards = 0, want > 0")
	}
	// n1's ledger: a record forwarded to n2, disposition "forwarded".
	var fwd *RunRecord
	for _, rr := range n1.s.ledger.Recent(0) {
		if rr.Cache == "forwarded" {
			rr := rr
			fwd = &rr
		}
	}
	if fwd == nil {
		t.Fatal("n1 ledger has no forwarded record")
	}
	if fwd.Node != "n2" {
		t.Errorf("forwarded record node = %q, want n2", fwd.Node)
	}
	// n2's ledger holds the run named in the response, served locally.
	rr, ok := nodes[1].s.ledger.Get(resp.RunID)
	if !ok {
		t.Fatalf("n2 ledger does not know run %s", resp.RunID)
	}
	if rr.Node != "n2" || rr.Status != "done" {
		t.Errorf("n2 record = node %q status %q, want n2/done", rr.Node, rr.Status)
	}
}

// TestClusterRoutingParity: verdicts through a 3-node cluster equal the
// oracle, whichever node owns each key. A corpus slice keeps the run
// short — full-corpus byte-parity against a solo daemon is
// scripts/cluster_smoke.sh's job.
func TestClusterRoutingParity(t *testing.T) {
	nodes := newTestClusterNodes(t, 3, 0)
	client := NewClient(nodes[0].url)
	tests := litmus.Classic()
	if len(tests) > 10 {
		tests = tests[:10]
	}
	for _, tc := range tests {
		want := cache.VerdictSafe
		if litmus.Oracle(tc) {
			want = cache.VerdictUnsafe
		}
		resp, err := client.Verify(context.Background(), VerifyRequest{
			Program: progSrc(tc.Prog), Mode: cache.ModeVBMC, K: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if resp.Verdict != want {
			t.Errorf("%s: verdict %s, want %s", tc.Name, resp.Verdict, want)
		}
	}
	var forwards int64
	for _, n := range nodes {
		forwards += n.cl.Stats().Forwards
	}
	if forwards == 0 {
		t.Error("no request was forwarded across the whole corpus")
	}
}

// TestPeerCacheFill: with the owner draining (so requests are not
// forwarded), a local miss is answered from the owner's cache, and the
// peer-filled result is memoized locally.
func TestPeerCacheFill(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, 0)
	n1, n2 := nodes[0], nodes[1]
	req := requestOwnedBy(t, n1, "n2", true)

	// Warm the owner, then stop n1 from forwarding to it.
	warm, err := NewClient(n2.url).Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	n1.cl.MarkDraining("n2")

	resp, err := NewClient(n1.url).Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n1" {
		t.Errorf("response node = %q, want n1 (local fallback)", resp.Node)
	}
	// The filled outcome is the owner's, witness document included —
	// an UNSAFE fill without its witness bytes would be a silent loss.
	if resp.Verdict != warm.Verdict || resp.Witness != warm.Witness {
		t.Errorf("peer-filled outcome differs from the owner's: verdict %s/%s, witness %d/%d bytes",
			resp.Verdict, warm.Verdict, len(resp.Witness), len(warm.Witness))
	}
	rr, ok := n1.s.ledger.Get(resp.RunID)
	if !ok {
		t.Fatalf("n1 ledger does not know run %s", resp.RunID)
	}
	if rr.Cache != "peer" {
		t.Errorf("cache disposition = %q, want peer", rr.Cache)
	}
	if st := n1.cl.Stats(); st.PeerFillHits != 1 {
		t.Errorf("n1 peer fill hits = %d, want 1", st.PeerFillHits)
	}
	if st := n2.cl.Stats(); st.PeerFillServed != 1 {
		t.Errorf("n2 peer fills served = %d, want 1", st.PeerFillServed)
	}

	// The filled outcome was stored locally: a repeat is a plain hit.
	resp2, err := NewClient(n1.url).Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Error("second request after a peer fill not served from the local cache")
	}
	if resp.Verdict != resp2.Verdict {
		t.Errorf("verdict changed across fill/hit: %s vs %s", resp.Verdict, resp2.Verdict)
	}
}

// TestPeerCacheFillMiss: a cold owner cache reports a miss and the
// request is computed locally — the fill path never fabricates answers.
func TestPeerCacheFillMiss(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, 0)
	n1 := nodes[0]
	req := requestOwnedBy(t, n1, "n2", false)
	n1.cl.MarkDraining("n2")

	resp, err := NewClient(n1.url).Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := n1.s.ledger.Get(resp.RunID)
	if rr.Cache == "peer" {
		t.Error("cold owner cache reported as a peer fill")
	}
	if st := n1.cl.Stats(); st.PeerFillMisses != 1 {
		t.Errorf("n1 peer fill misses = %d, want 1", st.PeerFillMisses)
	}
}

// TestBatchPartialFailure: one item with an already-expired deadline
// fails; the remaining items complete, the aggregate marks the batch
// failed, and every item owns a ledger entry stamped with the batch ID.
func TestBatchPartialFailure(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	tests := litmus.Classic()
	items := []VerifyRequest{
		{Program: progSrc(tests[0].Prog), Mode: cache.ModeVBMC, K: 4},
		{Program: progSrc(tests[1].Prog), Mode: cache.ModeVBMC, K: 4},
		// An effectively-zero compute deadline: expired before admission.
		{Program: progSrc(tests[2].Prog), Mode: cache.ModeVBMC, K: 4, TimeoutSeconds: 1e-9},
		{Program: progSrc(tests[3].Prog), Mode: cache.ModeVBMC, K: 4},
	}
	resp := postBatch(t, s, BatchRequest{Items: items})

	if resp.OK {
		t.Error("aggregate OK despite a failed item")
	}
	if resp.Total != len(items) {
		t.Fatalf("total = %d, want %d", resp.Total, len(items))
	}
	if resp.Failed != 1 || resp.Succeeded != len(items)-1 {
		t.Errorf("failed/succeeded = %d/%d, want 1/%d", resp.Failed, resp.Succeeded, len(items)-1)
	}
	for _, it := range resp.Items {
		if it.Index == 2 {
			if it.Status == http.StatusOK {
				t.Error("expired item reported OK")
			}
			continue
		}
		if it.Status != http.StatusOK {
			t.Errorf("item %d status = %d, want 200 (%s)", it.Index, it.Status, it.Error)
		}
	}
	// Every item minted its own ledger entry carrying the batch ID.
	var inBatch int
	for _, rr := range s.ledger.Recent(0) {
		if rr.Batch == resp.BatchID {
			inBatch++
		}
	}
	if inBatch != len(items) {
		t.Errorf("%d ledger records carry batch %s, want %d", inBatch, resp.BatchID, len(items))
	}
}

// TestBatchPeerDeathMidSweep: a peer that dies without warning is
// marked down on the first failed forward and its items complete
// locally — the sweep still succeeds.
func TestBatchPeerDeathMidSweep(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, 0)
	n1, n2 := nodes[0], nodes[1]
	owned := requestOwnedBy(t, n1, "n2", false)
	n2.kill()

	tests := litmus.Classic()
	items := []VerifyRequest{
		owned,
		{Program: progSrc(tests[0].Prog), Mode: cache.ModeVBMC, K: 4},
		{Program: progSrc(tests[1].Prog), Mode: cache.ModeVBMC, K: 4},
	}
	resp := postBatch(t, n1.s, BatchRequest{Items: items})
	if !resp.OK {
		t.Errorf("batch not OK after peer death: %d failed", resp.Failed)
		for _, it := range resp.Items {
			if it.Status != http.StatusOK {
				t.Logf("item %d: status %d: %s", it.Index, it.Status, it.Error)
			}
		}
	}
	if st := n1.cl.Stats(); st.ForwardFallbacks == 0 && st.Forwards == 0 {
		t.Error("no forward was attempted or fallen back from")
	}
	if n1.cl.State("n2") != cluster.StateDown {
		t.Errorf("n2 state = %v, want Down after a failed forward", n1.cl.State("n2"))
	}
}

// postBatch POSTs /v1/batch through the real handler stack.
func postBatch(t *testing.T, s *Server, breq BatchRequest) BatchResponse {
	t.Helper()
	payload, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(string(payload)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch HTTP %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchStreaming: stream=true yields one "item" frame per item and
// a terminal "batch" frame whose aggregate matches the item frames.
func TestBatchStreaming(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tests := litmus.Classic()
	breq := BatchRequest{Stream: true, Items: []VerifyRequest{
		{Program: progSrc(tests[0].Prog), Mode: cache.ModeVBMC, K: 4},
		{Program: progSrc(tests[1].Prog), Mode: cache.ModeVBMC, K: 4},
	}}
	payload, _ := json.Marshal(breq)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	var items int
	var agg *BatchResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "item":
				items++
			case "batch":
				agg = new(BatchResponse)
				if err := json.Unmarshal([]byte(line[len("data: "):]), agg); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if items != len(breq.Items) {
		t.Errorf("item frames = %d, want %d", items, len(breq.Items))
	}
	if agg == nil {
		t.Fatal("no terminal batch frame")
	}
	if !agg.OK || agg.Total != len(breq.Items) || len(agg.Items) != len(breq.Items) {
		t.Errorf("aggregate = ok %v total %d items %d", agg.OK, agg.Total, len(agg.Items))
	}
}

// TestReadyzDrainSplit: /readyz flips to 503 when the drain begins;
// /healthz stays 200 throughout (liveness vs readiness).
func TestReadyzDrainSplit(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 1})
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(client.base + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz before drain: %d, want 200", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 carries no Retry-After")
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: %d, want 200", resp.StatusCode)
	}
}

// cannedVerify answers any POST with a minimal valid VerifyResponse.
func cannedVerify(w http.ResponseWriter, _ *http.Request) {
	json.NewEncoder(w).Encode(VerifyResponse{
		Outcome: cache.Outcome{Verdict: cache.VerdictSafe},
		RunID:   "r-canned-000001", Version: "v-test",
	})
}

// TestClientFailoverDeadEndpoint: with a list, an unreachable first
// endpoint fails over to the second.
func TestClientFailoverDeadEndpoint(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(cannedVerify))
	defer live.Close()
	c := NewClient("http://127.0.0.1:1," + live.URL)
	resp, err := c.Verify(context.Background(), VerifyRequest{Mode: cache.ModeVBMC})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != cache.VerdictSafe {
		t.Errorf("verdict = %q, want SAFE", resp.Verdict)
	}
}

// TestClientRetries503SingleEndpoint: a lone draining endpoint is
// retried after its Retry-After instead of failing outright.
func TestClientRetries503SingleEndpoint(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "server is draining"})
			return
		}
		cannedVerify(w, r)
	}))
	defer ts.Close()
	resp, err := NewClient(ts.URL).Verify(context.Background(), VerifyRequest{Mode: cache.ModeVBMC})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != cache.VerdictSafe {
		t.Errorf("verdict = %q, want SAFE", resp.Verdict)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("endpoint saw %d calls, want 2 (503 then success)", n)
	}
}

// TestClientFailsOver503WithPeers: with several endpoints, a draining
// one is abandoned immediately for the next.
func TestClientFailsOver503WithPeers(t *testing.T) {
	var drainingCalls atomic.Int64
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainingCalls.Add(1)
		w.Header().Set("Retry-After", "30") // would stall a non-failover client
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()
	live := httptest.NewServer(http.HandlerFunc(cannedVerify))
	defer live.Close()

	start := time.Now()
	resp, err := NewClient(draining.URL+","+live.URL).Verify(context.Background(), VerifyRequest{Mode: cache.ModeVBMC})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != cache.VerdictSafe {
		t.Errorf("verdict = %q, want SAFE", resp.Verdict)
	}
	if drainingCalls.Load() == 0 {
		t.Error("draining endpoint never tried")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failover took %s; Retry-After was not bypassed", elapsed)
	}
}

// TestForwardedRequestNotReforwarded: a request carrying the forwarded
// header is served where it lands, even by a non-owner — the one-hop
// guarantee that makes routing loop-free.
func TestForwardedRequestNotReforwarded(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, 0)
	n1 := nodes[0]
	req := requestOwnedBy(t, n1, "n2", false)
	payload, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, n1.url+"/v1/verify", strings.NewReader(string(payload)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Ravbmc-Forwarded-From", "n2")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.Node != "n1" {
		t.Errorf("forwarded request served by %q, want n1 (no re-forward)", vr.Node)
	}
	if st := n1.cl.Stats(); st.Forwards != 0 {
		t.Errorf("n1 re-forwarded a forwarded request (%d forwards)", st.Forwards)
	}
}

// TestProberRecoversKilledPeer: end-to-end state machine — a killed
// peer goes Down within a few probe rounds; restarting it on the same
// address brings it back Up.
func TestProberRecoversKilledPeer(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, 50*time.Millisecond)
	n1, n2 := nodes[0], nodes[1]
	waitState := func(want cluster.PeerState) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if n1.cl.State("n2") == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("n2 never reached %v (now %v)", want, n1.cl.State("n2"))
	}
	waitState(cluster.StateUp)
	n2.kill()
	waitState(cluster.StateDown)

	// Rebind the same address with a fresh healthy handler: the next
	// good probe promotes the peer without any manual reset.
	addr := strings.TrimPrefix(n2.url, "http://")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := &http.Server{Handler: n2.s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	waitState(cluster.StateUp)
}
