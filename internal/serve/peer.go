package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/cluster"
	"ravbmc/internal/lang"
)

// forwardedHeader marks a request already routed once by a peer.
// Static identical membership means every node computes the same owner,
// so a forwarded request is by construction at its owner (or at a node
// that must serve it locally) — receivers never re-forward, and the
// cluster can never route in circles.
const forwardedHeader = "X-Ravbmc-Forwarded-From"

// forwardAttempts bounds how many times a forward re-tries the owner's
// 429 backpressure before giving up and running locally.
const forwardAttempts = 3

// peerFillTimeout bounds the owner-cache detour before a cold compute:
// a fill probe is worth about a second of patience, not the request's
// whole deadline — past that, computing locally is the better spend.
const peerFillTimeout = 2 * time.Second

// nodeID returns this node's cluster ID ("" when running solo).
func (s *Server) nodeID() string {
	if s.cfg.Cluster == nil {
		return ""
	}
	return s.cfg.Cluster.Self()
}

// forwardTarget decides routing: the owner's ID when this request
// should be forwarded, ok=false when it runs locally — because there is
// no cluster, this node owns the key, the request was already forwarded
// once, or the owner is not Up (draining and down owners shed their
// load onto whoever holds the request).
func (s *Server) forwardTarget(req VerifyRequest, prog *lang.Program, forwarded bool) (string, bool) {
	cl := s.cfg.Cluster
	if cl == nil || forwarded {
		return "", false
	}
	owner, self := cl.Owner(s.cfg.Cache.Key(req.cacheRequest(prog)))
	if self {
		return "", false
	}
	if cl.State(owner) != cluster.StateUp {
		cl.CountForwardFallback()
		return "", false
	}
	return owner, true
}

// retryAfterDuration resolves a Retry-After header (delta-seconds form)
// against a fallback backoff.
func retryAfterDuration(header string, fallback time.Duration) time.Duration {
	if secs, err := strconv.Atoi(header); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return fallback
}

// errPeerUnavailable reports that the owner answered but cannot take
// the work right now (draining, or busy past our retry patience) — the
// caller should run locally.
type peerUnavailableError struct{ status int }

func (e *peerUnavailableError) Error() string {
	return "peer unavailable (HTTP " + strconv.Itoa(e.status) + ")"
}

// forward posts the request to the owner node, honouring its
// backpressure: 429 is retried with backoff (Retry-After respected, a
// few attempts), 503 marks the owner draining and returns an error so
// the caller falls back to local execution, connection failures mark it
// down ditto. Any other status is the owner's authoritative answer.
func (s *Server) forward(ctx context.Context, owner, path string, req VerifyRequest) (status int, body []byte, err error) {
	cl := s.cfg.Cluster
	// The alias binds on the node the client spoke to; the owner minting
	// its own would steal the ref to a record the client can't predict.
	req.ClientRef = ""
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	url := cl.PeerURL(owner) + path
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return 0, nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(forwardedHeader, cl.Self())
		resp, err := s.peerHTTP.Do(hreq)
		if err != nil {
			cl.MarkDown(owner)
			return 0, nil, err
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if rerr != nil {
			cl.MarkDown(owner)
			return 0, nil, rerr
		}
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			cl.MarkDraining(owner)
			return 0, nil, &peerUnavailableError{status: resp.StatusCode}
		case resp.StatusCode == http.StatusTooManyRequests && attempt+1 < forwardAttempts:
			cl.CountForwardRetry()
			wait := retryAfterDuration(resp.Header.Get("Retry-After"),
				time.Duration(attempt+1)*200*time.Millisecond)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			// Busy past our patience: this node's own queue is as good.
			return 0, nil, &peerUnavailableError{status: resp.StatusCode}
		default:
			return resp.StatusCode, body, nil
		}
	}
}

// forwardRun forwards the request to its owner and seals this node's
// ledger record from the owner's reply. ok=false means the owner could
// not take it — fall back to runLocal. body is the owner's raw reply,
// for handlers that relay it byte-for-byte.
func (s *Server) forwardRun(ctx context.Context, rc *runCtx, owner, path string, req VerifyRequest) (res runResult, body []byte, ok bool) {
	cl := s.cfg.Cluster
	cl.CountForward()
	span := rc.rec.StartPhase("forward")
	span.SetAttr("owner", owner)
	status, body, err := s.forward(ctx, owner, path, req)
	span.End()
	if err != nil {
		cl.CountForwardFallback()
		s.log.Warn("forward failed; running locally",
			"run_id", rc.id, "owner", owner, "err", err)
		return runResult{}, nil, false
	}
	s.ledger.Update(rc.id, func(rr *RunRecord) { rr.Node = owner })
	res = runResult{status: status}
	if status == http.StatusOK {
		var vr VerifyResponse
		if jerr := json.Unmarshal(body, &vr); jerr == nil {
			vr.WitnessJSONL = []byte(vr.Witness)
			res.resp = vr
		}
	} else {
		var er ErrorResponse
		json.Unmarshal(body, &er)
		res.errMsg = er.Error
	}
	rc.finish(status, res.resp.Verdict, "forwarded", res.resp.States, res.errMsg)
	return res, body, true
}

// verifyFill is the cluster-aware Cache.Verify: on a local miss whose
// key another node owns, that owner's cache is consulted before the
// engines run — warm results replicate across the cluster instead of
// recomputing. The probe happens inside the cache's singleflight, so
// concurrent identical misses cost one fill round-trip, and a cacheable
// peer outcome is memoized locally like any computed one. filled
// reports that the answer came from the owner's cache.
func (s *Server) verifyFill(ctx context.Context, cr cache.Request, xc cache.ExecConfig) (out cache.Outcome, filled bool, err error) {
	cl := s.cfg.Cluster
	if cl == nil {
		out, err = s.cfg.Cache.Verify(ctx, cr, xc)
		return out, false, err
	}
	out, err = s.cfg.Cache.Do(ctx, cr, func(ctx context.Context, r cache.Request) (cache.Outcome, error) {
		d := s.cfg.Cache.Key(r)
		// Draining owners still answer cache reads — their memory stays
		// warm until the process exits — so only Down is skipped.
		if owner, self := cl.Owner(d); !self && cl.State(owner) != cluster.StateDown {
			if got, ok := s.peerCacheGet(ctx, owner, d); ok {
				filled = true
				return got, nil
			}
		}
		return cache.Execute(ctx, r, xc)
	})
	return out, filled, err
}

// peerOutcome is the /v1/cache/{key} wire form: a cache.Outcome plus
// its witness document, which Outcome itself deliberately never
// marshals (clients get witnesses via VerifyResponse.Witness). Without
// the explicit field a peer-filled UNSAFE would arrive witnessless.
type peerOutcome struct {
	cache.Outcome
	WitnessJSONL []byte `json:"witness_jsonl,omitempty"`
}

// peerCacheGet asks the owner's cache for the digest over the internal
// GET /v1/cache/{key} endpoint. Misses of every kind — 404, transport
// failure, undecodable body — report ok=false and the caller computes.
func (s *Server) peerCacheGet(ctx context.Context, owner string, d cache.Digest) (cache.Outcome, bool) {
	cl := s.cfg.Cluster
	ctx, cancel := context.WithTimeout(ctx, peerFillTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		cl.PeerURL(owner)+"/v1/cache/"+d.Hex(), nil)
	if err != nil {
		return cache.Outcome{}, false
	}
	resp, err := s.peerHTTP.Do(hreq)
	if err != nil {
		cl.CountFillMiss()
		cl.MarkDown(owner)
		return cache.Outcome{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cl.CountFillMiss()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return cache.Outcome{}, false
	}
	var po peerOutcome
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&po); err != nil {
		cl.CountFillMiss()
		return cache.Outcome{}, false
	}
	out := po.Outcome
	out.WitnessJSONL = po.WitnessJSONL
	cl.CountFillHit()
	return out, true
}

// handleCacheGet serves GET /v1/cache/{key}: the peer cache-fill read.
// Deliberately exempt from the drain check — a draining node's cache is
// exactly what its peers need while they absorb its load.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	d, err := cache.ParseDigest(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed cache key: %v", err)
		return
	}
	out, ok := s.cfg.Cache.GetByDigest(d)
	if !ok {
		writeError(w, http.StatusNotFound, "no entry for key")
		return
	}
	if cl := s.cfg.Cluster; cl != nil {
		cl.CountFillServed()
	}
	writeJSON(w, http.StatusOK, peerOutcome{Outcome: out, WitnessJSONL: out.WitnessJSONL})
}

// handleReadyz serves GET /readyz: readiness, distinct from /healthz
// liveness. A draining node is alive (healthz 200) but not ready
// (readyz 503) — load balancers and the cluster prober key off this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "draining": true,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "draining": false})
}
