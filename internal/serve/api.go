// Package serve is the verification service: an HTTP/JSON front end
// over the content-addressed result cache (internal/cache) and the
// engine dispatcher, with bounded admission, per-request deadlines and
// graceful drain. cmd/vbmcd wraps it in a process; cmd/vbmc -remote
// speaks to it with the Client in this package.
package serve

import (
	"fmt"
	"strings"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/cache"
	"ravbmc/internal/lang"
	"ravbmc/internal/parser"
)

// VerifyRequest is the body of POST /v1/verify and /v1/mink. Exactly
// one of Program (concrete syntax) and Bench (internal/benchmarks
// name, e.g. "peterson" or "lamport_1(3)") selects the program.
type VerifyRequest struct {
	Program string `json:"program,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Mode is one of the cache.Modes() verification modes.
	Mode string `json:"mode"`
	// K is the view-switch bound (vbmc, rak, portfolio; /v1/mink uses
	// it as the starting bound, default 0).
	K int `json:"k,omitempty"`
	// MaxK is /v1/mink's largest bound to try (default 8).
	MaxK int `json:"max_k,omitempty"`
	// Unroll is the loop bound; required for programs with loops.
	Unroll int `json:"unroll,omitempty"`
	// MaxContexts, MaxStates and ExactDedup mirror cache.Request.
	MaxContexts int  `json:"max_contexts,omitempty"`
	MaxStates   int  `json:"max_states,omitempty"`
	ExactDedup  bool `json:"exact_dedup,omitempty"`
	// TimeoutSeconds is this request's compute deadline; 0 selects the
	// server default, and the server cap applies either way.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// ClientRef is an optional caller-chosen alias for this run (max 64
	// chars of [A-Za-z0-9._-]). The server binds it to the minted run ID
	// in the ledger, so the caller can GET /v1/runs/{client_ref}/events
	// and watch the run live before the verify response returns the ID.
	ClientRef string `json:"client_ref,omitempty"`
}

// VerifyResponse is the body of a successful verification reply.
type VerifyResponse struct {
	cache.Outcome
	// Witness is the ravbmc.witness/v1 JSONL document for UNSAFE
	// verdicts (empty otherwise).
	Witness string `json:"witness_jsonl,omitempty"`
	// MinK is set by /v1/mink: the smallest bound with an UNSAFE
	// verdict, or -1 when every bound up to MaxK was SAFE.
	MinK *int `json:"min_k,omitempty"`
	// RunID names this request's entry in the run ledger; the same ID
	// appears in the server's request log and exported span trees, so
	// `GET /v1/runs/{run_id}` retrieves the full timing breakdown.
	RunID string `json:"run_id"`
	// Node is the cluster node that served the request — the owner
	// shard after forwarding, the node the client spoke to otherwise,
	// "" on a solo daemon. GET /v1/runs/{run_id} must be addressed to
	// this node; the ledger is per-process.
	Node string `json:"node,omitempty"`
	// Version is the server's toolchain version (the one in the cache
	// key); ElapsedSeconds is this request's wall time in the handler.
	Version        string  `json:"version"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// program resolves the request's program, parsing source or resolving
// the benchmark name.
func (r *VerifyRequest) program() (*lang.Program, error) {
	switch {
	case r.Program != "" && r.Bench != "":
		return nil, fmt.Errorf("request has both program and bench; send one")
	case r.Program != "":
		p, err := parser.Parse(r.Program)
		if err != nil {
			return nil, fmt.Errorf("parse program: %w", err)
		}
		return p, nil
	case r.Bench != "":
		p, err := benchmarks.ByName(r.Bench)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	return nil, fmt.Errorf("request has neither program nor bench")
}

// validate checks the verdict-relevant fields common to both endpoints.
func (r *VerifyRequest) validate() error {
	if !cache.ValidMode(r.Mode) {
		return fmt.Errorf("unknown mode %q (valid: %s)", r.Mode, strings.Join(cache.Modes(), ", "))
	}
	if r.K < 0 || r.MaxK < 0 || r.Unroll < 0 || r.MaxContexts < 0 || r.MaxStates < 0 {
		return fmt.Errorf("bounds must be non-negative")
	}
	if r.TimeoutSeconds < 0 {
		return fmt.Errorf("timeout_seconds must be non-negative")
	}
	if err := validateClientRef(r.ClientRef); err != nil {
		return err
	}
	return nil
}

// validateClientRef bounds the caller-chosen run alias: it lands in
// URLs, logs and the ledger, so only a short, URL-safe charset passes.
func validateClientRef(ref string) error {
	if ref == "" {
		return nil
	}
	if len(ref) > 64 {
		return fmt.Errorf("client_ref exceeds 64 characters")
	}
	for _, c := range ref {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("client_ref may contain only letters, digits, '.', '_' and '-'")
		}
	}
	return nil
}

// cacheRequest converts to the cache's request form.
func (r *VerifyRequest) cacheRequest(prog *lang.Program) cache.Request {
	return cache.Request{
		Prog:        prog,
		Mode:        r.Mode,
		K:           r.K,
		Unroll:      r.Unroll,
		MaxContexts: r.MaxContexts,
		MaxStates:   r.MaxStates,
		ExactDedup:  r.ExactDedup,
	}
}
