package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/obs"
)

// metricFamily is one parsed exposition family for the lint test.
type metricFamily struct {
	name    string
	typ     string
	help    bool
	samples []string // sample metric names (label part stripped)
}

// parseExposition splits /metrics output into families and fails the
// test on any structural violation: samples before their family
// declaration, TYPE before HELP, duplicate families.
func parseExposition(t *testing.T, body string) map[string]*metricFamily {
	t.Helper()
	fams := map[string]*metricFamily{}
	var cur *metricFamily
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate family %q", ln+1, name)
			}
			cur = &metricFamily{name: name, help: true}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if cur == nil || cur.name != fields[0] {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP", ln+1, fields[0])
			}
			cur.typ = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			name, _, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			if cur == nil || !strings.HasPrefix(name, cur.name) {
				t.Fatalf("line %d: sample %s outside its family block", ln+1, name)
			}
			cur.samples = append(cur.samples, name)
		}
	}
	return fams
}

// TestMetricsConformance is the promlint-style gate on /metrics: every
// family has HELP and TYPE in order, counter names end in _total,
// histograms carry the full _bucket/_sum/_count complement with
// monotone cumulative buckets, and the required latency families are
// present.
func TestMetricsConformance(t *testing.T) {
	rec := obs.New()
	_, client := newTestServer(t, Config{Workers: 1, Obs: rec})
	if _, err := client.Verify(context.Background(), VerifyRequest{
		Program: "program ok\nvar x\nproc p0\n  x = 1\nend\n", Mode: cache.ModeVBMC, K: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(strings.TrimRight(client.base, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	fams := parseExposition(t, body)
	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for name, f := range fams {
		if !nameRE.MatchString(name) {
			t.Errorf("family %q: invalid metric name", name)
		}
		if !strings.HasPrefix(name, "ravbmc_") {
			t.Errorf("family %q: missing ravbmc_ namespace", name)
		}
		if f.typ == "" {
			t.Errorf("family %q: no TYPE line", name)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %q does not end in _total", name)
			}
			if len(f.samples) != 1 || f.samples[0] != name {
				t.Errorf("counter %q samples = %v", name, f.samples)
			}
		case "gauge":
			if len(f.samples) != 1 || f.samples[0] != name {
				t.Errorf("gauge %q samples = %v", name, f.samples)
			}
		case "histogram":
			var buckets, sums, counts int
			for _, sn := range f.samples {
				switch sn {
				case name + "_bucket":
					buckets++
				case name + "_sum":
					sums++
				case name + "_count":
					counts++
				default:
					t.Errorf("histogram %q: stray sample %q", name, sn)
				}
			}
			if buckets < 2 || sums != 1 || counts != 1 {
				t.Errorf("histogram %q: buckets=%d sums=%d counts=%d", name, buckets, sums, counts)
			}
		default:
			t.Errorf("family %q: unexpected type %q", name, f.typ)
		}
	}

	for _, want := range []string{
		"ravbmc_serve_request_seconds", "ravbmc_serve_queue_wait_seconds",
		"ravbmc_cache_lookup_seconds", "ravbmc_serve_slow_dumps_total",
		"ravbmc_serve_ledger_runs", "ravbmc_serve_ledger_entries",
		"ravbmc_serve_ledger_evictions_total",
		"ravbmc_search_active_runs", "ravbmc_search_states",
		"ravbmc_search_transitions", "ravbmc_search_frontier_depth",
		"ravbmc_search_dedup_probes", "ravbmc_search_dedup_hits",
		"ravbmc_search_visited_bytes", "ravbmc_search_states_per_sec",
	} {
		if fams[want] == nil {
			t.Errorf("metrics missing family %q", want)
		}
	}

	// Histogram buckets must be cumulative (monotone non-decreasing,
	// ending at _count) with a closing +Inf bucket.
	for _, fam := range []string{"ravbmc_serve_request_seconds", "ravbmc_cache_lookup_seconds"} {
		var prev int64 = -1
		var last string
		var count int64 = -1
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, fam+"_bucket{le=") {
				v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("%s: bad bucket line %q", fam, line)
				}
				if v < prev {
					t.Errorf("%s: non-monotone buckets (%d after %d)", fam, v, prev)
				}
				prev, last = v, line
			}
			if strings.HasPrefix(line, fam+"_count ") {
				count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			}
		}
		if !strings.Contains(last, `le="+Inf"`) {
			t.Errorf("%s: last bucket is %q, want +Inf", fam, last)
		}
		if prev != count {
			t.Errorf("%s: +Inf bucket %d != count %d", fam, prev, count)
		}
	}
	// A real request ran, so its latency must have been observed.
	if !strings.Contains(body, "ravbmc_serve_request_seconds_count 1") {
		t.Errorf("request latency not observed:\n%s", body)
	}

	// The family order must be stable scrape to scrape.
	resp2, err := http.Get(strings.TrimRight(client.base, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	order := func(b string) []string {
		var names []string
		for _, line := range strings.Split(b, "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				names = append(names, strings.Fields(line)[2-1])
			}
		}
		return names
	}
	o1, o2 := order(body), order(string(raw2))
	if len(o1) != len(o2) {
		t.Fatalf("family count changed between scrapes: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Errorf("family order unstable at %d: %s vs %s", i, o1[i], o2[i])
		}
	}
}

// TestLedgerBoundsConcurrent hammers the ledger from many goroutines
// and requires the ring to stay within capacity with unique IDs and
// newest-first ordering.
func TestLedgerBoundsConcurrent(t *testing.T) {
	const capacity, workers, per = 8, 8, 50
	l := NewLedger(capacity, nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := l.NewID()
				l.Add(&RunRecord{ID: id, Start: time.Now(), Endpoint: "verify", Status: "running"})
				l.Update(id, func(r *RunRecord) { r.Status = "done" })
				l.Get(id)
				l.Recent(4)
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != capacity {
		t.Errorf("len = %d, want %d", got, capacity)
	}
	recent := l.Recent(0)
	if len(recent) != capacity {
		t.Fatalf("recent = %d records, want %d", len(recent), capacity)
	}
	seen := map[string]bool{}
	for i, r := range recent {
		if seen[r.ID] {
			t.Errorf("duplicate ID %s in recent", r.ID)
		}
		seen[r.ID] = true
		if i > 0 {
			var a, b int
			fmt.Sscanf(recent[i-1].ID[len(recent[i-1].ID)-6:], "%d", &a)
			fmt.Sscanf(r.ID[len(r.ID)-6:], "%d", &b)
			if a < b {
				t.Errorf("recent not newest-first: %s before %s", recent[i-1].ID, r.ID)
			}
		}
		if r.Spans != nil || r.SlowDump != nil {
			t.Errorf("summary view leaked spans/dump for %s", r.ID)
		}
	}
	// Updating an evicted ID reports absence instead of resurrecting it.
	if l.Update("r-gone-000001", func(r *RunRecord) {}) {
		t.Error("update of unknown ID reported success")
	}
}

// TestSlowDumpExactlyOnce races many SetSlowDump calls for one run;
// exactly one must win.
func TestSlowDumpExactlyOnce(t *testing.T) {
	l := NewLedger(4, nil)
	id := l.NewID()
	l.Add(&RunRecord{ID: id, Status: "running"})
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if l.SetSlowDump(id, &SlowDump{AfterSeconds: float64(i)}) {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Errorf("SetSlowDump wins = %d, want exactly 1", wins)
	}
	if rec, _ := l.Get(id); rec.SlowDump == nil {
		t.Error("winning dump not installed")
	}
	if l.SetSlowDump("r-unknown-000009", &SlowDump{}) {
		t.Error("dump for unknown ID reported success")
	}
}

// TestRunsEndpointEviction runs more requests than the ledger holds:
// the summary stays bounded and an evicted run ID 404s while a live
// one still resolves.
func TestRunsEndpointEviction(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1, LedgerSize: 2})
	base := strings.TrimRight(client.base, "/")
	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := client.Verify(context.Background(), VerifyRequest{
			Program: fmt.Sprintf("program ok\nvar x\nproc p0\n  x = %d\nend\n", i+1),
			Mode:    cache.ModeRA,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.RunID == "" {
			t.Fatal("response carries no run_id")
		}
		ids = append(ids, resp.RunID)
	}

	get := func(path string) (int, []byte) {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r.StatusCode, b
	}

	code, body := get("/v1/runs")
	if code != 200 {
		t.Fatalf("runs: HTTP %d", code)
	}
	var list RunsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 2 {
		t.Fatalf("runs = %d records, want 2 (ledger size)", len(list.Runs))
	}
	if list.Runs[0].ID != ids[2] || list.Runs[1].ID != ids[1] {
		t.Errorf("runs order = %s, %s; want %s, %s", list.Runs[0].ID, list.Runs[1].ID, ids[2], ids[1])
	}
	for _, r := range list.Runs {
		if r.Status != "done" || r.Verdict == "" || len(r.Spans) != 0 {
			t.Errorf("summary record = %+v", r)
		}
	}

	if code, _ := get("/v1/runs/" + ids[0]); code != http.StatusNotFound {
		t.Errorf("evicted run: HTTP %d, want 404", code)
	}
	code, body = get("/v1/runs/" + ids[2])
	if code != 200 {
		t.Fatalf("live run: HTTP %d", code)
	}
	var rec RunRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != ids[2] || len(rec.Spans) == 0 {
		t.Errorf("detail record lacks spans: %+v", rec)
	}
	if code, _ := get("/v1/runs?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n: HTTP %d, want 400", code)
	}
}

// TestRunCorrelation is the acceptance check for the observability
// chain: one request yields one run ID that appears in the response,
// the slog output, the audit log and the ledger's span tree — and the
// ledger's phase timings sum to the request's own latency.
func TestRunCorrelation(t *testing.T) {
	var logBuf, auditBuf syncBuffer
	s, client := newTestServer(t, Config{
		Workers: 1,
		Log:     slog.New(slog.NewTextHandler(&logBuf, nil)),
		RunLog:  &auditBuf,
	})
	resp, err := client.Verify(context.Background(), VerifyRequest{
		Bench: "peterson", Mode: cache.ModeVBMC, K: 2, Unroll: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.RunID
	if id == "" {
		t.Fatal("no run_id in response")
	}

	rec, ok := s.Ledger().Get(id)
	if !ok {
		t.Fatalf("run %s not in ledger", id)
	}
	if rec.Status != "done" || rec.Verdict != resp.Verdict || rec.Mode != cache.ModeVBMC {
		t.Errorf("ledger record = %+v", rec)
	}
	if rec.Program == "" || rec.ProgramSHA == "" {
		t.Errorf("record lacks program identity: %+v", rec)
	}
	if rec.Cache != "miss" {
		t.Errorf("first run disposition = %q, want miss", rec.Cache)
	}

	// The span tree must exist, be rooted at "request", and contain the
	// engine span nested under the cache span.
	if len(rec.Spans) != 1 || rec.Spans[0].Name != "request" {
		t.Fatalf("span roots = %+v", rec.Spans)
	}
	if rec.Spans[0].Attrs["run_id"] != id {
		t.Errorf("root span run_id attr = %q, want %q", rec.Spans[0].Attrs["run_id"], id)
	}
	if obs.SpanSeconds(rec.Spans, "engine") <= 0 {
		t.Error("no engine span recorded")
	}

	// Phase sum vs total: queue wait + cache lookup + engine + replay
	// must account for the request latency to within 5% plus a small
	// absolute slack for decode/encode on sub-millisecond runs.
	sum := rec.QueueWaitSeconds + rec.CacheLookupSeconds + rec.EngineSeconds + rec.ReplaySeconds
	slack := rec.TotalSeconds*0.05 + 0.010
	if diff := rec.TotalSeconds - sum; diff < 0 || diff > slack {
		t.Errorf("phase sum %.6fs vs total %.6fs (slack %.6fs)", sum, rec.TotalSeconds, slack)
	}

	if !strings.Contains(logBuf.String(), "run_id="+id) {
		t.Errorf("slog output lacks run_id:\n%s", logBuf.String())
	}
	if !strings.Contains(auditBuf.String(), `"id":"`+id+`"`) {
		t.Errorf("audit log lacks run id:\n%s", auditBuf.String())
	}

	// A second identical request must record a cache hit disposition.
	resp2, err := client.Verify(context.Background(), VerifyRequest{
		Bench: "peterson", Mode: cache.ModeVBMC, K: 2, Unroll: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec2, ok := s.Ledger().Get(resp2.RunID)
	if !ok {
		t.Fatal("second run not in ledger")
	}
	if rec2.Cache != "hit" {
		t.Errorf("second run disposition = %q, want hit", rec2.Cache)
	}
}

// TestFlightRecorderEndToEnd arms a tiny slow-run threshold, starts a
// long verification and requires the dump to land in the ledger while
// the run is still in flight — then cancels the run.
func TestFlightRecorderEndToEnd(t *testing.T) {
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var logBuf syncBuffer
	s := New(Config{
		Cache: c, Workers: 1,
		Log:              slog.New(slog.NewTextHandler(&logBuf, nil)),
		SlowRunThreshold: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { s.Close(); ts.Close() })

	done := make(chan struct{})
	go func() {
		defer close(done)
		b, _ := json.Marshal(VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5, Unroll: 6, TimeoutSeconds: 120})
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(b)))
		if err == nil {
			resp.Body.Close()
		}
	}()

	// The run lasts tens of seconds; the dump must appear shortly after
	// the 50ms threshold.
	deadline := time.Now().Add(10 * time.Second)
	var dumped *RunRecord
	for time.Now().Before(deadline) && dumped == nil {
		for _, r := range s.Ledger().Recent(0) {
			if rec, ok := s.Ledger().Get(r.ID); ok && rec.SlowDump != nil {
				dumped = &rec
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if dumped == nil {
		t.Fatal("flight recorder never fired")
	}
	if dumped.Status != "running" {
		t.Errorf("dump taken after completion: status %q", dumped.Status)
	}
	d := dumped.SlowDump
	if d.AfterSeconds != 0.05 {
		t.Errorf("dump threshold = %v", d.AfterSeconds)
	}
	if len(d.Spans) == 0 || !d.Spans[0].Open {
		t.Errorf("dump spans = %+v, want open request span", d.Spans)
	}
	if !strings.Contains(logBuf.String(), "slow run") {
		t.Errorf("no slow-run log line:\n%s", logBuf.String())
	}

	s.Close() // cancel the slow run rather than waiting it out
	<-done
}

// syncBuffer is a mutex-guarded bytes.Buffer for handlers that log
// from request goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestEventsReplayAfterCompletion: a completed run's SSE stream
// replays the stored series and ends with a done frame whose final
// state count matches the verify response — the acceptance check for
// the ravbmc.search/v1 ledger series.
func TestEventsReplayAfterCompletion(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 1, SampleInterval: time.Millisecond})
	resp, err := client.Verify(context.Background(), VerifyRequest{
		Bench: "peterson", Mode: cache.ModeVBMC, K: 2, Unroll: 2, ClientRef: "replay-ref-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.States == 0 {
		t.Fatalf("verify reported no states: %+v", resp.Outcome)
	}

	stream := func(id string) (searches int, last obs.SearchPoint, done doneEvent, dones int) {
		t.Helper()
		err := client.StreamEvents(context.Background(), id, func(event string, data []byte) error {
			switch event {
			case "search":
				searches++
				if err := json.Unmarshal(data, &last); err != nil {
					t.Fatalf("bad search frame %q: %v", data, err)
				}
			case "done":
				dones++
				if err := json.Unmarshal(data, &done); err != nil {
					t.Fatalf("bad done frame %q: %v", data, err)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("stream %s: %v", id, err)
		}
		return
	}

	searches, last, done, dones := stream(resp.RunID)
	if searches < 1 {
		t.Fatal("replay delivered no search frames")
	}
	if dones != 1 || done.Status != "done" || done.RunID != resp.RunID {
		t.Errorf("terminal frame = %+v (%d done frames)", done, dones)
	}
	if done.States != resp.States {
		t.Errorf("done frame states = %d, response said %d", done.States, resp.States)
	}
	if last.States != int64(resp.States) {
		t.Errorf("final replayed sample states = %d, engine reported %d", last.States, resp.States)
	}

	// The client_ref alias resolves to the same stream.
	if n, _, d, _ := stream("replay-ref-1"); n < 1 || d.RunID != resp.RunID {
		t.Errorf("alias stream: %d search frames, done = %+v", n, d)
	}

	// The ledger entry itself carries the sealed series.
	rec, ok := s.Ledger().Get(resp.RunID)
	if !ok {
		t.Fatal("run missing from ledger")
	}
	if rec.Search == nil || rec.Search.Schema != obs.SearchSchema || len(rec.Search.Samples) == 0 {
		t.Fatalf("ledger series = %+v", rec.Search)
	}
	if got := rec.Search.Samples[len(rec.Search.Samples)-1].States; got != int64(resp.States) {
		t.Errorf("ledger final sample states = %d, want %d", got, resp.States)
	}
	// Summaries must not ship the bulky series.
	for _, sum := range s.Ledger().Recent(0) {
		if sum.Search != nil {
			t.Errorf("summary view leaked the search series for %s", sum.ID)
		}
	}
}

// TestEventsEvictedRunNotFound: once the ledger ring evicts a run, its
// event stream 404s instead of hanging or replaying stale data.
func TestEventsEvictedRunNotFound(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1, LedgerSize: 2, SampleInterval: time.Millisecond})
	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := client.Verify(context.Background(), VerifyRequest{
			Program: fmt.Sprintf("program ok\nvar x\nproc p0\n  x = %d\nend\n", i+1),
			Mode:    cache.ModeRA, ClientRef: fmt.Sprintf("evict-ref-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.RunID)
	}
	nop := func(string, []byte) error { return nil }
	if err := client.StreamEvents(context.Background(), ids[0], nop); err != ErrRunNotFound {
		t.Errorf("evicted run stream error = %v, want ErrRunNotFound", err)
	}
	// The evicted run's alias is cleaned up with it.
	if err := client.StreamEvents(context.Background(), "evict-ref-0", nop); err != ErrRunNotFound {
		t.Errorf("evicted alias stream error = %v, want ErrRunNotFound", err)
	}
	if err := client.StreamEvents(context.Background(), "r-never-existed", nop); err != ErrRunNotFound {
		t.Errorf("unknown run stream error = %v, want ErrRunNotFound", err)
	}
	// Live runs still stream.
	if err := client.StreamEvents(context.Background(), ids[2], nop); err != nil {
		t.Errorf("live run stream error = %v", err)
	}
	// A malformed client_ref is rejected at validation time.
	if _, err := client.Verify(context.Background(), VerifyRequest{
		Program: "program ok\nvar x\nproc p0\n  x = 1\nend\n",
		Mode:    cache.ModeRA, ClientRef: "bad ref!",
	}); err == nil {
		t.Error("malformed client_ref accepted")
	}
}

// TestEventsLiveStreamAndDisconnect: an in-flight run streams live
// samples, and a client that disconnects mid-stream frees its
// subscription without disturbing the engine.
func TestEventsLiveStreamAndDisconnect(t *testing.T) {
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := New(Config{Cache: c, Workers: 1, SampleInterval: 2 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { s.Close(); ts.Close() })
	client := NewClient(ts.URL)

	// A run that lasts tens of seconds, so it is mid-flight for the
	// whole test; Close cancels it at cleanup.
	posted := make(chan struct{})
	go func() {
		defer close(posted)
		b, _ := json.Marshal(VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5, Unroll: 6, TimeoutSeconds: 120})
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(b)))
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the run to register its sampler.
	var runID string
	var smp *obs.Sampler
	deadline := time.Now().Add(10 * time.Second)
	for smp == nil && time.Now().Before(deadline) {
		s.watchMu.Lock()
		for id, sm := range s.watches {
			runID, smp = id, sm
		}
		s.watchMu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	if smp == nil {
		t.Fatal("run never registered a sampler")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gotSample := make(chan struct{})
	streamDone := make(chan error, 1)
	go func() {
		var once sync.Once
		streamDone <- client.StreamEvents(ctx, runID, func(event string, data []byte) error {
			if event == "search" {
				once.Do(func() { close(gotSample) })
			}
			return nil
		})
	}()
	select {
	case <-gotSample:
	case <-time.After(10 * time.Second):
		t.Fatal("no live search frame arrived")
	}

	// Disconnect: the handler must notice and unsubscribe.
	cancel()
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on client disconnect")
	}
	deadline = time.Now().Add(5 * time.Second)
	for smp.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := smp.Subscribers(); got != 0 {
		t.Errorf("subscription leaked after disconnect: %d still attached", got)
	}

	// The engine kept running through all of it.
	if rec, ok := s.Ledger().Get(runID); !ok || rec.Status != "running" {
		t.Errorf("run state after disconnect = %+v", rec)
	}
	s.Close() // cancel the long run
	<-posted
}
