package serve

import (
	"net/http"
	"strconv"
)

// RunsResponse is the body of GET /v1/runs: recent runs, newest first,
// span trees elided (fetch /v1/runs/{id} for the detail view).
type RunsResponse struct {
	Runs []RunRecord `json:"runs"`
}

// handleRuns serves the ledger summary. `?n=` bounds how many records
// come back (default: all retained).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	runs := s.ledger.Recent(n)
	if runs == nil {
		runs = []RunRecord{}
	}
	writeJSON(w, http.StatusOK, RunsResponse{Runs: runs})
}

// handleRunDetail serves one ledger entry with its span tree and any
// flight-recorder dump. Evicted or unknown IDs 404: the ledger is a
// bounded ring, not an archive — the run log (vbmcd -run-log) is.
func (s *Server) handleRunDetail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ledger.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "run %s not found (evicted or never existed)", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
