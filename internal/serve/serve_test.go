package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/obs"
)

// progSrc renders a program as parseable source: display names like
// "MP-rev" are not identifiers, so the name is dropped.
func progSrc(p *lang.Program) string {
	q := p.Clone()
	q.Name = ""
	return q.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Cache == nil {
		c, err := cache.New(cache.Config{Version: "v-test"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		cfg.Cache = c
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, NewClient(ts.URL)
}

// TestServeParityLitmus is the end-to-end parity check: verdicts
// through the HTTP API must equal direct core.Run / oracle verdicts,
// and the second pass must be answered from the cache.
func TestServeParityLitmus(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 2})
	tests := litmus.Classic()
	for pass := 0; pass < 2; pass++ {
		for _, tc := range tests {
			want := cache.VerdictSafe
			if litmus.Oracle(tc) {
				want = cache.VerdictUnsafe
			}
			resp, err := client.Verify(context.Background(), VerifyRequest{
				Program: progSrc(tc.Prog), Mode: cache.ModeVBMC, K: 5,
			})
			if err != nil {
				t.Fatalf("%s pass %d: %v", tc.Name, pass, err)
			}
			if resp.Verdict != want {
				t.Errorf("%s pass %d: verdict %s, want %s", tc.Name, pass, resp.Verdict, want)
			}
			if pass == 1 && !resp.Cached {
				t.Errorf("%s: second pass not served from cache", tc.Name)
			}
			if resp.Verdict == cache.VerdictUnsafe && resp.Witness == "" {
				t.Errorf("%s: UNSAFE without a witness document", tc.Name)
			}
			if resp.Version == "" {
				t.Errorf("%s: response missing version", tc.Name)
			}
		}
	}
}

func TestServeMinK(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 2})
	// Store buffering (sb) is the classic shape needing K>=1 to fail.
	var sb *litmus.Test
	for i, tc := range litmus.Classic() {
		if tc.HasExpectation && tc.Unsafe {
			sb = &litmus.Classic()[i]
			break
		}
	}
	if sb == nil {
		t.Fatal("no expected-unsafe classic test")
	}
	resp, err := client.MinK(context.Background(), VerifyRequest{
		Program: progSrc(sb.Prog), Mode: cache.ModeVBMC, MaxK: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MinK == nil || *resp.MinK < 0 {
		t.Fatalf("mink on unsafe %s returned %+v", sb.Name, resp)
	}
	// The reported minimum must actually be minimal: UNSAFE at MinK,
	// SAFE at MinK-1 (when MinK > 0), per direct runs.
	res, err := core.Run(sb.Prog.Clone(), core.Options{K: *resp.MinK})
	if err != nil || res.Verdict != core.Unsafe {
		t.Errorf("direct run at MinK=%d: verdict %v err %v", *resp.MinK, res.Verdict, err)
	}
	if *resp.MinK > 0 {
		res, err := core.Run(sb.Prog.Clone(), core.Options{K: *resp.MinK - 1})
		if err != nil || res.Verdict != core.Safe {
			t.Errorf("direct run at MinK-1=%d: verdict %v err %v", *resp.MinK-1, res.Verdict, err)
		}
	}

	// A safe program reports min_k = -1.
	var safe *litmus.Test
	for i, tc := range litmus.Classic() {
		if tc.HasExpectation && !tc.Unsafe {
			safe = &litmus.Classic()[i]
			break
		}
	}
	resp, err = client.MinK(context.Background(), VerifyRequest{
		Program: progSrc(safe.Prog), Mode: cache.ModeVBMC, MaxK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MinK == nil || *resp.MinK != -1 || resp.Verdict != cache.VerdictSafe {
		t.Errorf("mink on safe %s returned %+v", safe.Name, resp)
	}
}

func TestServeBenchByNameAndValidation(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	resp, err := client.Verify(context.Background(), VerifyRequest{
		Bench: "peterson", Mode: cache.ModeVBMC, K: 1, Unroll: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict == "" {
		t.Error("bench request returned no verdict")
	}
	for _, bad := range []VerifyRequest{
		{Mode: cache.ModeVBMC},                           // no program
		{Program: "program p var x", Mode: "warp"},       // bad mode
		{Program: "not a program", Mode: cache.ModeVBMC}, // parse error
		{Bench: "no_such_bench", Mode: cache.ModeVBMC},   // unknown bench
		{Bench: "peterson", Program: "x", Mode: "vbmc"},  // both sources
		{Bench: "peterson", Mode: cache.ModeVBMC, K: -1}, // bad bound
	} {
		if _, err := client.Verify(context.Background(), bad); err == nil {
			t.Errorf("request %+v accepted", bad)
		}
	}
}

// TestServeBackpressure fills every worker and queue slot with slow
// requests and requires the next one to bounce with 429 immediately.
func TestServeBackpressure(t *testing.T) {
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := New(Config{Cache: c, Workers: 1, Queue: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { s.Close(); ts.Close() })

	// Distinct slow requests so singleflight cannot collapse them: the
	// buggy peterson variant at large K and unroll runs for tens of
	// seconds, and different K yield different cache keys.
	body := func(i int) string {
		b, _ := json.Marshal(VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5 + i, Unroll: 6, TimeoutSeconds: 60})
		return string(b)
	}
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body(i)))
			done <- struct{}{}
		}(i)
	}
	// Wait for both to occupy the worker + queue slots.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.admit) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(s.admit) != 2 {
		t.Fatalf("slots not occupied: admit=%d", len(s.admit))
	}
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow request got HTTP %d, want 429", resp.StatusCode)
	}
	s.Close() // cancel the slow runs rather than waiting them out
	<-done
	<-done
}

// TestServeDrainNoLeaks starts work, drains mid-flight with a hard
// close, and requires every handler goroutine to finish — the
// graceful-drain contract the SIGTERM path relies on.
func TestServeDrainNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Cache: c, Workers: 2, Queue: 4})
	ts := httptest.NewServer(s.Handler())

	done := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			b, _ := json.Marshal(VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5 + i, Unroll: 6, TimeoutSeconds: 60})
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(b)))
			if err == nil {
				resp.Body.Close()
				done <- resp.StatusCode
			} else {
				done <- -1
			}
		}(i)
	}
	// Let the requests reach the workers, then drain with a short grace
	// and hard-close the stragglers.
	time.Sleep(300 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	s.Drain(drainCtx)
	cancel()
	s.Close()
	for i := 0; i < 4; i++ {
		<-done // every request got *some* response; none hung
	}
	if !s.Draining() {
		t.Error("server not draining after Drain")
	}
	ts.Close()
	c.Close()

	// Goroutines must settle back to the baseline (allow slack for the
	// runtime's own pool).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutines leaked after drain: before=%d after=%d\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestServeCancelMidRunReleasesSlot cancels an HTTP request mid-
// exploration and requires the worker slot back promptly — the
// Options.Ctx audit regression test: a disconnected client must not
// pin a worker.
func TestServeCancelMidRunReleasesSlot(t *testing.T) {
	c, err := cache.New(cache.Config{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := New(Config{Cache: c, Workers: 1, Queue: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { s.Close(); ts.Close() })

	// A slow vbmc run holds the single worker.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		b, _ := json.Marshal(VerifyRequest{Bench: "peterson_1", Mode: cache.ModeVBMC, K: 5, Unroll: 6, TimeoutSeconds: 120})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(string(b)))
		req.Header.Set("Content-Type", "application/json")
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(s.work) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if len(s.work) != 1 {
		t.Fatal("slow request never reached a worker")
	}
	cancel() // client disconnects mid-exploration
	if err := <-errc; err == nil {
		t.Error("cancelled client call returned no error")
	}
	// The engine must notice the cancelled context and release the slot
	// far sooner than its 120s budget.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(s.work) != 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(s.work); got != 0 {
		t.Fatalf("worker slot still held %v after client disconnect", got)
	}
	// And the freed slot must serve new work.
	resp, err := NewClient(ts.URL).Verify(context.Background(), VerifyRequest{
		Program: "program ok\nvar x\nproc p0\n  x = 1\nend\n", Mode: cache.ModeRA,
	})
	if err != nil {
		t.Fatalf("request after cancel: %v", err)
	}
	if resp.Verdict != cache.VerdictSafe {
		t.Errorf("verdict after cancel = %s", resp.Verdict)
	}
}

func TestServeEndpointsAndMetrics(t *testing.T) {
	rec := obs.New()
	s, client := newTestServer(t, Config{Workers: 1, Obs: rec})
	base := strings.TrimRight(client.base, "/")

	if _, err := client.Verify(context.Background(), VerifyRequest{
		Program: "program ok\nvar x\nproc p0\n  x = 1\nend\n", Mode: cache.ModeVBMC, K: 1,
	}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Errorf("healthz: %d %s", code, body)
	}
	if code, body := get("/v1/version"); code != 200 || !strings.Contains(body, "version") {
		t.Errorf("version: %d %s", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"ravbmc_cache_hits_total", "ravbmc_cache_misses_total 1",
		"ravbmc_cache_evictions_total", "ravbmc_cache_inflight_collapsed_total",
		"ravbmc_serve_requests_total 1", "ravbmc_serve_workers 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "ravbmc_obs_") {
		t.Errorf("metrics missing obs mirror:\n%s", body)
	}
	if s.Draining() {
		t.Error("fresh server reports draining")
	}
}
