package ra

import (
	"math/rand"
	"testing"

	"ravbmc/internal/lang"
)

// randomRAProgram builds a small random RA program over two variables
// with reads, writes, CAS and fences.
func randomRAProgram(rng *rand.Rand) *lang.Program {
	p := lang.NewProgram("rnd", "x", "y")
	nproc := 2 + rng.Intn(2)
	for pi := 0; pi < nproc; pi++ {
		pr := p.AddProc([]string{"p0", "p1", "p2"}[pi], "r", "s")
		nops := 2 + rng.Intn(3)
		for i := 0; i < nops; i++ {
			v := []string{"x", "y"}[rng.Intn(2)]
			switch rng.Intn(6) {
			case 0, 1:
				pr.Add(lang.WriteC(v, lang.Value(1+rng.Intn(3))))
			case 2, 3:
				pr.Add(lang.ReadS([]string{"r", "s"}[rng.Intn(2)], v))
			case 4:
				pr.Add(lang.CASS(v, lang.C(lang.Value(rng.Intn(2))), lang.C(lang.Value(1+rng.Intn(3)))))
			default:
				pr.Add(lang.FenceS())
			}
		}
	}
	return p
}

// checkInvariants verifies structural invariants of a configuration:
//   - every message's view points at itself for its own variable;
//   - message views are coherent: positions are within bounds;
//   - a glued message is never first in its modification order;
//   - process views point at existing messages.
func checkInvariants(t *testing.T, s *System, c *Config) {
	t.Helper()
	for v, order := range c.mo {
		if len(order) == 0 {
			t.Fatalf("variable %d has no init message", v)
		}
		if order[0].Writer != -1 {
			t.Fatalf("variable %d: first message is not the init message", v)
		}
		if order[0].Glued {
			t.Fatalf("variable %d: init message is glued", v)
		}
		for _, m := range order {
			if m.Var != v {
				t.Fatalf("message of var %d filed under %d", m.Var, v)
			}
			if m.View[v] != m {
				t.Fatalf("message view does not include itself (var %d)", v)
			}
			for w, vm := range m.View {
				if vm == nil {
					t.Fatalf("message view has nil entry for var %d", w)
				}
				c.pos(vm) // panics if not in its mo
			}
		}
	}
	for p, view := range c.views {
		for v, m := range view {
			if m == nil {
				t.Fatalf("process %d view has nil entry for %d", p, v)
			}
			if m.Var != v {
				t.Fatalf("process %d view of %d points at var %d", p, v, m.Var)
			}
			c.pos(m)
		}
	}
}

// TestInvariantsOnRandomWalks: run random executions of random programs
// and check the structural invariants at every step, plus monotonicity
// of each process's view.
func TestInvariantsOnRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		prog := randomRAProgram(rng)
		sys := NewSystem(lang.MustCompile(prog))
		c := sys.Init()
		checkInvariants(t, sys, c)
		for step := 0; step < 24; step++ {
			var succs []Succ
			for p := 0; p < sys.NumProcs(); p++ {
				succs = append(succs, sys.Successors(c, p)...)
			}
			if len(succs) == 0 {
				break
			}
			succ := succs[rng.Intn(len(succs))]
			if succ.Violation {
				break
			}
			d := succ.Config
			checkInvariants(t, sys, d)
			// View monotonicity: the stepping process's view never moves
			// backwards for any variable (compare in the NEW config,
			// whose mo contains both messages).
			for v := range c.views[succ.Proc] {
				oldMsg := c.views[succ.Proc][v]
				newMsg := d.views[succ.Proc][v]
				if d.pos(newMsg) < d.pos(oldMsg) {
					t.Fatalf("process %d view of var %d moved backwards", succ.Proc, v)
				}
			}
			// Other processes' views are untouched.
			for p := range c.views {
				if p == succ.Proc {
					continue
				}
				for v := range c.views[p] {
					if c.views[p][v] != d.views[p][v] {
						t.Fatalf("process %d view changed by process %d's step", p, succ.Proc)
					}
				}
			}
			c = d
		}
	}
}

// TestGlueIntegrity: in every reachable configuration of a CAS-heavy
// program, glued messages immediately follow the message their RMW read
// — no interloper ever squeezes in.
func TestGlueIntegrity(t *testing.T) {
	p := lang.NewProgram("glue2", "x")
	p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.WriteC("x", 5))
	p.AddProc("p1").Add(lang.CASS("x", lang.C(1), lang.C(2)), lang.WriteC("x", 7))
	sys := NewSystem(lang.MustCompile(p))
	seen := 0
	sys.ReachableOutcomes(0, func(c *Config) string {
		seen++
		for _, order := range c.mo {
			for i, m := range order {
				if m.Glued && i == 0 {
					t.Fatal("glued message at position 0")
				}
			}
		}
		return c.Key()
	})
	if seen == 0 {
		t.Fatal("no configurations explored")
	}
}

// TestKeyCanonicalAcrossCreationOrder: two interleavings producing the
// same semantic state have equal keys (message identity replaced by
// position).
func TestKeyCanonicalAcrossCreationOrder(t *testing.T) {
	// p0 writes x, p1 writes y: the two interleavings commute.
	p := lang.NewProgram("comm", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	p.AddProc("p1").Add(lang.WriteC("y", 1))
	sys := NewSystem(lang.MustCompile(p))
	c := sys.Init()

	path1 := sys.Successors(c, 0)[0].Config // x first (append position 1)
	path1 = sys.Successors(path1, 1)[0].Config

	path2 := sys.Successors(c, 1)[0].Config // y first
	path2 = sys.Successors(path2, 0)[0].Config

	if path1.Key() != path2.Key() {
		t.Errorf("commuting writes give different keys:\n%s\nvs\n%s", path1.Key(), path2.Key())
	}
}

// TestDedupKeyMasksTerminated: a terminated process's registers do not
// distinguish states under DedupKey but do under Key.
func TestDedupKeyMasksTerminated(t *testing.T) {
	p := lang.NewProgram("mask", "x")
	p.AddProc("p0", "r").Add(lang.NondetS("r", 0, 1), lang.Term{})
	p.AddProc("p1", "s").Add(lang.ReadS("s", "x"))
	sys := NewSystem(lang.MustCompile(p))
	c := sys.Init()
	a := sys.Successors(c, 0)[0].Config // r = one value, now at term
	b := sys.Successors(c, 0)[1].Config // the other value
	if a.Key() == b.Key() {
		t.Fatal("full keys should differ (registers differ)")
	}
	if sys.DedupKey(a) != sys.DedupKey(b) {
		t.Error("dedup keys must coincide once p0 terminated")
	}
}
