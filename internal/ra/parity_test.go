package ra_test

import (
	"testing"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/ra"
)

// assertParity runs the explorer in fingerprint and exact-key modes and
// requires identical verdicts and search statistics: a divergence means
// either a fingerprint collision (astronomically unlikely at test
// scale; see internal/fp) or a genuine dedup bug.
func assertParity(t *testing.T, name string, sys *ra.System, opts ra.Options) {
	t.Helper()
	opts.ExactDedup = false
	fpRes := sys.Explore(opts)
	opts.ExactDedup = true
	exRes := sys.Explore(opts)
	if fpRes.Violation != exRes.Violation ||
		fpRes.Violations != exRes.Violations ||
		fpRes.States != exRes.States ||
		fpRes.Transitions != exRes.Transitions ||
		fpRes.Exhausted != exRes.Exhausted {
		t.Errorf("%s: fingerprint/exact divergence:\n fp: %+v\n ex: %+v", name, fpRes, exRes)
	}
}

// TestParityLitmusCorpus sweeps the generated litmus corpus (every
// two-thread shape over {x=1, y=1, $r=x, $r=y} with two ops per thread)
// through both dedup modes, unbounded and with a view bound.
func TestParityLitmusCorpus(t *testing.T) {
	corpus := litmus.Generated(2)
	if len(corpus) < 100 {
		t.Fatalf("corpus unexpectedly small: %d", len(corpus))
	}
	for _, tc := range corpus {
		sys := ra.NewSystem(lang.MustCompile(tc.Prog))
		assertParity(t, tc.Name, sys, ra.Options{ViewBound: -1, StopOnViolation: true})
		assertParity(t, tc.Name+"/vb1", sys, ra.Options{ViewBound: 1, StopOnViolation: true})
	}
}

// TestParityBenchmarks runs both dedup modes over unrolled mutual-
// exclusion protocols, with and without a context bound (the context
// bound folds an extra suffix into the state key, so it deserves its
// own parity coverage) and in violation-census mode.
func TestParityBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark parity sweep is slow")
	}
	for _, name := range []string{"peterson_0", "peterson_4", "dekker", "sim_dekker"} {
		p, err := benchmarks.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sys := ra.NewSystem(lang.MustCompile(lang.Unroll(p, 2)))
		assertParity(t, name, sys, ra.Options{ViewBound: 2, StopOnViolation: true})
		assertParity(t, name+"/ctx", sys, ra.Options{ViewBound: 2, StopOnViolation: true, ContextBound: 4})
		assertParity(t, name+"/census", sys, ra.Options{ViewBound: 1, StopOnViolation: false})
	}
}
