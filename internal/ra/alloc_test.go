package ra

import (
	"testing"

	"ravbmc/internal/fp"
	"ravbmc/internal/lang"
)

// TestDedupProbeZeroAllocs guards the explorer's hot path: encoding a
// state key into a reused buffer and probing the visited set must not
// allocate, in either dedup mode, for plain and context-suffixed keys.
// This is what makes the fingerprinted visited set pay off — the
// per-state cost is hashing, not garbage.
func TestDedupProbeZeroAllocs(t *testing.T) {
	if fp.RaceEnabled {
		t.Skip("allocation guards are meaningless under -race")
	}
	p := lang.NewProgram("alloc", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))
	c := sys.Init()
	for _, exact := range []bool{false, true} {
		set := fp.NewSet(exact)
		buf := make([]byte, 0, 256)
		// Insert once so the probe below is the visited-state (hot) case;
		// only insertion may allocate.
		buf = sys.AppendDedupKey(c, buf[:0])
		set.Visit(buf, 0)
		allocs := testing.AllocsPerRun(500, func() {
			buf = sys.AppendDedupKey(c, buf[:0])
			set.Visit(buf, 0)
		})
		if allocs != 0 {
			t.Errorf("exact=%v: %v allocs per encode+probe, want 0", exact, allocs)
		}

		buf = sys.AppendDedupKey(c, buf[:0])
		buf = appendCtxSuffix(buf, 1, 3)
		set.Visit(buf, 0)
		allocs = testing.AllocsPerRun(500, func() {
			buf = sys.AppendDedupKey(c, buf[:0])
			buf = appendCtxSuffix(buf, 1, 3)
			set.Visit(buf, 0)
		})
		if allocs != 0 {
			t.Errorf("exact=%v: %v allocs per suffixed encode+probe, want 0", exact, allocs)
		}
	}
}
