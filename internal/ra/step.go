package ra

import (
	"fmt"

	"ravbmc/internal/lang"
	"ravbmc/internal/trace"
)

// Succ is one enabled transition: the successor configuration together
// with the event describing it.
type Succ struct {
	Proc   int
	Config *Config
	Event  trace.Event
	// ViewSwitch marks transitions whose read part altered the process
	// view (paper Sec. 5): the bounded resource of view-bounded analysis.
	ViewSwitch bool
	// Violation marks a failed assertion; Config is the configuration at
	// the point of failure.
	Violation bool
}

// Successors enumerates every transition process p can take from c,
// covering all nondeterminism of the RA semantics: choice of message on
// reads and CAS, choice of insertion point on writes, and nondet ranges.
// A terminated process, or one stuck at a false assume, yields none.
// View snapshots are attached when the System's construction-time
// CaptureViews default is set; run-scoped capture (ra.Options
// .CaptureViews) is threaded through the unexported form instead, so a
// System shared between concurrent explorations is never mutated.
func (s *System) Successors(c *Config, p int) []Succ {
	return s.successors(c, p, s.CaptureViews)
}

// successors is Successors with an explicit per-call capture flag.
func (s *System) successors(c *Config, p int, capture bool) []Succ {
	pr := s.Prog.Procs[p]
	in := &pr.Code[c.pcs[p]]
	env := func(name string) lang.Value {
		if i, ok := s.RegIdx[p][name]; ok {
			return c.regs[p][i]
		}
		return 0
	}
	ev := func(kind trace.Kind, detail string) trace.Event {
		return trace.Event{Proc: pr.Name, Label: in.Label, Kind: kind, Detail: detail}
	}
	local := func(kind trace.Kind, detail string, mutate func(d *Config)) Succ {
		d := c.clone()
		d.pcs[p] = in.Next
		if mutate != nil {
			mutate(d)
		}
		return Succ{Proc: p, Config: d, Event: ev(kind, detail)}
	}

	switch in.Op {
	case lang.OpReadVar:
		return s.readSuccs(c, p, in, ev, capture)
	case lang.OpWriteVar:
		return s.writeSuccs(c, p, in, env, ev, capture)
	case lang.OpCASVar:
		return s.rmwSuccs(c, p, in, s.VarIdx[in.Var], env, ev, false, capture)
	case lang.OpFenceOp:
		if s.FenceVar < 0 {
			panic("ra: fence instruction but no fence variable allocated")
		}
		return s.rmwSuccs(c, p, in, s.FenceVar, env, ev, true, capture)
	case lang.OpAssignReg:
		v := in.Val.Eval(env)
		ri := s.RegIdx[p][in.Reg]
		sc := local(trace.KindLocal, "", func(d *Config) {
			d.regs[p][ri] = v
		})
		sc.Event.Reg, sc.Event.Val, sc.Event.HasVal = in.Reg, int64(v), true
		return []Succ{sc}
	case lang.OpNondetReg:
		ri := s.RegIdx[p][in.Reg]
		var out []Succ
		for v := in.Lo; v <= in.Hi; v++ {
			v := v
			sc := local(trace.KindLocal, "", func(d *Config) {
				d.regs[p][ri] = v
			})
			sc.Event.Reg, sc.Event.Val, sc.Event.HasVal = in.Reg, int64(v), true
			sc.Event.Choice = true
			out = append(out, sc)
		}
		return out
	case lang.OpAssumeCond:
		if in.Cond.Eval(env) == 0 {
			return nil // process remains at λ forever (paper Sec. 3)
		}
		return []Succ{local(trace.KindAssume, in.Cond.String(), nil)}
	case lang.OpAssertCond:
		if in.Cond.Eval(env) == 0 {
			return []Succ{{
				Proc:      p,
				Config:    c.clone(),
				Event:     ev(trace.KindViolation, "assert failed: "+in.Cond.String()),
				Violation: true,
			}}
		}
		return []Succ{local(trace.KindAssertOK, in.Cond.String(), nil)}
	case lang.OpCJmp:
		d := c.clone()
		det := "branch "
		if in.Cond.Eval(env) != 0 {
			d.pcs[p] = in.Next
			det += "taken: "
		} else {
			d.pcs[p] = in.Else
			det += "not taken: "
		}
		return []Succ{{Proc: p, Config: d, Event: ev(trace.KindLocal, det+in.Cond.String())}}
	case lang.OpJmp:
		d := c.clone()
		d.pcs[p] = in.Next
		return []Succ{{Proc: p, Config: d, Event: ev(trace.KindLocal, "goto")}}
	case lang.OpTermProc:
		return nil
	}
	panic(fmt.Sprintf("ra: instruction %s not in the RA fragment (process %s)", in.Op, pr.Name))
}

// readSuccs implements the Read rule of Fig. 2: any message of x whose
// position is at or above the process view can be read; the process view
// is merged with the message view.
func (s *System) readSuccs(c *Config, p int, in *lang.Instr, ev func(trace.Kind, string) trace.Event, capture bool) []Succ {
	x := s.VarIdx[in.Var]
	ri := s.RegIdx[p][in.Reg]
	from := c.pos(c.views[p][x])
	order := c.mo[x]
	var out []Succ
	for j := from; j < len(order); j++ {
		m := order[j]
		merged, changed := c.mergeViews(c.views[p], m.View)
		d := c.clone()
		d.pcs[p] = in.Next
		d.views[p] = merged
		d.regs[p][ri] = m.Val
		e := trace.Event{Proc: s.Prog.Procs[p].Name, Label: in.Label, Kind: trace.KindRead,
			Var: in.Var, Reg: in.Reg, Val: int64(m.Val), HasVal: true,
			ReadMsg: s.msgRef(c, m), ViewSwitch: changed}
		if capture {
			e.ViewBefore = s.viewRef(c, c.views[p])
			e.ViewAfter = s.viewRef(d, merged)
		}
		out = append(out, Succ{Proc: p, Config: d, Event: e, ViewSwitch: changed})
	}
	return out
}

// msgRef renders a message reference against the modification orders of
// c (T is the message's current mo position, its abstract timestamp).
func (s *System) msgRef(c *Config, m *Msg) *trace.MsgRef {
	return &trace.MsgRef{Seq: m.Seq, Var: s.Vars[m.Var], Val: int64(m.Val), T: c.pos(m)}
}

// viewRef renders a process view against the modification orders of c.
func (s *System) viewRef(c *Config, view []*Msg) trace.View {
	out := make(trace.View, len(view))
	for v, m := range view {
		out[v] = trace.MsgRef{Seq: m.Seq, Var: s.Vars[v], Val: int64(m.Val), T: c.pos(m)}
	}
	return out
}

// writeSuccs implements the Write rule of Fig. 2: the new message may
// take any free timestamp above the process view, i.e. be inserted into
// any modification-order gap strictly after the view — except between a
// message and a glued (CAS-created) successor, which models the occupied
// t+1 slot.
func (s *System) writeSuccs(c *Config, p int, in *lang.Instr, env func(string) lang.Value, ev func(trace.Kind, string) trace.Event, capture bool) []Succ {
	x := s.VarIdx[in.Var]
	val := in.Val.Eval(env)
	from := c.pos(c.views[p][x])
	order := c.mo[x]
	var out []Succ
	for j := from + 1; j <= len(order); j++ {
		if j < len(order) && order[j].Glued {
			continue // cannot squeeze between a message and its RMW
		}
		newView := make([]*Msg, len(c.views[p]))
		copy(newView, c.views[p])
		m := &Msg{Var: x, Val: val, View: newView, Writer: p, Seq: c.nextSeq}
		newView[x] = m
		d := c.clone()
		d.nextSeq++
		d.pcs[p] = in.Next
		d.views[p] = newView
		d.mo[x] = insertAt(d.mo[x], j, m)
		e := ev(trace.KindWrite, "")
		e.Var, e.Val, e.HasVal = in.Var, int64(val), true
		e.WroteMsg = &trace.MsgRef{Seq: m.Seq, Var: s.Vars[x], Val: int64(val), T: j}
		if capture {
			e.ViewBefore = s.viewRef(c, c.views[p])
			e.ViewAfter = s.viewRef(d, newView)
		}
		out = append(out, Succ{Proc: p, Config: d, Event: e})
	}
	return out
}

// rmwSuccs implements the CAS rule of Fig. 2 and the fence encoding.
// A CAS may read any message at or above the view whose value matches
// Old and whose t+1 slot is free (no glued successor); the new message
// is glued immediately after it. A fence is an unconditional RMW on the
// distinguished fence variable that writes the read value plus one.
func (s *System) rmwSuccs(c *Config, p int, in *lang.Instr, x int, env func(string) lang.Value, ev func(trace.Kind, string) trace.Event, isFence bool, capture bool) []Succ {
	from := c.pos(c.views[p][x])
	order := c.mo[x]
	var out []Succ
	for j := from; j < len(order); j++ {
		m := order[j]
		if !isFence && m.Val != in.Old.Eval(env) {
			continue
		}
		if j+1 < len(order) && order[j+1].Glued {
			continue // t+1 already occupied by another RMW
		}
		var newVal lang.Value
		if isFence {
			newVal = m.Val + 1
		} else {
			newVal = in.Val.Eval(env)
		}
		merged, changed := c.mergeViews(c.views[p], m.View)
		nm := &Msg{Var: x, Val: newVal, View: merged, Glued: true, Writer: p, Seq: c.nextSeq}
		merged[x] = nm
		d := c.clone()
		d.nextSeq++
		d.pcs[p] = in.Next
		d.views[p] = merged
		d.mo[x] = insertAt(d.mo[x], j+1, nm)
		kind := trace.KindCAS
		if isFence {
			kind = trace.KindFence
		}
		e := trace.Event{Proc: s.Prog.Procs[p].Name, Label: in.Label, Kind: kind,
			Var: s.Vars[x], Val: int64(newVal), HasVal: true,
			ReadMsg:    &trace.MsgRef{Seq: m.Seq, Var: s.Vars[x], Val: int64(m.Val), T: j},
			WroteMsg:   &trace.MsgRef{Seq: nm.Seq, Var: s.Vars[x], Val: int64(newVal), T: j + 1},
			ViewSwitch: changed}
		if !isFence {
			e.Old, e.HasOld = int64(m.Val), true
		}
		if capture {
			e.ViewBefore = s.viewRef(c, c.views[p])
			e.ViewAfter = s.viewRef(d, merged)
		}
		out = append(out, Succ{Proc: p, Config: d, Event: e, ViewSwitch: changed})
	}
	return out
}

func insertAt(order []*Msg, j int, m *Msg) []*Msg {
	out := make([]*Msg, 0, len(order)+1)
	out = append(out, order[:j]...)
	out = append(out, m)
	out = append(out, order[j:]...)
	return out
}

// AllSuccessors enumerates the transitions of every process.
func (s *System) AllSuccessors(c *Config) []Succ {
	var out []Succ
	for p := range s.Prog.Procs {
		out = append(out, s.Successors(c, p)...)
	}
	return out
}

// Enabled reports whether process p has at least one transition.
func (s *System) Enabled(c *Config, p int) bool {
	// Cheap pre-checks before materialising successors.
	in := &s.Prog.Procs[p].Code[c.pcs[p]]
	if in.Op == lang.OpTermProc {
		return false
	}
	return len(s.Successors(c, p)) > 0
}
