package ra

import (
	"testing"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
)

// mpProg is the MP litmus program used by the deadline/obs tests.
func mpProg() *lang.Program {
	p := lang.NewProgram("mp", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "y"), lang.ReadS("b", "x"))
	return p
}

// TestExploreExpiredDeadline: a deadline already in the past must abort
// before the first state, mirroring the SC backend's contract.
func TestExploreExpiredDeadline(t *testing.T) {
	sys := NewSystem(lang.MustCompile(mpProg()))
	res := sys.Explore(Options{ViewBound: -1, Deadline: time.Now().Add(-time.Second)})
	if !res.TimedOut {
		t.Error("expired deadline: TimedOut not set")
	}
	if res.Exhausted {
		t.Error("expired deadline: search claims exhaustion")
	}
	if res.States != 0 {
		t.Errorf("expired deadline explored %d states", res.States)
	}
}

// TestExploreObsCounters: the obs instruments must agree with the
// Result statistics; MP has a genuine read-choice branch point (p1 can
// read y=0 or y=1), so the branching instruments must fire.
func TestExploreObsCounters(t *testing.T) {
	rec := obs.New()
	sys := NewSystem(lang.MustCompile(mpProg()))
	res := sys.Explore(Options{ViewBound: -1, Obs: rec})
	rep := rec.Report()
	if got := rep.Counters["ra.states"]; got != int64(res.States) {
		t.Errorf("ra.states = %d, Result.States = %d", got, res.States)
	}
	if got := rep.Counters["ra.transitions"]; got != int64(res.Transitions) {
		t.Errorf("ra.transitions = %d, Result.Transitions = %d", got, res.Transitions)
	}
	if rep.Counters["ra.branch_points"] == 0 || rep.Counters["ra.branch_choices"] == 0 {
		t.Errorf("read-choice branching not recorded: %+v", rep.Counters)
	}
	if got := rep.Gauges["ra.peak_messages"]; got != int64(res.PeakMessages) {
		t.Errorf("ra.peak_messages = %d, Result.PeakMessages = %d", got, res.PeakMessages)
	}
	if rep.Derived["ra.branching_factor"] <= 1 {
		t.Errorf("ra.branching_factor = %v, want > 1", rep.Derived["ra.branching_factor"])
	}
}
