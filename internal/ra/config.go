// Package ra implements the operational release-acquire semantics of the
// paper (Sec. 3, Fig. 2), following Kang et al. POPL'17 / Podkopaev et
// al.: memory is a pool of messages (x, v, t, V) carrying the writer's
// view; each process has a view recording, per variable, the most recent
// message it has observed; reads pick any message at or above the view
// and merge views; writes pick a fresh timestamp above the view; CAS
// reads a message and installs its write at the immediately following
// timestamp, atomically.
//
// # Timestamps as modification orders
//
// The paper draws timestamps from N. Observable behaviour depends only on
// (a) the per-variable total order of messages and (b) CAS adjacency
// (timestamps t and t+1). We therefore represent the memory of each
// variable as a list of messages in modification order; a write may be
// inserted into any gap strictly after the writer's view, except
// immediately before a message created by a CAS (those are glued to
// their predecessor, modelling the occupied t+1 slot). Any concrete
// natural-number timestamping of a finite run can be renamed to such a
// list and vice versa, so the induced transition systems have the same
// reachable control states.
//
// The package also provides an exhaustive explorer used as the litmus
// oracle (the herd substitute) and as the reference for validating the
// view-bounded translation, with an optional bound on view switches.
package ra

import (
	"strconv"
	"strings"

	"ravbmc/internal/lang"
)

// Msg is a message in the memory pool: a write of Val to variable Var,
// carrying the writer's view at the time of the write (paper: m ∈ M ≜
// Event × View). Messages are immutable after creation and shared
// between configurations.
type Msg struct {
	Var int        // variable index
	Val lang.Value // written value
	// View is the attached view: View[v] is the message of variable v
	// that the writer had observed; View[Var] is the message itself.
	View []*Msg
	// Glued marks a message created by a CAS or fence RMW: it sits at
	// timestamp t+1 of the message it read, so no write may ever be
	// inserted between it and its modification-order predecessor, and no
	// other RMW may read that predecessor.
	Glued bool
	// Writer is the index of the writing process, or -1 for the initial
	// message. Seq is a global creation counter. Both are used only for
	// trace reporting, never for semantics.
	Writer int
	Seq    int
}

// Config is a machine configuration (M, P, J, R) of the paper: memory,
// process views, program counters and register files.
type Config struct {
	// mo[v] is the modification order of variable v; mo[v][0] is the
	// initial message (value 0, timestamp 0).
	mo [][]*Msg
	// views[p][v] is the message of v most recently observed by process p.
	views [][]*Msg
	// pcs[p] is the index of the next instruction of process p.
	pcs []int
	// regs[p][i] is the value of the i-th register of process p.
	regs [][]lang.Value
	// nextSeq numbers the next created message.
	nextSeq int
}

// System pre-computes the per-program structures the engine needs:
// variable and register indices, and the distinguished fence variable.
type System struct {
	Prog     *lang.CompiledProgram
	VarIdx   map[string]int
	Vars     []string // includes the fence variable as the last entry if used
	FenceVar int      // index of the distinguished fence variable, or -1
	RegIdx   []map[string]int
	// CaptureViews makes every emitted event carry the acting process's
	// view before and after the step (trace.Event.ViewBefore/ViewAfter).
	// Off by default: snapshotting views allocates on every successor.
	// This is a construction-time default for run-local systems
	// (internal/replay, internal/smc own theirs); the explorer threads
	// its per-run ra.Options.CaptureViews through successor generation
	// instead of mutating this field, so a System may be shared across
	// concurrent explorations.
	CaptureViews bool
}

// NewSystem prepares a compiled program for RA execution. The program
// must be in the RA fragment (no arrays, no atomic sections); use
// lang.ValidateRA beforehand for a precise error.
func NewSystem(cp *lang.CompiledProgram) *System {
	s := &System{Prog: cp, VarIdx: map[string]int{}}
	for _, v := range cp.Vars {
		s.VarIdx[v] = len(s.Vars)
		s.Vars = append(s.Vars, v)
	}
	s.FenceVar = -1
	if usesFence(cp) {
		s.FenceVar = len(s.Vars)
		s.Vars = append(s.Vars, "_fence")
	}
	for _, pr := range cp.Procs {
		m := make(map[string]int, len(pr.Regs))
		for i, r := range pr.Regs {
			m[r] = i
		}
		s.RegIdx = append(s.RegIdx, m)
	}
	return s
}

func usesFence(cp *lang.CompiledProgram) bool {
	for _, pr := range cp.Procs {
		for i := range pr.Code {
			if pr.Code[i].Op == lang.OpFenceOp {
				return true
			}
		}
	}
	return false
}

// NumProcs returns the number of processes.
func (s *System) NumProcs() int { return len(s.Prog.Procs) }

// Init returns the initial configuration c_init: every variable holds a
// single initial message with value 0 whose view maps every variable to
// the initial messages; all process views point at the initial messages;
// all registers are 0.
func (s *System) Init() *Config {
	nv := len(s.Vars)
	initView := make([]*Msg, nv)
	c := &Config{mo: make([][]*Msg, nv)}
	for v := 0; v < nv; v++ {
		m := &Msg{Var: v, Val: 0, View: initView, Writer: -1, Seq: v}
		initView[v] = m
		c.mo[v] = []*Msg{m}
	}
	c.nextSeq = nv
	for p := range s.Prog.Procs {
		view := make([]*Msg, nv)
		copy(view, initView)
		c.views = append(c.views, view)
		c.pcs = append(c.pcs, 0)
		c.regs = append(c.regs, make([]lang.Value, len(s.Prog.Procs[p].Regs)))
	}
	return c
}

// clone returns a copy sharing all messages (immutable) but with fresh
// order/view/register/pc slices, so the copy can be stepped independently.
func (c *Config) clone() *Config {
	d := &Config{
		mo:      make([][]*Msg, len(c.mo)),
		views:   make([][]*Msg, len(c.views)),
		pcs:     append([]int(nil), c.pcs...),
		regs:    make([][]lang.Value, len(c.regs)),
		nextSeq: c.nextSeq,
	}
	for i := range c.mo {
		d.mo[i] = append([]*Msg(nil), c.mo[i]...)
	}
	for i := range c.views {
		d.views[i] = c.views[i] // replaced wholesale when p steps; never mutated
	}
	for i := range c.regs {
		d.regs[i] = append([]lang.Value(nil), c.regs[i]...)
	}
	return d
}

// pos returns the modification-order position of m in c.
func (c *Config) pos(m *Msg) int {
	order := c.mo[m.Var]
	for i, x := range order {
		if x == m {
			return i
		}
	}
	// Unreachable for well-formed configurations.
	panic("ra: message not in its modification order")
}

// mergeViews returns the join V ⊔ V' of a process view and a message
// view (paper Fig. 2 caption): per variable the message further along in
// modification order. The returned slice is fresh. changed reports
// whether the result differs from base.
func (c *Config) mergeViews(base, mv []*Msg) (out []*Msg, changed bool) {
	out = make([]*Msg, len(base))
	copy(out, base)
	for v := range base {
		if base[v] == mv[v] {
			continue
		}
		if c.pos(mv[v]) > c.pos(base[v]) {
			out[v] = mv[v]
			changed = true
		}
	}
	return out, changed
}

// PC returns the program counter of process p.
func (c *Config) PC(p int) int { return c.pcs[p] }

// MO returns the modification order of variable v. The returned slice
// and its messages are owned by the configuration and must not be
// mutated; replay validation walks it to check stamp consistency.
func (c *Config) MO(v int) []*Msg { return c.mo[v] }

// Reg returns the value of register i of process p.
func (c *Config) Reg(p, i int) lang.Value { return c.regs[p][i] }

// MsgCount returns the total number of messages in the pool, including
// the initial ones.
func (c *Config) MsgCount() int {
	n := 0
	for _, o := range c.mo {
		n += len(o)
	}
	return n
}

// Key-encoding markers. Value tokens occupy first bytes 0x00..0xF9
// (small values) and 0xFE (escaped 8-byte values, see appendKeyVal),
// so every marker byte below is unreachable from inside a value token:
// the token stream is prefix-decodable and the encoding injective —
// no concatenation of adjacent fields can imitate another state.
const (
	keyCtx   = 0xFA // context-bound suffix (last process, contexts used)
	keyGlued = 0xFB // message was created by a CAS/fence RMW
	keyMsg   = 0xFC // end of one message record
	keyTerm  = 0xFD // terminated process: registers and view masked
	keySep   = 0xFE // escape prefix inside appendKeyVal (never a marker)
	keyField = 0xFF // end of a per-process or per-variable field
)

// appendKeyVal encodes one integer: 0..249 as a single byte, anything
// else (large or negative) as 0xFE plus eight little-endian bytes.
func appendKeyVal(buf []byte, v int64) []byte {
	if v >= 0 && v <= 249 {
		return append(buf, byte(v))
	}
	return append(buf, keySep,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendMemory encodes the message pools: per variable, per message in
// modification order, the value, the glue mark and the view rendered as
// mo positions — message identity is replaced by position, so two
// configurations that differ only in message creation order encode
// identically.
func (c *Config) appendMemory(buf []byte) []byte {
	for _, order := range c.mo {
		for _, m := range order {
			buf = appendKeyVal(buf, int64(m.Val))
			if m.Glued {
				buf = append(buf, keyGlued)
			}
			for v := range c.mo {
				buf = appendKeyVal(buf, int64(c.pos(m.View[v])))
			}
			buf = append(buf, keyMsg)
		}
		buf = append(buf, keyField)
	}
	return buf
}

// AppendKey appends the canonical encoding of the full configuration to
// buf and returns the extended slice. Callers on the search hot path
// reuse the buffer across states.
func (c *Config) AppendKey(buf []byte) []byte {
	for _, pc := range c.pcs {
		buf = appendKeyVal(buf, int64(pc))
	}
	buf = append(buf, keyField)
	for _, rf := range c.regs {
		for _, v := range rf {
			buf = appendKeyVal(buf, int64(v))
		}
		buf = append(buf, keyField)
	}
	buf = c.appendMemory(buf)
	for _, view := range c.views {
		for _, m := range view {
			buf = appendKeyVal(buf, int64(c.pos(m)))
		}
		buf = append(buf, keyField)
	}
	return buf
}

// Key returns the canonical encoding of the full configuration as a
// string; AppendKey is the allocation-free form.
func (c *Config) Key() string {
	return string(c.AppendKey(make([]byte, 0, 64+8*c.MsgCount()*len(c.mo))))
}

// AppendDedupKey appends the exploration key to buf: the registers and
// the view of a terminated process are dead (no instruction of that
// process will ever read them), so they are masked out, merging states
// that differ only in dead local state. Callers that inspect final
// register values (ReachableOutcomes) must use AppendKey/Key instead.
func (s *System) AppendDedupKey(c *Config, buf []byte) []byte {
	for p, pc := range c.pcs {
		buf = appendKeyVal(buf, int64(pc))
		if s.Prog.Procs[p].Terminated(pc) {
			buf = append(buf, keyTerm)
			continue
		}
		for _, v := range c.regs[p] {
			buf = appendKeyVal(buf, int64(v))
		}
		buf = append(buf, keyField)
		for _, m := range c.views[p] {
			buf = appendKeyVal(buf, int64(c.pos(m)))
		}
		buf = append(buf, keyField)
	}
	return c.appendMemory(buf)
}

// DedupKey returns the exploration key as a string; AppendDedupKey is
// the allocation-free form used by the explorer.
func (s *System) DedupKey(c *Config) string {
	return string(s.AppendDedupKey(c, make([]byte, 0, 64+8*c.MsgCount()*len(c.mo))))
}

// appendCtxSuffix folds the context-bounded search coordinates into the
// key: the process that moved last (-1 initially) and the number of
// contexts used. The keyCtx marker keeps the suffix unambiguous against
// the preceding fields.
func appendCtxSuffix(buf []byte, last, contexts int) []byte {
	buf = append(buf, keyCtx)
	buf = appendKeyVal(buf, int64(last+1))
	buf = appendKeyVal(buf, int64(contexts))
	return buf
}

// appendSwitchSuffix folds the view-switch coordinate into the key.
// Under a view bound the explorers key each state by the exact number
// of switches used, so the visited set's answers — and with them the
// state and transition counts — depend only on the annotated state
// graph, never on the order the search walks it (the serial/parallel
// parity discipline; see DESIGN.md). The suffix reuses the keyCtx
// marker: which suffixes are present is fixed per run by the Options,
// so the encoding stays injective within a run.
func appendSwitchSuffix(buf []byte, switches int) []byte {
	buf = append(buf, keyCtx)
	buf = appendKeyVal(buf, int64(switches))
	return buf
}

// MemoryString renders the message pool for debugging and examples:
// one line per variable with the modification order of values, glue
// marks (*) and writer annotations.
func (s *System) MemoryString(c *Config) string {
	var b strings.Builder
	for v, name := range s.Vars {
		b.WriteString(name)
		b.WriteString(": ")
		for i, m := range c.mo[v] {
			if i > 0 {
				if m.Glued {
					b.WriteString(" =")
				}
				b.WriteString(" -> ")
			}
			b.WriteString(strconv.FormatInt(int64(m.Val), 10))
			if m.Writer >= 0 {
				b.WriteString("@")
				b.WriteString(s.Prog.Procs[m.Writer].Name)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RegValue returns the value of the named register of the named process,
// or 0 if either does not exist. Used to render litmus-test outcomes.
func (s *System) RegValue(c *Config, proc, reg string) lang.Value {
	pi := s.Prog.ProcIndex(proc)
	if pi < 0 {
		return 0
	}
	if i, ok := s.RegIdx[pi][reg]; ok {
		return c.regs[pi][i]
	}
	return 0
}

// Terminated reports whether every process of c has terminated.
func (s *System) Terminated(c *Config) bool {
	for p := range s.Prog.Procs {
		if !s.Prog.Procs[p].Terminated(c.pcs[p]) {
			return false
		}
	}
	return true
}
