package ra_test

import (
	"testing"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
)

// TestTelemetryParityLitmusCorpus: attaching search telemetry (a
// recorder with a live sampler polling it) must not change what the
// explorer computes — identical verdicts, state counts and transition
// counts with sampling on and off across the litmus corpus — and the
// final stats snapshot must equal the engine's reported totals.
func TestTelemetryParityLitmusCorpus(t *testing.T) {
	corpus := litmus.Generated(2)
	if len(corpus) < 100 {
		t.Fatalf("corpus unexpectedly small: %d", len(corpus))
	}
	for _, tc := range corpus {
		sys := ra.NewSystem(lang.MustCompile(tc.Prog))
		for _, opts := range []ra.Options{
			{ViewBound: -1, StopOnViolation: true},
			{ViewBound: 1, StopOnViolation: false},
			// Parallel census: the workers flush shared atomic stats,
			// and the final snapshot must still equal the engine totals.
			{ViewBound: -1, Workers: 4},
		} {
			plain := sys.Explore(opts)

			rec := obs.New()
			smp := obs.NewSampler(rec, time.Millisecond)
			opts.Obs = rec
			sampled := sys.Explore(opts)
			smp.Stop()

			if plain.Violation != sampled.Violation ||
				plain.Violations != sampled.Violations ||
				plain.States != sampled.States ||
				plain.Transitions != sampled.Transitions ||
				plain.Exhausted != sampled.Exhausted {
				t.Errorf("%s: sampling changed the search:\n off: %+v\n on:  %+v",
					tc.Name, plain, sampled)
			}
			final := rec.Search().Snapshot()
			if final.States != int64(sampled.States) {
				t.Errorf("%s: final telemetry states = %d, engine reported %d",
					tc.Name, final.States, sampled.States)
			}
			if final.Transitions != int64(sampled.Transitions) {
				t.Errorf("%s: final telemetry transitions = %d, engine reported %d",
					tc.Name, final.Transitions, sampled.Transitions)
			}
		}
	}
}
