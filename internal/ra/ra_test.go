package ra

import (
	"fmt"
	"strings"
	"testing"

	"ravbmc/internal/lang"
)

// outcomes runs the exhaustive explorer on a loop-free program and
// returns the set of terminated-state renderings of the given registers
// ("proc.reg=value" tuples).
func outcomes(t *testing.T, p *lang.Program, obs [][2]string) map[string]bool {
	t.Helper()
	if err := p.ValidateRA(); err != nil {
		t.Fatalf("ValidateRA: %v", err)
	}
	sys := NewSystem(lang.MustCompile(p))
	return sys.ReachableOutcomes(0, func(c *Config) string {
		s := ""
		for _, o := range obs {
			s += fmt.Sprintf("%s.%s=%d;", o[0], o[1], sys.RegValue(c, o[0], o[1]))
		}
		return s
	})
}

func TestMessagePassingForbidden(t *testing.T) {
	// MP: p0: x=1; y=1   p1: a=y; b=x.
	// RA forbids a=1 && b=0: reading y=1 acquires the view of the write
	// to x.
	p := lang.NewProgram("mp", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "y"), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p1", "a"}, {"p1", "b"}})

	want := map[string]bool{
		"p1.a=0;p1.b=0;": true,
		"p1.a=0;p1.b=1;": true,
		"p1.a=1;p1.b=1;": true,
	}
	if len(got) != len(want) {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing outcome %s", k)
		}
	}
	if got["p1.a=1;p1.b=0;"] {
		t.Errorf("MP weak outcome a=1,b=0 must be forbidden under RA")
	}
}

func TestStoreBufferingAllowed(t *testing.T) {
	// SB: p0: x=1; a=y   p1: y=1; b=x.
	// RA allows a=0 && b=0 (unlike SC).
	p := lang.NewProgram("sb", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}, {"p1", "b"}})
	if !got["p0.a=0;p1.b=0;"] {
		t.Errorf("SB weak outcome a=0,b=0 must be allowed under RA; got %v", got)
	}
	// All four combinations are RA-consistent for SB.
	if len(got) != 4 {
		t.Errorf("SB should have 4 outcomes, got %v", got)
	}
}

func TestStoreBufferingWithFencesForbidden(t *testing.T) {
	// SB with a fence between the write and the read in both processes
	// forbids a=0 && b=0 (fences restore SC for this shape).
	p := lang.NewProgram("sb_fenced", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.FenceS(), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.FenceS(), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}, {"p1", "b"}})
	if got["p0.a=0;p1.b=0;"] {
		t.Errorf("fenced SB must forbid a=0,b=0; got %v", got)
	}
	if len(got) != 3 {
		t.Errorf("fenced SB should have 3 outcomes, got %v", got)
	}
}

func TestCoherenceCoRR(t *testing.T) {
	// CoRR: p0: x=1; x=2   p1: a=x; b=x.
	// Coherence forbids reading 2 then 1.
	p := lang.NewProgram("corr", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("x", 2))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "x"), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p1", "a"}, {"p1", "b"}})
	if got["p1.a=2;p1.b=1;"] {
		t.Errorf("CoRR violation: read 2 then 1; got %v", got)
	}
	// p0's writes are ordered 1 before 2 in mo (same process), so the
	// readable sequences are 00, 01, 02, 11, 12, 22.
	want := []string{
		"p1.a=0;p1.b=0;", "p1.a=0;p1.b=1;", "p1.a=0;p1.b=2;",
		"p1.a=1;p1.b=1;", "p1.a=1;p1.b=2;", "p1.a=2;p1.b=2;",
	}
	for _, k := range want {
		if !got[k] {
			t.Errorf("missing coherent outcome %s", k)
		}
	}
	if len(got) != len(want) {
		t.Errorf("CoRR outcomes = %v, want %d of them", got, len(want))
	}
}

func TestTwoPlusTwoWAllowed(t *testing.T) {
	// 2+2W: p0: x=1; y=2   p1: y=1; x=2, then each process reads both
	// variables. The weak outcome where x's final mo value is 1 and y's
	// is 1 requires inserting writes into the middle of mo, which RA
	// allows. We observe mo finality indirectly: after both processes
	// terminate, a fresh observer cannot exist, so instead we check that
	// the configuration where both "2" writes are mo-before both "1"
	// writes is reachable by letting each writer re-read its own variable.
	p := lang.NewProgram("2plus2w", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.WriteC("y", 2), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.WriteC("x", 2), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}, {"p1", "b"}})
	// a=2 means p0 still sees its own y=2 above p1's y=1; b=1 means p1
	// still sees... b ranges over {1,2} by coherence with its own write.
	if !got["p0.a=2;p1.b=1;"] {
		t.Errorf("2+2W weak outcome (a=2, b=1) must be allowed under RA; got %v", got)
	}
}

func TestCASAtomicity(t *testing.T) {
	// Two processes CAS x from 0: exactly one can succeed on the initial
	// message. The loser's CAS is stuck (no matching message readable),
	// so the loser cannot terminate with its flag set.
	p := lang.NewProgram("cas_atomic", "x", "w0", "w1")
	p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.WriteC("w0", 1))
	p.AddProc("p1").Add(lang.CASS("x", lang.C(0), lang.C(2)), lang.WriteC("w1", 1))
	sys := NewSystem(lang.MustCompile(p))

	// Explore everything; count terminal configurations where both
	// processes completed their CAS.
	bothDone := false
	sys.ReachableOutcomes(0, func(c *Config) string {
		if sys.Terminated(c) {
			bothDone = true
		}
		return c.Key()
	})
	if bothDone {
		t.Errorf("both CAS(x,0,_) succeeded; atomicity violated")
	}
}

func TestCASChainSequence(t *testing.T) {
	// A single process CASes x: 0->1 then 1->2; both must succeed and
	// the final mo of x must be 0 -> 1 -> 2 glued.
	p := lang.NewProgram("cas_chain", "x")
	p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.CASS("x", lang.C(1), lang.C(2)))
	sys := NewSystem(lang.MustCompile(p))
	res := sys.Explore(Options{TargetLabels: map[string]string{"p0": "p0#2"}, StopOnViolation: true})
	if !res.TargetReached {
		t.Fatalf("CAS chain did not complete; states=%d", res.States)
	}
}

func TestWriteCannotSqueezeBetweenCASPair(t *testing.T) {
	// p0 does CAS(x,0,1). p1 writes x=5. p2 reads x twice.
	// If p2 reads 0 then 1 consecutively via the CAS pair, no execution
	// may have let p1's write land between them — i.e. reading 0 then 5
	// then observing the CAS read 0 is impossible. Directly: the mo
	// position of 5 is never strictly between the initial message and the
	// glued CAS message. We check the memory shape on all reachable
	// configurations.
	p := lang.NewProgram("glue", "x")
	p.AddProc("p0").Add(lang.CASS("x", lang.C(0), lang.C(1)))
	p.AddProc("p1").Add(lang.WriteC("x", 5))
	sys := NewSystem(lang.MustCompile(p))
	sys.ReachableOutcomes(0, func(c *Config) string {
		order := c.mo[0]
		for i, m := range order {
			if m.Glued && i > 0 && order[i-1].Writer != -1 && order[i-1].Val == 5 {
				t.Errorf("glued CAS message directly follows the write of 5: %v", sys.MemoryString(c))
			}
		}
		return c.Key()
	})
}

func TestReadOwnWriteLatest(t *testing.T) {
	// A process always reads a message at or above its view: after
	// writing x=1 (view at its own write), it cannot read the initial 0.
	p := lang.NewProgram("own", "x")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}})
	if got["p0.a=0;"] {
		t.Errorf("process read stale initial value after its own write: %v", got)
	}
	if !got["p0.a=1;"] || len(got) != 1 {
		t.Errorf("expected only a=1, got %v", got)
	}
}

func TestViewBoundRestrictsBehaviours(t *testing.T) {
	// MP-like bug: p1 asserts it never sees y=1&&x=0 — safe under RA, so
	// no violation at any bound. But a read of y=1 by p1 needs 1 view
	// switch; with ViewBound 0, p1 can only see 0s.
	p := lang.NewProgram("vb", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a").Add(
		lang.ReadS("a", "y"),
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	sys := NewSystem(lang.MustCompile(p))
	res0 := sys.Explore(Options{ViewBound: 0, StopOnViolation: true})
	if res0.Violation {
		t.Errorf("with 0 view switches p1 cannot observe y=1")
	}
	res1 := sys.Explore(Options{ViewBound: 1, StopOnViolation: true})
	if !res1.Violation {
		t.Errorf("with 1 view switch p1 must be able to observe y=1")
	}
	if res1.Trace == nil || res1.Trace.ViewSwitches() > 1 {
		t.Errorf("trace should use at most 1 view switch: %v", res1.Trace)
	}
}

func TestIRIWAllowedUnderRA(t *testing.T) {
	// IRIW: two writers x=1, y=1; two readers read (x,y) and (y,x).
	// RA (without SC fences) allows the readers to disagree on the order
	// of the independent writes: r1=(1,0) and r2=(1,0).
	p := lang.NewProgram("iriw", "x", "y")
	p.AddProc("w0").Add(lang.WriteC("x", 1))
	p.AddProc("w1").Add(lang.WriteC("y", 1))
	p.AddProc("r0", "a", "b").Add(lang.ReadS("a", "x"), lang.ReadS("b", "y"))
	p.AddProc("r1", "c", "d").Add(lang.ReadS("c", "y"), lang.ReadS("d", "x"))
	got := outcomes(t, p, [][2]string{{"r0", "a"}, {"r0", "b"}, {"r1", "c"}, {"r1", "d"}})
	if !got["r0.a=1;r0.b=0;r1.c=1;r1.d=0;"] {
		t.Errorf("IRIW weak outcome must be allowed under RA")
	}
}

func TestExploreStatsAndExhaustion(t *testing.T) {
	p := lang.NewProgram("tiny", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	sys := NewSystem(lang.MustCompile(p))
	res := sys.Explore(Options{StopOnViolation: true})
	if res.Violation || res.TargetReached {
		t.Fatalf("nothing to find in tiny program")
	}
	if !res.Exhausted {
		t.Errorf("tiny program must be fully explored")
	}
	if res.States < 2 {
		t.Errorf("expected at least 2 states, got %d", res.States)
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	p := lang.NewProgram("bigish", "x", "y")
	for i := 0; i < 3; i++ {
		pr := p.AddProc(fmt.Sprintf("p%d", i))
		for j := 0; j < 3; j++ {
			pr.Add(lang.WriteC("x", lang.Value(i*3+j+1)), lang.WriteC("y", lang.Value(j)))
		}
	}
	sys := NewSystem(lang.MustCompile(p))
	res := sys.Explore(Options{MaxStates: 10, StopOnViolation: true})
	if res.Exhausted {
		t.Errorf("search must report truncation when MaxStates is hit")
	}
	if res.States > 10 {
		t.Errorf("visited %d states, cap was 10", res.States)
	}
}

func TestAccessorsAndMemoryString(t *testing.T) {
	p := lang.NewProgram("acc", "x")
	p.AddProc("p0", "r").Add(
		lang.AssignS("r", lang.C(5)),
		lang.WriteS("x", lang.R("r")),
		lang.CASS("x", lang.C(5), lang.C(6)),
	)
	sys := NewSystem(lang.MustCompile(p))
	c := sys.Init()
	if c.PC(0) != 0 || c.Reg(0, 0) != 0 {
		t.Error("initial accessors wrong")
	}
	if sys.Terminated(c) {
		t.Error("initial config not terminated")
	}
	// assign, write (append), cas
	c = sys.Successors(c, 0)[0].Config
	succs := sys.Successors(c, 0)
	c = succs[len(succs)-1].Config // append position
	c = sys.Successors(c, 0)[0].Config
	if !sys.Terminated(c) {
		t.Error("process should be terminated")
	}
	mem := sys.MemoryString(c)
	for _, frag := range []string{"x:", "5@p0", "= ", "6@p0"} {
		if !strings.Contains(mem, frag) {
			t.Errorf("memory rendering missing %q:\n%s", frag, mem)
		}
	}
	if sys.RegValue(c, "p0", "r") != 5 {
		t.Error("RegValue wrong")
	}
	if sys.RegValue(c, "nosuch", "r") != 0 || sys.RegValue(c, "p0", "nosuch") != 0 {
		t.Error("missing lookups must yield 0")
	}
}

func TestAllSuccessorsAndEnabled(t *testing.T) {
	p := lang.NewProgram("all", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	p.AddProc("p1", "r").Add(lang.ReadS("r", "x"))
	sys := NewSystem(lang.MustCompile(p))
	c := sys.Init()
	all := sys.AllSuccessors(c)
	if len(all) != 2 { // p0's single append + p1's read of init
		t.Errorf("AllSuccessors = %d, want 2", len(all))
	}
	if !sys.Enabled(c, 0) || !sys.Enabled(c, 1) {
		t.Error("both processes enabled initially")
	}
	d := sys.Successors(c, 0)[0].Config
	if sys.Enabled(d, 0) {
		t.Error("terminated process must be disabled")
	}
}
