package ra

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ravbmc/internal/fp"
	"ravbmc/internal/obs"
	"ravbmc/internal/sched"
	"ravbmc/internal/trace"
)

// resolveWorkers maps Options.Workers to a pool width: 0 selects the
// serial explorer, n >= 1 exactly n workers, negative all CPUs.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.NumCPU()
	}
	return w
}

// errStopSearch is returned by a worker's expand to halt the whole pool
// on a terminal condition: first violation under StopOnViolation, the
// target configuration, or the MaxStates cap.
var errStopSearch = errors.New("ra: search stopped")

// testParallelExpandHook, when non-nil, runs at the top of every
// parallel expansion. The worker-panic regression test injects a crash
// here to prove a dying worker surfaces as a panic on the caller, not a
// hang.
var testParallelExpandHook func(worker, depth int)

// pathNode is one link of a worker's path to a state. The serial
// explorer keeps a single mutable path slice alongside its stack;
// parallel workers interleave unrelated subtrees, so each frontier item
// instead carries an immutable parent chain, shared structurally
// between siblings.
type pathNode struct {
	parent *pathNode
	event  trace.Event
}

// toTrace materialises the chain root-first, appending extra events
// (the violating transition itself, which never becomes a frontier
// item). Safe on a nil chain (a violation right out of the root).
func (n *pathNode) toTrace(extra ...trace.Event) *trace.Trace {
	depth := 0
	for m := n; m != nil; m = m.parent {
		depth++
	}
	events := make([]trace.Event, depth+len(extra))
	i := depth
	for m := n; m != nil; m = m.parent {
		i--
		events[i] = m.event
	}
	copy(events[depth:], extra)
	return &trace.Trace{Events: events}
}

// pitem is one frontier item of the parallel exploration: a
// configuration plus the search coordinates it is entered with — the
// same tuple the serial explorer threads through expand.
type pitem struct {
	cfg      *Config
	path     *pathNode
	depth    int
	last     int
	contexts int
	switches int
}

// pexplorer is the shared state of one parallel exploration. Counters
// are atomics the workers update directly; the terminal artifacts
// (stop-mode trace, target flag) go under stopMu, written once by the
// winning worker.
type pexplorer struct {
	sys     *System
	opts    Options
	visited *fp.ShardedSet
	capture bool

	states       atomic.Int64
	transitions  atomic.Int64
	violations   atomic.Int64
	revisits     atomic.Int64
	steps        atomic.Int64
	peakMessages atomic.Int64
	incomplete   atomic.Bool // MaxSteps or MaxStates cut a branch
	bestVFP      atomic.Uint64

	stopMu        sync.Mutex
	stopTrace     *trace.Trace
	targetReached bool

	// bufs[w] is worker w's reusable dedup-key buffer: encode+probe
	// stays allocation-free per worker, as in the serial explorer.
	bufs [][]byte

	cStates, cTransitions, cRevisits *obs.Counter
	cBranchPoints, cBranchChoices    *obs.Counter
	gMaxDepth, gPeakMessages         *obs.Gauge

	stats   *obs.SearchStats
	flushMu sync.Mutex
	mark    flushMark
}

// exploreParallel partitions the DFS frontier across a work-stealing
// pool. The dedup discipline (expand in explore.go) makes the explored
// node set schedule-invariant, so a full run reproduces the serial
// States/Transitions/Violations exactly; the census witness is
// regenerated serially from the minimal violation fingerprint so it is
// byte-identical too. Stopped searches (violation under
// StopOnViolation, target) report whichever worker won, with a valid
// witness reconstructed from its path chain.
func (s *System) exploreParallel(opts Options, workers int) Result {
	p := &pexplorer{
		sys:     s,
		opts:    opts,
		visited: fp.NewShardedSet(opts.ExactDedup),
		capture: opts.CaptureViews || s.CaptureViews,
		bufs:    make([][]byte, workers),
	}
	if p.opts.MaxSteps == 0 {
		p.opts.MaxSteps = 1 << 20
	}
	p.bestVFP.Store(^uint64(0))
	p.cStates = opts.Obs.Counter("ra.states")
	p.cTransitions = opts.Obs.Counter("ra.transitions")
	p.cRevisits = opts.Obs.Counter("ra.revisits")
	p.cBranchPoints = opts.Obs.Counter("ra.branch_points")
	p.cBranchChoices = opts.Obs.Counter("ra.branch_choices")
	p.gMaxDepth = opts.Obs.Gauge("ra.max_depth")
	p.gPeakMessages = opts.Obs.Gauge("ra.peak_messages")
	p.stats = opts.Obs.Search()

	ctx := opts.Ctx
	if !opts.Deadline.IsZero() {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(base, opts.Deadline)
		defer cancel()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return Result{TimedOut: true}
	}

	pool := sched.NewSteal[pitem](workers, opts.StealSeed)
	err := pool.Run(ctx, []pitem{{cfg: s.Init(), last: -1}}, p.expand)
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		// A worker panic is a broken invariant, not a verdict: re-raise
		// it on the caller like the serial explorer would have.
		panic(pe)
	}

	res := Result{
		States:       int(p.states.Load()),
		Transitions:  int(p.transitions.Load()),
		Violations:   int(p.violations.Load()),
		PeakMessages: int(p.peakMessages.Load()),
	}
	res.Violation = res.Violations > 0
	p.stopMu.Lock()
	res.TargetReached = p.targetReached
	res.Trace = p.stopTrace
	p.stopMu.Unlock()
	if err != nil && !errors.Is(err, errStopSearch) {
		res.TimedOut = true
	}
	res.Exhausted = !p.incomplete.Load() && !res.TimedOut &&
		!res.TargetReached && !(res.Violation && opts.StopOnViolation)
	if res.Violation && !opts.StopOnViolation && !res.TargetReached && !res.TimedOut {
		// Census witness: the workers agreed on the minimal violation
		// fingerprint; replay serially for its canonical path, which is
		// exactly the trace the serial census records.
		res.Trace = s.regenWitness(opts, p.bestVFP.Load())
	}
	p.finalFlush()
	return res
}

// expand visits one frontier item: the same dedup, counters, caps,
// target and successor scan as the serial explorer's expand, with
// accepted children pushed onto the worker's deque instead of a stack
// frame.
func (p *pexplorer) expand(ctx context.Context, w int, it pitem, push func(pitem), f sched.Frontier) error {
	if hook := testParallelExpandHook; hook != nil {
		hook(w, it.depth)
	}
	if p.steps.Add(1)%deadlineStride == 0 {
		p.flush(f)
	}
	buf := p.sys.AppendDedupKey(it.cfg, p.bufs[w][:0])
	if p.opts.ContextBound > 0 {
		buf = appendCtxSuffix(buf, it.last, it.contexts)
	}
	if p.opts.ViewBound >= 0 {
		buf = appendSwitchSuffix(buf, it.switches)
	}
	p.bufs[w] = buf
	h := fp.Hash64(buf)
	if !p.visited.VisitHash(h, buf, 0) {
		p.revisits.Add(1)
		p.cRevisits.Inc()
		return nil
	}
	states := p.states.Add(1)
	p.cStates.Inc()
	p.gMaxDepth.SetMax(int64(it.depth))
	if n := int64(it.cfg.MsgCount()); n > p.peakMessages.Load() {
		storeMax(&p.peakMessages, n)
		p.gPeakMessages.SetMax(n)
	}
	if p.opts.MaxStates > 0 && states >= int64(p.opts.MaxStates) {
		p.incomplete.Store(true)
		return errStopSearch
	}
	if p.sys.targetAt(it.cfg, p.opts.TargetLabels) {
		p.stopMu.Lock()
		if !p.targetReached {
			p.targetReached = true
			p.stopTrace = it.path.toTrace()
		}
		p.stopMu.Unlock()
		return errStopSearch
	}
	if it.depth >= p.opts.MaxSteps {
		p.incomplete.Store(true)
		return nil
	}
	ord := 0
	for proc := 0; proc < p.sys.NumProcs(); proc++ {
		nc := it.contexts
		if proc != it.last {
			nc++
			if p.opts.ContextBound > 0 && nc > p.opts.ContextBound {
				continue
			}
		}
		succs := p.sys.successors(it.cfg, proc, p.capture)
		if len(succs) > 1 {
			p.cBranchPoints.Inc()
			p.cBranchChoices.Add(int64(len(succs)))
		}
		for _, succ := range succs {
			vord := ord
			ord++
			p.transitions.Add(1)
			p.cTransitions.Inc()
			if succ.Violation {
				p.violations.Add(1)
				if p.opts.StopOnViolation {
					p.stopMu.Lock()
					if p.stopTrace == nil {
						p.stopTrace = it.path.toTrace(succ.Event)
					}
					p.stopMu.Unlock()
					return errStopSearch
				}
				storeMin(&p.bestVFP, fp.MixOrdinal(h, vord))
				continue
			}
			if succ.ViewSwitch && p.opts.ViewBound >= 0 && it.switches >= p.opts.ViewBound {
				continue
			}
			ns := it.switches
			if succ.ViewSwitch {
				ns++
			}
			push(pitem{
				cfg:      succ.Config,
				path:     &pathNode{parent: it.path, event: succ.Event},
				depth:    it.depth + 1,
				last:     proc,
				contexts: nc,
				switches: ns,
			})
		}
	}
	return nil
}

// flush pushes since-last-flush deltas into the live telemetry block.
// The mark lives under flushMu so concurrent flushes never double-count
// a delta: totals in the sampled series only ever grow.
func (p *pexplorer) flush(f sched.Frontier) {
	if p.stats == nil {
		return
	}
	p.flushMu.Lock()
	cur := flushMark{
		states:      int(p.states.Load()),
		transitions: int(p.transitions.Load()),
		probes:      int(p.steps.Load()),
		hits:        int(p.revisits.Load()),
		violations:  int(p.violations.Load()),
	}
	p.stats.Add(
		int64(cur.states-p.mark.states),
		int64(cur.transitions-p.mark.transitions),
		int64(cur.probes-p.mark.probes),
		int64(cur.hits-p.mark.hits),
		int64(cur.violations-p.mark.violations),
	)
	p.mark = cur
	p.flushMu.Unlock()
	if f != nil {
		p.stats.SetFrontier(f.Pending())
	}
	p.stats.SetVisited(int64(p.visited.Len()), p.visited.ApproxBytes())
}

// finalFlush lands the run's totals after the pool has drained, so the
// last telemetry sample matches the Result exactly.
func (p *pexplorer) finalFlush() {
	if p.stats == nil {
		return
	}
	p.flush(nil)
	p.stats.SetFrontier(0)
}

// regenWitness reruns the census serially in directed mode, stopping at
// the violation whose fingerprint the parallel census selected. The
// replay shares the dedup discipline, so it walks the same node set and
// must encounter the fingerprint; its path is the canonical witness.
// Observability and budgets are stripped: the replay must neither
// double-count telemetry nor be cut short of the known violation.
func (s *System) regenWitness(opts Options, vfp uint64) *trace.Trace {
	o := opts
	o.Workers = 0
	o.Obs = nil
	o.Ctx = nil
	o.Deadline = time.Time{}
	o.MaxStates = 0
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	e := &explorer{
		sys:       s,
		opts:      o,
		visited:   fp.NewSet(o.ExactDedup),
		capture:   o.CaptureViews || s.CaptureViews,
		bestVFP:   ^uint64(0),
		directed:  true,
		stopAtVFP: vfp,
	}
	e.cStates = o.Obs.Counter("ra.states")
	e.cTransitions = o.Obs.Counter("ra.transitions")
	e.cRevisits = o.Obs.Counter("ra.revisits")
	e.cBranchPoints = o.Obs.Counter("ra.branch_points")
	e.cBranchChoices = o.Obs.Counter("ra.branch_choices")
	e.gMaxDepth = o.Obs.Gauge("ra.max_depth")
	e.gPeakMessages = o.Obs.Gauge("ra.peak_messages")
	e.stats = o.Obs.Search()
	e.exhausted = true
	e.search(s.Init())
	return e.result.Trace
}

// storeMin lowers a to v if v is smaller (lock-free running minimum).
func storeMin(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// storeMax raises a to v if v is larger (lock-free running maximum).
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
