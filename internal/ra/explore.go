package ra

import (
	"context"
	"time"

	"ravbmc/internal/fp"
	"ravbmc/internal/obs"
	"ravbmc/internal/trace"
)

// Options configures exhaustive exploration.
type Options struct {
	// ViewBound limits the number of view switches per execution; a
	// negative bound means unbounded. With a bound, the explorer decides
	// exactly the K-bounded view-switching reachability problem of the
	// paper (Sec. 5).
	ViewBound int
	// MaxSteps bounds execution length (depth); 0 means a large default.
	// Needed for programs with loops.
	MaxSteps int
	// MaxStates aborts the search (Exhausted=false) after visiting this
	// many distinct states; 0 means unlimited.
	MaxStates int
	// TargetLabels maps process names to instruction labels; the target
	// is reached when every listed process is simultaneously at its
	// label. Used by the PCP reduction ("all processes reach term").
	TargetLabels map[string]string
	// StopOnViolation stops at the first failed assertion (the default
	// mode of all tools in the paper's evaluation). When false the
	// search continues past failing assertions: Result.Violation is
	// still set, Result.Violations counts every violating transition
	// encountered, Result.Trace witnesses the violation with the
	// minimal fingerprint (a deterministic tie-break independent of
	// search order, so serial and parallel censuses agree byte for
	// byte), and Exhausted reports full coverage as usual — use this
	// mode to census a program's bugs rather than stop at the first.
	StopOnViolation bool
	// Workers selects intra-query parallel exploration: 0 runs the
	// serial explorer, n >= 1 runs n workers over a work-stealing
	// frontier with a sharded visited set (1 is a one-worker pool — the
	// differential harness's anchor), and a negative value uses all
	// CPUs.
	// Verdicts are identical at every width; in census mode
	// (StopOnViolation=false) state counts, transition counts and the
	// witness are identical too (see DESIGN.md on the parity
	// discipline). A stopped search (first violation or target) returns
	// a valid witness, but which one — and the partial counts — depend
	// on the schedule.
	Workers int
	// StealSeed seeds the work-stealing victim order of the parallel
	// explorer. Any value is fine (0 included); the partest fuzz mode
	// varies it to perturb steal schedules while asserting identical
	// results. Ignored by the serial explorer.
	StealSeed int64
	// ContextBound limits the number of contexts (maximal blocks of
	// steps by one process); 0 or negative means unbounded. Used to
	// check the paper's remark that the Theorem 4.1 reduction works
	// within 4-context executions. With a bound, the search keys states
	// exactly by (state, active process, contexts used).
	ContextBound int
	// ExactDedup makes the visited set retain full state keys instead
	// of 64-bit fingerprints. Fingerprinting is allocation-free and an
	// order of magnitude smaller per state, at a vanishing (birthday
	// bound) risk of conflating two states; exact mode is for
	// collision-paranoid runs and the fingerprint parity tests. See
	// internal/fp.
	ExactDedup bool
	// Deadline aborts the search when passed (checked periodically);
	// zero means none.
	Deadline time.Time
	// Ctx aborts the search when cancelled (nil = never); the parallel
	// harnesses cancel losing portfolio runs through it. Composes with
	// Deadline — whichever expires first stops the search with
	// TimedOut=true.
	Ctx context.Context
	// Obs, when non-nil, receives the exploration counters
	// ("ra.states", "ra.transitions", "ra.revisits", and the
	// read-choice branching instruments "ra.branch_points" /
	// "ra.branch_choices") and gauges ("ra.max_depth",
	// "ra.peak_messages").
	Obs *obs.Recorder
	// CaptureViews makes the emitted trace events carry per-step view
	// snapshots (see System.CaptureViews); enable it when the trace is
	// exported for offline inspection. The flag is scoped to this run:
	// it is threaded through successor generation without mutating the
	// System, which may be shared across concurrent explorations.
	CaptureViews bool
}

// Result is the outcome of an exploration.
type Result struct {
	// Violation is true if a failing assertion was found.
	Violation bool
	// Violations counts the violating transitions encountered; at most
	// 1 under StopOnViolation, the full census otherwise.
	Violations int
	// TargetReached is true if the TargetLabels configuration was found.
	TargetReached bool
	// Trace witnesses the violation or target, when found. With
	// StopOnViolation=false it witnesses the first violation seen.
	Trace *trace.Trace
	// States and Transitions count distinct visited states and explored
	// transitions.
	States, Transitions int
	// Exhausted is true if the state space was fully explored within the
	// given bounds (so "no violation" is conclusive for those bounds).
	// A search that stopped at a violation or target is not exhausted;
	// one that ran past violations (StopOnViolation=false) to full
	// coverage is.
	Exhausted bool
	// TimedOut is true when the Deadline or a cancelled Ctx cut the
	// search short.
	TimedOut bool
	// PeakMessages is the largest message pool seen.
	PeakMessages int
}

// Explore runs a depth-first search over the RA transition system with
// state dedup. Under a view bound, states are keyed by (configuration,
// switches used) — see appendSwitchSuffix — so the reached node set is
// a property of the annotated state graph alone and serial and parallel
// explorations agree exactly. The DFS itself runs on an explicit
// heap-allocated stack, so deep MaxSteps runs (looping programs) cannot
// overflow the goroutine stack. With Options.Workers > 1 the frontier
// is partitioned across a work-stealing pool instead (see parallel.go).
func (s *System) Explore(opts Options) Result {
	span := opts.Obs.StartPhase("ra.explore")
	span.SetAttrInt("view_bound", int64(opts.ViewBound))
	defer span.End()
	if w := resolveWorkers(opts.Workers); w >= 1 {
		span.SetAttrInt("workers", int64(w))
		return s.exploreParallel(opts, w)
	}
	e := &explorer{
		sys:     s,
		opts:    opts,
		visited: fp.NewSet(opts.ExactDedup),
		capture: opts.CaptureViews || s.CaptureViews,
		bestVFP: ^uint64(0),
	}
	e.cStates = opts.Obs.Counter("ra.states")
	e.cTransitions = opts.Obs.Counter("ra.transitions")
	e.cRevisits = opts.Obs.Counter("ra.revisits")
	e.cBranchPoints = opts.Obs.Counter("ra.branch_points")
	e.cBranchChoices = opts.Obs.Counter("ra.branch_choices")
	e.gMaxDepth = opts.Obs.Gauge("ra.max_depth")
	e.gPeakMessages = opts.Obs.Gauge("ra.peak_messages")
	e.stats = opts.Obs.Search()
	// The final flush lands the run's totals in the stats block, so the
	// last telemetry sample matches the Result exactly.
	defer e.flushStats(0)
	if e.opts.MaxSteps == 0 {
		e.opts.MaxSteps = 1 << 20
	}
	e.exhausted = true
	// Fold the wall-clock deadline into the cancellation context; the
	// search polls only ctx.Err() from here on.
	if !opts.Deadline.IsZero() {
		base := opts.Ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		e.ctx, cancel = context.WithDeadline(base, opts.Deadline)
		defer cancel()
	} else if opts.Ctx != nil {
		e.ctx = opts.Ctx
	}
	// An already-expired context aborts before the first state, so
	// callers handing out tiny time slices get them honoured.
	if e.ctx != nil && e.ctx.Err() != nil {
		e.result.TimedOut = true
		return e.result
	}
	e.search(s.Init())
	e.result.Exhausted = e.exhausted && !e.result.TargetReached &&
		!(e.result.Violation && e.opts.StopOnViolation)
	return e.result
}

// deadlineStride is how many DFS entries pass between cancellation
// polls. The step counter (unlike the visited-state count, which stalls
// once dedup saturates) advances on every entry, so the check always
// fires.
const deadlineStride = 1024

type explorer struct {
	sys       *System
	opts      Options
	ctx       context.Context // nil when the search has no deadline/cancel scope
	visited   *fp.Set         // suffixed state key, constant budget (see expand)
	keyBuf    []byte          // reused dedup-key buffer
	capture   bool            // per-run view snapshotting
	path      []trace.Event
	steps     int // DFS entries, for cancellation sampling
	revisits  int // dedup hits, for telemetry flushes
	result    Result
	exhausted bool

	// bestVFP is the smallest violation fingerprint seen so far in
	// census mode; its trace is the deterministic witness.
	bestVFP uint64
	// directed, when set, turns the census into a witness regeneration
	// run: the search stops with the trace of the violation whose
	// fingerprint equals stopAtVFP (the parallel census finds the
	// minimal fingerprint concurrently, then replays serially for the
	// canonical path; see exploreParallel).
	directed  bool
	stopAtVFP uint64

	cStates, cTransitions, cRevisits *obs.Counter
	cBranchPoints, cBranchChoices    *obs.Counter
	gMaxDepth, gPeakMessages         *obs.Gauge

	stats *obs.SearchStats // live telemetry; nil when Obs is nil
	mark  flushMark        // totals as of the last stats flush
}

// flushMark remembers the totals already pushed into the SearchStats
// block, so each flush adds only the delta since the previous one.
type flushMark struct {
	states, transitions, probes, hits, violations int
}

// flushStats pushes the since-last-flush deltas into the live telemetry
// block, plus the current frontier depth and visited-set occupancy. It
// runs on the deadline-poll cadence (every deadlineStride DFS entries)
// and once at search end, never per state.
func (e *explorer) flushStats(depth int) {
	if e.stats == nil {
		return
	}
	e.stats.Add(
		int64(e.result.States-e.mark.states),
		int64(e.result.Transitions-e.mark.transitions),
		int64(e.steps-e.mark.probes),
		int64(e.revisits-e.mark.hits),
		int64(e.result.Violations-e.mark.violations),
	)
	e.mark = flushMark{
		states:      e.result.States,
		transitions: e.result.Transitions,
		probes:      e.steps,
		hits:        e.revisits,
		violations:  e.result.Violations,
	}
	e.stats.SetFrontier(int64(depth))
	e.stats.SetVisited(int64(e.visited.Len()), e.visited.ApproxBytes())
}

// child is one accepted transition out of an expanded state: the
// successor configuration plus the search coordinates it is entered
// with. Violating and view-bound-filtered transitions never become
// children — they are handled during expansion.
type child struct {
	cfg      *Config
	event    trace.Event
	proc     int // the process that moved
	switches int // view switches used after this transition
	contexts int // contexts used after this transition
}

// frame is one explicit-stack DFS frame: the children of a state being
// iterated, the depth of that state, and the path length to restore
// when the frame is popped.
type frame struct {
	kids    []child
	idx     int
	depth   int
	pathLen int
}

// search drives the DFS from the root on an explicit stack. Frames
// mirror what the previous recursive formulation kept in goroutine
// stack frames (the successor slice and loop index), so the memory
// footprint is unchanged while the depth is bounded only by the heap.
func (e *explorer) search(root *Config) {
	kids, done := e.expand(root, 0, 0, -1, 0)
	if done || len(kids) == 0 {
		return
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{kids: kids})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx == len(f.kids) {
			e.path = e.path[:f.pathLen]
			stack = stack[:len(stack)-1]
			continue
		}
		k := f.kids[f.idx]
		f.idx++
		base := len(e.path)
		e.path = append(e.path, k.event)
		kids, done := e.expand(k.cfg, k.switches, f.depth+1, k.proc, k.contexts)
		if done {
			return
		}
		if len(kids) == 0 {
			e.path = e.path[:base]
			continue
		}
		// f is invalid after this append (the stack may move).
		stack = append(stack, frame{kids: kids, depth: f.depth + 1, pathLen: base})
	}
}

// expand visits one state: dedup, counters, caps and target checks,
// then the scan over its transitions. It returns the accepted children
// (nil when the state is pruned or a leaf) and whether the whole search
// is done (violation under StopOnViolation, target found, state cap or
// deadline hit). last is the process that moved last (-1 initially) and
// contexts the number of scheduling blocks so far; both are only
// tracked under a context bound.
func (e *explorer) expand(c *Config, switches, depth, last, contexts int) ([]child, bool) {
	e.steps++
	if e.steps%deadlineStride == 0 {
		e.flushStats(depth)
		if e.ctx != nil && e.ctx.Err() != nil {
			e.exhausted = false
			e.result.TimedOut = true
			return nil, true
		}
	}
	// Order-independent dedup: every active budget coordinate is folded
	// into the key and the budget argument is constant, so whether a
	// node is explored depends only on the node — never on which path
	// or worker reached it first. Serial and parallel explorations
	// therefore expand the same node set (the parity discipline).
	e.keyBuf = e.sys.AppendDedupKey(c, e.keyBuf[:0])
	if e.opts.ContextBound > 0 {
		e.keyBuf = appendCtxSuffix(e.keyBuf, last, contexts)
	}
	if e.opts.ViewBound >= 0 {
		e.keyBuf = appendSwitchSuffix(e.keyBuf, switches)
	}
	h := fp.Hash64(e.keyBuf)
	if !e.visited.VisitHash(h, e.keyBuf, 0) {
		e.revisits++
		e.cRevisits.Inc()
		return nil, false
	}
	e.result.States++
	e.cStates.Inc()
	e.gMaxDepth.SetMax(int64(depth))
	if n := c.MsgCount(); n > e.result.PeakMessages {
		e.result.PeakMessages = n
		e.gPeakMessages.SetMax(int64(n))
	}
	if e.opts.MaxStates > 0 && e.result.States >= e.opts.MaxStates {
		e.exhausted = false
		return nil, true
	}
	if e.targetReached(c) {
		e.result.TargetReached = true
		e.result.Trace = &trace.Trace{Events: append([]trace.Event(nil), e.path...)}
		return nil, true
	}
	if depth >= e.opts.MaxSteps {
		e.exhausted = false
		return nil, false
	}
	var kids []child
	ord := 0 // transition ordinal within this node, for MixOrdinal
	for p := 0; p < e.sys.NumProcs(); p++ {
		nc := contexts
		if p != last {
			nc++
			if e.opts.ContextBound > 0 && nc > e.opts.ContextBound {
				continue
			}
		}
		succs := e.sys.successors(c, p, e.capture)
		// A process with several successors is at a read with several
		// coherent messages (or a nondet): a read-choice branch point.
		if len(succs) > 1 {
			e.cBranchPoints.Inc()
			e.cBranchChoices.Add(int64(len(succs)))
		}
		for _, succ := range succs {
			vord := ord
			ord++
			e.result.Transitions++
			e.cTransitions.Inc()
			if succ.Violation {
				e.result.Violation = true
				e.result.Violations++
				vfp := fp.MixOrdinal(h, vord)
				switch {
				case e.directed:
					if vfp == e.stopAtVFP {
						e.result.Trace = &trace.Trace{Events: append(append([]trace.Event(nil), e.path...), succ.Event)}
						return nil, true
					}
				case e.opts.StopOnViolation:
					if e.result.Trace == nil {
						e.result.Trace = &trace.Trace{Events: append(append([]trace.Event(nil), e.path...), succ.Event)}
					}
					return nil, true
				case e.result.Trace == nil || vfp < e.bestVFP:
					// Census witness: keep the minimal-fingerprint
					// violation, the schedule-independent tie-break.
					e.bestVFP = vfp
					e.result.Trace = &trace.Trace{Events: append(append([]trace.Event(nil), e.path...), succ.Event)}
				}
				continue
			}
			if succ.ViewSwitch && e.opts.ViewBound >= 0 && switches >= e.opts.ViewBound {
				continue
			}
			ns := switches
			if succ.ViewSwitch {
				ns++
			}
			kids = append(kids, child{cfg: succ.Config, event: succ.Event, proc: p, switches: ns, contexts: nc})
		}
	}
	return kids, false
}

func (e *explorer) targetReached(c *Config) bool {
	return e.sys.targetAt(c, e.opts.TargetLabels)
}

// targetAt reports whether every process listed in targets is at its
// label in c; shared by the serial and parallel explorers.
func (s *System) targetAt(c *Config, targets map[string]string) bool {
	if len(targets) == 0 {
		return false
	}
	for name, label := range targets {
		pi := s.Prog.ProcIndex(name)
		if pi < 0 {
			return false
		}
		if s.Prog.Procs[pi].LabelAt(c.pcs[pi]) != label {
			return false
		}
	}
	return true
}

// ReachableOutcomes exhaustively enumerates, for loop-free programs, the
// set of final register valuations of terminated executions. It is the
// litmus-test oracle: the observable outcome of a litmus test is the
// final content of its observer registers. The map keys are produced by
// render(regs) where regs gives per-process register files.
//
// The visited set is keyed on the full configuration and memoizes the
// minimum depth at which a state was reached: a state re-reached with
// more remaining budget (smaller depth) is re-explored, so a deep first
// visit whose successors were cut by maxSteps can never mask outcomes
// still reachable along a shorter path. Being the oracle, it always
// retains exact keys — a fingerprint collision here would silently drop
// an outcome.
func (s *System) ReachableOutcomes(maxSteps int, render func(c *Config) string) map[string]bool {
	out := map[string]bool{}
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	visited := fp.NewSet(true)
	var keyBuf []byte
	// expand visits one state at the given depth: dedup on (key, depth),
	// terminal-outcome detection, and successor collection.
	expand := func(c *Config, depth int) []*Config {
		keyBuf = c.AppendKey(keyBuf[:0])
		if !visited.Visit(keyBuf, depth) {
			return nil
		}
		allDone := true
		anyStep := false
		var kids []*Config
		for p := 0; p < s.NumProcs(); p++ {
			if !s.Prog.Procs[p].Terminated(c.pcs[p]) {
				allDone = false
			}
			if depth >= maxSteps {
				continue
			}
			for _, succ := range s.Successors(c, p) {
				if succ.Violation {
					continue
				}
				anyStep = true
				kids = append(kids, succ.Config)
			}
		}
		if allDone && !anyStep {
			out[render(c)] = true
		}
		return kids
	}
	type oframe struct {
		kids  []*Config
		idx   int
		depth int // depth of the kids
	}
	var stack []oframe
	if kids := expand(s.Init(), 0); len(kids) > 0 {
		stack = append(stack, oframe{kids: kids, depth: 1})
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx == len(f.kids) {
			stack = stack[:len(stack)-1]
			continue
		}
		c := f.kids[f.idx]
		f.idx++
		if kids := expand(c, f.depth); len(kids) > 0 {
			stack = append(stack, oframe{kids: kids, depth: f.depth + 1})
		}
	}
	return out
}
