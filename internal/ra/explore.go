package ra

import (
	"context"
	"fmt"
	"time"

	"ravbmc/internal/obs"
	"ravbmc/internal/trace"
)

// Options configures exhaustive exploration.
type Options struct {
	// ViewBound limits the number of view switches per execution; a
	// negative bound means unbounded. With a bound, the explorer decides
	// exactly the K-bounded view-switching reachability problem of the
	// paper (Sec. 5).
	ViewBound int
	// MaxSteps bounds execution length (depth); 0 means a large default.
	// Needed for programs with loops.
	MaxSteps int
	// MaxStates aborts the search (Exhausted=false) after visiting this
	// many distinct states; 0 means unlimited.
	MaxStates int
	// TargetLabels maps process names to instruction labels; the target
	// is reached when every listed process is simultaneously at its
	// label. Used by the PCP reduction ("all processes reach term").
	TargetLabels map[string]string
	// StopOnViolation stops at the first failed assertion (the default
	// mode of all tools in the paper's evaluation).
	StopOnViolation bool
	// ContextBound limits the number of contexts (maximal blocks of
	// steps by one process); 0 or negative means unbounded. Used to
	// check the paper's remark that the Theorem 4.1 reduction works
	// within 4-context executions. With a bound, the search keys states
	// exactly by (state, active process, contexts used).
	ContextBound int
	// Deadline aborts the search when passed (checked periodically);
	// zero means none.
	Deadline time.Time
	// Ctx aborts the search when cancelled (nil = never); the parallel
	// harnesses cancel losing portfolio runs through it. Composes with
	// Deadline — whichever expires first stops the search with
	// TimedOut=true.
	Ctx context.Context
	// Obs, when non-nil, receives the exploration counters
	// ("ra.states", "ra.transitions", "ra.revisits", and the
	// read-choice branching instruments "ra.branch_points" /
	// "ra.branch_choices") and gauges ("ra.max_depth",
	// "ra.peak_messages").
	Obs *obs.Recorder
	// CaptureViews makes the emitted trace events carry per-step view
	// snapshots (see System.CaptureViews); enable it when the trace is
	// exported for offline inspection.
	CaptureViews bool
}

// Result is the outcome of an exploration.
type Result struct {
	// Violation is true if a failing assertion was found.
	Violation bool
	// TargetReached is true if the TargetLabels configuration was found.
	TargetReached bool
	// Trace witnesses the violation or target, when found.
	Trace *trace.Trace
	// States and Transitions count distinct visited states and explored
	// transitions.
	States, Transitions int
	// Exhausted is true if the state space was fully explored within the
	// given bounds (so "no violation" is conclusive for those bounds).
	Exhausted bool
	// TimedOut is true when the Deadline or a cancelled Ctx cut the
	// search short.
	TimedOut bool
	// PeakMessages is the largest message pool seen.
	PeakMessages int
}

// Explore runs a depth-first search over the RA transition system with
// state dedup. Dedup accounts for the remaining view-switch budget: a
// state revisited with a smaller number of used switches is re-explored,
// since more behaviours are reachable from it.
func (s *System) Explore(opts Options) Result {
	if opts.CaptureViews {
		s.CaptureViews = true
	}
	e := &explorer{
		sys:     s,
		opts:    opts,
		visited: make(map[string]int),
	}
	e.cStates = opts.Obs.Counter("ra.states")
	e.cTransitions = opts.Obs.Counter("ra.transitions")
	e.cRevisits = opts.Obs.Counter("ra.revisits")
	e.cBranchPoints = opts.Obs.Counter("ra.branch_points")
	e.cBranchChoices = opts.Obs.Counter("ra.branch_choices")
	e.gMaxDepth = opts.Obs.Gauge("ra.max_depth")
	e.gPeakMessages = opts.Obs.Gauge("ra.peak_messages")
	if e.opts.MaxSteps == 0 {
		e.opts.MaxSteps = 1 << 20
	}
	e.exhausted = true
	// Fold the wall-clock deadline into the cancellation context; the
	// search polls only ctx.Err() from here on.
	if !opts.Deadline.IsZero() {
		base := opts.Ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		e.ctx, cancel = context.WithDeadline(base, opts.Deadline)
		defer cancel()
	} else if opts.Ctx != nil {
		e.ctx = opts.Ctx
	}
	// An already-expired context aborts before the first state, so
	// callers handing out tiny time slices get them honoured.
	if e.ctx != nil && e.ctx.Err() != nil {
		e.result.TimedOut = true
		return e.result
	}
	e.dfs(s.Init(), 0, 0, -1, 0)
	e.result.Exhausted = e.exhausted && !e.result.Violation && !e.result.TargetReached
	return e.result
}

// deadlineStride is how many DFS entries pass between cancellation
// polls. The step counter (unlike the visited-state count, which stalls
// once dedup saturates) advances on every entry, so the check always
// fires.
const deadlineStride = 1024

type explorer struct {
	sys       *System
	opts      Options
	ctx       context.Context // nil when the search has no deadline/cancel scope
	visited   map[string]int  // state key -> min view switches used
	path      []trace.Event
	steps     int // DFS entries, for cancellation sampling
	result    Result
	exhausted bool

	cStates, cTransitions, cRevisits *obs.Counter
	cBranchPoints, cBranchChoices    *obs.Counter
	gMaxDepth, gPeakMessages         *obs.Gauge
}

// dfs returns true when the search is done (violation/target found or
// state cap hit). last is the process that moved last (-1 initially)
// and contexts the number of scheduling blocks so far; both are only
// tracked under a context bound.
func (e *explorer) dfs(c *Config, switches, depth, last, contexts int) bool {
	e.steps++
	if e.ctx != nil && e.steps%deadlineStride == 0 && e.ctx.Err() != nil {
		e.exhausted = false
		e.result.TimedOut = true
		return true
	}
	key := e.sys.DedupKey(c)
	if e.opts.ContextBound > 0 {
		key = fmt.Sprintf("%s|%d|%d", key, last, contexts)
	}
	if prev, ok := e.visited[key]; ok && prev <= switches {
		e.cRevisits.Inc()
		return false
	}
	e.visited[key] = switches
	e.result.States++
	e.cStates.Inc()
	e.gMaxDepth.SetMax(int64(depth))
	if n := c.MsgCount(); n > e.result.PeakMessages {
		e.result.PeakMessages = n
		e.gPeakMessages.SetMax(int64(n))
	}
	if e.opts.MaxStates > 0 && e.result.States >= e.opts.MaxStates {
		e.exhausted = false
		return true
	}
	if e.targetReached(c) {
		e.result.TargetReached = true
		e.result.Trace = &trace.Trace{Events: append([]trace.Event(nil), e.path...)}
		return true
	}
	if depth >= e.opts.MaxSteps {
		e.exhausted = false
		return false
	}
	for p := 0; p < e.sys.NumProcs(); p++ {
		nc := contexts
		if p != last {
			nc++
			if e.opts.ContextBound > 0 && nc > e.opts.ContextBound {
				continue
			}
		}
		succs := e.sys.Successors(c, p)
		// A process with several successors is at a read with several
		// coherent messages (or a nondet): a read-choice branch point.
		if len(succs) > 1 {
			e.cBranchPoints.Inc()
			e.cBranchChoices.Add(int64(len(succs)))
		}
		for _, succ := range succs {
			e.result.Transitions++
			e.cTransitions.Inc()
			if succ.Violation {
				if !e.opts.StopOnViolation {
					continue
				}
				e.result.Violation = true
				ev := succ.Event
				e.result.Trace = &trace.Trace{Events: append(append([]trace.Event(nil), e.path...), ev)}
				return true
			}
			if succ.ViewSwitch && e.opts.ViewBound >= 0 && switches >= e.opts.ViewBound {
				continue
			}
			ns := switches
			if succ.ViewSwitch {
				ns++
			}
			e.path = append(e.path, succ.Event)
			done := e.dfs(succ.Config, ns, depth+1, p, nc)
			e.path = e.path[:len(e.path)-1]
			if done {
				return true
			}
		}
	}
	return false
}

func (e *explorer) targetReached(c *Config) bool {
	if len(e.opts.TargetLabels) == 0 {
		return false
	}
	for name, label := range e.opts.TargetLabels {
		pi := e.sys.Prog.ProcIndex(name)
		if pi < 0 {
			return false
		}
		if e.sys.Prog.Procs[pi].LabelAt(c.pcs[pi]) != label {
			return false
		}
	}
	return true
}

// ReachableOutcomes exhaustively enumerates, for loop-free programs, the
// set of final register valuations of terminated executions. It is the
// litmus-test oracle: the observable outcome of a litmus test is the
// final content of its observer registers. The map keys are produced by
// render(regs) where regs gives per-process register files.
func (s *System) ReachableOutcomes(maxSteps int, render func(c *Config) string) map[string]bool {
	out := map[string]bool{}
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	visited := map[string]bool{}
	var rec func(c *Config, depth int)
	rec = func(c *Config, depth int) {
		key := c.Key()
		if visited[key] {
			return
		}
		visited[key] = true
		allDone := true
		anyStep := false
		for p := 0; p < s.NumProcs(); p++ {
			if !s.Prog.Procs[p].Terminated(c.pcs[p]) {
				allDone = false
			}
			if depth >= maxSteps {
				continue
			}
			for _, succ := range s.Successors(c, p) {
				if succ.Violation {
					continue
				}
				anyStep = true
				rec(succ.Config, depth+1)
			}
		}
		if allDone && !anyStep {
			out[render(c)] = true
		}
	}
	rec(s.Init(), 0)
	return out
}
