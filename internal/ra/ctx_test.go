package ra

import (
	"context"
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
)

// TestExplorePreCancelledCtx: a context cancelled before Explore starts
// must abort before the first state, like an expired deadline.
func TestExplorePreCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := NewSystem(lang.MustCompile(mpProg()))
	res := sys.Explore(Options{ViewBound: -1, Ctx: ctx})
	if !res.TimedOut || res.Exhausted || res.States != 0 {
		t.Errorf("pre-cancelled ctx: TimedOut=%v Exhausted=%v States=%d",
			res.TimedOut, res.Exhausted, res.States)
	}
}

// TestExploreCtxCancelStopsPromptly: cancelling mid-exploration stops
// the DFS within one sampling stride.
func TestExploreCtxCancelStopsPromptly(t *testing.T) {
	p, err := benchmarks.ByName("peterson_0(4)")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(lang.Unroll(p, 3)))
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	start := time.Now()
	res := sys.Explore(Options{ViewBound: -1, Ctx: ctx})
	elapsed := time.Since(start)
	if !res.TimedOut {
		t.Errorf("cancelled exploration finished: states=%d exhausted=%v", res.States, res.Exhausted)
	}
	if res.Exhausted {
		t.Error("cancelled exploration claims exhaustion")
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want well under 5s", elapsed)
	}
}
