package ra

import (
	"strings"
	"testing"
	"time"

	"ravbmc/internal/lang"
	"ravbmc/internal/sched"
)

// mpParallel is a program with enough interleavings that a multi-worker
// pool actually expands nodes on several workers.
func mpParallel() *lang.Program {
	p := lang.NewProgram("mp_par", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(
		lang.ReadS("a", "y"), lang.ReadS("b", "x"),
		// Fails on every interleaving where p1 reads y=1, so the
		// census has violations and a witness to compare.
		lang.AssertS(lang.Ne(lang.R("a"), lang.C(1))),
	)
	return p
}

// TestParallelWorkerPanicSurfaces is the regression test for the
// worker-panic contract: a panic inside a worker's expansion must be
// captured by the pool, cancel the sibling workers, and re-surface as
// a *sched.PanicError panic on the Explore caller — never a hang on
// the pool's termination barrier.
func TestParallelWorkerPanicSurfaces(t *testing.T) {
	testParallelExpandHook = func(worker, depth int) {
		if depth >= 1 {
			panic("injected worker failure")
		}
	}
	defer func() { testParallelExpandHook = nil }()

	sys := NewSystem(lang.MustCompile(mpParallel()))
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		sys.Explore(Options{ViewBound: -1, Workers: 2})
		done <- nil
	}()
	select {
	case r := <-done:
		pe, ok := r.(*sched.PanicError)
		if !ok {
			t.Fatalf("Explore returned %v (%T), want a *sched.PanicError panic", r, r)
		}
		if pe.Val != "injected worker failure" {
			t.Errorf("PanicError.Val = %v, want the injected value", pe.Val)
		}
		if !strings.Contains(string(pe.Stack), "parallel_test") {
			t.Errorf("PanicError.Stack does not point at the panicking expansion:\n%s", pe.Stack)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Explore hung after a worker panic")
	}
}

// TestParallelCensusMatchesSerialInPackage is a package-local parity
// smoke test (the full corpus sweep lives in internal/partest): the
// parallel census of MP must equal the serial one field for field,
// witness bytes included.
func TestParallelCensusMatchesSerialInPackage(t *testing.T) {
	sys := NewSystem(lang.MustCompile(mpParallel()))
	ser := sys.Explore(Options{ViewBound: -1})
	for _, w := range []int{1, 2, 4} {
		par := sys.Explore(Options{ViewBound: -1, Workers: w})
		if ser.Violation != par.Violation || ser.Violations != par.Violations ||
			ser.States != par.States || ser.Transitions != par.Transitions ||
			ser.Exhausted != par.Exhausted {
			t.Errorf("workers=%d: serial %+v vs parallel %+v", w, ser, par)
		}
		st, pt := "", ""
		if ser.Trace != nil {
			st = ser.Trace.String()
		}
		if par.Trace != nil {
			pt = par.Trace.String()
		}
		if st != pt {
			t.Errorf("workers=%d: witness differs\nserial:\n%s\nparallel:\n%s", w, st, pt)
		}
	}
}
