package ra

import (
	"fmt"
	"sync"
	"testing"

	"ravbmc/internal/lang"
)

// TestReachableOutcomesDepthBudget is the regression test for the
// depth-memoization unsoundness: a state first reached at a depth where
// maxSteps cuts its successors used to be marked visited outright, so
// re-reaching it along a *shorter* path was wrongly pruned and every
// outcome below it silently dropped.
//
// The program forces exactly that shape with one process:
//
//	r = nondet(0,1)
//	if r == 0 { r = 1 }   // the r=0 branch takes one extra step
//	done = 1
//
// Nondet explores r=0 first, reaching the state (pc=done-assign, r=1,
// done=0) at depth 3; with maxSteps=3 its successors are cut. The r=1
// branch re-reaches the same state at depth 2, from which the terminal
// done=1 outcome lies within budget. The old code pruned that second
// visit and reported no outcomes at all.
func TestReachableOutcomesDepthBudget(t *testing.T) {
	p := lang.NewProgram("depth_budget")
	p.AddProc("p0", "r", "done").Add(
		lang.NondetS("r", 0, 1),
		lang.IfS(lang.Eq(lang.R("r"), lang.C(0)), lang.AssignS("r", lang.C(1))),
		lang.AssignS("done", lang.C(1)),
	)
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))
	got := sys.ReachableOutcomes(3, func(c *Config) string {
		return fmt.Sprintf("done=%d", sys.RegValue(c, "p0", "done"))
	})
	if !got["done=1"] {
		t.Fatalf("outcome done=1 reachable within 3 steps was dropped; got %v", got)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly the done=1 outcome, got %v", got)
	}
}

// TestCtxSuffixUnambiguous checks the context-bound suffix byte
// encoding: distinct (last, contexts) pairs yield distinct suffixes,
// including pairs whose decimal renderings would concatenate
// ambiguously in a string format ("1","23" vs "12","3"), and the
// initial last=-1 is distinguished from process 0.
func TestCtxSuffixUnambiguous(t *testing.T) {
	pairs := [][2]int{
		{-1, 0}, {0, 0}, {0, 1}, {1, 0},
		{1, 23}, {12, 3}, {123, 0}, {1, 230},
		{249, 0}, {250, 0}, {0, 250}, {1000, 2},
	}
	seen := map[string][2]int{}
	for _, p := range pairs {
		s := string(appendCtxSuffix(nil, p[0], p[1]))
		if prev, dup := seen[s]; dup {
			t.Errorf("suffix collision: %v and %v encode to %q", prev, p, s)
		}
		seen[s] = p
	}
}

// TestDedupKeyCtxSuffixInjective checks that full key ⧺ suffix strings
// are injective over (state, last, contexts) triples: enumerating a few
// levels of a two-process system (with a register value above the
// single-byte token range, exercising the wide 0xFE encoding adjacent
// to the suffix marker), no two distinct triples share an encoding.
func TestDedupKeyCtxSuffixInjective(t *testing.T) {
	p := lang.NewProgram("inj", "x", "y")
	p.AddProc("p0", "a").Add(
		lang.AssignS("a", lang.C(1000)),
		lang.WriteC("x", 1),
		lang.ReadS("a", "y"),
	)
	p.AddProc("p1", "b").Add(
		lang.WriteC("y", 1),
		lang.ReadS("b", "x"),
	)
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))

	// Collect distinct states up to depth 4 by exhaustive expansion.
	type triple struct {
		key            string
		last, contexts int
	}
	states := map[string]*Config{}
	frontier := []*Config{sys.Init()}
	for depth := 0; depth < 4; depth++ {
		var next []*Config
		for _, c := range frontier {
			k := c.Key()
			if _, ok := states[k]; ok {
				continue
			}
			states[k] = c
			for p := 0; p < sys.NumProcs(); p++ {
				for _, s := range sys.Successors(c, p) {
					if !s.Violation {
						next = append(next, s.Config)
					}
				}
			}
		}
		frontier = next
	}
	if len(states) < 4 {
		t.Fatalf("expected several distinct states, got %d", len(states))
	}
	seen := map[string]triple{}
	var buf []byte
	for _, c := range states {
		for _, lc := range [][2]int{{-1, 0}, {0, 1}, {1, 1}, {1, 12}, {11, 2}} {
			buf = sys.AppendDedupKey(c, buf[:0])
			buf = appendCtxSuffix(buf, lc[0], lc[1])
			enc := string(buf)
			tr := triple{key: sys.DedupKey(c), last: lc[0], contexts: lc[1]}
			if prev, dup := seen[enc]; dup && prev != tr {
				t.Fatalf("encoding collision between %+v and %+v", prev, tr)
			}
			seen[enc] = tr
		}
	}
}

// TestExploreDoesNotMutateCaptureViews is the regression test for
// Explore flipping the shared System's CaptureViews flag on and never
// restoring it: capture must be a per-run option threaded through
// successor generation, not a mutation of state shared with concurrent
// or later runs.
func TestExploreDoesNotMutateCaptureViews(t *testing.T) {
	p := lang.NewProgram("cap", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1))
	p.AddProc("p1", "a").Add(lang.ReadS("a", "x"))
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))
	if sys.CaptureViews {
		t.Fatal("fresh system must not capture views")
	}
	res := sys.Explore(Options{ViewBound: -1, StopOnViolation: true})
	if sys.CaptureViews {
		t.Fatalf("Explore mutated System.CaptureViews")
	}
	_ = res

	// Per-run capture works without touching the system flag.
	res = sys.Explore(Options{
		ViewBound: -1, CaptureViews: true,
		TargetLabels: map[string]string{"p1": "p1#0"},
	})
	if sys.CaptureViews {
		t.Fatalf("per-run capture leaked into System.CaptureViews")
	}
	if !res.TargetReached || res.Trace == nil {
		t.Fatalf("target exploration failed: %+v", res)
	}
	for _, ev := range res.Trace.Events {
		if ev.ViewAfter == nil {
			t.Fatalf("CaptureViews run produced event without view snapshot: %+v", ev)
		}
	}
}

// TestExploreConcurrentOnSharedSystem runs several explorations of one
// System concurrently. Meaningful chiefly under -race (the CI race job):
// the old Explore wrote s.CaptureViews at the start of every run, a
// data race between concurrent explorations.
func TestExploreConcurrentOnSharedSystem(t *testing.T) {
	p := lang.NewProgram("conc", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))
	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sys.Explore(Options{
				ViewBound: -1, StopOnViolation: true,
				CaptureViews: i%2 == 0, ExactDedup: i%2 == 1,
			})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.States != results[0].States || r.Violation != results[0].Violation {
			t.Fatalf("run %d diverged: %+v vs %+v", i, r, results[0])
		}
	}
}

// TestContinuePastViolations is the regression test for silently
// dropped violations under StopOnViolation=false: the old explorer
// skipped violating transitions without recording them, so a program
// full of assertion failures reported Violation=false. Now every
// violating transition is counted, the first is witnessed, and the
// search still runs to full coverage.
func TestContinuePastViolations(t *testing.T) {
	p := lang.NewProgram("census")
	p.AddProc("p0", "r").Add(
		lang.NondetS("r", 0, 2),
		lang.AssertS(lang.Eq(lang.R("r"), lang.C(0))),
	)
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))

	res := sys.Explore(Options{ViewBound: -1, StopOnViolation: false})
	if !res.Violation {
		t.Fatalf("violations were dropped: %+v", res)
	}
	if res.Violations != 2 {
		t.Errorf("Violations = %d, want 2 (r=1 and r=2 both fail)", res.Violations)
	}
	if res.Trace == nil {
		t.Errorf("first violation must be witnessed")
	}
	if !res.Exhausted {
		t.Errorf("a run past all violations to full coverage is exhausted: %+v", res)
	}

	stop := sys.Explore(Options{ViewBound: -1, StopOnViolation: true})
	if !stop.Violation || stop.Violations != 1 {
		t.Errorf("StopOnViolation: Violation=%v Violations=%d, want true/1", stop.Violation, stop.Violations)
	}
	if stop.Exhausted {
		t.Errorf("a search stopped at a violation is not exhausted")
	}
}

// TestDeepExplicitStack drives a single-process counting loop tens of
// thousands of steps deep: with the explicit-stack DFS this is a heap
// allocation, not ~60k goroutine stack frames.
func TestDeepExplicitStack(t *testing.T) {
	const n = 20000
	p := lang.NewProgram("deep")
	p.AddProc("p0", "i").Add(
		lang.WhileS(lang.Lt(lang.R("i"), lang.C(n)),
			lang.AssignS("i", lang.Add(lang.R("i"), lang.C(1)))),
	)
	if err := p.ValidateRA(); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(lang.MustCompile(p))
	res := sys.Explore(Options{ViewBound: -1, StopOnViolation: true, MaxSteps: 3*n + 10})
	if res.Violation || !res.Exhausted {
		t.Fatalf("deep loop run: %+v", res)
	}
	if res.States < n {
		t.Fatalf("States = %d, want at least %d distinct loop states", res.States, n)
	}
}
