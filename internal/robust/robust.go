// Package robust decides observational robustness of loop-free programs
// against the release-acquire semantics: a program is RA-robust when the
// set of reachable final outcomes under RA equals the set under
// sequential consistency. Robust programs need no fences; non-robust
// ones exhibit genuine weak behaviours, and the witness outcome tells
// the developer what an RA execution can observe that no SC execution
// can.
//
// Robustness is the property the paper's fenced benchmark versions
// restore, and this package gives the repository a direct way to
// demonstrate it: peterson_0 is not robust, peterson_4 is (with respect
// to the mutual-exclusion outcome).
package robust

import (
	"fmt"
	"sort"
	"strings"

	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
	"ravbmc/internal/sc"
)

// Result reports a robustness verdict.
type Result struct {
	// Robust is true when RA and SC outcome sets coincide.
	Robust bool
	// WeakOutcomes lists outcomes reachable under RA but not under SC
	// (sorted). Non-empty iff not Robust: RA is a superset of SC for
	// every program, so the difference can only be on this side.
	WeakOutcomes []string
	// RAOutcomes and SCOutcomes count the two sets.
	RAOutcomes, SCOutcomes int
}

// Check computes both outcome sets of a loop-free program (or of its
// unrolling when a positive bound is given) and compares them. The
// outcome of an execution is the final value of every register of every
// process. Assertions are stripped first: an assertion-violating weak
// execution must run to completion so its outcome is counted (otherwise
// the very executions that make a program non-robust would be cut
// short).
func Check(prog *lang.Program, unroll int) (Result, error) {
	if err := prog.ValidateRA(); err != nil {
		return Result{}, err
	}
	src := lang.StripAsserts(prog)
	if lang.MaxLoopDepth(src) > 0 {
		if unroll <= 0 {
			return Result{}, fmt.Errorf("robust: program %q has loops; an unroll bound is required", prog.Name)
		}
		src = lang.Unroll(src, unroll)
	}
	cp, err := lang.Compile(src)
	if err != nil {
		return Result{}, err
	}

	raSys := ra.NewSystem(cp)
	raOut := raSys.ReachableOutcomes(0, func(c *ra.Config) string {
		return renderRA(raSys, cp, c)
	})

	scOut := scOutcomes(cp)

	res := Result{RAOutcomes: len(raOut), SCOutcomes: len(scOut)}
	for o := range raOut {
		if !scOut[o] {
			res.WeakOutcomes = append(res.WeakOutcomes, o)
		}
	}
	sort.Strings(res.WeakOutcomes)
	res.Robust = len(res.WeakOutcomes) == 0
	return res, nil
}

func renderRA(sys *ra.System, cp *lang.CompiledProgram, c *ra.Config) string {
	var b strings.Builder
	for _, pr := range cp.Procs {
		for _, reg := range pr.Regs {
			fmt.Fprintf(&b, "%s.%s=%d;", pr.Name, reg, sys.RegValue(c, pr.Name, reg))
		}
	}
	return b.String()
}

// scOutcomes enumerates terminal SC outcomes with a plain DFS over the
// SC engine's macro steps.
func scOutcomes(cp *lang.CompiledProgram) map[string]bool {
	sys := sc.NewSystem(cp)
	out := map[string]bool{}
	seen := map[string]bool{}
	var rec func(c *sc.Config)
	rec = func(c *sc.Config) {
		key := c.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		progressed := false
		for p := 0; p < len(cp.Procs); p++ {
			for _, d := range sys.MacroSteps(c, p) {
				progressed = true
				rec(d)
			}
		}

		if !progressed && sys.Terminated(c) {
			var b strings.Builder
			for _, pr := range cp.Procs {
				for _, reg := range pr.Regs {
					fmt.Fprintf(&b, "%s.%s=%d;", pr.Name, reg, sys.RegValue(c, pr.Name, reg))
				}
			}
			out[b.String()] = true
		}
	}
	for _, c := range sys.InitialConfigs() {
		rec(c)
	}
	return out
}
