package robust

import (
	"fmt"
	"strings"
	"testing"

	"ravbmc/internal/axiom"
	"ravbmc/internal/benchmarks"
	"ravbmc/internal/lang"
	"ravbmc/internal/parser"
	"ravbmc/internal/sc"
)

func TestSBNotRobust(t *testing.T) {
	p := parser.MustParse(`
var x y
proc p0
  reg a
  x = 1
  $a = y
end
proc p1
  reg b
  y = 1
  $b = x
end
`)
	res, err := Check(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Fatal("store buffering must not be robust")
	}
	found := false
	for _, o := range res.WeakOutcomes {
		if strings.Contains(o, "p0.a=0;") && strings.Contains(o, "p1.b=0;") {
			found = true
		}
	}
	if !found {
		t.Errorf("weak outcome a=0,b=0 missing: %v", res.WeakOutcomes)
	}
}

func TestMPRobust(t *testing.T) {
	// Message passing: all RA outcomes are SC outcomes (the weak one is
	// forbidden by RA itself).
	p := parser.MustParse(`
var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
end
`)
	res, err := Check(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Errorf("MP is RA-robust; weak outcomes: %v", res.WeakOutcomes)
	}
	if res.RAOutcomes != res.SCOutcomes {
		t.Errorf("outcome counts differ: RA=%d SC=%d", res.RAOutcomes, res.SCOutcomes)
	}
}

func TestFencedSBRobust(t *testing.T) {
	p := parser.MustParse(`
var x y
proc p0
  reg a
  x = 1
  fence
  $a = y
end
proc p1
  reg b
  y = 1
  fence
  $b = x
end
`)
	res, err := Check(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Errorf("fenced SB must be robust; weak: %v", res.WeakOutcomes)
	}
}

func TestLoopsNeedUnrollBound(t *testing.T) {
	p := lang.NewProgram("l", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, err := Check(p, 0); err == nil {
		t.Error("loops without a bound must be rejected")
	}
	if _, err := Check(p, 2); err != nil {
		t.Errorf("bounded check failed: %v", err)
	}
}

func TestIRIWNotRobust(t *testing.T) {
	p := parser.MustParse(`
var x y
proc w0
  x = 1
end
proc w1
  y = 1
end
proc r0
  reg a b
  $a = x
  $b = y
end
proc r1
  reg c d
  $c = y
  $d = x
end
`)
	res, err := Check(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Error("IRIW must not be robust under RA")
	}
}

func TestSimDekkerProtocolRobustness(t *testing.T) {
	// The unfenced try-lock exhibits the both-in-CS weak outcome; the
	// fenced version does not (assertions are stripped internally, so
	// the weak executions run to completion and are counted).
	unfenced, err := benchmarks.ByName("sim_dekker")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(unfenced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Error("sim_dekker must not be robust")
	}
	if len(res.WeakOutcomes) == 0 {
		t.Error("non-robust verdict needs witnesses")
	}

	fenced, err := benchmarks.ByName("sim_dekker_4")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Check(fenced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Robust {
		t.Errorf("sim_dekker_4 must be robust; weak: %v", res2.WeakOutcomes)
	}
}

// TestOperationalSCAgreesWithAxiomaticSC: the SC outcome enumeration
// used by the robustness checker (built on the operational SC engine)
// matches the declarative SC oracle (axiom.SCConsistent) on litmus
// shapes — a differential test for the SC engine itself.
func TestOperationalSCAgreesWithAxiomaticSC(t *testing.T) {
	srcs := []string{
		`var x y
proc p0
  reg a
  x = 1
  $a = y
end
proc p1
  reg b
  y = 1
  $b = x
end`,
		`var x
proc p0
  x = 1
  x = 2
end
proc p1
  reg a b
  $a = x
  $b = x
end`,
		`var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
end`,
	}
	for i, src := range srcs {
		p := parser.MustParse(src)
		cp := lang.MustCompile(p)
		render := func(regs [][]lang.Value) string {
			s := ""
			for pi := range regs {
				for ri := range regs[pi] {
					s += fmt.Sprintf("%d,", regs[pi][ri])
				}
				s += ";"
			}
			return s
		}
		enum, err := axiom.NewEnumerator(cp, render)
		if err != nil {
			t.Fatal(err)
		}
		enum.UseSC = true
		axOut := enum.Outcomes()

		opOut := map[string]bool{}
		sys := sc.NewSystem(cp)
		var rec func(c *sc.Config)
		seen := map[string]bool{}
		rec = func(c *sc.Config) {
			k := c.Key()
			if seen[k] {
				return
			}
			seen[k] = true
			progressed := false
			for pi := 0; pi < len(cp.Procs); pi++ {
				for _, d := range sys.MacroSteps(c, pi) {
					progressed = true
					rec(d)
				}
			}
			if !progressed && sys.Terminated(c) {
				s := ""
				for pi, pr := range cp.Procs {
					for _, rg := range pr.Regs {
						s += fmt.Sprintf("%d,", sys.RegValue(c, pr.Name, rg))
					}
					_ = pi
					s += ";"
				}
				opOut[s] = true
			}
		}
		for _, c := range sys.InitialConfigs() {
			rec(c)
		}

		if len(axOut) != len(opOut) {
			t.Errorf("case %d: axiomatic SC %d outcomes vs operational SC %d", i, len(axOut), len(opOut))
		}
		for o := range axOut {
			if !opOut[o] {
				t.Errorf("case %d: axiomatic-only SC outcome %s", i, o)
			}
		}
	}
}
