package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default histogram bounds for wall-clock
// seconds: request latencies, queue waits, cache lookups and probe
// durations all land comfortably inside them.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300,
}

// RateBuckets are histogram bounds for throughput observations
// (states/sec and the like), spanning a slow interpreted walk to the
// fastest fingerprinted searches.
var RateBuckets = []float64{
	1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7,
}

// Histogram is a fixed-bucket distribution metric. Buckets hold
// non-cumulative counts per upper bound, with an implicit +Inf bucket
// last; Observe is a handful of atomic adds and no locks, so engines
// can observe from hot-ish paths (per probe or per request, never per
// state). The nil *Histogram is the disabled instrument. A histogram
// resolved from a Child() recorder mirrors every observation into the
// parent's same-named histogram.
type Histogram struct {
	name   string
	mirror *Histogram
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram returns a standalone histogram (no recorder) with the
// given ascending upper bounds; nil bounds select DurationBuckets. The
// serve and cache layers use standalone histograms so their /metrics
// families exist even when no recorder is configured.
func NewHistogram(name string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	h := &Histogram{name: name, bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds select DurationBuckets; later calls
// keep the original bounds). On the nil recorder it returns the nil
// (disabled) histogram.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(name, bounds)
		if r.parent != nil {
			h.mirror = r.parent.Histogram(name, bounds)
		}
		r.histograms[name] = h
		r.histNames = append(r.histNames, name)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.mirror.Observe(v)
}

// ObserveSince records the seconds elapsed since t.
func (h *Histogram) ObserveSince(t time.Time) {
	if h != nil {
		h.Observe(time.Since(t).Seconds())
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, in the
// shape the Prometheus exposition needs: per-bucket (non-cumulative)
// counts aligned with Bounds, the +Inf bucket last.
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds; Counts has len(Bounds)+1
	// entries, the final one for observations above every bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the current state; the nil histogram snapshots empty.
// Buckets are read without a global lock, so a snapshot taken during a
// burst of observations may be torn by a few counts — fine for metrics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observation, 0 for an empty histogram —
// never NaN, so derived reports stay marshalable.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
