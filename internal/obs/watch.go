package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Watch is the `-watch` terminal dashboard: a fixed block of plain-text
// lines redrawn in place (ANSI cursor-up) on every sample. It consumes
// SearchPoints — from a local Sampler subscription or a remote SSE
// stream alike — and renders depth, rate and dedup columns plus an ETA
// extrapolated from progress through the K-deepening ladder.
//
// A Watch owns its block of lines only between Update calls; callers
// that interleave their own output (e.g. ratables' per-bench headers)
// must call Reset so the next Update draws a fresh block below instead
// of overwriting foreign lines.
type Watch struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	drawn int // lines of the block currently on screen
}

// NewWatch returns a dashboard writing to w.
func NewWatch(w io.Writer) *Watch {
	return &Watch{w: w, start: time.Now()}
}

// Reset forgets the on-screen block: the next Update draws fresh lines
// at the cursor instead of moving up over the previous frame.
func (wt *Watch) Reset() {
	if wt == nil {
		return
	}
	wt.mu.Lock()
	wt.drawn = 0
	wt.mu.Unlock()
}

// Update redraws the dashboard from p.
func (wt *Watch) Update(p SearchPoint) {
	if wt == nil {
		return
	}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	lines := renderWatch(p, time.Since(wt.start))
	var b strings.Builder
	if wt.drawn > 0 {
		fmt.Fprintf(&b, "\x1b[%dA", wt.drawn)
	}
	for _, ln := range lines {
		b.WriteString("\x1b[2K") // clear stale tails of longer old lines
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	io.WriteString(wt.w, b.String())
	wt.drawn = len(lines)
}

// Close finalises the dashboard: the block stays on screen and an
// optional summary line is printed below it.
func (wt *Watch) Close(summary string) {
	if wt == nil {
		return
	}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	if summary != "" {
		fmt.Fprintf(wt.w, "\x1b[2K%s\n", summary)
	}
	wt.drawn = 0
}

// renderWatch formats one dashboard frame as its block of lines.
func renderWatch(p SearchPoint, elapsed time.Duration) []string {
	phase := p.Phase
	if phase == "" {
		phase = "-"
	}
	bounds := ""
	if p.K >= 0 {
		bounds += fmt.Sprintf("  K=%d", p.K)
	}
	if p.L >= 0 {
		bounds += fmt.Sprintf(" L=%d", p.L)
	}
	l1 := fmt.Sprintf("phase %-18s%s  elapsed %s%s",
		phase, bounds, fmtDur(elapsed), watchETA(p, elapsed))

	work := fmt.Sprintf("states %s", fmtCount(p.States))
	if p.States == 0 && p.Executions > 0 {
		work = fmt.Sprintf("executions %s", fmtCount(p.Executions))
	}
	l2 := fmt.Sprintf("%-22s rate %s/s  transitions %s  frontier %d (hwm %d)",
		work, fmtCount(int64(p.StatesPerSec)), fmtCount(p.Transitions),
		p.Frontier, p.FrontierHWM)

	dedup := "dedup -"
	if p.DedupProbes > 0 {
		dedup = fmt.Sprintf("dedup %4.1f%% of %s probes",
			100*float64(p.DedupHits)/float64(p.DedupProbes), fmtCount(p.DedupProbes))
	}
	l3 := fmt.Sprintf("%-34s visited %s ≈ %s  violations %d",
		dedup, fmtCount(p.VisitedEntries), fmtBytes(p.VisitedBytes), p.Violations)
	return []string{l1, l2, l3}
}

// watchETA extrapolates time-to-completion from progress through the
// K-deepening ladder: rounds done over rounds planned, scaled by
// elapsed wall time. It is a heuristic — later rounds are bigger than
// earlier ones, so it underestimates — and stays blank outside VBMC
// runs (no ladder counters) or before the first round completes.
func watchETA(p SearchPoint, elapsed time.Duration) string {
	if p.DeepenTotal <= 0 || p.DeepenRounds <= 0 || p.DeepenRounds > p.DeepenTotal {
		return ""
	}
	frac := float64(p.DeepenRounds) / float64(p.DeepenTotal)
	eta := time.Duration(float64(elapsed) * (1 - frac) / frac)
	return fmt.Sprintf("  ladder %d/%d eta ~%s", p.DeepenRounds, p.DeepenTotal, fmtDur(eta))
}

// fmtCount renders n compactly: 1234 -> "1234", 123456 -> "123.5k",
// 12345678 -> "12.3M".
func fmtCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// fmtDur renders a duration at ~three significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
