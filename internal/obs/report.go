package obs

import (
	"encoding/json"
	"time"
)

// PhaseTiming is one phase row of a run report.
type PhaseTiming struct {
	Name string `json:"name"`
	// Seconds is the total wall time accumulated across all spans of
	// the phase; Count is how many spans there were (e.g. one per
	// context-deepening round).
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Report is the structured, machine-readable summary of one run:
// identity, verdict, per-phase wall times, all engine counters and
// gauges, and rates derived from the well-known instrument names. It
// marshals to the JSON emitted by `vbmc -json` and appended to
// BENCH_vbmc.json by scripts/bench_snapshot.sh.
type Report struct {
	// Tool and Bench identify the run ("vbmc", "tracer", ...); filled
	// by the caller, not the recorder.
	Tool  string `json:"tool,omitempty"`
	Bench string `json:"bench,omitempty"`
	// Verdict is the engine outcome (SAFE/UNSAFE/INCONCLUSIVE, or the
	// table verdicts); filled by the caller.
	Verdict string `json:"verdict,omitempty"`
	// K and L are the view-switch and unrolling bounds, when relevant.
	K int `json:"k,omitempty"`
	L int `json:"l,omitempty"`
	// WitnessValidated reports whether the counterexample witness was
	// lifted to a source-level RA trace and replayed successfully against
	// the RA operational semantics; nil when no witness was produced
	// (non-UNSAFE verdicts, or tools without replay validation).
	WitnessValidated *bool `json:"witness_validated,omitempty"`
	// Config carries free-form run configuration recorded by the caller
	// (e.g. trace export mode in benchmark sweeps).
	Config map[string]string `json:"config,omitempty"`
	// Seconds is the wall time from recorder creation to Report().
	Seconds float64 `json:"seconds"`
	// Phases lists per-phase wall times in first-activation order.
	Phases []PhaseTiming `json:"phases"`
	// Counters and Gauges carry every engine instrument by name.
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Histograms carry every distribution instrument by name (probe
	// durations, per-probe throughput, request latencies).
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Derived holds rates computed from well-known counters: dedup hit
	// rate, states/sec, read-choice branching factors.
	Derived map[string]float64 `json:"derived,omitempty"`
	// Search is the sampled search-telemetry time-series
	// (ravbmc.search/v1), attached by callers that ran a Sampler.
	Search *SearchSeries `json:"search,omitempty"`
}

// Report materialises the recorder's current state. It can be called
// while a search is live (for progress) or after it (for the final
// report). The nil recorder yields an empty, still-marshalable report.
func (r *Recorder) Report() *Report {
	rep := &Report{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	rep.Seconds = time.Since(r.start).Seconds()
	for _, ph := range r.phases {
		rep.Phases = append(rep.Phases, PhaseTiming{
			Name:    ph.name,
			Seconds: time.Duration(ph.total.Load()).Seconds(),
			Count:   ph.count.Load(),
		})
	}
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = g.Value()
	}
	for _, name := range r.histNames {
		if rep.Histograms == nil {
			rep.Histograms = map[string]HistogramSnapshot{}
		}
		rep.Histograms[name] = r.histograms[name].Snapshot()
	}
	r.mu.Unlock()
	rep.Derived = derive(rep)
	return rep
}

// derive computes rates from the well-known instrument names. Missing
// instruments simply yield no entry, and every division is guarded by
// its denominator — a zero-elapsed or empty-run report (no states, no
// dedup lookups) derives nothing rather than NaN or Inf — so the map
// stays meaningful and marshalable for any engine mix.
func derive(rep *Report) map[string]float64 {
	d := map[string]float64{}
	ratio := func(out, num, den string) {
		if n, m := rep.Counters[num], rep.Counters[den]; m > 0 {
			d[out] = float64(n) / float64(m)
		}
	}
	if hits, misses := rep.Counters["sc.dedup_hits"], rep.Counters["sc.dedup_misses"]; hits+misses > 0 {
		d["sc.dedup_hit_rate"] = float64(hits) / float64(hits+misses)
	}
	if rep.Seconds > 0 {
		for _, eng := range []string{"sc", "ra"} {
			if s := rep.Counters[eng+".states"]; s > 0 {
				d[eng+".states_per_sec"] = float64(s) / rep.Seconds
			}
		}
		if t := rep.Counters["smc.transitions"]; t > 0 {
			d["smc.transitions_per_sec"] = float64(t) / rep.Seconds
		}
	}
	ratio("ra.branching_factor", "ra.branch_choices", "ra.branch_points")
	ratio("smc.branching_factor", "smc.branch_choices", "smc.branch_points")
	ratio("ra.revisit_rate", "ra.revisits", "ra.states")
	for name, h := range rep.Histograms {
		if h.Count > 0 {
			d[name+".mean"] = h.Mean()
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// JSON renders the report as indented JSON (always valid; never errors
// since the report contains only marshalable types).
func (rep *Report) JSON() []byte {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// All field types are marshalable; this cannot happen.
		panic(err)
	}
	return b
}
