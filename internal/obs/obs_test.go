package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderIsInert: the disabled path — a nil recorder and the
// nil instruments it hands out — must be safe everywhere.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	sp := r.StartPhase("p")
	sp.End()
	r.SetSink(nil)
	if s := r.Snapshot(); s.Phase != "" || len(s.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	rep := r.Report()
	if len(rep.Phases) != 0 || len(rep.Counters) != 0 {
		t.Errorf("nil report = %+v", rep)
	}
	if !json.Valid(rep.JSON()) {
		t.Error("nil report JSON invalid")
	}
	var p *Progress
	p.Stop()
	p.PhaseStart("x")
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	c := r.Counter("sc.states")
	c.Inc()
	c.Add(9)
	if got := r.Counter("sc.states").Value(); got != 10 {
		t.Errorf("counter = %d, want 10 (repeated lookups must share the handle)", got)
	}
	g := r.Gauge("depth")
	g.SetMax(7)
	g.SetMax(3)
	if g.Value() != 7 {
		t.Errorf("SetMax kept %d, want 7", g.Value())
	}
	g.Set(2)
	if g.Value() != 2 {
		t.Errorf("Set kept %d, want 2", g.Value())
	}
}

func TestPhasesNestAndAccumulate(t *testing.T) {
	r := New()
	outer := r.StartPhase("outer")
	inner := r.StartPhase("inner")
	if got := r.Snapshot().Phase; got != "inner" {
		t.Errorf("current phase = %q, want inner", got)
	}
	inner.End()
	if got := r.Snapshot().Phase; got != "outer" {
		t.Errorf("current phase after inner end = %q, want outer", got)
	}
	outer.End()
	r.StartPhase("inner").End() // second activation
	rep := r.Report()
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %+v, want outer and inner", rep.Phases)
	}
	if rep.Phases[0].Name != "outer" || rep.Phases[1].Name != "inner" {
		t.Errorf("phase order = %+v, want first-activation order", rep.Phases)
	}
	if rep.Phases[1].Count != 2 {
		t.Errorf("inner count = %d, want 2", rep.Phases[1].Count)
	}
}

type recordingSink struct{ events []string }

func (s *recordingSink) PhaseStart(name string) { s.events = append(s.events, "start:"+name) }
func (s *recordingSink) PhaseEnd(name string, _ time.Duration) {
	s.events = append(s.events, "end:"+name)
}

func TestSinkReceivesPhaseEvents(t *testing.T) {
	sink := &recordingSink{}
	r := NewWithSink(sink)
	r.StartPhase("a").End()
	want := []string{"start:a", "end:a"}
	if len(sink.events) != 2 || sink.events[0] != want[0] || sink.events[1] != want[1] {
		t.Errorf("sink events = %v, want %v", sink.events, want)
	}
}

func TestReportDerivedRates(t *testing.T) {
	r := New()
	r.Counter("sc.dedup_hits").Add(30)
	r.Counter("sc.dedup_misses").Add(70)
	r.Counter("sc.states").Add(70)
	r.Counter("ra.branch_points").Add(10)
	r.Counter("ra.branch_choices").Add(25)
	rep := r.Report()
	if got := rep.Derived["sc.dedup_hit_rate"]; got != 0.3 {
		t.Errorf("dedup hit rate = %v, want 0.3", got)
	}
	if got := rep.Derived["ra.branching_factor"]; got != 2.5 {
		t.Errorf("branching factor = %v, want 2.5", got)
	}
	if rep.Derived["sc.states_per_sec"] <= 0 {
		t.Errorf("states/sec = %v, want > 0", rep.Derived["sc.states_per_sec"])
	}
	// The report must round-trip as JSON.
	var back Report
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Counters["sc.states"] != 70 {
		t.Errorf("round-tripped states = %d", back.Counters["sc.states"])
	}
}

func TestProgressPrintsSnapshots(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Counter("sc.states").Add(1234)
	sp := r.StartPhase("search")
	p := NewProgress(&buf, r, 5*time.Millisecond)
	time.Sleep(40 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "states=1234") {
		t.Errorf("progress output missing states: %q", out)
	}
	if !strings.Contains(out, "phase=search") {
		t.Errorf("progress output missing phase: %q", out)
	}
}

func TestProgressAsSinkPrintsPhaseTransitions(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	p := NewProgress(&buf, r, time.Hour) // ticks never fire
	r.SetSink(p)
	r.StartPhase("deepen").End()
	r.StartPhase("deepen").End() // consecutive duplicate: printed once
	r.StartPhase("search").End()
	p.Stop()
	out := buf.String()
	if strings.Count(out, "> deepen") != 1 {
		t.Errorf("duplicate phase lines: %q", out)
	}
	if !strings.Contains(out, "> search") {
		t.Errorf("missing phase line: %q", out)
	}
}
