package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// SearchSchema identifies the snapshot-series export format of a
// sampled search: the schema field of every SearchSeries.
const SearchSchema = "ravbmc.search/v1"

// SearchStats is the live telemetry block of one search: a set of
// atomics the engines (ra.Explore, sc.Check, smc.Check) update in bulk
// on their existing deadline-poll cadence (~every 1024 DFS entries), so
// the hot path pays a handful of atomic adds per kilostep and nothing
// per state. Consumers (the Sampler, the vbmcd SSE stream, /metrics)
// read it with Snapshot at any time without stalling the search.
//
// Like every obs instrument, the nil *SearchStats is the disabled
// block: all methods no-op and Snapshot returns zeros. Engines resolve
// it once per search via Recorder.Search.
//
// Counters accumulate across engine runs against the same recorder —
// the VBMC probe/deepening ladder runs many sc.Check passes, and the
// stats report the run's totals, matching the Result the driver sums.
type SearchStats struct {
	states      atomic.Int64
	transitions atomic.Int64
	executions  atomic.Int64
	dedupProbes atomic.Int64
	dedupHits   atomic.Int64
	violations  atomic.Int64

	frontier    atomic.Int64 // current DFS stack depth
	frontierHWM atomic.Int64 // deepest frontier seen

	visitedEntries atomic.Int64 // occupancy of the current visited set
	visitedBytes   atomic.Int64 // its approximate heap footprint

	k atomic.Int64 // current view-bound probe (-1 = not applicable)
	l atomic.Int64 // current unrolling bound (-1 = not applicable)

	// EWMA states/s, updated at snapshot time (never on the hot path):
	// float64 bits under CAS, blended with a ~2s time constant.
	rate      atomic.Uint64
	lastWork  atomic.Int64
	lastNanos atomic.Int64
}

// NewSearchStats returns an enabled stats block with K/L marked
// unknown.
func NewSearchStats() *SearchStats {
	s := &SearchStats{}
	s.k.Store(-1)
	s.l.Store(-1)
	return s
}

// Add accumulates the deltas of one flush: states visited, transitions
// explored, dedup probes and hits, and violations seen since the last
// flush.
func (s *SearchStats) Add(states, transitions, dedupProbes, dedupHits, violations int64) {
	if s == nil {
		return
	}
	s.states.Add(states)
	s.transitions.Add(transitions)
	s.dedupProbes.Add(dedupProbes)
	s.dedupHits.Add(dedupHits)
	s.violations.Add(violations)
}

// AddExecutions accumulates completed (maximal) executions — the
// stateless baselines' progress measure.
func (s *SearchStats) AddExecutions(n int64) {
	if s == nil {
		return
	}
	s.executions.Add(n)
}

// SetFrontier records the current DFS stack depth and maintains its
// high-water mark.
func (s *SearchStats) SetFrontier(depth int64) {
	if s == nil {
		return
	}
	s.frontier.Store(depth)
	for {
		cur := s.frontierHWM.Load()
		if depth <= cur || s.frontierHWM.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// SetVisited records the visited set's occupancy and approximate byte
// footprint (fp.Set.Len / fp.Set.ApproxBytes).
func (s *SearchStats) SetVisited(entries, bytes int64) {
	if s == nil {
		return
	}
	s.visitedEntries.Store(entries)
	s.visitedBytes.Store(bytes)
}

// SetProbe records the bounds the search currently runs under; -1
// marks a dimension as not applicable (e.g. K for a stateless run).
func (s *SearchStats) SetProbe(k, l int64) {
	if s == nil {
		return
	}
	s.k.Store(k)
	s.l.Store(l)
}

// rateTau is the EWMA time constant and rateMinInterval the shortest
// spacing between rate updates (back-to-back snapshots — the sampler
// plus a /metrics scrape — must not inject near-zero-dt noise).
const (
	rateTau         = 2 * time.Second
	rateMinInterval = 50 * time.Millisecond
)

// SearchPoint is one timestamped snapshot of a live search — the
// sample of a SearchSeries and the payload of an SSE "search" frame.
type SearchPoint struct {
	// TMS is milliseconds since the sampler started (0 on snapshots
	// taken outside a sampler).
	TMS int64 `json:"t_ms"`
	// Phase is the innermost open recorder phase at sample time.
	Phase string `json:"phase,omitempty"`

	States      int64 `json:"states"`
	Transitions int64 `json:"transitions"`
	Executions  int64 `json:"executions,omitempty"`
	Frontier    int64 `json:"frontier"`
	FrontierHWM int64 `json:"frontier_hwm"`
	DedupProbes int64 `json:"dedup_probes"`
	DedupHits   int64 `json:"dedup_hits"`
	Violations  int64 `json:"violations,omitempty"`

	VisitedEntries int64 `json:"visited_entries"`
	VisitedBytes   int64 `json:"visited_bytes"`

	// K and L are the bounds of the current probe (-1 = unknown/not
	// applicable).
	K int64 `json:"k"`
	L int64 `json:"l"`

	// StatesPerSec is the EWMA search rate (transitions stand in for
	// the stateless baselines, mirroring Progress).
	StatesPerSec float64 `json:"states_per_sec"`

	// DeepenRounds / DeepenTotal report progress through the VBMC
	// context-deepening ladder ("core.deepen_rounds" over
	// "core.deepen_total") — the basis of the -watch ETA heuristic.
	// Zero outside VBMC runs.
	DeepenRounds int64 `json:"deepen_rounds,omitempty"`
	DeepenTotal  int64 `json:"deepen_total,omitempty"`
}

// work is the progress measure the rate tracks: visited states when the
// search is stateful, transitions otherwise.
func (p SearchPoint) work() int64 {
	if p.States > 0 {
		return p.States
	}
	if p.Transitions > 0 {
		return p.Transitions
	}
	return p.Executions
}

// Snapshot reads the current stats. Safe concurrently with a running
// search and with other snapshotters; the nil stats snapshot is all
// zeros. Snapshots at least rateMinInterval apart advance the EWMA
// rate (exactly one of any set of racing snapshotters wins the update).
func (s *SearchStats) Snapshot() SearchPoint {
	if s == nil {
		return SearchPoint{K: -1, L: -1}
	}
	p := SearchPoint{
		States:         s.states.Load(),
		Transitions:    s.transitions.Load(),
		Executions:     s.executions.Load(),
		Frontier:       s.frontier.Load(),
		FrontierHWM:    s.frontierHWM.Load(),
		DedupProbes:    s.dedupProbes.Load(),
		DedupHits:      s.dedupHits.Load(),
		Violations:     s.violations.Load(),
		VisitedEntries: s.visitedEntries.Load(),
		VisitedBytes:   s.visitedBytes.Load(),
		K:              s.k.Load(),
		L:              s.l.Load(),
	}
	now := time.Now().UnixNano()
	last := s.lastNanos.Load()
	switch {
	case last == 0:
		// First snapshot: seed the baseline, rate stays 0.
		if s.lastNanos.CompareAndSwap(0, now) {
			s.lastWork.Store(p.work())
		}
	case now-last >= int64(rateMinInterval):
		if s.lastNanos.CompareAndSwap(last, now) {
			work := p.work()
			prev := s.lastWork.Swap(work)
			dt := float64(now-last) / 1e9
			inst := float64(work-prev) / dt
			alpha := 1 - math.Exp(-dt/rateTau.Seconds())
			for {
				old := s.rate.Load()
				next := math.Float64bits(math.Float64frombits(old) + alpha*(inst-math.Float64frombits(old)))
				if s.rate.CompareAndSwap(old, next) {
					break
				}
			}
		}
	}
	p.StatesPerSec = math.Float64frombits(s.rate.Load())
	return p
}

// SearchSeries is the sampled time-series of one search: the
// ravbmc.search/v1 export attached to run reports and vbmcd ledger
// entries.
type SearchSeries struct {
	Schema string `json:"schema"`
	// IntervalMS is the configured sampling cadence; individual samples
	// carry their own t_ms stamps (compaction makes old spacing wider).
	IntervalMS int64         `json:"interval_ms"`
	Samples    []SearchPoint `json:"samples"`
}

// defaultSampleInterval is the sampling cadence when the caller names
// none; maxSamples bounds a series — when full, every other sample is
// dropped (halving compaction), so long runs keep full time coverage at
// progressively coarser resolution.
const (
	defaultSampleInterval = 500 * time.Millisecond
	maxSamples            = 512
)

// Sampler periodically snapshots a recorder's SearchStats into a
// bounded SearchSeries and fans each sample out to subscribers (the
// vbmcd SSE stream, the -watch dashboard). It runs on its own
// goroutine and reads only atomics, so it never stalls the search; a
// nil *Sampler is inert, so callers can unconditionally defer Stop.
type Sampler struct {
	rec      *Recorder
	stats    *SearchStats
	interval time.Duration
	start    time.Time
	stopCh   chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	samples  []SearchPoint
	subs     map[chan SearchPoint]struct{}
	stopping bool // Stop initiated: the stopCh close is claimed
	stopped  bool // Stop finished: series sealed, subscriber channels closed
}

// NewSampler starts a sampler over rec's search stats, snapshotting
// every interval (non-positive selects 500ms).
func NewSampler(rec *Recorder, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = defaultSampleInterval
	}
	s := &Sampler{
		rec:      rec,
		stats:    rec.Search(),
		interval: interval,
		start:    time.Now(),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		subs:     map[chan SearchPoint]struct{}{},
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample takes one snapshot, appends it to the series (with halving
// compaction when full) and fans it out to subscribers. Sends are
// non-blocking: a subscriber that stopped draining loses samples, the
// sampler — and therefore the search — never stalls.
func (s *Sampler) sample() {
	p := s.stats.Snapshot()
	p.TMS = time.Since(s.start).Milliseconds()
	p.Phase = s.rec.Phase()
	p.DeepenRounds = s.rec.Counter("core.deepen_rounds").Value()
	p.DeepenTotal = s.rec.Gauge("core.deepen_total").Value()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.samples = append(s.samples, p)
	if len(s.samples) > maxSamples {
		kept := s.samples[:0]
		for i := 0; i < len(s.samples); i += 2 {
			kept = append(kept, s.samples[i])
		}
		s.samples = kept
	}
	for ch := range s.subs {
		select {
		case ch <- p:
		default: // slow consumer: drop, never block
		}
	}
}

// Subscribe registers a buffered live feed of future samples. The
// channel closes when the sampler stops; call unsubscribe to detach
// early (idempotent, also closes the channel). Samples a full buffer
// cannot take are dropped.
func (s *Sampler) Subscribe(buf int) (ch <-chan SearchPoint, unsubscribe func()) {
	if buf <= 0 {
		buf = 16
	}
	c := make(chan SearchPoint, buf)
	s.mu.Lock()
	if s.stopped {
		close(c)
		s.mu.Unlock()
		return c, func() {}
	}
	s.subs[c] = struct{}{}
	s.mu.Unlock()
	return c, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[c]; ok {
			delete(s.subs, c)
			close(c)
		}
	}
}

// Snapshot takes an immediate snapshot of the underlying stats block,
// without appending to the series — for /metrics scrapes between
// sampler ticks. Safe on the nil sampler.
func (s *Sampler) Snapshot() SearchPoint {
	if s == nil {
		return SearchPoint{K: -1, L: -1}
	}
	return s.stats.Snapshot()
}

// Subscribers reports how many live feeds are attached (tests and the
// /metrics gauge).
func (s *Sampler) Subscribers() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Series returns a copy of the samples captured so far as a
// ravbmc.search/v1 series (nil sampler: nil).
func (s *Sampler) Series() *SearchSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SearchSeries{
		Schema:     SearchSchema,
		IntervalMS: s.interval.Milliseconds(),
		Samples:    append([]SearchPoint(nil), s.samples...),
	}
}

// Stop halts the sampler: one final sample is taken (so the series'
// last snapshot carries the search's final totals), the goroutine
// exits and every subscriber channel closes. Idempotent and safe on
// the nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stopping {
		// A racing Stop owns the shutdown; wait for the loop to exit
		// rather than double-closing stopCh.
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopping = true
	s.mu.Unlock()
	close(s.stopCh)
	<-s.done
	s.sample() // the terminal sample, delivered to subscribers too
	s.mu.Lock()
	s.stopped = true
	for ch := range s.subs {
		delete(s.subs, ch)
		close(ch)
	}
	s.mu.Unlock()
}
