package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress periodically polls a recorder and writes one status line per
// tick — elapsed time, current phase, search counters and the
// instantaneous states/sec — to a writer (typically stderr). It backs
// the -progress flag of cmd/vbmc and cmd/ratables.
//
// The printer runs on its own goroutine and reads only atomics/locked
// snapshots, so it never stalls the search it observes. A nil *Progress
// is inert, so callers can unconditionally defer Stop.
type Progress struct {
	w    io.Writer
	rec  *Recorder
	done chan struct{}
	stop chan struct{}

	// mu serialises writes to w: ticks come from the printer goroutine,
	// PhaseStart lines from the engine thread.
	mu        sync.Mutex
	lastPhase string

	prevStates int64
	prevTime   time.Time
}

// NewProgress starts a progress printer over rec, ticking every
// interval (a non-positive interval selects 1s).
func NewProgress(w io.Writer, rec *Recorder, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{
		w:        w,
		rec:      rec,
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
		prevTime: time.Now(),
	}
	go p.loop(interval)
	return p
}

// Stop halts the printer and waits for its goroutine to exit. It is
// idempotent and safe on the nil printer.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

func (p *Progress) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.tick()
		}
	}
}

// searchStates sums the per-engine visited-state counters; for the
// stateless baselines (which have no state count) transitions stand in.
func searchStates(s Snapshot) int64 {
	if n := s.Counters["sc.states"] + s.Counters["ra.states"]; n > 0 {
		return n
	}
	return s.Counters["smc.transitions"]
}

func (p *Progress) tick() {
	s := p.rec.Snapshot()
	now := time.Now()
	states := searchStates(s)
	rate := float64(0)
	if dt := now.Sub(p.prevTime).Seconds(); dt > 0 {
		rate = float64(states-p.prevStates) / dt
	}
	p.prevStates, p.prevTime = states, now
	var b strings.Builder
	fmt.Fprintf(&b, "[%7.1fs]", s.Elapsed.Seconds())
	if s.Phase != "" {
		fmt.Fprintf(&b, " phase=%s", s.Phase)
	}
	fmt.Fprintf(&b, " states=%d (%.0f/s)", states, rate)
	if t := s.Counters["sc.transitions"] + s.Counters["ra.transitions"] + s.Counters["smc.transitions"]; t > 0 {
		fmt.Fprintf(&b, " transitions=%d", t)
	}
	if e := s.Counters["smc.executions"]; e > 0 {
		fmt.Fprintf(&b, " executions=%d", e)
	}
	if hits, misses := s.Counters["sc.dedup_hits"], s.Counters["sc.dedup_misses"]; hits+misses > 0 {
		fmt.Fprintf(&b, " dedup=%.0f%%", 100*float64(hits)/float64(hits+misses))
	}
	p.mu.Lock()
	fmt.Fprintln(p.w, b.String())
	p.mu.Unlock()
}

// PhaseStart implements Sink: attaching a Progress as a recorder's sink
// additionally prints phase transitions the moment they happen (ticks
// alone would miss short phases). Consecutive spans of the same phase
// (the context-deepening rounds) print once.
func (p *Progress) PhaseStart(name string) {
	if p == nil {
		return
	}
	elapsed := p.rec.Snapshot().Elapsed.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if name == p.lastPhase {
		return
	}
	p.lastPhase = name
	fmt.Fprintf(p.w, "[%7.1fs] > %s\n", elapsed, name)
}

// PhaseEnd implements Sink; span ends are silent (the next PhaseStart
// or tick carries the news).
func (p *Progress) PhaseEnd(string, time.Duration) {}
