package obs

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSearchTelemetryIsInert: like every obs instrument, the nil
// stats block, sampler and watch must be safe everywhere.
func TestNilSearchTelemetryIsInert(t *testing.T) {
	var s *SearchStats
	s.Add(1, 2, 3, 4, 5)
	s.AddExecutions(7)
	s.SetFrontier(9)
	s.SetVisited(1, 2)
	s.SetProbe(3, 4)
	p := s.Snapshot()
	if p.States != 0 || p.K != -1 || p.L != -1 {
		t.Errorf("nil stats snapshot = %+v, want zeros with K=L=-1", p)
	}
	var smp *Sampler
	smp.Stop()
	if smp.Series() != nil {
		t.Error("nil sampler series != nil")
	}
	if smp.Subscribers() != 0 {
		t.Error("nil sampler has subscribers")
	}
	if q := smp.Snapshot(); q.K != -1 {
		t.Errorf("nil sampler snapshot = %+v", q)
	}
	var r *Recorder
	if r.Search() != nil {
		t.Error("nil recorder hands out a live stats block")
	}
	if r.Phase() != "" {
		t.Error("nil recorder reports a phase")
	}
	var w *Watch
	w.Update(SearchPoint{})
	w.Reset()
	w.Close("x")
}

func TestSearchStatsAccumulateAndHighWaterMark(t *testing.T) {
	s := NewSearchStats()
	s.Add(10, 20, 30, 5, 0)
	s.Add(1, 2, 3, 1, 1)
	s.SetFrontier(7)
	s.SetFrontier(3) // HWM must survive the frontier shrinking
	s.SetVisited(11, 176)
	s.SetProbe(2, 4)
	p := s.Snapshot()
	if p.States != 11 || p.Transitions != 22 || p.DedupProbes != 33 || p.DedupHits != 6 || p.Violations != 1 {
		t.Errorf("snapshot counters = %+v", p)
	}
	if p.Frontier != 3 || p.FrontierHWM != 7 {
		t.Errorf("frontier = %d hwm = %d, want 3 and 7", p.Frontier, p.FrontierHWM)
	}
	if p.VisitedEntries != 11 || p.VisitedBytes != 176 {
		t.Errorf("visited = %d/%d bytes", p.VisitedEntries, p.VisitedBytes)
	}
	if p.K != 2 || p.L != 4 {
		t.Errorf("probe = K=%d L=%d", p.K, p.L)
	}
}

// TestSearchStatsRate: the EWMA advances only across snapshots spaced
// at least rateMinInterval apart, and tracks accumulated work.
func TestSearchStatsRate(t *testing.T) {
	s := NewSearchStats()
	s.Add(100, 0, 0, 0, 0)
	if p := s.Snapshot(); p.StatesPerSec != 0 {
		t.Errorf("first snapshot rate = %v, want 0 (baseline seed)", p.StatesPerSec)
	}
	s.Add(900, 0, 0, 0, 0)
	time.Sleep(rateMinInterval + 20*time.Millisecond)
	if p := s.Snapshot(); p.StatesPerSec <= 0 {
		t.Errorf("rate after work = %v, want > 0", p.StatesPerSec)
	}
	// Executions stand in for states on the stateless baselines.
	e := NewSearchStats()
	e.AddExecutions(50)
	e.Snapshot()
	e.AddExecutions(50)
	time.Sleep(rateMinInterval + 20*time.Millisecond)
	if p := e.Snapshot(); p.StatesPerSec <= 0 {
		t.Errorf("execution-only rate = %v, want > 0", p.StatesPerSec)
	}
}

// TestSamplerSeriesFinalSample: Stop appends one terminal sample, so
// the series' last snapshot carries the search's final totals.
func TestSamplerSeriesFinalSample(t *testing.T) {
	rec := New()
	stats := rec.Search()
	smp := NewSampler(rec, 2*time.Millisecond)
	stats.Add(10, 0, 0, 0, 0)
	time.Sleep(15 * time.Millisecond)
	stats.Add(32, 0, 0, 0, 0) // lands between ticks; the final sample must see it
	smp.Stop()
	smp.Stop() // idempotent
	series := smp.Series()
	if series == nil || series.Schema != SearchSchema {
		t.Fatalf("series = %+v, want schema %s", series, SearchSchema)
	}
	if len(series.Samples) == 0 {
		t.Fatal("empty series after sampled run")
	}
	last := series.Samples[len(series.Samples)-1]
	if last.States != 42 {
		t.Errorf("final sample states = %d, want 42", last.States)
	}
	for i := 1; i < len(series.Samples); i++ {
		if series.Samples[i].TMS < series.Samples[i-1].TMS {
			t.Fatalf("t_ms not monotone at %d: %v", i, series.Samples)
		}
	}
}

// TestSamplerSubscribe: subscribers get live samples, Stop closes
// their channels, and unsubscribe is idempotent.
func TestSamplerSubscribe(t *testing.T) {
	rec := New()
	rec.Search().Add(5, 0, 0, 0, 0)
	smp := NewSampler(rec, 2*time.Millisecond)
	ch, unsub := smp.Subscribe(16)
	if smp.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", smp.Subscribers())
	}
	select {
	case p := <-ch:
		if p.States != 5 {
			t.Errorf("sample states = %d, want 5", p.States)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no sample delivered")
	}
	smp.Stop()
	for range ch { // must terminate: Stop closes subscriber channels
	}
	unsub() // idempotent after the channel already closed
	if smp.Subscribers() != 0 {
		t.Errorf("subscribers after stop = %d", smp.Subscribers())
	}
	// Subscribing after Stop yields an already-closed channel.
	ch2, unsub2 := smp.Subscribe(4)
	if _, ok := <-ch2; ok {
		t.Error("post-stop subscription delivered a sample")
	}
	unsub2()
}

// TestSamplerSlowConsumerDropsWithoutStalling (satellite: SSE edge
// cases): a subscriber that never drains loses samples but the sampler
// keeps running and Stop still completes promptly.
func TestSamplerSlowConsumerDropsWithoutStalling(t *testing.T) {
	rec := New()
	smp := NewSampler(rec, time.Millisecond)
	ch, _ := smp.Subscribe(1) // fills after one sample, then drops
	deadline := time.Now().Add(2 * time.Second)
	for len(smp.Series().Samples) < 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { smp.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop stalled behind a slow consumer")
	}
	if got := len(smp.Series().Samples); got < 10 {
		t.Errorf("sampler made only %d samples behind a full subscriber", got)
	}
	n := 0
	for range ch {
		n++
	}
	if n > 1 {
		t.Errorf("slow consumer drained %d buffered samples from a 1-buffer", n)
	}
}

// TestSamplerCompaction: past maxSamples the series halves, keeping
// full time coverage at coarser resolution.
func TestSamplerCompaction(t *testing.T) {
	rec := New()
	smp := NewSampler(rec, time.Hour) // ticks never fire; drive sample() directly
	for i := 0; i < 3*maxSamples; i++ {
		rec.Search().Add(1, 0, 0, 0, 0)
		smp.sample()
	}
	series := smp.Series()
	if len(series.Samples) > maxSamples {
		t.Fatalf("series holds %d samples, cap is %d", len(series.Samples), maxSamples)
	}
	first, last := series.Samples[0], series.Samples[len(series.Samples)-1]
	if first.States > int64(maxSamples) {
		t.Errorf("compaction dropped the early samples: first states = %d", first.States)
	}
	if last.States != 3*maxSamples {
		t.Errorf("compaction dropped the newest sample: last states = %d", last.States)
	}
	smp.Stop()
}

// TestSamplerConcurrentStop: racing Stop calls must not double-close
// the stop channel.
func TestSamplerConcurrentStop(t *testing.T) {
	smp := NewSampler(New(), time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); smp.Stop() }()
	}
	wg.Wait()
}

// TestSamplerRecordsPhaseAndLadder: samples carry the recorder's open
// phase and the deepening-ladder counters the ETA heuristic reads.
func TestSamplerRecordsPhaseAndLadder(t *testing.T) {
	rec := New()
	sp := rec.StartPhase("sc_search")
	rec.Counter("core.deepen_rounds").Add(3)
	rec.Gauge("core.deepen_total").Set(7)
	smp := NewSampler(rec, time.Hour)
	smp.sample()
	sp.End()
	smp.Stop()
	s := smp.Series().Samples[0]
	if s.Phase != "sc_search" {
		t.Errorf("sample phase = %q", s.Phase)
	}
	if s.DeepenRounds != 3 || s.DeepenTotal != 7 {
		t.Errorf("ladder = %d/%d, want 3/7", s.DeepenRounds, s.DeepenTotal)
	}
}

// TestProgressFirstTickRate (satellite: first-tick artifact): the very
// first -progress line must compute its rate against the printer's
// start time, not the zero time — a zero prevTime makes dt decades
// long and the rate collapse to 0/s no matter how fast the search is.
func TestProgressFirstTickRate(t *testing.T) {
	var buf strings.Builder
	r := New()
	p := NewProgress(&buf, r, time.Hour) // ticks never fire; drive tick() directly
	defer p.Stop()
	r.Counter("sc.states").Add(100_000)
	time.Sleep(20 * time.Millisecond)
	p.tick()
	out := buf.String()
	m := regexp.MustCompile(`states=(\d+) \((\d+)/s\)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("unparseable first progress line: %q", out)
	}
	if m[1] != "100000" {
		t.Errorf("first line states = %s", m[1])
	}
	rate, _ := strconv.Atoi(m[2])
	if rate <= 0 {
		t.Errorf("first-tick rate = %d/s, want > 0 (prevTime not seeded?): %q", rate, out)
	}
}

func TestWatchRedrawsInPlace(t *testing.T) {
	var buf strings.Builder
	w := NewWatch(&buf)
	w.Update(SearchPoint{States: 10, K: 2, L: 2})
	first := buf.String()
	if strings.Contains(first, "\x1b[3A") {
		t.Errorf("first frame moved the cursor up: %q", first)
	}
	if !strings.Contains(first, "K=2") || !strings.Contains(first, "states 10") {
		t.Errorf("frame missing fields: %q", first)
	}
	buf.Reset()
	w.Update(SearchPoint{States: 20, K: 2, L: 2})
	if !strings.Contains(buf.String(), "\x1b[3A") {
		t.Errorf("second frame did not redraw in place: %q", buf.String())
	}
	buf.Reset()
	w.Reset() // foreign output printed between frames
	w.Update(SearchPoint{States: 30, K: 2, L: 2})
	if strings.Contains(buf.String(), "\x1b[3A") {
		t.Errorf("post-Reset frame overwrote foreign lines: %q", buf.String())
	}
	buf.Reset()
	w.Close("done")
	if !strings.Contains(buf.String(), "done") {
		t.Errorf("Close dropped the summary: %q", buf.String())
	}
}

func TestWatchETA(t *testing.T) {
	p := SearchPoint{DeepenRounds: 3, DeepenTotal: 7}
	got := watchETA(p, 30*time.Second)
	if !strings.Contains(got, "ladder 3/7") || !strings.Contains(got, "eta ~40.0s") {
		t.Errorf("eta = %q, want ladder 3/7 with ~40s left", got)
	}
	if watchETA(SearchPoint{}, time.Second) != "" {
		t.Error("eta rendered outside a deepening run")
	}
	if watchETA(SearchPoint{DeepenRounds: 9, DeepenTotal: 7}, time.Second) != "" {
		t.Error("eta rendered with rounds > total")
	}
	// Stateless runs show executions when there is no state count.
	lines := renderWatch(SearchPoint{Executions: 12, K: -1, L: 2}, time.Second)
	if !strings.Contains(lines[1], "executions 12") {
		t.Errorf("stateless frame = %q", lines[1])
	}
	if strings.Contains(lines[0], "K=") {
		t.Errorf("K=-1 still rendered: %q", lines[0])
	}
}

func TestWatchFormatters(t *testing.T) {
	if got := fmtCount(9_999); got != "9999" {
		t.Errorf("fmtCount(9999) = %q", got)
	}
	if got := fmtCount(123_456); got != "123.5k" {
		t.Errorf("fmtCount(123456) = %q", got)
	}
	if got := fmtCount(12_345_678); got != "12.3M" {
		t.Errorf("fmtCount(12345678) = %q", got)
	}
	if got := fmtBytes(2 << 20); got != "2.0 MiB" {
		t.Errorf("fmtBytes(2MiB) = %q", got)
	}
	if got := fmtDur(90 * time.Second); got != "1.5m" {
		t.Errorf("fmtDur(90s) = %q", got)
	}
}
