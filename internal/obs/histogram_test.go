package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBuckets: observations land in the right buckets, with
// values above every bound in the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []int64{2, 1, 1, 2} // <=0.01: {0.005, 0.01}; <=0.1: {0.05}; <=1: {0.5}; +Inf: {2, 100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-102.565) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
	if math.Abs(s.Mean()-102.565/6) > 1e-9 {
		t.Errorf("mean = %v", s.Mean())
	}
}

// TestHistogramNilSafe: the nil histogram and the nil recorder's
// histogram are inert, and the empty snapshot's mean is 0, not NaN.
func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if m := s.Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}
	var r *Recorder
	r.Histogram("x", nil).Observe(2) // must not panic
}

// TestHistogramNaNIgnored: NaN observations are dropped so sums stay
// finite and marshalable.
func TestHistogramNaNIgnored(t *testing.T) {
	h := NewHistogram("lat", nil)
	h.Observe(math.NaN())
	h.Observe(0.5)
	s := h.Snapshot()
	if s.Count != 1 || math.IsNaN(s.Sum) {
		t.Errorf("snapshot after NaN = %+v", s)
	}
}

// TestHistogramConcurrent: concurrent observers never lose counts (the
// sum is CAS-accumulated, the buckets atomic).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("lat", DurationBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	if math.Abs(s.Sum-float64(workers*per)*0.001) > 1e-6 {
		t.Errorf("sum = %v", s.Sum)
	}
}

// TestRecorderHistogramStable: repeated resolution returns the same
// handle, and the original bounds win.
func TestRecorderHistogramStable(t *testing.T) {
	r := New()
	a := r.Histogram("lat", []float64{1, 2})
	b := r.Histogram("lat", []float64{5, 6, 7})
	if a != b {
		t.Fatal("same name resolved to different histograms")
	}
	if len(a.Snapshot().Bounds) != 2 {
		t.Errorf("bounds = %v, want the first registration's", a.Snapshot().Bounds)
	}
	rep := r.Report()
	if _, ok := rep.Histograms["lat"]; !ok {
		t.Error("report missing histogram")
	}
}

// TestDeriveZeroDenominators: an empty run — zero elapsed, zero states,
// zero dedup lookups, empty histograms — must derive no NaN/Inf rates.
func TestDeriveZeroDenominators(t *testing.T) {
	// A hand-built report models a zero-elapsed snapshot, which a live
	// recorder can never quite produce.
	rep := &Report{
		Seconds:  0,
		Counters: map[string]int64{"sc.states": 100, "ra.states": 5, "smc.transitions": 7},
	}
	d := derive(rep)
	for _, k := range []string{"sc.states_per_sec", "ra.states_per_sec", "smc.transitions_per_sec"} {
		if _, ok := d[k]; ok {
			t.Errorf("zero-elapsed report derived %s", k)
		}
	}

	// Empty run: counters present but zero.
	rep = &Report{
		Seconds: 1.5,
		Counters: map[string]int64{
			"sc.states": 0, "sc.dedup_hits": 0, "sc.dedup_misses": 0,
			"ra.revisits": 0, "ra.states": 0,
			"ra.branch_choices": 0, "ra.branch_points": 0,
		},
		Histograms: map[string]HistogramSnapshot{"lat": {}},
	}
	d = derive(rep)
	if d != nil {
		t.Fatalf("empty run derived %v, want nothing", d)
	}

	// Fresh recorder end to end: Report must stay marshalable with no
	// NaN (json.Marshal rejects NaN, so marshaling is the check).
	r := New()
	r.Counter("sc.dedup_hits") // resolve but never increment
	r.Histogram("lat", nil)
	if b := r.Report().JSON(); len(b) == 0 {
		t.Error("empty report failed to marshal")
	}
	for k, v := range r.Report().Derived {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("derived %s = %v", k, v)
		}
	}
}
