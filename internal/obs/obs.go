// Package obs is the engine-wide observability layer: counters, gauges,
// phase timers, progress snapshots and structured run reports for the
// VBMC driver, the SC backend, the RA oracle and the SMC baselines.
//
// The design goal is zero cost when disabled. Engines do not hold a
// recorder on their hot paths; they resolve named instruments once per
// search:
//
//	states := opts.Obs.Counter("sc.states") // nil recorder -> nil handle
//	...
//	states.Inc() // nil handle: a nil-check, not a lock
//
// Every method of Counter, Gauge, Span, Recorder and Progress is safe on
// a nil receiver and does nothing, so the disabled path through the
// search loops is a single pointer comparison. When enabled, counters
// and gauges are atomics, so a Progress goroutine can snapshot a live
// search without stalling it.
//
// Instrument names are dotted, prefixed by the engine that owns them
// ("sc.states", "ra.revisits", "core.probe_hits"); Report derives rates
// (dedup hit rate, states/sec, branching factors) from the well-known
// names so every surface — the -json run report, the -progress ticker,
// the tables harness — agrees on meaning.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil *Counter is the
// disabled instrument: Inc and Add are no-ops.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric: Set records the last value, SetMax
// keeps a high-water mark. The nil *Gauge is the disabled instrument.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax records v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sink observes phase events of a Recorder as they happen; it is the
// hook point for live displays and external exporters. The no-op
// default is the nil Sink — dispatch is a nil-check, not a lock.
// Implementations must be cheap: they run inline on the engine thread,
// once per phase transition (never per state or transition).
type Sink interface {
	// PhaseStart fires when a span opens.
	PhaseStart(name string)
	// PhaseEnd fires when a span closes, with its duration.
	PhaseEnd(name string, d time.Duration)
}

// phase accumulates the total duration and activation count of one
// named phase across all its spans.
type phase struct {
	name  string
	total atomic.Int64 // nanoseconds
	count atomic.Int64
}

// Recorder collects the instruments of one run. The zero value is not
// usable; construct with New or NewWithSink. A nil *Recorder is the
// disabled recorder: Counter, Gauge and StartPhase return nil handles.
type Recorder struct {
	start time.Time
	sink  Sink

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	phases   []*phase // in creation order, for stable reports
	byName   map[string]*phase
	open     []*phase // stack of open spans; top is the current phase
}

// New returns an empty recorder with no sink.
func New() *Recorder { return NewWithSink(nil) }

// NewWithSink returns an empty recorder whose phase events are also
// delivered to sink (nil for none).
func NewWithSink(sink Sink) *Recorder {
	return &Recorder{
		start:    time.Now(),
		sink:     sink,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		byName:   map[string]*phase{},
	}
}

// SetSink installs (or clears) the sink.
func (r *Recorder) SetSink(sink Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = sink
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Repeated
// calls return the same handle, so restarted searches accumulate. On
// the nil recorder it returns the nil (disabled) counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On the nil
// recorder it returns the nil (disabled) gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Span is one open activation of a phase; close it with End. Spans
// nest: the innermost open span is the "current phase" reported by
// Snapshot.
type Span struct {
	r     *Recorder
	ph    *phase
	start time.Time
}

// StartPhase opens a span of the named phase and reports it to the
// sink. On the nil recorder it returns the nil (disabled) span.
func (r *Recorder) StartPhase(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ph, ok := r.byName[name]
	if !ok {
		ph = &phase{name: name}
		r.byName[name] = ph
		r.phases = append(r.phases, ph)
	}
	r.open = append(r.open, ph)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PhaseStart(name)
	}
	return &Span{r: r, ph: ph, start: time.Now()}
}

// End closes the span, accumulating its duration into the phase. Safe
// on the nil span; calling End twice records the span twice.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.ph.total.Add(int64(d))
	s.ph.count.Add(1)
	r := s.r
	r.mu.Lock()
	// Pop the topmost activation of this phase (spans end LIFO in
	// practice; tolerate out-of-order ends).
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] == s.ph {
			r.open = append(r.open[:i], r.open[i+1:]...)
			break
		}
	}
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PhaseEnd(s.ph.name, d)
	}
}

// Snapshot is a point-in-time view of a live run, for progress
// displays.
type Snapshot struct {
	// Elapsed is the wall time since the recorder was created.
	Elapsed time.Duration
	// Phase is the innermost open phase ("" when none is open).
	Phase string
	// Counters and Gauges are the current instrument values.
	Counters map[string]int64
	Gauges   map[string]int64
}

// Snapshot captures the current instrument values. It is safe to call
// concurrently with a running search. The nil recorder snapshots empty.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Elapsed:  time.Since(r.start),
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	if n := len(r.open); n > 0 {
		s.Phase = r.open[n-1].name
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	return s
}
