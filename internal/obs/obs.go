// Package obs is the engine-wide observability layer: counters, gauges,
// histograms, phase timers, span trees, progress snapshots and
// structured run reports for the VBMC driver, the SC backend, the RA
// oracle, the SMC baselines and the vbmcd daemon.
//
// The design goal is zero cost when disabled. Engines do not hold a
// recorder on their hot paths; they resolve named instruments once per
// search:
//
//	states := opts.Obs.Counter("sc.states") // nil recorder -> nil handle
//	...
//	states.Inc() // nil handle: a nil-check, not a lock
//
// Every method of Counter, Gauge, Histogram, Span, Recorder and
// Progress is safe on a nil receiver and does nothing, so the disabled
// path through the search loops is a single pointer comparison. When
// enabled, counters, gauges and histograms are atomics, so a Progress
// goroutine can snapshot a live search without stalling it.
//
// Recorders compose two ways beyond the flat New():
//
//   - NewTracing retains every phase span as a tree node (parent links,
//     start/end wall times, attributes) exportable as JSONL or Chrome
//     trace_event via WriteSpansJSONL / WriteSpansChrome — see span.go.
//     A plain New() recorder pays none of that: spans accumulate into
//     per-phase totals only, exactly as before.
//   - Child() derives a per-request tracing recorder whose counter,
//     gauge and histogram updates also mirror into the parent, so a
//     daemon can keep one process-wide recorder feeding /metrics while
//     every request gets its own span tree.
//
// Instrument names are dotted, prefixed by the engine that owns them
// ("sc.states", "ra.revisits", "core.probe_hits"); Report derives rates
// (dedup hit rate, states/sec, branching factors) from the well-known
// names so every surface — the -json run report, the -progress ticker,
// the tables harness — agrees on meaning.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil *Counter is the
// disabled instrument: Inc and Add are no-ops. A counter resolved from
// a Child() recorder carries a mirror into the parent's same-named
// counter, so per-request and process-wide views stay consistent.
type Counter struct {
	name   string
	mirror *Counter
	v      atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
		c.mirror.Inc()
	}
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
		c.mirror.Add(delta)
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric: Set records the last value, SetMax
// keeps a high-water mark. The nil *Gauge is the disabled instrument.
// Like Counter, a gauge from a Child() recorder mirrors into the
// parent's same-named gauge.
type Gauge struct {
	name   string
	mirror *Gauge
	v      atomic.Int64
}

// Set records v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
		g.mirror.Set(v)
	}
}

// SetMax records v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			break
		}
	}
	g.mirror.SetMax(v)
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sink observes phase events of a Recorder as they happen; it is the
// hook point for live displays and external exporters. The no-op
// default is the nil Sink — dispatch is a nil-check, not a lock.
// Implementations must be cheap: they run inline on the engine thread,
// once per phase transition (never per state or transition).
type Sink interface {
	// PhaseStart fires when a span opens.
	PhaseStart(name string)
	// PhaseEnd fires when a span closes, with its duration.
	PhaseEnd(name string, d time.Duration)
}

// phase accumulates the total duration and activation count of one
// named phase across all its spans.
type phase struct {
	name  string
	total atomic.Int64 // nanoseconds
	count atomic.Int64
}

// Recorder collects the instruments of one run. The zero value is not
// usable; construct with New, NewWithSink, NewTracing or Child. A nil
// *Recorder is the disabled recorder: Counter, Gauge, Histogram and
// StartPhase return nil handles.
type Recorder struct {
	start  time.Time
	sink   Sink
	parent *Recorder // mirror target of a Child() recorder (nil for none)

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	histNames  []string // creation order, for stable reports
	phases     []*phase // in creation order, for stable reports
	byName     map[string]*phase
	open       []*Span // stack of open spans; top is the current phase

	tracing bool // retain the span tree (see span.go)
	roots   []*spanNode
	spanSeq int64

	search *SearchStats // live search telemetry (see search.go)
}

// New returns an empty recorder with no sink.
func New() *Recorder { return NewWithSink(nil) }

// NewWithSink returns an empty recorder whose phase events are also
// delivered to sink (nil for none).
func NewWithSink(sink Sink) *Recorder {
	return &Recorder{
		start:      time.Now(),
		sink:       sink,
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		byName:     map[string]*phase{},
	}
}

// NewTracing returns a recorder that additionally retains every phase
// span as a tree node — parent links, wall-clock start/end and
// attributes — retrievable with Spans and exportable with
// WriteSpansJSONL / WriteSpansChrome. Tracing costs one small
// allocation per span (never per state), so it stays out of the
// default New().
func NewTracing() *Recorder {
	r := New()
	r.tracing = true
	return r
}

// Child derives a tracing recorder that mirrors every counter, gauge
// and histogram update into r, while keeping its own span tree and
// phase totals. It is how the daemon gives each request a private span
// tree without losing the process-wide /metrics aggregates. Safe on the
// nil recorder: the child is then standalone (nothing to mirror into).
func (r *Recorder) Child() *Recorder {
	c := NewTracing()
	c.parent = r
	return c
}

// SetSink installs (or clears) the sink.
func (r *Recorder) SetSink(sink Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = sink
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Repeated
// calls return the same handle, so restarted searches accumulate. On
// the nil recorder it returns the nil (disabled) counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		if r.parent != nil {
			c.mirror = r.parent.Counter(name)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On the nil
// recorder it returns the nil (disabled) gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		if r.parent != nil {
			g.mirror = r.parent.Gauge(name)
		}
		r.gauges[name] = g
	}
	return g
}

// Search returns the recorder's live search-telemetry block, creating
// it on first use. Engines resolve it once per search and bulk-update
// it on their deadline-poll cadence; samplers and metrics endpoints
// snapshot it concurrently. On the nil recorder it returns the nil
// (disabled) stats block. Unlike counters and gauges, search stats do
// not mirror into a parent: each request's search is its own series.
func (r *Recorder) Search() *SearchStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.search == nil {
		r.search = NewSearchStats()
	}
	return r.search
}

// Phase returns the innermost open phase name ("" when none is open or
// on the nil recorder) — the cheap single-field version of Snapshot for
// per-sample stamping.
func (r *Recorder) Phase() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.open); n > 0 {
		return r.open[n-1].ph.name
	}
	return ""
}

// Span is one open activation of a phase; close it with End. Spans
// nest: the innermost open span is the "current phase" reported by
// Snapshot, and on a tracing recorder it is the parent of the next
// span started, forming the span tree.
type Span struct {
	r     *Recorder
	ph    *phase
	start time.Time
	node  *spanNode // tree node; nil unless the recorder traces
}

// StartPhase opens a span of the named phase and reports it to the
// sink. On a tracing recorder the span also becomes a tree node whose
// parent is the innermost open span. On the nil recorder it returns
// the nil (disabled) span.
func (r *Recorder) StartPhase(name string) *Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	s := &Span{r: r, start: now}
	r.mu.Lock()
	ph, ok := r.byName[name]
	if !ok {
		ph = &phase{name: name}
		r.byName[name] = ph
		r.phases = append(r.phases, ph)
	}
	s.ph = ph
	if r.tracing {
		r.spanSeq++
		s.node = &spanNode{id: r.spanSeq, name: name, start: now}
		if n := len(r.open); n > 0 && r.open[n-1].node != nil {
			p := r.open[n-1].node
			p.children = append(p.children, s.node)
		} else {
			r.roots = append(r.roots, s.node)
		}
	}
	r.open = append(r.open, s)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PhaseStart(name)
	}
	return s
}

// End closes the span, accumulating its duration into the phase (and
// sealing its tree node on a tracing recorder). Safe on the nil span;
// calling End twice records the span twice.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	d := end.Sub(s.start)
	s.ph.total.Add(int64(d))
	s.ph.count.Add(1)
	r := s.r
	r.mu.Lock()
	// Pop this span's activation (spans end LIFO in practice; tolerate
	// out-of-order ends).
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] == s {
			r.open = append(r.open[:i], r.open[i+1:]...)
			break
		}
	}
	if s.node != nil {
		s.node.end = end
	}
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PhaseEnd(s.ph.name, d)
	}
}

// SetAttr attaches a key/value attribute to the span's tree node. It is
// a no-op on the nil span and on spans of a non-tracing recorder, so
// engines can annotate unconditionally.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.node == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	for i := range s.node.attrs {
		if s.node.attrs[i].key == key {
			s.node.attrs[i].value = value
			r.mu.Unlock()
			return
		}
	}
	s.node.attrs = append(s.node.attrs, spanAttr{key: key, value: value})
	r.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil || s.node == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Snapshot is a point-in-time view of a live run, for progress
// displays.
type Snapshot struct {
	// Elapsed is the wall time since the recorder was created.
	Elapsed time.Duration
	// Phase is the innermost open phase ("" when none is open).
	Phase string
	// Counters and Gauges are the current instrument values.
	Counters map[string]int64
	Gauges   map[string]int64
	// Histograms are the current distribution snapshots.
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the current instrument values. It is safe to call
// concurrently with a running search. The nil recorder snapshots empty.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Elapsed:    time.Since(r.start),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	if n := len(r.open); n > 0 {
		s.Phase = r.open[n-1].ph.name
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
