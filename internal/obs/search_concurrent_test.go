package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSearchStatsConcurrentTotalsMonotone models the parallel engines'
// telemetry pattern — several workers flushing deltas while a sampler
// snapshots concurrently — and asserts what the dashboard relies on:
// no snapshot ever shows a total going backwards or a torn partial
// value, and the final totals equal the exact sum of all flushed
// deltas.
func TestSearchStatsConcurrentTotalsMonotone(t *testing.T) {
	s := NewSearchStats()
	const workers = 8
	const flushes = 2000
	var stop atomic.Bool
	var snapErr atomic.Value

	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var prev SearchPoint
		for !stop.Load() {
			p := s.Snapshot()
			if p.States < prev.States || p.Transitions < prev.Transitions ||
				p.DedupProbes < prev.DedupProbes || p.DedupHits < prev.DedupHits ||
				p.Violations < prev.Violations || p.FrontierHWM < prev.FrontierHWM {
				snapErr.Store(p)
				return
			}
			prev = p
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < flushes; i++ {
				s.Add(1, 2, 3, 1, int64(w%2))
				s.SetFrontier(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()

	if v := snapErr.Load(); v != nil {
		t.Fatalf("a snapshot observed a decreasing total: %+v", v)
	}
	final := s.Snapshot()
	if final.States != workers*flushes {
		t.Errorf("states = %d, want %d", final.States, workers*flushes)
	}
	if final.Transitions != 2*workers*flushes {
		t.Errorf("transitions = %d, want %d", final.Transitions, 2*workers*flushes)
	}
	if final.Violations != flushes*(workers/2) {
		t.Errorf("violations = %d, want %d", final.Violations, flushes*(workers/2))
	}
}

// TestSearchStatsConcurrentFrontierHWM hammers SetFrontier from many
// goroutines with interleaved shrinking and growing depths: the
// high-water mark must end exactly at the global maximum — the CAS
// max-loop may lose a race to a larger value but never to a smaller
// one.
func TestSearchStatsConcurrentFrontierHWM(t *testing.T) {
	s := NewSearchStats()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < 1000; d++ {
				// Worker w peaks at 1000*(w+1); the global max is
				// worker 7's 8000.
				s.SetFrontier(int64((d % 1000) * (w + 1)))
				s.SetFrontier(0) // shrink must never move the HWM
			}
			s.SetFrontier(int64(1000 * (w + 1)))
		}()
	}
	wg.Wait()
	if got := s.Snapshot().FrontierHWM; got != 8000 {
		t.Errorf("FrontierHWM = %d, want the global max 8000", got)
	}
}

// TestSearchStatsConcurrentSnapshotRate lets many snapshotters race
// the EWMA update while workers add progress: the rate must stay
// finite and non-negative in every observed snapshot (the CAS
// single-winner rule is what prevents near-zero-dt spikes and torn
// float updates).
func TestSearchStatsConcurrentSnapshotRate(t *testing.T) {
	s := NewSearchStats()
	var stop atomic.Bool
	var wg sync.WaitGroup
	bad := make(chan float64, 1)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r := s.Snapshot().StatesPerSec
				if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
					select {
					case bad <- r:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 50000; i++ {
		s.Add(1, 1, 0, 0, 0)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case r := <-bad:
		t.Fatalf("snapshot observed an invalid rate %v", r)
	default:
	}
}
