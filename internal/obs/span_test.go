package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanTree: a tracing recorder turns nested StartPhase calls into a
// tree with parent links, attributes and durations.
func TestSpanTree(t *testing.T) {
	r := NewTracing()
	root := r.StartPhase("request")
	root.SetAttr("mode", "vbmc")
	root.SetAttrInt("k", 2)
	q := r.StartPhase("queue_wait")
	q.End()
	c := r.StartPhase("cache")
	e := r.StartPhase("engine")
	time.Sleep(2 * time.Millisecond)
	e.End()
	c.End()
	root.End()

	roots := r.Spans()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	rn := roots[0]
	if rn.Name != "request" || rn.Open {
		t.Fatalf("root = %+v", rn)
	}
	if rn.Attrs["mode"] != "vbmc" || rn.Attrs["k"] != "2" {
		t.Errorf("root attrs = %v", rn.Attrs)
	}
	if len(rn.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (queue_wait, cache)", len(rn.Children))
	}
	cache := rn.Children[1]
	if cache.Name != "cache" || len(cache.Children) != 1 || cache.Children[0].Name != "engine" {
		t.Fatalf("cache subtree = %+v", cache)
	}
	if eng := cache.Children[0]; eng.DurUS < 1000 {
		t.Errorf("engine dur = %dus, want >= 1000", eng.DurUS)
	}
	if cache.DurUS < cache.Children[0].DurUS {
		t.Errorf("cache dur %d < child dur %d", cache.DurUS, cache.Children[0].DurUS)
	}
	if CountSpans(roots) != 4 {
		t.Errorf("CountSpans = %d, want 4", CountSpans(roots))
	}
	if got := SpanSeconds(roots, "engine"); got <= 0 {
		t.Errorf("SpanSeconds(engine) = %v, want > 0", got)
	}
}

// TestSpanTreeDisabled: a plain recorder retains no tree, and spans of
// a nil recorder tolerate attribute calls.
func TestSpanTreeDisabled(t *testing.T) {
	r := New()
	s := r.StartPhase("a")
	s.SetAttr("k", "v") // must not panic or retain
	s.End()
	if got := r.Spans(); got != nil {
		t.Errorf("non-tracing recorder Spans() = %v, want nil", got)
	}

	var nilRec *Recorder
	ns := nilRec.StartPhase("x")
	ns.SetAttr("a", "b")
	ns.SetAttrInt("n", 1)
	ns.End()
	if nilRec.Spans() != nil {
		t.Error("nil recorder Spans() non-nil")
	}
}

// TestSpansLiveSnapshot: snapshotting mid-run marks open spans and
// reports elapsed-so-far durations — the flight recorder's view.
func TestSpansLiveSnapshot(t *testing.T) {
	r := NewTracing()
	root := r.StartPhase("request")
	_ = r.StartPhase("engine") // deliberately left open
	time.Sleep(2 * time.Millisecond)
	roots := r.Spans()
	if len(roots) != 1 || !roots[0].Open {
		t.Fatalf("open root not marked: %+v", roots)
	}
	eng := roots[0].Children[0]
	if !eng.Open || eng.DurUS <= 0 {
		t.Errorf("open child = %+v, want Open with positive elapsed", eng)
	}
	root.End()
}

// TestWriteSpansJSONL: header first, then one pre-order line per span
// with parent links intact.
func TestWriteSpansJSONL(t *testing.T) {
	r := NewTracing()
	root := r.StartPhase("request")
	ch := r.StartPhase("cache")
	ch.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, SpanMeta{Tool: "vbmcd", RunID: "r42"}, r.Spans()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var meta SpanMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Schema != SpanSchema || meta.Spans != 2 || meta.RunID != "r42" {
		t.Errorf("meta = %+v", meta)
	}
	type line struct {
		ID       int64  `json:"id"`
		ParentID int64  `json:"parent_id"`
		Name     string `json:"name"`
	}
	var lines []line
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("span lines = %d, want 2", len(lines))
	}
	if lines[0].Name != "request" || lines[0].ParentID != 0 {
		t.Errorf("root line = %+v", lines[0])
	}
	if lines[1].Name != "cache" || lines[1].ParentID != lines[0].ID {
		t.Errorf("child line = %+v (root id %d)", lines[1], lines[0].ID)
	}
}

// TestWriteSpansChrome: the trace-event document must be valid JSON
// with one X slice per span plus the process metadata record.
func TestWriteSpansChrome(t *testing.T) {
	r := NewTracing()
	root := r.StartPhase("request")
	ch := r.StartPhase("engine")
	ch.SetAttr("mode", "vbmc")
	ch.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteSpansChrome(&buf, SpanMeta{Tool: "vbmc", Program: "dekker"}, r.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Meta SpanMeta `json:"ravbmcMeta"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Meta.Schema != SpanSchema || doc.Meta.Spans != 2 {
		t.Errorf("meta = %+v", doc.Meta)
	}
	var slices, metas int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			slices++
			if e.Name == "engine" && e.Args["mode"] != "vbmc" {
				t.Errorf("engine args = %v", e.Args)
			}
		case "M":
			metas++
		}
	}
	if slices != 2 || metas != 1 {
		t.Errorf("slices = %d metas = %d, want 2 and 1", slices, metas)
	}
}

// TestChildMirrors: instruments of a Child() recorder update both the
// child and the parent; spans stay private to the child.
func TestChildMirrors(t *testing.T) {
	parent := New()
	child := parent.Child()
	child.Counter("sc.states").Add(7)
	child.Gauge("sc.max_depth").SetMax(4)
	child.Gauge("sc.max_depth").SetMax(2) // below the max: no change
	child.Histogram("core.probe_seconds", nil).Observe(0.02)
	s := child.StartPhase("engine")
	s.End()

	if got := parent.Counter("sc.states").Value(); got != 7 {
		t.Errorf("parent counter = %d, want 7", got)
	}
	if got := parent.Gauge("sc.max_depth").Value(); got != 4 {
		t.Errorf("parent gauge = %d, want 4", got)
	}
	ph := parent.Histogram("core.probe_seconds", nil).Snapshot()
	if ph.Count != 1 || ph.Sum != 0.02 {
		t.Errorf("parent histogram = %+v", ph)
	}
	if got := child.Counter("sc.states").Value(); got != 7 {
		t.Errorf("child counter = %d, want 7", got)
	}
	if parent.Spans() != nil {
		t.Error("parent recorder grew a span tree from child's spans")
	}
	if got := child.Spans(); len(got) != 1 || got[0].Name != "engine" {
		t.Errorf("child spans = %+v", got)
	}
	// A child of the nil recorder is standalone but fully usable.
	var nilRec *Recorder
	orphan := nilRec.Child()
	orphan.Counter("x").Inc()
	if orphan.Counter("x").Value() != 1 {
		t.Error("orphan child counter lost its increment")
	}
}

// TestSpanSecondsAndTotalsAgree: the phase totals in Report and the
// span tree must describe the same durations.
func TestSpanSecondsAndTotalsAgree(t *testing.T) {
	r := NewTracing()
	for i := 0; i < 3; i++ {
		s := r.StartPhase("round")
		time.Sleep(time.Millisecond)
		s.End()
	}
	rep := r.Report()
	var phaseSecs float64
	for _, p := range rep.Phases {
		if p.Name == "round" {
			phaseSecs = p.Seconds
			if p.Count != 3 {
				t.Errorf("phase count = %d, want 3", p.Count)
			}
		}
	}
	spanSecs := SpanSeconds(r.Spans(), "round")
	diff := phaseSecs - spanSecs
	if diff < 0 {
		diff = -diff
	}
	// Span durations round to whole microseconds; allow that slack.
	if diff > 0.001 {
		t.Errorf("phase total %.6fs vs span total %.6fs", phaseSecs, spanSecs)
	}
}

// TestWriteSpansFileFormats: the file helper writes both formats and
// rejects unknown ones.
func TestWriteSpansFileFormats(t *testing.T) {
	r := NewTracing()
	r.StartPhase("run").End()
	roots := r.Spans()
	dir := t.TempDir()
	for _, f := range []string{"jsonl", "chrome"} {
		path := dir + "/spans." + f
		if err := WriteSpansFile(path, f, SpanMeta{Tool: "vbmc"}, roots); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
	if err := WriteSpansFile(dir+"/bad", "xml", SpanMeta{}, roots); err == nil ||
		!strings.Contains(err.Error(), "unknown span format") {
		t.Errorf("bad format error = %v", err)
	}
}
