package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// spanAttr is one ordered key/value annotation of a span node.
type spanAttr struct {
	key, value string
}

// spanNode is the live tree node behind a Span on a tracing recorder.
// It is mutated under the recorder's mutex and copied out by Spans.
type spanNode struct {
	id       int64
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    []spanAttr
	children []*spanNode
}

// SpanNode is one node of an exported span tree: a phase activation
// with wall-clock offsets relative to the recorder's start, its
// attributes and its children. It is the JSON shape served by the
// daemon's /v1/runs/{id} endpoint and written by WriteSpansJSONL.
type SpanNode struct {
	ID   int64  `json:"id"`
	Name string `json:"name"`
	// StartUS is microseconds from the recorder's creation to the span
	// opening; DurUS is the span's duration in microseconds (elapsed so
	// far when Open).
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Open marks a span still running when the tree was snapshotted —
	// the flight recorder dumps live trees.
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Spans snapshots the recorder's span forest (top-level spans in start
// order). It is safe concurrently with a live run: open spans appear
// with Open=true and their elapsed-so-far duration. Non-tracing and nil
// recorders return nil.
func (r *Recorder) Spans() []*SpanNode {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.tracing {
		return nil
	}
	out := make([]*SpanNode, 0, len(r.roots))
	for _, n := range r.roots {
		out = append(out, exportSpan(n, r.start, now))
	}
	return out
}

func exportSpan(n *spanNode, base, now time.Time) *SpanNode {
	e := &SpanNode{
		ID:      n.id,
		Name:    n.name,
		StartUS: n.start.Sub(base).Microseconds(),
	}
	if n.end.IsZero() {
		e.Open = true
		e.DurUS = now.Sub(n.start).Microseconds()
	} else {
		e.DurUS = n.end.Sub(n.start).Microseconds()
	}
	if len(n.attrs) > 0 {
		e.Attrs = make(map[string]string, len(n.attrs))
		for _, a := range n.attrs {
			e.Attrs[a.key] = a.value
		}
	}
	for _, c := range n.children {
		e.Children = append(e.Children, exportSpan(c, base, now))
	}
	return e
}

// SpanSeconds sums the durations of every span named name across the
// forest, in seconds. It is how the daemon's ledger derives per-phase
// timings (queue wait, cache, engine, replay) from a request's tree.
func SpanSeconds(roots []*SpanNode, name string) float64 {
	var us int64
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if n.Name == name {
			us += n.DurUS
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range roots {
		walk(n)
	}
	return float64(us) / 1e6
}

// CountSpans returns the number of nodes in the forest.
func CountSpans(roots []*SpanNode) int {
	n := 0
	var walk func(s *SpanNode)
	walk = func(s *SpanNode) {
		n++
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range roots {
		walk(s)
	}
	return n
}

// SpanSchema identifies the JSONL span-tree encoding; bump on
// incompatible changes. It parallels internal/trace's witness schema.
const SpanSchema = "ravbmc.spans/v1"

// SpanMeta is the header record of an exported span tree. The caller
// fills the identity fields; Schema and Spans are stamped on export.
type SpanMeta struct {
	Schema string `json:"schema"`
	// Tool and Program identify the run ("vbmc", "vbmcd", benchmark or
	// file name); RunID is the daemon's run identifier, correlating the
	// export with log lines and the /v1/runs ledger entry.
	Tool    string `json:"tool,omitempty"`
	Program string `json:"program,omitempty"`
	RunID   string `json:"run_id,omitempty"`
	Spans   int    `json:"spans"`
}

// spanLine is the flat JSONL encoding of one node: the tree structure
// survives through parent_id.
type spanLine struct {
	ID       int64             `json:"id"`
	ParentID int64             `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// WriteSpansJSONL writes the forest as a JSONL document: the SpanMeta
// header (Schema and span count filled in), then one line per span in
// pre-order, children linked to parents by parent_id.
func WriteSpansJSONL(w io.Writer, meta SpanMeta, roots []*SpanNode) error {
	meta.Schema = SpanSchema
	meta.Spans = CountSpans(roots)
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	var walk func(n *SpanNode, parent int64) error
	walk = func(n *SpanNode, parent int64) error {
		if err := enc.Encode(spanLine{
			ID: n.ID, ParentID: parent, Name: n.Name,
			StartUS: n.StartUS, DurUS: n.DurUS, Open: n.Open, Attrs: n.Attrs,
		}); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, n.ID); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range roots {
		if err := walk(n, 0); err != nil {
			return err
		}
	}
	return nil
}

// spanChromeEvent is one record of the Chrome trace-event format, the
// same encoding internal/trace uses for witness timelines.
type spanChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteSpansChrome writes the forest in the Chrome trace-event JSON
// format consumed by chrome://tracing and Perfetto: every span is a
// complete ("X") slice with its real microsecond offsets, so nesting
// renders as a flame graph on one track.
func WriteSpansChrome(w io.Writer, meta SpanMeta, roots []*SpanNode) error {
	meta.Schema = SpanSchema
	meta.Spans = CountSpans(roots)
	events := []spanChromeEvent{{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": fmt.Sprintf("%s %s", meta.Tool, meta.Program)},
	}}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		args := map[string]any{}
		for k, v := range n.Attrs {
			args[k] = v
		}
		if n.Open {
			args["open"] = true
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, spanChromeEvent{
			Name: n.Name, Cat: "span", Phase: "X",
			TS: n.StartUS, Dur: n.DurUS, PID: 0, TID: 0, Args: args,
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range roots {
		walk(n)
	}
	doc := struct {
		TraceEvents []spanChromeEvent `json:"traceEvents"`
		Meta        SpanMeta          `json:"ravbmcMeta"`
	}{TraceEvents: events, Meta: meta}
	return json.NewEncoder(w).Encode(doc)
}

// WriteSpansFile writes the forest to path in the given format ("jsonl"
// or "chrome"), creating or truncating the file.
func WriteSpansFile(path, format string, meta SpanMeta, roots []*SpanNode) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl", "":
		err = WriteSpansJSONL(f, meta, roots)
	case "chrome":
		err = WriteSpansChrome(f, meta, roots)
	default:
		err = fmt.Errorf("obs: unknown span format %q (want jsonl or chrome)", format)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
