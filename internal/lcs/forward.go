package lcs

import "strings"

// ReachableForward decides reachability by forward exploration with the
// given cap on channel length. It is exact for systems whose reachable
// channel contents stay within the cap and is used to cross-check the
// backward (WSTS) algorithm on small systems.
func (s *System) ReachableForward(target string, maxChanLen int) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	type conf struct {
		state string
		chans map[string]string
	}
	key := func(c conf) string {
		var b strings.Builder
		b.WriteString(c.state)
		for _, ch := range sortedKeys(c.chans) {
			b.WriteByte('|')
			b.WriteString(c.chans[ch])
		}
		return b.String()
	}
	init := conf{state: s.Init, chans: emptyChans(s.Channels)}
	seen := map[string]bool{key(init): true}
	work := []conf{init}
	push := func(c conf) bool {
		if c.state == target {
			return true
		}
		if k := key(c); !seen[k] {
			seen[k] = true
			work = append(work, c)
		}
		return false
	}
	if init.state == target {
		return true, nil
	}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range s.Rules {
			if r.From != c.state {
				continue
			}
			switch r.Op {
			case Nop:
				if push(conf{state: r.To, chans: c.chans}) {
					return true, nil
				}
			case Send:
				// Lossy send: either the message lands or it is lost.
				if len(c.chans[r.Ch]) < maxChanLen {
					nc := cloneChans(c.chans)
					nc[r.Ch] = c.chans[r.Ch] + string(r.Sym)
					if push(conf{state: r.To, chans: nc}) {
						return true, nil
					}
				}
				if push(conf{state: r.To, chans: c.chans}) {
					return true, nil
				}
			case Recv:
				w := c.chans[r.Ch]
				// Lossy receive: any prefix may be lost before Sym.
				for i := 0; i < len(w); i++ {
					if w[i] == r.Sym {
						nc := cloneChans(c.chans)
						nc[r.Ch] = w[i+1:]
						if push(conf{state: r.To, chans: nc}) {
							return true, nil
						}
					}
				}
			}
		}
	}
	return false, nil
}

func cloneChans(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
